// Customdetector: plug your own outlier detector into the explanation
// algorithms.
//
// Every explainer in anex is detector-agnostic: anything implementing
//
//	Name() string
//	Scores(ctx context.Context, v *anex.View) ([]float64, error)   // higher = more outlying
//
// slots into Beam, RefOut, LookOut and HiCS. This example implements a
// tiny Mahalanobis-style detector (distance from the per-view mean, scaled
// by per-feature standard deviation), runs it through Beam next to the
// library's detectors, and compares detector quality with ROC AUC — the
// workflow for deciding whether a custom detector is worth pairing with an
// explainer on your data.
//
// Run with: go run ./examples/customdetector
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"anex"
)

// zDistance scores each point by its root-mean-squared per-feature z-score
// within the view — a cheap global detector that works when outliers
// deviate on raw feature values rather than local density.
type zDistance struct{}

func (zDistance) Name() string { return "z-dist" }

func (zDistance) Scores(_ context.Context, v *anex.View) ([]float64, error) {
	n, d := v.N(), v.Dim()
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		p := v.Point(i)
		for j := 0; j < d; j++ {
			means[j] += p[j]
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	stds := make([]float64, d)
	for i := 0; i < n; i++ {
		p := v.Point(i)
		for j := 0; j < d; j++ {
			diff := p[j] - means[j]
			stds[j] += diff * diff
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(n))
		if stds[j] == 0 {
			stds[j] = 1
		}
	}
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		p := v.Point(i)
		var sum float64
		for j := 0; j < d; j++ {
			z := (p[j] - means[j]) / stds[j]
			sum += z * z
		}
		scores[i] = math.Sqrt(sum / float64(d))
	}
	return scores, nil
}

func main() {
	ctx := context.Background()
	// Full-space outliers: the regime where a global deviation detector
	// has a fair chance.
	ds, outliers, err := anex.GenerateFullSpaceOutliers(anex.FullSpaceOutlierConfig{
		Name: "ops-metrics", N: 300, D: 8, NumOutliers: 20, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	isOutlier := make([]bool, ds.N())
	for _, p := range outliers {
		isOutlier[p] = true
	}

	// Step 1: detector quality — is the custom detector competitive?
	detectors := []anex.Detector{
		zDistance{},
		anex.NewLOF(15),
		anex.NewKNNDist(10),
		anex.NewLODA(1),
		anex.NewIsolationForest(1),
	}
	fmt.Println("detector quality on the full space:")
	for _, det := range detectors {
		scores, err := det.Scores(ctx, ds.FullView())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s ROC AUC %.3f   P@n %.3f\n",
			det.Name(), anex.ROCAUC(scores, isOutlier), anex.PrecisionAtN(scores, isOutlier, 0))
	}

	// Step 2: pair the custom detector with Beam and evaluate the
	// explanations against a LOF-derived ground truth, exactly as the
	// paper pairs every detector with every explainer.
	gt, err := anex.DeriveGroundTruth(ctx, ds, outliers, []int{2}, anex.NewLOF(15))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexplanation quality (Beam at 2d, LOF-derived ground truth):")
	for _, det := range []anex.Detector{zDistance{}, anex.NewLOF(15)} {
		res := anex.ExplainOutliers(ctx, ds, gt, det.Name(), anex.NewBeamFX(anex.CachedDetector(det)), 2)
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("  Beam + %-7s MAP %.2f  mean recall %.2f  (%s)\n",
			det.Name(), res.MAP, res.MeanRecall, res.Duration.Round(1e7))
	}
	fmt.Println("\nany Scores-implementing type participates in the full pipeline grid.")
}

// Sensors: summarize the subspaces that expose faulty readings across a
// simulated sensor network.
//
// A plant has 16 sensor channels. Groups of channels are physically coupled
// (redundant temperature probes, a pressure/flow pair, …), so their normal
// readings are strongly correlated. A handful of log records violate those
// couplings — one probe of a pair diverges — without any single channel
// leaving its normal range. The operator wants ONE small set of channel
// combinations that exposes all the faulty records at once: an explanation
// summary.
//
// This example mirrors the paper's summarization experiment (Section 4.2):
// it generates HiCS-style subspace outliers, then compares the LookOut and
// HiCS summaries against the planted fault structure.
//
// Run with: go run ./examples/sensors
package main

import (
	"context"
	"fmt"
	"log"

	"anex"
)

func main() {
	ctx := context.Background()
	// 16 channels: three coupled groups (2, 3 and 4 channels wide) and
	// 7 independent channels. Each coupled group has 4 faulty records.
	ds, gt, err := anex.GenerateSubspaceOutliers(anex.SubspaceOutlierConfig{
		Name:                "sensor-log",
		TotalDims:           16,
		SubspaceDims:        []int{2, 3, 4},
		N:                   400,
		OutliersPerSubspace: 4,
		Seed:                2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	faulty := gt.Outliers()
	fmt.Printf("sensor log: %d records × %d channels, %d faulty records\n", ds.N(), ds.D(), len(faulty))
	fmt.Printf("planted fault structures: %v\n\n", gt.AllSubspaces())

	det := anex.CachedDetector(anex.NewLOF(15))

	// LookOut: exhaustive 2d scan + greedy submodular selection. A budget
	// of 3 asks for the three channel pairs that jointly maximise the
	// faulty records' outlyingness.
	lookout := anex.NewLookOut(det)
	lookout.Budget = 3
	loSummary, err := lookout.Summarize(ctx, ds, faulty, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LookOut summary (top channel pairs by marginal coverage gain):")
	for i, s := range loSummary {
		fmt.Printf("  %d. %v  gain %.2f\n", i+1, s.Subspace, s.Score)
	}

	// HiCS: searches for channel combinations with statistically dependent
	// readings — the physical couplings — without consulting the detector,
	// then ranks them for the faulty records.
	hics := anex.NewHiCSFX(det, 7)
	hics.MCIterations = 60
	hicsSummary, err := hics.Summarize(ctx, ds, faulty, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHiCS summary (high-contrast channel pairs, detector-ranked):")
	for i, s := range hicsSummary[:min(3, len(hicsSummary))] {
		fmt.Printf("  %d. %v  mean standardised score %.2f\n", i+1, s.Subspace, s.Score)
	}

	// Evaluate both against the planted 2d fault structure, as the paper
	// does with MAP.
	var loResults, hicsResults []anex.PointResult
	for _, p := range gt.PointsExplainedAt(2) {
		rel := relevantAt(gt, p, 2)
		loResults = append(loResults, anex.EvaluatePoint(p, anex.Subspaces(loSummary), rel))
		hicsResults = append(hicsResults, anex.EvaluatePoint(p, anex.Subspaces(hicsSummary), rel))
	}
	fmt.Printf("\nMAP against the planted 2d faults: LookOut %.2f, HiCS %.2f\n",
		anex.MAP(loResults), anex.MAP(hicsResults))
}

func relevantAt(gt *anex.GroundTruth, p, dim int) []anex.Subspace {
	var out []anex.Subspace
	for _, s := range gt.RelevantFor(p) {
		if s.Dim() == dim {
			out = append(out, s)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

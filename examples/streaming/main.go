// Streaming: monitor a live metric stream, flag anomalous records, and
// attach a subspace explanation to every alert.
//
// A service emits records with five metrics. Latency and queue depth are
// coupled (more queueing → more latency); error rate, CPU and a request
// counter move independently. At some point a regression makes latency
// spike WITHOUT queue growth — invisible on each metric alone, obvious on
// the (latency, queue) pair. The monitor re-runs LOF over a sliding window
// and re-explains each newly flagged record, the re-execution regime the
// paper's conclusions call out for data in motion.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"anex"
)

const (
	latency = iota
	queue
	errRate
	cpu
	requests
	numMetrics
)

var metricNames = []string{"latency", "queue", "err_rate", "cpu", "requests"}

// normalRecord couples latency to queue depth and draws the rest freely.
func normalRecord(rng *rand.Rand) []float64 {
	q := rng.Float64() // queue depth 0..1
	rec := make([]float64, numMetrics)
	rec[queue] = q
	rec[latency] = 0.2 + 0.7*q + rng.NormFloat64()*0.02
	rec[errRate] = rng.Float64() * 0.1
	rec[cpu] = 0.3 + rng.Float64()*0.4
	rec[requests] = rng.Float64()
	return rec
}

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	det := anex.NewLOF(15)
	monitor, err := anex.NewStreamMonitor(anex.StreamConfig{
		WindowSize:        200,
		Stride:            50,
		ZThreshold:        anex.StreamThreshold(6),
		MaxFlagsPerWindow: 2,
		TargetDim:         2,
		Detector:          det,
		Explainer:         anex.NewBeamFX(det),
		FeatureNames:      metricNames,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 600 records; the regression hits at records 404 and 405.
	regression := map[int]bool{404: true, 405: true}
	alerted := 0
	for i := 0; i < 600; i++ {
		rec := normalRecord(rng)
		if regression[i] {
			rec[queue] = 0.1                        // queue is empty…
			rec[latency] = 0.9 + rng.Float64()*0.05 // …but latency spiked
		}
		alerts, err := monitor.Push(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range alerts {
			alerted++
			fmt.Printf("record %d flagged (z = %.1f)\n", a.Sequence, a.ZScore)
			if len(a.Explanation) > 0 {
				top := a.Explanation[0].Subspace
				fmt.Printf("  explanation: look at {%s, %s}\n",
					metricNames[top[0]], metricNames[top[1]])
			}
			if regression[a.Sequence] {
				fmt.Println("  ✓ that is one of the injected regression records")
			}
		}
	}
	fmt.Printf("\nstream done: %d records, %d window evaluations, %d alerts\n",
		monitor.Seen(), monitor.Evaluations(), alerted)
}

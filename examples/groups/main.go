// Groups: partition anomalies into recurring patterns, each with one
// characterizing subspace.
//
// A quality team reviews flagged units from two production lines. Faults
// come in families: one batch violates the voltage/current coupling,
// another the two temperature probes, a third the vibration trio. Instead
// of a flat ranked list interleaving all faults, the group summarizer
// returns "these 5 units share fault pattern {volt, curr}; those 4 share
// {temp_a, temp_b}" — the group-based explanation the paper's future-work
// section points to (Macha & Akoglu 2018).
//
// Run with: go run ./examples/groups
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"anex"
)

func main() {
	ctx := context.Background()
	// Plant three fault families in a 12-feature inspection log.
	ds, gt, err := anex.GenerateSubspaceOutliers(anex.SubspaceOutlierConfig{
		Name:                "inspection-log",
		TotalDims:           12,
		SubspaceDims:        []int{2, 2, 3},
		N:                   400,
		OutliersPerSubspace: 5,
		Seed:                77,
	})
	if err != nil {
		log.Fatal(err)
	}
	flagged := gt.Outliers()
	fmt.Printf("inspection log: %d units × %d measurements, %d flagged\n", ds.N(), ds.D(), len(flagged))
	fmt.Printf("planted fault families: %v\n\n", gt.AllSubspaces())

	det := anex.CachedDetector(anex.NewLOF(15))
	g := anex.NewGroupSummarizer(det)
	g.MinGroupSize = 3

	// The 2d families first…
	groups2, err := g.GroupOutliers(ctx, ds, flagged, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fault families by measurement pair:")
	for i, grp := range groups2 {
		fmt.Printf("  family %d: %d units %v share %v (mean z %.1f)\n",
			i+1, len(grp.Points), grp.Points, grp.Subspace.Subspace, grp.Subspace.Score)
	}

	// …then check the triple family at 3d.
	groups3, err := g.GroupOutliers(ctx, ds, flagged, 3)
	if err != nil {
		log.Fatal(err)
	}
	var tripleHit string
	for _, grp := range groups3 {
		for _, planted := range gt.AllSubspaces() {
			if planted.Dim() == 3 && grp.Subspace.Subspace.Equal(planted) {
				tripleHit = fmt.Sprintf("%d units share the planted triple %v", len(grp.Points), planted)
			}
		}
	}
	fmt.Println()
	if tripleHit != "" {
		fmt.Println("✓ " + tripleHit)
	} else {
		fmt.Println("triple family not isolated at 3d on this draw")
	}

	fmt.Println("\n" + strings.Repeat("-", 60))
	fmt.Println("compare: a flat LookOut summary interleaves all families")
	lookout := anex.NewLookOut(det)
	lookout.Budget = 3
	flat, err := lookout.Summarize(ctx, ds, flagged, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range flat {
		fmt.Printf("  %d. %v  gain %.1f (no unit assignment)\n", i+1, s.Subspace, s.Score)
	}
}

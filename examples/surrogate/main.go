// Surrogate: predictive explanations — the paper's concluding proposal —
// against classic per-point subspace search.
//
// Subspace explanations are descriptive: they must be recomputed for every
// new batch, and each point costs a fresh subspace search. The paper's
// future-work sketch: fit a surrogate model on the detector's scores once,
// then explain any point in O(tree depth) through the minimal feature
// signature the surrogate consults. This example runs both on the same
// dataset and compares cost and answers.
//
// Run with: go run ./examples/surrogate
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anex"
)

func main() {
	ctx := context.Background()
	ds, flagged, err := anex.GenerateFullSpaceOutliers(anex.FullSpaceOutlierConfig{
		Name: "claims", N: 400, D: 12, NumOutliers: 30, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	det := anex.NewLOF(15)

	// One-time surrogate fitting on the detector's full-space scores.
	start := time.Now()
	forest, r2, err := anex.ExplainDetectorWithSurrogate(ctx, ds, det, anex.SurrogateForestOptions{
		Trees: 25, Seed: 1, Tree: anex.SurrogateTreeOptions{MaxDepth: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	fitTime := time.Since(start)
	fmt.Printf("surrogate fitted in %s, fidelity R² = %.2f\n\n", fitTime.Round(time.Millisecond), r2)

	fmt.Println("global feature importance (what drives the detector overall):")
	imp := forest.FeatureImportance()
	for f, v := range imp {
		if v >= 0.05 {
			fmt.Printf("  %s %.0f%%\n", ds.FeatureName(f), v*100)
		}
	}

	// Per-point: predictive signature vs Beam subspace search.
	p := flagged[0]
	row := make([]float64, ds.D())

	start = time.Now()
	sig := forest.Signature(ds.Row(p, row), 3)
	sigTime := time.Since(start)

	beam := anex.NewBeamFX(anex.CachedDetector(det))
	start = time.Now()
	searched, err := beam.ExplainPoint(ctx, ds, p, 2)
	if err != nil {
		log.Fatal(err)
	}
	searchTime := time.Since(start)

	fmt.Printf("\npoint %d:\n", p)
	fmt.Printf("  predictive signature (surrogate, %s):   %v\n", sigTime.Round(time.Microsecond), sig)
	fmt.Printf("  descriptive search  (Beam+LOF, %s): %v\n", searchTime.Round(time.Millisecond), searched[0].Subspace)
	fmt.Printf("  search-to-signature cost ratio: %.0f×\n", float64(searchTime)/float64(sigTime))

	overlap := sig.Intersect(searched[0].Subspace)
	if overlap.Dim() > 0 {
		fmt.Printf("  the two explanations agree on %v\n", overlap)
	}
	fmt.Println("\ntrade-off: the surrogate amortises one fit over every future")
	fmt.Println("explanation, at fidelity R² rather than exactness — precisely the")
	fmt.Println("descriptive-vs-predictive distinction the paper closes with.")
}

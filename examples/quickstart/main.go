// Quickstart: detect an outlier in a small 2-cluster dataset and explain
// WHICH feature pair makes it abnormal.
//
// The dataset has ten features. temp/pressure carry two dense clusters with
// one planted point matching neither; the other eight features are uniform
// noise. The point looks ordinary on every single feature AND in the full
// feature space (the noise drowns its deviation) — only the
// {temp, pressure} combination reveals it, which is exactly the situation
// subspace explanation is for.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"anex"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	const n = 300

	const noiseDims = 8
	rows := make([][]float64, n)
	for i := range rows {
		// Two clusters on the F0/F1 diagonal: (0.25, 0.25) and (0.75, 0.75).
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		row := []float64{
			base + rng.NormFloat64()*0.03,
			base + rng.NormFloat64()*0.03,
		}
		for j := 0; j < noiseDims; j++ {
			row = append(row, rng.Float64())
		}
		rows[i] = row
	}
	// The anomaly: each coordinate is within the normal range, but the
	// combination (0.25, 0.75) matches neither cluster.
	const suspect = 0
	rows[suspect][0], rows[suspect][1] = 0.25, 0.75

	names := []string{"temp", "pressure"}
	for j := 0; j < noiseDims; j++ {
		names = append(names, fmt.Sprintf("aux%d", j))
	}
	ds, err := anex.FromRows("quickstart", rows, names)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: an off-the-shelf detector confirms the point is NOT visible
	// in the full feature space (the noise features mask it).
	det := anex.NewLOF(15)
	full, err := det.Scores(ctx, ds.FullView())
	if err != nil {
		log.Fatal(err)
	}
	rank := 1
	for i, s := range full {
		if i != suspect && s > full[suspect] {
			rank++
		}
	}
	fmt.Printf("full-space LOF rank of the suspect point: %d of %d (masked by noise features)\n", rank, ds.N())

	// Step 2: ask Beam which 2d subspace explains the point's outlyingness.
	beam := anex.NewBeamFX(det)
	explanations, err := beam.ExplainPoint(ctx, ds, suspect, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop explaining subspaces (Beam + LOF):")
	for i, e := range explanations[:3] {
		fmt.Printf("  %d. %s  standardised outlyingness %.2f\n", i+1, featureNames(ds, e.Subspace), e.Score)
	}

	best := explanations[0].Subspace
	if best.Equal(anex.NewSubspace(0, 1)) {
		fmt.Println("\n✓ the {temp, pressure} combination explains the anomaly, as planted")
	} else {
		fmt.Printf("\nunexpected top subspace %v\n", best)
	}
}

func featureNames(ds *anex.Dataset, s anex.Subspace) string {
	out := "{"
	for i, f := range s {
		if i > 0 {
			out += ", "
		}
		out += ds.FeatureName(f)
	}
	return out + "}"
}

// Fraud: explain which transaction attributes make flagged transactions
// suspicious, comparing detectors the way the paper does.
//
// A payments dataset has 10 numeric attributes (amount, velocity, hour,
// merchant-risk, …) whose normal behaviour forms a few correlated customer
// profiles. Fraudulent transactions deviate across the whole attribute
// space — the classic full-space outlier of the paper's real datasets. An
// analyst wants, per flagged transaction, the 2–3 attributes to look at
// first.
//
// The example derives a detector-based ground truth exactly like the paper
// (exhaustive LOF search per dimensionality) and then shows the paper's
// headline result on full-space outliers: the stage-wise search (Beam)
// paired with the right detector dominates the random-projection search
// (RefOut).
//
// Run with: go run ./examples/fraud
package main

import (
	"context"
	"fmt"
	"log"

	"anex"
)

func main() {
	ctx := context.Background()
	ds, flagged, err := anex.GenerateFullSpaceOutliers(anex.FullSpaceOutlierConfig{
		Name:        "transactions",
		N:           400,
		D:           10,
		NumOutliers: 24,
		Seed:        99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transactions: %d × %d attributes, %d flagged as fraud\n", ds.N(), ds.D(), len(flagged))

	// Ground truth: for each flagged transaction, the attribute pair and
	// triple where it deviates most (exhaustive LOF search, Section 3.2).
	lof := anex.NewLOF(15)
	gt, err := anex.DeriveGroundTruth(ctx, ds, flagged, []int{2, 3}, lof)
	if err != nil {
		log.Fatal(err)
	}

	// Show one concrete explanation.
	p := flagged[0]
	beam := anex.NewBeamFX(anex.CachedDetector(lof))
	list, err := beam.ExplainPoint(ctx, ds, p, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransaction %d — attributes to investigate first (Beam + LOF):\n", p)
	for i, e := range list[:3] {
		fmt.Printf("  %d. %v  standardised outlyingness %.2f\n", i+1, e.Subspace, e.Score)
	}

	// Reproduce the paper's comparison in miniature: MAP of each
	// detector × point-explainer pipeline at 2d.
	fmt.Println("\nMAP at 2d per pipeline (cf. the paper's Figure 9 f–h):")
	detectors := []struct {
		name string
		det  anex.Detector
	}{
		{"LOF", anex.NewLOF(15)},
		{"FastABOD", anex.NewFastABOD(10)},
		{"iForest", anex.NewIsolationForest(5)},
	}
	for _, d := range detectors {
		cached := anex.CachedDetector(d.det)
		beamRes := anex.ExplainOutliers(ctx, ds, gt, d.name, anex.NewBeamFX(cached), 2)
		refoutRes := anex.ExplainOutliers(ctx, ds, gt, d.name, anex.NewRefOut(cached, 1), 2)
		if beamRes.Err != nil || refoutRes.Err != nil {
			log.Fatal(beamRes.Err, refoutRes.Err)
		}
		fmt.Printf("  %-9s Beam %.2f   RefOut %.2f\n", d.name, beamRes.MAP, refoutRes.MAP)
	}
	fmt.Println("\nexpected shape (paper, full-space outliers): Beam+LOF ≈ 1, Beam with")
	fmt.Println("other detectors lower, RefOut behind Beam regardless of detector.")
}

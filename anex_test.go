package anex_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"anex"
)

// plantedDataset builds a small dataset through the public API with one
// planted 2d subspace outlier structure.
func plantedDataset(t *testing.T, seed int64) (*anex.Dataset, *anex.GroundTruth) {
	t.Helper()
	ds, gt, err := anex.GenerateSubspaceOutliers(anex.SubspaceOutlierConfig{
		Name:                "api-test",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   180,
		OutliersPerSubspace: 3,
		Seed:                seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, gt := plantedDataset(t, 1)
	det := anex.CachedDetector(anex.NewLOF(15))

	// Point explanation through the public API.
	beam := anex.NewBeamFX(det)
	p := gt.Outliers()[0]
	list, err := beam.ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("no explanations")
	}
	rel := gt.RelevantAt(p, 2)
	res := anex.EvaluatePoint(p, anex.Subspaces(list), rel)
	if res.AveP <= 0 {
		t.Errorf("AveP = %v, planted subspace not found", res.AveP)
	}

	// Summarization through the public API.
	lookout := anex.NewLookOut(det)
	lookout.Budget = 10
	summary, err := lookout.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary) != 10 {
		t.Errorf("summary size %d", len(summary))
	}

	// Pipeline helpers.
	pres := anex.ExplainOutliers(context.Background(), ds, gt, "LOF", beam, 2)
	if pres.Err != nil || pres.MAP <= 0 {
		t.Errorf("ExplainOutliers: %+v", pres)
	}
	sres := anex.SummarizeOutliers(context.Background(), ds, gt, "LOF", lookout, 2)
	if sres.Err != nil || sres.MAP <= 0 {
		t.Errorf("SummarizeOutliers: %+v", sres)
	}
}

func TestPublicAPISubspaceHelpers(t *testing.T) {
	s := anex.NewSubspace(3, 1, 3)
	if s.Key() != "1,3" {
		t.Errorf("Key = %q", s.Key())
	}
	parsed, err := anex.ParseSubspace("1,3")
	if err != nil || !parsed.Equal(s) {
		t.Errorf("ParseSubspace: %v, %v", parsed, err)
	}
	rng := rand.New(rand.NewSource(1))
	r := anex.RandomSubspace(rng, 10, 3)
	if r.Dim() != 3 {
		t.Errorf("RandomSubspace dim %d", r.Dim())
	}
}

func TestPublicAPIDataConstruction(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	ds, err := anex.FromRows("rows", rows, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.D() != 2 || ds.FeatureName(1) != "y" {
		t.Error("FromRows wrong")
	}
	cols := [][]float64{{1, 3, 5}, {2, 4, 6}}
	ds2, err := anex.FromColumns("cols", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if ds.Value(i, 0) != ds2.Value(i, 0) || ds.Value(i, 1) != ds2.Value(i, 1) {
			t.Error("rows/columns disagree")
		}
	}
	csv := "x,y\n1,2\n3,4\n"
	ds3, err := anex.ReadCSV("csv", strings.NewReader(csv), true)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.N() != 2 || ds3.FeatureName(0) != "x" {
		t.Error("ReadCSV wrong")
	}
}

func TestPublicAPIMetrics(t *testing.T) {
	rel := []anex.Subspace{anex.NewSubspace(0, 1)}
	ret := []anex.Subspace{anex.NewSubspace(2, 3), anex.NewSubspace(0, 1)}
	if got := anex.Recall(ret, rel); got != 1 {
		t.Errorf("Recall = %v", got)
	}
	if got := anex.Precision(ret, rel); got != 0.5 {
		t.Errorf("Precision = %v", got)
	}
	if got := anex.AveragePrecision(ret, rel); got != 0.5 {
		t.Errorf("AveP = %v", got)
	}
	results := []anex.PointResult{{AveP: 1, Recall: 0.5}, {AveP: 0, Recall: 0.5}}
	if anex.MAP(results) != 0.5 || anex.MeanRecall(results) != 0.5 {
		t.Error("MAP/MeanRecall wrong")
	}
}

func TestPublicAPIGroundTruth(t *testing.T) {
	gt := anex.NewGroundTruth(map[int][]anex.Subspace{
		4: {anex.NewSubspace(0, 1)},
	})
	if !gt.IsOutlier(4) || gt.NumOutliers() != 1 {
		t.Error("NewGroundTruth wrong")
	}
	ds, outliers, err := anex.GenerateFullSpaceOutliers(anex.FullSpaceOutlierConfig{
		Name: "full", N: 80, D: 6, NumOutliers: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	derived, err := anex.DeriveGroundTruth(context.Background(), ds, outliers, []int{2}, anex.NewLOF(10))
	if err != nil {
		t.Fatal(err)
	}
	if derived.NumOutliers() != 8 {
		t.Errorf("derived outliers %d", derived.NumOutliers())
	}
}

func TestPublicAPIDetectorConstructors(t *testing.T) {
	ds, _ := plantedDataset(t, 3)
	for _, det := range []anex.Detector{
		anex.NewLOF(0),
		anex.NewFastABOD(0),
		anex.NewIsolationForest(1),
	} {
		scores, err := det.Scores(context.Background(), ds.FullView())
		if err != nil {
			t.Fatalf("%s: %v", det.Name(), err)
		}
		if len(scores) != ds.N() {
			t.Errorf("%s returned %d scores", det.Name(), len(scores))
		}
	}
	hics := anex.NewHiCSFX(anex.NewLOF(15), 1)
	if hics.Name() != "HiCS_FX" {
		t.Error("HiCS_FX name")
	}
	refout := anex.NewRefOut(anex.NewLOF(15), 1)
	if refout.Name() != "RefOut" {
		t.Error("RefOut name")
	}
}

func TestPublicAPIGroupSummarizer(t *testing.T) {
	ds, gt := plantedDataset(t, 9)
	g := anex.NewGroupSummarizer(anex.CachedDetector(anex.NewLOF(15)))
	groups, err := g.GroupOutliers(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, grp := range groups {
		total += len(grp.Points)
	}
	if total != gt.NumOutliers() {
		t.Errorf("groups cover %d of %d outliers", total, gt.NumOutliers())
	}
	// It also serves as a Summarizer.
	var _ anex.Summarizer = g
}

func TestPublicAPIRunGrid(t *testing.T) {
	ds, gt := plantedDataset(t, 10)
	results, gerr := anex.RunGrid(context.Background(), anex.GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        []int{2},
		Seed:        1,
		Options: anex.PipelineOptions{
			BeamWidth: 8, RefOutPoolSize: 20, RefOutWidth: 8,
			LookOutBudget: 8, HiCSCutoff: 20, HiCSIterations: 15, TopK: 8,
		},
		Detectors: []anex.NamedDetector{
			{Name: "LOF", Detector: anex.CachedDetector(anex.NewLOF(15))},
		},
		Workers: 2,
	})
	if gerr != nil {
		t.Fatal(gerr)
	}
	if len(results) != 4 {
		t.Fatalf("%d grid results, want 4 (one detector × four algorithms)", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Detector, r.Explainer, r.Err)
		}
	}
}

func TestPublicAPILODAAndStream(t *testing.T) {
	ds, _ := plantedDataset(t, 11)
	model := anex.FitLODA(ds.FullView().Points(), 50, 0, 1)
	if model.Dim() != ds.D() {
		t.Errorf("model dim %d", model.Dim())
	}
	feat := model.FeatureScores(ds.FullView().Point(0))
	if len(feat) != ds.D() {
		t.Errorf("feature scores %v", feat)
	}
	mon, err := anex.NewStreamMonitor(anex.StreamConfig{
		WindowSize: 32,
		Detector:   anex.NewLODA(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, ds.D())
	for i := 0; i < 40; i++ {
		if _, err := mon.Push(context.Background(), ds.Row(i, row)); err != nil {
			t.Fatal(err)
		}
	}
	if mon.Seen() != 40 {
		t.Errorf("Seen = %d", mon.Seen())
	}
}

func TestPublicAPIDetectorQualityMetrics(t *testing.T) {
	scores := []float64{5, 4, 3, 2, 1}
	labels := []bool{true, true, false, false, false}
	if auc := anex.ROCAUC(scores, labels); auc != 1 {
		t.Errorf("AUC = %v", auc)
	}
	if p := anex.PrecisionAtN(scores, labels, 0); p != 1 {
		t.Errorf("P@n = %v", p)
	}
	if ap := anex.AveragePrecisionScore(scores, labels); ap != 1 {
		t.Errorf("AP = %v", ap)
	}
}

func TestPublicAPISurrogate(t *testing.T) {
	ds, gt := plantedDataset(t, 12)
	forest, r2, err := anex.ExplainDetectorWithSurrogate(context.Background(), ds, anex.NewLOF(15), anex.SurrogateForestOptions{
		Trees: 10, Seed: 1, Tree: anex.SurrogateTreeOptions{MaxDepth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if forest.Size() != 10 {
		t.Errorf("forest size %d", forest.Size())
	}
	if r2 < -1 || r2 > 1 {
		t.Errorf("R² = %v out of range", r2)
	}
	row := make([]float64, ds.D())
	sig := forest.Signature(ds.Row(gt.Outliers()[0], row), 3)
	if sig.Dim() > 3 {
		t.Errorf("signature %v exceeds cap", sig)
	}
	target, err := anex.NewLOF(15).Scores(context.Background(), ds.FullView())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := anex.FitSurrogateTree(ds, target, anex.SurrogateTreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Dim() != ds.D() {
		t.Errorf("tree dim %d", tree.Dim())
	}
}

func TestPublicAPIPlotAndRankedSummaries(t *testing.T) {
	ds, gt := plantedDataset(t, 14)
	var buf strings.Builder
	err := anex.PlotSubspace(&buf, ds, anex.NewSubspace(0, 1), anex.PlotOptions{
		Highlight: gt.Outliers(), Width: 20, Height: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "✗") {
		t.Error("plot missing highlight marker")
	}
	det := anex.CachedDetector(anex.NewLOF(15))
	lo := anex.NewLookOut(det)
	lo.Budget = 10
	res := anex.SummarizeOutliersRanked(context.Background(), ds, gt, "LOF", lo, det, 2)
	if res.Err != nil || res.MAP <= 0 {
		t.Errorf("ranked summaries: %+v", res)
	}
	// LODA and kNN-dist constructors.
	for _, d := range []anex.Detector{anex.NewLODA(1), anex.NewKNNDist(0)} {
		got, derr := d.Scores(context.Background(), ds.FullView())
		if derr != nil {
			t.Fatalf("%s: %v", d.Name(), derr)
		}
		if len(got) != ds.N() {
			t.Errorf("%s scores %d", d.Name(), len(got))
		}
	}
	// ReadGroundTruthJSON round trip through the public API.
	var gtBuf strings.Builder
	if err := gt.WriteJSON(&gtBuf); err != nil {
		t.Fatal(err)
	}
	back, err := anex.ReadGroundTruthJSON(strings.NewReader(gtBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOutliers() != gt.NumOutliers() {
		t.Error("ground truth JSON round trip")
	}
	// CSV load/save through the public API.
	path := t.TempDir() + "/api.csv"
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back2, err := anex.LoadCSV("api", path)
	if err != nil {
		t.Fatal(err)
	}
	if back2.N() != ds.N() {
		t.Error("CSV round trip")
	}
}

// Package core defines the shared vocabulary of the testbed — the paper's
// Figure 7 pipeline contracts. A Detector assigns outlyingness scores to
// every point of a subspace view; a PointExplainer ranks subspaces
// explaining one point's outlyingness (Beam, RefOut); a Summarizer ranks
// subspaces jointly explaining a set of outliers (LookOut, HiCS). All
// algorithms exchange results as ranked ScoredSubspace lists.
package core

import (
	"context"
	"fmt"
	"sort"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

// Detector is an unsupervised outlier detector. Scores returns one
// outlyingness score per point of the view, where HIGHER means MORE
// outlying. Detectors whose native score is inverted (ABOD) must negate or
// transform internally so every consumer can assume this orientation.
//
// Every algorithm observes ctx between units of work (points, candidate
// subspaces), so a deadline or cancellation propagates through the whole
// execution stack: a cancelled Scores call returns ctx's error and its
// partial output must be discarded.
type Detector interface {
	// Name identifies the detector in experiment output ("LOF", …).
	Name() string
	// Scores computes an outlyingness score for every point of the view,
	// observing ctx between points. On error the returned slice is invalid.
	Scores(ctx context.Context, v *dataset.View) ([]float64, error)
}

// StatScorer is implemented by detectors (or wrappers) that can answer a
// Scores call together with the population mean and variance of the
// returned distribution. Memoising detectors implement it so that Z-score
// standardisation — recomputed per (point, subspace) by the explainers —
// costs O(1) on a cache hit instead of a fresh O(n) pass over the scores.
// The moments must equal stats.PopulationMeanVariance(scores) bit for bit.
type StatScorer interface {
	// ScoresWithStats is Scores plus the population moments of its result.
	ScoresWithStats(ctx context.Context, v *dataset.View) (scores []float64, mean, variance float64, err error)
}

// PointExplainer ranks the subspaces of the requested dimensionality that
// best explain the outlyingness of a single point.
type PointExplainer interface {
	// Name identifies the explainer in experiment output ("Beam", …).
	Name() string
	// ExplainPoint returns subspaces ranked by how well they explain the
	// outlyingness of point p, best first. targetDim is the requested
	// explanation dimensionality. Cancellation of ctx aborts the search
	// with ctx's error.
	ExplainPoint(ctx context.Context, ds *dataset.Dataset, p, targetDim int) ([]ScoredSubspace, error)
}

// Summarizer ranks the subspaces of the requested dimensionality that
// jointly separate as many of the given outlier points from the inliers as
// possible.
type Summarizer interface {
	// Name identifies the summarizer in experiment output ("LookOut", …).
	Name() string
	// Summarize returns subspaces ranked by collective explanation
	// quality for the given points, best first. Cancellation of ctx aborts
	// the search with ctx's error.
	Summarize(ctx context.Context, ds *dataset.Dataset, points []int, targetDim int) ([]ScoredSubspace, error)
}

// ScoredSubspace pairs a subspace with the score its producer assigned.
// Score semantics are producer-specific (Z-scored outlyingness for Beam,
// t-statistic discrepancy for RefOut, marginal gain for LookOut, contrast
// for HiCS); only the ranking is comparable across producers.
type ScoredSubspace struct {
	Subspace subspace.Subspace
	Score    float64
}

func (s ScoredSubspace) String() string {
	return fmt.Sprintf("%v: %.4f", s.Subspace, s.Score)
}

// SortByScore orders the list by descending score; ties break on the
// canonical subspace key so results are deterministic.
func SortByScore(list []ScoredSubspace) {
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].Score != list[j].Score {
			return list[i].Score > list[j].Score
		}
		return list[i].Subspace.Key() < list[j].Subspace.Key()
	})
}

// TopK truncates the list to its first k entries (after the caller has
// ordered it); it returns the list unchanged when k ≤ 0 or k ≥ len(list).
func TopK(list []ScoredSubspace, k int) []ScoredSubspace {
	if k <= 0 || k >= len(list) {
		return list
	}
	return list[:k]
}

// Subspaces projects the ranked list onto its subspaces, preserving order.
func Subspaces(list []ScoredSubspace) []subspace.Subspace {
	out := make([]subspace.Subspace, len(list))
	for i, s := range list {
		out[i] = s.Subspace
	}
	return out
}

// ValidateExplainArgs checks the common preconditions of ExplainPoint
// implementations.
func ValidateExplainArgs(ds *dataset.Dataset, p, targetDim int) error {
	if ds == nil {
		return fmt.Errorf("explain: nil dataset")
	}
	if p < 0 || p >= ds.N() {
		return fmt.Errorf("explain: point %d out of range [0, %d)", p, ds.N())
	}
	if targetDim < 1 || targetDim > ds.D() {
		return fmt.Errorf("explain: target dimensionality %d out of range [1, %d]", targetDim, ds.D())
	}
	return nil
}

// ValidateSummarizeArgs checks the common preconditions of Summarize
// implementations.
func ValidateSummarizeArgs(ds *dataset.Dataset, points []int, targetDim int) error {
	if ds == nil {
		return fmt.Errorf("summarize: nil dataset")
	}
	if len(points) == 0 {
		return fmt.Errorf("summarize: no points of interest")
	}
	for _, p := range points {
		if p < 0 || p >= ds.N() {
			return fmt.Errorf("summarize: point %d out of range [0, %d)", p, ds.N())
		}
	}
	if targetDim < 1 || targetDim > ds.D() {
		return fmt.Errorf("summarize: target dimensionality %d out of range [1, %d]", targetDim, ds.D())
	}
	return nil
}

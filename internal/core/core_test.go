package core

import (
	"testing"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

func scored(key string, score float64) ScoredSubspace {
	s, err := subspace.Parse(key)
	if err != nil {
		panic(err)
	}
	return ScoredSubspace{Subspace: s, Score: score}
}

func TestSortByScore(t *testing.T) {
	list := []ScoredSubspace{
		scored("0,1", 0.5),
		scored("2,3", 0.9),
		scored("4,5", 0.5),
		scored("1,2", 0.1),
	}
	SortByScore(list)
	if list[0].Score != 0.9 || list[3].Score != 0.1 {
		t.Fatalf("order: %v", list)
	}
	// Equal scores tie-break on key: "0,1" before "4,5".
	if list[1].Subspace.Key() != "0,1" || list[2].Subspace.Key() != "4,5" {
		t.Errorf("tie-break: %v", list)
	}
}

func TestTopK(t *testing.T) {
	list := []ScoredSubspace{scored("0", 3), scored("1", 2), scored("2", 1)}
	if got := TopK(list, 2); len(got) != 2 {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := TopK(list, 0); len(got) != 3 {
		t.Errorf("TopK(0) should keep all, got %v", got)
	}
	if got := TopK(list, 10); len(got) != 3 {
		t.Errorf("TopK(10) should keep all, got %v", got)
	}
}

func TestSubspaces(t *testing.T) {
	list := []ScoredSubspace{scored("0,1", 1), scored("2", 0)}
	subs := Subspaces(list)
	if len(subs) != 2 || !subs[0].Equal(subspace.New(0, 1)) || !subs[1].Equal(subspace.New(2)) {
		t.Errorf("Subspaces = %v", subs)
	}
}

func TestScoredSubspaceString(t *testing.T) {
	if got := scored("0,2", 0.5).String(); got != "{F0, F2}: 0.5000" {
		t.Errorf("String = %q", got)
	}
}

func TestValidateExplainArgs(t *testing.T) {
	ds, err := dataset.New("d", [][]float64{{1, 2, 3}, {4, 5, 6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExplainArgs(ds, 0, 2); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
	cases := []struct {
		ds   *dataset.Dataset
		p, d int
	}{
		{nil, 0, 2},
		{ds, -1, 2},
		{ds, 3, 2},
		{ds, 0, 0},
		{ds, 0, 3},
	}
	for i, c := range cases {
		if err := ValidateExplainArgs(c.ds, c.p, c.d); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateSummarizeArgs(t *testing.T) {
	ds, err := dataset.New("d", [][]float64{{1, 2, 3}, {4, 5, 6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSummarizeArgs(ds, []int{0, 2}, 2); err != nil {
		t.Errorf("valid args rejected: %v", err)
	}
	cases := []struct {
		ds   *dataset.Dataset
		pts  []int
		dim  int
		name string
	}{
		{nil, []int{0}, 2, "nil dataset"},
		{ds, nil, 2, "no points"},
		{ds, []int{5}, 2, "out-of-range point"},
		{ds, []int{0}, 0, "zero dim"},
		{ds, []int{0}, 9, "dim > D"},
	}
	for _, c := range cases {
		if err := ValidateSummarizeArgs(c.ds, c.pts, c.dim); err == nil {
			t.Errorf("%s should fail", c.name)
		}
	}
}

package pipeline

import (
	"context"
	"reflect"
	"testing"

	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/synth"
)

// knnDetectors builds fresh instances of the three kNN-backed detectors —
// the workload whose neighbourhood structure the plane deduplicates — all
// wired to the given plane (nil → every detector on its private fallback
// path).
func knnDetectors(p *neighbors.Plane) []NamedDetector {
	lof := detector.NewLOF(15)
	lof.SetNeighbors(p)
	abod := detector.NewFastABOD(10)
	abod.SetNeighbors(p)
	knn := detector.NewKNNDist(10)
	knn.SetNeighbors(p)
	return []NamedDetector{
		{Name: "LOF", Detector: lof},
		{Name: "FastABOD", Detector: abod},
		{Name: "kNN-dist", Detector: knn},
	}
}

func planeTestbed(t testing.TB) (*dataset.Dataset, *dataset.GroundTruth) {
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "grid-plane",
		TotalDims:           6,
		SubspaceDims:        []int{2, 2},
		N:                   160,
		OutliersPerSubspace: 3,
		Seed:                11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

func planeGridOptions() Options {
	return Options{BeamWidth: 8, RefOutPoolSize: 20, RefOutWidth: 8, LookOutBudget: 6, HiCSCutoff: 20, HiCSIterations: 10, TopK: 8}
}

// TestGridSchedulerInvariance is the grid-level determinism contract of
// this layer: RunGrid's results are byte-identical (timings aside) with
// cost-aware scheduling on or off, at any worker count, with a shared
// neighbourhood plane, per-detector private planes, or no plane at all.
// Scheduling only reorders dispatch, and the plane only changes WHERE
// neighbourhoods are computed — never their values.
func TestGridSchedulerInvariance(t *testing.T) {
	ds, gt := planeTestbed(t)
	opts := planeGridOptions()
	run := func(plane bool, noSched bool, workers int) []Result {
		var p *neighbors.Plane
		if plane {
			p = neighbors.NewPlane(0)
		}
		res, err := RunGrid(context.Background(), GridSpec{
			Dataset: ds, GroundTruth: gt, Dims: []int{2, 3}, Seed: 5,
			Options: opts, Detectors: knnDetectors(p),
			Workers: workers, NoSched: noSched,
			Prefetch: plane && !noSched,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("cell %s/%s/%dd failed: %v", r.Detector, r.Explainer, r.TargetDim, r.Err)
			}
		}
		return stripTimings(res)
	}
	want := run(false, true, 1) // unshared, FIFO, serial: the reference
	for _, plane := range []bool{false, true} {
		for _, noSched := range []bool{false, true} {
			for _, workers := range []int{1, 2, 4} {
				got := run(plane, noSched, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("plane=%v noSched=%v workers=%d: results differ from reference", plane, noSched, workers)
				}
			}
		}
	}
}

// TestGridPlaneDedupFactor asserts the plane actually pays for itself on
// the paper's workload shape: a grid pairing the three kNN detectors with
// all four explainers must answer at least 1.5 neighbourhood queries per
// kNN computation (the ISSUE-5 floor; three detectors per subspace put the
// ideal near 3).
func TestGridPlaneDedupFactor(t *testing.T) {
	ds, gt := planeTestbed(t)
	p := neighbors.NewPlane(0)
	res, err := RunGrid(context.Background(), GridSpec{
		Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 5,
		Options: planeGridOptions(), Detectors: knnDetectors(p), Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %s/%s failed: %v", r.Detector, r.Explainer, r.Err)
		}
	}
	st := p.Stats()
	if st.Queries == 0 || st.Computations == 0 {
		t.Fatalf("plane never engaged: %+v", st)
	}
	if f := st.DedupFactor(); f < 1.5 {
		t.Errorf("dedup factor %.2f < 1.5: %s", f, st)
	}
}

// TestGridPrefetchWarmsPlane: with Prefetch set, the 1d/2d sweeps are
// resident before cells run, so a subsequent grid pass over the same plane
// computes nothing new for 2d cells beyond what warming built.
func TestGridPrefetchWarmsPlane(t *testing.T) {
	ds, gt := planeTestbed(t)
	p := neighbors.NewPlane(0)
	spec := GridSpec{
		Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 5,
		Options: planeGridOptions(), Detectors: knnDetectors(p),
		Workers: 1, Prefetch: true,
	}
	if _, err := RunGrid(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// 6 features → 6 one-dim + 15 two-dim views warmed; the grid itself
	// may add full-space and deeper entries, but the sweep must be there.
	if st.Computations < 21 {
		t.Fatalf("prefetch computed %d entries, want ≥ 21 (1d+2d sweep)", st.Computations)
	}
	if f := st.DedupFactor(); f < 1.5 {
		t.Errorf("dedup factor %.2f < 1.5 after prefetch: %s", f, st)
	}
}

// TestGridSpecPlaneWiring: GridSpec.Plane reaches the factory-built kNN
// detectors — running the default grid against an injected plane populates
// exactly that plane.
func TestGridSpecPlaneWiring(t *testing.T) {
	ds, gt := planeTestbed(t)
	p := neighbors.NewPlane(0)
	res, err := RunGrid(context.Background(), GridSpec{
		Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 5,
		Options: planeGridOptions(), Cached: true, Plane: p, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("empty grid")
	}
	if st := p.Stats(); st.Queries == 0 {
		t.Fatalf("injected plane never queried: %+v", st)
	}
}

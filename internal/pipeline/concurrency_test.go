package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
)

// failAtPoints explains every point with a fixed trivial list except the
// designated points, which error — the probe for the partial-failure path.
type failAtPoints struct {
	fail map[int]bool
}

func (f failAtPoints) Name() string { return "fail-at" }

func (f failAtPoints) ExplainPoint(_ context.Context, ds *dataset.Dataset, p, targetDim int) ([]core.ScoredSubspace, error) {
	if f.fail[p] {
		return nil, fmt.Errorf("planted failure for point %d", p)
	}
	return []core.ScoredSubspace{{Subspace: ds.FullView().Subspace()[:targetDim], Score: 1}}, nil
}

// TestRunPointExplanationErrorKeepsPartialResults covers the error-path
// regression: a mid-run explainer failure must still record the wall-clock
// Duration and keep the per-point evaluations that did complete.
func TestRunPointExplanationErrorKeepsPartialResults(t *testing.T) {
	ds, gt := testbed(t, 7)
	points := gt.PointsExplainedAt(2)
	if len(points) < 3 {
		t.Fatalf("testbed too small: %d points", len(points))
	}
	victim := points[1]
	pp := PointPipeline{Detector: "LOF", Explainer: failAtPoints{fail: map[int]bool{victim: true}}}
	res := RunPointExplanation(context.Background(), ds, gt, pp, 2)
	if res.Err == nil || !strings.Contains(res.Err.Error(), fmt.Sprintf("point %d", victim)) {
		t.Fatalf("expected error naming point %d, got %v", victim, res.Err)
	}
	if res.Duration <= 0 {
		t.Error("Duration not recorded on the error path")
	}
	if want := len(points) - 1; len(res.PerPoint) != want {
		t.Errorf("PerPoint kept %d results, want the %d completed points", len(res.PerPoint), want)
	}
	for _, pr := range res.PerPoint {
		if pr.Point == victim {
			t.Errorf("failed point %d must not be evaluated", victim)
		}
	}
}

// TestRunPointExplanationErrorIsFirstByIndex pins the deterministic error
// choice: with several failing points, Err names the first in point order
// at any worker count.
func TestRunPointExplanationErrorIsFirstByIndex(t *testing.T) {
	ds, gt := testbed(t, 8)
	points := gt.PointsExplainedAt(2)
	fail := map[int]bool{points[2]: true, points[len(points)-1]: true}
	for _, workers := range []int{1, 8} {
		pp := PointPipeline{Detector: "LOF", Explainer: failAtPoints{fail: fail}, Workers: workers}
		res := RunPointExplanation(context.Background(), ds, gt, pp, 2)
		if res.Err == nil || !strings.Contains(res.Err.Error(), fmt.Sprintf("point %d", points[2])) {
			t.Errorf("workers=%d: want first failing point %d, got %v", workers, points[2], res.Err)
		}
	}
}

// TestRunPointExplanationAllFailKeepsZeroMetrics preserves the original
// contract when nothing completes.
func TestRunPointExplanationAllFailKeepsZeroMetrics(t *testing.T) {
	ds, gt := testbed(t, 9)
	fail := map[int]bool{}
	for _, p := range gt.PointsExplainedAt(2) {
		fail[p] = true
	}
	res := RunPointExplanation(context.Background(), ds, gt, PointPipeline{Detector: "LOF", Explainer: failAtPoints{fail: fail}}, 2)
	if res.Err == nil || len(res.PerPoint) != 0 || res.MAP != 0 || res.MeanRecall != 0 {
		t.Errorf("all-fail run: %+v", res)
	}
	if res.Duration <= 0 {
		t.Error("Duration not recorded")
	}
}

// TestRunGridEmpty covers the empty-grid regression: no dims or no
// detectors must return nil immediately instead of running a zero-worker
// collect loop.
func TestRunGridEmpty(t *testing.T) {
	ds, gt := testbed(t, 10)
	if res, err := RunGrid(context.Background(), GridSpec{Dataset: ds, GroundTruth: gt, Dims: nil, Seed: 1}); res != nil || err != nil {
		t.Errorf("empty Dims: got %d results (err %v), want nil", len(res), err)
	}
	if res, err := RunGrid(context.Background(), GridSpec{Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
		Detectors: []NamedDetector{}}); res != nil || err != nil {
		t.Errorf("empty detector set: got %d results (err %v), want nil", len(res), err)
	}
}

// TestRunGridDeterminismAcrossWorkerCounts is the full determinism
// contract: MAP, MeanRecall AND the per-point evaluation lists are
// identical for Workers: 1 and Workers: 8 — including the inner per-point
// parallelism that 8 buys on this small grid.
func TestRunGridDeterminismAcrossWorkerCounts(t *testing.T) {
	ds, gt := testbed(t, 11)
	opts := Options{BeamWidth: 8, RefOutPoolSize: 20, RefOutWidth: 8, LookOutBudget: 8, HiCSCutoff: 20, HiCSIterations: 15, TopK: 8}
	run := func(workers int) []Result {
		res, err := RunGrid(context.Background(), GridSpec{
			Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
			Options: opts, Cached: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("result counts: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Detector != b.Detector || a.Explainer != b.Explainer || a.TargetDim != b.TargetDim {
			t.Fatalf("cell %d order differs: %s/%s vs %s/%s", i, a.Detector, a.Explainer, b.Detector, b.Explainer)
		}
		if a.MAP != b.MAP || a.MeanRecall != b.MeanRecall || a.PointsEvaluated != b.PointsEvaluated {
			t.Errorf("cell %d metrics differ: MAP %v vs %v, recall %v vs %v",
				i, a.MAP, b.MAP, a.MeanRecall, b.MeanRecall)
		}
		if len(a.PerPoint) != len(b.PerPoint) {
			t.Errorf("cell %d per-point lengths differ: %d vs %d", i, len(a.PerPoint), len(b.PerPoint))
			continue
		}
		for j := range a.PerPoint {
			if a.PerPoint[j] != b.PerPoint[j] {
				t.Errorf("cell %d point %d differs: %+v vs %+v", i, j, a.PerPoint[j], b.PerPoint[j])
			}
		}
	}
}

// TestRunPointExplanationPhaseTimings checks the scoring/search split wired
// through the factory's per-pipeline timers.
func TestRunPointExplanationPhaseTimings(t *testing.T) {
	ds, gt := testbed(t, 12)
	d := NamedDetector{Name: "LOF", Detector: detector.NewLOF(15)}
	pp := PointPipelines(d, 1, Options{BeamWidth: 10, TopK: 10})[0] // Beam_FX, serial
	res := RunPointExplanation(context.Background(), ds, gt, pp, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.ScoringTime <= 0 {
		t.Error("ScoringTime not recorded despite Timer")
	}
	if res.ScoringTime > res.Duration {
		t.Errorf("serial run: ScoringTime %v exceeds Duration %v", res.ScoringTime, res.Duration)
	}
	if got := res.ScoringTime + res.SearchTime; got != res.Duration {
		t.Errorf("serial run: scoring %v + search %v != duration %v", res.ScoringTime, res.SearchTime, res.Duration)
	}
	if res.EvalTime <= 0 {
		t.Error("EvalTime not recorded")
	}
	// A pipeline without a Timer reports no split but still runs.
	bare := PointPipeline{Detector: "LOF", Explainer: explain.NewBeamFX(detector.NewLOF(15))}
	res2 := RunPointExplanation(context.Background(), ds, gt, bare, 2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if res2.ScoringTime != 0 || res2.SearchTime != 0 {
		t.Errorf("timer-less pipeline reported a split: %v / %v", res2.ScoringTime, res2.SearchTime)
	}
}

// TestRunSummarizationPhaseTimings mirrors the split check for summaries.
func TestRunSummarizationPhaseTimings(t *testing.T) {
	ds, gt := testbed(t, 13)
	d := NamedDetector{Name: "LOF", Detector: detector.NewCached(detector.NewLOF(15))}
	sp := SummaryPipelines(d, 1, Options{LookOutBudget: 10, TopK: 10, Workers: 4})[0] // LookOut
	res := RunSummarization(context.Background(), ds, gt, sp, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.ScoringTime <= 0 {
		t.Error("ScoringTime not recorded despite Timer")
	}
	if res.EvalTime <= 0 {
		t.Error("EvalTime not recorded")
	}
}

// TestRunSummarizationWorkerInvariance pins the parallel per-subspace
// ranking loop: identical results at any worker count, with the shared
// cache's singleflight dedup underneath.
func TestRunSummarizationWorkerInvariance(t *testing.T) {
	ds, gt := testbed(t, 14)
	build := func(workers int) SummaryPipeline {
		d := NamedDetector{Name: "LOF", Detector: detector.NewCached(detector.NewLOF(15))}
		sp := SummaryPipelines(d, 1, Options{LookOutBudget: 10, TopK: 10})[0]
		sp.Workers = workers
		return sp
	}
	seq := RunSummarization(context.Background(), ds, gt, build(1), 2)
	par := RunSummarization(context.Background(), ds, gt, build(8), 2)
	if seq.Err != nil || par.Err != nil {
		t.Fatal(seq.Err, par.Err)
	}
	if seq.MAP != par.MAP || seq.MeanRecall != par.MeanRecall {
		t.Errorf("metrics differ across workers: MAP %v vs %v", seq.MAP, par.MAP)
	}
	if len(seq.PerPoint) != len(par.PerPoint) {
		t.Fatalf("per-point lengths differ")
	}
	for j := range seq.PerPoint {
		if seq.PerPoint[j] != par.PerPoint[j] {
			t.Errorf("point %d differs: %+v vs %+v", j, seq.PerPoint[j], par.PerPoint[j])
		}
	}
}

var _ = errors.Is // keep errors import if assertions above change

package pipeline

import (
	"context"
	"errors"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/summarize"
	"anex/internal/synth"
)

func testbed(t *testing.T, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "pipeline-test",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   180,
		OutliersPerSubspace: 3,
		Seed:                seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

func TestRunPointExplanationBeamLOF(t *testing.T) {
	ds, gt := testbed(t, 1)
	pp := PointPipeline{
		Detector:  "LOF",
		Explainer: &explain.Beam{Detector: detector.NewLOF(15), Width: 15, TopK: 10, FixedDim: true},
	}
	res := RunPointExplanation(context.Background(), ds, gt, pp, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Dataset != "pipeline-test" || res.Detector != "LOF" || res.Explainer != "Beam_FX" {
		t.Errorf("labels: %+v", res)
	}
	if res.PointsEvaluated != gt.NumOutliers() {
		t.Errorf("evaluated %d points, want %d", res.PointsEvaluated, gt.NumOutliers())
	}
	// Beam with LOF on easy planted 2d subspaces should be near-perfect.
	if res.MAP < 0.8 {
		t.Errorf("Beam+LOF MAP = %v, want high", res.MAP)
	}
	if res.MeanRecall < 0.8 {
		t.Errorf("Beam+LOF recall = %v", res.MeanRecall)
	}
	if res.Duration <= 0 {
		t.Error("duration not recorded")
	}
	if len(res.PerPoint) != res.PointsEvaluated {
		t.Error("per-point results missing")
	}
}

func TestRunPointExplanationNoPointsAtDim(t *testing.T) {
	ds, gt := testbed(t, 2)
	pp := PointPipeline{Detector: "LOF", Explainer: explain.NewBeamFX(detector.NewLOF(15))}
	res := RunPointExplanation(context.Background(), ds, gt, pp, 5) // nothing explained at 5d
	if res.PointsEvaluated != 0 || res.MAP != 0 || res.Err != nil {
		t.Errorf("expected empty result, got %+v", res)
	}
}

type failingExplainer struct{}

func (failingExplainer) Name() string { return "failing" }
func (failingExplainer) ExplainPoint(context.Context, *dataset.Dataset, int, int) ([]core.ScoredSubspace, error) {
	return nil, errStub
}

var errStub = errors.New("stub failure")

func TestRunPointExplanationPropagatesError(t *testing.T) {
	ds, gt := testbed(t, 3)
	pp := PointPipeline{Detector: "LOF", Explainer: failingExplainer{}}
	res := RunPointExplanation(context.Background(), ds, gt, pp, 2)
	if res.Err == nil || !errors.Is(res.Err, errStub) {
		t.Errorf("expected stub error, got %v", res.Err)
	}
	if res.MAP != 0 {
		t.Error("failed pipeline must report zero MAP")
	}
}

func TestRunSummarizationLookOutLOF(t *testing.T) {
	ds, gt := testbed(t, 4)
	sp := SummaryPipeline{
		Detector:   "LOF",
		Summarizer: &summarize.LookOut{Detector: detector.NewLOF(15), Budget: 10},
	}
	res := RunSummarization(context.Background(), ds, gt, sp, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.MAP <= 0 {
		t.Errorf("LookOut+LOF MAP = %v, want > 0", res.MAP)
	}
	if res.Explainer != "LookOut" {
		t.Errorf("label %q", res.Explainer)
	}
}

func TestRunSummarizationHiCS(t *testing.T) {
	ds, gt := testbed(t, 5)
	sp := SummaryPipeline{
		Detector: "LOF",
		Summarizer: &summarize.HiCS{
			Detector: detector.NewLOF(15), MCIterations: 40, Seed: 1, FixedDim: true, TopK: 10,
		},
	}
	res := RunSummarization(context.Background(), ds, gt, sp, 2)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.MAP <= 0 {
		t.Errorf("HiCS+LOF MAP = %v", res.MAP)
	}
}

func TestNewDetectors(t *testing.T) {
	dets := NewDetectors(1, false)
	if len(dets) != 3 {
		t.Fatalf("%d detectors", len(dets))
	}
	names := map[string]bool{}
	for _, d := range dets {
		names[d.Name] = true
		if d.Detector.Name() == "" {
			t.Error("unnamed detector")
		}
	}
	for _, want := range []string{"LOF", "FastABOD", "iForest"} {
		if !names[want] {
			t.Errorf("missing detector %s", want)
		}
	}
	cached := NewDetectors(1, true)
	for _, d := range cached {
		if _, ok := d.Detector.(*detector.Cached); !ok {
			t.Errorf("detector %s not cached", d.Name)
		}
	}
}

func TestPipelineFactories(t *testing.T) {
	det := NewDetectors(1, false)[0]
	pps := PointPipelines(det, 1, Options{TopK: 10})
	if len(pps) != 2 {
		t.Fatalf("%d point pipelines", len(pps))
	}
	if pps[0].Explainer.Name() != "Beam_FX" || pps[1].Explainer.Name() != "RefOut" {
		t.Errorf("pipeline names: %s, %s", pps[0].Explainer.Name(), pps[1].Explainer.Name())
	}
	sps := SummaryPipelines(det, 1, Options{TopK: 10})
	if len(sps) != 2 {
		t.Fatalf("%d summary pipelines", len(sps))
	}
	if sps[0].Summarizer.Name() != "LookOut" || sps[1].Summarizer.Name() != "HiCS_FX" {
		t.Errorf("pipeline names: %s, %s", sps[0].Summarizer.Name(), sps[1].Summarizer.Name())
	}
	// Ablation switches.
	abl := PointPipelines(det, 1, Options{RawScores: true, BeamVariableDim: true})
	if abl[0].Explainer.Name() != "Beam" {
		t.Errorf("variable-dim beam name %q", abl[0].Explainer.Name())
	}
}

func TestTwelvePipelinesOfFigure7(t *testing.T) {
	// The paper's Figure 7: 3 detectors × (2 point explainers + 2
	// summarizers) = 12 pipelines.
	count := 0
	for _, d := range NewDetectors(1, true) {
		count += len(PointPipelines(d, 1, Options{}))
		count += len(SummaryPipelines(d, 1, Options{}))
	}
	if count != 12 {
		t.Errorf("%d pipelines, want 12", count)
	}
}

func TestRunSummarizationPersonalizedRanking(t *testing.T) {
	// Full-space outliers, each explained by its own argmax subspace: in
	// the shared summary order only a few points can have their subspace
	// near the top, but with per-point ranking every retrieved subspace
	// can rank first for its own point — the paper's evaluation protocol.
	ds, outliers, err := synth.GenerateFullSpaceOutliers(synth.FullSpaceConfig{
		Name: "rank-test", N: 150, D: 8, NumOutliers: 15, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	lof := detector.NewCached(detector.NewLOF(15))
	gt, err := synth.DeriveTopSubspaceGroundTruth(context.Background(), ds, outliers, []int{2}, lof)
	if err != nil {
		t.Fatal(err)
	}
	lo := &summarize.LookOut{Detector: lof, Budget: 28} // all C(8,2) candidates
	plain := RunSummarization(context.Background(), ds, gt, SummaryPipeline{Detector: "LOF", Summarizer: lo}, 2)
	ranked := RunSummarization(context.Background(), ds, gt, SummaryPipeline{Detector: "LOF", Summarizer: lo, Ranker: lof}, 2)
	if plain.Err != nil || ranked.Err != nil {
		t.Fatal(plain.Err, ranked.Err)
	}
	if ranked.MAP <= plain.MAP {
		t.Errorf("personalized MAP %v not above shared-order MAP %v", ranked.MAP, plain.MAP)
	}
	// With the full candidate set selected and the same detector ranking,
	// every point's argmax subspace ranks first → MAP ≈ 1.
	if ranked.MAP < 0.95 {
		t.Errorf("personalized MAP = %v, want ≈ 1", ranked.MAP)
	}
	// Recall is order-independent and must coincide.
	if ranked.MeanRecall != plain.MeanRecall {
		t.Errorf("recall changed by re-ranking: %v vs %v", ranked.MeanRecall, plain.MeanRecall)
	}
}

func TestRunGridCoversAllCells(t *testing.T) {
	ds, gt := testbed(t, 30)
	results, gerr := RunGrid(context.Background(), GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        []int{2},
		Seed:        1,
		Options:     Options{BeamWidth: 10, RefOutPoolSize: 30, RefOutWidth: 10, LookOutBudget: 10, HiCSCutoff: 30, HiCSIterations: 20, TopK: 10},
		Cached:      true,
	})
	if gerr != nil {
		t.Fatal(gerr)
	}
	// 3 detectors × 4 algorithms × 1 dim = 12 cells, Figure 7's grid.
	if len(results) != 12 {
		t.Fatalf("%d results, want 12", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s/%s: %v", r.Detector, r.Explainer, r.Err)
		}
	}
	// Deterministic order: first cell is LOF + Beam_FX.
	if results[0].Detector != "LOF" || results[0].Explainer != "Beam_FX" {
		t.Errorf("first cell %s/%s", results[0].Detector, results[0].Explainer)
	}
}

func TestRunGridWorkerCountInvariance(t *testing.T) {
	ds, gt := testbed(t, 31)
	opts := Options{BeamWidth: 8, RefOutPoolSize: 20, RefOutWidth: 8, LookOutBudget: 8, HiCSCutoff: 20, HiCSIterations: 15, TopK: 8}
	dets := []NamedDetector{
		{Name: "LOF", Detector: detector.NewCached(detector.NewLOF(15))},
		{Name: "iForest", Detector: detector.NewCached(&detector.IsolationForest{Trees: 20, Subsample: 64, Repetitions: 1, Seed: 1})},
	}
	run := func(workers int) []Result {
		res, err := RunGrid(context.Background(), GridSpec{
			Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
			Options: opts, Detectors: dets, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(4)
	if len(seq) != 8 || len(par) != 8 {
		t.Fatalf("result counts: %d, %d (want 8 with 2 detectors)", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Detector != par[i].Detector || seq[i].Explainer != par[i].Explainer ||
			seq[i].MAP != par[i].MAP || seq[i].MeanRecall != par[i].MeanRecall {
			t.Errorf("cell %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}

// Package pipeline executes the paper's Figure 7: every pairing of an
// outlier detector with a point-explanation or summarization algorithm is
// run against a dataset with ground truth, and its effectiveness (MAP, Mean
// Recall) and efficiency (wall-clock runtime) are recorded per explanation
// dimensionality.
//
// Executions are fault-isolated: a panic anywhere inside one pipeline run —
// the explainer, the detector, or a parallel worker — is recovered and
// converted into that run's Result.Err (stack attached) instead of crashing
// the process, and a cancelled or deadline-exceeded context aborts the run
// with the context's error while keeping the per-point evaluations that did
// complete.
package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"time"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/metrics"
	"anex/internal/parallel"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// Result is the outcome of one (detector, explainer, dataset, dimension)
// pipeline execution.
type Result struct {
	// Dataset and Detector/Explainer name the pipeline.
	Dataset, Detector, Explainer string
	// TargetDim is the requested explanation dimensionality.
	TargetDim int
	// MAP and MeanRecall aggregate the per-point evaluations (Eq. 3).
	MAP, MeanRecall float64
	// PointsEvaluated is the number of outliers explained at TargetDim
	// per the ground truth.
	PointsEvaluated int
	// Duration is the wall-clock time of the explanation phase
	// (excluding evaluation). It is recorded even when Err is set, so
	// error cells still report the time the completed points cost.
	Duration time.Duration
	// ScoringTime is the cumulative time spent inside Detector.Scores
	// during the explanation phase, measured through the pipeline's Timer;
	// zero when no Timer is wired. With Workers > 1 it sums across
	// workers (CPU-time semantics) and can exceed Duration — the signal
	// that scoring parallelised.
	ScoringTime time.Duration
	// SearchTime is the subspace-search remainder of Duration
	// (Duration − ScoringTime, clamped at zero under parallelism); zero
	// when no Timer is wired.
	SearchTime time.Duration
	// EvalTime is the metric-evaluation (and, for summaries, per-point
	// re-ranking) time, which Duration excludes.
	EvalTime time.Duration
	// PerPoint holds the individual evaluations. When Err is set it keeps
	// the points whose explanations did complete, so partial work is
	// reported rather than discarded; MAP/MeanRecall then aggregate that
	// partial set.
	PerPoint []metrics.PointResult
	// Err records a pipeline that could not run to completion. Context
	// cancellation and deadline expiry surface as the context's error;
	// a panic anywhere inside the run surfaces as a *parallel.PanicError
	// (stack attached); algorithmic failures (e.g. LookOut candidate
	// explosion) surface as the first failing point's error in index
	// order, deterministically at any worker count.
	Err error
}

// PointPipeline pairs a point explainer with the detector name used in
// reports. The detector itself is owned by the explainer.
type PointPipeline struct {
	Detector  string
	Explainer core.PointExplainer
	// Workers bounds the goroutines of the per-point explanation loop;
	// values ≤ 1 (including the zero value) keep it serial. Each point's
	// explanation is independent, so results are identical at any count.
	Workers int
	// Timer, when set, is the scoring-time accumulator wrapping this
	// pipeline's detector (see PointPipelines); it splits Duration into
	// ScoringTime and SearchTime.
	Timer *detector.Timed
}

// SummaryPipeline pairs a summarizer with the detector name used in reports.
type SummaryPipeline struct {
	Detector   string
	Summarizer core.Summarizer
	// Workers bounds the goroutines of the per-subspace ranking loop
	// (Ranker scoring + Z-standardisation per summary subspace); values
	// ≤ 1 (including the zero value) keep it serial.
	Workers int
	// Timer, when set, accumulates detector scoring time (see
	// PointPipeline.Timer).
	Timer *detector.Timed
	// Ranker, when set, personalises the shared summary per evaluated
	// point: the summary's subspaces are re-ranked by the point's own
	// standardised outlyingness before AveP is computed. This matches the
	// paper's per-point MAP for summarization algorithms — a summary
	// "explains" a point when the point's relevant subspace is retrieved
	// and highly scored FOR THAT POINT, not when it happens to sit at the
	// top of the collective selection order. When nil, the raw shared
	// list is evaluated as-is.
	Ranker core.Detector
}

// recoverIntoErr converts a panic unwinding through a pipeline run into the
// run's Result.Err, capturing the stack unless the panic already carries one
// (parallel workers re-panic a *parallel.PanicError in the calling
// goroutine precisely so this recovery can contain it).
func recoverIntoErr(res *Result) {
	if r := recover(); r != nil {
		pe := parallel.AsPanicError(r, debug.Stack())
		res.Err = fmt.Errorf("pipeline %s/%s/%s dim %d: %w",
			res.Dataset, res.Detector, res.Explainer, res.TargetDim, pe)
	}
}

// RunPointExplanation evaluates the explainer on every outlier that the
// ground truth explains at targetDim: the explainer is invoked per point
// (the paper's protocol — point explainers search per point) and its ranked
// list is scored against REL_p with AveP and Recall.
//
// The run is fault-isolated: panics become res.Err with the panic site's
// stack, and a cancelled ctx aborts between points with ctx's error while
// the evaluations of already-explained points are kept in PerPoint.
func RunPointExplanation(ctx context.Context, ds *dataset.Dataset, gt *dataset.GroundTruth, pp PointPipeline, targetDim int) (res Result) {
	res = Result{
		Dataset:   ds.Name(),
		Detector:  pp.Detector,
		Explainer: pp.Explainer.Name(),
		TargetDim: targetDim,
	}
	defer recoverIntoErr(&res)
	points := gt.PointsExplainedAt(targetDim)
	res.PointsEvaluated = len(points)
	if len(points) == 0 {
		return res
	}
	var scoringBefore time.Duration
	if pp.Timer != nil {
		scoringBefore = pp.Timer.Elapsed()
	}
	start := time.Now()
	lists := make([][]core.ScoredSubspace, len(points))
	errs := make([]error, len(points))
	completed := make([]bool, len(points))
	ctxErr := parallel.ForEach(ctx, pp.Workers, len(points), func(i int) {
		lists[i], errs[i] = pp.Explainer.ExplainPoint(ctx, ds, points[i], targetDim)
		completed[i] = true
	})
	res.Duration = time.Since(start)
	if pp.Timer != nil {
		res.ScoringTime = pp.Timer.Elapsed() - scoringBefore
		if res.SearchTime = res.Duration - res.ScoringTime; res.SearchTime < 0 {
			res.SearchTime = 0
		}
	}
	if ctxErr != nil {
		res.Err = ctxErr
	} else {
		for i, err := range errs {
			if err != nil {
				res.Err = fmt.Errorf("explain point %d: %w", points[i], err)
				break
			}
		}
	}
	evalStart := time.Now()
	for i, p := range points {
		if !completed[i] || errs[i] != nil {
			continue // keep the points that did complete
		}
		rel := gt.RelevantAt(p, targetDim)
		res.PerPoint = append(res.PerPoint, metrics.EvaluatePoint(p, core.Subspaces(lists[i]), rel))
	}
	res.MAP = metrics.MAP(res.PerPoint)
	res.MeanRecall = metrics.MeanRecall(res.PerPoint)
	res.EvalTime = time.Since(evalStart)
	return res
}

// RunSummarization evaluates the summarizer on all ground-truth outliers at
// once (the paper's protocol — summaries are computed for the full point
// set) and scores the single returned list against each point's REL_p,
// restricted to points explained at targetDim.
//
// Like RunPointExplanation, the run is fault-isolated: panics become
// res.Err, and ctx cancellation aborts the summary search or the per-point
// re-ranking with ctx's error.
func RunSummarization(ctx context.Context, ds *dataset.Dataset, gt *dataset.GroundTruth, sp SummaryPipeline, targetDim int) (res Result) {
	res = Result{
		Dataset:   ds.Name(),
		Detector:  sp.Detector,
		Explainer: sp.Summarizer.Name(),
		TargetDim: targetDim,
	}
	defer recoverIntoErr(&res)
	points := gt.PointsExplainedAt(targetDim)
	res.PointsEvaluated = len(points)
	if len(points) == 0 {
		return res
	}
	var scoringBefore time.Duration
	if sp.Timer != nil {
		scoringBefore = sp.Timer.Elapsed()
	}
	start := time.Now()
	list, err := sp.Summarizer.Summarize(ctx, ds, gt.Outliers(), targetDim)
	res.Duration = time.Since(start)
	if sp.Timer != nil {
		res.ScoringTime = sp.Timer.Elapsed() - scoringBefore
		if res.SearchTime = res.Duration - res.ScoringTime; res.SearchTime < 0 {
			res.SearchTime = 0
		}
	}
	if err != nil {
		res.Err = fmt.Errorf("summarize: %w", err)
		return res
	}
	evalStart := time.Now()
	shared := core.Subspaces(list)
	// With a Ranker, each point sees the summary ordered by its own
	// standardised outlyingness in each subspace. Each subspace's scoring
	// and standardisation is independent, so the loop fans out over the
	// pipeline's workers (the Ranker is typically a Cached detector, whose
	// singleflight dedup keeps concurrent same-key scoring single-shot).
	var zPerSubspace [][]float64
	if sp.Ranker != nil {
		zPerSubspace = make([][]float64, len(shared))
		rankErrs := make([]error, len(shared))
		ctxErr := parallel.ForEach(ctx, sp.Workers, len(shared), func(i int) {
			scores, rerr := sp.Ranker.Scores(ctx, ds.View(shared[i]))
			if rerr != nil {
				rankErrs[i] = rerr
				return
			}
			zPerSubspace[i] = stats.ZScores(scores)
		})
		if ctxErr == nil {
			for _, rerr := range rankErrs {
				if rerr != nil {
					ctxErr = fmt.Errorf("rank summary: %w", rerr)
					break
				}
			}
		}
		if ctxErr != nil {
			res.Err = ctxErr
			res.EvalTime = time.Since(evalStart)
			return res
		}
	}
	for _, p := range points {
		rel := gt.RelevantAt(p, targetDim)
		subs := shared
		if sp.Ranker != nil {
			subs = personalRanking(shared, zPerSubspace, p)
		}
		res.PerPoint = append(res.PerPoint, metrics.EvaluatePoint(p, subs, rel))
	}
	res.MAP = metrics.MAP(res.PerPoint)
	res.MeanRecall = metrics.MeanRecall(res.PerPoint)
	res.EvalTime = time.Since(evalStart)
	return res
}

// personalRanking orders the summary's subspaces by point p's standardised
// score, descending; ties break on the canonical key.
func personalRanking(shared []subspace.Subspace, z [][]float64, p int) []subspace.Subspace {
	idx := make([]int, len(shared))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		za, zb := z[idx[a]][p], z[idx[b]][p]
		if za != zb {
			return za > zb
		}
		return shared[idx[a]].Key() < shared[idx[b]].Key()
	})
	out := make([]subspace.Subspace, len(shared))
	for i, j := range idx {
		out[i] = shared[j]
	}
	return out
}

package pipeline

import (
	"sync"
	"time"
)

// Cost-aware cell scheduling. A grid's cells have wildly unequal runtimes
// (BENCH_4: a RefOut cell costs ~5× a Beam cell on the same detector), so
// FIFO dispatch routinely strands one worker on a huge cell it picked up
// last while the others sit idle — the classic makespan pathology. Greedy
// longest-estimated-first dispatch (LPT list scheduling) avoids it: each
// free worker takes the most expensive pending cell, so the big rocks are
// placed first and the small cells pack around them.
//
// Estimates start from static priors per explainer, detector, and target
// dimensionality (calibrated against results/BENCH_4.json) and are refined
// online: each completed cell's wall time is folded into an EWMA of the
// "seconds per static cost unit" of its explainer, so the second half of a
// grid is scheduled with observed costs, not guesses. Only DISPATCH ORDER
// depends on the estimates — every cell writes its own results[order] slot
// and all shared state (score caches, the neighbourhood plane) is
// value-deterministic, so grid output is byte-identical with scheduling on
// or off, at any worker count (TestGridSchedulerInvariance).

// explainerPrior is the relative base cost of one cell of the explainer,
// in Beam-cell units (BENCH_4, Figure 9 workload: RefOut ≈ 5× Beam_FX;
// HiCS's Monte-Carlo contrast sits in between; LookOut's submodular sweep
// is Beam-like).
func explainerPrior(name string) float64 {
	switch name {
	case "RefOut":
		return 5
	case "HiCS_FX", "HiCS":
		return 3
	case "Beam_FX", "Beam", "LookOut":
		return 1
	}
	return 2 // unknown explainers: mid-range guess until observed
}

// detectorPrior scales for the scoring cost of the detector driving the
// cell (BENCH_4, 1000×3: FastABOD ≈ 1.3× LOF, kNN-dist ≈ 0.8×).
func detectorPrior(name string) float64 {
	switch name {
	case "FastABOD":
		return 1.3
	case "kNN-dist":
		return 0.8
	}
	return 1
}

// dimPrior scales for the target dimensionality: the staged explainers run
// roughly one candidate sweep per added feature beyond the 2d base.
func dimPrior(dim int) float64 {
	if dim < 2 {
		dim = 2
	}
	return float64(dim) / 2
}

func staticCost(c gridCell) float64 {
	return explainerPrior(c.explainer) * detectorPrior(c.detector) * dimPrior(c.dim)
}

// cellScheduler hands pending cells to free workers. With byCost set it
// dispatches longest-estimated-first; otherwise it preserves the cells'
// deterministic (dimension, detector, explainer) order, which is exactly
// the old FIFO channel behaviour.
type cellScheduler struct {
	mu      sync.Mutex
	pending []gridCell
	byCost  bool
	// units holds, per explainer, an EWMA of observed seconds per static
	// cost unit. Missing entries fall back to the pure prior.
	units map[string]float64
}

func newCellScheduler(pending []gridCell, byCost bool) *cellScheduler {
	return &cellScheduler{pending: pending, byCost: byCost, units: make(map[string]float64)}
}

// next pops the next cell to dispatch; ok=false when the grid is drained.
// Under cost-aware dispatch ties keep the lowest order, so the dispatch
// sequence itself is deterministic for a fixed estimate state.
func (s *cellScheduler) next() (c gridCell, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return gridCell{}, false
	}
	best := 0
	if s.byCost {
		bestCost := s.estimateLocked(s.pending[0])
		for i := 1; i < len(s.pending); i++ {
			if est := s.estimateLocked(s.pending[i]); est > bestCost {
				best, bestCost = i, est
			}
		}
	}
	c = s.pending[best]
	s.pending = append(s.pending[:best], s.pending[best+1:]...)
	return c, true
}

func (s *cellScheduler) estimateLocked(c gridCell) float64 {
	est := staticCost(c)
	if unit, ok := s.units[c.explainer]; ok {
		est *= unit
	}
	return est
}

// ewmaAlpha weights the newest observation; 0.4 adapts within 2–3 cells
// while smoothing over cache-warmth noise between the first and later
// cells of an explainer.
const ewmaAlpha = 0.4

// observe folds a completed cell's wall time back into the estimates.
func (s *cellScheduler) observe(c gridCell, elapsed time.Duration) {
	if !s.byCost {
		return
	}
	unit := elapsed.Seconds() / staticCost(c)
	s.mu.Lock()
	if prev, ok := s.units[c.explainer]; ok {
		s.units[c.explainer] = (1-ewmaAlpha)*prev + ewmaAlpha*unit
	} else {
		s.units[c.explainer] = unit
	}
	s.mu.Unlock()
}

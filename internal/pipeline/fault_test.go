package pipeline

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/parallel"
)

// trivialExplainer returns the first targetDim features as the single
// explanation for every point — cheap, deterministic, and error-free.
type trivialExplainer struct{ name string }

func (e trivialExplainer) Name() string { return e.name }

func (e trivialExplainer) ExplainPoint(_ context.Context, ds *dataset.Dataset, _, targetDim int) ([]core.ScoredSubspace, error) {
	return []core.ScoredSubspace{{Subspace: ds.FullView().Subspace()[:targetDim], Score: 1}}, nil
}

// panicExplainer crashes on every point.
type panicExplainer struct{}

func (panicExplainer) Name() string { return "panicky" }

func (panicExplainer) ExplainPoint(context.Context, *dataset.Dataset, int, int) ([]core.ScoredSubspace, error) {
	panic("injected cell crash")
}

// blockingExplainer blocks until its context is cancelled, then reports the
// context's error — the stand-in for a cell that overruns its deadline.
type blockingExplainer struct{}

func (blockingExplainer) Name() string { return "blocking" }

func (blockingExplainer) ExplainPoint(ctx context.Context, _ *dataset.Dataset, _, _ int) ([]core.ScoredSubspace, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// faultGridSpec builds a three-cell override grid in which the middle cell
// runs the given explainer and the outer cells run trivial ones.
func faultGridSpec(ds *dataset.Dataset, gt *dataset.GroundTruth, middle core.PointExplainer) GridSpec {
	return GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        []int{2},
		PointPipelines: []PointPipeline{
			{Detector: "A", Explainer: trivialExplainer{name: "t0"}},
			{Detector: "B", Explainer: middle},
			{Detector: "C", Explainer: trivialExplainer{name: "t2"}},
		},
		Workers: 2,
	}
}

// TestRunGridPanicCellIsolated is the panic-containment contract: a cell
// whose explainer panics yields a grid where exactly that cell carries the
// panic as its Err (stack attached) and every other cell matches a clean run.
func TestRunGridPanicCellIsolated(t *testing.T) {
	ds, gt := testbed(t, 40)
	clean, err := RunGrid(context.Background(), faultGridSpec(ds, gt, trivialExplainer{name: "panicky"}))
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := RunGrid(context.Background(), faultGridSpec(ds, gt, panicExplainer{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(faulty) != 3 || len(clean) != 3 {
		t.Fatalf("cell counts: %d clean, %d faulty", len(clean), len(faulty))
	}
	for i, r := range faulty {
		if i == 1 {
			var pe *parallel.PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("panicking cell Err = %v, want *parallel.PanicError", r.Err)
			}
			if pe.Value != "injected cell crash" {
				t.Errorf("panic value %v", pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic stack not captured")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("healthy cell %d infected: %v", i, r.Err)
		}
		if r.MAP != clean[i].MAP || r.MeanRecall != clean[i].MeanRecall ||
			!reflect.DeepEqual(r.PerPoint, clean[i].PerPoint) {
			t.Errorf("healthy cell %d diverged from the clean run", i)
		}
	}
}

// TestRunGridCellTimeoutIsolated is the per-cell deadline contract: with
// CellTimeout set, a cell that overruns is abandoned with DeadlineExceeded
// while the rest of the grid completes normally.
func TestRunGridCellTimeoutIsolated(t *testing.T) {
	ds, gt := testbed(t, 41)
	spec := faultGridSpec(ds, gt, blockingExplainer{})
	spec.CellTimeout = 30 * time.Millisecond
	results, err := RunGrid(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 1 {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Errorf("blocked cell Err = %v, want DeadlineExceeded", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("fast cell %d hit the slow cell's deadline: %v", i, r.Err)
		}
	}
}

// TestRunGridCancelStampsUnfinishedCells: cancelling the grid's own context
// marks every unfinished cell with context.Canceled, and completed cells
// keep their results.
func TestRunGridCancelStampsUnfinishedCells(t *testing.T) {
	ds, gt := testbed(t, 42)
	ctx, cancel := context.WithCancel(context.Background())
	spec := GridSpec{
		Dataset:     ds,
		GroundTruth: gt,
		Dims:        []int{2},
		PointPipelines: []PointPipeline{
			{Detector: "A", Explainer: trivialExplainer{name: "t0"}},
			{Detector: "B", Explainer: cancelOnEntry{cancel: cancel}},
			{Detector: "C", Explainer: trivialExplainer{name: "t2"}},
		},
		Workers: 1, // serial cells: deterministic completion prefix
	}
	results, err := RunGrid(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("cell finished before cancellation carries %v", results[0].Err)
	}
	for i, r := range results[1:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("unfinished cell %d Err = %v, want Canceled", i+1, r.Err)
		}
	}
}

// cancelOnEntry cancels the grid the moment its cell starts, then defers to
// the context-aborted path.
type cancelOnEntry struct{ cancel context.CancelFunc }

func (cancelOnEntry) Name() string { return "cancel-on-entry" }

func (c cancelOnEntry) ExplainPoint(ctx context.Context, _ *dataset.Dataset, _, _ int) ([]core.ScoredSubspace, error) {
	c.cancel()
	<-ctx.Done()
	return nil, ctx.Err()
}

// resumePipelines builds the real deterministic pipelines used by the
// resume contract test. When interruptAt >= 0 and cancel is non-nil, the
// pipeline at that index cancels the grid as soon as its cell starts.
func resumePipelines(interruptAt int, cancel context.CancelFunc) []PointPipeline {
	mk := func(name string, k int) PointPipeline {
		return PointPipeline{
			Detector:  name,
			Explainer: &explain.Beam{Detector: detector.NewLOF(k), Width: 6, TopK: 6, FixedDim: true},
		}
	}
	pps := []PointPipeline{mk("LOF-10", 10), mk("LOF-15", 15), mk("LOF-20", 20), mk("LOF-25", 25)}
	if interruptAt >= 0 && cancel != nil {
		pps[interruptAt].Explainer = cancelOnEntry{cancel: cancel}
	}
	return pps
}

// stripTimings zeroes every wall-clock field so results can be compared for
// byte-identity: timings are the one legitimately non-deterministic part of
// a Result.
func stripTimings(results []Result) []Result {
	out := append([]Result(nil), results...)
	for i := range out {
		out[i].Duration, out[i].ScoringTime, out[i].SearchTime, out[i].EvalTime = 0, 0, 0, 0
	}
	return out
}

// TestRunGridJournalResumeByteIdentical is the checkpoint/resume contract:
// a grid cancelled midway with a journal, then re-run against the same
// journal, reproduces the uninterrupted grid's results exactly — journaled
// cells replayed, unfinished cells recomputed, nothing double-counted.
func TestRunGridJournalResumeByteIdentical(t *testing.T) {
	ds, gt := testbed(t, 43)
	path := filepath.Join(t.TempDir(), "grid.journal")
	// NoSched pins FIFO dispatch: the interruption scenario below depends on
	// cells 0–1 finishing before cell 2 cancels the grid, which cost-aware
	// dispatch would reorder (the interrupting stub has no cost prior).
	base := GridSpec{Dataset: ds, GroundTruth: gt, Dims: []int{2}, Workers: 1, NoSched: true}

	// Reference: one uninterrupted run, no journal.
	ref := base
	ref.PointPipelines = resumePipelines(-1, nil)
	want, err := RunGrid(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cell 2 cancels the grid on entry. Cells 0–1 complete
	// and are journaled; cells 2–3 abort with context.Canceled.
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := base
	interrupted.PointPipelines = resumePipelines(2, cancel)
	interrupted.Journal = j1
	partial, err := RunGrid(ctx, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if partial[0].Err != nil || partial[1].Err != nil {
		t.Fatalf("completed cells errored: %v, %v", partial[0].Err, partial[1].Err)
	}
	if !errors.Is(partial[2].Err, context.Canceled) || !errors.Is(partial[3].Err, context.Canceled) {
		t.Fatalf("interrupted cells carry %v, %v — want Canceled", partial[2].Err, partial[3].Err)
	}

	// Resume: fresh journal handle on the same file, healthy pipelines,
	// live context. The journaled prefix must be served, not recomputed.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("journal replayed %d cells, want the 2 that completed", j2.Len())
	}
	resumed := base
	resumed.PointPipelines = resumePipelines(-1, nil)
	resumed.Journal = j2
	got, err := RunGrid(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(stripTimings(got), stripTimings(want)) {
		t.Errorf("resumed grid differs from the uninterrupted run:\ngot  %+v\nwant %+v",
			stripTimings(got), stripTimings(want))
	}
}

// TestRunGridJournalReplaysDeterministicFailures: a cell that failed for a
// non-context reason IS journaled, and a resumed run replays the failure
// instead of recomputing the cell.
func TestRunGridJournalReplaysDeterministicFailures(t *testing.T) {
	ds, gt := testbed(t, 44)
	path := filepath.Join(t.TempDir(), "fail.journal")
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec := faultGridSpec(ds, gt, panicExplainer{})
	spec.Journal = j1
	first, err := RunGrid(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	if first[1].Err == nil {
		t.Fatal("panic cell did not fail")
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("journal holds %d cells, want all 3 (failures included)", j2.Len())
	}
	// Replace the panicking explainer with a healthy one: the journal must
	// still replay the recorded failure rather than rerun the cell.
	spec2 := faultGridSpec(ds, gt, trivialExplainer{name: "panicky"})
	spec2.Journal = j2
	second, err := RunGrid(context.Background(), spec2)
	if err != nil {
		t.Fatal(err)
	}
	if second[1].Err == nil {
		t.Error("journaled failure was recomputed instead of replayed")
	}
}

package pipeline

import (
	"testing"
	"time"
)

func schedCells() []gridCell {
	return []gridCell{
		{order: 0, detector: "LOF", explainer: "Beam_FX", dim: 2},
		{order: 1, detector: "LOF", explainer: "RefOut", dim: 2},
		{order: 2, detector: "FastABOD", explainer: "Beam_FX", dim: 2},
		{order: 3, detector: "FastABOD", explainer: "RefOut", dim: 2},
		{order: 4, detector: "LOF", explainer: "Beam_FX", dim: 4},
	}
}

// TestCellSchedulerLongestFirst: cost-aware dispatch pops by descending
// static estimate — RefOut cells (5× prior) before Beam cells, the pricier
// detector and deeper dimensionality first within each explainer.
func TestCellSchedulerLongestFirst(t *testing.T) {
	s := newCellScheduler(schedCells(), true)
	want := []int{3, 1, 4, 2, 0} // FastABOD/RefOut, LOF/RefOut, 4d Beam, FastABOD/Beam, LOF/Beam
	for i, w := range want {
		c, ok := s.next()
		if !ok {
			t.Fatalf("drained after %d cells, want %d", i, len(want))
		}
		if c.order != w {
			t.Fatalf("pop %d: order=%d, want %d", i, c.order, w)
		}
	}
	if _, ok := s.next(); ok {
		t.Fatal("scheduler not drained")
	}
}

// TestCellSchedulerFIFO: with cost-aware dispatch off the original
// deterministic order is preserved exactly.
func TestCellSchedulerFIFO(t *testing.T) {
	s := newCellScheduler(schedCells(), false)
	for i := 0; i < 5; i++ {
		c, ok := s.next()
		if !ok || c.order != i {
			t.Fatalf("pop %d: order=%d ok=%v, want FIFO", i, c.order, ok)
		}
	}
}

// TestCellSchedulerEWMARefinement: observed wall times override the static
// priors — an explainer that proves 100× more expensive than its prior
// jumps the queue.
func TestCellSchedulerEWMARefinement(t *testing.T) {
	cells := []gridCell{
		{order: 0, detector: "LOF", explainer: "RefOut", dim: 2},  // prior 5
		{order: 1, detector: "LOF", explainer: "LookOut", dim: 2}, // prior 1
	}
	s := newCellScheduler(cells, true)
	// LookOut was observed to take 100 s per unit; RefOut 0.01 s per unit.
	s.observe(gridCell{detector: "LOF", explainer: "LookOut", dim: 2}, 100*time.Second)
	s.observe(gridCell{detector: "LOF", explainer: "RefOut", dim: 2}, 50*time.Millisecond)
	c, _ := s.next()
	if c.explainer != "LookOut" {
		t.Fatalf("popped %s first, want the observed-expensive LookOut", c.explainer)
	}
}

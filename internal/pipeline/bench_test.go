package pipeline

import (
	"context"
	"fmt"
	"testing"

	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/synth"
)

func gridBenchData(b *testing.B) (*dataset.Dataset, *dataset.GroundTruth) {
	d, g, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "grid-bench",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   300,
		OutliersPerSubspace: 4,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d, g
}

func gridBenchOptions() Options {
	return Options{BeamWidth: 10, RefOutPoolSize: 30, RefOutWidth: 10, LookOutBudget: 10, HiCSCutoff: 30, HiCSIterations: 20, TopK: 10}
}

// BenchmarkRunGrid measures the full grid at several total worker budgets.
// Cell results are byte-identical at every budget (the grid orders output
// by cell index and every inner loop is index-deterministic); on a
// multi-core machine workers=4 should be ≥2× faster than workers=1. Each
// iteration runs against a FRESH neighbourhood plane, so the number
// reflects within-grid sharing only, never warmth left over from a
// previous iteration.
func BenchmarkRunGrid(b *testing.B) {
	b.ReportAllocs()
	ds, gt := gridBenchData(b)
	opts := gridBenchOptions()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunGrid(context.Background(), GridSpec{
					Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
					Options: opts, Cached: true, Workers: w,
					Plane: neighbors.NewPlane(0),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("empty grid result")
				}
			}
		})
	}
}

// BenchmarkRunGridKNN is the Figure-9 mini-grid with all three kNN-backed
// detectors (LOF k=15, FastABOD k=10, kNN-dist k=10) at n=800, where the
// O(n²) neighbourhood computation dominates each cell — the regime the
// shared plane targets. "shared" wires the three detectors to ONE fresh
// plane per iteration, so every subspace's neighbourhood is computed once
// per grid; "unshared" gives each detector a private plane, reproducing the
// previous per-detector caching. Both arms use score-cached detectors (the
// paper-grid configuration). The shared/unshared gap is the cross-detector
// dedup win, measured on the same box in the same run.
func BenchmarkRunGridKNN(b *testing.B) {
	b.ReportAllocs()
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "grid-knn-bench",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   800,
		OutliersPerSubspace: 4,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := gridBenchOptions()
	for _, mode := range []string{"shared", "unshared"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var dets []NamedDetector
				if mode == "shared" {
					dets = knnDetectors(neighbors.NewPlane(0))
				} else {
					dets = knnDetectors(nil)
					for j := range dets {
						dets[j].Detector.(neighborsSetter).SetNeighbors(neighbors.NewPlane(0))
					}
				}
				for j := range dets {
					dets[j].Detector = detector.NewCached(dets[j].Detector)
				}
				res, err := RunGrid(context.Background(), GridSpec{
					Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
					Options: opts, Detectors: dets, Workers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("empty grid result")
				}
			}
		})
	}
}

package pipeline

import (
	"context"
	"fmt"
	"testing"

	"anex/internal/synth"
)

// BenchmarkRunGrid measures the full grid at several total worker budgets.
// Cell results are byte-identical at every budget (the grid orders output
// by cell index and every inner loop is index-deterministic); on a
// multi-core machine workers=4 should be ≥2× faster than workers=1.
func BenchmarkRunGrid(b *testing.B) {
	b.ReportAllocs()
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "grid-bench",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   300,
		OutliersPerSubspace: 4,
		Seed:                1,
	})
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{BeamWidth: 10, RefOutPoolSize: 30, RefOutWidth: 10, LookOutBudget: 10, HiCSCutoff: 30, HiCSIterations: 20, TopK: 10}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunGrid(context.Background(), GridSpec{
					Dataset: ds, GroundTruth: gt, Dims: []int{2}, Seed: 1,
					Options: opts, Cached: true, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("empty grid result")
				}
			}
		})
	}
}

package pipeline

import (
	"anex/internal/core"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/summarize"
)

// NamedDetector pairs a detector with its report name.
type NamedDetector struct {
	Name     string
	Detector core.Detector
}

// NewDetectors builds the paper's three detectors with the Section 3.1
// hyper-parameters: LOF (k=15), Fast ABOD (k=10) and Isolation Forest
// (100 trees, ψ=256, 10 averaged repetitions). With cached set, each
// detector is wrapped in a subspace-keyed score memo, which is sound for
// effectiveness experiments (scores are deterministic per subspace) but
// must be off when measuring per-pipeline runtime.
func NewDetectors(seed int64, cached bool) []NamedDetector {
	dets := []NamedDetector{
		{Name: "LOF", Detector: detector.NewLOF(detector.DefaultLOFK)},
		{Name: "FastABOD", Detector: detector.NewFastABOD(detector.DefaultABODK)},
		{Name: "iForest", Detector: detector.NewIsolationForest(seed)},
	}
	if cached {
		for i := range dets {
			dets[i].Detector = detector.NewCached(dets[i].Detector)
		}
	}
	return dets
}

// Options tunes the explainer hyper-parameters away from the paper's
// defaults; the zero value keeps them (pool 100, widths 100, budget 100,
// HiCS cutoff 400 with 100 Monte-Carlo iterations, top-100 results).
type Options struct {
	BeamWidth       int
	RefOutPoolSize  int
	RefOutWidth     int
	LookOutBudget   int
	HiCSCutoff      int
	HiCSIterations  int
	TopK            int
	RefOutPoolFrac  float64
	HiCSContrast    summarize.ContrastTest
	UseKSContrast   bool
	RawScores       bool // ablation: disable Z-score standardisation
	BeamVariableDim bool // ablation: plain Beam instead of Beam_FX

	// Workers bounds the goroutines of each pipeline's inner loops (per
	// explained point, per ranked summary subspace, and the explainers'
	// per-stage candidate/pool scoring); values ≤ 1 keep them serial.
	// Inside RunGrid this acts as an explicit override of the automatic
	// worker-budget split.
	Workers int

	// CacheBytes is the byte budget of each cached detector's score memo
	// (see detector.NewCachedBudget); zero selects the generous default.
	CacheBytes int64
}

func (o Options) scoreFunc() explain.ScoreFunc {
	if o.RawScores {
		return explain.Raw()
	}
	return explain.ZScored()
}

// PointPipelines builds the paper's point-explanation pipelines for one
// detector: Beam_FX and RefOut (Figure 9 evaluates the fixed-dimensionality
// Beam variant for fairness with RefOut). Each pipeline wraps the detector
// in its own scoring timer, so Result splits runtime into scoring vs.
// search per cell even when the underlying detector (and its cache) is
// shared across the grid.
func PointPipelines(d NamedDetector, seed int64, o Options) []PointPipeline {
	beamTimer := detector.NewTimed(d.Detector)
	beam := &explain.Beam{
		Detector: beamTimer,
		Width:    o.BeamWidth,
		TopK:     o.TopK,
		FixedDim: !o.BeamVariableDim,
		Score:    o.scoreFunc(),
		Workers:  o.Workers,
	}
	refoutTimer := detector.NewTimed(d.Detector)
	refout := &explain.RefOut{
		Detector:        refoutTimer,
		PoolSize:        o.RefOutPoolSize,
		PoolDimFraction: o.RefOutPoolFrac,
		Width:           o.RefOutWidth,
		TopK:            o.TopK,
		Seed:            seed,
		Score:           o.scoreFunc(),
		Workers:         o.Workers,
	}
	return []PointPipeline{
		{Detector: d.Name, Explainer: beam, Workers: o.Workers, Timer: beamTimer},
		{Detector: d.Name, Explainer: refout, Workers: o.Workers, Timer: refoutTimer},
	}
}

// SummaryPipelines builds the paper's summarization pipelines for one
// detector: LookOut and HiCS_FX (fixed dimensionality for fairness with
// LookOut).
func SummaryPipelines(d NamedDetector, seed int64, o Options) []SummaryPipeline {
	test := o.HiCSContrast
	if o.UseKSContrast {
		test = summarize.KSTest
	}
	lookoutTimer := detector.NewTimed(d.Detector)
	lookout := &summarize.LookOut{
		Detector: lookoutTimer,
		Budget:   o.LookOutBudget,
	}
	hicsTimer := detector.NewTimed(d.Detector)
	hics := &summarize.HiCS{
		Detector:        hicsTimer,
		CandidateCutoff: o.HiCSCutoff,
		MCIterations:    o.HiCSIterations,
		Test:            test,
		FixedDim:        true,
		TopK:            o.TopK,
		Seed:            seed,
	}
	// The Ranker bypasses the timer: its scoring happens in the evaluation
	// phase, which Duration (and the scoring/search split) excludes.
	return []SummaryPipeline{
		{Detector: d.Name, Summarizer: lookout, Ranker: d.Detector, Workers: o.Workers, Timer: lookoutTimer},
		{Detector: d.Name, Summarizer: hics, Ranker: d.Detector, Workers: o.Workers, Timer: hicsTimer},
	}
}

package pipeline

import (
	"runtime"
	"sort"
	"sync"

	"anex/internal/dataset"
	"anex/internal/parallel"
)

// GridSpec describes a full Figure 7 grid execution: every detector paired
// with every point explainer and summarizer, across the requested
// explanation dimensionalities.
type GridSpec struct {
	// Dataset and GroundTruth define the workload.
	Dataset     *dataset.Dataset
	GroundTruth *dataset.GroundTruth
	// Dims lists the explanation dimensionalities to evaluate.
	Dims []int
	// Seed drives the stochastic algorithms.
	Seed int64
	// Options tunes the explainer hyper-parameters.
	Options Options
	// Cached shares per-subspace detector scores across the grid. Leave
	// false when the grid's purpose is timing.
	Cached bool
	// Detectors overrides the paper's three detectors (useful for
	// custom detectors or reduced hyper-parameters); nil selects them.
	// The Cached flag is not applied to overridden detectors — wrap them
	// with detector.NewCached as needed.
	Detectors []NamedDetector
	// Workers is the grid's total worker budget; zero means GOMAXPROCS.
	// The budget is split between concurrent cells and each cell's inner
	// per-point loops (see parallel.Split): with more cells than budget
	// every worker runs whole cells serially inside; with few cells the
	// leftover budget fans out the per-point loops instead. Each unit of
	// work is independent and indexed, so results are identical at any
	// worker count. An explicit Options.Workers overrides the inner share.
	Workers int
}

// RunGrid executes the grid and returns all cell results, deterministically
// ordered by (dimension, detector, explainer). An empty grid — no Dims or
// no detectors/pipelines — returns nil without spinning up workers.
func RunGrid(spec GridSpec) []Result {
	// One set of detector instances per grid: with caching on, every
	// cell sharing a detector also shares its score memo.
	dets := spec.Detectors
	if dets == nil {
		dets = NewDetectors(spec.Seed, spec.Cached)
	}
	numCells := 0
	for range spec.Dims {
		for _, d := range dets {
			numCells += len(PointPipelines(d, spec.Seed, spec.Options)) +
				len(SummaryPipelines(d, spec.Seed, spec.Options))
		}
	}
	if numCells == 0 {
		return nil
	}

	budget := spec.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers, inner := parallel.Split(budget, numCells)
	if spec.Options.Workers > 0 {
		inner = spec.Options.Workers // explicit inner knob wins
	}

	type cell struct {
		order int
		run   func() Result
	}
	var cells []cell
	order := 0
	for _, dim := range spec.Dims {
		dim := dim
		for _, d := range dets {
			for _, pp := range PointPipelines(d, spec.Seed, spec.Options) {
				pp := pp
				pp.Workers = inner
				cells = append(cells, cell{order: order, run: func() Result {
					return RunPointExplanation(spec.Dataset, spec.GroundTruth, pp, dim)
				}})
				order++
			}
			for _, sp := range SummaryPipelines(d, spec.Seed, spec.Options) {
				sp := sp
				sp.Workers = inner
				cells = append(cells, cell{order: order, run: func() Result {
					return RunSummarization(spec.Dataset, spec.GroundTruth, sp, dim)
				}})
				order++
			}
		}
	}

	type indexed struct {
		order  int
		result Result
	}
	jobs := make(chan cell)
	out := make(chan indexed, len(cells))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				out <- indexed{order: c.order, result: c.run()}
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()
	close(out)

	collected := make([]indexed, 0, len(cells))
	for r := range out {
		collected = append(collected, r)
	}
	sort.Slice(collected, func(a, b int) bool { return collected[a].order < collected[b].order })
	results := make([]Result, len(collected))
	for i, r := range collected {
		results[i] = r.result
	}
	return results
}

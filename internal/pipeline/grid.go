package pipeline

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/neighbors"
	"anex/internal/parallel"
)

// GridSpec describes a full Figure 7 grid execution: every detector paired
// with every point explainer and summarizer, across the requested
// explanation dimensionalities.
type GridSpec struct {
	// Dataset and GroundTruth define the workload.
	Dataset     *dataset.Dataset
	GroundTruth *dataset.GroundTruth
	// Dims lists the explanation dimensionalities to evaluate.
	Dims []int
	// Seed drives the stochastic algorithms.
	Seed int64
	// Options tunes the explainer hyper-parameters.
	Options Options
	// Cached shares per-subspace detector scores across the grid. Leave
	// false when the grid's purpose is timing.
	Cached bool
	// Detectors overrides the paper's three detectors (useful for
	// custom detectors or reduced hyper-parameters); nil selects them.
	// The Cached flag is not applied to overridden detectors — wrap them
	// with detector.NewCached as needed. The Plane field is likewise not
	// applied to overridden detectors: inject one via SetNeighbors before
	// handing them over.
	Detectors []NamedDetector
	// Plane, when non-nil, is the shared neighbourhood cache wired into
	// every factory-built kNN detector (via SetNeighbors), giving the grid
	// its own isolated cache; nil keeps the constructors' default, the
	// process-wide neighbors.Shared() plane. Either way all cells of the
	// grid share ONE plane, so each (subspace, dataset) neighbourhood is
	// computed once per grid, not once per detector per cell.
	Plane *neighbors.Plane
	// NoSched disables cost-aware dispatch: cells are handed to workers in
	// their deterministic (dimension, detector, explainer) order instead of
	// longest-estimated-first. Results are byte-identical either way —
	// scheduling only affects wall-clock packing.
	NoSched bool
	// Prefetch warms the plane (Plane, or the shared default) with the
	// dataset's 1d and 2d subspace neighbourhoods before any cell starts,
	// so the sweeps every explainer's candidate enumeration hammers are
	// resident up front. Only useful when the grid's detectors actually
	// query that plane.
	Prefetch bool
	// PointPipelines and SummaryPipelines, when either is non-nil,
	// replace the factory-built pipelines entirely: the grid runs exactly
	// the given pipelines per dimension, and Detectors/Options-driven
	// pipeline construction is skipped. This is the hook for running
	// custom or instrumented pipelines (e.g. fault-injection tests)
	// through the grid's isolation, timeout, and journaling machinery.
	// A pipeline's explicit Workers value is respected; zero picks up the
	// grid's automatic inner split.
	PointPipelines   []PointPipeline
	SummaryPipelines []SummaryPipeline
	// Workers is the grid's total worker budget; zero means GOMAXPROCS.
	// The budget is split between concurrent cells and each cell's inner
	// per-point loops (see parallel.Split): with more cells than budget
	// every worker runs whole cells serially inside; with few cells the
	// leftover budget fans out the per-point loops instead. Each unit of
	// work is independent and indexed, so results are identical at any
	// worker count. An explicit Options.Workers overrides the inner share.
	Workers int
	// CellTimeout, when positive, bounds each cell's wall-clock runtime
	// with its own deadline: a cell exceeding it is abandoned with
	// context.DeadlineExceeded as its Result.Err while every other cell
	// runs to completion.
	CellTimeout time.Duration
	// Journal, when set, checkpoints the grid: each completed cell is
	// appended to the journal as it finishes, and cells already recorded
	// (from this run or a previous one with the same spec) are skipped and
	// returned from the journal instead of recomputed. Cells that failed
	// with a context error — cancellation or cell timeout — are not
	// recorded, so a resumed run recomputes exactly the unfinished work.
	// The journal must come from OpenJournal and is not closed by RunGrid.
	Journal *Journal
}

// gridKind namespaces RunGrid's cells in a journal.
const gridKind = "grid"

// gridCell is one schedulable unit of the grid.
type gridCell struct {
	order     int
	detector  string
	explainer string
	dim       int
	run       func(ctx context.Context) Result
}

// RunGrid executes the grid and returns all cell results, deterministically
// ordered by (dimension, detector, explainer). An empty grid — no Dims or
// no detectors/pipelines — returns nil without spinning up workers.
//
// Fault tolerance: each cell runs in isolation — a panicking or timed-out
// cell records its failure in its own Result.Err and every other cell is
// unaffected. Cancelling ctx stops the grid between cells; cells already
// finished keep their results and cells never started (or aborted midway)
// carry ctx's error. The returned error reports journal I/O failures only —
// computation failures live in the per-cell Err fields.
func RunGrid(ctx context.Context, spec GridSpec) ([]Result, error) {
	numCells := countCells(spec)
	if numCells == 0 {
		return nil, nil
	}

	budget := spec.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	workers, inner := parallel.Split(budget, numCells)
	if spec.Options.Workers > 0 {
		inner = spec.Options.Workers // explicit inner knob wins
	}
	cells := buildCells(spec, inner)

	results := make([]Result, len(cells))
	ran := make([]bool, len(cells))

	// Serve journaled cells without scheduling them.
	var pending []gridCell
	for _, c := range cells {
		if spec.Journal != nil {
			if res, ok := spec.Journal.Lookup(gridKind, spec.Dataset.Name(), c.detector, c.explainer, c.dim); ok {
				results[c.order] = res
				ran[c.order] = true
				continue
			}
		}
		pending = append(pending, c)
	}

	var (
		journalMu  sync.Mutex
		journalErr error
	)
	recordJournal := func(res Result) {
		if spec.Journal == nil || isContextErr(res.Err) {
			return
		}
		if err := spec.Journal.Record(gridKind, res); err != nil {
			journalMu.Lock()
			if journalErr == nil {
				journalErr = err
			}
			journalMu.Unlock()
		}
	}

	runCell := func(c gridCell) Result {
		cellCtx := ctx
		cancel := context.CancelFunc(func() {})
		if spec.CellTimeout > 0 {
			cellCtx, cancel = context.WithTimeout(ctx, spec.CellTimeout)
		}
		res := c.run(cellCtx)
		cancel()
		// A cell abandoned because the whole GRID was cancelled should
		// carry the parent's error, not its private deadline's.
		if isContextErr(res.Err) {
			if perr := ctx.Err(); perr != nil {
				res.Err = perr
			}
		}
		recordJournal(res)
		return res
	}

	if spec.Prefetch && len(pending) > 0 {
		warmNeighborhoods(ctx, spec.Plane, spec.Dataset, budget)
	}

	done := ctx.Done()
	sched := newCellScheduler(pending, !spec.NoSched)
	var wg sync.WaitGroup
	var resMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c, ok := sched.next()
				if !ok {
					return
				}
				var res Result
				cancelled := false
				if done != nil {
					select {
					case <-done:
						cancelled = true
					default:
					}
				}
				if cancelled {
					res = Result{
						Dataset:   spec.Dataset.Name(),
						Detector:  c.detector,
						Explainer: c.explainer,
						TargetDim: c.dim,
						Err:       ctx.Err(),
					}
				} else {
					start := time.Now()
					res = runCell(c)
					sched.observe(c, time.Since(start))
				}
				resMu.Lock()
				results[c.order] = res
				ran[c.order] = true
				resMu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Defensive: every cell must carry a result (journaled, computed, or
	// cancellation-stamped above); a gap would mean a scheduling bug.
	for i := range results {
		if !ran[i] {
			c := cells[i]
			results[i] = Result{
				Dataset:   spec.Dataset.Name(),
				Detector:  c.detector,
				Explainer: c.explainer,
				TargetDim: c.dim,
				Err:       errors.New("grid: cell was never scheduled"),
			}
		}
	}
	return results, journalErr
}

// countCells returns the number of cells the spec expands to, without
// building any closures.
func countCells(spec GridSpec) int {
	if spec.PointPipelines != nil || spec.SummaryPipelines != nil {
		return len(spec.Dims) * (len(spec.PointPipelines) + len(spec.SummaryPipelines))
	}
	dets := spec.Detectors
	if dets == nil {
		dets = NewDetectors(spec.Seed, spec.Cached)
	}
	n := 0
	for range spec.Dims {
		for _, d := range dets {
			n += len(PointPipelines(d, spec.Seed, spec.Options)) +
				len(SummaryPipelines(d, spec.Seed, spec.Options))
		}
	}
	return n
}

// buildCells expands the spec into its deterministic cell list, ordered by
// (dimension, detector, explainer) and with the inner worker budget applied
// (explicitly-set Workers on override pipelines win).
func buildCells(spec GridSpec, inner int) []gridCell {
	var cells []gridCell
	order := 0
	add := func(det, expl string, dim int, run func(ctx context.Context) Result) {
		cells = append(cells, gridCell{order: order, detector: det, explainer: expl, dim: dim, run: run})
		order++
	}
	addPoint := func(pp PointPipeline, dim int) {
		if pp.Workers <= 0 {
			pp.Workers = inner
		}
		add(pp.Detector, pp.Explainer.Name(), dim, func(ctx context.Context) Result {
			return RunPointExplanation(ctx, spec.Dataset, spec.GroundTruth, pp, dim)
		})
	}
	addSummary := func(sp SummaryPipeline, dim int) {
		if sp.Workers <= 0 {
			sp.Workers = inner
		}
		add(sp.Detector, sp.Summarizer.Name(), dim, func(ctx context.Context) Result {
			return RunSummarization(ctx, spec.Dataset, spec.GroundTruth, sp, dim)
		})
	}
	if spec.PointPipelines != nil || spec.SummaryPipelines != nil {
		for _, dim := range spec.Dims {
			for _, pp := range spec.PointPipelines {
				addPoint(pp, dim)
			}
			for _, sp := range spec.SummaryPipelines {
				addSummary(sp, dim)
			}
		}
		return cells
	}
	// One set of detector instances per grid: with caching on, every
	// cell sharing a detector also shares its score memo (bounded by the
	// Options.CacheBytes budget).
	dets := spec.Detectors
	if dets == nil {
		dets = NewDetectors(spec.Seed, false)
		if spec.Plane != nil {
			// Inject before the cache wrap: the setter lives on the
			// underlying kNN detectors.
			for _, d := range dets {
				if ns, ok := d.Detector.(neighborsSetter); ok {
					ns.SetNeighbors(spec.Plane)
				}
			}
		}
		if spec.Cached {
			for i := range dets {
				dets[i].Detector = detector.NewCachedBudget(dets[i].Detector, spec.Options.CacheBytes)
			}
		}
	}
	// The inner budget reaches the explainers' stage-scoring loops through
	// the factory, so an unset Options.Workers still parallelises candidate
	// scoring with the grid's automatic split.
	opts := spec.Options
	if opts.Workers <= 0 {
		opts.Workers = inner
	}
	for _, dim := range spec.Dims {
		for _, d := range dets {
			for _, pp := range PointPipelines(d, spec.Seed, opts) {
				// The factory already gave the explainer opts.Workers, so the
				// inner budget must NOT be applied to the per-point loop too:
				// that stacks to inner² goroutines per cell, and the cells
				// themselves already run `workers`-wide. The budget lives in
				// the candidate-scoring loops — points racing there would
				// mostly queue behind the score cache's singleflight anyway —
				// so the per-point loop stays serial.
				pp.Workers = 1
				addPoint(pp, dim)
			}
			// Summarizers have no internal worker knob, so the per-subspace
			// ranking loop is the budget's single application on this path.
			for _, sp := range SummaryPipelines(d, spec.Seed, opts) {
				sp.Workers = inner
				addSummary(sp, dim)
			}
		}
	}
	return cells
}

// neighborsSetter is the plane-injection hook the kNN detectors (LOF,
// FastABOD, KNNDist) implement; GridSpec.Plane reaches factory-built
// detectors through it.
type neighborsSetter interface {
	SetNeighbors(p *neighbors.Plane)
}

// warmNeighborhoods is the grid's prefetch pass: it precomputes the plane's
// neighbourhood entries for every 1d and 2d subspace of the dataset — the
// sweeps Beam's stage 1, LookOut's pair enumeration, and the delta engine's
// prefix chains all start from — so cells begin against a hot cache. A nil
// plane resolves to the process-wide shared one (what the factory-built
// detectors query); planes with no registered consumer are left alone.
// Cancellation just cuts the pass short — the cells carry the ctx error.
func warmNeighborhoods(ctx context.Context, plane *neighbors.Plane, ds *dataset.Dataset, workers int) {
	if plane == nil {
		plane = neighbors.Shared()
	}
	if plane.KMax() < 1 {
		return
	}
	var srcs []neighbors.ColumnSource
	for dim := 1; dim <= 2; dim++ {
		for _, s := range explain.StageCandidates(ds.D(), dim) {
			srcs = append(srcs, ds.View(s))
		}
	}
	_ = plane.Warm(ctx, srcs, workers)
}

// isContextErr reports whether err is (or wraps) a context cancellation or
// deadline expiry.
func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"anex/internal/metrics"
)

func sampleResult(detName string) Result {
	return Result{
		Dataset:         "jtest",
		Detector:        detName,
		Explainer:       "Beam_FX",
		TargetDim:       2,
		MAP:             0.625,
		MeanRecall:      0.5,
		PointsEvaluated: 2,
		Duration:        3 * time.Millisecond,
		PerPoint: []metrics.PointResult{
			{Point: 4, AveP: 0.75, Recall: 0.5, Relevant: 2, Returned: 3},
			{Point: 9, AveP: 0.5, Recall: 0.5, Relevant: 2, Returned: 3},
		},
	}
}

func TestJournalRecordLookupRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleResult("LOF")
	if err := j.Record("grid", want); err != nil {
		t.Fatal(err)
	}
	failed := sampleResult("iForest")
	failed.Err = errors.New("deterministic failure")
	if err := j.Record("grid", failed); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reloaded %d entries, want 2", j2.Len())
	}
	got, ok := j2.Lookup("grid", "jtest", "LOF", "Beam_FX", 2)
	if !ok {
		t.Fatal("recorded cell not found after reopen")
	}
	if got.MAP != want.MAP || got.Duration != want.Duration || len(got.PerPoint) != 2 ||
		got.PerPoint[1] != want.PerPoint[1] {
		t.Errorf("round trip lost data: %+v", got)
	}
	gotFailed, ok := j2.Lookup("grid", "jtest", "iForest", "Beam_FX", 2)
	if !ok || gotFailed.Err == nil || !strings.Contains(gotFailed.Err.Error(), "deterministic failure") {
		t.Errorf("failure entry: ok=%v err=%v", ok, gotFailed.Err)
	}
	// Kind namespaces the key: the same cell under another kind is absent.
	if _, ok := j2.Lookup("point", "jtest", "LOF", "Beam_FX", 2); ok {
		t.Error("kind not namespaced")
	}
}

// TestOpenJournalTruncatesTornTail: a journal whose writer died mid-line
// reopens with the torn fragment dropped, and appends continue cleanly from
// the last complete entry.
func TestOpenJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("grid", sampleResult("LOF")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a line, no newline.
	if err := os.WriteFile(path, append(append([]byte(nil), intact...), []byte(`{"kind":"grid","dataset":"jte`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	if j2.Len() != 1 {
		t.Fatalf("torn journal kept %d entries, want 1", j2.Len())
	}
	if err := j2.Record("grid", sampleResult("LODA")); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Errorf("after truncate+append: %d entries, want 2", j3.Len())
	}
}

// TestOpenJournalRejectsCorruptionMidFile: malformed lines anywhere but the
// tail are data corruption, not a crash signature, and must error loudly.
func TestOpenJournalRejectsCorruptionMidFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("grid", sampleResult("LOF")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("not json at all\n"), intact...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Error("mid-file corruption silently accepted")
	}
}

package pipeline

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"anex/internal/metrics"
)

// Journal is an append-only JSON-lines checkpoint of completed pipeline
// cells. Long grid runs and experiment sessions record every finished cell
// as one line; a fresh invocation with the same spec and journal skips the
// recorded cells and recomputes only what is missing, so an interrupted run
// resumes where it stopped instead of starting over.
//
// Cells are keyed by (kind, dataset, detector, explainer, dimension), where
// kind namespaces the producer ("grid" for RunGrid, the experiment table
// kinds for the experiments package). Entries store the full Result —
// aggregate metrics, timings, per-point evaluations, and a deterministic
// error if the cell failed — so a resumed run is complete, not just
// summarised. Cells that failed with a context error (cancellation, cell
// timeout) are NOT recorded: they carry no reusable work and must be
// recomputed on resume.
//
// A Journal is safe for concurrent use by the grid's workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Result
}

// journalEntry is the on-disk form of one completed cell.
type journalEntry struct {
	Kind            string                `json:"kind"`
	Dataset         string                `json:"dataset"`
	Detector        string                `json:"detector"`
	Explainer       string                `json:"explainer"`
	TargetDim       int                   `json:"target_dim"`
	MAP             float64               `json:"map"`
	MeanRecall      float64               `json:"mean_recall"`
	PointsEvaluated int                   `json:"points_evaluated"`
	DurationNanos   int64                 `json:"duration_ns"`
	ScoringNanos    int64                 `json:"scoring_ns,omitempty"`
	SearchNanos     int64                 `json:"search_ns,omitempty"`
	EvalNanos       int64                 `json:"eval_ns,omitempty"`
	PerPoint        []metrics.PointResult `json:"per_point,omitempty"`
	Err             string                `json:"err,omitempty"`
}

func journalKey(kind, dataset, detector, explainer string, dim int) string {
	return fmt.Sprintf("%s|%s|%s|%s|%d", kind, dataset, detector, explainer, dim)
}

// OpenJournal opens (creating if absent) the journal at path and loads every
// complete entry already recorded. A torn final line — the signature of a
// run killed mid-write — is truncated away, so a journal survives its
// writer crashing; a malformed line anywhere else is an error.
func OpenJournal(path string) (*Journal, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("journal: %w", err)
	}
	done := make(map[string]Result)
	goodEnd := 0 // byte offset just past the last complete, parseable line
	offset := 0
	lineNo := 0
	for offset < len(raw) {
		nl := bytes.IndexByte(raw[offset:], '\n')
		if nl < 0 {
			// No trailing newline: a torn write. Drop the fragment.
			break
		}
		line := raw[offset : offset+nl]
		offset += nl + 1
		lineNo++
		if len(bytes.TrimSpace(line)) == 0 {
			goodEnd = offset
			continue
		}
		var e journalEntry
		if uerr := json.Unmarshal(line, &e); uerr != nil {
			if offset >= len(raw) {
				// Torn final line that happens to end in a newline-containing
				// fragment boundary; drop it like the no-newline case.
				break
			}
			return nil, fmt.Errorf("journal: %s line %d: %w", path, lineNo, uerr)
		}
		done[journalKey(e.Kind, e.Dataset, e.Detector, e.Explainer, e.TargetDim)] = e.toResult()
		goodEnd = offset
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(int64(goodEnd)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(int64(goodEnd), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, done: done}, nil
}

func (e journalEntry) toResult() Result {
	res := Result{
		Dataset:         e.Dataset,
		Detector:        e.Detector,
		Explainer:       e.Explainer,
		TargetDim:       e.TargetDim,
		MAP:             e.MAP,
		MeanRecall:      e.MeanRecall,
		PointsEvaluated: e.PointsEvaluated,
		Duration:        time.Duration(e.DurationNanos),
		ScoringTime:     time.Duration(e.ScoringNanos),
		SearchTime:      time.Duration(e.SearchNanos),
		EvalTime:        time.Duration(e.EvalNanos),
		PerPoint:        e.PerPoint,
	}
	if e.Err != "" {
		res.Err = errors.New(e.Err)
	}
	return res
}

// Lookup returns the recorded result of the keyed cell, if any.
func (j *Journal) Lookup(kind, dataset, detector, explainer string, dim int) (Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.done[journalKey(kind, dataset, detector, explainer, dim)]
	return res, ok
}

// Len returns the number of recorded cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends the result as one journal line and makes it visible to
// Lookup. The line is flushed to the OS before Record returns, so a cell is
// either fully journaled or (after a crash) its torn line is discarded by
// the next OpenJournal.
func (j *Journal) Record(kind string, res Result) error {
	e := journalEntry{
		Kind:            kind,
		Dataset:         res.Dataset,
		Detector:        res.Detector,
		Explainer:       res.Explainer,
		TargetDim:       res.TargetDim,
		MAP:             res.MAP,
		MeanRecall:      res.MeanRecall,
		PointsEvaluated: res.PointsEvaluated,
		DurationNanos:   int64(res.Duration),
		ScoringNanos:    int64(res.ScoringTime),
		SearchNanos:     int64(res.SearchTime),
		EvalNanos:       int64(res.EvalTime),
		PerPoint:        res.PerPoint,
	}
	if res.Err != nil {
		e.Err = res.Err.Error()
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	j.done[journalKey(e.Kind, e.Dataset, e.Detector, e.Explainer, e.TargetDim)] = e.toResult()
	return nil
}

// Close closes the underlying file. The journal must not be used afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

package detector

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"anex/internal/dataset"
	"anex/internal/stats"
)

// LODA defaults following Pevný (Machine Learning, 2015).
const (
	DefaultLODAProjections = 100
)

// LODA is the Lightweight On-line Detector of Anomalies of Pevný (2015),
// the streaming detector the paper's future-work section points to. It
// projects points onto k sparse random directions, estimates a 1d histogram
// density per projection, and scores a point by the negative mean
// log-density across projections. Unlike LOF/ABOD/iForest it is an
// *explaining* detector: the one-out contrast between projections that use
// a feature and those that don't yields per-feature relevance scores.
//
// The batch Scores method fits on the view and scores its points, making
// LODA a drop-in core.Detector for the explanation pipelines; FitLODA
// exposes the underlying model for online scoring and updating (see the
// stream package).
type LODA struct {
	// Projections is the number of sparse random projections; zero
	// means 100.
	Projections int
	// Bins is the number of histogram bins per projection; zero derives
	// ⌈√n⌉ from the sample size.
	Bins int
	// Seed makes the projections deterministic.
	Seed int64
}

// NewLODA returns a LODA detector with the default settings and given seed.
func NewLODA(seed int64) *LODA { return &LODA{Seed: seed} }

func (l *LODA) Name() string { return "LODA" }

// Scores fits LODA on the view and returns the anomaly score of each point
// (higher = more outlying), observing ctx between points.
func (l *LODA) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("LODA", v); err != nil {
		return nil, err
	}
	model := FitLODA(v.Points(), l.Projections, l.Bins, l.Seed)
	scores := make([]float64, v.N())
	done := ctx.Done()
	for i := range scores {
		if done != nil && i%64 == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		scores[i] = model.Score(v.Point(i))
	}
	return scores, nil
}

// LODAModel is a fitted LODA: sparse projection vectors with per-projection
// histogram density estimates. It supports online scoring and updating.
type LODAModel struct {
	projections [][]float64 // dense storage of sparse vectors, k × d
	histograms  []histogram
	dim         int
}

// FitLODA fits a LODA model on the points. projections and bins of zero
// select the defaults (100 projections, ⌈√n⌉ bins).
func FitLODA(points [][]float64, projections, bins int, seed int64) *LODAModel {
	if len(points) == 0 {
		panic(fmt.Errorf("LODA: no points"))
	}
	d := len(points[0])
	if projections <= 0 {
		projections = DefaultLODAProjections
	}
	if bins <= 0 {
		bins = int(math.Ceil(math.Sqrt(float64(len(points)))))
		if bins < 4 {
			bins = 4
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &LODAModel{dim: d}
	// Each projection has ⌈√d⌉ non-zero N(0,1) components (Pevný §3.1).
	nonZero := int(math.Ceil(math.Sqrt(float64(d))))
	for k := 0; k < projections; k++ {
		w := make([]float64, d)
		perm := rng.Perm(d)
		for _, f := range perm[:nonZero] {
			w[f] = rng.NormFloat64()
		}
		m.projections = append(m.projections, w)
	}
	// Build the histograms over the projected training data.
	proj := make([]float64, len(points))
	for k := range m.projections {
		for i, p := range points {
			proj[i] = dot(m.projections[k], p)
		}
		m.histograms = append(m.histograms, newHistogram(proj, bins))
	}
	return m
}

// Dim returns the dimensionality the model was fitted on.
func (m *LODAModel) Dim() int { return m.dim }

// Score returns the anomaly score of a point: the negative mean
// log-density across projections.
func (m *LODAModel) Score(point []float64) float64 {
	var sum float64
	for k, w := range m.projections {
		sum += -math.Log(m.histograms[k].density(dot(w, point)))
	}
	return sum / float64(len(m.projections))
}

// Update performs an online update: the point is added to every
// projection's histogram. Values outside a histogram's fitted range fall
// into its overflow mass.
func (m *LODAModel) Update(point []float64) {
	for k, w := range m.projections {
		m.histograms[k].add(dot(w, point))
	}
}

// FeatureScores returns LODA's per-feature one-out explanation of a point:
// for each feature, the Welch t-statistic contrasting the point's
// per-projection scores between projections that use the feature and those
// that don't. Large positive values mean the feature contributes to the
// anomaly (Pevný §3.3). Features never (or always) hit by projections get 0.
func (m *LODAModel) FeatureScores(point []float64) []float64 {
	perProj := make([]float64, len(m.projections))
	for k, w := range m.projections {
		perProj[k] = -math.Log(m.histograms[k].density(dot(w, point)))
	}
	out := make([]float64, m.dim)
	var with, without []float64
	for f := 0; f < m.dim; f++ {
		with, without = with[:0], without[:0]
		for k, w := range m.projections {
			if w[f] != 0 {
				with = append(with, perProj[k])
			} else {
				without = append(without, perProj[k])
			}
		}
		if len(with) < 2 || len(without) < 2 {
			continue
		}
		res := stats.WelchTTest(with, without)
		if !math.IsInf(res.Statistic, 0) && !math.IsNaN(res.Statistic) {
			out[f] = res.Statistic
		}
	}
	return out
}

func dot(w, x []float64) float64 {
	var sum float64
	for i, wi := range w {
		if wi != 0 {
			sum += wi * x[i]
		}
	}
	return sum
}

// histogram is an equi-width 1d density estimate with Laplace smoothing and
// explicit overflow mass for out-of-range values.
type histogram struct {
	lo, width float64
	counts    []float64
	overflow  float64
	total     float64
}

func newHistogram(values []float64, bins int) histogram {
	lo, hi := stats.MinMax(values)
	if hi == lo {
		hi = lo + 1 // degenerate projection: one wide bin
	}
	h := histogram{
		lo:     lo,
		width:  (hi - lo) / float64(bins),
		counts: make([]float64, bins),
	}
	for _, v := range values {
		h.add(v)
	}
	return h
}

func (h *histogram) add(v float64) {
	idx := int((v - h.lo) / h.width)
	switch {
	case idx < 0 || idx >= len(h.counts):
		h.overflow++
	default:
		h.counts[idx]++
	}
	h.total++
}

// density returns the smoothed probability density at v. Every bin carries
// one pseudo-count so unseen regions have small non-zero density, keeping
// the log-score finite.
func (h *histogram) density(v float64) float64 {
	pseudoTotal := h.total + float64(len(h.counts)) + 1
	idx := int((v - h.lo) / h.width)
	var count float64
	if idx < 0 || idx >= len(h.counts) {
		count = h.overflow
	} else {
		count = h.counts[idx]
	}
	return (count + 1) / (pseudoTotal * h.width)
}

package detector

import "math"

// window.go — the dirty-aware scoring path of the incremental stream engine.
//
// The sliding-window monitor maintains neighbourhoods incrementally
// (neighbors.WindowEngine) and knows, per stride, exactly which window slots'
// exported k-prefixes changed. A detector that can exploit that re-scores
// only the points whose score inputs could have changed and re-serves the
// previous evaluation's value — bit-identical, because the inputs are
// bit-identical — for everything else. What "could have changed" means is
// per-detector:
//
//   - kNN-dist reads only a point's own neighbour distances: dirty(i) alone.
//   - LOF is a 2-hop function: lrd(i) reads i's distances and its
//     neighbours' k-distances (their row tails), so lrd is dirty when i or
//     any neighbour is; the score reads neighbours' lrds, so it is dirty
//     when lrd-dirty(i) or any neighbour is lrd-dirty. k-distances are
//     always read live from the current rows — O(n) — rather than tracked.
//   - FastABOD reads neighbour COORDINATES, not just distances. A
//     neighbour's coordinates change only when its slot was re-occupied,
//     and the engine marks every arrival slot dirty, so dirty(i) or any
//     dirty neighbour again covers it. The final -Inf sentinel substitution
//     is a global pass (it needs the minimum finite score across ALL
//     points), so raw scores are memoised and the substitution re-runs over
//     the full window each evaluation.
//
// Dirtiness is conservative by construction — the engine marks the
// maintained winK-prefix, a superset of any detector's own k-prefix — which
// costs spurious rescores, never a stale score. Every arithmetic loop below
// replicates its Scores sibling operation for operation, in the same order,
// so a full rescore and an incremental one emit identical bit patterns
// (pinned by TestScoresWindowBitIdentical).

// WindowScorer is implemented by detectors that can score a sliding window
// incrementally from a maintained neighbourhood export. The monitor feeds
// it the window rows (slot-ordered, matching the export's row indices), the
// flat row-major neighbour arrays (m valid entries per stride-spaced row,
// ascending (distance, index)), the per-slot dirty marks of the last
// stride, and the detector's private memo. It returns the full window's
// scores — a fresh slice each call — plus how many points were actually
// re-scored. Passing an invalid memo (zero value, or sized for a different
// window) degrades to a full rescore; results are bit-identical to Scores
// over the same rows either way.
type WindowScorer interface {
	// WindowK returns the neighbourhood depth the engine must maintain for
	// this detector — its effective k.
	WindowK() int
	// ScoresWindow scores the window incrementally. dirty must have one
	// mark per row; memo must be this detector's own (one memo may not be
	// shared between detectors, nor between monitors).
	ScoresWindow(points [][]float64, idx []int32, dist []float64, m, stride int, dirty []bool, memo *WindowMemo) (scores []float64, rescored int)
}

// WindowMemo carries one detector's per-window scoring state between
// evaluations. The zero value is ready to use (the first evaluation is a
// full rescore). The monitor owns one memo per detector and discards it
// whenever the engine is rebuilt cold.
type WindowMemo struct {
	n, m   int       // window size and neighbourhood depth the state is for
	scores []float64 // previous scores (FastABOD: raw, -Inf sentinels kept)
	lrd    []float64 // LOF only: previous local reachability densities
}

// valid reports whether the memo's state matches a window of n points
// scored at depth m.
func (mm *WindowMemo) valid(n, m int) bool {
	return mm.n == n && mm.m == m && len(mm.scores) == n
}

// reset sizes the memo for a window of n points at depth m, invalidating
// previous state.
func (mm *WindowMemo) reset(n, m int) {
	mm.n, mm.m = n, m
	if cap(mm.scores) < n {
		mm.scores = make([]float64, n)
	}
	mm.scores = mm.scores[:n]
}

// WindowK returns the engine depth LOF needs: its neighbourhood size.
func (l *LOF) WindowK() int { return l.k() }

// ScoresWindow is the incremental sibling of LOF.Scores: identical
// arithmetic, restricted to the lrd-dirty and score-dirty sets.
func (l *LOF) ScoresWindow(points [][]float64, idx []int32, dist []float64, m, stride int, dirty []bool, memo *WindowMemo) ([]float64, int) {
	n := len(points)
	md := l.k()
	if md > m {
		md = m
	}
	out := make([]float64, n)
	if md < 1 {
		// No neighbours exist; every point is a perfect inlier (the n=1
		// degenerate of Scores).
		for i := range out {
			out[i] = 1
		}
		return out, 0
	}
	full := !memo.valid(n, md)
	if full {
		memo.reset(n, md)
	}
	if cap(memo.lrd) < n {
		memo.lrd = make([]float64, n)
	}
	memo.lrd = memo.lrd[:n]

	// k-distance of each point — read live from the current rows, O(n), so
	// no staleness tracking is ever needed for it.
	kdist := make([]float64, n)
	for i := range kdist {
		kdist[i] = dist[i*stride+md-1]
	}

	// Hop 1: lrd(i) reads i's row and its neighbours' k-distances.
	lrdDirty := make([]bool, n)
	if full {
		for i := range lrdDirty {
			lrdDirty[i] = true
		}
	} else {
		for i := 0; i < n; i++ {
			ld := dirty[i]
			if !ld {
				row := i * stride
				for _, o := range idx[row : row+md] {
					if dirty[o] {
						ld = true
						break
					}
				}
			}
			lrdDirty[i] = ld
		}
	}
	lrd := memo.lrd
	for i := 0; i < n; i++ {
		if !lrdDirty[i] {
			continue
		}
		var sum float64
		row := i * stride
		for j, o := range idx[row : row+md] {
			reach := dist[row+j]
			if kdist[o] > reach {
				reach = kdist[o]
			}
			sum += reach
		}
		mean := sum / float64(md)
		if mean == 0 {
			lrd[i] = maxDensity
		} else {
			lrd[i] = 1 / mean
		}
	}

	// Hop 2: the score reads i's lrd and its neighbours' lrds.
	rescored := 0
	for i := 0; i < n; i++ {
		sd := lrdDirty[i]
		if !sd {
			row := i * stride
			for _, o := range idx[row : row+md] {
				if lrdDirty[o] {
					sd = true
					break
				}
			}
		}
		if !sd {
			out[i] = memo.scores[i]
			continue
		}
		var sum float64
		for _, o := range idx[i*stride : i*stride+md] {
			sum += lrd[o]
		}
		out[i] = sum / (float64(md) * lrd[i])
		memo.scores[i] = out[i]
		rescored++
	}
	return out, rescored
}

// WindowK returns the engine depth kNN-dist needs: its neighbourhood size.
func (d *KNNDist) WindowK() int { return d.k() }

// ScoresWindow is the incremental sibling of KNNDist.Scores. The score
// reads only the point's own neighbour distances, so dirty(i) alone decides.
func (d *KNNDist) ScoresWindow(points [][]float64, idx []int32, dist []float64, m, stride int, dirty []bool, memo *WindowMemo) ([]float64, int) {
	n := len(points)
	md := d.k()
	if md > m {
		md = m
	}
	out := make([]float64, n)
	if md < 1 {
		return out, 0
	}
	full := !memo.valid(n, md)
	if full {
		memo.reset(n, md)
	}
	rescored := 0
	for i := 0; i < n; i++ {
		if !full && !dirty[i] {
			out[i] = memo.scores[i]
			continue
		}
		var sum float64
		for _, dd := range dist[i*stride : i*stride+md] {
			sum += dd
		}
		out[i] = sum / float64(md)
		memo.scores[i] = out[i]
		rescored++
	}
	return out, rescored
}

// WindowK returns the engine depth FastABOD needs: its neighbourhood size.
func (a *FastABOD) WindowK() int { return a.k() }

// ScoresWindow is the incremental sibling of FastABOD.Scores. The angle
// spectrum reads neighbour coordinates; slot re-occupations are always
// marked dirty by the engine, so one hop of dirty propagation covers both
// neighbour-set and neighbour-coordinate changes. Raw scores (with the
// duplicate-point -Inf sentinels) are memoised and the global
// minimum-finite substitution re-runs over the whole window every call.
func (a *FastABOD) ScoresWindow(points [][]float64, idx []int32, dist []float64, m, stride int, dirty []bool, memo *WindowMemo) ([]float64, int) {
	n := len(points)
	md := a.k()
	if md > m {
		md = m
	}
	out := make([]float64, n)
	if md < 2 {
		// No angle pairs exist (the k<2 degenerate of Scores).
		return out, 0
	}
	full := !memo.valid(n, md)
	if full {
		memo.reset(n, md)
	}
	dim := len(points[0])
	da := make([]float64, dim)
	db := make([]float64, dim)
	raw := memo.scores
	rescored := 0
	for i := 0; i < n; i++ {
		recompute := full || dirty[i]
		if !recompute {
			row := i * stride
			for _, o := range idx[row : row+md] {
				if dirty[o] {
					recompute = true
					break
				}
			}
		}
		if !recompute {
			continue
		}
		p := points[i]
		nbrs := idx[i*stride : i*stride+md]
		var mean, m2 float64
		var count int
		for s := 0; s < len(nbrs); s++ {
			ps := points[int(nbrs[s])]
			var na float64
			for d := 0; d < dim; d++ {
				da[d] = ps[d] - p[d]
				na += da[d] * da[d]
			}
			if na == 0 {
				continue
			}
			for t := s + 1; t < len(nbrs); t++ {
				pt := points[int(nbrs[t])]
				var nb, dot float64
				for d := 0; d < dim; d++ {
					db[d] = pt[d] - p[d]
					nb += db[d] * db[d]
					dot += da[d] * db[d]
				}
				if nb == 0 {
					continue
				}
				val := dot / (na * nb)
				count++
				delta := val - mean
				mean += delta / float64(count)
				m2 += delta * (val - mean)
			}
		}
		if count < 2 {
			raw[i] = math.Inf(-1)
		} else {
			raw[i] = -(m2 / float64(count))
		}
		rescored++
	}
	minFinite := math.Inf(1)
	for _, s := range raw {
		if !math.IsInf(s, -1) && s < minFinite {
			minFinite = s
		}
	}
	if math.IsInf(minFinite, 1) {
		minFinite = 0
	}
	for i, s := range raw {
		if math.IsInf(s, -1) {
			out[i] = minFinite
		} else {
			out[i] = s
		}
	}
	return out, rescored
}

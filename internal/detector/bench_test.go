package detector

import (
	"context"
	"math/rand"
	"testing"

	"anex/internal/dataset"
)

var ctx = context.Background()

func benchView(b *testing.B, n, d int) *dataset.View {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	ds, err := dataset.New("bench", cols, nil)
	if err != nil {
		b.Fatal(err)
	}
	return ds.FullView()
}

// The paper's §4.3 per-subspace detector costs, at its sample size
// (n ≈ 1000, low-dimensional subspace views).
func BenchmarkDetectors1000x3(b *testing.B) {
	b.ReportAllocs()
	view := benchView(b, 1000, 3)
	b.Run("LOF", func(b *testing.B) {
		b.ReportAllocs()
		det := NewLOF(15)
		for i := 0; i < b.N; i++ {
			det.Scores(ctx, view)
		}
	})
	b.Run("FastABOD", func(b *testing.B) {
		b.ReportAllocs()
		det := NewFastABOD(10)
		for i := 0; i < b.N; i++ {
			det.Scores(ctx, view)
		}
	})
	b.Run("iForest-1rep", func(b *testing.B) {
		b.ReportAllocs()
		det := &IsolationForest{Trees: 100, Subsample: 256, Repetitions: 1, Seed: 1}
		for i := 0; i < b.N; i++ {
			det.Scores(ctx, view)
		}
	})
	b.Run("LODA", func(b *testing.B) {
		b.ReportAllocs()
		det := NewLODA(1)
		for i := 0; i < b.N; i++ {
			det.Scores(ctx, view)
		}
	})
	b.Run("kNN-dist", func(b *testing.B) {
		b.ReportAllocs()
		det := NewKNNDist(10)
		for i := 0; i < b.N; i++ {
			det.Scores(ctx, view)
		}
	})
}

func BenchmarkLOFByDimensionality(b *testing.B) {
	b.ReportAllocs()
	for _, d := range []int{2, 5, 20} {
		view := benchView(b, 1000, d)
		b.Run(string(rune('0'+d/10))+string(rune('0'+d%10))+"d", func(b *testing.B) {
			b.ReportAllocs()
			det := NewLOF(15)
			for i := 0; i < b.N; i++ {
				det.Scores(ctx, view)
			}
		})
	}
}

func BenchmarkCachedDetectorHit(b *testing.B) {
	b.ReportAllocs()
	view := benchView(b, 500, 3)
	c := NewCached(NewLOF(15))
	c.Scores(ctx, view) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Scores(ctx, view)
	}
}

package detector

import (
	"fmt"
	"testing"
)

// BenchmarkDetectorWorkers measures how the parallel per-point inner loops
// scale with the Workers knob. Results are bit-identical at every worker
// count (see TestDetectorWorkerCountInvariance); on a multi-core machine
// the workers=4 variants should run ≥2× faster than workers=1.
func BenchmarkDetectorWorkers(b *testing.B) {
	view := benchView(b, 2000, 5)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("LOF/workers=%d", w), func(b *testing.B) {
			det := &LOF{K: 15, Workers: w}
			for i := 0; i < b.N; i++ {
				det.Scores(ctx, view)
			}
		})
		b.Run(fmt.Sprintf("FastABOD/workers=%d", w), func(b *testing.B) {
			det := &FastABOD{K: 10, Workers: w}
			for i := 0; i < b.N; i++ {
				det.Scores(ctx, view)
			}
		})
		b.Run(fmt.Sprintf("iForest/workers=%d", w), func(b *testing.B) {
			det := &IsolationForest{Trees: 100, Subsample: 256, Repetitions: 1, Seed: 1, Workers: w}
			for i := 0; i < b.N; i++ {
				det.Scores(ctx, view)
			}
		})
	}
}

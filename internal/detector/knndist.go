package detector

import (
	"context"

	"anex/internal/dataset"
	"anex/internal/neighbors"
)

// KNNDist is the classic distance-based outlier detector: the score of a
// point is its mean distance to its k nearest neighbours (Angiulli &
// Pizzuti's weighted variant). The paper's testbed deliberately excludes
// distance-based detectors (its cited studies find them dominated by the
// density/angle/isolation families), but the library ships one as a
// baseline so that comparison can itself be reproduced: every explainer
// accepts KNNDist like any other core.Detector.
type KNNDist struct {
	// K is the neighbourhood size; zero means 10.
	K int
	// Workers bounds the goroutines of the per-point kNN phase; values
	// ≤ 1 (including the zero value) keep scoring serial. Results are
	// identical at any worker count.
	Workers int
	// Neighbors, when non-nil, answers the kNN phase through the shared
	// neighbourhood plane (prefix-sliced to this detector's k); results
	// are bit-identical either way.
	Neighbors *neighbors.Plane
}

// DefaultKNNDistK is the default neighbourhood size.
const DefaultKNNDistK = 10

// NewKNNDist returns a mean-kNN-distance detector (0 → k=10) wired to the
// process-wide shared neighbourhood plane.
func NewKNNDist(k int) *KNNDist {
	d := &KNNDist{K: k, Neighbors: neighbors.Shared()}
	d.Neighbors.RegisterK(d.k())
	return d
}

// SetNeighbors injects the neighbourhood plane (nil disables sharing) and
// registers this detector's k with it.
func (d *KNNDist) SetNeighbors(p *neighbors.Plane) {
	d.Neighbors = p
	p.RegisterK(d.k())
}

func (d *KNNDist) Name() string { return "kNN-dist" }

func (d *KNNDist) k() int {
	if d.K <= 0 {
		return DefaultKNNDistK
	}
	return d.K
}

// Scores returns the mean distance of each point to its k nearest
// neighbours (higher = more outlying). K values ≥ n are clamped to n−1.
func (d *KNNDist) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("kNN-dist", v); err != nil {
		return nil, err
	}
	n := v.N()
	k := d.k()
	if k > n-1 {
		k = n - 1
	}
	scores := make([]float64, n)
	if k < 1 {
		return scores, nil
	}
	_, dist, m, stride, err := neighbors.AllKNNOrIndex(ctx, d.Neighbors, v, k, d.Workers)
	if err != nil {
		return nil, err
	}
	for i := range scores {
		var sum float64
		for _, dd := range dist[i*stride : i*stride+m] {
			sum += dd
		}
		scores[i] = sum / float64(m)
	}
	return scores, nil
}

package detector

import (
	"context"

	"anex/internal/dataset"
	"anex/internal/neighbors"
)

// KNNDist is the classic distance-based outlier detector: the score of a
// point is its mean distance to its k nearest neighbours (Angiulli &
// Pizzuti's weighted variant). The paper's testbed deliberately excludes
// distance-based detectors (its cited studies find them dominated by the
// density/angle/isolation families), but the library ships one as a
// baseline so that comparison can itself be reproduced: every explainer
// accepts KNNDist like any other core.Detector.
type KNNDist struct {
	// K is the neighbourhood size; zero means 10.
	K int
	// Neighbors, when non-nil, answers the kNN phase through the delta
	// engine on views it accepts; results are bit-identical either way.
	Neighbors *neighbors.DeltaEngine
}

// DefaultKNNDistK is the default neighbourhood size.
const DefaultKNNDistK = 10

// NewKNNDist returns a mean-kNN-distance detector (0 → k=10) with
// delta-distance subspace scoring enabled.
func NewKNNDist(k int) *KNNDist {
	return &KNNDist{K: k, Neighbors: neighbors.NewDeltaEngine(0)}
}

func (d *KNNDist) Name() string { return "kNN-dist" }

func (d *KNNDist) k() int {
	if d.K <= 0 {
		return DefaultKNNDistK
	}
	return d.K
}

// Scores returns the mean distance of each point to its k nearest
// neighbours (higher = more outlying). K values ≥ n are clamped to n−1.
func (d *KNNDist) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("kNN-dist", v); err != nil {
		return nil, err
	}
	n := v.N()
	k := d.k()
	if k > n-1 {
		k = n - 1
	}
	scores := make([]float64, n)
	if k < 1 {
		return scores, nil
	}
	_, dist, m, ok, err := d.Neighbors.AllKNN(ctx, v, k, 1)
	if err != nil {
		return nil, err
	}
	if !ok {
		ix := neighbors.NewIndex(v.Points())
		idx2, dist2, err := neighbors.AllKNNParallel(ctx, ix, k, 1)
		if err != nil {
			return nil, err
		}
		_, dist, m = neighbors.FlattenKNN(idx2, dist2)
	}
	for i := range scores {
		var sum float64
		for _, dd := range dist[i*m : (i+1)*m] {
			sum += dd
		}
		scores[i] = sum / float64(m)
	}
	return scores, nil
}

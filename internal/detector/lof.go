package detector

import (
	"context"

	"anex/internal/dataset"
	"anex/internal/neighbors"
)

// DefaultLOFK is the neighbourhood size used throughout the paper's
// experiments (Section 3.1).
const DefaultLOFK = 15

// LOF is the Local Outlier Factor detector of Breunig et al. (SIGMOD 2000).
// It compares each point's local reachability density with that of its
// k nearest neighbours; inliers score ≈ 1 and outliers substantially more.
type LOF struct {
	// K is the neighbourhood size; zero means DefaultLOFK.
	K int
	// Workers bounds the goroutines of the per-point kNN phase; values ≤ 1
	// (including the zero value) keep scoring serial. Results are identical
	// at any worker count.
	Workers int
	// Neighbors, when non-nil, answers the kNN phase through the shared
	// neighbourhood plane: one computation at the plane's kmax per
	// (dataset, subspace), prefix-sliced to this detector's k and shared
	// with every other detector on the same plane. Results are
	// bit-identical either way; nil always uses the private per-view index.
	Neighbors *neighbors.Plane
}

// NewLOF returns a LOF detector with neighbourhood size k (0 → default 15)
// wired to the process-wide shared neighbourhood plane.
func NewLOF(k int) *LOF {
	l := &LOF{K: k, Neighbors: neighbors.Shared()}
	l.Neighbors.RegisterK(l.k())
	return l
}

// SetNeighbors injects the neighbourhood plane (nil disables sharing) and
// registers this detector's k with it — the hook GridSpec.Plane uses to
// wire one plane across all cells.
func (l *LOF) SetNeighbors(p *neighbors.Plane) {
	l.Neighbors = p
	p.RegisterK(l.k())
}

func (l *LOF) Name() string { return "LOF" }

func (l *LOF) k() int {
	if l.K <= 0 {
		return DefaultLOFK
	}
	return l.K
}

// Scores computes the LOF score of every point in the view. With n points
// the complexity is O(n²) for the neighbourhood computation (O(n log n)
// expected with the KD-tree on low-dimensional views) plus O(n·k) for the
// density aggregation. K values ≥ n are clamped to n−1 (every other point
// is a neighbour), so degenerate parameterisations degrade instead of
// indexing out of bounds.
func (l *LOF) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("LOF", v); err != nil {
		return nil, err
	}
	n := v.N()
	k := l.k()
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		// A single point has no neighbours; call it a perfect inlier.
		return []float64{1}, nil
	}
	nnIdx, nnDist, m, stride, err := neighbors.AllKNNOrIndex(ctx, l.Neighbors, v, k, l.Workers)
	if err != nil {
		return nil, err
	}

	// k-distance of each point = distance to its k-th nearest neighbour.
	// The plane's rows may be wider than m (they hold kmax neighbours);
	// this detector reads the first m slots of each stride-spaced row.
	kdist := make([]float64, n)
	for i := range kdist {
		kdist[i] = nnDist[i*stride+m-1]
	}

	// Local reachability density:
	// lrd(p) = 1 / mean_{o ∈ kNN(p)} max(kdist(o), d(p, o)).
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		row := i * stride
		for j, o := range nnIdx[row : row+m] {
			reach := nnDist[row+j]
			if kdist[o] > reach {
				reach = kdist[o]
			}
			sum += reach
		}
		mean := sum / float64(m)
		if mean == 0 {
			// Duplicate points: infinite density, representable as a
			// large finite value to keep downstream arithmetic clean.
			lrd[i] = maxDensity
		} else {
			lrd[i] = 1 / mean
		}
	}

	// LOF(p) = mean_{o ∈ kNN(p)} lrd(o) / lrd(p).
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for _, o := range nnIdx[i*stride : i*stride+m] {
			sum += lrd[o]
		}
		scores[i] = sum / (float64(m) * lrd[i])
	}
	return scores, nil
}

// maxDensity caps the local reachability density of duplicated points.
const maxDensity = 1e12

package detector

import (
	"context"

	"anex/internal/dataset"
	"anex/internal/neighbors"
)

// DefaultLOFK is the neighbourhood size used throughout the paper's
// experiments (Section 3.1).
const DefaultLOFK = 15

// LOF is the Local Outlier Factor detector of Breunig et al. (SIGMOD 2000).
// It compares each point's local reachability density with that of its
// k nearest neighbours; inliers score ≈ 1 and outliers substantially more.
type LOF struct {
	// K is the neighbourhood size; zero means DefaultLOFK.
	K int
	// Workers bounds the goroutines of the per-point kNN phase; values ≤ 1
	// (including the zero value) keep scoring serial. Results are identical
	// at any worker count.
	Workers int
	// Neighbors, when non-nil, answers the kNN phase through the delta
	// engine on views it accepts (low-dimensional subspace views), reusing
	// parent-subspace partials across search stages. Results are
	// bit-identical either way; nil always uses the per-view index.
	Neighbors *neighbors.DeltaEngine
}

// NewLOF returns a LOF detector with neighbourhood size k (0 → default 15)
// and delta-distance subspace scoring enabled.
func NewLOF(k int) *LOF {
	return &LOF{K: k, Neighbors: neighbors.NewDeltaEngine(0)}
}

func (l *LOF) Name() string { return "LOF" }

func (l *LOF) k() int {
	if l.K <= 0 {
		return DefaultLOFK
	}
	return l.K
}

// Scores computes the LOF score of every point in the view. With n points
// the complexity is O(n²) for the neighbourhood computation (O(n log n)
// expected with the KD-tree on low-dimensional views) plus O(n·k) for the
// density aggregation. K values ≥ n are clamped to n−1 (every other point
// is a neighbour), so degenerate parameterisations degrade instead of
// indexing out of bounds.
func (l *LOF) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("LOF", v); err != nil {
		return nil, err
	}
	n := v.N()
	k := l.k()
	if k > n-1 {
		k = n - 1
	}
	if k < 1 {
		// A single point has no neighbours; call it a perfect inlier.
		return []float64{1}, nil
	}
	nnIdx, nnDist, m, ok, err := l.Neighbors.AllKNN(ctx, v, k, l.Workers)
	if err != nil {
		return nil, err
	}
	if !ok {
		ix := neighbors.NewIndex(v.Points())
		idx2, dist2, err := neighbors.AllKNNParallel(ctx, ix, k, l.Workers)
		if err != nil {
			return nil, err
		}
		nnIdx, nnDist, m = neighbors.FlattenKNN(idx2, dist2)
	}

	// k-distance of each point = distance to its k-th nearest neighbour.
	kdist := make([]float64, n)
	for i := range kdist {
		kdist[i] = nnDist[i*m+m-1]
	}

	// Local reachability density:
	// lrd(p) = 1 / mean_{o ∈ kNN(p)} max(kdist(o), d(p, o)).
	lrd := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j, o := range nnIdx[i*m : (i+1)*m] {
			reach := nnDist[i*m+j]
			if kdist[o] > reach {
				reach = kdist[o]
			}
			sum += reach
		}
		mean := sum / float64(m)
		if mean == 0 {
			// Duplicate points: infinite density, representable as a
			// large finite value to keep downstream arithmetic clean.
			lrd[i] = maxDensity
		} else {
			lrd[i] = 1 / mean
		}
	}

	// LOF(p) = mean_{o ∈ kNN(p)} lrd(o) / lrd(p).
	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for _, o := range nnIdx[i*m : (i+1)*m] {
			sum += lrd[o]
		}
		scores[i] = sum / (float64(m) * lrd[i])
	}
	return scores, nil
}

// maxDensity caps the local reachability density of duplicated points.
const maxDensity = 1e12

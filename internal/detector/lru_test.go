package detector

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

// countingDetector records how many times the inner computation ran per
// subspace key — the probe for eviction/refetch and singleflight behaviour.
type countingDetector struct {
	mu     sync.Mutex
	counts map[string]int
}

func newCountingDetector() *countingDetector {
	return &countingDetector{counts: make(map[string]int)}
}

func (d *countingDetector) Name() string { return "counting" }

func (d *countingDetector) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	d.mu.Lock()
	d.counts[v.Subspace().Key()]++
	d.mu.Unlock()
	scores := make([]float64, v.N())
	for i := range scores {
		scores[i] = float64(i)
	}
	return scores, nil
}

func (d *countingDetector) count(key string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counts[key]
}

func (d *countingDetector) total() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.counts {
		n += c
	}
	return n
}

// lruTestbed builds a small multi-feature dataset plus a budget that fits
// exactly `fit` memo entries for that dataset's single-feature views.
func lruTestbed(t *testing.T, fit int) (*dataset.Dataset, int64) {
	t.Helper()
	cols := make([][]float64, 8)
	for f := range cols {
		cols[f] = make([]float64, 50)
		for i := range cols[f] {
			cols[f][i] = float64(f*100 + i)
		}
	}
	ds, err := dataset.New("lru-test", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	one := entryBytes(ds.Name()+"|"+subspace.New(0).Key(), make([]float64, ds.N()))
	return ds, int64(fit) * one
}

func mustScore(t *testing.T, c *Cached, ds *dataset.Dataset, features ...int) {
	t.Helper()
	if _, err := c.Scores(context.Background(), ds.View(subspace.New(features...))); err != nil {
		t.Fatal(err)
	}
}

// TestCachedLRUEviction fills a two-entry budget with three keys and checks
// the cold end is evicted, the budget holds, and an evicted key recomputes
// on refetch.
func TestCachedLRUEviction(t *testing.T) {
	ds, budget := lruTestbed(t, 2)
	inner := newCountingDetector()
	c := NewCachedBudget(inner, budget)

	mustScore(t, c, ds, 0)
	mustScore(t, c, ds, 1)
	mustScore(t, c, ds, 2) // evicts "0", the coldest

	st := c.CacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 inserts: entries=%d evictions=%d, want 2/1", st.Entries, st.Evictions)
	}
	if st.ResidentBytes > st.MaxBytes {
		t.Fatalf("resident %d exceeds budget %d", st.ResidentBytes, st.MaxBytes)
	}

	// "1" and "2" are resident: refetching them is pure hit.
	mustScore(t, c, ds, 1)
	mustScore(t, c, ds, 2)
	if got := inner.total(); got != 3 {
		t.Fatalf("resident refetches recomputed: %d inner calls, want 3", got)
	}
	// "0" was evicted: refetching recomputes exactly once and evicts again.
	mustScore(t, c, ds, 0)
	if got := inner.count("0"); got != 2 {
		t.Fatalf("evicted key recomputed %d times, want 2", got)
	}
	st = c.CacheStats()
	if st.Entries != 2 || st.Evictions != 2 || st.ResidentBytes > st.MaxBytes {
		t.Fatalf("after refetch: %+v", st)
	}
}

// TestCachedLRURecency asserts a cache hit refreshes an entry's position:
// touching the oldest key before an insert redirects eviction to the
// second-oldest.
func TestCachedLRURecency(t *testing.T) {
	ds, budget := lruTestbed(t, 2)
	inner := newCountingDetector()
	c := NewCachedBudget(inner, budget)

	mustScore(t, c, ds, 0)
	mustScore(t, c, ds, 1)
	mustScore(t, c, ds, 0) // hit: "0" becomes most recent
	mustScore(t, c, ds, 2) // evicts "1", not "0"

	mustScore(t, c, ds, 0)
	if got := inner.count("0"); got != 1 {
		t.Fatalf("recently-touched key was evicted: %d inner calls for key 0, want 1", got)
	}
	mustScore(t, c, ds, 1)
	if got := inner.count("1"); got != 2 {
		t.Fatalf("cold key survived eviction: %d inner calls for key 1, want 2", got)
	}
}

// TestCachedOverBudgetEntry inserts a score vector bigger than the whole
// budget: the caller still gets its scores, but nothing stays resident.
func TestCachedOverBudgetEntry(t *testing.T) {
	ds, _ := lruTestbed(t, 2)
	inner := newCountingDetector()
	c := NewCachedBudget(inner, 8) // smaller than any entry

	v := ds.View(subspace.New(0))
	scores, err := c.Scores(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != ds.N() {
		t.Fatalf("got %d scores, want %d", len(scores), ds.N())
	}
	st := c.CacheStats()
	if st.Entries != 0 || st.ResidentBytes != 0 || st.Evictions != 1 {
		t.Fatalf("over-budget entry stayed resident: %+v", st)
	}
}

// TestCachedEvictionSingleflightConcurrent is the eviction × concurrency
// contract: a key evicted under byte pressure and then refetched by many
// goroutines at once is rescored exactly once (singleflight preserved),
// and the stats stay consistent — every call is either a hit or an inner
// computation. Runs under check.sh's -race gate.
func TestCachedEvictionSingleflightConcurrent(t *testing.T) {
	ds, budget := lruTestbed(t, 1) // single-entry budget: every new key evicts
	inner := newCountingDetector()
	c := NewCachedBudget(inner, budget)

	const rounds, goroutines = 5, 16
	for round := 0; round < rounds; round++ {
		for _, f := range []int{0, 1} { // alternate keys so each refetch follows an eviction
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					scores, err := c.Scores(context.Background(), ds.View(subspace.New(f)))
					if err == nil && len(scores) != ds.N() {
						err = fmt.Errorf("got %d scores, want %d", len(scores), ds.N())
					}
					errs[g] = err
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("round %d key %d goroutine %d: %v", round, f, g, err)
				}
			}
			// Each (round, key) burst follows an eviction of that key, so it
			// must trigger exactly one fresh inner computation.
			want := round + 1
			if got := inner.count(subspace.New(f).Key()); got != want {
				t.Fatalf("round %d key %d: %d inner computations, want %d (singleflight broken)", round, f, got, want)
			}
		}
	}

	st := c.CacheStats()
	if st.Calls != rounds*2*goroutines {
		t.Fatalf("calls=%d, want %d", st.Calls, rounds*2*goroutines)
	}
	if st.Calls != st.Hits+inner.total() {
		t.Fatalf("stats inconsistent: calls=%d hits=%d inner=%d", st.Calls, st.Hits, inner.total())
	}
	if st.Entries != 1 || st.ResidentBytes > st.MaxBytes {
		t.Fatalf("budget violated: %+v", st)
	}
	if st.Evictions != rounds*2-1 {
		t.Fatalf("evictions=%d, want %d", st.Evictions, rounds*2-1)
	}
}

// TestCachedBudgetDefault checks NewCachedBudget's zero/negative budget
// falls back to the generous default rather than an empty cache.
func TestCachedBudgetDefault(t *testing.T) {
	for _, b := range []int64{0, -1} {
		c := NewCachedBudget(newCountingDetector(), b)
		if got := c.CacheStats().MaxBytes; got != DefaultCacheBytes {
			t.Fatalf("budget %d: MaxBytes=%d, want default %d", b, got, DefaultCacheBytes)
		}
	}
}

package detector

import (
	"context"
	"math"
	"math/rand"

	"anex/internal/dataset"
	"anex/internal/parallel"
)

// Isolation Forest hyper-parameters used throughout the paper's experiments
// (Section 3.1).
const (
	DefaultIForestTrees       = 100
	DefaultIForestSubsample   = 256
	DefaultIForestRepetitions = 10
)

// IsolationForest is the isolation-based detector of Liu et al. (ICDM 2008).
// A forest of random trees partitions subsamples of the data by uniformly
// chosen features and split values; points isolated by short paths score
// close to 1 and inliers close to 0 via s(x) = 2^(−E(h(x))/c(ψ)).
//
// The paper runs iForest for 10 repetitions per subspace and averages the
// scores to reduce variance; Repetitions reproduces that protocol.
type IsolationForest struct {
	// Trees is the number of trees per forest; zero means 100.
	Trees int
	// Subsample is the per-tree sample size ψ; zero means 256.
	Subsample int
	// Repetitions is the number of independent forests whose scores are
	// averaged; zero means 10. Set to 1 for a single forest.
	Repetitions int
	// Seed makes scoring deterministic. Each (subspace, repetition) pair
	// derives its own stream from it, so scores are reproducible
	// regardless of evaluation order.
	Seed int64
	// Workers bounds the goroutines of the per-point path-length scoring
	// loop (the tree traversals that dominate forest cost); values ≤ 1
	// (including the zero value) keep scoring serial. Forest construction
	// stays sequential so the RNG stream — and therefore every score — is
	// bit-identical at any worker count.
	Workers int
}

// NewIsolationForest returns an Isolation Forest with the paper's settings
// (100 trees, subsample 256, 10 repetitions) and the given seed.
func NewIsolationForest(seed int64) *IsolationForest {
	return &IsolationForest{Seed: seed}
}

func (f *IsolationForest) Name() string { return "iForest" }

func (f *IsolationForest) trees() int {
	if f.Trees <= 0 {
		return DefaultIForestTrees
	}
	return f.Trees
}

func (f *IsolationForest) subsample() int {
	if f.Subsample <= 0 {
		return DefaultIForestSubsample
	}
	return f.Subsample
}

func (f *IsolationForest) repetitions() int {
	if f.Repetitions <= 0 {
		return DefaultIForestRepetitions
	}
	return f.Repetitions
}

// Scores computes the averaged isolation score of every point of the view,
// observing ctx between repetitions and between scored points.
func (f *IsolationForest) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("iForest", v); err != nil {
		return nil, err
	}
	n := v.N()
	psi := f.subsample()
	if psi > n {
		psi = n
	}
	reps := f.repetitions()
	scores := make([]float64, n)
	// Derive a per-view stream so scores do not depend on the order in
	// which subspaces are evaluated.
	base := f.Seed ^ hashString(v.Dataset().Name()+"|"+v.Subspace().Key())
	// One builder's worth of flat buffers serves every repetition: the node
	// arena, the sample permutation, and the partition spill are all sized
	// once, so a whole forest build performs no per-node allocations.
	b := newForestBuilder(v, f.trees(), psi)
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(base + int64(r)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
		forest := b.buildForest(rng)
		c := averagePathLength(float64(psi))
		// Each point's traversal of the (now immutable) forest is
		// independent and accumulates into its own slot, in the same
		// repetition order as the serial loop — bit-identical output.
		err := parallel.ForEach(ctx, f.Workers, n, func(i int) {
			var sum float64
			for _, t := range forest {
				sum += t.pathLength(v.Point(i))
			}
			e := sum / float64(len(forest))
			scores[i] += math.Pow(2, -e/c)
		})
		if err != nil {
			return nil, err
		}
	}
	for i := range scores {
		scores[i] /= float64(reps)
	}
	return scores, nil
}

// hashString is FNV-1a folded to int64, used to derive per-subspace seeds.
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h)
}

// iTree is one isolation tree stored as a flat node array.
type iTree struct {
	nodes []iNode
}

type iNode struct {
	// Interior: feature ≥ 0, split value, children indexes.
	// Leaf: feature == -1, size = number of training points in the leaf.
	feature     int
	split       float64
	left, right int
	size        int
}

// forestBuilder owns the flat buffers a forest build works in: one node
// arena shared by every tree, the Fisher–Yates permutation array, the
// per-tree working index set, and the partition spill. All of them are sized
// once at construction — trees with ≤ ψ training points never exceed 2ψ−1
// nodes, so the arena cap is exact — which makes a whole forest build (and
// every later repetition reusing the builder) free of per-node allocations.
//
// The builder replays exactly the allocation-heavy recursion it replaced:
// the RNG is consulted at the same call sites in the same order, the
// partition is stable on both sides, and leaf conditions are unchanged, so
// the produced forests — and therefore the scores — are bit-identical.
type forestBuilder struct {
	v           *dataset.View
	trees       int
	psi         int
	heightLimit int
	// arena backs every tree's nodes; tree t's slice is a sub-slice with
	// node ids local to its own base, so pathLength still walks from 0.
	arena  []iNode
	forest []iTree
	// sample is the 0..n−1 permutation array the partial Fisher–Yates
	// shuffles across trees. It is reset to the identity per repetition
	// (the recursion allocated it fresh per forest) and is never handed to
	// the partition — trees split a copy in work, because an in-place
	// partition of sample would corrupt the next tree's shuffle.
	sample []int
	work   []int
	spill  []int
}

func newForestBuilder(v *dataset.View, trees, psi int) *forestBuilder {
	heightLimit := int(math.Ceil(math.Log2(float64(psi))))
	if heightLimit < 1 {
		heightLimit = 1
	}
	return &forestBuilder{
		v:           v,
		trees:       trees,
		psi:         psi,
		heightLimit: heightLimit,
		arena:       make([]iNode, 0, trees*(2*psi-1)),
		forest:      make([]iTree, trees),
		sample:      make([]int, v.N()),
		work:        make([]int, psi),
		spill:       make([]int, 0, psi),
	}
}

// buildForest grows one forest into the (recycled) arena and returns its
// trees. The slice and its nodes are owned by the builder and valid until
// the next buildForest call.
func (b *forestBuilder) buildForest(rng *rand.Rand) []iTree {
	n := len(b.sample)
	b.arena = b.arena[:0]
	for i := range b.sample {
		b.sample[i] = i
	}
	for t := range b.forest {
		// Uniform subsample without replacement (partial Fisher–Yates).
		for i := 0; i < b.psi; i++ {
			j := i + rng.Intn(n-i)
			b.sample[i], b.sample[j] = b.sample[j], b.sample[i]
		}
		copy(b.work, b.sample[:b.psi])
		base := len(b.arena)
		b.node(b.work, 0, base, rng)
		b.forest[t].nodes = b.arena[base:len(b.arena):len(b.arena)]
	}
	return b.forest
}

// node appends the subtree over idx to the arena and returns its node index
// relative to base (the owning tree's first arena slot). idx is partitioned
// in place; recursion happens only after the spill buffer has been copied
// back, so one shared spill serves the whole build.
func (b *forestBuilder) node(idx []int, depth, base int, rng *rand.Rand) int {
	v := b.v
	nodeID := len(b.arena) - base
	b.arena = append(b.arena, iNode{})
	if depth >= b.heightLimit || len(idx) <= 1 || allIdentical(v, idx) {
		b.arena[base+nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	dim := v.Dim()
	// Pick a feature with a non-degenerate range; give up after a few
	// attempts (points can coincide on random features).
	var feature int
	var lo, hi float64
	found := false
	for attempt := 0; attempt < 8 && !found; attempt++ {
		feature = rng.Intn(dim)
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			val := v.Point(i)[feature]
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
		}
		found = hi > lo
	}
	if !found {
		b.arena[base+nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	split := lo + rng.Float64()*(hi-lo)
	// Stable in-place partition: the left side compacts forward, the right
	// side detours through spill and is copied back behind it, preserving
	// the relative order the append-based recursion produced on both sides.
	spill := b.spill[:0]
	w := 0
	for _, i := range idx {
		if v.Point(i)[feature] < split {
			idx[w] = i
			w++
		} else {
			spill = append(spill, i)
		}
	}
	copy(idx[w:], spill)
	b.spill = spill
	if w == 0 || w == len(idx) {
		b.arena[base+nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	l := b.node(idx[:w], depth+1, base, rng)
	r := b.node(idx[w:], depth+1, base, rng)
	b.arena[base+nodeID] = iNode{feature: feature, split: split, left: l, right: r}
	return nodeID
}

func allIdentical(v *dataset.View, idx []int) bool {
	if len(idx) < 2 {
		return true
	}
	first := v.Point(idx[0])
	for _, i := range idx[1:] {
		p := v.Point(i)
		for d := range p {
			if p[d] != first[d] {
				return false
			}
		}
	}
	return true
}

// pathLength returns h(x): the depth at which x lands in a leaf plus the
// c(size) adjustment for unbuilt subtrees.
func (t *iTree) pathLength(x []float64) float64 {
	nodeID := 0
	depth := 0
	for {
		node := t.nodes[nodeID]
		if node.feature == -1 {
			return float64(depth) + averagePathLength(float64(node.size))
		}
		if x[node.feature] < node.split {
			nodeID = node.left
		} else {
			nodeID = node.right
		}
		depth++
	}
}

// averagePathLength is c(n), the average path length of an unsuccessful BST
// search over n points: 2·H(n−1) − 2(n−1)/n with H the harmonic number.
func averagePathLength(n float64) float64 {
	if n <= 1 {
		return 0
	}
	if n == 2 {
		return 1
	}
	h := math.Log(n-1) + 0.5772156649015329
	return 2*h - 2*(n-1)/n
}

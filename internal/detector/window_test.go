package detector

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"anex/internal/dataset"
	"anex/internal/neighbors"
)

// windowScorerCase drives one detector pair — the WindowScorer and a plain
// Scores sibling — over a sliding stream backed by a real WindowEngine, and
// requires the incremental scores to equal the full recompute bit for bit
// at every evaluation, while actually reusing memoised values.
func windowScorerCase(t *testing.T, name string, ws WindowScorer, full interface {
	Scores(context.Context, *dataset.View) ([]float64, error)
}, shape string) {
	t.Helper()
	t.Run(name+"/"+shape, func(t *testing.T) {
		// Small stride relative to W: LOF's 2-hop dirty ball covers
		// ~(1+k+k²) slots per dirty arrival, and the reuse assertion below
		// needs some points to stay outside every ball.
		const (
			W      = 60
			stride = 2
			d      = 5
			total  = 6 * W
		)
		rng := rand.New(rand.NewSource(11))
		gen := func() []float64 {
			p := make([]float64, d)
			switch shape {
			case "random":
				for j := range p {
					p[j] = rng.NormFloat64()
				}
			case "duplicates":
				if rng.Intn(2) == 0 {
					v := float64(rng.Intn(3))
					for j := range p {
						p[j] = v
					}
				} else {
					for j := range p {
						p[j] = rng.NormFloat64()
					}
				}
			}
			return p
		}
		eng := neighbors.NewWindowEngine(ws.WindowK(), 4, 2)
		window := make([][]float64, 0, W)
		next := 0
		var batch []neighbors.WindowArrival
		memo := &WindowMemo{}
		evals, reuses := 0, 0
		for i := 0; i < total; i++ {
			p := gen()
			slot := len(window)
			if slot < W {
				window = append(window, p)
			} else {
				slot = next
				window[next] = p
				next = (next + 1) % W
			}
			replaced := false
			for bi := range batch {
				if batch[bi].Slot == slot {
					batch[bi].Point = p
					replaced = true
					break
				}
			}
			if !replaced {
				batch = append(batch, neighbors.WindowArrival{Slot: slot, Point: p})
			}
			if len(window) < 4 || (i+1)%stride != 0 {
				continue
			}
			if err := eng.Apply(context.Background(), batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
			idx, dist, m, str := eng.Neighborhood()
			dirty := eng.TakeDirty()
			got, rescored := ws.ScoresWindow(window, idx, dist, m, str, dirty, memo)
			ds, err := dataset.FromRows("win-cmp", window, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := full.Scores(context.Background(), ds.FullView())
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("eval %d: %d scores, want %d", evals, len(got), len(want))
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("eval %d: score[%d] = %v (%x), want %v (%x); rescored %d/%d",
						evals, j, got[j], math.Float64bits(got[j]), want[j], math.Float64bits(want[j]), rescored, len(window))
				}
			}
			if rescored < len(window) {
				reuses++
			}
			evals++
		}
		if evals < 10 {
			t.Fatalf("only %d evaluations", evals)
		}
		if reuses == 0 {
			t.Error("incremental path never reused a memoised score")
		}
	})
}

// TestScoresWindowBitIdentical pins every WindowScorer's incremental output
// to the full Scores recompute, bitwise, over random and duplicate-heavy
// streams (duplicates exercise LOF's maxDensity clamp and FastABOD's -Inf
// sentinel path — the global substitution must stay global).
func TestScoresWindowBitIdentical(t *testing.T) {
	for _, shape := range []string{"random", "duplicates"} {
		windowScorerCase(t, "LOF", &LOF{K: 5}, &LOF{K: 5}, shape)
		windowScorerCase(t, "KNNDist", &KNNDist{K: 5}, &KNNDist{K: 5}, shape)
		windowScorerCase(t, "FastABOD", &FastABOD{K: 5}, &FastABOD{K: 5}, shape)
	}
}

// TestScoresWindowMemoInvalidation pins the degrade path: a memo sized for
// a different window triggers a full rescore instead of an index fault.
func TestScoresWindowMemoInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, 3)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			pts[i] = p
		}
		return pts
	}
	score := func(pts [][]float64, memo *WindowMemo) ([]float64, int) {
		l := &LOF{K: 4}
		idx, dist, m, err := neighbors.AllKNNFlat(context.Background(), neighbors.NewIndex(pts), l.WindowK(), 1)
		if err != nil {
			t.Fatal(err)
		}
		dirty := make([]bool, len(pts)) // all clean: only memo validity forces work
		return l.ScoresWindow(pts, idx, dist, m, m, dirty, memo)
	}
	memo := &WindowMemo{}
	a := mk(20)
	got, rescored := score(a, memo)
	if rescored != 20 {
		t.Fatalf("first call rescored %d, want all 20", rescored)
	}
	got2, rescored2 := score(a, memo)
	if rescored2 != 0 {
		t.Fatalf("clean repeat rescored %d, want 0", rescored2)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(got2[i]) {
			t.Fatalf("clean repeat changed score %d", i)
		}
	}
	b := mk(31)
	if _, rescored = score(b, memo); rescored != 31 {
		t.Fatalf("resized window rescored %d, want all 31", rescored)
	}
}

package detector

// The arena-based forest builder replaced a per-node-allocating recursion
// under a bit-identicality contract: same RNG draw sites, same stable
// partition, same leaf conditions, same scores. This file keeps the
// replaced recursion verbatim as an executable reference and pins the
// contract across subsample clamping, small ψ, 1d views, and multiple
// repetitions (the RNG stream spans repetitions, so any drift compounds).

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"anex/internal/dataset"
)

func oldBuildForest(v *dataset.View, trees, psi int, rng *rand.Rand) []*iTree {
	n := v.N()
	heightLimit := int(math.Ceil(math.Log2(float64(psi))))
	if heightLimit < 1 {
		heightLimit = 1
	}
	forest := make([]*iTree, trees)
	sample := make([]int, n)
	for i := range sample {
		sample[i] = i
	}
	for t := range forest {
		for i := 0; i < psi; i++ {
			j := i + rng.Intn(n-i)
			sample[i], sample[j] = sample[j], sample[i]
		}
		tree := &iTree{}
		oldBuild(tree, v, append([]int(nil), sample[:psi]...), 0, heightLimit, rng)
		forest[t] = tree
	}
	return forest
}

func oldBuild(t *iTree, v *dataset.View, idx []int, depth, limit int, rng *rand.Rand) int {
	nodeID := len(t.nodes)
	t.nodes = append(t.nodes, iNode{})
	if depth >= limit || len(idx) <= 1 || allIdentical(v, idx) {
		t.nodes[nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	dim := v.Dim()
	var feature int
	var lo, hi float64
	found := false
	for attempt := 0; attempt < 8 && !found; attempt++ {
		feature = rng.Intn(dim)
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			val := v.Point(i)[feature]
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
		}
		found = hi > lo
	}
	if !found {
		t.nodes[nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	split := lo + rng.Float64()*(hi-lo)
	var left, right []int
	for _, i := range idx {
		if v.Point(i)[feature] < split {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		t.nodes[nodeID] = iNode{feature: -1, size: len(idx)}
		return nodeID
	}
	l := oldBuild(t, v, left, depth+1, limit, rng)
	r := oldBuild(t, v, right, depth+1, limit, rng)
	t.nodes[nodeID] = iNode{feature: feature, split: split, left: l, right: r}
	return nodeID
}

func oldScores(f *IsolationForest, v *dataset.View) []float64 {
	n := v.N()
	psi := f.subsample()
	if psi > n {
		psi = n
	}
	reps := f.repetitions()
	scores := make([]float64, n)
	base := f.Seed ^ hashString(v.Dataset().Name()+"|"+v.Subspace().Key())
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(base + int64(r)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
		forest := oldBuildForest(v, f.trees(), psi, rng)
		c := averagePathLength(float64(psi))
		for i := 0; i < n; i++ {
			var sum float64
			for _, t := range forest {
				sum += t.pathLength(v.Point(i))
			}
			e := sum / float64(len(forest))
			scores[i] += math.Pow(2, -e/c)
		}
	}
	for i := range scores {
		scores[i] /= float64(reps)
	}
	return scores
}

func TestArenaForestMatchesRecursiveReference(t *testing.T) {
	mk := func(n, d int, seed int64) *dataset.View {
		rng := rand.New(rand.NewSource(seed))
		cols := make([][]float64, d)
		for f := range cols {
			cols[f] = make([]float64, n)
			for i := range cols[f] {
				cols[f][i] = rng.NormFloat64()
			}
		}
		ds, err := dataset.New("probe", cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ds.FullView()
	}
	cases := []struct {
		n, d  int
		trees int
		psi   int
		reps  int
	}{
		{1000, 3, 100, 256, 1},
		{1000, 3, 100, 256, 3},
		{300, 5, 50, 256, 2},  // psi clamped to n
		{100, 2, 30, 16, 2},   // small psi
		{64, 1, 20, 64, 1},    // psi == n, 1d
	}
	for _, tc := range cases {
		v := mk(tc.n, tc.d, 7)
		f := &IsolationForest{Trees: tc.trees, Subsample: tc.psi, Repetitions: tc.reps, Seed: 42, Workers: 4}
		got, err := f.Scores(context.Background(), v)
		if err != nil {
			t.Fatal(err)
		}
		want := oldScores(f, v)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %+v: score[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

package detector

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/subspace"
)

// mustScores runs the detector and fails the test on error — the common
// case for tests exercising well-formed inputs.
func mustScores(t *testing.T, d core.Detector, v *dataset.View) []float64 {
	t.Helper()
	scores, err := d.Scores(context.Background(), v)
	if err != nil {
		t.Fatalf("%s.Scores: %v", d.Name(), err)
	}
	return scores
}

// clusterWithOutlier builds a 2d dataset: a dense Gaussian cluster of n−1
// points around the origin plus one point far away at (off, off). The
// outlier has index n−1.
func clusterWithOutlier(t *testing.T, n int, off float64, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n-1; i++ {
		cols[0][i] = rng.NormFloat64() * 0.3
		cols[1][i] = rng.NormFloat64() * 0.3
	}
	cols[0][n-1] = off
	cols[1][n-1] = off
	ds, err := dataset.New("cluster", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// twoClustersWithBridge builds the LOF motivating scenario: a dense cluster,
// a sparse cluster, and one point near (but not inside) the dense cluster.
// Global distance methods miss it; LOF must not.
func twoDensityClusters(t *testing.T, seed int64) (*dataset.Dataset, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var xs, ys []float64
	// Dense cluster at (0,0), σ = 0.05.
	for i := 0; i < 60; i++ {
		xs = append(xs, rng.NormFloat64()*0.05)
		ys = append(ys, rng.NormFloat64()*0.05)
	}
	// Sparse cluster at (5,5), σ = 1.
	for i := 0; i < 60; i++ {
		xs = append(xs, 5+rng.NormFloat64())
		ys = append(ys, 5+rng.NormFloat64())
	}
	// Local outlier just outside the dense cluster.
	outlier := len(xs)
	xs = append(xs, 0.6)
	ys = append(ys, 0.6)
	ds, err := dataset.New("density", [][]float64{xs, ys}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds, outlier
}

func argMax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func TestLOFScoresInliersNearOne(t *testing.T) {
	ds := clusterWithOutlier(t, 200, 50, 1)
	scores := mustScores(t, NewLOF(15), ds.FullView())
	outlier := ds.N() - 1
	if got := argMax(scores); got != outlier {
		t.Fatalf("LOF top point = %d, want %d", got, outlier)
	}
	if scores[outlier] < 5 {
		t.Errorf("outlier LOF = %v, want ≫ 1", scores[outlier])
	}
	// Inliers hover around 1.
	var sum float64
	for i := 0; i < outlier; i++ {
		sum += scores[i]
	}
	mean := sum / float64(outlier)
	if mean < 0.8 || mean > 1.3 {
		t.Errorf("mean inlier LOF = %v, want ≈ 1", mean)
	}
}

func TestLOFFindsLocalOutlier(t *testing.T) {
	ds, outlier := twoDensityClusters(t, 2)
	scores := mustScores(t, NewLOF(15), ds.FullView())
	if got := argMax(scores); got != outlier {
		t.Fatalf("LOF missed the local density outlier: top = %d, want %d", got, outlier)
	}
}

func TestLOFDefaultsAndTinyData(t *testing.T) {
	l := NewLOF(0)
	if l.k() != DefaultLOFK {
		t.Errorf("default k = %d", l.k())
	}
	ds, err := dataset.New("one", [][]float64{{1}, {2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustScores(t, l, ds.FullView()); len(got) != 1 || got[0] != 1 {
		t.Errorf("single point scores = %v", got)
	}
}

func TestLOFDuplicatePoints(t *testing.T) {
	// Heavily duplicated data must not produce NaN/Inf scores.
	cols := [][]float64{{1, 1, 1, 1, 1, 9}, {1, 1, 1, 1, 1, 9}}
	ds, err := dataset.New("dup", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := mustScores(t, NewLOF(3), ds.FullView())
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
	if argMax(scores) != 5 {
		t.Errorf("outlier not top: %v", scores)
	}
}

func TestFastABODFindsBorderPoint(t *testing.T) {
	ds := clusterWithOutlier(t, 120, 10, 3)
	scores := mustScores(t, NewFastABOD(10), ds.FullView())
	outlier := ds.N() - 1
	if got := argMax(scores); got != outlier {
		t.Fatalf("FastABOD top point = %d, want %d", got, outlier)
	}
}

func TestFastABODOrientation(t *testing.T) {
	// Higher score must mean more outlying (the raw ABOF is negated).
	ds := clusterWithOutlier(t, 100, 20, 4)
	scores := mustScores(t, NewFastABOD(10), ds.FullView())
	outlier := ds.N() - 1
	inlierScore := scores[0]
	if scores[outlier] <= inlierScore {
		t.Errorf("outlier score %v not above inlier score %v", scores[outlier], inlierScore)
	}
}

func TestFastABODDegenerate(t *testing.T) {
	l := NewFastABOD(0)
	if l.k() != DefaultABODK {
		t.Errorf("default k = %d", l.k())
	}
	// Two points: no angle pairs, all scores zero.
	ds, err := dataset.New("two", [][]float64{{0, 1}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := mustScores(t, l, ds.FullView())
	if scores[0] != 0 || scores[1] != 0 {
		t.Errorf("degenerate scores = %v", scores)
	}
	// All duplicates: finite scores.
	dup, err := dataset.New("dup", [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mustScores(t, l, dup.FullView()) {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite score %v", s)
		}
	}
}

// TestKNNDetectorsClampOversizedK: every neighbourhood-based detector must
// clamp k ≥ n to n−1 rather than index out of bounds. An absurd k still
// produces a full, finite score vector. Only kNN-dist additionally keeps
// the planted outlier on top: with the complete neighbourhood the farthest
// point stays farthest, while LOF's and FastABOD's local statistics
// legitimately flatten when every point shares the same neighbour set.
func TestKNNDetectorsClampOversizedK(t *testing.T) {
	ds := clusterWithOutlier(t, 10, 8, 21)
	for _, d := range []core.Detector{NewLOF(999), NewFastABOD(999), NewKNNDist(999)} {
		scores := mustScores(t, d, ds.FullView())
		if len(scores) != ds.N() {
			t.Fatalf("%s with k=999: %d scores for %d points", d.Name(), len(scores), ds.N())
		}
		top, topScore := 0, math.Inf(-1)
		for i, s := range scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("%s with k=999: non-finite score %v at %d", d.Name(), s, i)
			}
			if s > topScore {
				top, topScore = i, s
			}
		}
		if d.Name() == "kNN-dist" && top != ds.N()-1 {
			t.Errorf("%s with clamped k ranks point %d over the planted outlier", d.Name(), top)
		}
	}
}

func TestIsolationForestFindsOutlier(t *testing.T) {
	ds := clusterWithOutlier(t, 256, 30, 5)
	f := &IsolationForest{Trees: 50, Subsample: 64, Repetitions: 2, Seed: 7}
	scores := mustScores(t, f, ds.FullView())
	outlier := ds.N() - 1
	if got := argMax(scores); got != outlier {
		t.Fatalf("iForest top point = %d, want %d", got, outlier)
	}
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score[%d] = %v outside [0,1]", i, s)
		}
	}
	if scores[outlier] < 0.6 {
		t.Errorf("outlier score %v, want close to 1", scores[outlier])
	}
}

func TestIsolationForestDeterminism(t *testing.T) {
	ds := clusterWithOutlier(t, 100, 10, 6)
	f := &IsolationForest{Trees: 20, Subsample: 32, Repetitions: 2, Seed: 9}
	a := mustScores(t, f, ds.FullView())
	b := mustScores(t, f, ds.FullView())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic score at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different subspace gets a different stream but stays deterministic.
	v := ds.View(subspace.New(0))
	c := mustScores(t, f, v)
	d := mustScores(t, f, v)
	for i := range c {
		if c[i] != d[i] {
			t.Fatalf("nondeterministic subspace score at %d", i)
		}
	}
}

func TestIsolationForestRepetitionAveragingReducesVariance(t *testing.T) {
	ds := clusterWithOutlier(t, 200, 15, 8)
	single := &IsolationForest{Trees: 10, Subsample: 64, Repetitions: 1}
	averaged := &IsolationForest{Trees: 10, Subsample: 64, Repetitions: 10}
	// Variance of one point's score across different seeds.
	varOf := func(f *IsolationForest) float64 {
		var vals []float64
		for seed := int64(0); seed < 12; seed++ {
			f.Seed = seed
			vals = append(vals, mustScores(t, f, ds.FullView())[ds.N()-1])
		}
		var m, m2 float64
		for i, v := range vals {
			d := v - m
			m += d / float64(i+1)
			m2 += d * (v - m)
		}
		return m2 / float64(len(vals)-1)
	}
	vs, va := varOf(single), varOf(averaged)
	if va >= vs {
		t.Errorf("averaging did not reduce variance: single %v vs averaged %v", vs, va)
	}
}

func TestIsolationForestConstantData(t *testing.T) {
	cols := [][]float64{{3, 3, 3, 3, 3, 3, 3, 3}}
	ds, err := dataset.New("const", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := &IsolationForest{Trees: 10, Subsample: 8, Repetitions: 1}
	for _, s := range mustScores(t, f, ds.FullView()) {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite score %v on constant data", s)
		}
	}
}

func TestAveragePathLength(t *testing.T) {
	if c := averagePathLength(1); c != 0 {
		t.Errorf("c(1) = %v", c)
	}
	if c := averagePathLength(2); c != 1 {
		t.Errorf("c(2) = %v", c)
	}
	// c(256) ≈ 10.24 (reference value from the iForest paper's formula).
	if c := averagePathLength(256); math.Abs(c-10.244) > 0.02 {
		t.Errorf("c(256) = %v, want ≈ 10.24", c)
	}
	// Monotone in n.
	prev := 0.0
	for n := 2.0; n < 1000; n *= 2 {
		c := averagePathLength(n)
		if c <= prev {
			t.Errorf("c(%v) = %v not increasing", n, c)
		}
		prev = c
	}
}

func TestCachedDetector(t *testing.T) {
	ds := clusterWithOutlier(t, 50, 10, 11)
	c := NewCached(NewLOF(5))
	if c.Name() != "LOF" {
		t.Errorf("name = %q", c.Name())
	}
	v := ds.View(subspace.New(0, 1))
	a := mustScores(t, c, v)
	b := mustScores(t, c, ds.View(subspace.New(0, 1)))
	calls, hits := c.Stats()
	if calls != 2 || hits != 1 {
		t.Errorf("calls=%d hits=%d", calls, hits)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cached scores differ")
		}
	}
	// Different subspace → different cache entry.
	mustScores(t, c, ds.View(subspace.New(0)))
	calls, hits = c.Stats()
	if calls != 3 || hits != 1 {
		t.Errorf("after new subspace: calls=%d hits=%d", calls, hits)
	}
	c.Reset()
	if calls, hits = c.Stats(); calls != 0 || hits != 0 {
		t.Error("reset did not clear stats")
	}
}

func TestDetectorsImplementInterface(t *testing.T) {
	var _ core.Detector = NewLOF(15)
	var _ core.Detector = NewFastABOD(10)
	var _ core.Detector = NewIsolationForest(1)
	var _ core.Detector = NewCached(NewLOF(15))
	for _, d := range []core.Detector{NewLOF(0), NewFastABOD(0), NewIsolationForest(0)} {
		if d.Name() == "" {
			t.Error("empty detector name")
		}
	}
}

func TestPropertyScoresAreFinite(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(123))
	f := func(nRaw, dRaw uint8, seed int64) bool {
		n := int(nRaw%40) + 3
		d := int(dRaw%4) + 1
		cols := make([][]float64, d)
		for f := range cols {
			cols[f] = make([]float64, n)
			for i := range cols[f] {
				// Coarse values provoke duplicates.
				cols[f][i] = float64(rng.Intn(4))
			}
		}
		ds, err := dataset.New("prop", cols, nil)
		if err != nil {
			return false
		}
		dets := []core.Detector{
			NewLOF(5),
			NewFastABOD(5),
			&IsolationForest{Trees: 5, Subsample: 16, Repetitions: 1, Seed: seed},
		}
		for _, det := range dets {
			scores, err := det.Scores(ctx, ds.FullView())
			if err != nil {
				return false
			}
			for _, s := range scores {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

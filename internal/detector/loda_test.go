package detector

import (
	"math"
	"math/rand"
	"testing"

	"anex/internal/dataset"
)

func TestLODAFindsClusterOutlier(t *testing.T) {
	ds := clusterWithOutlier(t, 300, 25, 21)
	scores := mustScores(t, NewLODA(1), ds.FullView())
	outlier := ds.N() - 1
	if got := argMax(scores); got != outlier {
		t.Fatalf("LODA top point = %d, want %d", got, outlier)
	}
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestLODADeterministic(t *testing.T) {
	ds := clusterWithOutlier(t, 100, 10, 22)
	a := mustScores(t, NewLODA(5), ds.FullView())
	b := mustScores(t, NewLODA(5), ds.FullView())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different scores")
		}
	}
	c := mustScores(t, NewLODA(6), ds.FullView())
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical scores")
	}
}

func TestLODAFeatureScoresIdentifyRelevantFeatures(t *testing.T) {
	// 6 features; the anomaly deviates only in features 0 and 1.
	rng := rand.New(rand.NewSource(31))
	const n = 400
	cols := make([][]float64, 6)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	outlier := n - 1
	cols[0][outlier] = 9
	cols[1][outlier] = -9
	ds, err := dataset.New("loda-feat", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := FitLODA(ds.FullView().Points(), 200, 0, 3)
	point := ds.FullView().Point(outlier)
	feat := model.FeatureScores(point)
	if len(feat) != 6 {
		t.Fatalf("feature scores %v", feat)
	}
	// The two deviating features must outrank every normal feature.
	minRelevant := math.Min(feat[0], feat[1])
	for f := 2; f < 6; f++ {
		if feat[f] >= minRelevant {
			t.Errorf("irrelevant feature %d score %v ≥ relevant min %v (all: %v)", f, feat[f], minRelevant, feat)
		}
	}
}

func TestLODAModelOnlineUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	model := FitLODA(points, 50, 16, 1)
	probe := []float64{8, 8}
	before := model.Score(probe)
	// Feed the model many points near the probe: its neighbourhood
	// becomes dense, so the score must drop.
	for i := 0; i < 400; i++ {
		model.Update([]float64{8 + rng.NormFloat64()*0.1, 8 + rng.NormFloat64()*0.1})
	}
	after := model.Score(probe)
	if after >= before {
		t.Errorf("online update did not reduce score: before %v, after %v", before, after)
	}
}

func TestLODADegenerateData(t *testing.T) {
	// Constant data: histograms degenerate to one wide bin; scores finite.
	cols := [][]float64{{1, 1, 1, 1, 1}, {2, 2, 2, 2, 2}}
	ds, err := dataset.New("const", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mustScores(t, NewLODA(1), ds.FullView()) {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("non-finite score %v", s)
		}
	}
}

func TestHistogramDensity(t *testing.T) {
	h := newHistogram([]float64{0, 0.1, 0.2, 0.9, 1}, 5)
	// In-range density positive and integrates roughly to 1 over bins.
	var integral float64
	for i := 0; i < 5; i++ {
		mid := h.lo + (float64(i)+0.5)*h.width
		integral += h.density(mid) * h.width
	}
	if integral <= 0 || integral > 1.2 {
		t.Errorf("integral over bins = %v", integral)
	}
	// Out-of-range values get a small non-zero density.
	if d := h.density(100); d <= 0 {
		t.Errorf("overflow density = %v", d)
	}
	// Dense regions are denser than unseen ones.
	if h.density(0.1) <= h.density(0.55) {
		t.Errorf("dense bin not denser: %v vs %v", h.density(0.1), h.density(0.55))
	}
}

func TestKNNDistFindsOutlier(t *testing.T) {
	ds := clusterWithOutlier(t, 200, 30, 41)
	scores := mustScores(t, NewKNNDist(10), ds.FullView())
	if got := argMax(scores); got != ds.N()-1 {
		t.Fatalf("kNN-dist top point = %d", got)
	}
}

func TestKNNDistMissesLocalOutlier(t *testing.T) {
	// The motivating weakness of global distance scores (Fig. 2 of the
	// paper): a point just outside a dense cluster scores BELOW the bulk
	// of a sparse cluster — LOF catches it, kNN-dist does not.
	ds, outlier := twoDensityClusters(t, 17)
	knn := mustScores(t, NewKNNDist(10), ds.FullView())
	if argMax(knn) == outlier {
		t.Skip("kNN-dist happened to catch the local outlier on this draw")
	}
	lof := mustScores(t, NewLOF(15), ds.FullView())
	if argMax(lof) != outlier {
		t.Fatalf("LOF should catch the local outlier")
	}
}

func TestKNNDistDefaults(t *testing.T) {
	d := NewKNNDist(0)
	if d.k() != DefaultKNNDistK {
		t.Errorf("default k = %d", d.k())
	}
	ds, err := dataset.New("one", [][]float64{{1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustScores(t, d, ds.FullView()); len(got) != 1 || got[0] != 0 {
		t.Errorf("single point scores = %v", got)
	}
}

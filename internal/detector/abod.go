package detector

import (
	"context"
	"math"

	"anex/internal/dataset"
	"anex/internal/neighbors"
	"anex/internal/parallel"
)

// DefaultABODK is the neighbourhood size used throughout the paper's
// experiments (Section 3.1).
const DefaultABODK = 10

// FastABOD is the fast variant of the Angle-Based Outlier Detector of
// Kriegel et al. (KDD 2008): instead of all point pairs (O(n³)) it computes
// the variance of the distance-weighted angle spectrum over the k nearest
// neighbours only (O(k²·n) after the O(n²) neighbourhood computation).
//
// The native ABOF value is SMALL for outliers (their neighbours lie in
// similar directions); Scores therefore returns the NEGATED ABOF so that,
// per the core.Detector contract, higher means more outlying.
type FastABOD struct {
	// K is the neighbourhood size; zero means DefaultABODK.
	K int
	// Workers bounds the goroutines of the per-point kNN and angle-spectrum
	// phases; values ≤ 1 (including the zero value) keep scoring serial.
	// Results are identical at any worker count.
	Workers int
	// Neighbors, when non-nil, answers the kNN phase through the shared
	// neighbourhood plane (prefix-sliced to this detector's k); results
	// are bit-identical either way.
	Neighbors *neighbors.Plane
}

// NewFastABOD returns a Fast ABOD detector with neighbourhood size k
// (0 → default 10) wired to the process-wide shared neighbourhood plane.
func NewFastABOD(k int) *FastABOD {
	a := &FastABOD{K: k, Neighbors: neighbors.Shared()}
	a.Neighbors.RegisterK(a.k())
	return a
}

// SetNeighbors injects the neighbourhood plane (nil disables sharing) and
// registers this detector's k with it.
func (a *FastABOD) SetNeighbors(p *neighbors.Plane) {
	a.Neighbors = p
	p.RegisterK(a.k())
}

func (a *FastABOD) Name() string { return "FastABOD" }

func (a *FastABOD) k() int {
	if a.K <= 0 {
		return DefaultABODK
	}
	return a.K
}

// Scores computes −ABOF for every point of the view. K values ≥ n are
// clamped to n−1 (the complete neighbourhood), so degenerate
// parameterisations degrade instead of indexing out of bounds.
func (a *FastABOD) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if err := checkView("FastABOD", v); err != nil {
		return nil, err
	}
	n := v.N()
	k := a.k()
	if k > n-1 {
		k = n - 1
	}
	scores := make([]float64, n)
	if k < 2 {
		// No angle pairs exist; everything is equally (non-)outlying.
		return scores, nil
	}
	nnIdx, _, m, stride, err := neighbors.AllKNNOrIndex(ctx, a.Neighbors, v, k, a.Workers)
	if err != nil {
		return nil, err
	}

	dim := v.Dim()
	// One pair of difference-vector scratch buffers per worker shard: the
	// O(k²) angle accumulation per point is independent across points.
	shards := parallel.ShardCount(a.Workers, n)
	scratchA := make([][]float64, shards)
	scratchB := make([][]float64, shards)
	for s := range scratchA {
		scratchA[s] = make([]float64, dim)
		scratchB[s] = make([]float64, dim)
	}
	err = parallel.ForEachShard(ctx, a.Workers, n, func(shard, i int) {
		da, db := scratchA[shard], scratchB[shard]
		p := v.Point(i)
		nbrs := nnIdx[i*stride : i*stride+m]
		// Welford accumulation of the weighted angle statistic
		// f(x1,x2) = <x1−p, x2−p> / (|x1−p|² · |x2−p|²)
		// over all neighbour pairs.
		var mean, m2 float64
		var count int
		for s := 0; s < len(nbrs); s++ {
			ps := v.Point(int(nbrs[s]))
			var na float64
			for d := 0; d < dim; d++ {
				da[d] = ps[d] - p[d]
				na += da[d] * da[d]
			}
			if na == 0 {
				continue // duplicate of p; angle undefined
			}
			for t := s + 1; t < len(nbrs); t++ {
				pt := v.Point(int(nbrs[t]))
				var nb, dot float64
				for d := 0; d < dim; d++ {
					db[d] = pt[d] - p[d]
					nb += db[d] * db[d]
					dot += da[d] * db[d]
				}
				if nb == 0 {
					continue
				}
				val := dot / (na * nb)
				count++
				delta := val - mean
				mean += delta / float64(count)
				m2 += delta * (val - mean)
			}
		}
		if count < 2 {
			// Point duplicated k times over: treat as maximally inlying.
			scores[i] = math.Inf(-1)
			return
		}
		abof := m2 / float64(count) // population variance of the spectrum
		scores[i] = -abof
	})
	if err != nil {
		return nil, err
	}
	// Replace the -Inf sentinels with the minimum finite score so that
	// downstream statistics stay finite.
	minFinite := math.Inf(1)
	for _, s := range scores {
		if !math.IsInf(s, -1) && s < minFinite {
			minFinite = s
		}
	}
	if math.IsInf(minFinite, 1) {
		minFinite = 0
	}
	for i, s := range scores {
		if math.IsInf(s, -1) {
			scores[i] = minFinite
		}
	}
	return scores, nil
}

// Package detector implements the three unsupervised outlier detectors of
// the paper's testbed (Section 2.1): the density-based Local Outlier Factor
// (LOF), the angle-based Fast ABOD, and the isolation-based Isolation
// Forest — plus a repetition-averaging wrapper and a score cache that
// memoises per-subspace scores across explainers.
//
// All detectors return scores where higher means more outlying, as required
// by the core.Detector contract, and observe their context between points
// so per-cell deadlines and SIGINT cancellation propagate into the hottest
// scoring loops.
package detector

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/failpoint"
	"anex/internal/stats"
)

// DefaultCacheBytes is the generous default byte budget of a Cached
// detector's score memo: large enough that the paper's testbeds never
// evict, small enough that a stage-1 Beam sweep over a 100d dataset
// (C(100,2) = 4950 score vectors) cannot grow without bound when datasets
// get big.
const DefaultCacheBytes = 256 << 20 // 256 MiB

// cacheEntryOverhead approximates the fixed per-entry cost charged against
// the byte budget on top of the score payload: the map cell, the LRU list
// element, and the slice header.
const cacheEntryOverhead = 96

// SiteMemoPublish is the failpoint site guarding score-memo publication:
// an armed error action makes the singleflight leader fail before any
// detector work, releasing its waiters with the injected error through
// the same path a real scoring failure takes.
const SiteMemoPublish = "memo.publish"

// Cached wraps a detector with a subspace-keyed memo. Pipelines score the
// same subspaces repeatedly — e.g. Beam and LookOut both score every 2d
// subspace of a dataset — so the cache collapses that duplicated work. It is
// safe for concurrent use, and concurrent misses on the same key are
// deduplicated singleflight-style: one caller computes while the others
// wait for its result, so a subspace is never scored twice no matter how
// many pipeline workers race on it.
//
// The memo is bounded by a byte budget (DefaultCacheBytes unless overridden
// via NewCachedBudget): entries are charged for their score payload plus a
// small fixed overhead, and inserting past the budget evicts
// least-recently-used entries until the cache fits again. An evicted key
// that is requested later is simply recomputed — again singleflight-style,
// so concurrent refetches still score exactly once.
//
// Fault containment: a leader whose inner computation panics releases its
// waiters with an ERROR describing the crash (never a cascading re-panic in
// their goroutines) while the panic itself continues up the leader's own
// stack, where the pipeline's cell isolation converts it into that cell's
// Result.Err. A leader that fails because its OWN context was cancelled
// does not poison waiters either: waiters whose contexts are still live
// simply retry, electing a new leader.
type Cached struct {
	inner    core.Detector
	maxBytes int64

	mu        sync.Mutex
	entries   map[string]*list.Element // of *cacheEntry
	lru       list.List                // front = most recently used
	bytes     int64
	inflight  map[string]*inflightCall
	hits      int
	calls     int
	evictions int
}

// cacheEntry is one memoised score vector, resident in the LRU list,
// together with the population moments of its distribution — memoised so
// that Z-score standardisation of a cached subspace is O(1) instead of a
// fresh O(n) pass per (point, subspace) lookup.
type cacheEntry struct {
	key      string
	scores   []float64
	mean     float64
	variance float64
}

// entryBytes is the budget charge of one memo entry.
func entryBytes(key string, scores []float64) int64 {
	return int64(len(scores))*8 + int64(len(key)) + cacheEntryOverhead
}

// inflightCall is one in-progress inner computation that concurrent callers
// of the same key wait on.
type inflightCall struct {
	done   chan struct{}
	scores []float64
	err    error // non-nil when the leader failed (error or panic)
}

// NewCached wraps d with a score memo keyed by (dataset name, subspace);
// datasets scored through one cache must therefore carry distinct names.
// The memo holds at most DefaultCacheBytes of scores; use NewCachedBudget
// to tune the bound.
func NewCached(d core.Detector) *Cached {
	return NewCachedBudget(d, DefaultCacheBytes)
}

// NewCachedBudget is NewCached with an explicit byte budget for the score
// memo; maxBytes ≤ 0 selects DefaultCacheBytes. A budget smaller than a
// single score vector still works — every insert immediately evicts, so the
// cache degrades to pure singleflight deduplication.
func NewCachedBudget(d core.Detector, maxBytes int64) *Cached {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cached{
		inner:    d,
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*inflightCall),
	}
}

// Name returns the wrapped detector's name.
func (c *Cached) Name() string { return c.inner.Name() }

// Inner returns the wrapped detector. The stream monitor uses it to reach
// a WindowScorer through the memo wrapper: window datasets carry fresh
// process-unique names, so the memo never hits on them anyway, and the
// incremental path's own score reuse subsumes it.
func (c *Cached) Inner() core.Detector { return c.inner }

// Scores returns memoised scores for the view's subspace, computing them on
// first access. The returned slice is shared; callers must not mutate it.
// When several goroutines miss on the same key simultaneously, exactly one
// runs the inner detector and the rest block until it finishes — a waiter
// counts as a hit, since it triggers no inner work. A waiter also unblocks
// when its own ctx is cancelled, returning ctx's error without waiting for
// the leader.
func (c *Cached) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	key := v.Dataset().Name() + "|" + v.Subspace().Key()
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			s := el.Value.(*cacheEntry).scores
			c.mu.Unlock()
			return s, nil
		}
		if call, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if call.err != nil {
				// A leader cancelled by ITS context must not fail waiters
				// whose contexts are still live: retry (becoming the new
				// leader or finding a published memo).
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue
				}
				return nil, call.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return call.scores, nil
		}
		call := &inflightCall{done: make(chan struct{})}
		c.inflight[key] = call
		c.mu.Unlock()
		return c.lead(ctx, v, key, call)
	}
}

// lead runs the inner detector as the key's singleflight leader and
// publishes the outcome to waiters. A panicking inner detector surfaces to
// waiters as an error; the panic itself continues up the leader's stack.
func (c *Cached) lead(ctx context.Context, v *dataset.View, key string, call *inflightCall) ([]float64, error) {
	completed := false
	if ferr := failpoint.Eval(SiteMemoPublish); ferr != nil {
		completed = true
		call.err = ferr
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(call.done)
		return nil, ferr
	}
	defer func() {
		if !completed {
			// inner.Scores panicked. Record an error for the waiters —
			// re-panicking in THEIR goroutines would crash call sites that
			// never touched the faulty computation — and let the panic
			// continue through this (the leader's) stack.
			call.err = fmt.Errorf("detector: concurrent %s computation for %q panicked in its leader", c.inner.Name(), key)
		}
		c.mu.Lock()
		if call.err == nil {
			c.insert(key, call.scores)
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		close(call.done)
	}()
	call.scores, call.err = c.inner.Scores(ctx, v)
	completed = true
	return call.scores, call.err
}

// insert publishes a freshly computed score vector into the LRU memo and
// evicts from the cold end until the byte budget holds again. Called with
// c.mu held. If the new entry alone exceeds the budget it is evicted
// immediately — the budget is a hard bound, and the caller still returns
// the scores it holds in hand.
func (c *Cached) insert(key string, scores []float64) {
	if el, ok := c.entries[key]; ok {
		// A racing Reset dropped the inflight map while this leader ran and
		// another leader already republished: keep the resident entry.
		c.lru.MoveToFront(el)
		return
	}
	mean, variance := stats.PopulationMeanVariance(scores)
	c.bytes += entryBytes(key, scores)
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, scores: scores, mean: mean, variance: variance})
	for c.bytes > c.maxBytes && c.lru.Len() > 0 {
		cold := c.lru.Back()
		e := cold.Value.(*cacheEntry)
		c.lru.Remove(cold)
		delete(c.entries, e.key)
		c.bytes -= entryBytes(e.key, e.scores)
		c.evictions++
	}
}

// ScoresWithStats returns memoised scores plus the population moments of
// their distribution (core.StatScorer). On a cache hit the moments come
// straight from the entry; after a miss (or an eviction race) they are
// computed with the same stats.PopulationMeanVariance pass the memo uses,
// so both paths are bit-identical to standardising the scores directly.
func (c *Cached) ScoresWithStats(ctx context.Context, v *dataset.View) (scores []float64, mean, variance float64, err error) {
	scores, err = c.Scores(ctx, v)
	if err != nil {
		return nil, 0, 0, err
	}
	key := v.Dataset().Name() + "|" + v.Subspace().Key()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		// The entry can only be this call's result: keys are immutable and
		// Scores just returned for this key.
		mean, variance = e.mean, e.variance
		c.mu.Unlock()
		return scores, mean, variance, nil
	}
	c.mu.Unlock()
	mean, variance = stats.PopulationMeanVariance(scores)
	return scores, mean, variance, nil
}

// Stats returns cache calls and hits since construction. A call that waited
// on another goroutine's in-flight computation counts as a hit: N
// concurrent first accesses to one key yield 1 inner call and N−1 hits.
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

// CacheStats is a point-in-time snapshot of a Cached detector's memo.
type CacheStats struct {
	// Calls and Hits mirror Stats.
	Calls, Hits int
	// Evictions counts entries dropped to honour the byte budget.
	Evictions int
	// Entries is the number of resident score vectors.
	Entries int
	// ResidentBytes is the budget charge of the resident entries; it never
	// exceeds MaxBytes.
	ResidentBytes int64
	// MaxBytes is the configured budget.
	MaxBytes int64
}

// CacheStats returns the full cache counters, including the eviction count
// and resident byte footprint of the LRU memo.
func (c *Cached) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Calls:         c.calls,
		Hits:          c.hits,
		Evictions:     c.evictions,
		Entries:       c.lru.Len(),
		ResidentBytes: c.bytes,
		MaxBytes:      c.maxBytes,
	}
}

// Forget drops every memoised score vector belonging to the named dataset.
// Memo keys embed the dataset NAME (not the process-unique ID), so owners
// of short-lived datasets with generated unique names — the stream
// monitor's windows — call Forget when a dataset dies to release its
// entries eagerly instead of waiting for LRU pressure. Computations in
// flight publish after Forget returns and die with the next Forget (or
// under the byte budget).
func (c *Cached) Forget(datasetName string) {
	if datasetName == "" {
		return
	}
	prefix := datasetName + "|"
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			e := el.Value.(*cacheEntry)
			c.lru.Remove(el)
			delete(c.entries, key)
			c.bytes -= entryBytes(e.key, e.scores)
		}
	}
}

// Reset drops all memoised scores. Computations in flight at reset time
// complete and publish into the fresh memo.
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.bytes = 0
	c.calls, c.hits, c.evictions = 0, 0, 0
}

var _ core.Detector = (*Cached)(nil)

// checkView validates the common Scores preconditions.
func checkView(name string, v *dataset.View) error {
	if v == nil || v.N() == 0 {
		return fmt.Errorf("%s: empty view", name)
	}
	if v.Dim() == 0 {
		return fmt.Errorf("%s: zero-dimensional view", name)
	}
	return nil
}

// Package detector implements the three unsupervised outlier detectors of
// the paper's testbed (Section 2.1): the density-based Local Outlier Factor
// (LOF), the angle-based Fast ABOD, and the isolation-based Isolation
// Forest — plus a repetition-averaging wrapper and a score cache that
// memoises per-subspace scores across explainers.
//
// All detectors return scores where higher means more outlying, as required
// by the core.Detector contract.
package detector

import (
	"fmt"
	"sync"

	"anex/internal/core"
	"anex/internal/dataset"
)

// Cached wraps a detector with a subspace-keyed memo. Pipelines score the
// same subspaces repeatedly — e.g. Beam and LookOut both score every 2d
// subspace of a dataset — so the cache collapses that duplicated work. It is
// safe for concurrent use, and concurrent misses on the same key are
// deduplicated singleflight-style: one caller computes while the others
// wait for its result, so a subspace is never scored twice no matter how
// many pipeline workers race on it.
type Cached struct {
	inner core.Detector

	mu       sync.Mutex
	memo     map[string][]float64
	inflight map[string]*inflightCall
	hits     int
	calls    int
}

// inflightCall is one in-progress inner computation that concurrent callers
// of the same key wait on.
type inflightCall struct {
	done   chan struct{}
	scores []float64
	ok     bool // false if the leader's inner.Scores panicked
}

// NewCached wraps d with a score memo keyed by (dataset name, subspace);
// datasets scored through one cache must therefore carry distinct names.
func NewCached(d core.Detector) *Cached {
	return &Cached{
		inner:    d,
		memo:     make(map[string][]float64),
		inflight: make(map[string]*inflightCall),
	}
}

// Name returns the wrapped detector's name.
func (c *Cached) Name() string { return c.inner.Name() }

// Scores returns memoised scores for the view's subspace, computing them on
// first access. The returned slice is shared; callers must not mutate it.
// When several goroutines miss on the same key simultaneously, exactly one
// runs the inner detector and the rest block until it finishes — a waiter
// counts as a hit, since it triggers no inner work.
func (c *Cached) Scores(v *dataset.View) []float64 {
	key := v.Dataset().Name() + "|" + v.Subspace().Key()
	c.mu.Lock()
	c.calls++
	if s, ok := c.memo[key]; ok {
		c.hits++
		c.mu.Unlock()
		return s
	}
	if call, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-call.done
		if !call.ok {
			panic(fmt.Sprintf("detector: concurrent %s computation for %q panicked in its leader", c.inner.Name(), key))
		}
		return call.scores
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// The leader computes outside the lock. The deferred cleanup releases
	// waiters even if the inner detector panics (a contract violation),
	// so no goroutine is left blocked.
	defer func() {
		c.mu.Lock()
		if call.ok {
			c.memo[key] = call.scores
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		close(call.done)
	}()
	call.scores = c.inner.Scores(v)
	call.ok = true
	return call.scores
}

// Stats returns cache calls and hits since construction. A call that waited
// on another goroutine's in-flight computation counts as a hit: N
// concurrent first accesses to one key yield 1 inner call and N−1 hits.
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

// Reset drops all memoised scores. Computations in flight at reset time
// complete and publish into the fresh memo.
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo = make(map[string][]float64)
	c.calls, c.hits = 0, 0
}

func checkView(name string, v *dataset.View) error {
	if v == nil || v.N() == 0 {
		return fmt.Errorf("%s: empty view", name)
	}
	if v.Dim() == 0 {
		return fmt.Errorf("%s: zero-dimensional view", name)
	}
	return nil
}

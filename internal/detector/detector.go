// Package detector implements the three unsupervised outlier detectors of
// the paper's testbed (Section 2.1): the density-based Local Outlier Factor
// (LOF), the angle-based Fast ABOD, and the isolation-based Isolation
// Forest — plus a repetition-averaging wrapper and a score cache that
// memoises per-subspace scores across explainers.
//
// All detectors return scores where higher means more outlying, as required
// by the core.Detector contract.
package detector

import (
	"fmt"
	"sync"

	"anex/internal/core"
	"anex/internal/dataset"
)

// Cached wraps a detector with a subspace-keyed memo. Pipelines score the
// same subspaces repeatedly — e.g. Beam and LookOut both score every 2d
// subspace of a dataset — so the cache collapses that duplicated work. It is
// safe for concurrent use.
type Cached struct {
	inner core.Detector

	mu    sync.Mutex
	memo  map[string][]float64
	hits  int
	calls int
}

// NewCached wraps d with a score memo keyed by (dataset name, subspace);
// datasets scored through one cache must therefore carry distinct names.
func NewCached(d core.Detector) *Cached {
	return &Cached{inner: d, memo: make(map[string][]float64)}
}

// Name returns the wrapped detector's name.
func (c *Cached) Name() string { return c.inner.Name() }

// Scores returns memoised scores for the view's subspace, computing them on
// first access. The returned slice is shared; callers must not mutate it.
func (c *Cached) Scores(v *dataset.View) []float64 {
	key := v.Dataset().Name() + "|" + v.Subspace().Key()
	c.mu.Lock()
	c.calls++
	if s, ok := c.memo[key]; ok {
		c.hits++
		c.mu.Unlock()
		return s
	}
	c.mu.Unlock()
	s := c.inner.Scores(v)
	c.mu.Lock()
	c.memo[key] = s
	c.mu.Unlock()
	return s
}

// Stats returns cache calls and hits since construction.
func (c *Cached) Stats() (calls, hits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls, c.hits
}

// Reset drops all memoised scores.
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo = make(map[string][]float64)
	c.calls, c.hits = 0, 0
}

func checkView(name string, v *dataset.View) error {
	if v == nil || v.N() == 0 {
		return fmt.Errorf("%s: empty view", name)
	}
	if v.Dim() == 0 {
		return fmt.Errorf("%s: zero-dimensional view", name)
	}
	return nil
}

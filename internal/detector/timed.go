package detector

import (
	"context"
	"sync/atomic"
	"time"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
)

// Timed wraps a detector and accumulates the wall-clock time spent inside
// Scores, so pipelines can split their runtime into detector scoring versus
// subspace search. It is safe for concurrent use; when Scores runs on
// several workers at once the accumulated time is the sum across workers
// (CPU-time semantics), which can exceed the enclosing wall-clock span —
// exactly the signal that the scoring phase parallelised.
//
// Layer it outside a Cached detector to measure what a pipeline actually
// waits for (cache hits cost ~nothing), or inside to measure raw compute.
type Timed struct {
	inner core.Detector
	nanos atomic.Int64
	calls atomic.Int64
}

// NewTimed wraps d with a scoring-time accumulator.
func NewTimed(d core.Detector) *Timed { return &Timed{inner: d} }

// Name returns the wrapped detector's name.
func (t *Timed) Name() string { return t.inner.Name() }

// Scores delegates to the wrapped detector, accumulating elapsed time.
// Failed calls (including cancellations) still count their elapsed time.
func (t *Timed) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	start := time.Now()
	s, err := t.inner.Scores(ctx, v)
	t.nanos.Add(int64(time.Since(start)))
	t.calls.Add(1)
	return s, err
}

// ScoresWithStats implements core.StatScorer: when the wrapped detector
// memoises moments the call forwards to it (timed like Scores); otherwise
// the moments are computed here with the same stats.PopulationMeanVariance
// pass a direct standardisation would run, so results are bit-identical
// whether or not the wrapped detector cooperates.
func (t *Timed) ScoresWithStats(ctx context.Context, v *dataset.View) (scores []float64, mean, variance float64, err error) {
	if ss, ok := t.inner.(core.StatScorer); ok {
		start := time.Now()
		scores, mean, variance, err = ss.ScoresWithStats(ctx, v)
		t.nanos.Add(int64(time.Since(start)))
		t.calls.Add(1)
		return scores, mean, variance, err
	}
	scores, err = t.Scores(ctx, v)
	if err != nil {
		return nil, 0, 0, err
	}
	mean, variance = stats.PopulationMeanVariance(scores)
	return scores, mean, variance, nil
}

// Elapsed returns the total time spent in Scores since construction.
func (t *Timed) Elapsed() time.Duration { return time.Duration(t.nanos.Load()) }

// Calls returns the number of completed Scores invocations.
func (t *Timed) Calls() int64 { return t.calls.Load() }

var (
	_ core.Detector   = (*Timed)(nil)
	_ core.StatScorer = (*Timed)(nil)
)

package detector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anex/internal/core"
	"anex/internal/dataset"
)

// randomDataset builds an n×d dataset with a couple of duplicated points to
// stress tie handling.
func randomDataset(rng *rand.Rand, n, d int) *dataset.Dataset {
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64() * 3
		}
	}
	// Duplicate a point.
	if n > 3 {
		for f := range cols {
			cols[f][1] = cols[f][0]
		}
	}
	ds, err := dataset.New("inv", cols, nil)
	if err != nil {
		panic(err)
	}
	return ds
}

// transform applies x → x*scale + shift to every value.
func transform(ds *dataset.Dataset, scale, shift float64) *dataset.Dataset {
	cols := make([][]float64, ds.D())
	for f := range cols {
		src := ds.Column(f)
		dst := make([]float64, len(src))
		for i, v := range src {
			dst[i] = v*scale + shift
		}
		cols[f] = dst
	}
	out, err := dataset.New("inv-t", cols, nil)
	if err != nil {
		panic(err)
	}
	return out
}

// TestLOFSimilarityInvariance: LOF is a ratio of local densities, so it is
// exactly invariant under global scaling and translation of the data.
func TestLOFSimilarityInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(scaleSeed, shiftSeed uint8) bool {
		scale := 0.25 + float64(scaleSeed%40)/4 // 0.25 … 10
		shift := float64(int(shiftSeed)-128) / 4
		ds := randomDataset(rng, 60, 3)
		lof := NewLOF(10)
		a, errA := lof.Scores(ctx, ds.FullView())
		b, errB := lof.Scores(ctx, transform(ds, scale, shift).FullView())
		if errA != nil || errB != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestABODRankingScaleInvariance: the ABOF value changes under scaling
// (the 1/|x|² weights scale), but the RANKING of points is preserved under
// translation and uniform scaling.
func TestABODRankingScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := randomDataset(rng, 80, 3)
	abod := NewFastABOD(10)
	a := mustScores(t, abod, ds.FullView())
	b := mustScores(t, abod, transform(ds, 3.5, -2).FullView())
	ra := rankOf(a)
	rb := rankOf(b)
	mismatches := 0
	for i := range ra {
		if ra[i] != rb[i] {
			mismatches++
		}
	}
	// Exact rank preservation can be broken by floating-point ties; allow
	// a small number of swaps.
	if mismatches > 4 {
		t.Errorf("%d rank mismatches under affine transform", mismatches)
	}
}

// TestIForestScoreBounds: isolation scores are probabilities-like values in
// (0, 1) for any input.
func TestIForestScoreBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(nRaw, dRaw uint8, seed int64) bool {
		n := int(nRaw%60) + 4
		d := int(dRaw%5) + 1
		ds := randomDataset(rng, n, d)
		det := &IsolationForest{Trees: 10, Subsample: 32, Repetitions: 1, Seed: seed}
		scores, err := det.Scores(ctx, ds.FullView())
		if err != nil {
			return false
		}
		for _, s := range scores {
			if s <= 0 || s >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLOFSubspacePermutationInvariance: scoring a view must not depend on
// feature order within the subspace (Euclidean distance is symmetric).
func TestLOFSubspacePermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds := randomDataset(rng, 50, 4)
	lof := NewLOF(8)
	// The canonical subspace type always sorts, so build two datasets
	// with swapped columns instead.
	swapped, err := dataset.New("swap", [][]float64{ds.Column(1), ds.Column(0)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := dataset.New("orig", [][]float64{ds.Column(0), ds.Column(1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mustScores(t, lof, orig.FullView())
	b := mustScores(t, lof, swapped.FullView())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score[%d] differs under feature permutation", i)
		}
	}
}

// TestDetectorsDeterministicAcrossCalls: every built-in detector must return
// identical scores for identical views.
func TestDetectorsDeterministicAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 70, 3)
	dets := []struct {
		name string
		det  core.Detector
	}{
		{"LOF", NewLOF(10)},
		{"FastABOD", NewFastABOD(8)},
		{"iForest", &IsolationForest{Trees: 10, Subsample: 32, Repetitions: 2, Seed: 1}},
		{"LODA", NewLODA(1)},
		{"kNN-dist", NewKNNDist(5)},
	}
	for _, d := range dets {
		a := mustScores(t, d.det, ds.FullView())
		b := mustScores(t, d.det, ds.FullView())
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: nondeterministic score at %d", d.name, i)
				break
			}
		}
	}
}

// rankOf returns, per point, the number of scores strictly above it.
func rankOf(scores []float64) []int {
	ranks := make([]int, len(scores))
	for i := range scores {
		for j := range scores {
			if scores[j] > scores[i] {
				ranks[i]++
			}
		}
	}
	return ranks
}

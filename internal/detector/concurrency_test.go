package detector

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anex/internal/dataset"
)

// gatedDetector blocks every Scores call on a gate channel and counts how
// many times the inner computation actually ran — the probe for the
// cache's singleflight deduplication.
type gatedDetector struct {
	gate   chan struct{}
	inner  atomic.Int32
	scores []float64
}

func (g *gatedDetector) Name() string { return "gated" }

func (g *gatedDetector) Scores(v *dataset.View) []float64 {
	g.inner.Add(1)
	<-g.gate
	return g.scores
}

func smallView(t testing.TB, seed int64) *dataset.View {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, 3)
	for f := range cols {
		cols[f] = make([]float64, 50)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	ds, err := dataset.New("concurrency-test", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds.FullView()
}

// TestCachedSingleflight asserts the concurrent-miss contract: N goroutines
// racing on one uncomputed key trigger exactly 1 inner computation, and the
// N−1 waiters count as hits — not as misses that silently duplicate work.
func TestCachedSingleflight(t *testing.T) {
	view := smallView(t, 1)
	inner := &gatedDetector{gate: make(chan struct{}), scores: []float64{1, 2, 3}}
	c := NewCached(inner)

	const n = 16
	results := make([][]float64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Scores(view)
		}(i)
	}
	// Wait until all n goroutines have entered Scores (each increments the
	// call counter under the cache mutex before computing or waiting), then
	// release the gate so the single leader can finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if calls, _ := c.Stats(); calls == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for concurrent callers to enter Scores")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	if got := inner.inner.Load(); got != 1 {
		t.Errorf("inner Scores ran %d times for one key, want exactly 1", got)
	}
	calls, hits := c.Stats()
	if calls != n || hits != n-1 {
		t.Errorf("stats = (%d calls, %d hits), want (%d, %d)", calls, hits, n, n-1)
	}
	for i, r := range results {
		if len(r) != 3 || r[0] != 1 || r[1] != 2 || r[2] != 3 {
			t.Fatalf("caller %d got scores %v", i, r)
		}
	}
	// A subsequent call is a plain memo hit.
	if s := c.Scores(view); len(s) != 3 {
		t.Errorf("post-flight hit returned %v", s)
	}
	if calls, hits := c.Stats(); calls != n+1 || hits != n {
		t.Errorf("post-flight stats = (%d, %d), want (%d, %d)", calls, hits, n+1, n)
	}
}

// TestCachedConcurrentDistinctKeys checks that singleflight dedup keys per
// subspace: different keys compute independently and concurrently.
func TestCachedConcurrentDistinctKeys(t *testing.T) {
	viewA := smallView(t, 1)
	rng := rand.New(rand.NewSource(2))
	cols := make([][]float64, 3)
	for f := range cols {
		cols[f] = make([]float64, 50)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	dsB, err := dataset.New("concurrency-test-b", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	viewB := dsB.FullView()

	inner := &gatedDetector{gate: make(chan struct{}), scores: []float64{9}}
	c := NewCached(inner)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Scores(viewA) }()
	go func() { defer wg.Done(); c.Scores(viewB) }()
	// Both keys must reach the inner detector: two leaders, no cross-key
	// blocking. Only then release them.
	deadline := time.Now().Add(10 * time.Second)
	for inner.inner.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("distinct keys did not compute concurrently")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()
	if calls, hits := c.Stats(); calls != 2 || hits != 0 {
		t.Errorf("stats = (%d, %d), want (2, 0)", calls, hits)
	}
}

// TestDetectorWorkerCountInvariance asserts the determinism contract of the
// parallel inner loops: every detector returns bit-identical scores at any
// worker count.
func TestDetectorWorkerCountInvariance(t *testing.T) {
	view := smallView(t, 3)
	t.Run("iForest", func(t *testing.T) {
		serial := (&IsolationForest{Trees: 20, Subsample: 32, Repetitions: 3, Seed: 7}).Scores(view)
		for _, w := range []int{2, 8} {
			par := (&IsolationForest{Trees: 20, Subsample: 32, Repetitions: 3, Seed: 7, Workers: w}).Scores(view)
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("workers=%d: score[%d] = %v, serial %v", w, i, par[i], serial[i])
				}
			}
		}
	})
	t.Run("LOF", func(t *testing.T) {
		serial := NewLOF(5).Scores(view)
		par := (&LOF{K: 5, Workers: 8}).Scores(view)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("score[%d] = %v, serial %v", i, par[i], serial[i])
			}
		}
	})
	t.Run("FastABOD", func(t *testing.T) {
		serial := NewFastABOD(5).Scores(view)
		par := (&FastABOD{K: 5, Workers: 8}).Scores(view)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("score[%d] = %v, serial %v", i, par[i], serial[i])
			}
		}
	})
}

// TestTimedDetector checks the scoring-time accumulator used for per-phase
// pipeline timing.
func TestTimedDetector(t *testing.T) {
	view := smallView(t, 4)
	td := NewTimed(NewLOF(5))
	if td.Name() != "LOF" {
		t.Errorf("name %q", td.Name())
	}
	if td.Elapsed() != 0 || td.Calls() != 0 {
		t.Error("fresh timer not zero")
	}
	s := td.Scores(view)
	if len(s) != view.N() {
		t.Fatalf("scores len %d", len(s))
	}
	if td.Elapsed() <= 0 || td.Calls() != 1 {
		t.Errorf("after one call: elapsed %v, calls %d", td.Elapsed(), td.Calls())
	}
}

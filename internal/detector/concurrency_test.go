package detector

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anex/internal/dataset"
)

// gatedDetector blocks every Scores call on a gate channel and counts how
// many times the inner computation actually ran — the probe for the
// cache's singleflight deduplication.
type gatedDetector struct {
	gate   chan struct{}
	inner  atomic.Int32
	scores []float64
}

func (g *gatedDetector) Name() string { return "gated" }

func (g *gatedDetector) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	g.inner.Add(1)
	<-g.gate
	return g.scores, nil
}

func smallView(t testing.TB, seed int64) *dataset.View {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, 3)
	for f := range cols {
		cols[f] = make([]float64, 50)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	ds, err := dataset.New("concurrency-test", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds.FullView()
}

// TestCachedSingleflight asserts the concurrent-miss contract: N goroutines
// racing on one uncomputed key trigger exactly 1 inner computation, and the
// N−1 waiters count as hits — not as misses that silently duplicate work.
func TestCachedSingleflight(t *testing.T) {
	view := smallView(t, 1)
	inner := &gatedDetector{gate: make(chan struct{}), scores: []float64{1, 2, 3}}
	c := NewCached(inner)

	const n = 16
	results := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Scores(ctx, view)
		}(i)
	}
	// Wait until all n goroutines have entered Scores (each increments the
	// call counter under the cache mutex before computing or waiting), then
	// release the gate so the single leader can finish.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if calls, _ := c.Stats(); calls == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for concurrent callers to enter Scores")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	if got := inner.inner.Load(); got != 1 {
		t.Errorf("inner Scores ran %d times for one key, want exactly 1", got)
	}
	calls, hits := c.Stats()
	if calls != n || hits != n-1 {
		t.Errorf("stats = (%d calls, %d hits), want (%d, %d)", calls, hits, n, n-1)
	}
	for i, r := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d error: %v", i, errs[i])
		}
		if len(r) != 3 || r[0] != 1 || r[1] != 2 || r[2] != 3 {
			t.Fatalf("caller %d got scores %v", i, r)
		}
	}
	// A subsequent call is a plain memo hit.
	if s, err := c.Scores(ctx, view); err != nil || len(s) != 3 {
		t.Errorf("post-flight hit returned %v, %v", s, err)
	}
	if calls, hits := c.Stats(); calls != n+1 || hits != n {
		t.Errorf("post-flight stats = (%d, %d), want (%d, %d)", calls, hits, n+1, n)
	}
}

// TestCachedConcurrentDistinctKeys checks that singleflight dedup keys per
// subspace: different keys compute independently and concurrently.
func TestCachedConcurrentDistinctKeys(t *testing.T) {
	viewA := smallView(t, 1)
	rng := rand.New(rand.NewSource(2))
	cols := make([][]float64, 3)
	for f := range cols {
		cols[f] = make([]float64, 50)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	dsB, err := dataset.New("concurrency-test-b", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	viewB := dsB.FullView()

	inner := &gatedDetector{gate: make(chan struct{}), scores: []float64{9}}
	c := NewCached(inner)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); c.Scores(ctx, viewA) }()
	go func() { defer wg.Done(); c.Scores(ctx, viewB) }()
	// Both keys must reach the inner detector: two leaders, no cross-key
	// blocking. Only then release them.
	deadline := time.Now().Add(10 * time.Second)
	for inner.inner.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("distinct keys did not compute concurrently")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()
	if calls, hits := c.Stats(); calls != 2 || hits != 0 {
		t.Errorf("stats = (%d, %d), want (2, 0)", calls, hits)
	}
}

// panickyDetector blocks on its gate, then panics — the probe for leader
// crash containment.
type panickyDetector struct {
	gate chan struct{}
}

func (p *panickyDetector) Name() string { return "panicky" }

func (p *panickyDetector) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	<-p.gate
	panic("detector crashed")
}

// TestCachedLeaderPanicReleasesWaitersWithError asserts the fault-containment
// contract: when the singleflight leader's inner computation panics, every
// concurrent waiter is released with an ERROR (not a cascading panic in its
// own goroutine), while the panic itself continues up the leader's stack.
func TestCachedLeaderPanicReleasesWaitersWithError(t *testing.T) {
	view := smallView(t, 3)
	inner := &panickyDetector{gate: make(chan struct{})}
	c := NewCached(inner)

	const n = 8
	var panics, errsWithMark atomic.Int32
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Only the leader's goroutine may see the panic.
					panics.Add(1)
				}
			}()
			_, err := c.Scores(ctx, view)
			if err != nil && strings.Contains(err.Error(), "panicked in its leader") {
				errsWithMark.Add(1)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if calls, _ := c.Stats(); calls == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for concurrent callers")
		}
		time.Sleep(time.Millisecond)
	}
	close(inner.gate)
	wg.Wait()

	if got := panics.Load(); got != 1 {
		t.Errorf("%d goroutines panicked, want exactly 1 (the leader)", got)
	}
	if got := errsWithMark.Load(); got != n-1 {
		t.Errorf("%d waiters got the leader-panic error, want %d", got, n-1)
	}
	// The failure must not be memoised: a later call runs the inner
	// detector again (and panics again, proving a fresh computation).
	func() {
		defer func() { recover() }()
		_, err := c.Scores(ctx, view)
		t.Errorf("post-crash call returned err=%v instead of recomputing", err)
	}()
}

// retryProbeDetector fails its first call by blocking until that call's ctx
// is cancelled; later calls succeed. It probes the waiter-retry path: a
// leader cancelled by its own context must not poison waiters whose
// contexts are still live.
type retryProbeDetector struct {
	calls  atomic.Int32
	scores []float64
}

func (d *retryProbeDetector) Name() string { return "retry-probe" }

func (d *retryProbeDetector) Scores(ctx context.Context, v *dataset.View) ([]float64, error) {
	if d.calls.Add(1) == 1 {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return d.scores, nil
}

func TestCachedWaiterRetriesAfterLeaderContextCancelled(t *testing.T) {
	view := smallView(t, 4)
	inner := &retryProbeDetector{scores: []float64{7, 7}}
	c := NewCached(inner)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.Scores(leaderCtx, view)
		leaderErr <- err
	}()
	// Wait for the leader to enter the inner detector.
	deadline := time.Now().Add(10 * time.Second)
	for inner.calls.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the inner detector")
		}
		time.Sleep(time.Millisecond)
	}
	// A waiter with a live context joins the in-flight call.
	waiterScores := make(chan []float64, 1)
	waiterErrC := make(chan error, 1)
	go func() {
		s, err := c.Scores(context.Background(), view)
		waiterScores <- s
		waiterErrC <- err
	}()
	// Let the waiter park on the in-flight call, then kill the leader.
	for {
		if calls, _ := c.Stats(); calls == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never entered Scores")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()

	if err := <-leaderErr; err == nil {
		t.Error("cancelled leader returned nil error")
	}
	if err := <-waiterErrC; err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
	if s := <-waiterScores; len(s) != 2 || s[0] != 7 {
		t.Errorf("waiter scores = %v after retry", s)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("inner detector ran %d times, want 2 (failed leader + retrying waiter)", got)
	}
}

// TestCachedWaiterOwnContextCancelled: a waiter whose OWN context dies while
// parked on another goroutine's computation returns promptly with its error.
func TestCachedWaiterOwnContextCancelled(t *testing.T) {
	view := smallView(t, 5)
	inner := &gatedDetector{gate: make(chan struct{}), scores: []float64{1}}
	c := NewCached(inner)
	go c.Scores(context.Background(), view) // leader, parked on the gate
	deadline := time.Now().Add(10 * time.Second)
	for inner.inner.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Scores(waiterCtx, view)
		done <- err
	}()
	for {
		if calls, _ := c.Stats(); calls == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelWaiter()
	select {
	case err := <-done:
		if err == nil {
			t.Error("waiter with dead context returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter did not unblock on its own cancellation")
	}
	close(inner.gate) // release the leader for cleanup
}

// TestDetectorWorkerCountInvariance asserts the determinism contract of the
// parallel inner loops: every detector returns bit-identical scores at any
// worker count.
func TestDetectorWorkerCountInvariance(t *testing.T) {
	view := smallView(t, 3)
	t.Run("iForest", func(t *testing.T) {
		serial := mustScores(t, &IsolationForest{Trees: 20, Subsample: 32, Repetitions: 3, Seed: 7}, view)
		for _, w := range []int{2, 8} {
			par := mustScores(t, &IsolationForest{Trees: 20, Subsample: 32, Repetitions: 3, Seed: 7, Workers: w}, view)
			for i := range serial {
				if par[i] != serial[i] {
					t.Fatalf("workers=%d: score[%d] = %v, serial %v", w, i, par[i], serial[i])
				}
			}
		}
	})
	t.Run("LOF", func(t *testing.T) {
		serial := mustScores(t, NewLOF(5), view)
		par := mustScores(t, &LOF{K: 5, Workers: 8}, view)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("score[%d] = %v, serial %v", i, par[i], serial[i])
			}
		}
	})
	t.Run("FastABOD", func(t *testing.T) {
		serial := mustScores(t, NewFastABOD(5), view)
		par := mustScores(t, &FastABOD{K: 5, Workers: 8}, view)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("score[%d] = %v, serial %v", i, par[i], serial[i])
			}
		}
	})
}

// TestTimedDetector checks the scoring-time accumulator used for per-phase
// pipeline timing.
func TestTimedDetector(t *testing.T) {
	view := smallView(t, 4)
	td := NewTimed(NewLOF(5))
	if td.Name() != "LOF" {
		t.Errorf("name %q", td.Name())
	}
	if td.Elapsed() != 0 || td.Calls() != 0 {
		t.Error("fresh timer not zero")
	}
	s := mustScores(t, td, view)
	if len(s) != view.N() {
		t.Fatalf("scores len %d", len(s))
	}
	if td.Elapsed() <= 0 || td.Calls() != 1 {
		t.Errorf("after one call: elapsed %v, calls %d", td.Elapsed(), td.Calls())
	}
}

package stream

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"anex/internal/detector"
	"anex/internal/neighbors"
)

// parityArm builds one monitor over a private plane so the two arms of a
// parity run share nothing (the engine publishes into its own plane; the
// cold arm computes into its own).
type parityArm struct {
	name string
	mk   func(noInc bool) (*Monitor, *neighbors.Plane)
}

func lofArm(k, workers, stride, slack int) parityArm {
	return parityArm{
		name: fmt.Sprintf("LOF-k%d-w%d-s%d-sl%d", k, workers, stride, slack),
		mk: func(noInc bool) (*Monitor, *neighbors.Plane) {
			plane := neighbors.NewPlane(0)
			det := &detector.LOF{K: k, Workers: workers}
			det.SetNeighbors(plane)
			return mustMonitor(Config{
				WindowSize:    48,
				Stride:        stride,
				ZThreshold:    Threshold(2.5),
				Detector:      det,
				Plane:         plane,
				NoIncremental: noInc,
				Slack:         Slack(slack),
				Workers:       workers,
			}), plane
		},
	}
}

func abodArm(k, workers, stride int) parityArm {
	return parityArm{
		name: fmt.Sprintf("FastABOD-k%d-w%d-s%d", k, workers, stride),
		mk: func(noInc bool) (*Monitor, *neighbors.Plane) {
			plane := neighbors.NewPlane(0)
			det := &detector.FastABOD{K: k, Workers: workers}
			det.SetNeighbors(plane)
			return mustMonitor(Config{
				WindowSize:    48,
				Stride:        stride,
				ZThreshold:    Threshold(2.5),
				Detector:      det,
				Plane:         plane,
				NoIncremental: noInc,
				Workers:       workers,
			}), plane
		},
	}
}

func cachedLOFArm(k, stride int) parityArm {
	return parityArm{
		name: fmt.Sprintf("CachedLOF-k%d-s%d", k, stride),
		mk: func(noInc bool) (*Monitor, *neighbors.Plane) {
			plane := neighbors.NewPlane(0)
			det := &detector.LOF{K: k}
			det.SetNeighbors(plane)
			return mustMonitor(Config{
				WindowSize:    48,
				Stride:        stride,
				ZThreshold:    Threshold(2.5),
				Detector:      detector.NewCached(det),
				Plane:         plane,
				NoIncremental: noInc,
			}), plane
		},
	}
}

func mustMonitor(cfg Config) *Monitor {
	m, err := NewMonitor(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

func alertKey(a Alert) string {
	return fmt.Sprintf("%d:%x:%x", a.Sequence, math.Float64bits(a.Score), math.Float64bits(a.ZScore))
}

// TestMonitorIncrementalAlertParity streams the same points (with periodic
// Flushes, including repeated zero-new-point Flushes that take the fast
// path) through an incremental and a cold-rebuild monitor, and requires the
// alert streams to be bit-identical — sequence, raw score, and z-score —
// across detectors, strides, worker counts, and slacks.
func TestMonitorIncrementalAlertParity(t *testing.T) {
	arms := []parityArm{
		lofArm(7, 1, 12, 4),
		lofArm(7, 4, 1, 0),
		lofArm(15, 4, 47, 8),
		abodArm(6, 1, 12),
		abodArm(6, 4, 5),
		cachedLOFArm(5, 12),
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			inc, _ := arm.mk(false)
			cold, _ := arm.mk(true)
			defer inc.Close()
			defer cold.Close()
			rng := rand.New(rand.NewSource(21))
			var incAlerts, coldAlerts []string
			push := func(p []float64) {
				a1, err1 := inc.Push(context.Background(), p)
				a2, err2 := cold.Push(context.Background(), p)
				if err1 != nil || err2 != nil {
					t.Fatalf("push: %v / %v", err1, err2)
				}
				for _, a := range a1 {
					incAlerts = append(incAlerts, alertKey(a))
				}
				for _, a := range a2 {
					coldAlerts = append(coldAlerts, alertKey(a))
				}
			}
			flush := func() {
				a1, err1 := inc.Flush(context.Background())
				a2, err2 := cold.Flush(context.Background())
				if err1 != nil || err2 != nil {
					t.Fatalf("flush: %v / %v", err1, err2)
				}
				for _, a := range a1 {
					incAlerts = append(incAlerts, alertKey(a))
				}
				for _, a := range a2 {
					coldAlerts = append(coldAlerts, alertKey(a))
				}
			}
			for i := 0; i < 300; i++ {
				p := inlier(rng)
				if i%53 == 17 {
					p = anomaly(rng)
				}
				push(p)
				if i%41 == 40 {
					flush()
					flush() // zero new points: the fast path, alert-identical
				}
			}
			if strings.Join(incAlerts, "\n") != strings.Join(coldAlerts, "\n") {
				t.Fatalf("alert streams diverged\nincremental (%d):\n%s\ncold (%d):\n%s",
					len(incAlerts), strings.Join(incAlerts, "\n"), len(coldAlerts), strings.Join(coldAlerts, "\n"))
			}
			if inc.Evaluations() != cold.Evaluations() {
				t.Fatalf("evaluations diverged: %d vs %d", inc.Evaluations(), cold.Evaluations())
			}
			st := inc.Stats()
			if !st.Incremental || st.Arrivals == 0 {
				t.Fatalf("incremental arm never engaged the engine: %s", st)
			}
			if cs := cold.Stats(); cs.Incremental {
				t.Fatal("NoIncremental arm ran the engine")
			}
			t.Logf("%d alerts each; incremental %s", len(incAlerts), st)
		})
	}
}

// TestMonitorFastFlush pins the zero-new-point Flush satellite: the window
// is not rebuilt (no new plane computation or publish, no detector pass),
// the evaluation counter still advances, and the flagging stage genuinely
// re-runs — with a MaxFlagsPerWindow cap, the runner-up that the first
// evaluation's cap suppressed is flagged by the second.
func TestMonitorFastFlush(t *testing.T) {
	plane := neighbors.NewPlane(0)
	det := &detector.LOF{K: 5}
	det.SetNeighbors(plane)
	m := mustMonitor(Config{
		WindowSize:        MinWindowSize,
		Stride:            MinWindowSize,
		ZThreshold:        Threshold(0),
		MaxFlagsPerWindow: 1,
		Detector:          det,
		Plane:             plane,
	})
	defer m.Close()
	rng := rand.New(rand.NewSource(13))
	var first []Alert
	for i := 0; i < MinWindowSize; i++ {
		alerts, err := m.Push(context.Background(), inlier(rng))
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, alerts...)
	}
	if len(first) != 1 {
		t.Fatalf("fill evaluation flagged %d points, want exactly the cap 1", len(first))
	}
	evalsBefore := m.Evaluations()
	publishesBefore := m.Stats().Publishes
	planeBefore := plane.Stats()
	second, err := m.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Evaluations() != evalsBefore+1 {
		t.Error("fast flush did not count as an evaluation")
	}
	st := m.Stats()
	if st.FastFlushes != 1 {
		t.Errorf("FastFlushes = %d, want 1", st.FastFlushes)
	}
	if st.Publishes != publishesBefore {
		t.Error("fast flush published a fresh neighbourhood")
	}
	planeAfter := plane.Stats()
	if planeAfter.Computations != planeBefore.Computations || planeAfter.Publishes != planeBefore.Publishes {
		t.Error("fast flush rebuilt plane state for an identical window")
	}
	// The cap suppressed the second-highest scorer; an honest re-run of the
	// flagging stage (what a full re-evaluation would also do) flags it now.
	if len(second) != 1 {
		t.Fatalf("fast flush flagged %d points, want the capped runner-up", len(second))
	}
	if second[0].Sequence == first[0].Sequence {
		t.Error("fast flush re-alerted the already-flagged point")
	}
	// A third flush continues down the ranking or runs dry — but never
	// re-alerts.
	third, err := m.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range third {
		if a.Sequence == first[0].Sequence || a.Sequence == second[0].Sequence {
			t.Error("repeated fast flush re-alerted a flagged point")
		}
	}
}

// TestMonitorPushDimValidation pins the dimensionality satellite: the first
// point (or FeatureNames) fixes d; a mismatched later point is rejected at
// Push with an error naming its stream sequence, and is not retained.
func TestMonitorPushDimValidation(t *testing.T) {
	m := mustMonitor(Config{WindowSize: MinWindowSize, Detector: &detector.LOF{K: 3}})
	ctx := context.Background()
	if _, err := m.Push(ctx, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, err := m.Push(ctx, []float64{1, 2})
	if err == nil {
		t.Fatal("mismatched point accepted")
	}
	if !strings.Contains(err.Error(), "sequence 1") {
		t.Errorf("error %q does not name the offending sequence", err)
	}
	if m.Seen() != 1 {
		t.Errorf("rejected point was retained (Seen=%d)", m.Seen())
	}
	// The stream continues fine at the established dimensionality.
	if _, err := m.Push(ctx, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}

	// Empty first point.
	m2 := mustMonitor(Config{WindowSize: MinWindowSize, Detector: &detector.LOF{K: 3}})
	if _, err := m2.Push(ctx, nil); err == nil {
		t.Error("empty first point accepted")
	}

	// FeatureNames fix d before any point arrives.
	m3 := mustMonitor(Config{
		WindowSize:   MinWindowSize,
		Detector:     &detector.LOF{K: 3},
		FeatureNames: []string{"a", "b"},
	})
	if _, err := m3.Push(ctx, []float64{1, 2, 3}); err == nil {
		t.Error("point wider than FeatureNames accepted")
	}
}

// referenceStreamMonitor builds the reference stream workload of the perf
// gate and the repair-fraction ceiling: W=256, stride=64, 20 dimensions,
// LOF k=15, default slack, over a seeded Gaussian stream.
func referenceStreamMonitor(t testing.TB, noInc bool, workers int) (*Monitor, *neighbors.Plane) {
	plane := neighbors.NewPlane(0)
	det := &detector.LOF{K: 15, Workers: workers}
	det.SetNeighbors(plane)
	m, err := NewMonitor(Config{
		WindowSize:    256,
		Stride:        64,
		ZThreshold:    Threshold(3),
		Detector:      det,
		Plane:         plane,
		NoIncremental: noInc,
		Workers:       workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, plane
}

func referencePoints(total int) [][]float64 {
	rng := rand.New(rand.NewSource(99))
	pts := make([][]float64, total)
	for i := range pts {
		p := make([]float64, 20)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

// TestStreamRepairFractionReference is the deterministic ceiling gate on
// the reference workload: the fraction of survivor k-lists that need a full
// rescan per stride must stay below the recorded ceiling. The stream is
// fully seeded and repair decisions are per-slot deterministic, so the
// fraction is exactly reproducible; a regression here means the reservoir
// slack or the truncation boundary got less effective. check.sh runs this
// test by name.
func TestStreamRepairFractionReference(t *testing.T) {
	m, _ := referenceStreamMonitor(t, false, 4)
	defer m.Close()
	for _, p := range referencePoints(256 + 64*20) {
		if _, err := m.Push(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Evaluations != 21 {
		t.Fatalf("%d evaluations, want 21", st.Evaluations)
	}
	if !st.Incremental || st.EngineRebuilds != 1 {
		t.Fatalf("engine did not stay live: %s", st)
	}
	// Measured 0.024 on the seeded stream (deterministic: per-slot repair
	// decisions do not depend on sharding); 0.05 leaves 2× headroom for
	// intentional heuristic changes while still catching a broken
	// truncation boundary (which sends the fraction toward 1).
	const ceiling = 0.05
	if f := st.RepairFraction(); f > ceiling {
		t.Errorf("repair fraction %.4f exceeds ceiling %.2f (%s)", f, ceiling, st)
	}
	t.Logf("reference workload: %s", st)
}

// TestMonitorIncrementalSoak extends the soak satellite: ≥ 50 full ring
// wraparounds on the incremental path, pinning bounded memory (plane
// entries, flagged set, pending arrivals) and a single engine build for the
// whole stream.
func TestMonitorIncrementalSoak(t *testing.T) {
	const (
		windowSize  = 40
		stride      = 20
		wraparounds = 50
	)
	plane := neighbors.NewPlane(0)
	det := &detector.LOF{K: 5}
	det.SetNeighbors(plane)
	m := mustMonitor(Config{
		WindowSize: windowSize,
		Stride:     stride,
		ZThreshold: Threshold(4),
		Detector:   det,
		Plane:      plane,
	})
	defer m.Close()
	rng := rand.New(rand.NewSource(31))
	total := windowSize * (wraparounds + 1)
	alerted := map[int]int{}
	for i := 0; i < total; i++ {
		p := inlier(rng)
		if i%89 == 0 && i > windowSize {
			p = anomaly(rng)
		}
		alerts, err := m.Push(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			alerted[a.Sequence]++
		}
		if live := m.FlaggedLive(); live > windowSize {
			t.Fatalf("flagged set grew past the window: %d", live)
		}
		if ps := plane.Stats(); ps.Entries > 4 {
			t.Fatalf("%d plane entries resident on a nil-explainer stream, want ≤ 4", ps.Entries)
		}
		// Slot dedup bounds the arrival backlog by the window size even
		// when evaluations are far apart (before the first fill, or a
		// stride lapping the ring).
		if len(m.pending) > windowSize {
			t.Fatalf("pending arrivals %d exceed the window %d", len(m.pending), windowSize)
		}
	}
	for seq, n := range alerted {
		if n != 1 {
			t.Errorf("sequence %d alerted %d times", seq, n)
		}
	}
	st := m.Stats()
	if st.EngineRebuilds != 1 {
		t.Errorf("engine rebuilt %d times over a steady stream, want 1", st.EngineRebuilds)
	}
	wantEvals := (total - windowSize) / stride
	if st.Evaluations != wantEvals+1 {
		t.Errorf("%d evaluations, want %d", st.Evaluations, wantEvals+1)
	}
	if st.Publishes != st.Evaluations {
		t.Errorf("publishes %d != evaluations %d", st.Publishes, st.Evaluations)
	}
	if ps := plane.Stats(); ps.Evictions != 0 {
		t.Errorf("plane fell back to LRU eviction (%d)", ps.Evictions)
	}
	t.Logf("incremental soak: %s; plane %s", st, plane.Stats())
}

package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"anex/internal/detector"
	"anex/internal/durable"
)

// The durable store is the intended production tombstone sink.
var _ Tombstones = (*durable.Store)(nil)

// quietMonitor is a small fast monitor that never alerts (threshold far
// beyond any z-score) — the rig for lifecycle tests.
func quietMonitor(t *testing.T, mutate func(*Config)) *Monitor {
	t.Helper()
	cfg := Config{
		WindowSize: MinWindowSize,
		Stride:     4,
		ZThreshold: Threshold(1000),
		Detector:   detector.NewLOF(3),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := NewMonitor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func feed(t *testing.T, m *Monitor, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		if _, err := m.Push(context.Background(), inlier(rng)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
}

// TestMonitorCloseIdempotent pins the Close contract: double Close is a
// no-op (not a double release), and a closed monitor refuses further
// pushes instead of silently re-registering cache entries it just freed.
func TestMonitorCloseIdempotent(t *testing.T) {
	m := quietMonitor(t, nil)
	feed(t, m, 2*MinWindowSize) // at least one evaluation → live prev window
	m.Close()
	m.Close() // must not panic or double-release
	if _, err := m.Push(context.Background(), []float64{0, 0, 0, 0}); !errors.Is(err, ErrClosed) {
		t.Errorf("Push after Close = %v, want ErrClosed", err)
	}
	if _, err := m.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
}

// recordingTombstones is a Tombstones sink capturing names, optionally
// failing.
type recordingTombstones struct {
	names []string
	err   error
}

func (r *recordingTombstones) AppendForget(name string) error {
	if r.err != nil {
		return r.err
	}
	r.names = append(r.names, name)
	return nil
}

// TestMonitorTombstonesExpiredWindows pins the durable hook: every window
// dataset the monitor expires — by a newer evaluation or by Close — is
// reported to the tombstone sink exactly once, in death order.
func TestMonitorTombstonesExpiredWindows(t *testing.T) {
	sink := &recordingTombstones{}
	m := quietMonitor(t, func(c *Config) { c.Tombstones = sink })
	feed(t, m, MinWindowSize+3*4) // evaluations 1..4: windows 1-3 expire in flight
	m.Close()                     // ...and window 4 dies with the monitor
	m.Close()                     // idempotent: no duplicate tombstone
	want := []string{"window-1", "window-2", "window-3", "window-4"}
	if fmt.Sprint(sink.names) != fmt.Sprint(want) {
		t.Errorf("tombstones = %v, want %v", sink.names, want)
	}
}

// TestMonitorTombstoneFailureSurfaces pins that a failing sink turns into
// an error on the Push that expired the window — not a silent drop.
func TestMonitorTombstoneFailureSurfaces(t *testing.T) {
	boom := errors.New("wal broken")
	sink := &recordingTombstones{err: boom}
	m := quietMonitor(t, func(c *Config) { c.Tombstones = sink })
	rng := rand.New(rand.NewSource(1))
	var sawErr error
	for i := 0; i < MinWindowSize+2*4 && sawErr == nil; i++ {
		_, sawErr = m.Push(context.Background(), inlier(rng))
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("pushes never surfaced the tombstone failure, got %v", sawErr)
	}
}

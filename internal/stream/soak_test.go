package stream

import (
	"context"
	"math/rand"
	"testing"

	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/neighbors"
)

// TestMonitorLongStreamBoundedFootprint is the long-stream soak: ≥ 50
// window evaluations with full ring wraparound, pinning that
//
//   - the flagged-sequence dedup set stays bounded by the window size
//     (pruned each evaluation) instead of growing one entry per alert,
//   - the neighbourhood plane and the detector's score memo hold entries
//     for at most the current + previous window (expired windows are
//     forgotten eagerly, not left to LRU pressure), and
//   - every flagged sequence is alerted exactly once, including points
//     whose window lifetime spans several overlapping evaluations.
func TestMonitorLongStreamBoundedFootprint(t *testing.T) {
	const (
		windowSize = 40
		stride     = 20
		minEvals   = 50
	)
	plane := neighbors.NewPlane(0)
	lof := detector.NewLOF(5)
	lof.SetNeighbors(plane)
	cached := detector.NewCached(lof)
	m, err := NewMonitor(Config{
		WindowSize: windowSize,
		Stride:     stride,
		ZThreshold: Threshold(4),
		Detector:   cached,
		Explainer:  &explain.Beam{Detector: cached, Width: 4, TopK: 2, FixedDim: true},
		Plane:      plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// One evaluation of a 4-feature window touches the full view plus the
	// Beam sweep's subspaces — under a dozen entries. Two windows may be
	// live at once (current + the previous, released next evaluation).
	const maxViewsPerWindow = 12
	rng := rand.New(rand.NewSource(7))
	alertCount := map[int]int{}
	for i := 0; m.Evaluations() < minEvals; i++ {
		p := inlier(rng)
		if i%97 == 0 && i > windowSize {
			p = anomaly(rng)
		}
		alerts, err := m.Push(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			alertCount[a.Sequence]++
		}
		if live := m.FlaggedLive(); live > windowSize {
			t.Fatalf("after %d pushes: %d flagged sequences tracked, window is %d", i+1, live, windowSize)
		}
		if ps := plane.Stats(); ps.Entries > 2*maxViewsPerWindow {
			t.Fatalf("after %d pushes: %d plane entries resident, want ≤ %d (2 live windows)", i+1, ps.Entries, 2*maxViewsPerWindow)
		}
		if cs := cached.CacheStats(); cs.Entries > 2*maxViewsPerWindow {
			t.Fatalf("after %d pushes: %d score-memo entries resident, want ≤ %d", i+1, cs.Entries, 2*maxViewsPerWindow)
		}
	}
	if len(alertCount) == 0 {
		t.Fatal("soak produced no alerts; the exactly-once assertion is vacuous")
	}
	for seq, n := range alertCount {
		if n != 1 {
			t.Errorf("sequence %d alerted %d times, want exactly 1", seq, n)
		}
	}
	// Eviction-free run: everything dropped was dropped by Forget.
	ps := plane.Stats()
	if ps.Forgets == 0 {
		t.Error("plane recorded no Forgets; expired windows were not released")
	}
	if ps.Evictions != 0 {
		t.Errorf("plane fell back to LRU eviction (%d) despite eager release", ps.Evictions)
	}
	// The incremental engine must have engaged under the memoised LOF
	// (windowScorerOf unwraps Cached) and survived every wraparound on the
	// one engine seeded at the first full window — rebuilding per stride
	// would silently defeat the amortisation this soak wraps around.
	st := m.Stats()
	if !st.Incremental {
		t.Error("incremental engine never engaged under the Cached LOF")
	}
	if st.EngineRebuilds != 1 {
		t.Errorf("engine rebuilt %d times across %d evaluations, want the single initial seed", st.EngineRebuilds, st.Evaluations)
	}
	t.Logf("soak: %d evals, %d alerts, plane %s, stream %s", m.Evaluations(), len(alertCount), ps, st)
}

// TestMonitorCloseReleasesLastWindow pins that Close forgets the final
// window's plane and memo entries, leaving a fully drained footprint.
func TestMonitorCloseReleasesLastWindow(t *testing.T) {
	plane := neighbors.NewPlane(0)
	lof := detector.NewLOF(5)
	lof.SetNeighbors(plane)
	cached := detector.NewCached(lof)
	m, err := NewMonitor(Config{
		WindowSize: MinWindowSize,
		Stride:     MinWindowSize,
		Detector:   cached,
		Plane:      plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2*MinWindowSize; i++ {
		if _, err := m.Push(context.Background(), inlier(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Evaluations() == 0 {
		t.Fatal("no evaluations ran")
	}
	m.Close()
	if n := plane.Stats().Entries; n != 0 {
		t.Errorf("%d plane entries resident after Close, want 0", n)
	}
	if n := cached.CacheStats().Entries; n != 0 {
		t.Errorf("%d score-memo entries resident after Close, want 0", n)
	}
}

// Package stream extends the testbed toward the paper's future-work
// direction (Section 6): outlier explanation over data in motion. A
// Monitor consumes points one at a time, maintains a sliding window,
// periodically re-runs an unsupervised detector over the window, and —
// because subspace explanations are descriptive and must be recomputed for
// every new bunch of data — re-explains each newly flagged point with a
// point-explanation algorithm before emitting it as an alert.
//
// Monitors are built for unbounded streams: per-evaluation state (the
// flagged-sequence dedup set, the window datasets' entries in the shared
// neighbourhood plane and in a memoising detector's score cache) is
// released as soon as it can no longer influence an alert, so a monitor's
// memory footprint is a function of the window size, not of stream length.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/neighbors"
	"anex/internal/stats"
)

// ErrClosed is returned by Push and Flush after Close: a closed monitor
// has released its cache entries and must not silently re-create them.
var ErrClosed = errors.New("stream: monitor closed")

// MinWindowSize is the smallest window a Monitor evaluates: below it the
// Z-score standardisation of the window's detector scores is too noisy to
// threshold. Both NewMonitor's validation and Flush's partial-window gate
// share this one constant.
const MinWindowSize = 8

// DefaultZThreshold is the flagging threshold applied when Config.ZThreshold
// is nil. Detector score distributions are typically right-skewed, so
// thresholds well above 3 are common for LOF.
const DefaultZThreshold = 3

// DefaultTargetDim is the explanation dimensionality applied when
// Config.TargetDim is zero.
const DefaultTargetDim = 2

// Threshold returns a pointer to z, for Config.ZThreshold. The pointer
// distinguishes "unset, use DefaultZThreshold" (nil) from a deliberate
// zero threshold (flag every point scoring above the window mean).
func Threshold(z float64) *float64 { return &z }

// Alert reports one flagged point together with its subspace explanation.
type Alert struct {
	// Sequence is the 0-based position of the point in the input stream.
	Sequence int
	// Point is a copy of the flagged point.
	Point []float64
	// Score is the detector's outlyingness score within the window, and
	// ZScore its standardised form.
	Score, ZScore float64
	// Explanation ranks the subspaces explaining the point within the
	// window (best first). Nil when the monitor's explainer is nil.
	Explanation []core.ScoredSubspace
}

// Config parameterises a Monitor. The zero value of every optional knob
// means "use the documented default"; knobs whose zero value is also a
// legitimate setting (ZThreshold) are pointers so that unset and zero stay
// distinguishable. SetDefaults resolves the sentinels in place.
type Config struct {
	// WindowSize is the number of most recent points evaluated together;
	// it must be at least MinWindowSize.
	WindowSize int
	// Stride is how many new points arrive between evaluations; zero
	// means WindowSize/4 (so consecutive windows overlap by 75 %). Zero is
	// a pure "unset" sentinel: a stride below 1 point is meaningless.
	Stride int
	// ZThreshold flags points whose standardised window score exceeds it;
	// nil means DefaultZThreshold. Use Threshold(0) for a genuine zero
	// threshold (flag everything above the window mean).
	ZThreshold *float64
	// MaxFlagsPerWindow caps how many points one evaluation may flag
	// (the highest-scored ones win); zero means no cap. It bounds the
	// false-alert rate the way a contamination assumption does.
	MaxFlagsPerWindow int
	// TargetDim is the explanation dimensionality; zero means
	// DefaultTargetDim (a zero-dimensional explanation is meaningless, so
	// zero is a pure "unset" sentinel).
	TargetDim int
	// Detector scores the window (required).
	Detector core.Detector
	// Explainer explains flagged points within the window. Nil disables
	// explanations (alerts carry scores only).
	Explainer core.PointExplainer
	// FeatureNames, when set, names the stream's features in the window
	// datasets handed to the explainer.
	FeatureNames []string
	// Plane is the neighbourhood plane the monitor's detector queries.
	// Every evaluation builds a fresh window dataset with a process-unique
	// identity, so without release the plane would accumulate entries for
	// dead windows until LRU pressure; the monitor instead calls
	// Plane.Forget for each expired window. Nil means the process-wide
	// neighbors.Shared() plane — the one the detector constructors wire in
	// by default. Forgetting a window from a plane the detector never
	// queried is a harmless no-op, so a mismatched Plane degrades to the
	// old LRU-only behaviour rather than corrupting anything.
	Plane *neighbors.Plane
	// Tombstones, when set, receives a forget record for every expired
	// window dataset — the hook that lets a durable deployment log the
	// death of ephemeral stream windows the same way it logs dataset
	// forgets (*durable.Store satisfies it). Append failures surface from
	// the Push/Flush that triggered the expiry; Close ignores them (the
	// store is typically already shut down at that point).
	Tombstones Tombstones
}

// Tombstones records that a named dataset is dead and must not be
// resurrected. *durable.Store implements it.
type Tombstones interface {
	AppendForget(name string) error
}

// SetDefaults resolves every unset knob to its documented default in
// place: Stride 0 → WindowSize/4 (at least 1), ZThreshold nil →
// DefaultZThreshold, TargetDim 0 → DefaultTargetDim, Plane nil →
// neighbors.Shared(). NewMonitor applies it to its private copy of the
// configuration; callers only need it to inspect resolved values.
func (c *Config) SetDefaults() {
	if c.Stride == 0 {
		c.Stride = c.WindowSize / 4
		if c.Stride < 1 {
			c.Stride = 1
		}
	}
	if c.ZThreshold == nil {
		c.ZThreshold = Threshold(DefaultZThreshold)
	}
	if c.TargetDim == 0 {
		c.TargetDim = DefaultTargetDim
	}
	if c.Plane == nil {
		c.Plane = neighbors.Shared()
	}
}

func (c *Config) validate() error {
	if c.WindowSize < MinWindowSize {
		return fmt.Errorf("stream: window size %d too small (need ≥ %d)", c.WindowSize, MinWindowSize)
	}
	if c.Detector == nil {
		return fmt.Errorf("stream: nil detector")
	}
	if c.Stride < 0 {
		return fmt.Errorf("stream: negative stride")
	}
	return nil
}

// cacheForgetter is the optional release hook of score-memoising detectors
// (detector.Cached): dropping every memo entry of one named dataset.
type cacheForgetter interface {
	Forget(datasetName string)
}

// Monitor is a sliding-window outlier detection + explanation pipeline.
// It is not safe for concurrent use.
type Monitor struct {
	cfg       Config
	stride    int
	threshold float64
	targetDim int

	window    [][]float64 // ring buffer of copies
	seq       []int       // stream sequence number per window slot
	next      int         // ring position of the next write
	filled    bool
	sinceEval int
	total     int

	flagged map[int]bool     // live sequence numbers already alerted
	prev    *dataset.Dataset // previous evaluation's window, released next eval
	evals   int
	closed  bool
}

// NewMonitor builds a Monitor from the configuration (defaults applied to a
// private copy; the caller's Config is not mutated).
func NewMonitor(cfg Config) (*Monitor, error) {
	cfg.SetDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:       cfg,
		stride:    cfg.Stride,
		threshold: *cfg.ZThreshold,
		targetDim: cfg.TargetDim,
		window:    make([][]float64, 0, cfg.WindowSize),
		seq:       make([]int, 0, cfg.WindowSize),
		flagged:   make(map[int]bool),
	}, nil
}

// Evaluations returns how many window evaluations have run.
func (m *Monitor) Evaluations() int { return m.evals }

// Seen returns how many points have been pushed.
func (m *Monitor) Seen() int { return m.total }

// FlaggedLive returns how many already-alerted sequence numbers the monitor
// still tracks. Pruning keeps it bounded by the window size regardless of
// stream length — the observability hook of the soak test.
func (m *Monitor) FlaggedLive() int { return len(m.flagged) }

// Push consumes one point and returns any alerts raised by the evaluation
// it may trigger. The point is copied; the caller may reuse the slice.
// Cancelling ctx aborts a triggered evaluation with ctx's error; the pushed
// point is retained either way.
func (m *Monitor) Push(ctx context.Context, point []float64) ([]Alert, error) {
	if m.closed {
		return nil, ErrClosed
	}
	cp := make([]float64, len(point))
	copy(cp, point)
	if len(m.window) < m.cfg.WindowSize {
		m.window = append(m.window, cp)
		m.seq = append(m.seq, m.total)
	} else {
		m.filled = true
		m.window[m.next] = cp
		m.seq[m.next] = m.total
		m.next = (m.next + 1) % m.cfg.WindowSize
	}
	m.total++
	m.sinceEval++

	windowFull := m.filled || len(m.window) == m.cfg.WindowSize
	if !windowFull || m.sinceEval < m.stride {
		return nil, nil
	}
	m.sinceEval = 0
	return m.evaluate(ctx)
}

// Flush forces an evaluation of the current window if it holds at least
// MinWindowSize points, regardless of stride position.
func (m *Monitor) Flush(ctx context.Context) ([]Alert, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if len(m.window) < MinWindowSize {
		return nil, nil
	}
	m.sinceEval = 0
	return m.evaluate(ctx)
}

// Close releases the cache entries of the monitor's current and previous
// window datasets and marks the monitor closed: further Push/Flush calls
// return ErrClosed, and repeated Close calls are no-ops. Optional: a
// monitor abandoned without Close leaks at most those two windows' cache
// entries until LRU pressure reclaims them. Tombstone-append failures are
// ignored here — at Close time the durable store is often already gone.
func (m *Monitor) Close() {
	if m.closed {
		return
	}
	m.closed = true
	_ = m.release(m.prev)
	m.prev = nil
}

// release forgets one dead window dataset from the neighbourhood plane and
// from the detector's score memo (when the detector keeps one), then logs
// the death to the configured tombstone sink. Cache release runs even when
// the tombstone append fails — a failed log must not pin memory.
func (m *Monitor) release(ds *dataset.Dataset) error {
	if ds == nil {
		return nil
	}
	m.cfg.Plane.Forget(ds.SourceKey())
	if f, ok := m.cfg.Detector.(cacheForgetter); ok {
		f.Forget(ds.Name())
	}
	if m.cfg.Tombstones != nil {
		if err := m.cfg.Tombstones.AppendForget(ds.Name()); err != nil {
			return fmt.Errorf("stream: tombstone window %q: %w", ds.Name(), err)
		}
	}
	return nil
}

// pruneFlagged drops alerted sequence numbers older than the oldest live
// window slot. Without pruning the dedup set grows one entry per alert for
// the lifetime of the stream; with it the set is bounded by the window
// size, and dedup semantics are unchanged — an expired sequence can never
// reappear in a window, so its entry can no longer suppress anything.
func (m *Monitor) pruneFlagged() {
	if len(m.flagged) == 0 || len(m.seq) == 0 {
		return
	}
	oldest := m.seq[0]
	for _, s := range m.seq[1:] {
		if s < oldest {
			oldest = s
		}
	}
	for s := range m.flagged {
		if s < oldest {
			delete(m.flagged, s)
		}
	}
}

func (m *Monitor) evaluate(ctx context.Context) ([]Alert, error) {
	m.evals++
	m.pruneFlagged()
	ds, err := dataset.FromRows(fmt.Sprintf("window-%d", m.evals), m.window, m.featureNames())
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	// The previous evaluation's window dataset can no longer influence any
	// alert: release its plane and score-memo entries before the new
	// window's are computed, so a long stream holds a bounded footprint of
	// at most two windows (current + the one released here next round).
	releaseErr := m.release(m.prev)
	m.prev = ds
	if releaseErr != nil {
		return nil, releaseErr
	}
	scores, err := m.cfg.Detector.Scores(ctx, ds.FullView())
	if err != nil {
		return nil, fmt.Errorf("stream: score window %d: %w", m.evals, err)
	}
	z := stats.ZScores(scores)
	candidates := make([]int, 0, 4)
	for i, zi := range z {
		if zi >= m.threshold && !m.flagged[m.seq[i]] {
			candidates = append(candidates, i)
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return z[candidates[a]] > z[candidates[b]] })
	if limit := m.cfg.MaxFlagsPerWindow; limit > 0 && len(candidates) > limit {
		candidates = candidates[:limit]
	}
	var alerts []Alert
	for _, i := range candidates {
		m.flagged[m.seq[i]] = true
		alert := Alert{
			Sequence: m.seq[i],
			Point:    append([]float64(nil), m.window[i]...),
			Score:    scores[i],
			ZScore:   z[i],
		}
		if m.cfg.Explainer != nil {
			expl, err := m.cfg.Explainer.ExplainPoint(ctx, ds, i, m.targetDim)
			if err != nil {
				return alerts, fmt.Errorf("stream: explain sequence %d: %w", m.seq[i], err)
			}
			alert.Explanation = expl
		}
		alerts = append(alerts, alert)
	}
	return alerts, nil
}

func (m *Monitor) featureNames() []string {
	if m.cfg.FeatureNames == nil {
		return nil
	}
	names := make([]string, len(m.cfg.FeatureNames))
	copy(names, m.cfg.FeatureNames)
	return names
}

// Package stream extends the testbed toward the paper's future-work
// direction (Section 6): outlier explanation over data in motion. A
// Monitor consumes points one at a time, maintains a sliding window,
// periodically re-runs an unsupervised detector over the window, and —
// because subspace explanations are descriptive and must be recomputed for
// every new bunch of data — re-explains each newly flagged point with a
// point-explanation algorithm before emitting it as an alert.
package stream

import (
	"context"
	"fmt"
	"sort"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
)

// Alert reports one flagged point together with its subspace explanation.
type Alert struct {
	// Sequence is the 0-based position of the point in the input stream.
	Sequence int
	// Point is a copy of the flagged point.
	Point []float64
	// Score is the detector's outlyingness score within the window, and
	// ZScore its standardised form.
	Score, ZScore float64
	// Explanation ranks the subspaces explaining the point within the
	// window (best first). Nil when the monitor's explainer is nil.
	Explanation []core.ScoredSubspace
}

// Config parameterises a Monitor.
type Config struct {
	// WindowSize is the number of most recent points evaluated together.
	WindowSize int
	// Stride is how many new points arrive between evaluations; zero
	// means WindowSize/4 (so consecutive windows overlap by 75 %).
	Stride int
	// ZThreshold flags points whose standardised window score exceeds
	// it; zero means 3. Detector score distributions are typically
	// right-skewed, so thresholds well above 3 are common for LOF.
	ZThreshold float64
	// MaxFlagsPerWindow caps how many points one evaluation may flag
	// (the highest-scored ones win); zero means no cap. It bounds the
	// false-alert rate the way a contamination assumption does.
	MaxFlagsPerWindow int
	// TargetDim is the explanation dimensionality; zero means 2.
	TargetDim int
	// Detector scores the window (required).
	Detector core.Detector
	// Explainer explains flagged points within the window. Nil disables
	// explanations (alerts carry scores only).
	Explainer core.PointExplainer
	// FeatureNames, when set, names the stream's features in the window
	// datasets handed to the explainer.
	FeatureNames []string
}

func (c *Config) validate() error {
	if c.WindowSize < 8 {
		return fmt.Errorf("stream: window size %d too small (need ≥ 8)", c.WindowSize)
	}
	if c.Detector == nil {
		return fmt.Errorf("stream: nil detector")
	}
	if c.Stride < 0 {
		return fmt.Errorf("stream: negative stride")
	}
	return nil
}

// Monitor is a sliding-window outlier detection + explanation pipeline.
// It is not safe for concurrent use.
type Monitor struct {
	cfg       Config
	stride    int
	threshold float64
	targetDim int

	window    [][]float64 // ring buffer of copies
	seq       []int       // stream sequence number per window slot
	next      int         // ring position of the next write
	filled    bool
	sinceEval int
	total     int

	flagged map[int]bool // sequence numbers already alerted
	evals   int
}

// NewMonitor builds a Monitor from the configuration.
func NewMonitor(cfg Config) (*Monitor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:       cfg,
		stride:    cfg.Stride,
		threshold: cfg.ZThreshold,
		targetDim: cfg.TargetDim,
		window:    make([][]float64, 0, cfg.WindowSize),
		seq:       make([]int, 0, cfg.WindowSize),
		flagged:   make(map[int]bool),
	}
	if m.stride == 0 {
		m.stride = cfg.WindowSize / 4
		if m.stride < 1 {
			m.stride = 1
		}
	}
	if m.threshold == 0 {
		m.threshold = 3
	}
	if m.targetDim == 0 {
		m.targetDim = 2
	}
	return m, nil
}

// Evaluations returns how many window evaluations have run.
func (m *Monitor) Evaluations() int { return m.evals }

// Seen returns how many points have been pushed.
func (m *Monitor) Seen() int { return m.total }

// Push consumes one point and returns any alerts raised by the evaluation
// it may trigger. The point is copied; the caller may reuse the slice.
// Cancelling ctx aborts a triggered evaluation with ctx's error; the pushed
// point is retained either way.
func (m *Monitor) Push(ctx context.Context, point []float64) ([]Alert, error) {
	cp := make([]float64, len(point))
	copy(cp, point)
	if len(m.window) < m.cfg.WindowSize {
		m.window = append(m.window, cp)
		m.seq = append(m.seq, m.total)
	} else {
		m.filled = true
		m.window[m.next] = cp
		m.seq[m.next] = m.total
		m.next = (m.next + 1) % m.cfg.WindowSize
	}
	m.total++
	m.sinceEval++

	windowFull := m.filled || len(m.window) == m.cfg.WindowSize
	if !windowFull || m.sinceEval < m.stride {
		return nil, nil
	}
	m.sinceEval = 0
	return m.evaluate(ctx)
}

// Flush forces an evaluation of the current window if it holds at least 8
// points, regardless of stride position.
func (m *Monitor) Flush(ctx context.Context) ([]Alert, error) {
	if len(m.window) < 8 {
		return nil, nil
	}
	m.sinceEval = 0
	return m.evaluate(ctx)
}

func (m *Monitor) evaluate(ctx context.Context) ([]Alert, error) {
	m.evals++
	ds, err := dataset.FromRows(fmt.Sprintf("window-%d", m.evals), m.window, m.featureNames())
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	scores, err := m.cfg.Detector.Scores(ctx, ds.FullView())
	if err != nil {
		return nil, fmt.Errorf("stream: score window %d: %w", m.evals, err)
	}
	z := stats.ZScores(scores)
	candidates := make([]int, 0, 4)
	for i, zi := range z {
		if zi >= m.threshold && !m.flagged[m.seq[i]] {
			candidates = append(candidates, i)
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return z[candidates[a]] > z[candidates[b]] })
	if limit := m.cfg.MaxFlagsPerWindow; limit > 0 && len(candidates) > limit {
		candidates = candidates[:limit]
	}
	var alerts []Alert
	for _, i := range candidates {
		m.flagged[m.seq[i]] = true
		alert := Alert{
			Sequence: m.seq[i],
			Point:    append([]float64(nil), m.window[i]...),
			Score:    scores[i],
			ZScore:   z[i],
		}
		if m.cfg.Explainer != nil {
			expl, err := m.cfg.Explainer.ExplainPoint(ctx, ds, i, m.targetDim)
			if err != nil {
				return alerts, fmt.Errorf("stream: explain sequence %d: %w", m.seq[i], err)
			}
			alert.Explanation = expl
		}
		alerts = append(alerts, alert)
	}
	return alerts, nil
}

func (m *Monitor) featureNames() []string {
	if m.cfg.FeatureNames == nil {
		return nil
	}
	names := make([]string, len(m.cfg.FeatureNames))
	copy(names, m.cfg.FeatureNames)
	return names
}

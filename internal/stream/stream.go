// Package stream extends the testbed toward the paper's future-work
// direction (Section 6): outlier explanation over data in motion. A
// Monitor consumes points one at a time, maintains a sliding window,
// periodically re-runs an unsupervised detector over the window, and —
// because subspace explanations are descriptive and must be recomputed for
// every new bunch of data — re-explains each newly flagged point with a
// point-explanation algorithm before emitting it as an alert.
//
// Monitors are built for unbounded streams: per-evaluation state (the
// flagged-sequence dedup set, the window datasets' entries in the shared
// neighbourhood plane and in a memoising detector's score cache) is
// released as soon as it can no longer influence an alert, so a monitor's
// memory footprint is a function of the window size, not of stream length.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/stats"
)

// ErrClosed is returned by Push and Flush after Close: a closed monitor
// has released its cache entries and must not silently re-create them.
var ErrClosed = errors.New("stream: monitor closed")

// MinWindowSize is the smallest window a Monitor evaluates: below it the
// Z-score standardisation of the window's detector scores is too noisy to
// threshold. Both NewMonitor's validation and Flush's partial-window gate
// share this one constant.
const MinWindowSize = 8

// DefaultZThreshold is the flagging threshold applied when Config.ZThreshold
// is nil. Detector score distributions are typically right-skewed, so
// thresholds well above 3 are common for LOF.
const DefaultZThreshold = 3

// DefaultTargetDim is the explanation dimensionality applied when
// Config.TargetDim is zero.
const DefaultTargetDim = 2

// Threshold returns a pointer to z, for Config.ZThreshold. The pointer
// distinguishes "unset, use DefaultZThreshold" (nil) from a deliberate
// zero threshold (flag every point scoring above the window mean).
func Threshold(z float64) *float64 { return &z }

// Alert reports one flagged point together with its subspace explanation.
type Alert struct {
	// Sequence is the 0-based position of the point in the input stream.
	Sequence int
	// Point is a copy of the flagged point.
	Point []float64
	// Score is the detector's outlyingness score within the window, and
	// ZScore its standardised form.
	Score, ZScore float64
	// Explanation ranks the subspaces explaining the point within the
	// window (best first). Nil when the monitor's explainer is nil.
	Explanation []core.ScoredSubspace
}

// Config parameterises a Monitor. The zero value of every optional knob
// means "use the documented default"; knobs whose zero value is also a
// legitimate setting (ZThreshold) are pointers so that unset and zero stay
// distinguishable. SetDefaults resolves the sentinels in place.
type Config struct {
	// WindowSize is the number of most recent points evaluated together;
	// it must be at least MinWindowSize.
	WindowSize int
	// Stride is how many new points arrive between evaluations; zero
	// means WindowSize/4 (so consecutive windows overlap by 75 %). Zero is
	// a pure "unset" sentinel: a stride below 1 point is meaningless.
	Stride int
	// ZThreshold flags points whose standardised window score exceeds it;
	// nil means DefaultZThreshold. Use Threshold(0) for a genuine zero
	// threshold (flag everything above the window mean).
	ZThreshold *float64
	// MaxFlagsPerWindow caps how many points one evaluation may flag
	// (the highest-scored ones win); zero means no cap. It bounds the
	// false-alert rate the way a contamination assumption does.
	MaxFlagsPerWindow int
	// TargetDim is the explanation dimensionality; zero means
	// DefaultTargetDim (a zero-dimensional explanation is meaningless, so
	// zero is a pure "unset" sentinel).
	TargetDim int
	// Detector scores the window (required).
	Detector core.Detector
	// Explainer explains flagged points within the window. Nil disables
	// explanations (alerts carry scores only).
	Explainer core.PointExplainer
	// FeatureNames, when set, names the stream's features in the window
	// datasets handed to the explainer.
	FeatureNames []string
	// Plane is the neighbourhood plane the monitor's detector queries.
	// Every evaluation builds a fresh window dataset with a process-unique
	// identity, so without release the plane would accumulate entries for
	// dead windows until LRU pressure; the monitor instead calls
	// Plane.Forget for each expired window. Nil means the process-wide
	// neighbors.Shared() plane — the one the detector constructors wire in
	// by default. Forgetting a window from a plane the detector never
	// queried is a harmless no-op, so a mismatched Plane degrades to the
	// old LRU-only behaviour rather than corrupting anything.
	Plane *neighbors.Plane
	// Tombstones, when set, receives a forget record for every expired
	// window dataset — the hook that lets a durable deployment log the
	// death of ephemeral stream windows the same way it logs dataset
	// forgets (*durable.Store satisfies it). Append failures surface from
	// the Push/Flush that triggered the expiry; Close ignores them (the
	// store is typically already shut down at that point).
	Tombstones Tombstones
	// NoIncremental disables the incremental neighbourhood engine: every
	// evaluation rebuilds the window's kNN structure and re-scores every
	// point cold, the pre-engine behaviour. Alerts are bit-identical either
	// way (the engine's contract); the knob exists for A/B benchmarking and
	// as an escape hatch.
	NoIncremental bool
	// Slack is the incremental engine's per-point reservoir headroom: each
	// maintained neighbour list holds k+slack entries so that expiries can
	// be absorbed without a rescan. Nil means neighbors.DefaultWindowSlack;
	// use Slack(0) for a deliberate zero (rescan on every prefix expiry).
	Slack *int
	// Workers bounds the goroutines of the engine's scan and repair
	// phases; values ≤ 1 (including zero) stay serial. Results are
	// identical at any worker count.
	Workers int
}

// Slack returns a pointer to s, for Config.Slack. The pointer distinguishes
// "unset, use neighbors.DefaultWindowSlack" (nil) from a deliberate zero
// reservoir.
func Slack(s int) *int { return &s }

// Tombstones records that a named dataset is dead and must not be
// resurrected. *durable.Store implements it.
type Tombstones interface {
	AppendForget(name string) error
}

// SetDefaults resolves every unset knob to its documented default in
// place: Stride 0 → WindowSize/4 (at least 1), ZThreshold nil →
// DefaultZThreshold, TargetDim 0 → DefaultTargetDim, Plane nil →
// neighbors.Shared(). NewMonitor applies it to its private copy of the
// configuration; callers only need it to inspect resolved values.
func (c *Config) SetDefaults() {
	if c.Stride == 0 {
		c.Stride = c.WindowSize / 4
		if c.Stride < 1 {
			c.Stride = 1
		}
	}
	if c.ZThreshold == nil {
		c.ZThreshold = Threshold(DefaultZThreshold)
	}
	if c.TargetDim == 0 {
		c.TargetDim = DefaultTargetDim
	}
	if c.Plane == nil {
		c.Plane = neighbors.Shared()
	}
}

func (c *Config) validate() error {
	if c.WindowSize < MinWindowSize {
		return fmt.Errorf("stream: window size %d too small (need ≥ %d)", c.WindowSize, MinWindowSize)
	}
	if c.Detector == nil {
		return fmt.Errorf("stream: nil detector")
	}
	if c.Stride < 0 {
		return fmt.Errorf("stream: negative stride")
	}
	if c.Slack != nil && *c.Slack < 0 {
		return fmt.Errorf("stream: negative slack")
	}
	return nil
}

// cacheForgetter is the optional release hook of score-memoising detectors
// (detector.Cached): dropping every memo entry of one named dataset.
type cacheForgetter interface {
	Forget(datasetName string)
}

// Monitor is a sliding-window outlier detection + explanation pipeline.
// It is not safe for concurrent use.
type Monitor struct {
	cfg       Config
	stride    int
	threshold float64
	targetDim int

	window    [][]float64 // ring buffer of copies
	seq       []int       // stream sequence number per window slot
	next      int         // ring position of the next write
	filled    bool
	sinceEval int
	total     int
	dim       int // fixed by the first pushed point (or FeatureNames)

	flagged map[int]bool     // live sequence numbers already alerted
	prev    *dataset.Dataset // previous evaluation's window, released next eval
	evals   int
	closed  bool

	// Incremental engine state. ws is the detector's window-scoring face
	// (nil when the detector has none, or Config.NoIncremental is set);
	// pending accumulates the arrivals since the last engine application,
	// deduplicated by slot so a stride that laps the window delivers only
	// each slot's final occupant.
	ws      detector.WindowScorer
	eng     *neighbors.WindowEngine
	winK    int // depth the live engine maintains
	memo    *detector.WindowMemo
	pending []neighbors.WindowArrival

	// Fast-Flush memo: the previous successful evaluation's scores (a
	// private copy) and the stream position they were computed at. A Flush
	// that arrives with no new points re-serves these instead of rebuilding
	// an identical window.
	lastScores []float64
	lastTotal  int

	stats StreamStats
}

// NewMonitor builds a Monitor from the configuration (defaults applied to a
// private copy; the caller's Config is not mutated).
func NewMonitor(cfg Config) (*Monitor, error) {
	cfg.SetDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		cfg:       cfg,
		stride:    cfg.Stride,
		threshold: *cfg.ZThreshold,
		targetDim: cfg.TargetDim,
		window:    make([][]float64, 0, cfg.WindowSize),
		seq:       make([]int, 0, cfg.WindowSize),
		flagged:   make(map[int]bool),
		lastTotal: -1,
	}
	if !cfg.NoIncremental {
		m.ws = windowScorerOf(cfg.Detector)
	}
	return m, nil
}

// windowScorerOf resolves the detector's incremental scoring face, reaching
// through a detector.Cached wrapper: window datasets carry fresh
// process-unique names, so the score memo never hits on them, and the
// incremental path's own reuse subsumes it.
func windowScorerOf(d core.Detector) detector.WindowScorer {
	if ws, ok := d.(detector.WindowScorer); ok {
		return ws
	}
	if c, ok := d.(*detector.Cached); ok {
		if ws, ok := c.Inner().(detector.WindowScorer); ok {
			return ws
		}
	}
	return nil
}

// Evaluations returns how many window evaluations have run.
func (m *Monitor) Evaluations() int { return m.evals }

// Seen returns how many points have been pushed.
func (m *Monitor) Seen() int { return m.total }

// FlaggedLive returns how many already-alerted sequence numbers the monitor
// still tracks. Pruning keeps it bounded by the window size regardless of
// stream length — the observability hook of the soak test.
func (m *Monitor) FlaggedLive() int { return len(m.flagged) }

// Push consumes one point and returns any alerts raised by the evaluation
// it may trigger. The point is copied; the caller may reuse the slice.
// Cancelling ctx aborts a triggered evaluation with ctx's error; the pushed
// point is retained either way.
//
// The first pushed point (or a configured FeatureNames) fixes the stream's
// dimensionality; a later point of a different width is rejected here — by
// an error naming its stream sequence, before the point is retained —
// instead of failing deep inside the next evaluation's dataset build.
func (m *Monitor) Push(ctx context.Context, point []float64) ([]Alert, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if err := m.checkDim(point); err != nil {
		return nil, err
	}
	cp := make([]float64, len(point))
	copy(cp, point)
	slot := len(m.window)
	if slot < m.cfg.WindowSize {
		m.window = append(m.window, cp)
		m.seq = append(m.seq, m.total)
	} else {
		m.filled = true
		slot = m.next
		m.window[m.next] = cp
		m.seq[m.next] = m.total
		m.next = (m.next + 1) % m.cfg.WindowSize
	}
	m.recordArrival(slot, cp)
	m.total++
	m.sinceEval++

	windowFull := m.filled || len(m.window) == m.cfg.WindowSize
	if !windowFull || m.sinceEval < m.stride {
		return nil, nil
	}
	m.sinceEval = 0
	return m.evaluate(ctx)
}

// checkDim validates one incoming point's width against the stream's fixed
// dimensionality, establishing it from the first point (cross-checked
// against FeatureNames when configured).
func (m *Monitor) checkDim(point []float64) error {
	if m.dim == 0 {
		if len(point) == 0 {
			return fmt.Errorf("stream: point at sequence %d has no features", m.total)
		}
		if n := len(m.cfg.FeatureNames); n > 0 && n != len(point) {
			return fmt.Errorf("stream: point at sequence %d has %d features, want %d (FeatureNames)", m.total, len(point), n)
		}
		m.dim = len(point)
		return nil
	}
	if len(point) != m.dim {
		return fmt.Errorf("stream: point at sequence %d has %d features, want %d", m.total, len(point), m.dim)
	}
	return nil
}

// recordArrival remembers the slot's newest occupant for the incremental
// engine, keeping only the final occupant when one stride laps the slot
// twice. A no-op when no engine will consume it.
func (m *Monitor) recordArrival(slot int, p []float64) {
	if m.ws == nil {
		return
	}
	for i := range m.pending {
		if m.pending[i].Slot == slot {
			m.pending[i].Point = p
			return
		}
	}
	m.pending = append(m.pending, neighbors.WindowArrival{Slot: slot, Point: p})
}

// Flush forces an evaluation of the current window if it holds at least
// MinWindowSize points, regardless of stride position. A Flush with no new
// points since the last evaluation does not rebuild the (identical) window:
// it re-serves the previous evaluation's scores and re-runs only the
// flagging stage — exactly what a full re-evaluation of the same rows would
// compute, without a fresh dataset identity, plane entry, or score pass.
func (m *Monitor) Flush(ctx context.Context) ([]Alert, error) {
	if m.closed {
		return nil, ErrClosed
	}
	if len(m.window) < MinWindowSize {
		return nil, nil
	}
	m.sinceEval = 0
	if m.prev != nil && m.lastScores != nil && m.total == m.lastTotal {
		m.evals++
		m.stats.Evaluations++
		m.stats.FastFlushes++
		m.pruneFlagged()
		return m.flag(ctx, m.prev, m.lastScores)
	}
	return m.evaluate(ctx)
}

// Close releases the cache entries of the monitor's current and previous
// window datasets and marks the monitor closed: further Push/Flush calls
// return ErrClosed, and repeated Close calls are no-ops. Optional: a
// monitor abandoned without Close leaks at most those two windows' cache
// entries until LRU pressure reclaims them. Tombstone-append failures are
// ignored here — at Close time the durable store is often already gone.
func (m *Monitor) Close() {
	if m.closed {
		return
	}
	m.closed = true
	_ = m.release(m.prev)
	m.prev = nil
	m.dropEngine()
	m.lastScores = nil
	m.pending = nil
}

// release forgets one dead window dataset from the neighbourhood plane and
// from the detector's score memo (when the detector keeps one), then logs
// the death to the configured tombstone sink. Cache release runs even when
// the tombstone append fails — a failed log must not pin memory.
func (m *Monitor) release(ds *dataset.Dataset) error {
	if ds == nil {
		return nil
	}
	m.cfg.Plane.Forget(ds.SourceKey())
	if f, ok := m.cfg.Detector.(cacheForgetter); ok {
		f.Forget(ds.Name())
	}
	if m.cfg.Tombstones != nil {
		if err := m.cfg.Tombstones.AppendForget(ds.Name()); err != nil {
			return fmt.Errorf("stream: tombstone window %q: %w", ds.Name(), err)
		}
	}
	return nil
}

// pruneFlagged drops alerted sequence numbers older than the oldest live
// window slot. Without pruning the dedup set grows one entry per alert for
// the lifetime of the stream; with it the set is bounded by the window
// size, and dedup semantics are unchanged — an expired sequence can never
// reappear in a window, so its entry can no longer suppress anything.
func (m *Monitor) pruneFlagged() {
	if len(m.flagged) == 0 || len(m.seq) == 0 {
		return
	}
	oldest := m.seq[0]
	for _, s := range m.seq[1:] {
		if s < oldest {
			oldest = s
		}
	}
	for s := range m.flagged {
		if s < oldest {
			delete(m.flagged, s)
		}
	}
}

func (m *Monitor) evaluate(ctx context.Context) ([]Alert, error) {
	m.evals++
	m.stats.Evaluations++
	m.pruneFlagged()
	ds, err := dataset.FromRows(fmt.Sprintf("window-%d", m.evals), m.window, m.featureNames())
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	// The previous evaluation's window dataset can no longer influence any
	// alert: release its plane and score-memo entries before the new
	// window's are computed, so a long stream holds a bounded footprint of
	// at most two windows (current + the one released here next round).
	releaseErr := m.release(m.prev)
	m.prev = ds
	if releaseErr != nil {
		return nil, releaseErr
	}
	scores, err := m.score(ctx, ds)
	if err != nil {
		return nil, fmt.Errorf("stream: score window %d: %w", m.evals, err)
	}
	m.lastScores = append(m.lastScores[:0], scores...)
	m.lastTotal = m.total
	return m.flag(ctx, ds, scores)
}

// score produces the window's detector scores, through the incremental
// engine when the detector supports it and cold otherwise. Z-
// standardisation and flagging always run over the full window either way,
// so alert semantics do not depend on the path taken.
func (m *Monitor) score(ctx context.Context, ds *dataset.Dataset) ([]float64, error) {
	n := len(m.window)
	if m.ws != nil {
		scores, ok, err := m.scoreIncremental(ctx, ds)
		if err != nil {
			return nil, err
		}
		if ok {
			return scores, nil
		}
	}
	m.pending = m.pending[:0]
	scores, err := m.cfg.Detector.Scores(ctx, ds.FullView())
	if err == nil {
		m.stats.Scored += n
		m.stats.Rescored += n
	}
	return scores, err
}

// scoreIncremental advances the window engine by the pending arrivals,
// publishes the maintained neighbourhood to the plane under the fresh
// window dataset's key (so explainers and co-resident consumers reuse it
// instead of recomputing), and re-scores only the dirty slots. ok=false
// (without error) means the degenerate fallback: score cold.
func (m *Monitor) scoreIncremental(ctx context.Context, ds *dataset.Dataset) ([]float64, bool, error) {
	if err := m.ensureEngine(ctx); err != nil {
		return nil, false, err
	}
	if len(m.pending) > 0 {
		if err := m.eng.Apply(ctx, m.pending); err != nil {
			// The engine is undefined after a failed Apply; discard it so
			// the next evaluation rebuilds cold.
			m.dropEngine()
			return nil, false, err
		}
		m.pending = m.pending[:0]
	}
	idx, dist, mk, stride := m.eng.Neighborhood()
	if mk < 1 {
		return nil, false, nil
	}
	dirty := m.eng.TakeDirty()
	m.cfg.Plane.Publish(ds.FullView(), m.eng.K(), mk, idx, dist)
	m.stats.Publishes++
	scores, rescored := m.ws.ScoresWindow(m.window, idx, dist, mk, stride, dirty, m.memo)
	m.stats.Scored += len(scores)
	m.stats.Rescored += rescored
	return scores, true, nil
}

// ensureEngine makes the window engine live at the right depth, seeding it
// from the full current window (one cold build) on first use or when the
// required depth grew — the plane's kmax can rise as consumers register.
func (m *Monitor) ensureEngine(ctx context.Context) error {
	winK := m.ws.WindowK()
	if pk := m.cfg.Plane.KMax(); pk > winK {
		// Maintain at the plane's depth so the published entry satisfies
		// every co-resident consumer without an upgrade recompute.
		winK = pk
	}
	if m.eng != nil && m.winK == winK {
		return nil
	}
	m.dropEngine()
	slack := neighbors.DefaultWindowSlack
	if m.cfg.Slack != nil {
		slack = *m.cfg.Slack
	}
	eng := neighbors.NewWindowEngine(winK, slack, m.cfg.Workers)
	seed := make([]neighbors.WindowArrival, len(m.window))
	for i, p := range m.window {
		seed[i] = neighbors.WindowArrival{Slot: i, Point: p}
	}
	if err := eng.Apply(ctx, seed); err != nil {
		return err
	}
	m.eng = eng
	m.winK = winK
	m.memo = &detector.WindowMemo{}
	m.pending = m.pending[:0]
	m.stats.EngineRebuilds++
	return nil
}

// dropEngine discards the live engine (folding its counters into the
// monitor's running stats) and the scoring memo that depended on it.
func (m *Monitor) dropEngine() {
	if m.eng != nil {
		m.foldEngineStats(m.eng.Stats())
		m.eng = nil
	}
	m.winK = 0
	m.memo = nil
}

func (m *Monitor) foldEngineStats(ws neighbors.WindowStats) {
	m.stats.Arrivals += ws.Arrivals
	m.stats.SurvivorLists += ws.SurvivorLists
	m.stats.KListRepairs += ws.Rescans
}

// flag is the evaluation's decision stage: Z-standardise the window scores,
// flag the not-yet-alerted points above threshold (highest first, capped by
// MaxFlagsPerWindow), and explain each flagged point within ds.
func (m *Monitor) flag(ctx context.Context, ds *dataset.Dataset, scores []float64) ([]Alert, error) {
	z := stats.ZScores(scores)
	candidates := make([]int, 0, 4)
	for i, zi := range z {
		if zi >= m.threshold && !m.flagged[m.seq[i]] {
			candidates = append(candidates, i)
		}
	}
	sort.Slice(candidates, func(a, b int) bool { return z[candidates[a]] > z[candidates[b]] })
	if limit := m.cfg.MaxFlagsPerWindow; limit > 0 && len(candidates) > limit {
		candidates = candidates[:limit]
	}
	var alerts []Alert
	for _, i := range candidates {
		m.flagged[m.seq[i]] = true
		alert := Alert{
			Sequence: m.seq[i],
			Point:    append([]float64(nil), m.window[i]...),
			Score:    scores[i],
			ZScore:   z[i],
		}
		if m.cfg.Explainer != nil {
			expl, err := m.cfg.Explainer.ExplainPoint(ctx, ds, i, m.targetDim)
			if err != nil {
				return alerts, fmt.Errorf("stream: explain sequence %d: %w", m.seq[i], err)
			}
			alert.Explanation = expl
		}
		alerts = append(alerts, alert)
	}
	return alerts, nil
}

func (m *Monitor) featureNames() []string {
	if m.cfg.FeatureNames == nil {
		return nil
	}
	names := make([]string, len(m.cfg.FeatureNames))
	copy(names, m.cfg.FeatureNames)
	return names
}

// StreamStats is a point-in-time snapshot of a Monitor's activity: how much
// of the incremental machinery actually engaged, and how much work it saved.
// anexbench -stats prints it after the stream benchmark arm.
type StreamStats struct {
	// Evaluations counts window evaluations (fast Flush re-serves
	// included); FastFlushes of those re-served the previous evaluation's
	// scores without rebuilding the window.
	Evaluations, FastFlushes int
	// Incremental reports whether the incremental engine is live.
	Incremental bool
	// EngineRebuilds counts cold engine builds (first use, or a depth
	// change when a deeper consumer registered with the plane).
	EngineRebuilds int
	// Arrivals counts points delivered to the engine (each one fresh
	// scan); SurvivorLists reservoirs examined for repair; KListRepairs of
	// those needed a full rescan — the expensive event the reservoir slack
	// exists to avoid.
	Arrivals, SurvivorLists, KListRepairs int
	// Scored counts points scored across all evaluations; Rescored how
	// many of them were actually recomputed (the rest re-served memoised
	// values bit-identically).
	Scored, Rescored int
	// Publishes counts maintained neighbourhoods installed into the plane
	// for explainer/consumer reuse.
	Publishes int
}

// RepairFraction reports the fraction of survivor k-lists that needed a
// full rescan per stride: KListRepairs ÷ SurvivorLists, 0 when nothing was
// examined. The deterministic ceiling gate pins it on the reference
// workload.
func (s StreamStats) RepairFraction() float64 {
	if s.SurvivorLists == 0 {
		return 0
	}
	return float64(s.KListRepairs) / float64(s.SurvivorLists)
}

// DirtyRescoreFraction reports the fraction of scored points that were
// actually recomputed: Rescored ÷ Scored, 1 when nothing was scored yet.
func (s StreamStats) DirtyRescoreFraction() float64 {
	if s.Scored == 0 {
		return 1
	}
	return float64(s.Rescored) / float64(s.Scored)
}

func (s StreamStats) String() string {
	return fmt.Sprintf(
		"evaluations %d (fast flushes %d), incremental %v (rebuilds %d), arrivals %d, survivor lists %d, k-list repairs %d (repair fraction %.3f), rescored %d/%d (dirty rescore fraction %.3f), publishes %d",
		s.Evaluations, s.FastFlushes, s.Incremental, s.EngineRebuilds,
		s.Arrivals, s.SurvivorLists, s.KListRepairs, s.RepairFraction(),
		s.Rescored, s.Scored, s.DirtyRescoreFraction(), s.Publishes)
}

// Stats returns the monitor's activity counters, including the live
// engine's.
func (m *Monitor) Stats() StreamStats {
	st := m.stats
	if m.eng != nil {
		ws := m.eng.Stats()
		st.Arrivals += ws.Arrivals
		st.SurvivorLists += ws.SurvivorLists
		st.KListRepairs += ws.Rescans
		st.Incremental = true
	}
	return st
}

package stream

import (
	"context"
	"math/rand"
	"testing"

	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/subspace"
)

// inlier emits a point on one of two clusters of the (F0, F1) diagonal with
// two noise features — the quickstart geometry, streamed.
func inlier(rng *rand.Rand) []float64 {
	base := 0.25
	if rng.Intn(2) == 1 {
		base = 0.75
	}
	return []float64{
		base + rng.NormFloat64()*0.03,
		base + rng.NormFloat64()*0.03,
		rng.Float64(),
		rng.Float64(),
	}
}

// anomaly breaks the F0/F1 coupling without leaving either marginal range.
func anomaly(rng *rand.Rand) []float64 {
	return []float64{0.25, 0.75, rng.Float64(), rng.Float64()}
}

func newTestMonitor(t *testing.T) *Monitor {
	t.Helper()
	det := detector.NewLOF(15)
	m, err := NewMonitor(Config{
		WindowSize: 120,
		Stride:     30,
		// LOF's right tail on 120-point windows reaches z ≈ 5 on clean
		// data; 6 separates genuine structural anomalies.
		ZThreshold: Threshold(6),
		TargetDim:  2,
		Detector:   det,
		Explainer:  &explain.Beam{Detector: det, Width: 6, TopK: 3, FixedDim: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMonitorFlagsAndExplainsInjectedAnomaly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := newTestMonitor(t)
	var alerts []Alert
	anomalyAt := -1
	for i := 0; i < 400; i++ {
		var p []float64
		if i == 207 {
			p = anomaly(rng)
			anomalyAt = i
		} else {
			p = inlier(rng)
		}
		got, err := m.Push(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		alerts = append(alerts, got...)
	}
	found := false
	for _, a := range alerts {
		if a.Sequence == anomalyAt {
			found = true
			if a.ZScore < 3 {
				t.Errorf("alert z-score %v below threshold", a.ZScore)
			}
			if len(a.Explanation) == 0 {
				t.Fatal("alert carries no explanation")
			}
			if !a.Explanation[0].Subspace.Equal(subspace.New(0, 1)) {
				t.Errorf("top explanation %v, want {F0, F1}", a.Explanation[0].Subspace)
			}
		}
	}
	if !found {
		t.Fatalf("injected anomaly at %d never alerted (%d alerts: %v)", anomalyAt, len(alerts), alerts)
	}
	// The anomaly stays in several overlapping windows but must be
	// alerted exactly once.
	count := 0
	for _, a := range alerts {
		if a.Sequence == anomalyAt {
			count++
		}
	}
	if count != 1 {
		t.Errorf("anomaly alerted %d times", count)
	}
}

func TestMonitorQuietOnCleanStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := newTestMonitor(t)
	var alerts []Alert
	for i := 0; i < 400; i++ {
		got, err := m.Push(context.Background(), inlier(rng))
		if err != nil {
			t.Fatal(err)
		}
		alerts = append(alerts, got...)
	}
	// The z>6 threshold admits at most rare false positives.
	if len(alerts) > 1 {
		t.Errorf("%d alerts on a clean stream", len(alerts))
	}
	if m.Evaluations() == 0 {
		t.Error("no evaluations ran")
	}
	if m.Seen() != 400 {
		t.Errorf("Seen = %d", m.Seen())
	}
}

func TestMonitorNoEvaluationBeforeWindowFills(t *testing.T) {
	m := newTestMonitor(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 119; i++ {
		alerts, err := m.Push(context.Background(), inlier(rng))
		if err != nil {
			t.Fatal(err)
		}
		if alerts != nil {
			t.Fatal("alert before the window filled")
		}
	}
	if m.Evaluations() != 0 {
		t.Errorf("evaluated %d times before window filled", m.Evaluations())
	}
}

func TestMonitorFlush(t *testing.T) {
	det := detector.NewLOF(5)
	m, err := NewMonitor(Config{WindowSize: 64, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Too few points: Flush is a no-op.
	for i := 0; i < 4; i++ {
		if _, err := m.Push(context.Background(), inlier(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if alerts, err := m.Flush(context.Background()); err != nil || alerts != nil {
		t.Fatalf("early flush: %v, %v", alerts, err)
	}
	// Partial window above the minimum evaluates.
	for i := 0; i < 20; i++ {
		if _, err := m.Push(context.Background(), inlier(rng)); err != nil {
			t.Fatal(err)
		}
	}
	before := m.Evaluations()
	if _, err := m.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Evaluations() != before+1 {
		t.Error("flush did not evaluate")
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	if _, err := NewMonitor(Config{WindowSize: 4, Detector: detector.NewLOF(5)}); err == nil {
		t.Error("tiny window should fail")
	}
	if _, err := NewMonitor(Config{WindowSize: 64}); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := NewMonitor(Config{WindowSize: 64, Detector: detector.NewLOF(5), Stride: -1}); err == nil {
		t.Error("negative stride should fail")
	}
}

func TestMonitorDefaults(t *testing.T) {
	m, err := NewMonitor(Config{WindowSize: 100, Detector: detector.NewLOF(5)})
	if err != nil {
		t.Fatal(err)
	}
	if m.stride != 25 {
		t.Errorf("default stride %d, want window/4", m.stride)
	}
	if m.threshold != 3 || m.targetDim != 2 {
		t.Errorf("defaults: threshold %v dim %d", m.threshold, m.targetDim)
	}
}

func TestMonitorWithLODAOnline(t *testing.T) {
	// LODA is the stream-native detector: verify the monitor pairs with
	// it end to end.
	rng := rand.New(rand.NewSource(5))
	det := detector.NewLODA(1)
	m, err := NewMonitor(Config{
		WindowSize: 150,
		Stride:     50,
		ZThreshold: Threshold(3.5),
		Detector:   det,
	})
	if err != nil {
		t.Fatal(err)
	}
	var alerts []Alert
	for i := 0; i < 450; i++ {
		p := inlier(rng)
		if i == 260 {
			// A gross anomaly LODA must catch (outside all marginals).
			p = []float64{3, -3, 0.5, 0.5}
		}
		got, err := m.Push(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		alerts = append(alerts, got...)
	}
	found := false
	for _, a := range alerts {
		if a.Sequence == 260 {
			found = true
		}
	}
	if !found {
		t.Errorf("LODA monitor missed the gross anomaly (alerts: %v)", alerts)
	}
}

func TestMonitorMaxFlagsPerWindow(t *testing.T) {
	// A permissive threshold with a flag cap keeps the alert volume
	// bounded: only the top-scored point of each window may alert.
	rng := rand.New(rand.NewSource(8))
	m, err := NewMonitor(Config{
		WindowSize:        120,
		Stride:            30,
		ZThreshold:        Threshold(2),
		MaxFlagsPerWindow: 1,
		Detector:          detector.NewLOF(15),
	})
	if err != nil {
		t.Fatal(err)
	}
	perWindow := map[int]int{}
	for i := 0; i < 400; i++ {
		alerts, err := m.Push(context.Background(), inlier(rng))
		if err != nil {
			t.Fatal(err)
		}
		perWindow[m.Evaluations()] += len(alerts)
	}
	for eval, n := range perWindow {
		if n > 1 {
			t.Errorf("evaluation %d flagged %d points despite cap 1", eval, n)
		}
	}
}

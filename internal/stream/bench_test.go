package stream

import (
	"context"
	"testing"
)

// benchmarkStreamWindow measures steady-state evaluation cost on the
// reference stream workload (W=256, stride=64, 20d, LOF k=15): each
// iteration pushes exactly one stride of points, triggering exactly one
// window evaluation. The incremental/rebuild pair shares everything but
// Config.NoIncremental, so their same-process ns/op ratio is the
// self-normalising speedup check.sh gates (host noise cancels).
func benchmarkStreamWindow(b *testing.B, noInc bool) {
	const (
		window = 256
		stride = 64
	)
	m, _ := referenceStreamMonitor(b, noInc, 4)
	defer m.Close()
	pts := referencePoints(window + stride*64)
	next := 0
	push := func() {
		if _, err := m.Push(context.Background(), pts[next]); err != nil {
			b.Fatal(err)
		}
		next++
		if next == len(pts) {
			next = window // keep cycling fresh-ish points, never reusing the warmup prefix in place
		}
	}
	for i := 0; i < window; i++ {
		push() // fill + first evaluation (the cold build both arms share)
	}
	evalsBefore := m.Evaluations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < stride; s++ {
			push()
		}
	}
	b.StopTimer()
	if got, want := m.Evaluations()-evalsBefore, b.N; got != want {
		b.Fatalf("%d evaluations over %d iterations", got, want)
	}
}

func BenchmarkStreamWindow(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { benchmarkStreamWindow(b, false) })
	b.Run("rebuild", func(b *testing.B) { benchmarkStreamWindow(b, true) })
}

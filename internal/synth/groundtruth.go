package synth

import (
	"context"
	"fmt"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// DeriveTopSubspaceGroundTruth reproduces the ground-truth methodology the
// paper applies to the real datasets (Section 3.2): for every explanation
// dimensionality in dims it scores EVERY subspace of that dimensionality
// with the detector and keeps, per outlier, the top-scored subspace. Each
// outlier thus receives one relevant subspace per dimensionality.
//
// Per-point scores are Z-score standardised within each subspace before
// comparison — the same dimensionality-bias correction the explainers apply
// (Section 2.2) — so the derived ground truth and the explainers share one
// notion of "the subspace where this point deviates most".
//
// The search is exhaustive — C(D, k) detector runs per dimensionality — so
// callers should bound D and dims appropriately (the paper uses 2–4d over
// 23–31 features). Cancelling ctx aborts the sweep with ctx's error.
func DeriveTopSubspaceGroundTruth(ctx context.Context, ds *dataset.Dataset, outliers []int, dims []int, det core.Detector) (*dataset.GroundTruth, error) {
	if len(outliers) == 0 {
		return nil, fmt.Errorf("ground truth %q: no outliers", ds.Name())
	}
	if det == nil {
		return nil, fmt.Errorf("ground truth %q: nil detector", ds.Name())
	}
	relevant := make(map[int][]subspace.Subspace, len(outliers))
	for _, dim := range dims {
		if dim < 1 || dim > ds.D() {
			return nil, fmt.Errorf("ground truth %q: dimensionality %d out of range [1, %d]", ds.Name(), dim, ds.D())
		}
		best := make(map[int]float64, len(outliers))
		bestSub := make(map[int]subspace.Subspace, len(outliers))
		enum := subspace.NewEnumerator(ds.D(), dim)
		for s := enum.Next(); s != nil; s = enum.Next() {
			scores, err := det.Scores(ctx, ds.View(s))
			if err != nil {
				return nil, fmt.Errorf("ground truth %q: %w", ds.Name(), err)
			}
			z := stats.ZScores(scores)
			for _, p := range outliers {
				if cur, ok := best[p]; !ok || z[p] > cur {
					best[p] = z[p]
					bestSub[p] = s.Clone()
				}
			}
		}
		for _, p := range outliers {
			relevant[p] = append(relevant[p], bestSub[p])
		}
	}
	return dataset.NewGroundTruth(relevant), nil
}

// AssignOutliersByScore reproduces the ground-truth alignment the paper
// applies to the HiCS synthetic datasets: given the planted relevant
// subspaces, it scores all points in each subspace with the detector and
// associates the subspace with its top-k highest-scoring points. The result
// matches the planted contamination when the detector separates the planted
// outliers (the paper verifies this holds for LOF).
func AssignOutliersByScore(ctx context.Context, ds *dataset.Dataset, planted []subspace.Subspace, topK int, det core.Detector) (*dataset.GroundTruth, error) {
	if det == nil {
		return nil, fmt.Errorf("ground truth %q: nil detector", ds.Name())
	}
	if topK < 1 {
		return nil, fmt.Errorf("ground truth %q: topK must be ≥ 1, got %d", ds.Name(), topK)
	}
	relevant := make(map[int][]subspace.Subspace)
	for _, s := range planted {
		if err := s.Validate(ds.D()); err != nil {
			return nil, fmt.Errorf("ground truth %q: %w", ds.Name(), err)
		}
		scores, err := det.Scores(ctx, ds.View(s))
		if err != nil {
			return nil, fmt.Errorf("ground truth %q: %w", ds.Name(), err)
		}
		top := topIndices(scores, topK)
		for _, p := range top {
			relevant[p] = append(relevant[p], s)
		}
	}
	return dataset.NewGroundTruth(relevant), nil
}

// topIndices returns the indices of the k largest scores, descending; ties
// break on the smaller index.
func topIndices(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is tiny (5 in the paper).
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] ||
				(scores[idx[j]] == scores[idx[best]] && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

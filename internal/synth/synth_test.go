package synth

import (
	"context"
	"math"
	"testing"

	"anex/internal/detector"
	"anex/internal/stats"
	"anex/internal/subspace"
)

func smallConfig(seed int64) SubspaceConfig {
	return SubspaceConfig{
		Name:                "t",
		TotalDims:           10,
		SubspaceDims:        []int{2, 3},
		N:                   200,
		OutliersPerSubspace: 4,
		DoubleOutliers:      1,
		Seed:                seed,
	}
}

func TestSubspaceConfigValidate(t *testing.T) {
	good := smallConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.SubspaceDims = []int{1}
	if err := bad.Validate(); err == nil {
		t.Error("1d subspace should be rejected")
	}
	bad = good
	bad.SubspaceDims = []int{6, 6}
	if err := bad.Validate(); err == nil {
		t.Error("overfull dims should be rejected")
	}
	bad = good
	bad.N = 10
	if err := bad.Validate(); err == nil {
		t.Error("too few points should be rejected")
	}
	bad = good
	bad.DoubleOutliers = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative doubles should be rejected")
	}
}

func TestGenerateSubspaceOutliersShape(t *testing.T) {
	c := smallConfig(7)
	ds, gt, err := GenerateSubspaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != c.N || ds.D() != c.TotalDims {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 subspaces × 4 − 1 double = 7 distinct outliers.
	if gt.NumOutliers() != c.NumOutliers() {
		t.Errorf("outliers = %d, want %d", gt.NumOutliers(), c.NumOutliers())
	}
	// Exactly one point has two relevant subspaces.
	doubles := 0
	for _, p := range gt.Outliers() {
		switch n := len(gt.RelevantFor(p)); n {
		case 1:
		case 2:
			doubles++
		default:
			t.Errorf("point %d has %d relevant subspaces", p, n)
		}
	}
	if doubles != 1 {
		t.Errorf("doubles = %d, want 1", doubles)
	}
	// Planted subspaces are disjoint and of the configured dims.
	all := gt.AllSubspaces()
	if len(all) != 2 {
		t.Fatalf("planted subspaces = %v", all)
	}
	if all[0].Overlaps(all[1]) {
		t.Error("planted subspaces overlap")
	}
	gotDims := map[int]bool{all[0].Dim(): true, all[1].Dim(): true}
	if !gotDims[2] || !gotDims[3] {
		t.Errorf("planted dims wrong: %v", all)
	}
	// Values live in [0,1].
	for f := 0; f < ds.D(); f++ {
		lo, hi := stats.MinMax(ds.Column(f))
		if lo < 0 || hi > 1 {
			t.Errorf("feature %d range [%v, %v]", f, lo, hi)
		}
	}
}

func TestGenerateSubspaceOutliersDeterministic(t *testing.T) {
	a, gta, err := GenerateSubspaceOutliers(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, gtb, err := GenerateSubspaceOutliers(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < a.D(); f++ {
		ca, cb := a.Column(f), b.Column(f)
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("value (%d,%d) differs", i, f)
			}
		}
	}
	oa, ob := gta.Outliers(), gtb.Outliers()
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("outlier sets differ")
		}
	}
	c, _, err := GenerateSubspaceOutliers(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for f := 0; f < a.D() && same; f++ {
		ca, cc := a.Column(f), c.Column(f)
		for i := range ca {
			if ca[i] != cc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

// TestPlantedOutliersDetectableByLOF verifies the construction invariant the
// whole testbed depends on: within its relevant subspace, a planted outlier
// must receive a top LOF score (the paper aligns ground truth exactly this
// way).
func TestPlantedOutliersDetectableByLOF(t *testing.T) {
	c := smallConfig(11)
	ds, gt, err := GenerateSubspaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	lof := detector.NewLOF(15)
	for _, sub := range gt.AllSubspaces() {
		scores, serr := lof.Scores(context.Background(), ds.View(sub))
		if serr != nil {
			t.Fatal(serr)
		}
		// Points deviating in this subspace.
		var deviating []int
		for _, p := range gt.Outliers() {
			for _, s := range gt.RelevantFor(p) {
				if s.Equal(sub) {
					deviating = append(deviating, p)
				}
			}
		}
		top := topIndices(scores, len(deviating))
		topSet := make(map[int]bool, len(top))
		for _, p := range top {
			topSet[p] = true
		}
		for _, p := range deviating {
			if !topSet[p] {
				t.Errorf("subspace %v: planted outlier %d not in LOF top-%d", sub, p, len(deviating))
			}
		}
	}
}

// TestOutliersMaskedInSingleFeatures verifies property (v): in 1d
// projections of a relevant subspace the planted outliers are mixed with
// inliers (their values fall inside the inlier range).
func TestOutliersMaskedInSingleFeatures(t *testing.T) {
	ds, gt, err := GenerateSubspaceOutliers(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	masked := 0
	total := 0
	// Range criterion: each outlier coordinate must fall within the
	// inlier min/max of that feature, so no single feature reveals it.
	for _, p := range gt.Outliers() {
		for _, sub := range gt.RelevantFor(p) {
			for _, f := range sub {
				col := ds.Column(f)
				var lo, hi float64 = math.Inf(1), math.Inf(-1)
				for i, v := range col {
					if gt.IsOutlier(i) {
						continue
					}
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
				total++
				if col[p] >= lo && col[p] <= hi {
					masked++
				}
			}
		}
	}
	if float64(masked)/float64(total) < 0.9 {
		t.Errorf("only %d/%d outlier coordinates masked in 1d", masked, total)
	}
}

// TestPlantedSubspacesHaveHighContrastStructure verifies the HiCS property:
// conditioning on one feature of a planted subspace changes the distribution
// of another (high contrast), while noise features are independent.
func TestPlantedSubspacesHaveHighContrastStructure(t *testing.T) {
	c := smallConfig(17)
	ds, gt, err := GenerateSubspaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	sub := gt.AllSubspaces()[0]
	f0, f1 := sub[0], sub[1]
	// Conditioning: restrict to points whose f0 value sits in the lowest
	// grid level; the f1 distribution of that slice must differ from the
	// marginal.
	col0, col1 := ds.Column(f0), ds.Column(f1)
	var cond []float64
	for i := range col0 {
		if col0[i] < 0.35 {
			cond = append(cond, col1[i])
		}
	}
	res := stats.KolmogorovSmirnov(cond, col1)
	if res.P > 0.01 {
		t.Errorf("planted pair (%d,%d) shows no dependence: p = %v", f0, f1, res.P)
	}
	// Noise features are independent of each other.
	noise1, noise2 := ds.D()-1, ds.D()-2
	coln1, coln2 := ds.Column(noise1), ds.Column(noise2)
	var condN []float64
	for i := range coln1 {
		if coln1[i] < 0.45 { // noise band is [0.3, 0.7]
			condN = append(condN, coln2[i])
		}
	}
	if len(condN) < 20 {
		t.Fatalf("conditional noise sample too small (%d) — test misconfigured", len(condN))
	}
	resN := stats.KolmogorovSmirnov(condN, coln2)
	if resN.P < 0.001 {
		t.Errorf("noise pair shows spurious dependence: p = %v", resN.P)
	}
}

func TestFullSpaceConfigValidate(t *testing.T) {
	good := FullSpaceConfig{Name: "r", N: 100, D: 8, NumOutliers: 10, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.NumOutliers = 60
	if err := bad.Validate(); err == nil {
		t.Error("contamination > 50% should be rejected")
	}
	bad = good
	bad.D = 1
	if err := bad.Validate(); err == nil {
		t.Error("1d dataset should be rejected")
	}
}

func TestGenerateFullSpaceOutliers(t *testing.T) {
	c := FullSpaceConfig{Name: "r", N: 150, D: 8, NumOutliers: 15, Seed: 5}
	ds, outliers, err := GenerateFullSpaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 150 || ds.D() != 8 {
		t.Fatalf("shape %dx%d", ds.N(), ds.D())
	}
	if len(outliers) != 15 {
		t.Fatalf("outliers = %d", len(outliers))
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outliers); i++ {
		if outliers[i] <= outliers[i-1] {
			t.Fatal("outlier indices not sorted/distinct")
		}
	}
	// The planted outliers must dominate the full-space LOF ranking —
	// they are full-space density outliers by construction.
	scores, serr := detector.NewLOF(15).Scores(context.Background(), ds.FullView())
	if serr != nil {
		t.Fatal(serr)
	}
	top := topIndices(scores, len(outliers))
	topSet := make(map[int]bool)
	for _, p := range top {
		topSet[p] = true
	}
	hits := 0
	for _, p := range outliers {
		if topSet[p] {
			hits++
		}
	}
	if float64(hits)/float64(len(outliers)) < 0.85 {
		t.Errorf("only %d/%d planted outliers in LOF top ranks", hits, len(outliers))
	}
}

func TestDeriveTopSubspaceGroundTruth(t *testing.T) {
	c := FullSpaceConfig{Name: "r", N: 120, D: 6, NumOutliers: 10, Seed: 9}
	ds, outliers, err := GenerateFullSpaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := DeriveTopSubspaceGroundTruth(context.Background(), ds, outliers, []int{2, 3}, detector.NewLOF(15))
	if err != nil {
		t.Fatal(err)
	}
	if gt.NumOutliers() != len(outliers) {
		t.Fatalf("ground truth covers %d of %d outliers", gt.NumOutliers(), len(outliers))
	}
	for _, p := range outliers {
		rel := gt.RelevantFor(p)
		// One relevant subspace per dimensionality (they could coincide
		// in key only if dims differ, so exactly 2 entries).
		if len(rel) != 2 {
			t.Errorf("point %d: %d relevant subspaces, want 2", p, len(rel))
		}
		dims := map[int]bool{}
		for _, s := range rel {
			dims[s.Dim()] = true
			if err := s.Validate(ds.D()); err != nil {
				t.Error(err)
			}
		}
		if !dims[2] || !dims[3] {
			t.Errorf("point %d: dims %v", p, dims)
		}
	}
}

func TestDeriveGroundTruthErrors(t *testing.T) {
	c := FullSpaceConfig{Name: "r", N: 50, D: 4, NumOutliers: 5, Seed: 2}
	ds, outliers, err := GenerateFullSpaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeriveTopSubspaceGroundTruth(context.Background(), ds, nil, []int{2}, detector.NewLOF(5)); err == nil {
		t.Error("no outliers should fail")
	}
	if _, err := DeriveTopSubspaceGroundTruth(context.Background(), ds, outliers, []int{9}, detector.NewLOF(5)); err == nil {
		t.Error("out-of-range dim should fail")
	}
	if _, err := DeriveTopSubspaceGroundTruth(context.Background(), ds, outliers, []int{2}, nil); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestAssignOutliersByScore(t *testing.T) {
	c := smallConfig(21)
	ds, gt, err := GenerateSubspaceOutliers(c)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := AssignOutliersByScore(context.Background(), ds, gt.AllSubspaces(), c.OutliersPerSubspace, detector.NewLOF(15))
	if err != nil {
		t.Fatal(err)
	}
	// The detector-derived assignment must essentially recover the
	// planted one (the paper's alignment step).
	planted := map[int]bool{}
	for _, p := range gt.Outliers() {
		planted[p] = true
	}
	recovered := 0
	for _, p := range derived.Outliers() {
		if planted[p] {
			recovered++
		}
	}
	if float64(recovered)/float64(gt.NumOutliers()) < 0.9 {
		t.Errorf("derived assignment recovered %d/%d planted outliers", recovered, gt.NumOutliers())
	}
}

func TestConfigsAreValid(t *testing.T) {
	for _, scale := range []Scale{ScaleSmall, ScalePaper} {
		for _, c := range SyntheticConfigs(scale, 1) {
			if err := c.Validate(); err != nil {
				t.Errorf("%s/%s: %v", scale, c.Name, err)
			}
		}
		for _, c := range RealWorldConfigs(scale, 1) {
			if err := c.Validate(); err != nil {
				t.Errorf("%s/%s: %v", scale, c.Name, err)
			}
		}
	}
}

func TestPaperScaleShapesMatchTable1(t *testing.T) {
	configs := SyntheticConfigs(ScalePaper, 1)
	wantDims := []int{14, 23, 39, 70, 100}
	wantSubs := []int{4, 7, 12, 22, 31}
	wantOutliers := []int{20, 34, 59, 100, 143}
	if len(configs) != 5 {
		t.Fatalf("%d synthetic configs", len(configs))
	}
	for i, c := range configs {
		if c.TotalDims != wantDims[i] {
			t.Errorf("%s: dims %d, want %d", c.Name, c.TotalDims, wantDims[i])
		}
		if len(c.SubspaceDims) != wantSubs[i] {
			t.Errorf("%s: %d subspaces, want %d", c.Name, len(c.SubspaceDims), wantSubs[i])
		}
		if got := c.NumOutliers(); got != wantOutliers[i] {
			t.Errorf("%s: %d outliers, want %d", c.Name, got, wantOutliers[i])
		}
		if c.N != 1000 {
			t.Errorf("%s: N = %d", c.Name, c.N)
		}
	}
	real := RealWorldConfigs(ScalePaper, 1)
	shapes := [][3]int{{198, 31, 20}, {569, 30, 57}, {1205, 23, 121}}
	for i, c := range real {
		if c.N != shapes[i][0] || c.D != shapes[i][1] || c.NumOutliers != shapes[i][2] {
			t.Errorf("%s: %dx%d/%d", c.Name, c.N, c.D, c.NumOutliers)
		}
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale("paper"); err != nil || s != ScalePaper {
		t.Errorf("paper: %v %v", s, err)
	}
	if s, err := ParseScale("small"); err != nil || s != ScaleSmall {
		t.Errorf("small: %v %v", s, err)
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale should fail")
	}
}

func TestTopIndices(t *testing.T) {
	got := topIndices([]float64{1, 9, 3, 9, 5}, 3)
	// Ties break on lower index: 1 (9), 3 (9), 4 (5).
	if got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Errorf("topIndices = %v", got)
	}
	if got := topIndices([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("clamped topIndices = %v", got)
	}
}

func TestBuildHelpers(t *testing.T) {
	td, err := BuildSynthetic(smallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	if !td.Synthetic || td.Dataset == nil || td.GroundTruth == nil {
		t.Error("BuildSynthetic incomplete")
	}
	rw, err := BuildRealWorld(context.Background(), FullSpaceConfig{Name: "r", N: 80, D: 5, NumOutliers: 8, Seed: 3}, []int{2}, detector.NewLOF(10))
	if err != nil {
		t.Fatal(err)
	}
	if rw.Synthetic || rw.GroundTruth.NumOutliers() != 8 {
		t.Error("BuildRealWorld incomplete")
	}
}

func TestScaleStringAndDims(t *testing.T) {
	if ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("Scale.String")
	}
	if dims := GroundTruthDims(ScalePaper); len(dims) != 3 || dims[2] != 4 {
		t.Errorf("paper GT dims %v", dims)
	}
	if dims := GroundTruthDims(ScaleSmall); len(dims) != 2 {
		t.Errorf("small GT dims %v", dims)
	}
	if dims := ExplanationDims(ScalePaper, true); dims[len(dims)-1] != 5 {
		t.Errorf("paper synthetic dims %v", dims)
	}
	if dims := ExplanationDims(ScalePaper, false); dims[len(dims)-1] != 4 {
		t.Errorf("paper real dims %v", dims)
	}
	if dims := ExplanationDims(ScaleSmall, false); dims[len(dims)-1] != 3 {
		t.Errorf("small real dims %v", dims)
	}
}

func TestAssignOutliersByScoreErrors(t *testing.T) {
	ds, gt, err := GenerateSubspaceOutliers(smallConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssignOutliersByScore(context.Background(), ds, gt.AllSubspaces(), 5, nil); err == nil {
		t.Error("nil detector should fail")
	}
	if _, err := AssignOutliersByScore(context.Background(), ds, gt.AllSubspaces(), 0, detector.NewLOF(5)); err == nil {
		t.Error("topK 0 should fail")
	}
	bad := []subspace.Subspace{subspace.New(99)}
	if _, err := AssignOutliersByScore(context.Background(), ds, bad, 5, detector.NewLOF(5)); err == nil {
		t.Error("out-of-range subspace should fail")
	}
}

func TestBuildHelperErrors(t *testing.T) {
	if _, err := BuildSynthetic(SubspaceConfig{Name: "bad"}); err == nil {
		t.Error("invalid synthetic config should fail")
	}
	if _, err := BuildRealWorld(context.Background(), FullSpaceConfig{Name: "bad"}, []int{2}, detector.NewLOF(5)); err == nil {
		t.Error("invalid real config should fail")
	}
	if _, err := BuildRealWorld(context.Background(), FullSpaceConfig{Name: "r", N: 60, D: 4, NumOutliers: 6, Seed: 1}, []int{9}, detector.NewLOF(5)); err == nil {
		t.Error("bad GT dims should fail")
	}
}

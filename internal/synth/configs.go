package synth

import (
	"context"
	"fmt"

	"anex/internal/core"
	"anex/internal/dataset"
)

// Scale selects the size of the generated testbed.
type Scale int

const (
	// ScaleSmall is a reduced testbed with the same shape as the paper's
	// (five synthetic datasets of increasing dimensionality, three
	// real-world-like datasets) sized for interactive runs and CI.
	ScaleSmall Scale = iota
	// ScalePaper matches the dataset shapes of Table 1: synthetic
	// 14–100d with 1000 points, real-like 198×31 / 569×30 / 1205×23.
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// ParseScale parses "small" or "paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	}
	return ScaleSmall, fmt.Errorf("unknown scale %q (want small or paper)", s)
}

// SyntheticConfigs returns the five HiCS-style synthetic dataset
// configurations at the given scale. At paper scale the shapes follow
// Table 1 and Figure 8: 1000 points, 4/7/12/22/31 relevant subspaces of
// 2–5 dimensions over 14/23/39/70/100 features, 5 outliers per subspace,
// and a growing number of outliers explained by two subspaces.
func SyntheticConfigs(scale Scale, seed int64) []SubspaceConfig {
	if scale == ScalePaper {
		return []SubspaceConfig{
			{Name: "hics-14d", TotalDims: 14, N: 1000, OutliersPerSubspace: 5, Seed: seed + 1,
				SubspaceDims: []int{2, 3, 4, 5}, DoubleOutliers: 0},
			{Name: "hics-23d", TotalDims: 23, N: 1000, OutliersPerSubspace: 5, Seed: seed + 2,
				SubspaceDims: []int{2, 2, 3, 3, 4, 4, 5}, DoubleOutliers: 1},
			{Name: "hics-39d", TotalDims: 39, N: 1000, OutliersPerSubspace: 5, Seed: seed + 3,
				SubspaceDims: []int{2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5}, DoubleOutliers: 1},
			{Name: "hics-70d", TotalDims: 70, N: 1000, OutliersPerSubspace: 5, Seed: seed + 4,
				SubspaceDims: []int{2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 5, 5, 5}, DoubleOutliers: 10},
			{Name: "hics-100d", TotalDims: 100, N: 1000, OutliersPerSubspace: 5, Seed: seed + 5,
				SubspaceDims: []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4, 5, 5, 5, 5}, DoubleOutliers: 12},
		}
	}
	return []SubspaceConfig{
		{Name: "hics-8d", TotalDims: 8, N: 250, OutliersPerSubspace: 4, Seed: seed + 1,
			SubspaceDims: []int{2, 3}, DoubleOutliers: 0},
		{Name: "hics-12d", TotalDims: 12, N: 250, OutliersPerSubspace: 4, Seed: seed + 2,
			SubspaceDims: []int{2, 3, 4}, DoubleOutliers: 0},
		{Name: "hics-16d", TotalDims: 16, N: 250, OutliersPerSubspace: 4, Seed: seed + 3,
			SubspaceDims: []int{2, 2, 3, 4}, DoubleOutliers: 1},
		{Name: "hics-20d", TotalDims: 20, N: 250, OutliersPerSubspace: 4, Seed: seed + 4,
			SubspaceDims: []int{2, 2, 3, 3, 4}, DoubleOutliers: 1},
		{Name: "hics-26d", TotalDims: 26, N: 250, OutliersPerSubspace: 4, Seed: seed + 5,
			SubspaceDims: []int{2, 2, 3, 3, 4, 4}, DoubleOutliers: 2},
	}
}

// RealWorldConfigs returns the three real-world-like dataset configurations
// at the given scale. At paper scale the shapes match the UCI datasets of
// Section 3.2: Breast 198×31 with 20 outliers, Breast Diagnostic 569×30
// with 57, Electricity 1205×23 with 121 (≈ 10 % contamination each).
func RealWorldConfigs(scale Scale, seed int64) []FullSpaceConfig {
	if scale == ScalePaper {
		return []FullSpaceConfig{
			{Name: "breast-like", N: 198, D: 31, NumOutliers: 20, Seed: seed + 11},
			{Name: "breast-diag-like", N: 569, D: 30, NumOutliers: 57, Seed: seed + 12},
			{Name: "electricity-like", N: 1205, D: 23, NumOutliers: 121, Seed: seed + 13},
		}
	}
	return []FullSpaceConfig{
		{Name: "breast-like", N: 120, D: 10, NumOutliers: 12, Seed: seed + 11},
		{Name: "breast-diag-like", N: 200, D: 12, NumOutliers: 20, Seed: seed + 12},
		{Name: "electricity-like", N: 300, D: 10, NumOutliers: 30, Seed: seed + 13},
	}
}

// GroundTruthDims returns the explanation dimensionalities over which the
// real-like ground truth is derived (the paper uses 2–4d).
func GroundTruthDims(scale Scale) []int {
	if scale == ScalePaper {
		return []int{2, 3, 4}
	}
	return []int{2, 3}
}

// ExplanationDims returns the explanation dimensionalities evaluated per
// dataset family (the paper evaluates 2–5d on synthetic, 2–4d on real).
func ExplanationDims(scale Scale, synthetic bool) []int {
	if scale == ScalePaper {
		if synthetic {
			return []int{2, 3, 4, 5}
		}
		return []int{2, 3, 4}
	}
	if synthetic {
		return []int{2, 3, 4}
	}
	return []int{2, 3}
}

// TestbedDataset bundles a generated dataset with its ground truth.
type TestbedDataset struct {
	Dataset     *dataset.Dataset
	GroundTruth *dataset.GroundTruth
	// Synthetic reports whether the dataset carries planted subspace
	// outliers (true) or derived full-space outliers (false).
	Synthetic bool
}

// BuildSynthetic generates one synthetic testbed entry.
func BuildSynthetic(c SubspaceConfig) (TestbedDataset, error) {
	ds, gt, err := GenerateSubspaceOutliers(c)
	if err != nil {
		return TestbedDataset{}, err
	}
	return TestbedDataset{Dataset: ds, GroundTruth: gt, Synthetic: true}, nil
}

// BuildRealWorld generates one real-world-like testbed entry, deriving its
// ground truth with the given detector over the given dimensionalities.
// Cancelling ctx aborts the derivation sweep with ctx's error.
func BuildRealWorld(ctx context.Context, c FullSpaceConfig, dims []int, det core.Detector) (TestbedDataset, error) {
	ds, outliers, err := GenerateFullSpaceOutliers(c)
	if err != nil {
		return TestbedDataset{}, err
	}
	gt, err := DeriveTopSubspaceGroundTruth(ctx, ds, outliers, dims, det)
	if err != nil {
		return TestbedDataset{}, err
	}
	return TestbedDataset{Dataset: ds, GroundTruth: gt, Synthetic: false}, nil
}

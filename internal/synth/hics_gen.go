// Package synth generates the testbed datasets of the paper (Section 3.2)
// together with their ground truth:
//
//   - the HiCS-style synthetic family with subspace outliers hidden in
//     planted high-contrast subspaces (SubspaceConfig / GenerateSubspaceOutliers);
//   - real-world-like datasets with full-space density outliers substituting
//     the UCI Breast / Breast Diagnostic / Electricity datasets
//     (FullSpaceConfig / GenerateFullSpaceOutliers), whose ground truth is
//     derived with the exhaustive LOF search of the paper;
//   - the paper-scale and reduced-scale configurations of both families.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

// Cluster-grid geometry of the planted subspaces. Inlier clusters sit on a
// grid of per-feature levels; outliers occupy grid cells no cluster covers.
// Every level appears in some cluster on every feature, so single features
// (and most lower-dimensional projections) mask the outliers — property (v)
// of the HiCS datasets — while the full subspace isolates them by at least
// one level gap, keeping them detectable by LOF (property (ii)).
var gridLevels = []float64{0.2, 0.5, 0.8}

const (
	inlierNoiseStd = 0.03
	outlierJitter  = 0.02
	// outlierEdgeOffset displaces each outlier coordinate from its cell
	// centre by ≈ 1.7 cluster standard deviations. In every lower
	// projection the outlier then sits at the EDGE of its masking
	// cluster — a small, detector-dependent deviation (the signal the
	// paper's stage-wise searches exploit in early stages) — while in the
	// full subspace the per-coordinate offsets compound on top of the
	// level gap, keeping it clearly isolated.
	outlierEdgeOffset = 0.05
	// Irrelevant-feature band (see GenerateSubspaceOutliers).
	noiseLo = 0.3
	noiseHi = 0.7
)

// SubspaceConfig describes one HiCS-style synthetic dataset.
type SubspaceConfig struct {
	// Name of the generated dataset.
	Name string
	// TotalDims is the dataset dimensionality; features not covered by
	// SubspaceDims are irrelevant uniform noise.
	TotalDims int
	// SubspaceDims lists the dimensionality of each planted relevant
	// subspace; their sum must not exceed TotalDims.
	SubspaceDims []int
	// N is the number of points (inliers + outliers).
	N int
	// OutliersPerSubspace is the number of outliers deviating in each
	// planted subspace (the paper uses 5).
	OutliersPerSubspace int
	// DoubleOutliers is the number of outlier points that deviate in two
	// different subspaces (~9 % of outliers in the paper's datasets).
	DoubleOutliers int
	// ClustersPerSubspace is the number of inlier grid clusters planted
	// per subspace; zero picks a dimension-appropriate default.
	ClustersPerSubspace int
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration for consistency.
func (c *SubspaceConfig) Validate() error {
	if c.TotalDims < 2 {
		return fmt.Errorf("synth %q: need ≥ 2 dims, got %d", c.Name, c.TotalDims)
	}
	sum := 0
	for _, d := range c.SubspaceDims {
		if d < 2 {
			return fmt.Errorf("synth %q: subspace dims must be ≥ 2, got %d", c.Name, d)
		}
		sum += d
	}
	if sum > c.TotalDims {
		return fmt.Errorf("synth %q: subspace dims sum to %d > %d total", c.Name, sum, c.TotalDims)
	}
	if len(c.SubspaceDims) == 0 {
		return fmt.Errorf("synth %q: no relevant subspaces", c.Name)
	}
	if c.OutliersPerSubspace < 1 {
		return fmt.Errorf("synth %q: need ≥ 1 outlier per subspace", c.Name)
	}
	totalOutliers := len(c.SubspaceDims)*c.OutliersPerSubspace - c.DoubleOutliers
	if c.DoubleOutliers < 0 || totalOutliers < 1 {
		return fmt.Errorf("synth %q: invalid double-outlier count %d", c.Name, c.DoubleOutliers)
	}
	if c.N < 4*totalOutliers {
		return fmt.Errorf("synth %q: %d points too few for %d outliers", c.Name, c.N, totalOutliers)
	}
	return nil
}

// NumOutliers returns the number of distinct outlier points the
// configuration plants.
func (c *SubspaceConfig) NumOutliers() int {
	return len(c.SubspaceDims)*c.OutliersPerSubspace - c.DoubleOutliers
}

// GenerateSubspaceOutliers builds the dataset and its planted ground truth.
// The relevant subspaces partition the first Σdims features; the remaining
// features are uniform noise. Each outlier deviates exactly in its relevant
// subspace(s) and behaves like an inlier everywhere else.
func GenerateSubspaceOutliers(c SubspaceConfig) (*dataset.Dataset, *dataset.GroundTruth, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	n := c.N
	numSubs := len(c.SubspaceDims)

	// Lay the relevant subspaces over the leading features.
	subs := make([]subspace.Subspace, numSubs)
	next := 0
	for i, d := range c.SubspaceDims {
		feats := make([]int, d)
		for j := range feats {
			feats[j] = next
			next++
		}
		subs[i] = subspace.New(feats...)
	}

	// Choose which points are outliers and which subspace(s) each
	// deviates in. Doubles deviate in two distinct subspaces.
	totalOutliers := c.NumOutliers()
	outlierPoints := rng.Perm(n)[:totalOutliers]
	assignment := make(map[int][]int, totalOutliers) // point → subspace ids
	slots := make([]int, 0, numSubs*c.OutliersPerSubspace)
	for si := 0; si < numSubs; si++ {
		for j := 0; j < c.OutliersPerSubspace; j++ {
			slots = append(slots, si)
		}
	}
	// The first totalOutliers slots go to fresh points; the remaining
	// (DoubleOutliers) slots are attached to existing outliers of a
	// different subspace.
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	pi := 0
	var pending []int
	for _, si := range slots {
		if pi < totalOutliers {
			p := outlierPoints[pi]
			assignment[p] = append(assignment[p], si)
			pi++
			continue
		}
		pending = append(pending, si)
	}
	for _, si := range pending {
		// Attach to an outlier not already deviating in si.
		attached := false
		for _, p := range outlierPoints {
			if len(assignment[p]) == 1 && assignment[p][0] != si {
				assignment[p] = append(assignment[p], si)
				attached = true
				break
			}
		}
		if !attached {
			return nil, nil, fmt.Errorf("synth %q: cannot place double outlier in subspace %d", c.Name, si)
		}
	}

	cols := make([][]float64, c.TotalDims)
	for f := range cols {
		cols[f] = make([]float64, n)
	}

	// Fill each relevant subspace.
	for si, sub := range subs {
		clusters, outlierCells, err := planCells(rng, sub.Dim(), c.ClustersPerSubspace)
		if err != nil {
			return nil, nil, fmt.Errorf("synth %q: subspace %d: %w", c.Name, si, err)
		}
		// Which points deviate here?
		deviates := make(map[int]bool)
		for p, sids := range assignment {
			for _, id := range sids {
				if id == si {
					deviates[p] = true
				}
			}
		}
		// Pre-allocate inliers to clusters: proportional to the cluster
		// weights but with a floor comfortably above the detectors'
		// neighbourhood sizes, so no legitimate cluster reads as sparse.
		inlierClusters := allocateClusterPoints(rng, clusters, n-len(deviates))
		// Per-coordinate edge direction, fixed per subspace so the planted
		// anomalies stay tightly clustered: push toward the interior of
		// [0, 1] so offsets never clip.
		edgeDir := make([]float64, sub.Dim())
		for j, cell := range outlierCells[0] {
			if gridLevels[cell] < 0.5 {
				edgeDir[j] = outlierEdgeOffset
			} else {
				edgeDir[j] = -outlierEdgeOffset
			}
		}
		ci := 0
		oi := 0
		for p := 0; p < n; p++ {
			if deviates[p] {
				cell := outlierCells[oi%len(outlierCells)]
				oi++
				for j, f := range sub {
					v := gridLevels[cell[j]] + edgeDir[j] + (rng.Float64()*2-1)*outlierJitter
					cols[f][p] = clamp01(v)
				}
				continue
			}
			cluster := clusters[inlierClusters[ci]].cell
			ci++
			for j, f := range sub {
				v := gridLevels[cluster[j]] + rng.NormFloat64()*inlierNoiseStd
				cols[f][p] = clamp01(v)
			}
		}
	}

	// Irrelevant features: independent uniform noise on a narrower band
	// than the cluster grid. In the original HiCS data the "other"
	// features of any given outlier belong to other planted subspaces and
	// are therefore locally tight; a full-range uniform here would make
	// irrelevant features dominate distances in augmented views and
	// destroy property (iv) (outliers identifiable in supersets).
	for f := next; f < c.TotalDims; f++ {
		for p := 0; p < n; p++ {
			cols[f][p] = noiseLo + rng.Float64()*(noiseHi-noiseLo)
		}
	}

	ds, err := dataset.New(c.Name, cols, nil)
	if err != nil {
		return nil, nil, err
	}
	relevant := make(map[int][]subspace.Subspace, totalOutliers)
	for p, sids := range assignment {
		for _, si := range sids {
			relevant[p] = append(relevant[p], subs[si])
		}
	}
	return ds, dataset.NewGroundTruth(relevant), nil
}

// Cluster weights: diagonal clusters carry most of the inlier mass so that
// conditioning on one feature concentrates the others (high HiCS contrast —
// property iii), while the masking clusters get just enough mass to hide
// the outliers' lower-dimensional projections (property v) without
// flattening the conditional distributions.
const (
	diagonalClusterWeight = 1.0
	maskingClusterWeight  = 0.18
	extraClusterWeight    = 0.3
)

// planCells chooses the inlier cluster cells (with sampling weights) and
// the outlier cells of one planted subspace so that the HiCS dataset
// properties hold BY CONSTRUCTION:
//
//   - Outlier cells are unoccupied by clusters and differ from every cluster
//     in at least one grid level (≥ 0.3 gap ≫ the 0.03 inlier noise), so
//     the full subspace isolates the outliers — property (ii).
//   - For every outlier cell, EVERY (dim−1)-dimensional projection of the
//     cell is covered by some cluster's projection. A covered (dim−1)
//     projection covers all its sub-projections too, so outliers are mixed
//     with inliers in every lower-dimensional projection — property (v).
//   - Diagonal clusters guarantee each level appears on every feature and
//     dominate the mixture, keeping the features strongly dependent.
//
// The masking clusters are built directly: for each outlier cell and each
// coordinate j, a cluster is added that matches the cell everywhere except
// at j. That cluster realises the projection dropping coordinate j.
func planCells(rng *rand.Rand, dim, want int) (clusters []weightedCell, outliers [][]int, err error) {
	if want <= 0 {
		want = dim + 3
	}
	levels := len(gridLevels)
	total := intPow(levels, dim)

	// Pick one non-diagonal outlier cell per subspace: the paper's
	// anomalies are highly clustered — each subspace explains exactly one
	// small group of deviating points.
	_ = total
	isDiagonal := func(cell []int) bool {
		for _, l := range cell[1:] {
			if l != cell[0] {
				return false
			}
		}
		return true
	}
	outSet := make(map[int]bool)
	for attempts := 0; len(outliers) < 1 && attempts < 256; attempts++ {
		cell := make([]int, dim)
		for j := range cell {
			cell[j] = rng.Intn(levels)
		}
		if isDiagonal(cell) || outSet[cellID(cell)] {
			continue
		}
		outSet[cellID(cell)] = true
		outliers = append(outliers, cell)
	}
	if len(outliers) == 0 {
		return nil, nil, fmt.Errorf("no outlier cell available (dim %d)", dim)
	}

	chosen := make(map[int]bool)
	addCluster := func(cell []int, weight float64) {
		id := cellID(cell)
		if chosen[id] || outSet[id] {
			return
		}
		chosen[id] = true
		clusters = append(clusters, weightedCell{cell: append([]int(nil), cell...), weight: weight})
	}
	// Diagonals first: per-feature level coverage and the dominant,
	// strongly dependent structure.
	for li := 0; li < levels; li++ {
		cell := make([]int, dim)
		for j := range cell {
			cell[j] = li
		}
		addCluster(cell, diagonalClusterWeight)
	}
	// Masking clusters: for each outlier cell, cover every
	// (dim−1)-projection with a one-coordinate-off neighbour. Among the
	// admissible levels for the differing coordinate, prefer the FARTHEST
	// from the outlier's: the same cluster then both masks the projection
	// and leaves the outlier maximally isolated in the full subspace.
	for _, out := range outliers {
		for j := 0; j < dim; j++ {
			neighbour := append([]int(nil), out...)
			bestGap := -1.0
			bestLevel := (out[j] + 1) % levels
			for l := 0; l < levels; l++ {
				if l == out[j] {
					continue
				}
				neighbour[j] = l
				if outSet[cellID(neighbour)] {
					continue
				}
				if gap := math.Abs(gridLevels[l] - gridLevels[out[j]]); gap > bestGap {
					bestGap = gap
					bestLevel = l
				}
			}
			neighbour[j] = bestLevel
			addCluster(neighbour, maskingClusterWeight)
		}
	}
	// Random extras up to the requested cluster count.
	for extra := 0; len(clusters) < want && extra < 256; extra++ {
		cell := make([]int, dim)
		for j := range cell {
			cell[j] = rng.Intn(levels)
		}
		addCluster(cell, extraClusterWeight)
	}
	return clusters, outliers, nil
}

// weightedCell is one inlier cluster cell with its mixture weight.
type weightedCell struct {
	cell   []int
	weight float64
}

// minClusterPoints is the smallest population any cluster may receive —
// above the k=15 neighbourhoods of LOF and Fast ABOD, so that small masking
// clusters never read as sparse regions themselves.
const minClusterPoints = 20

// allocateClusterPoints distributes count inlier slots over the clusters
// proportionally to their weights, flooring every cluster at
// minClusterPoints (scaled down when count is too small), and returns a
// shuffled per-slot cluster index.
func allocateClusterPoints(rng *rand.Rand, clusters []weightedCell, count int) []int {
	k := len(clusters)
	floor := minClusterPoints
	if floor*k > count {
		floor = count / k
	}
	counts := make([]int, k)
	remaining := count
	var totalWeight float64
	for _, c := range clusters {
		totalWeight += c.weight
	}
	for i := range counts {
		counts[i] = floor
		remaining -= floor
	}
	// Distribute the remainder proportionally (largest-remainder method).
	type share struct {
		idx  int
		frac float64
	}
	shares := make([]share, k)
	used := 0
	for i, c := range clusters {
		exact := float64(remaining) * c.weight / totalWeight
		add := int(exact)
		counts[i] += add
		used += add
		shares[i] = share{idx: i, frac: exact - float64(add)}
	}
	sort.Slice(shares, func(a, b int) bool {
		if shares[a].frac != shares[b].frac {
			return shares[a].frac > shares[b].frac
		}
		return shares[a].idx < shares[b].idx
	})
	for i := 0; i < remaining-used; i++ {
		counts[shares[i%k].idx]++
	}
	slots := make([]int, 0, count)
	for i, c := range counts {
		for j := 0; j < c; j++ {
			slots = append(slots, i)
		}
	}
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	return slots
}

func cellID(cell []int) int {
	id := 0
	for _, l := range cell {
		id = id*len(gridLevels) + l
	}
	return id
}

func intPow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"anex/internal/dataset"
)

// FullSpaceConfig describes a real-world-like dataset with full-space
// density outliers. It substitutes the UCI datasets of the paper (Breast,
// Breast Diagnostic, Electricity), preserving their shapes, 10 %
// contamination, and the property that outliers are visible in the full
// feature space as well as in projections and augmentations of their
// relevant subspaces.
type FullSpaceConfig struct {
	// Name of the generated dataset.
	Name string
	// N is the number of points and D the number of features.
	N, D int
	// NumOutliers is the number of density outliers (≈ 10 % of N in the
	// paper's datasets).
	NumOutliers int
	// Clusters is the number of inlier Gaussian clusters; zero means 3.
	Clusters int
	// CorrelationRank is the rank of the shared low-rank factor that
	// correlates features within a cluster; zero means 3.
	CorrelationRank int
	// Seed drives all randomness.
	Seed int64
}

// Validate checks the configuration for consistency.
func (c *FullSpaceConfig) Validate() error {
	if c.N < 10 || c.D < 2 {
		return fmt.Errorf("synth %q: need N ≥ 10 and D ≥ 2, got %d×%d", c.Name, c.N, c.D)
	}
	if c.NumOutliers < 1 || c.NumOutliers > c.N/2 {
		return fmt.Errorf("synth %q: outlier count %d out of range [1, %d]", c.Name, c.NumOutliers, c.N/2)
	}
	return nil
}

const (
	inlierClusterStd = 0.6
	clusterSpread    = 4.0
	// Outliers are pushed 3–4.5 cluster radii away from their cluster's
	// mean along a random direction: clearly sparse in the full space yet
	// deviating moderately on every feature, which keeps them visible in
	// projections as well (Table 1: "Projections / Augmentations").
	outlierPushMin = 3.0
	outlierPushMax = 4.5
)

// GenerateFullSpaceOutliers builds the dataset and returns it together with
// the indices of the planted outliers. Ground truth is NOT planted here:
// per the paper's methodology it must be derived by exhaustive detector
// search (see DeriveTopSubspaceGroundTruth), because these are full-space
// outliers whose best explaining subspaces are a property of the detector.
func GenerateFullSpaceOutliers(c FullSpaceConfig) (*dataset.Dataset, []int, error) {
	if err := c.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	clusters := c.Clusters
	if clusters <= 0 {
		clusters = 3
	}
	rank := c.CorrelationRank
	if rank <= 0 {
		rank = 3
	}
	if rank > c.D {
		rank = c.D
	}

	// Cluster parameters: spread-out means and a shared low-rank loading
	// matrix per cluster that correlates the features.
	means := make([][]float64, clusters)
	loadings := make([][][]float64, clusters) // loadings[c][f][r]
	for ci := range means {
		mu := make([]float64, c.D)
		for f := range mu {
			mu[f] = (rng.Float64()*2 - 1) * clusterSpread
		}
		means[ci] = mu
		load := make([][]float64, c.D)
		for f := range load {
			row := make([]float64, rank)
			for r := range row {
				row[r] = rng.NormFloat64() * 0.8
			}
			load[f] = row
		}
		loadings[ci] = load
	}

	cols := make([][]float64, c.D)
	for f := range cols {
		cols[f] = make([]float64, c.N)
	}

	outlierSet := make(map[int]bool, c.NumOutliers)
	outliers := rng.Perm(c.N)[:c.NumOutliers]
	for _, p := range outliers {
		outlierSet[p] = true
	}

	sample := func(ci int, scale float64) []float64 {
		// x = μ + L·w + ε, features correlated through the shared factors w.
		w := make([]float64, rank)
		for r := range w {
			w[r] = rng.NormFloat64()
		}
		x := make([]float64, c.D)
		for f := 0; f < c.D; f++ {
			var lw float64
			for r := 0; r < rank; r++ {
				lw += loadings[ci][f][r] * w[r]
			}
			x[f] = means[ci][f] + scale*(lw+rng.NormFloat64()*inlierClusterStd)
		}
		return x
	}

	// Approximate full-space cluster radius for the outlier push distance.
	radius := inlierClusterStd * math.Sqrt(float64(c.D)) * (1 + 0.8*math.Sqrt(float64(rank))/math.Sqrt(float64(c.D)))

	for p := 0; p < c.N; p++ {
		ci := rng.Intn(clusters)
		if !outlierSet[p] {
			x := sample(ci, 1)
			for f := 0; f < c.D; f++ {
				cols[f][p] = x[f]
			}
			continue
		}
		// Outlier: push away from the cluster mean along a random
		// direction with per-feature deviation on every feature.
		dir := make([]float64, c.D)
		var norm float64
		for f := range dir {
			dir[f] = rng.NormFloat64()
			norm += dir[f] * dir[f]
		}
		norm = math.Sqrt(norm)
		push := outlierPushMin + rng.Float64()*(outlierPushMax-outlierPushMin)
		for f := 0; f < c.D; f++ {
			cols[f][p] = means[ci][f] + dir[f]/norm*push*radius + rng.NormFloat64()*inlierClusterStd*0.3
		}
	}

	ds, err := dataset.New(c.Name, cols, nil)
	if err != nil {
		return nil, nil, err
	}
	sorted := append([]int(nil), outliers...)
	sort.Ints(sorted)
	return ds, sorted, nil
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, v := MeanVariance(xs)
	if m != 5 {
		t.Errorf("mean = %v", m)
	}
	// Sample variance: Σ(x−5)² = 32; 32/7 ≈ 4.5714.
	if !almostEqual(v, 32.0/7, 1e-12) {
		t.Errorf("variance = %v", v)
	}
	_, pv := PopulationMeanVariance(xs)
	if !almostEqual(pv, 4, 1e-12) {
		t.Errorf("population variance = %v", pv)
	}
}

func TestVarianceEdgeCases(t *testing.T) {
	if v := Variance([]float64{1}); !math.IsNaN(v) {
		t.Errorf("single-element variance = %v", v)
	}
	if v := Variance([]float64{3, 3, 3}); v != 0 {
		t.Errorf("constant variance = %v", v)
	}
}

func TestZScore(t *testing.T) {
	xs := []float64{0, 0, 0, 0, 10}
	// mean = 2, population var = 16, sd = 4 → z(10) = 2.
	if z := ZScore(10, xs); !almostEqual(z, 2, 1e-12) {
		t.Errorf("ZScore = %v", z)
	}
	if z := ZScore(5, []float64{1, 1, 1}); z != 0 {
		t.Errorf("constant population ZScore = %v, want 0", z)
	}
}

func TestZScoresStandardises(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	zs := ZScores(xs)
	m, v := PopulationMeanVariance(zs)
	if !almostEqual(m, 0, 1e-9) || !almostEqual(v, 1, 1e-9) {
		t.Errorf("standardised mean %v var %v", m, v)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("MinMax(nil) = %v, %v", lo, hi)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1. / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRank(t *testing.T) {
	got := Rank([]float64{30, 10, 20})
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestStudentTCDF(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1.0, 1, 0.75},
		{2.015, 5, 0.95},
		{-2.015, 5, 0.05},
		{1.96, 1e6, 0.975}, // approaches the normal
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.df); !almostEqual(got, c.want, 2e-3) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.df, got, c.want)
		}
	}
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+Inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-Inf) = %v", got)
	}
	if got := StudentTCDF(1, -1); !math.IsNaN(got) {
		t.Errorf("CDF with df<0 = %v, want NaN", got)
	}
}

func TestNormalCDF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5}, {1.959964, 0.975}, {-1.959964, 0.025}, {3, 0.99865},
	}
	for _, c := range cases {
		if got := NormalCDF(c.z); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestWelchTTestEqualSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	res := WelchTTest(xs, xs)
	if !almostEqual(res.Statistic, 0, 1e-12) {
		t.Errorf("t = %v", res.Statistic)
	}
	if res.P < 0.99 {
		t.Errorf("p = %v, want ≈ 1", res.P)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Classic Welch example (unequal variances):
	// A = {27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	// B = {27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5}
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5}
	res := WelchTTest(a, b)
	// Reference values computed independently from the Welch formulas:
	// t ≈ −2.70778, df ≈ 26.9527, two-sided p ≈ 0.0116 (t_{0.995,27} = 2.771).
	if !almostEqual(res.Statistic, -2.70778, 1e-4) {
		t.Errorf("t = %v, want ≈ -2.70778", res.Statistic)
	}
	if !almostEqual(res.P, 0.0116, 5e-4) {
		t.Errorf("p = %v, want ≈ 0.0116", res.P)
	}
	if !almostEqual(res.DF, 26.9527, 1e-3) {
		t.Errorf("df = %v, want ≈ 26.9527", res.DF)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	res := WelchTTest([]float64{1}, []float64{1, 2, 3})
	if res.P != 1 {
		t.Errorf("tiny sample p = %v, want 1", res.P)
	}
	// Identical constants: no discrepancy.
	res = WelchTTest([]float64{2, 2, 2}, []float64{2, 2})
	if res.P != 1 {
		t.Errorf("identical constants p = %v, want 1", res.P)
	}
	// Different constants: certain discrepancy with sign.
	res = WelchTTest([]float64{3, 3, 3}, []float64{1, 1, 1})
	if !math.IsInf(res.Statistic, 1) || res.P != 0 {
		t.Errorf("different constants = %+v", res)
	}
	res = WelchTTest([]float64{1, 1, 1}, []float64{3, 3, 3})
	if !math.IsInf(res.Statistic, -1) {
		t.Errorf("sign: %+v", res)
	}
}

func TestWelchTTestSeparatesShiftedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 60)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 2
	}
	res := WelchTTest(a, b)
	if res.Statistic >= 0 {
		t.Errorf("t = %v, want negative (a below b)", res.Statistic)
	}
	if res.P > 1e-6 {
		t.Errorf("p = %v, want ≈ 0", res.P)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 200)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := KolmogorovSmirnov(a, b)
	if res.P < 0.01 {
		t.Errorf("same distribution rejected: p = %v, D = %v", res.P, res.Statistic)
	}
}

func TestKolmogorovSmirnovDifferentDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64() + 1.5
	}
	res := KolmogorovSmirnov(a, b)
	if res.P > 1e-6 {
		t.Errorf("shifted distribution not detected: p = %v", res.P)
	}
	if res.Statistic < 0.4 {
		t.Errorf("D = %v, want large", res.Statistic)
	}
}

func TestKolmogorovSmirnovKnownStatistic(t *testing.T) {
	// D between {1,2,3} and {1.5,2.5,3.5} is 1/3.
	res := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1.5, 2.5, 3.5})
	if !almostEqual(res.Statistic, 1.0/3, 1e-12) {
		t.Errorf("D = %v, want 1/3", res.Statistic)
	}
	if res := KolmogorovSmirnov(nil, []float64{1}); res.P != 1 {
		t.Errorf("empty sample p = %v", res.P)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %v", r)
	}
	if r := Pearson(xs, []float64{1, 1, 1, 1, 1}); !math.IsNaN(r) {
		t.Errorf("constant r = %v, want NaN", r)
	}
	if r := Pearson(xs, ys[:3]); !math.IsNaN(r) {
		t.Errorf("mismatched lengths r = %v, want NaN", r)
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	if c := Covariance(xs, ys); !almostEqual(c, 2, 1e-12) {
		t.Errorf("covariance = %v", c)
	}
}

func TestMeanAbsPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	c := []float64{8, 6, 4, 2}
	if r := MeanAbsPearson([][]float64{a, b, c}); !almostEqual(r, 1, 1e-12) {
		t.Errorf("mean abs r = %v", r)
	}
	if r := MeanAbsPearson([][]float64{a}); !math.IsNaN(r) {
		t.Errorf("single column = %v, want NaN", r)
	}
}

func TestPropertyZScoreLinearInvariance(t *testing.T) {
	// Z-scores are invariant under affine transforms with positive scale.
	f := func(raw []float64, shift float64, scaleSeed uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			xs = append(xs, v)
		}
		if len(xs) < 3 || Variance(xs) < 1e-9 {
			return true
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 1
		}
		scale := 0.5 + float64(scaleSeed%100)/10
		ys := make([]float64, len(xs))
		for i, v := range xs {
			ys[i] = v*scale + shift
		}
		z1 := ZScores(xs)
		z2 := ZScores(ys)
		for i := range z1 {
			if !almostEqual(z1[i], z2[i], 1e-6*(1+math.Abs(z1[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWelchSymmetry(t *testing.T) {
	// Swapping the samples flips the sign of t and preserves p.
	f := func(ra, rb []float64) bool {
		a := sanitize(ra)
		b := sanitize(rb)
		if len(a) < 2 || len(b) < 2 {
			return true
		}
		r1 := WelchTTest(a, b)
		r2 := WelchTTest(b, a)
		if math.IsInf(r1.Statistic, 0) {
			return math.IsInf(r2.Statistic, 0)
		}
		return almostEqual(r1.Statistic, -r2.Statistic, 1e-9) && almostEqual(r1.P, r2.P, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKSStatisticBounds(t *testing.T) {
	f := func(ra, rb []float64) bool {
		a := sanitize(ra)
		b := sanitize(rb)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		res := KolmogorovSmirnov(a, b)
		return res.Statistic >= 0 && res.Statistic <= 1 && res.P >= 0 && res.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
			continue
		}
		out = append(out, v)
	}
	return out
}

func TestStdDev(t *testing.T) {
	if sd := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(sd, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, v := MeanVariance([]float64{5}); !math.IsNaN(v) {
		t.Error("single-sample variance should be NaN")
	}
	if m, v := PopulationMeanVariance(nil); !math.IsNaN(m) || !math.IsNaN(v) {
		t.Error("empty population stats should be NaN")
	}
	if c := Covariance([]float64{1}, []float64{2}); !math.IsNaN(c) {
		t.Error("single-pair covariance should be NaN")
	}
	if c := Covariance([]float64{1, 2}, []float64{1}); !math.IsNaN(c) {
		t.Error("mismatched covariance should be NaN")
	}
	if r := MeanAbsPearson([][]float64{{1, 1, 1}, {2, 2, 2}}); !math.IsNaN(r) {
		t.Error("all-constant MeanAbsPearson should be NaN")
	}
	if zs := ZScores(nil); len(zs) != 0 {
		t.Error("empty ZScores")
	}
	if q := Quantile(nil, 0.5); !math.IsNaN(q) {
		t.Error("empty Quantile should be NaN")
	}
	if q := Quantile([]float64{3}, 0.37); q != 3 {
		t.Errorf("single-element quantile = %v", q)
	}
}

func TestKSPValueEdges(t *testing.T) {
	if p := ksPValue(0); p != 1 {
		t.Errorf("λ=0 p = %v", p)
	}
	if p := ksPValue(-1); p != 1 {
		t.Errorf("λ<0 p = %v", p)
	}
	// Huge λ drives the tail to ~0 and must stay clamped in [0,1].
	if p := ksPValue(50); p < 0 || p > 1e-10 {
		t.Errorf("λ=50 p = %v", p)
	}
	// Small λ: series alternates; result still within [0,1].
	if p := ksPValue(0.2); p < 0 || p > 1 {
		t.Errorf("λ=0.2 p = %v", p)
	}
}

func TestRegIncompleteBetaEdges(t *testing.T) {
	if v := regIncompleteBeta(2, 3, 0); v != 0 {
		t.Errorf("I_0 = %v", v)
	}
	if v := regIncompleteBeta(2, 3, 1); v != 1 {
		t.Errorf("I_1 = %v", v)
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	for _, x := range []float64{0.1, 0.35, 0.72, 0.9} {
		lhs := regIncompleteBeta(2.5, 4.5, x)
		rhs := 1 - regIncompleteBeta(4.5, 2.5, 1-x)
		if !almostEqual(lhs, rhs, 1e-10) {
			t.Errorf("symmetry at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
	// I_x(1,1) is the identity (uniform CDF).
	if v := regIncompleteBeta(1, 1, 0.42); !almostEqual(v, 0.42, 1e-10) {
		t.Errorf("I_x(1,1) = %v", v)
	}
}

func TestWelchNaNInputs(t *testing.T) {
	// NaN-contaminated samples yield a no-evidence result rather than
	// propagating NaN into the decision.
	res := WelchTTest([]float64{math.NaN(), 1, 2}, []float64{1, 2, 3})
	if !math.IsNaN(res.Statistic) && res.P >= 0 && res.P <= 1 {
		return // p stays usable
	}
	if res.P != 1 && !math.IsNaN(res.Statistic) {
		t.Errorf("unexpected result on NaN input: %+v", res)
	}
}

package stats

import "math"

// TTestResult holds the outcome of a two-sample test.
type TTestResult struct {
	// Statistic is the (signed) test statistic: positive when the first
	// sample's mean exceeds the second's.
	Statistic float64
	// DF is the Welch–Satterthwaite degrees of freedom.
	DF float64
	// P is the two-sided p-value.
	P float64
}

// WelchTTest performs the two-sample Welch t-test of the null hypothesis
// that xs and ys have equal means, without assuming equal variances or
// sample sizes (Welch 1938). RefOut uses the signed statistic as the
// feature-discrepancy measure, and HiCS uses 1−p as the subspace contrast.
//
// Both samples must contain at least two elements; otherwise a zero-valued
// result with P=1 is returned, which makes degenerate partitions score as
// "no discrepancy".
func WelchTTest(xs, ys []float64) TTestResult {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{P: 1}
	}
	mx, vx := MeanVariance(xs)
	my, vy := MeanVariance(ys)
	nx, ny := float64(len(xs)), float64(len(ys))
	sx := vx / nx
	sy := vy / ny
	se := math.Sqrt(sx + sy)
	if se == 0 || math.IsNaN(se) {
		// Identical constant samples: no evidence of discrepancy.
		if mx == my {
			return TTestResult{P: 1}
		}
		// Different constants: infinite evidence.
		t := math.Inf(1)
		if mx < my {
			t = math.Inf(-1)
		}
		return TTestResult{Statistic: t, DF: nx + ny - 2, P: 0}
	}
	t := (mx - my) / se
	// Welch–Satterthwaite degrees of freedom.
	num := (sx + sy) * (sx + sy)
	den := sx*sx/(nx-1) + sy*sy/(ny-1)
	df := num / den
	if den == 0 || math.IsNaN(df) {
		df = nx + ny - 2
	}
	p := 2 * StudentTCDF(-math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{Statistic: t, DF: df, P: p}
}

package stats

import "math"

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns NaN when the slices differ in length, contain fewer
// than two elements, or when either sample is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx := Mean(xs)
	my := Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Covariance returns the unbiased sample covariance of the paired samples.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx := Mean(xs)
	my := Mean(ys)
	var cov float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
	}
	return cov / float64(len(xs)-1)
}

// MeanAbsPearson returns the mean absolute pairwise Pearson correlation over
// the given columns. It is used to verify that planted relevant subspaces in
// the synthetic datasets indeed consist of highly correlated features
// (Section 3.2 of the paper).
func MeanAbsPearson(columns [][]float64) float64 {
	k := len(columns)
	if k < 2 {
		return math.NaN()
	}
	var sum float64
	var count int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			r := Pearson(columns[i], columns[j])
			if !math.IsNaN(r) {
				sum += math.Abs(r)
				count++
			}
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

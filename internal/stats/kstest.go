package stats

import (
	"math"
	"sort"
)

// KSTestResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSTestResult struct {
	// Statistic is the supremum distance between the two empirical CDFs.
	Statistic float64
	// P is the asymptotic two-sided p-value.
	P float64
}

// KolmogorovSmirnov performs the two-sample Kolmogorov–Smirnov test of the
// null hypothesis that xs and ys are drawn from the same distribution. It is
// the alternative contrast test for HiCS (footnote 2 of the paper).
//
// Empty samples yield a zero statistic with P=1.
func KolmogorovSmirnov(xs, ys []float64) KSTestResult {
	if len(xs) == 0 || len(ys) == 0 {
		return KSTestResult{P: 1}
	}
	sx := make([]float64, len(xs))
	copy(sx, xs)
	sort.Float64s(sx)
	sy := make([]float64, len(ys))
	copy(sy, ys)
	sort.Float64s(sy)

	nx, ny := float64(len(sx)), float64(len(sy))
	var d float64
	i, j := 0, 0
	for i < len(sx) && j < len(sy) {
		v := math.Min(sx[i], sy[j])
		for i < len(sx) && sx[i] <= v {
			i++
		}
		for j < len(sy) && sy[j] <= v {
			j++
		}
		diff := math.Abs(float64(i)/nx - float64(j)/ny)
		if diff > d {
			d = diff
		}
	}
	ne := nx * ny / (nx + ny)
	p := ksPValue((math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d)
	return KSTestResult{Statistic: d, P: p}
}

// ksPValue evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 100
	sum := 0.0
	sign := 1.0
	for k := 1; k <= maxTerms; k++ {
		term := sign * 2 * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	switch {
	case sum < 0:
		return 0
	case sum > 1:
		return 1
	}
	return sum
}

package stats

import "math"

// regIncompleteBeta computes the regularised incomplete beta function
// I_x(a, b) using the continued-fraction expansion from Numerical Recipes.
// It is the building block for the Student-t CDF used by Welch's t-test.
func regIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnBeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	// Use the symmetry relation for faster convergence.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIterations = 300
		epsilon       = 3e-14
		tiny          = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIterations; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsilon {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// StudentTCDF returns P(T ≤ t) for a Student-t distribution with df degrees
// of freedom. df may be fractional (Welch–Satterthwaite).
func StudentTCDF(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * regIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// NormalCDF returns the standard normal cumulative distribution Φ(z).
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Package stats implements the statistical substrate of the testbed:
// descriptive statistics, the two-sample Welch t-test and
// Kolmogorov–Smirnov test used by RefOut and HiCS, correlation, and the
// special functions (regularised incomplete beta, error function) their
// p-values require. Everything is implemented from scratch on float64
// slices; no external numerical libraries are used.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanVariance returns the mean and the unbiased sample variance of xs in a
// single pass (Welford's algorithm). Variance is NaN when len(xs) < 2.
func MeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	if len(xs) < 2 {
		return m, math.NaN()
	}
	return m, m2 / float64(len(xs)-1)
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	_, v := MeanVariance(xs)
	return v
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// PopulationMeanVariance returns the mean and the population (biased)
// variance of xs. The Z-score standardisation of outlier scores uses the
// population variance, matching the paper's score(p_s)' definition.
func PopulationMeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	return m, m2 / float64(len(xs))
}

// ZScore standardises value x against the population described by xs:
// (x − mean) / sqrt(populationVariance). If the population variance is zero
// (all scores identical) it returns 0, so constant score distributions
// neither help nor hurt a candidate subspace.
func ZScore(x float64, xs []float64) float64 {
	m, v := PopulationMeanVariance(xs)
	return ZScoreFromMoments(x, m, v)
}

// ZScoreFromMoments is ZScore for callers that already hold the population
// moments (memoised score distributions): same formula, same zero-variance
// convention, bit-identical results.
func ZScoreFromMoments(x, mean, variance float64) float64 {
	if variance <= 0 || math.IsNaN(variance) {
		return 0
	}
	return (x - mean) / math.Sqrt(variance)
}

// ZScores standardises every element of xs in place-compatible fashion,
// returning a new slice. Constant inputs map to all zeros.
func ZScores(xs []float64) []float64 {
	out := make([]float64, len(xs))
	m, v := PopulationMeanVariance(xs)
	if v <= 0 || math.IsNaN(v) {
		return out
	}
	sd := math.Sqrt(v)
	for i, x := range xs {
		out[i] = (x - m) / sd
	}
	return out
}

// MinMax returns the minimum and maximum of xs. Both are NaN for an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Rank returns, for each element of xs, its 0-based rank in ascending order.
// Ties are broken by original index, which keeps the ranking deterministic.
func Rank(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]int, len(xs))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}

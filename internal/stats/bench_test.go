package stats

import (
	"math/rand"
	"testing"
)

func benchSamples(n int) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 0.3
	}
	return a, b
}

func BenchmarkWelchTTest(b *testing.B) {
	xs, ys := benchSamples(1000)
	for i := 0; i < b.N; i++ {
		WelchTTest(xs, ys)
	}
}

func BenchmarkKolmogorovSmirnov(b *testing.B) {
	xs, ys := benchSamples(1000)
	for i := 0; i < b.N; i++ {
		KolmogorovSmirnov(xs, ys)
	}
}

func BenchmarkZScores(b *testing.B) {
	xs, _ := benchSamples(1000)
	for i := 0; i < b.N; i++ {
		ZScores(xs)
	}
}

func BenchmarkStudentTCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StudentTCDF(2.1, 37.4)
	}
}

package failpoint

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedEvalIsNil(t *testing.T) {
	Disable()
	if err := Eval("anything"); err != nil {
		t.Fatalf("disarmed Eval returned %v, want nil", err)
	}
	if Enabled() {
		t.Error("Enabled() true after Disable")
	}
}

func TestErrorAction(t *testing.T) {
	if err := Enable("a.b=error"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	err := Eval("a.b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Eval = %v, want ErrInjected", err)
	}
	if err := Eval("other.site"); err != nil {
		t.Errorf("unarmed site returned %v, want nil", err)
	}
	// Every-hit action keeps firing.
	if err := Eval("a.b"); !errors.Is(err, ErrInjected) {
		t.Errorf("second Eval = %v, want ErrInjected", err)
	}
	if got := Hits("a.b"); got != 2 {
		t.Errorf("Hits = %d, want 2", got)
	}
}

func TestOnHitSelectorIsOneShot(t *testing.T) {
	if err := Enable("s=error@3"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	for i := 1; i <= 5; i++ {
		err := Eval("s")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Errorf("hit %d: err = %v, want ErrInjected", i, err)
		}
		if i != 3 && err != nil {
			t.Errorf("hit %d: err = %v, want nil", i, err)
		}
	}
	if got := Hits("s"); got != 5 {
		t.Errorf("Hits = %d, want 5", got)
	}
}

func TestPanicAction(t *testing.T) {
	if err := Enable("p=panic"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	defer func() {
		if recover() == nil {
			t.Error("panic action did not panic")
		}
	}()
	Eval("p")
}

func TestDelayAction(t *testing.T) {
	if err := Enable("d=delay:30ms"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	start := time.Now()
	if err := Eval("d"); err != nil {
		t.Fatalf("delay action returned %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("delay action returned after %v, want ≥ 30ms", elapsed)
	}
}

func TestSpecParsing(t *testing.T) {
	bad := []string{"", "=error", "s=", "s=explode", "s=error@0", "s=error@x",
		"s=delay:nope", "s=error;s=panic"}
	for _, spec := range bad {
		if err := Enable(spec); err == nil {
			Disable()
			t.Errorf("Enable(%q) accepted, want error", spec)
		}
	}
	if err := Enable(" a=error ; b=delay:1ms ; c=panic@2 "); err != nil {
		t.Fatalf("whitespace spec rejected: %v", err)
	}
	defer Disable()
	got := Armed()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Armed() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Armed() = %v, want %v", got, want)
		}
	}
}

// TestEvalConcurrent pins that the registry is race-free under -race: many
// goroutines hammering one armed site while another disarms it.
func TestEvalConcurrent(t *testing.T) {
	if err := Enable("hot=error@50"); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Eval("hot")
			}
		}()
	}
	wg.Wait()
	if got := Hits("hot"); got != 800 {
		t.Errorf("Hits = %d, want 800", got)
	}
}

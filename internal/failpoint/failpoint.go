// Package failpoint is a deterministic fault-injection registry for crash
// and degradation testing. Code under test declares named sites with
// Eval("site"); tests (or an operator chasing a bug, via the anexd
// -failpoints flag / ANEX_FAILPOINTS env var) arm actions against those
// sites — return an error, panic, or delay — optionally only on the Nth
// hit, which is what lets a crash-schedule test walk a fault through
// every write of a scripted history.
//
// The registry is disarmed by default and costs one atomic load per Eval
// call in that state — no map lookup, no lock, no allocation — so
// production code can leave its sites compiled in.
//
// Spec grammar (Enable):
//
//	spec    := site "=" action *( ";" site "=" action )
//	action  := ( "error" | "panic" | "delay:" duration ) [ "@" hit ]
//
// "error" makes Eval return ErrInjected wrapped with the site name;
// "panic" panics with the site name; "delay:50ms" sleeps then returns
// nil. A trailing "@N" fires the action only on the site's Nth hit
// (1-based) and disarms it afterwards; without it the action fires on
// every hit. Hits are counted per armed site from the moment Enable
// arms it.
package failpoint

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every "error" action returns (wrapped with
// the site name). Code that must distinguish an injected fault from a
// real one — the crash-schedule harness, degraded-mode plumbing tests —
// checks errors.Is(err, ErrInjected).
var ErrInjected = errors.New("failpoint: injected fault")

// Kind is an armed action's behaviour at its site.
type Kind uint8

const (
	// KindError makes Eval return ErrInjected wrapped with the site name.
	KindError Kind = iota + 1
	// KindPanic makes Eval panic with the site name.
	KindPanic
	// KindDelay makes Eval sleep for the configured duration, then return
	// nil — a latency fault, not a failure.
	KindDelay
)

// action is one armed site.
type action struct {
	kind  Kind
	delay time.Duration
	onHit int // fire only on the Nth hit (1-based); 0 = every hit
	hits  int // Eval calls observed since arming
	fired bool
}

var (
	// armed is the fast-path gate: false means Eval returns nil after one
	// atomic load, with no site bookkeeping at all.
	armed atomic.Bool

	mu    sync.Mutex
	sites map[string]*action
)

// Enable parses spec and arms its sites, replacing any previously armed
// set. An empty spec is an error (use Disable to disarm).
func Enable(spec string) error {
	parsed, err := parse(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	sites = parsed
	mu.Unlock()
	armed.Store(true)
	return nil
}

// Disable disarms every site and restores the zero-overhead fast path.
// Hit counters are discarded with the armed set.
func Disable() {
	armed.Store(false)
	mu.Lock()
	sites = nil
	mu.Unlock()
}

// Enabled reports whether any sites are armed.
func Enabled() bool { return armed.Load() }

// Eval is the hook compiled into code under test: a no-op returning nil
// while the registry is disarmed, otherwise the armed action for site (if
// any) runs. Each call against an armed site increments its hit counter
// whether or not the action fires.
func Eval(site string) error {
	if !armed.Load() {
		return nil
	}
	return evalSlow(site)
}

func evalSlow(site string) error {
	mu.Lock()
	a, ok := sites[site]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.hits++
	fire := !a.fired && (a.onHit == 0 || a.hits == a.onHit)
	if fire && a.onHit > 0 {
		a.fired = true // one-shot: "@N" actions disarm after firing
	}
	kind, delay := a.kind, a.delay
	mu.Unlock()
	if !fire {
		return nil
	}
	switch kind {
	case KindPanic:
		panic(fmt.Sprintf("failpoint: injected panic at %q", site))
	case KindDelay:
		time.Sleep(delay)
		return nil
	default:
		return fmt.Errorf("site %q: %w", site, ErrInjected)
	}
}

// Hits returns how many Eval calls the armed site has observed. Zero for
// unarmed or unknown sites.
func Hits(site string) int {
	mu.Lock()
	defer mu.Unlock()
	if a, ok := sites[site]; ok {
		return a.hits
	}
	return 0
}

// Armed returns the armed site names, sorted.
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func parse(spec string) (map[string]*action, error) {
	parsed := make(map[string]*action)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, act, ok := strings.Cut(clause, "=")
		site, act = strings.TrimSpace(site), strings.TrimSpace(act)
		if !ok || site == "" || act == "" {
			return nil, fmt.Errorf("failpoint: malformed clause %q (want site=action)", clause)
		}
		a := &action{}
		if base, hit, ok := strings.Cut(act, "@"); ok {
			n, err := strconv.Atoi(hit)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("failpoint: site %q: bad hit selector %q (want @N, N ≥ 1)", site, hit)
			}
			a.onHit = n
			act = base
		}
		switch {
		case act == "error":
			a.kind = KindError
		case act == "panic":
			a.kind = KindPanic
		case strings.HasPrefix(act, "delay:"):
			d, err := time.ParseDuration(strings.TrimPrefix(act, "delay:"))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("failpoint: site %q: bad delay %q", site, act)
			}
			a.kind = KindDelay
			a.delay = d
		default:
			return nil, fmt.Errorf("failpoint: site %q: unknown action %q (want error, panic or delay:<dur>)", site, act)
		}
		if _, dup := parsed[site]; dup {
			return nil, fmt.Errorf("failpoint: site %q armed twice in one spec", site)
		}
		parsed[site] = a
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("failpoint: empty spec")
	}
	return parsed, nil
}

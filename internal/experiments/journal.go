package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"anex/internal/pipeline"
)

// Journal persists completed pipeline cells as JSON lines so that a long
// experiment run — paper scale takes hours, like the original study — can
// be interrupted and resumed without recomputing finished cells. A journal
// is only valid for one (scale, seed) configuration; the caller encodes
// that in the file path.
type Journal struct {
	path string

	mu      sync.Mutex
	file    *os.File
	w       *bufio.Writer
	entries map[string]journalEntry
}

type journalEntry struct {
	Kind            string        `json:"kind"` // "point", "summary" or "timing"
	Dataset         string        `json:"dataset"`
	Detector        string        `json:"detector"`
	Explainer       string        `json:"explainer"`
	Dim             int           `json:"dim"`
	MAP             float64       `json:"map"`
	MeanRecall      float64       `json:"mean_recall"`
	PointsEvaluated int           `json:"points_evaluated"`
	DurationNS      time.Duration `json:"duration_ns"`
	Err             string        `json:"err,omitempty"`
}

func (e journalEntry) key() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d", e.Kind, e.Dataset, e.Detector, e.Explainer, e.Dim)
}

// OpenJournal opens (creating if absent) the journal at path and loads all
// previously recorded cells. Corrupt trailing lines (a crash mid-write) are
// ignored.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, entries: make(map[string]journalEntry)}
	if data, err := os.ReadFile(path); err == nil {
		dec := json.NewDecoder(bytes.NewReader(data))
		for {
			var e journalEntry
			if err := dec.Decode(&e); err != nil {
				break // EOF or trailing corruption
			}
			j.entries[e.key()] = e
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.file = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.file.Close()
		return err
	}
	err := j.file.Close()
	j.file = nil
	return err
}

// Len returns the number of recorded cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Get returns a previously recorded cell, if any.
func (j *Journal) Get(kind string, key resultKey) (pipeline.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[journalEntry{
		Kind: kind, Dataset: key.dataset, Detector: key.detector,
		Explainer: key.explainer, Dim: key.dim,
	}.key()]
	if !ok {
		return pipeline.Result{}, false
	}
	res := pipeline.Result{
		Dataset:         e.Dataset,
		Detector:        e.Detector,
		Explainer:       e.Explainer,
		TargetDim:       e.Dim,
		MAP:             e.MAP,
		MeanRecall:      e.MeanRecall,
		PointsEvaluated: e.PointsEvaluated,
		Duration:        e.DurationNS,
	}
	if e.Err != "" {
		res.Err = fmt.Errorf("%s", e.Err)
	}
	return res, true
}

// Put records a completed cell and flushes it to disk immediately, so a
// crash loses at most the cell in flight.
func (j *Journal) Put(kind string, res pipeline.Result) error {
	e := journalEntry{
		Kind:            kind,
		Dataset:         res.Dataset,
		Detector:        res.Detector,
		Explainer:       res.Explainer,
		Dim:             res.TargetDim,
		MAP:             res.MAP,
		MeanRecall:      res.MeanRecall,
		PointsEvaluated: res.PointsEvaluated,
		DurationNS:      res.Duration,
	}
	if res.Err != nil {
		e.Err = res.Err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries[e.key()] = e
	if j.file == nil {
		return nil // in-memory only after Close
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

package experiments

import "anex/internal/synth"

// The paper could not run every pipeline at every setting on its testbed
// (Section 4.1/4.2): the slow detectors were capped at lower explanation
// dimensionalities on the 70d and 100d datasets, and LookOut's exhaustive
// enumeration was capped similarly. These predicates reproduce exactly
// those caps at paper scale; at small scale every cell is feasible.

// feasiblePoint reports whether a (dataset dimensionality, explanation
// dimensionality, detector, point explainer) cell is run.
func feasiblePoint(scale synth.Scale, datasetD, dim int, det, explainer string) bool {
	if scale != synth.ScalePaper {
		return true
	}
	if explainer == "Beam" || explainer == "Beam_FX" {
		switch det {
		case "iForest":
			// iForest ran up to 4d explanations on the 70d and 100d sets.
			if datasetD >= 70 && dim > 4 {
				return false
			}
		case "FastABOD":
			// Fast ABOD up to 4d on 70d and up to 3d on 100d.
			if datasetD >= 100 && dim > 3 {
				return false
			}
			if datasetD >= 70 && dim > 4 {
				return false
			}
		}
	}
	return true
}

// feasibleSummary reports whether a summarization cell is run.
func feasibleSummary(scale synth.Scale, datasetD, dim int, det, summarizer string) bool {
	if scale != synth.ScalePaper {
		return true
	}
	if summarizer == "LookOut" {
		switch det {
		case "LOF":
			// LookOut with LOF ran up to 4d explanations at 100d.
			if datasetD >= 100 && dim > 4 {
				return false
			}
		default:
			// Fast ABOD and iForest only up to 3d on 70d and 100d.
			if datasetD >= 70 && dim > 3 {
				return false
			}
		}
	}
	return true
}

package experiments

import (
	"context"
	"fmt"

	"anex/internal/detector"
	"anex/internal/pipeline"
	"anex/internal/summarize"
	"anex/internal/synth"
)

// Ablations runs the design-choice ablations DESIGN.md calls out, on the
// hardest synthetic dataset of the testbed:
//
//  1. Z-score standardisation vs raw detector scores in Beam's subspace
//     scoring (the paper's dimensionality-bias correction).
//  2. Beam_FX (fixed output dimensionality) vs plain Beam (variable).
//  3. Welch vs Kolmogorov–Smirnov contrast in HiCS.
//  4. HiCS output ranking by max vs mean standardised point score.
//  5. iForest with 10-repetition averaging vs a single forest, feeding Beam.
//
// Each row reports MAP and runtime for the two arms at the same
// explanation dimensionality, so both the effectiveness and cost sides of
// the choice are visible.
func (s *Session) Ablations(ctx context.Context) *Table {
	td := s.ablationDataset()
	ds, gt := td.Dataset, td.GroundTruth
	opts := s.Cfg.options()

	t := &Table{
		ID:     "Ablations",
		Title:  fmt.Sprintf("Design-choice ablations on %s", ds.Name()),
		Header: []string{"choice", "arm", "dim", "MAP", "mean recall", "runtime"},
	}
	addPoint := func(choice, arm string, dim int, res pipeline.Result) {
		row := []string{choice, arm, fmt.Sprintf("%dd", dim), fmtFloat(res.MAP), fmtFloat(res.MeanRecall), res.Duration.Round(1e6).String()}
		if res.Err != nil {
			row[3], row[4] = "err", "err"
		}
		t.Rows = append(t.Rows, row)
	}
	lofDet := func() pipeline.NamedDetector {
		return pipeline.NamedDetector{Name: "LOF", Detector: detector.NewCached(detector.NewLOF(detector.DefaultLOFK))}
	}

	// 1. Z-score vs raw subspace scoring, in the regime where it matters:
	// the VARIABLE-dimensionality Beam, whose global list compares
	// candidates across dimensionalities. Raw detector scores carry the
	// dimensionality bias the paper's standardisation removes.
	for _, raw := range []bool{false, true} {
		o := opts
		o.RawScores = raw
		o.BeamVariableDim = true
		pp := pipeline.PointPipelines(lofDet(), s.Cfg.Seed, o)[0]
		arm := "z-score"
		if raw {
			arm = "raw"
		}
		addPoint("beam scoring (variable-dim)", arm, 3, pipeline.RunPointExplanation(ctx, ds, gt, pp, 3))
	}

	// 2. Beam_FX vs variable-dimensionality Beam at the same target.
	for _, variable := range []bool{false, true} {
		o := opts
		o.BeamVariableDim = variable
		pp := pipeline.PointPipelines(lofDet(), s.Cfg.Seed, o)[0]
		arm := "fixed (Beam_FX)"
		if variable {
			arm = "variable (Beam)"
		}
		addPoint("beam output dim", arm, 3, pipeline.RunPointExplanation(ctx, ds, gt, pp, 3))
	}

	// 3. Welch vs KS contrast in HiCS (the paper's footnote-2 choice):
	// effectiveness is usually tied; the cost difference is the point.
	for _, ks := range []bool{false, true} {
		o := opts
		o.UseKSContrast = ks
		sp := pipeline.SummaryPipelines(lofDet(), s.Cfg.Seed, o)[1]
		arm := "welch"
		if ks {
			arm = "ks"
		}
		addPoint("hics contrast", arm, 3, pipeline.RunSummarization(ctx, ds, gt, sp, 3))
	}

	// 4. HiCS output ranking: max vs mean standardised score over the
	// points of interest. The mean drowns subspaces that explain small
	// outlier groups (this testbed's 4-point groups), visible at the
	// highest dimensionality.
	hicsDim := synth.ExplanationDims(s.Cfg.Scale, true)
	lastDim := hicsDim[len(hicsDim)-1]
	for _, byMean := range []bool{false, true} {
		h := &summarize.HiCS{
			Detector:        detector.NewCached(detector.NewLOF(detector.DefaultLOFK)),
			CandidateCutoff: opts.HiCSCutoff,
			MCIterations:    opts.HiCSIterations,
			FixedDim:        true,
			TopK:            opts.TopK,
			Seed:            s.Cfg.Seed,
			RankByMean:      byMean,
		}
		sp := pipeline.SummaryPipeline{Detector: "LOF", Summarizer: h, Ranker: h.Detector}
		arm := "max"
		if byMean {
			arm = "mean"
		}
		addPoint("hics output ranking", arm, lastDim, pipeline.RunSummarization(ctx, ds, gt, sp, lastDim))
	}

	// 5. iForest repetition averaging feeding Beam, at 2d where iForest
	// pipelines are effective — the arm contrast is variance (MAP
	// stability) and the 10× scoring cost.
	for _, reps := range []int{1, 10} {
		iforest := &detector.IsolationForest{
			Trees: 50, Subsample: 128, Repetitions: reps, Seed: s.Cfg.Seed,
		}
		d := pipeline.NamedDetector{Name: "iForest", Detector: detector.NewCached(iforest)}
		pp := pipeline.PointPipelines(d, s.Cfg.Seed, opts)[0]
		addPoint("iforest averaging", fmt.Sprintf("reps=%d", reps), 2, pipeline.RunPointExplanation(ctx, ds, gt, pp, 2))
	}

	t.Notes = append(t.Notes, "arms share the dataset, ground truth, seed and remaining hyper-parameters")
	return t
}

// ablationDataset picks the highest-dimensionality synthetic dataset: the
// regime where the explainers struggle, so the design choices actually
// separate the arms.
func (s *Session) ablationDataset() synth.TestbedDataset {
	synths := s.TB.Synthetic
	return synths[len(synths)-1]
}

package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/parallel"
	"anex/internal/pipeline"
	"anex/internal/server"
	"anex/internal/subspace"
	"anex/internal/synth"
)

// Config parameterises an experiment session.
type Config struct {
	// Scale selects the reduced or paper-shaped testbed.
	Scale synth.Scale
	// Seed drives every stochastic component.
	Seed int64
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
	// TimingPoints bounds the number of outliers explained per dataset in
	// the runtime experiment (Figure 11); zero means scale default
	// (3 at small scale, all outliers at paper scale).
	TimingPoints int
	// DatasetFilter, when non-empty, restricts the testbed to the named
	// datasets (useful for running single paper-scale datasets).
	DatasetFilter []string
	// Journal, when set, persists each completed pipeline cell and lets
	// interrupted runs resume without recomputation. Cells that failed
	// with a context error (cancellation, deadline) are not recorded, so
	// a resumed run recomputes exactly the unfinished work. A journal is
	// only valid for one (scale, seed) configuration.
	Journal *pipeline.Journal
	// DetectorFilter, when non-empty, restricts the pipelines to the
	// named detectors ("LOF", "FastABOD", "iForest") — useful for
	// paper-scale probes where the slow detectors are prohibitive.
	DetectorFilter []string
	// UseMeanRecall renders Figures 9/10 with the paper's Mean Recall
	// metric instead of MAP (both are computed either way).
	UseMeanRecall bool
	// Workers bounds each pipeline cell's inner loops (per explained
	// point, per ranked summary subspace, per stage-scored candidate);
	// zero means GOMAXPROCS. Cells themselves run serially so the journal
	// stays append-ordered; the parallelism lives inside each cell, where
	// results are identical at any worker count.
	Workers int
	// CacheBytes is the byte budget of each cached detector's score memo
	// (see detector.NewCachedBudget); zero selects the generous default.
	CacheBytes int64
	// PlaneBytes is the byte budget of the session's shared neighbourhood
	// plane — ONE plane serves every kNN detector across all datasets and
	// experiments, LRU-bounded; zero selects neighbors.DefaultPlaneBytes.
	PlaneBytes int64

	// engine is the session's explanation core — the same server.Engine
	// that backs anexd — created by NewSession. It owns the session-wide
	// shared neighbourhood plane and builds every score memo, so the batch
	// harness and the long-lived service exercise one code path.
	engine *server.Engine
}

func (c *Config) wantDetector(name string) bool {
	if len(c.DetectorFilter) == 0 {
		return true
	}
	for _, want := range c.DetectorFilter {
		if want == name {
			return true
		}
	}
	return false
}

// runCell returns the journalled result for the cell, or computes it with
// compute and records it. Cells whose computation was cancelled or timed
// out are not journalled: they carry no reusable work and a resumed run
// must recompute them.
func (c *Config) runCell(kind string, key resultKey, compute func() pipeline.Result) pipeline.Result {
	if c.Journal != nil {
		if res, ok := c.Journal.Lookup(kind, key.dataset, key.detector, key.explainer, key.dim); ok {
			c.logf("%s %-18s %dd %-9s %-8s (journalled)", kind, key.dataset, key.dim, key.detector, key.explainer)
			return res
		}
	}
	res := compute()
	if c.Journal != nil && !isContextErr(res.Err) {
		if err := c.Journal.Record(kind, res); err != nil {
			c.logf("journal write failed: %v", err)
		}
	}
	return res
}

// isContextErr reports whether err is (or wraps) a context cancellation or
// deadline expiry.
func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

func (c *Config) wantDataset(name string) bool {
	if len(c.DatasetFilter) == 0 {
		return true
	}
	for _, want := range c.DatasetFilter {
		if want == name {
			return true
		}
	}
	return false
}

func (c *Config) logf(format string, args ...any) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// options returns the explainer hyper-parameters for the scale: the paper's
// settings at paper scale, proportionally reduced ones at small scale. The
// session's worker knob rides along so every pipeline built from these
// options parallelises its inner loops.
func (c *Config) options() pipeline.Options {
	workers := parallel.Resolve(c.Workers)
	if c.Scale == synth.ScalePaper {
		// Paper defaults throughout.
		return pipeline.Options{Workers: workers, CacheBytes: c.CacheBytes}
	}
	return pipeline.Options{
		BeamWidth:      30,
		RefOutPoolSize: 60,
		RefOutWidth:    30,
		LookOutBudget:  30,
		HiCSCutoff:     100,
		HiCSIterations: 40,
		TopK:           30,
		Workers:        workers,
		CacheBytes:     c.CacheBytes,
	}
}

// detectors builds the three detectors, sized to the scale. Effectiveness
// experiments share score caches; timing experiments must not. Every kNN
// detector is wired to the session's shared neighbourhood plane, so the
// per-(dataset, subspace) structures survive the per-dataset cache resets
// and are shared across detectors and experiments.
func (c *Config) detectors(cached bool) []pipeline.NamedDetector {
	var dets []pipeline.NamedDetector
	if c.Scale == synth.ScalePaper {
		dets = pipeline.NewDetectors(c.Seed, false)
	} else {
		dets = []pipeline.NamedDetector{
			{Name: "LOF", Detector: detector.NewLOF(detector.DefaultLOFK)},
			{Name: "FastABOD", Detector: detector.NewFastABOD(detector.DefaultABODK)},
			{Name: "iForest", Detector: &detector.IsolationForest{
				Trees: 50, Subsample: 128, Repetitions: 3, Seed: c.Seed,
			}},
		}
	}
	if c.engine != nil {
		for _, d := range dets {
			c.engine.WirePlane(d.Detector)
		}
		if cached {
			for i := range dets {
				dets[i].Detector = c.engine.NewScoreMemo(dets[i].Detector)
			}
		}
		return dets
	}
	if cached {
		for i := range dets {
			dets[i].Detector = detector.NewCachedBudget(dets[i].Detector, c.CacheBytes)
		}
	}
	return dets
}

// Testbed holds the generated datasets with their ground truth.
type Testbed struct {
	Synthetic []synth.TestbedDataset
	RealWorld []synth.TestbedDataset
}

// All returns every dataset, synthetic first.
func (tb *Testbed) All() []synth.TestbedDataset {
	out := make([]synth.TestbedDataset, 0, len(tb.Synthetic)+len(tb.RealWorld))
	out = append(out, tb.Synthetic...)
	out = append(out, tb.RealWorld...)
	return out
}

// Session owns a generated testbed and lazily computed experiment results.
type Session struct {
	Cfg Config
	TB  *Testbed

	pointResults   []pipeline.Result
	summaryResults []pipeline.Result
	timingPoint    []pipeline.Result
	timingSummary  []pipeline.Result
}

// NewSession generates the testbed for the configuration. Real-world-like
// ground truth is derived with LOF, as in the paper. Cancelling ctx aborts
// testbed generation (the ground-truth derivation runs full detector
// sweeps) with ctx's error.
func NewSession(ctx context.Context, cfg Config) (*Session, error) {
	cfg.engine = server.NewEngine(server.EngineConfig{
		Workers:    cfg.Workers,
		CacheBytes: cfg.CacheBytes,
		PlaneBytes: cfg.PlaneBytes,
	})
	tb := &Testbed{}
	for _, c := range synth.SyntheticConfigs(cfg.Scale, cfg.Seed) {
		if !cfg.wantDataset(c.Name) {
			continue
		}
		cfg.logf("generating %s (%dd, %d subspaces)", c.Name, c.TotalDims, len(c.SubspaceDims))
		td, err := synth.BuildSynthetic(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		tb.Synthetic = append(tb.Synthetic, td)
	}
	gtDims := synth.GroundTruthDims(cfg.Scale)
	for _, c := range synth.RealWorldConfigs(cfg.Scale, cfg.Seed) {
		if !cfg.wantDataset(c.Name) {
			continue
		}
		cfg.logf("generating %s (%d×%d) and deriving ground truth over dims %v", c.Name, c.N, c.D, gtDims)
		td, err := synth.BuildRealWorld(ctx, c, gtDims, detector.NewLOF(detector.DefaultLOFK))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		tb.RealWorld = append(tb.RealWorld, td)
	}
	if len(tb.Synthetic)+len(tb.RealWorld) == 0 {
		return nil, fmt.Errorf("experiments: dataset filter %v matched nothing", cfg.DatasetFilter)
	}
	return &Session{Cfg: cfg, TB: tb}, nil
}

// explanationDims returns the dims evaluated for a dataset family.
func (s *Session) explanationDims(synthetic bool) []int {
	return synth.ExplanationDims(s.Cfg.Scale, synthetic)
}

// PointResults runs (or returns cached) Figure 9 pipeline executions: both
// point explainers × three detectors × all datasets × all dims, with score
// caching across explainers and points. Cancelling ctx aborts the remaining
// cells; finished cells (and journalled ones) keep their results, and
// aborted cells carry ctx's error.
func (s *Session) PointResults(ctx context.Context) []pipeline.Result {
	if s.pointResults != nil {
		return s.pointResults
	}
	opts := s.Cfg.options()
	for _, td := range s.TB.All() {
		dets := s.Cfg.detectors(true) // fresh caches per dataset to bound memory
		for _, dim := range s.explanationDims(td.Synthetic) {
			for _, d := range dets {
				if !s.Cfg.wantDetector(d.Name) {
					continue
				}
				for _, pp := range pipeline.PointPipelines(d, s.Cfg.Seed, opts) {
					if !feasiblePoint(s.Cfg.Scale, td.Dataset.D(), dim, d.Name, pp.Explainer.Name()) {
						s.pointResults = append(s.pointResults, skipped(td.Dataset.Name(), d.Name, pp.Explainer.Name(), dim))
						continue
					}
					td, pp, dim := td, pp, dim
					res := s.Cfg.runCell("point", resultKey{td.Dataset.Name(), d.Name, pp.Explainer.Name(), dim}, func() pipeline.Result {
						res := pipeline.RunPointExplanation(ctx, td.Dataset, td.GroundTruth, pp, dim)
						s.Cfg.logf("fig9 %-18s %dd %-9s %-8s MAP=%.3f (%s)",
							res.Dataset, dim, res.Detector, res.Explainer, res.MAP, res.Duration.Round(1e6))
						return res
					})
					s.pointResults = append(s.pointResults, res)
				}
			}
		}
	}
	return s.pointResults
}

// SummaryResults runs (or returns cached) Figure 10 pipeline executions.
// Cancellation semantics match PointResults.
func (s *Session) SummaryResults(ctx context.Context) []pipeline.Result {
	if s.summaryResults != nil {
		return s.summaryResults
	}
	opts := s.Cfg.options()
	for _, td := range s.TB.All() {
		dets := s.Cfg.detectors(true)
		for _, dim := range s.explanationDims(td.Synthetic) {
			for _, d := range dets {
				if !s.Cfg.wantDetector(d.Name) {
					continue
				}
				for _, sp := range pipeline.SummaryPipelines(d, s.Cfg.Seed, opts) {
					if !feasibleSummary(s.Cfg.Scale, td.Dataset.D(), dim, d.Name, sp.Summarizer.Name()) {
						s.summaryResults = append(s.summaryResults, skipped(td.Dataset.Name(), d.Name, sp.Summarizer.Name(), dim))
						continue
					}
					td, sp, dim := td, sp, dim
					res := s.Cfg.runCell("summary", resultKey{td.Dataset.Name(), d.Name, sp.Summarizer.Name(), dim}, func() pipeline.Result {
						res := pipeline.RunSummarization(ctx, td.Dataset, td.GroundTruth, sp, dim)
						s.Cfg.logf("fig10 %-18s %dd %-9s %-8s MAP=%.3f (%s)",
							res.Dataset, dim, res.Detector, res.Explainer, res.MAP, res.Duration.Round(1e6))
						return res
					})
					s.summaryResults = append(s.summaryResults, res)
				}
			}
		}
	}
	return s.summaryResults
}

// PlaneStats reports the activity of the session's shared neighbourhood
// plane: hits, computations, the dedup factor, residency, and the embedded
// delta engine's counters — anexbench's -stats dump.
func (s *Session) PlaneStats() neighbors.PlaneStats {
	return s.Cfg.engine.PlaneStats()
}

// Engine exposes the session's explanation core (for serving a generated
// testbed, or inspecting its caches).
func (s *Session) Engine() *server.Engine { return s.Cfg.engine }

// skipped marks an infeasible cell; MAP < 0 renders as "-".
func skipped(dataset, det, expl string, dim int) pipeline.Result {
	return pipeline.Result{Dataset: dataset, Detector: det, Explainer: expl, TargetDim: dim, MAP: -1, MeanRecall: -1}
}

// timingGroundTruth bounds the outliers explained in runtime measurements,
// keeping up to the limit per explanation dimensionality so that every
// evaluated dimension has points to time.
func (s *Session) timingGroundTruth(td synth.TestbedDataset) *dataset.GroundTruth {
	limit := s.Cfg.TimingPoints
	if limit <= 0 {
		if s.Cfg.Scale == synth.ScalePaper {
			return td.GroundTruth
		}
		limit = 3
	}
	outliers := td.GroundTruth.Outliers()
	if len(outliers) <= limit {
		return td.GroundTruth
	}
	sub := make(map[int][]subspace.Subspace)
	for _, dim := range s.explanationDims(td.Synthetic) {
		points := td.GroundTruth.PointsExplainedAt(dim)
		if len(points) > limit {
			points = points[:limit]
		}
		for _, p := range points {
			sub[p] = td.GroundTruth.RelevantFor(p)
		}
	}
	if len(sub) == 0 {
		return td.GroundTruth
	}
	return dataset.NewGroundTruth(sub)
}

// timingDatasets returns the datasets used in Figure 11: the synthetic
// family up to ~39d and the Electricity-like dataset, as in the paper.
func (s *Session) timingDatasets() []synth.TestbedDataset {
	var out []synth.TestbedDataset
	limit := 39
	if s.Cfg.Scale == synth.ScaleSmall {
		limit = 16
	}
	for _, td := range s.TB.Synthetic {
		if td.Dataset.D() <= limit {
			out = append(out, td)
		}
	}
	// Electricity-like is the last real-world dataset.
	if n := len(s.TB.RealWorld); n > 0 {
		out = append(out, s.TB.RealWorld[n-1])
	}
	return out
}

// TimingResults runs (or returns cached) the Figure 11 runtime experiment:
// uncached detectors, bounded point count, same pipelines. Cancellation
// semantics match PointResults.
func (s *Session) TimingResults(ctx context.Context) (point, summary []pipeline.Result) {
	if s.timingPoint != nil || s.timingSummary != nil {
		return s.timingPoint, s.timingSummary
	}
	opts := s.Cfg.options()
	for _, td := range s.timingDatasets() {
		gt := s.timingGroundTruth(td)
		for _, dim := range s.explanationDims(td.Synthetic) {
			dets := s.Cfg.detectors(false)
			for _, d := range dets {
				if !s.Cfg.wantDetector(d.Name) {
					continue
				}
				for _, pp := range pipeline.PointPipelines(d, s.Cfg.Seed, opts) {
					if !feasiblePoint(s.Cfg.Scale, td.Dataset.D(), dim, d.Name, pp.Explainer.Name()) {
						s.timingPoint = append(s.timingPoint, skipped(td.Dataset.Name(), d.Name, pp.Explainer.Name(), dim))
						continue
					}
					td, pp, dim, gt := td, pp, dim, gt
					res := s.Cfg.runCell("timing-point", resultKey{td.Dataset.Name(), d.Name, pp.Explainer.Name(), dim}, func() pipeline.Result {
						res := pipeline.RunPointExplanation(ctx, td.Dataset, gt, pp, dim)
						s.Cfg.logf("fig11 %-18s %dd %-9s %-8s %s (score %s | search %s)",
							res.Dataset, dim, res.Detector, res.Explainer, res.Duration.Round(1e6),
							res.ScoringTime.Round(1e6), res.SearchTime.Round(1e6))
						return res
					})
					s.timingPoint = append(s.timingPoint, res)
				}
				for _, sp := range pipeline.SummaryPipelines(d, s.Cfg.Seed, opts) {
					if !feasibleSummary(s.Cfg.Scale, td.Dataset.D(), dim, d.Name, sp.Summarizer.Name()) {
						s.timingSummary = append(s.timingSummary, skipped(td.Dataset.Name(), d.Name, sp.Summarizer.Name(), dim))
						continue
					}
					td, sp, dim, gt := td, sp, dim, gt
					res := s.Cfg.runCell("timing-summary", resultKey{td.Dataset.Name(), d.Name, sp.Summarizer.Name(), dim}, func() pipeline.Result {
						res := pipeline.RunSummarization(ctx, td.Dataset, gt, sp, dim)
						s.Cfg.logf("fig11 %-18s %dd %-9s %-8s %s (score %s | search %s)",
							res.Dataset, dim, res.Detector, res.Explainer, res.Duration.Round(1e6),
							res.ScoringTime.Round(1e6), res.SearchTime.Round(1e6))
						return res
					})
					s.timingSummary = append(s.timingSummary, res)
				}
			}
		}
	}
	return s.timingPoint, s.timingSummary
}

var _ core.Detector = (*detector.Cached)(nil)

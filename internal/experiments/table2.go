package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"anex/internal/pipeline"
	"anex/internal/synth"
)

// Table2 reproduces the paper's Table 2: for every explanation
// dimensionality and relevant-feature-ratio column, the point-explanation
// pipeline and the summarization pipeline achieving the best
// effectiveness/efficiency trade-off. Effectiveness comes from the Figure
// 9/10 results and efficiency from the Figure 11 timings; within a cell,
// pipelines are ordered by MAP (rounded, descending) and then runtime
// (ascending), matching the paper's pareto selection. No pipeline is
// reported when every candidate has zero MAP.
func (s *Session) Table2(ctx context.Context) *Table {
	pointIdx := indexResults(s.PointResults(ctx))
	summaryIdx := indexResults(s.SummaryResults(ctx))
	timingPoint, timingSummary := s.TimingResults(ctx)
	timeIdx := indexResults(append(append([]pipeline.Result{}, timingPoint...), timingSummary...))

	// Columns: one per dataset used as a ratio representative — the
	// real-like family collapses to the "100%" column (the paper reports
	// a single column for all three real datasets); the synthetic family
	// contributes one column per dataset that also appears in the timing
	// experiment, labelled with its relevant-feature ratio.
	type column struct {
		label    string
		datasets []string
	}
	var cols []column
	var realNames []string
	for _, td := range s.TB.RealWorld {
		realNames = append(realNames, td.Dataset.Name())
	}
	cols = append(cols, column{label: "100%", datasets: realNames})
	for _, td := range s.timingDatasets() {
		if !td.Synthetic {
			continue
		}
		dims := td.GroundTruth.Dimensionalities()
		maxDim := dims[len(dims)-1]
		ratio := float64(maxDim) / float64(td.Dataset.D()) * 100
		cols = append(cols, column{
			label:    fmt.Sprintf("%.0f%%", ratio),
			datasets: []string{td.Dataset.Name()},
		})
	}

	header := []string{"expl. dim"}
	for _, c := range cols {
		header = append(header, c.label)
	}
	t := &Table{
		ID:     "Table 2",
		Title:  "Trade-offs of outlier detection and explanation pipelines (best point pipeline / best summary pipeline)",
		Header: header,
	}

	detNames := []string{"LOF", "FastABOD", "iForest"}
	pick := func(idx map[resultKey]pipeline.Result, explainers, datasets []string, dim int) string {
		type cand struct {
			label string
			mapV  float64
			time  float64
		}
		var cands []cand
		for _, expl := range explainers {
			for _, det := range detNames {
				var mapSum float64
				n := 0
				var timeSum float64
				for _, ds := range datasets {
					r, ok := idx[resultKey{ds, det, expl, dim}]
					if !ok || r.Err != nil || r.MAP < 0 {
						continue
					}
					mapSum += r.MAP
					n++
					if tr, ok := timeIdx[resultKey{ds, det, expl, dim}]; ok && tr.MAP >= 0 {
						timeSum += tr.Duration.Seconds()
					}
				}
				if n == 0 {
					continue
				}
				cands = append(cands, cand{
					label: displayName(expl) + " " + det,
					mapV:  mapSum / float64(n),
					time:  timeSum,
				})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool {
			// Round MAP to 2 decimals so near-ties resolve on runtime,
			// mirroring the paper's pareto reading of its plots.
			mi := math.Round(cands[i].mapV*100) / 100
			mj := math.Round(cands[j].mapV*100) / 100
			if mi != mj {
				return mi > mj
			}
			return cands[i].time < cands[j].time
		})
		if len(cands) == 0 || cands[0].mapV <= 0 {
			return "-"
		}
		return cands[0].label
	}

	for _, dim := range synth.ExplanationDims(s.Cfg.Scale, true) {
		row := []string{fmt.Sprintf("%dd", dim)}
		for ci, c := range cols {
			datasets := c.datasets
			// Real-like datasets are only explained at 2–4d.
			if ci == 0 {
				realDims := synth.ExplanationDims(s.Cfg.Scale, false)
				inRange := false
				for _, d := range realDims {
					if d == dim {
						inRange = true
					}
				}
				if !inRange {
					row = append(row, "-")
					continue
				}
			}
			point := pick(pointIdx, []string{"Beam_FX", "RefOut"}, datasets, dim)
			summary := pick(summaryIdx, []string{"LookOut", "HiCS_FX"}, datasets, dim)
			row = append(row, point+" / "+summary)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"each cell: best point-explanation pipeline / best summarization pipeline by (MAP desc, runtime asc)",
		`"-" means no pipeline achieved non-zero MAP (or the dimensionality is out of range for the family)`)
	return t
}

// displayName maps the FX variants back to the paper's plot labels.
func displayName(explainer string) string {
	switch explainer {
	case "Beam_FX":
		return "Beam"
	case "HiCS_FX":
		return "HiCS"
	}
	return explainer
}

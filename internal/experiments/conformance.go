package experiments

import (
	"context"
	"fmt"
	"math"

	"anex/internal/pipeline"
	"anex/internal/synth"
)

// Conformance audits the reproduction against the paper's qualitative
// claims (its "Lessons Learned"): rather than matching absolute MAP values
// — which depend on the exact datasets — each claim checks a SHAPE the
// paper reports: who wins, what degrades with what, by roughly what factor.
// The resulting table is the self-check backing EXPERIMENTS.md.
func (s *Session) Conformance(ctx context.Context) *Table {
	t := &Table{
		ID:     "Conformance",
		Title:  "Qualitative claims of the paper checked against this run",
		Header: []string{"claim", "source", "verdict", "evidence"},
	}
	if len(s.TB.Synthetic) == 0 || len(s.TB.RealWorld) == 0 {
		t.Notes = append(t.Notes, "conformance needs both dataset families; relax the dataset filter")
		return t
	}
	pointIdx := indexResults(s.PointResults(ctx))
	summaryIdx := indexResults(s.SummaryResults(ctx))

	add := func(claim, source string, pass bool, evidence string) {
		verdict := "PASS"
		if !pass {
			verdict = "FAIL"
		}
		t.Rows = append(t.Rows, []string{claim, source, verdict, evidence})
	}
	// mapOf fetches a MAP value, −1 when missing/failed/skipped.
	mapOf := func(idx map[resultKey]pipeline.Result, ds, det, expl string, dim int) float64 {
		r, ok := idx[resultKey{ds, det, expl, dim}]
		if !ok || r.Err != nil || r.PointsEvaluated == 0 {
			return -1
		}
		return r.MAP
	}

	synthNames := make([]string, len(s.TB.Synthetic))
	for i, td := range s.TB.Synthetic {
		synthNames[i] = td.Dataset.Name()
	}
	realNames := make([]string, len(s.TB.RealWorld))
	for i, td := range s.TB.RealWorld {
		realNames[i] = td.Dataset.Name()
	}
	realDims := synth.ExplanationDims(s.Cfg.Scale, false)

	// Claim 1 (§4.1): Beam with LOF retrieves the optimal subspace for
	// every full-space outlier (MAP = 1) regardless of dimensionality.
	{
		pass := true
		var worst float64 = 2
		for _, ds := range realNames {
			for _, dim := range realDims {
				if v := mapOf(pointIdx, ds, "LOF", "Beam_FX", dim); v >= 0 && v < worst {
					worst = v
				}
			}
		}
		pass = worst >= 0.95 && worst <= 1
		add("Beam+LOF optimal on full-space outliers", "Fig. 9 f-h", pass,
			fmt.Sprintf("min MAP %.3f across real-like datasets/dims", worst))
	}

	// Claim 2 (§4.1): RefOut degrades with dataset dimensionality — its
	// 2d MAP on the synthetic family trends downward from the smallest to
	// the largest dataset.
	{
		first := mapOf(pointIdx, synthNames[0], "LOF", "RefOut", 2)
		last := mapOf(pointIdx, synthNames[len(synthNames)-1], "LOF", "RefOut", 2)
		pass := first >= 0 && last >= 0 && first > last+0.1
		add("RefOut+LOF degrades with dataset dimensionality", "Fig. 9 a-e", pass,
			fmt.Sprintf("2d MAP %.3f at %s vs %.3f at %s", first, synthNames[0], last, synthNames[len(synthNames)-1]))
	}

	// Claim 3 (§4.1): Beam retrieves all relevant 2d subspaces thanks to
	// its exhaustive first stage — high 2d MAP with LOF on every
	// synthetic dataset.
	{
		worst := 2.0
		for _, ds := range synthNames {
			if v := mapOf(pointIdx, ds, "LOF", "Beam_FX", 2); v >= 0 && v < worst {
				worst = v
			}
		}
		add("Beam+LOF strong at 2d on subspace outliers", "Fig. 9 a-e", worst >= 0.7,
			fmt.Sprintf("min 2d MAP %.3f across synthetic datasets", worst))
	}

	// Claim 4 (§4.1): effectiveness collapses at high explanation
	// dimensionality on high-dimensional datasets — the largest dataset's
	// highest-dim point explanations are far below its 2d ones.
	{
		ds := synthNames[len(synthNames)-1]
		dims := synth.ExplanationDims(s.Cfg.Scale, true)
		hi := dims[len(dims)-1]
		lo2 := mapOf(pointIdx, ds, "LOF", "Beam_FX", 2)
		hiV := mapOf(pointIdx, ds, "LOF", "Beam_FX", hi)
		pass := lo2 >= 0 && hiV >= 0 && hiV < lo2*0.6
		add("high explanation dim on high-D dataset collapses", "Fig. 9 e", pass,
			fmt.Sprintf("%s Beam+LOF: %dd MAP %.3f vs 2d MAP %.3f", ds, hi, hiV, lo2))
	}

	// Claim 5 (§4.2): LookOut and HiCS with LOF are (near-)optimal on the
	// lowest-dimensional synthetic dataset at 2d.
	{
		lo := mapOf(summaryIdx, synthNames[0], "LOF", "LookOut", 2)
		hi := mapOf(summaryIdx, synthNames[0], "LOF", "HiCS_FX", 2)
		pass := lo >= 0.85 && hi >= 0.85
		add("LookOut+LOF and HiCS+LOF near-optimal at low D", "Fig. 10 a", pass,
			fmt.Sprintf("2d MAP LookOut %.3f, HiCS %.3f on %s", lo, hi, synthNames[0]))
	}

	// Claim 6 (§4.2): on full-space outliers LookOut+LOF beats HiCS+LOF —
	// correlated-feature search does not explain uncorrelated deviations.
	{
		var lookout, hics float64
		n := 0
		for _, ds := range realNames {
			for _, dim := range realDims {
				lo := mapOf(summaryIdx, ds, "LOF", "LookOut", dim)
				hi := mapOf(summaryIdx, ds, "LOF", "HiCS_FX", dim)
				if lo >= 0 && hi >= 0 {
					lookout += lo
					hics += hi
					n++
				}
			}
		}
		pass := n > 0 && lookout > hics
		add("LookOut+LOF beats HiCS on full-space outliers", "Fig. 10 f-h", pass,
			fmt.Sprintf("mean MAP %.3f vs %.3f over %d cells", safeDiv(lookout, n), safeDiv(hics, n), n))
	}

	// Claim 7 (§4.2): HiCS stays effective as dataset dimensionality
	// grows (the correlation heuristic prunes the blind search) —
	// HiCS+LOF at 2d on the largest synthetic dataset remains well above
	// zero.
	{
		v := mapOf(summaryIdx, synthNames[len(synthNames)-1], "LOF", "HiCS_FX", 2)
		add("HiCS correlation heuristic survives high D", "Fig. 10 e", v >= 0.5,
			fmt.Sprintf("2d MAP %.3f on %s", v, synthNames[len(synthNames)-1]))
	}

	// Claim 8 (§4.3): RefOut's runtime is roughly flat in the explanation
	// dimensionality while Beam's grows with it (more stages, more
	// subspaces per stage).
	{
		timingPoint, _ := s.TimingResults(ctx)
		tIdx := indexResults(timingPoint)
		dims := synth.ExplanationDims(s.Cfg.Scale, true)
		loDim, hiDim := dims[0], dims[len(dims)-1]
		ds := s.timingDatasets()[len(s.timingDatasets())-2].Dataset.Name() // largest synthetic timing dataset
		growth := func(expl string) float64 {
			lo, okLo := tIdx[resultKey{ds, "LOF", expl, loDim}]
			hi, okHi := tIdx[resultKey{ds, "LOF", expl, hiDim}]
			if !okLo || !okHi || lo.Duration <= 0 || hi.Duration <= 0 {
				return math.NaN()
			}
			return hi.Duration.Seconds() / lo.Duration.Seconds()
		}
		beamGrowth := growth("Beam_FX")
		refoutGrowth := growth("RefOut")
		pass := !math.IsNaN(beamGrowth) && !math.IsNaN(refoutGrowth) && beamGrowth > refoutGrowth
		add("Beam runtime grows faster with explanation dim than RefOut", "Fig. 11 a-d", pass,
			fmt.Sprintf("%s time(%dd)/time(%dd): Beam %.1f×, RefOut %.1f×", ds, hiDim, loDim, beamGrowth, refoutGrowth))
	}

	t.Notes = append(t.Notes,
		"claims are the paper's qualitative findings; thresholds are deliberately loose — see EXPERIMENTS.md for the numbers")
	return t
}

func safeDiv(v float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return v / float64(n)
}

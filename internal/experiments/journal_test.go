package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"anex/internal/pipeline"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	res := pipeline.Result{
		Dataset: "d", Detector: "LOF", Explainer: "Beam_FX", TargetDim: 2,
		MAP: 0.75, MeanRecall: 0.5, PointsEvaluated: 8, Duration: 123 * time.Millisecond,
	}
	if err := j.Put("point", res); err != nil {
		t.Fatal(err)
	}
	failed := pipeline.Result{
		Dataset: "d", Detector: "LOF", Explainer: "LookOut", TargetDim: 3,
		Err: errors.New("boom"),
	}
	if err := j.Put("summary", failed); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and look up.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reloaded %d entries", j2.Len())
	}
	got, ok := j2.Get("point", resultKey{"d", "LOF", "Beam_FX", 2})
	if !ok {
		t.Fatal("entry missing")
	}
	if got.MAP != 0.75 || got.MeanRecall != 0.5 || got.PointsEvaluated != 8 || got.Duration != 123*time.Millisecond {
		t.Errorf("round trip lost data: %+v", got)
	}
	gotErr, ok := j2.Get("summary", resultKey{"d", "LOF", "LookOut", 3})
	if !ok || gotErr.Err == nil || gotErr.Err.Error() != "boom" {
		t.Errorf("error entry: %+v ok=%v", gotErr, ok)
	}
	// Kind is part of the key.
	if _, ok := j2.Get("summary", resultKey{"d", "LOF", "Beam_FX", 2}); ok {
		t.Error("kind not separating entries")
	}
	if _, ok := j2.Get("point", resultKey{"x", "LOF", "Beam_FX", 2}); ok {
		t.Error("phantom entry")
	}
}

func TestJournalSurvivesTrailingCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Put("point", pipeline.Result{Dataset: "d", Detector: "LOF", Explainer: "Beam_FX", TargetDim: 2, MAP: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"kind":"point","dataset":"trunc`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Errorf("%d entries after corruption, want the 1 intact one", j2.Len())
	}
}

func TestSessionResumesFromJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs pipelines")
	}
	path := filepath.Join(t.TempDir(), "session.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s := tinySession(t)
	s.Cfg.Journal = j
	first := s.PointResults()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh session with the reloaded journal must reproduce the exact
	// results without recomputation (identical MAP incl. stochastic
	// algorithms' draws).
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() == 0 {
		t.Fatal("journal empty after session run")
	}
	s2 := tinySession(t)
	s2.Cfg.Journal = j2
	second := s2.PointResults()
	if len(first) != len(second) {
		t.Fatalf("result counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].MAP != second[i].MAP || first[i].Explainer != second[i].Explainer {
			t.Errorf("cell %d differs after resume: %+v vs %+v", i, first[i], second[i])
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"time"

	"anex/internal/pipeline"
	"anex/internal/synth"
)

// resultKey indexes pipeline results by everything but the metric.
type resultKey struct {
	dataset, detector, explainer string
	dim                          int
}

func indexResults(results []pipeline.Result) map[resultKey]pipeline.Result {
	out := make(map[resultKey]pipeline.Result, len(results))
	for _, r := range results {
		out[resultKey{r.Dataset, r.Detector, r.Explainer, r.TargetDim}] = r
	}
	return out
}

// mapTable renders a Figure 9/10-style grid: one row per (dataset,
// explainer, detector), one metric column per explanation dimensionality.
// The metric is MAP unless the session is configured for Mean Recall — the
// paper's two effectiveness measures (Section 3.3).
func (s *Session) mapTable(id, title string, results []pipeline.Result, explainers []string) *Table {
	idx := indexResults(results)
	allDims := synth.ExplanationDims(s.Cfg.Scale, true)
	metric := "MAP"
	if s.Cfg.UseMeanRecall {
		metric = "recall"
	}
	header := []string{"dataset", "explainer", "detector"}
	for _, d := range allDims {
		header = append(header, fmt.Sprintf("%s@%dd", metric, d))
	}
	t := &Table{ID: id, Title: title, Header: header}
	detNames := []string{"LOF", "FastABOD", "iForest"}
	for _, td := range s.TB.All() {
		dims := s.explanationDims(td.Synthetic)
		dimSet := make(map[int]bool, len(dims))
		for _, d := range dims {
			dimSet[d] = true
		}
		for _, expl := range explainers {
			for _, det := range detNames {
				row := []string{td.Dataset.Name(), expl, det}
				for _, d := range allDims {
					if !dimSet[d] {
						row = append(row, "-")
						continue
					}
					r, ok := idx[resultKey{td.Dataset.Name(), det, expl, d}]
					switch {
					case !ok:
						row = append(row, "-")
					case r.Err != nil:
						row = append(row, "err")
					case r.MAP >= 0 && r.PointsEvaluated == 0:
						// No outlier is explained at this dimensionality
						// per the ground truth; nothing to average.
						row = append(row, "-")
					case s.Cfg.UseMeanRecall:
						row = append(row, fmtFloat(r.MeanRecall))
					default:
						row = append(row, fmtFloat(r.MAP))
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	t.Notes = append(t.Notes, `"-" marks cells the paper (and this harness) skips as infeasible, or dimensionalities outside the dataset family's range`)
	return t
}

// Figure9 reproduces the paper's Figure 9: MAP of Beam and RefOut with each
// detector across all datasets and explanation dimensionalities.
func (s *Session) Figure9(ctx context.Context) *Table {
	return s.mapTable("Figure 9",
		"MAP of Beam and RefOut per detector and explanation dimensionality",
		s.PointResults(ctx), []string{"Beam_FX", "RefOut"})
}

// Figure10 reproduces the paper's Figure 10: MAP of HiCS and LookOut with
// each detector across all datasets and explanation dimensionalities.
func (s *Session) Figure10(ctx context.Context) *Table {
	return s.mapTable("Figure 10",
		"MAP of HiCS and LookOut per detector and explanation dimensionality",
		s.SummaryResults(ctx), []string{"LookOut", "HiCS_FX"})
}

// Figure11 reproduces the paper's Figure 11: wall-clock runtime of every
// detection+explanation pipeline on the timing datasets (synthetic family
// up to ~39d and the Electricity-like dataset).
func (s *Session) Figure11(ctx context.Context) *Table {
	point, summary := s.TimingResults(ctx)
	results := append(append([]pipeline.Result{}, point...), summary...)
	idx := indexResults(results)
	allDims := synth.ExplanationDims(s.Cfg.Scale, true)
	header := []string{"dataset", "explainer", "detector"}
	for _, d := range allDims {
		header = append(header, fmt.Sprintf("time@%dd", d))
	}
	t := &Table{
		ID:     "Figure 11",
		Title:  "Runtime of detection and explanation pipelines",
		Header: header,
	}
	detNames := []string{"LOF", "FastABOD", "iForest"}
	explainers := []string{"Beam_FX", "RefOut", "LookOut", "HiCS_FX"}
	for _, td := range s.timingDatasets() {
		dims := s.explanationDims(td.Synthetic)
		dimSet := make(map[int]bool, len(dims))
		for _, d := range dims {
			dimSet[d] = true
		}
		for _, expl := range explainers {
			for _, det := range detNames {
				row := []string{td.Dataset.Name(), expl, det}
				for _, d := range allDims {
					r, ok := idx[resultKey{td.Dataset.Name(), det, expl, d}]
					switch {
					case !dimSet[d] || !ok:
						row = append(row, "-")
					case r.Err != nil:
						row = append(row, "err")
					case r.MAP < 0:
						row = append(row, "-") // skipped cell
					case r.PointsEvaluated == 0:
						row = append(row, "-") // nothing to time at this dim
					default:
						row = append(row, r.Duration.Round(time.Millisecond).String())
					}
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	if s.Cfg.Scale == synth.ScaleSmall {
		t.Notes = append(t.Notes, "small scale explains 3 outliers per dataset; paper scale explains all of them")
	}
	return t
}

package experiments

import (
	"fmt"

	"anex/internal/synth"
)

// Table1 reproduces the paper's Table 1: the characteristics of the real
// and synthetic datasets, computed from the generated data and ground
// truth rather than hard-coded.
func (s *Session) Table1() *Table {
	t := &Table{
		ID:    "Table 1",
		Title: "Characteristics of real-like and synthetic datasets",
		Header: []string{
			"dataset", "outlier type", "points", "features", "outliers",
			"contamination", "rel. subspaces", "expl. dims",
			"rel/outlier", "outliers/rel", "rel feature ratio",
		},
	}
	for _, td := range s.TB.All() {
		ds, gt := td.Dataset, td.GroundTruth
		outlierType := "full space"
		if td.Synthetic {
			outlierType = "subspace"
		}
		dims := gt.Dimensionalities()
		dimRange := "-"
		maxDim := 0
		if len(dims) > 0 {
			dimRange = fmt.Sprintf("%d-%dd", dims[0], dims[len(dims)-1])
			maxDim = dims[len(dims)-1]
		}
		var relPerOutlier float64
		for _, p := range gt.Outliers() {
			relPerOutlier += float64(len(gt.RelevantFor(p)))
		}
		if gt.NumOutliers() > 0 {
			relPerOutlier /= float64(gt.NumOutliers())
		}
		// Relevant feature ratio: fraction of the dataset's features a
		// maximal explanation involves (the paper's 35/21/12/7/5 % for
		// the synthetic family and 100 % for full-space outliers).
		ratio := float64(maxDim) / float64(ds.D()) * 100
		if !td.Synthetic {
			ratio = 100
		}
		t.Rows = append(t.Rows, []string{
			ds.Name(),
			outlierType,
			fmt.Sprintf("%d", ds.N()),
			fmt.Sprintf("%d", ds.D()),
			fmt.Sprintf("%d", gt.NumOutliers()),
			fmt.Sprintf("%.1f%%", float64(gt.NumOutliers())/float64(ds.N())*100),
			fmt.Sprintf("%d", len(gt.AllSubspaces())),
			dimRange,
			fmt.Sprintf("%.2f", relPerOutlier),
			fmt.Sprintf("%.2f", gt.OutliersPerSubspace()),
			fmt.Sprintf("%.0f%%", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"real-like ground truth derived by exhaustive LOF search (one relevant subspace per outlier per dimensionality)",
		"synthetic ground truth planted by the generator (5 outliers per relevant subspace at paper scale)")
	return t
}

// Figure8 reproduces the paper's Figure 8: per synthetic dataset, how many
// relevant subspaces exist at each dimensionality, plus the contamination
// ratio.
func (s *Session) Figure8() *Table {
	dims := synth.ExplanationDims(s.Cfg.Scale, true)
	header := []string{"dataset"}
	for _, d := range dims {
		header = append(header, fmt.Sprintf("%dd subspaces", d))
	}
	header = append(header, "outliers", "contamination")
	t := &Table{
		ID:     "Figure 8",
		Title:  "Dimensionality of subspaces relevant to outliers and contamination of the synthetic datasets",
		Header: header,
	}
	for _, td := range s.TB.Synthetic {
		gt := td.GroundTruth
		counts := make(map[int]int)
		for _, sub := range gt.AllSubspaces() {
			counts[sub.Dim()]++
		}
		row := []string{td.Dataset.Name()}
		for _, d := range dims {
			row = append(row, fmt.Sprintf("%d", counts[d]))
		}
		row = append(row,
			fmt.Sprintf("%d", gt.NumOutliers()),
			fmt.Sprintf("%.1f%%", float64(gt.NumOutliers())/float64(td.Dataset.N())*100))
		t.Rows = append(t.Rows, row)
	}
	return t
}

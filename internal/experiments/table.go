// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): Table 1 (dataset characteristics), Figure 8
// (relevant-subspace dimensionality), Figures 9 and 10 (MAP of the point
// explanation and summarization pipelines), Figure 11 (pipeline runtimes)
// and Table 2 (effectiveness/efficiency trade-offs). Results are rendered
// as aligned text tables and CSV.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: an identified, titled grid.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table with
// its title as a heading and notes as trailing emphasis lines.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	writeCells := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeCells(t.Header)
	b.WriteByte('|')
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeCells(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table as CSV (header + rows; title and notes are
// omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// fmtFloat renders metric values compactly ("0.83"), with "-" for skipped
// cells signalled by negative values.
func fmtFloat(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"anex/internal/detector"
	"anex/internal/synth"
)

// tinySession builds a Session over a hand-rolled miniature testbed so the
// experiment plumbing can be exercised in test time.
func tinySession(t *testing.T) *Session {
	t.Helper()
	cfg := Config{Scale: synth.ScaleSmall, Seed: 7}
	tb := &Testbed{}
	for i, c := range []synth.SubspaceConfig{
		{Name: "tiny-8d", TotalDims: 8, SubspaceDims: []int{2, 3}, N: 150, OutliersPerSubspace: 3, Seed: 1},
		{Name: "tiny-10d", TotalDims: 10, SubspaceDims: []int{2, 2, 3}, N: 150, OutliersPerSubspace: 3, DoubleOutliers: 1, Seed: 2},
	} {
		td, err := synth.BuildSynthetic(c)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		tb.Synthetic = append(tb.Synthetic, td)
	}
	rw, err := synth.BuildRealWorld(context.Background(),
		synth.FullSpaceConfig{Name: "tiny-real", N: 100, D: 7, NumOutliers: 8, Seed: 3},
		[]int{2, 3}, detector.NewLOF(detector.DefaultLOFK))
	if err != nil {
		t.Fatal(err)
	}
	tb.RealWorld = append(tb.RealWorld, rw)
	return &Session{Cfg: cfg, TB: tb}
}

func TestTable1Structure(t *testing.T) {
	s := tinySession(t)
	tbl := s.Table1()
	if len(tbl.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	// Synthetic rows labelled subspace, real rows full space.
	if tbl.Rows[0][1] != "subspace" || tbl.Rows[2][1] != "full space" {
		t.Errorf("outlier types: %v / %v", tbl.Rows[0][1], tbl.Rows[2][1])
	}
	// Real-like contamination ≈ 8/100.
	if tbl.Rows[2][5] != "8.0%" {
		t.Errorf("contamination cell %q", tbl.Rows[2][5])
	}
}

func TestFigure8Structure(t *testing.T) {
	s := tinySession(t)
	tbl := s.Figure8()
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// tiny-8d: one 2d and one 3d subspace.
	if tbl.Rows[0][1] != "1" || tbl.Rows[0][2] != "1" {
		t.Errorf("tiny-8d subspace counts: %v", tbl.Rows[0])
	}
	// tiny-10d: two 2d and one 3d.
	if tbl.Rows[1][1] != "2" || tbl.Rows[1][2] != "1" {
		t.Errorf("tiny-10d subspace counts: %v", tbl.Rows[1])
	}
}

func TestFigure9And10EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipelines")
	}
	s := tinySession(t)
	fig9 := s.Figure9(context.Background())
	// 3 datasets × 2 explainers × 3 detectors.
	if len(fig9.Rows) != 18 {
		t.Fatalf("figure 9 rows = %d", len(fig9.Rows))
	}
	// Beam+LOF on the real-like dataset must be ≈ 1 at 2d (the paper's
	// headline full-space result; ground truth shares the criterion).
	found := false
	for _, row := range fig9.Rows {
		if row[0] == "tiny-real" && row[1] == "Beam_FX" && row[2] == "LOF" {
			found = true
			if row[3] != "1.000" {
				t.Errorf("Beam+LOF on real-like at 2d = %s, want 1.000", row[3])
			}
		}
	}
	if !found {
		t.Fatal("Beam+LOF row missing")
	}

	fig10 := s.Figure10(context.Background())
	if len(fig10.Rows) != 18 {
		t.Fatalf("figure 10 rows = %d", len(fig10.Rows))
	}
	// Every MAP cell parses as float, "-" or "err".
	for _, tbl := range []*Table{fig9, fig10} {
		for _, row := range tbl.Rows {
			for _, cell := range row[3:] {
				if cell == "-" || cell == "err" {
					continue
				}
				if !strings.Contains(cell, ".") {
					t.Errorf("unexpected cell %q", cell)
				}
			}
		}
	}
}

func TestFigure11AndTable2EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipelines")
	}
	s := tinySession(t)
	fig11 := s.Figure11(context.Background())
	if len(fig11.Rows) == 0 {
		t.Fatal("figure 11 empty")
	}
	// Timing cells are durations or "-".
	for _, row := range fig11.Rows {
		for _, cell := range row[3:] {
			if cell == "-" {
				continue
			}
			if !strings.ContainsAny(cell, "smµn") {
				t.Errorf("cell %q is not a duration", cell)
			}
		}
	}
	tbl2 := s.Table2(context.Background())
	if len(tbl2.Rows) == 0 {
		t.Fatal("table 2 empty")
	}
	// Each populated cell names one point pipeline and one summary one.
	for _, row := range tbl2.Rows {
		for _, cell := range row[1:] {
			if cell == "-" {
				continue
			}
			if !strings.Contains(cell, " / ") {
				t.Errorf("cell %q lacks point/summary split", cell)
			}
		}
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "hello"}, {"22", "x"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T — demo", "a", "hello", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b" {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestFmtFloat(t *testing.T) {
	if fmtFloat(0.5) != "0.500" {
		t.Error("fmtFloat positive")
	}
	if fmtFloat(-1) != "-" {
		t.Error("fmtFloat skip marker")
	}
}

func TestFeasibilityCaps(t *testing.T) {
	// Small scale: everything feasible.
	if !feasiblePoint(synth.ScaleSmall, 100, 5, "FastABOD", "Beam_FX") {
		t.Error("small scale must be unrestricted")
	}
	// Paper scale caps mirror Section 4.
	cases := []struct {
		d, dim    int
		det, expl string
		want      bool
	}{
		{100, 4, "FastABOD", "Beam_FX", false},
		{100, 3, "FastABOD", "Beam_FX", true},
		{70, 5, "iForest", "Beam_FX", false},
		{70, 4, "iForest", "Beam_FX", true},
		{39, 5, "iForest", "Beam_FX", true},
		{100, 5, "LOF", "Beam_FX", true},
		{100, 5, "LOF", "RefOut", true},
	}
	for _, c := range cases {
		if got := feasiblePoint(synth.ScalePaper, c.d, c.dim, c.det, c.expl); got != c.want {
			t.Errorf("feasiblePoint(%dd, %dd, %s, %s) = %v", c.d, c.dim, c.det, c.expl, got)
		}
	}
	sumCases := []struct {
		d, dim   int
		det, sum string
		want     bool
	}{
		{100, 5, "LOF", "LookOut", false},
		{100, 4, "LOF", "LookOut", true},
		{70, 4, "iForest", "LookOut", false},
		{70, 3, "iForest", "LookOut", true},
		{100, 5, "LOF", "HiCS_FX", true},
	}
	for _, c := range sumCases {
		if got := feasibleSummary(synth.ScalePaper, c.d, c.dim, c.det, c.sum); got != c.want {
			t.Errorf("feasibleSummary(%dd, %dd, %s, %s) = %v", c.d, c.dim, c.det, c.sum, got)
		}
	}
}

func TestNewSessionSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the full small-scale testbed")
	}
	var progress bytes.Buffer
	s, err := NewSession(context.Background(), Config{Scale: synth.ScaleSmall, Seed: 1, Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TB.Synthetic) != 5 || len(s.TB.RealWorld) != 3 {
		t.Fatalf("testbed %d+%d datasets", len(s.TB.Synthetic), len(s.TB.RealWorld))
	}
	if !strings.Contains(progress.String(), "generating") {
		t.Error("no progress logged")
	}
	// Table 1 and Figure 8 need no pipeline runs.
	if tbl := s.Table1(); len(tbl.Rows) != 8 {
		t.Errorf("table 1 rows = %d", len(tbl.Rows))
	}
	if tbl := s.Figure8(); len(tbl.Rows) != 5 {
		t.Errorf("figure 8 rows = %d", len(tbl.Rows))
	}
}

func TestTimingGroundTruthBounded(t *testing.T) {
	s := tinySession(t)
	s.Cfg.TimingPoints = 2
	td := s.TB.Synthetic[0]
	gt := s.timingGroundTruth(td)
	if gt.NumOutliers() >= td.GroundTruth.NumOutliers() {
		t.Errorf("bounded ground truth not smaller: %d of %d", gt.NumOutliers(), td.GroundTruth.NumOutliers())
	}
	// Every dimensionality the full ground truth covers must stay covered
	// (up to the per-dim limit), so the timing grid has no empty cells.
	for _, dim := range s.explanationDims(true) {
		full := len(td.GroundTruth.PointsExplainedAt(dim))
		got := len(gt.PointsExplainedAt(dim))
		want := full
		if want > 2 {
			want = 2
		}
		if got < want {
			t.Errorf("dim %d: %d timed points, want ≥ %d", dim, got, want)
		}
	}
	s.Cfg.TimingPoints = 1000
	if got := s.timingGroundTruth(td); got.NumOutliers() != td.GroundTruth.NumOutliers() {
		t.Error("limit above outlier count must keep all")
	}
}

func TestAblationsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ablation pipelines")
	}
	s := tinySession(t)
	tbl := s.Ablations(context.Background())
	// 5 choices × 2 arms.
	if len(tbl.Rows) != 10 {
		t.Fatalf("%d ablation rows, want 10", len(tbl.Rows))
	}
	choices := map[string]int{}
	for _, row := range tbl.Rows {
		choices[row[0]]++
		if len(row) != len(tbl.Header) {
			t.Fatalf("ragged row %v", row)
		}
	}
	for choice, n := range choices {
		if n != 2 {
			t.Errorf("choice %q has %d arms", choice, n)
		}
	}
}

func TestConformanceTableStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipelines")
	}
	s := tinySession(t)
	tbl := s.Conformance(context.Background())
	if len(tbl.Rows) != 8 {
		t.Fatalf("%d conformance rows, want 8", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 4 {
			t.Fatalf("ragged row %v", row)
		}
		if row[2] != "PASS" && row[2] != "FAIL" {
			t.Errorf("verdict %q", row[2])
		}
		if row[3] == "" {
			t.Errorf("claim %q lacks evidence", row[0])
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "Figure X",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x|y"}},
		Notes:  []string{"careful"},
	}
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### Figure X — demo", "| a | b |", "|---|---|", `x\|y`, "*careful*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestDetectorFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs pipelines")
	}
	s := tinySession(t)
	s.Cfg.DetectorFilter = []string{"LOF"}
	results := s.PointResults(context.Background())
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.Detector != "LOF" {
			t.Errorf("detector %s leaked through the filter", r.Detector)
		}
	}
	// 2 synthetic datasets × 2 explainers × 3 dims + 1 real-like × 2 × 2.
	if len(results) != 2*2*3+1*2*2 {
		t.Errorf("%d results (datasets × Beam/RefOut × dims)", len(results))
	}
}

func TestMeanRecallMetricRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs pipelines")
	}
	s := tinySession(t)
	s.Cfg.UseMeanRecall = true
	s.Cfg.DetectorFilter = []string{"LOF"}
	tbl := s.Figure9(context.Background())
	if !strings.Contains(tbl.Header[3], "recall") {
		t.Errorf("header %v lacks recall columns", tbl.Header)
	}
	// Recall of Beam+LOF on the easy tiny-8d 2d cell should be 1.
	for _, row := range tbl.Rows {
		if row[0] == "tiny-8d" && row[1] == "Beam_FX" && row[2] == "LOF" && row[3] != "1.000" {
			t.Errorf("Beam+LOF recall@2d = %s", row[3])
		}
	}
}

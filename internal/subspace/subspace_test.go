package subspace

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewCanonicalises(t *testing.T) {
	cases := []struct {
		in   []int
		want Subspace
	}{
		{nil, Subspace{}},
		{[]int{3}, Subspace{3}},
		{[]int{3, 1, 2}, Subspace{1, 2, 3}},
		{[]int{5, 5, 1, 1}, Subspace{1, 5}},
		{[]int{0, 0, 0}, Subspace{0}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFull(t *testing.T) {
	if got := Full(4); !got.Equal(New(0, 1, 2, 3)) {
		t.Errorf("Full(4) = %v", got)
	}
	if got := Full(0); got.Dim() != 0 {
		t.Errorf("Full(0) = %v, want empty", got)
	}
}

func TestContains(t *testing.T) {
	s := New(1, 3, 5)
	for _, f := range []int{1, 3, 5} {
		if !s.Contains(f) {
			t.Errorf("%v should contain %d", s, f)
		}
	}
	for _, f := range []int{0, 2, 4, 6, -1} {
		if s.Contains(f) {
			t.Errorf("%v should not contain %d", s, f)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := New(1, 3, 5, 7)
	cases := []struct {
		other Subspace
		want  bool
	}{
		{New(), true},
		{New(1), true},
		{New(3, 7), true},
		{New(1, 3, 5, 7), true},
		{New(2), false},
		{New(1, 2), false},
		{New(1, 3, 5, 7, 9), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.other); got != c.want {
			t.Errorf("%v.ContainsAll(%v) = %v, want %v", s, c.other, got, c.want)
		}
	}
}

func TestWithWithout(t *testing.T) {
	s := New(1, 5)
	if got := s.With(3); !got.Equal(New(1, 3, 5)) {
		t.Errorf("With(3) = %v", got)
	}
	if got := s.With(0); !got.Equal(New(0, 1, 5)) {
		t.Errorf("With(0) = %v", got)
	}
	if got := s.With(9); !got.Equal(New(1, 5, 9)) {
		t.Errorf("With(9) = %v", got)
	}
	if got := s.With(5); !got.Equal(s) {
		t.Errorf("With(existing) = %v", got)
	}
	if got := s.Without(1); !got.Equal(New(5)) {
		t.Errorf("Without(1) = %v", got)
	}
	if got := s.Without(7); !got.Equal(s) {
		t.Errorf("Without(missing) = %v", got)
	}
	// With must not mutate the receiver.
	if !s.Equal(New(1, 5)) {
		t.Errorf("receiver mutated: %v", s)
	}
}

func TestUnionIntersectOverlaps(t *testing.T) {
	a := New(1, 2, 5)
	b := New(2, 3, 7)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 5, 7)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(New(2)) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("a and b should overlap")
	}
	c := New(0, 9)
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	if got := a.Intersect(c); got.Dim() != 0 {
		t.Errorf("disjoint Intersect = %v", got)
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	cases := []Subspace{New(), New(0), New(1, 4, 9), New(10, 100, 1000)}
	for _, s := range cases {
		parsed, err := Parse(s.Key())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.Key(), err)
		}
		if !parsed.Equal(s) {
			t.Errorf("round trip %v → %q → %v", s, s.Key(), parsed)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"a", "1,a", "-1", "1,1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestString(t *testing.T) {
	if got := New(1, 4).String(); got != "{F1, F4}" {
		t.Errorf("String = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestValidate(t *testing.T) {
	if err := New(0, 3).Validate(4); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	if err := New(0, 4).Validate(4); err == nil {
		t.Error("out-of-range feature should fail validation")
	}
}

func TestCount(t *testing.T) {
	cases := []struct {
		d, k int
		want int64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 3, 10},
		{6, 2, 15}, {39, 2, 741}, {100, 4, 3921225},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Count(c.d, c.k); got != c.want {
			t.Errorf("Count(%d,%d) = %d, want %d", c.d, c.k, got, c.want)
		}
	}
}

func TestEnumeratorMatchesCount(t *testing.T) {
	for d := 1; d <= 8; d++ {
		for k := 1; k <= d; k++ {
			e := NewEnumerator(d, k)
			seen := make(map[string]bool)
			n := 0
			prev := ""
			for s := e.Next(); s != nil; s = e.Next() {
				key := s.Key()
				if seen[key] {
					t.Fatalf("d=%d k=%d: duplicate %s", d, k, key)
				}
				seen[key] = true
				if s.Dim() != k {
					t.Fatalf("d=%d k=%d: wrong dim %d", d, k, s.Dim())
				}
				if err := s.Validate(d); err != nil {
					t.Fatalf("d=%d k=%d: %v", d, k, err)
				}
				n++
				prev = key
			}
			_ = prev
			if int64(n) != Count(d, k) {
				t.Errorf("d=%d k=%d: enumerated %d, want %d", d, k, n, Count(d, k))
			}
			// Exhausted enumerator stays exhausted.
			if s := e.Next(); s != nil {
				t.Errorf("d=%d k=%d: Next after exhaustion = %v", d, k, s)
			}
		}
	}
}

func TestEnumeratorDegenerate(t *testing.T) {
	if s := NewEnumerator(3, 0).Next(); s != nil {
		t.Errorf("k=0 should be empty, got %v", s)
	}
	if s := NewEnumerator(3, 4).Next(); s != nil {
		t.Errorf("k>d should be empty, got %v", s)
	}
}

func TestAll(t *testing.T) {
	all := All(4, 2, 0)
	if len(all) != 6 {
		t.Fatalf("All(4,2) returned %d subspaces", len(all))
	}
	if !all[0].Equal(New(0, 1)) || !all[5].Equal(New(2, 3)) {
		t.Errorf("unexpected order: %v", all)
	}
	defer func() {
		if recover() == nil {
			t.Error("All should panic above the limit")
		}
	}()
	All(100, 4, 1000)
}

func TestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make(map[string]int)
	const draws = 3000
	for i := 0; i < draws; i++ {
		s := Random(rng, 5, 2)
		if s.Dim() != 2 {
			t.Fatalf("dim %d", s.Dim())
		}
		if err := s.Validate(5); err != nil {
			t.Fatal(err)
		}
		counts[s.Key()]++
	}
	if len(counts) != 10 {
		t.Fatalf("expected all 10 possible 2d subspaces, saw %d", len(counts))
	}
	// Rough uniformity: every subspace within 3x of the expected count.
	for k, c := range counts {
		if c < draws/10/3 || c > draws/10*3 {
			t.Errorf("subspace %s drawn %d times, expected ≈ %d", k, c, draws/10)
		}
	}
}

func TestExtensions(t *testing.T) {
	ext := Extensions(New(1, 3), 5)
	want := []Subspace{New(0, 1, 3), New(1, 2, 3), New(1, 3, 4)}
	if len(ext) != len(want) {
		t.Fatalf("got %v", ext)
	}
	for i := range want {
		if !ext[i].Equal(want[i]) {
			t.Errorf("ext[%d] = %v, want %v", i, ext[i], want[i])
		}
	}
}

func TestPropertyCanonicalInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		feats := make([]int, len(raw))
		for i, r := range raw {
			feats[i] = int(r % 32)
		}
		s := New(feats...)
		// Strictly increasing.
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				return false
			}
		}
		// Every input feature present, nothing else.
		for _, f := range feats {
			if !s.Contains(f) {
				return false
			}
		}
		// Union with itself is itself; intersect with itself is itself.
		return s.Union(s).Equal(s) && s.Intersect(s).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyUnionCommutes(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := fromBytes(a)
		sb := fromBytes(b)
		u1 := sa.Union(sb)
		u2 := sb.Union(sa)
		if !u1.Equal(u2) {
			return false
		}
		// Union contains both; intersection contained in both.
		if !u1.ContainsAll(sa) || !u1.ContainsAll(sb) {
			return false
		}
		in := sa.Intersect(sb)
		return sa.ContainsAll(in) && sb.ContainsAll(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyKeyRoundTrip(t *testing.T) {
	f := func(a []uint8) bool {
		s := fromBytes(a)
		parsed, err := Parse(s.Key())
		return err == nil && parsed.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fromBytes(raw []uint8) Subspace {
	feats := make([]int, len(raw))
	for i, r := range raw {
		feats[i] = int(r % 64)
	}
	return New(feats...)
}

func TestPropertyEnumerationSorted(t *testing.T) {
	// Lexicographic order of enumeration implies sorted keys per fixed
	// width; verify via reflect.DeepEqual on a re-sorted copy for small
	// spaces.
	all := All(7, 3, 0)
	keys := make([]string, len(all))
	for i, s := range all {
		keys[i] = s.Key()
	}
	again := All(7, 3, 0)
	keys2 := make([]string, len(again))
	for i, s := range again {
		keys2[i] = s.Key()
	}
	if !reflect.DeepEqual(keys, keys2) {
		t.Error("enumeration is not deterministic")
	}
}

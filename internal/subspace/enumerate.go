package subspace

import (
	"fmt"
	"math"
	"math/rand"
)

// Count returns the number of k-feature subspaces of a d-feature space,
// i.e. the binomial coefficient C(d, k). It returns 0 when k > d or k < 0,
// and saturates at math.MaxInt64 on overflow.
func Count(d, k int) int64 {
	if k < 0 || k > d {
		return 0
	}
	if k > d-k {
		k = d - k
	}
	result := int64(1)
	for i := 1; i <= k; i++ {
		// Multiply before dividing; detect overflow via float guard.
		f := float64(result) * float64(d-k+i) / float64(i)
		if f > math.MaxInt64/2 {
			return math.MaxInt64
		}
		result = result * int64(d-k+i) / int64(i)
	}
	return result
}

// Enumerator streams all k-feature subspaces of a d-feature space in
// lexicographic order without materialising them all at once. The slice
// returned by Next is reused between calls; clone it if it must be retained.
type Enumerator struct {
	d, k    int
	current Subspace
	done    bool
}

// NewEnumerator returns an enumerator over all k-subsets of {0,…,d-1}.
func NewEnumerator(d, k int) *Enumerator {
	e := &Enumerator{d: d, k: k}
	if k <= 0 || k > d {
		e.done = true
	}
	return e
}

// Next returns the next subspace, or nil when the enumeration is exhausted.
// The returned slice is owned by the enumerator and overwritten by the next
// call; use Clone to keep it.
func (e *Enumerator) Next() Subspace {
	if e.done {
		return nil
	}
	if e.current == nil {
		e.current = make(Subspace, e.k)
		for i := range e.current {
			e.current[i] = i
		}
		return e.current
	}
	// Advance to the next combination in lexicographic order.
	i := e.k - 1
	for i >= 0 && e.current[i] == e.d-e.k+i {
		i--
	}
	if i < 0 {
		e.done = true
		return nil
	}
	e.current[i]++
	for j := i + 1; j < e.k; j++ {
		e.current[j] = e.current[j-1] + 1
	}
	return e.current
}

// All materialises every k-feature subspace of a d-feature space.
// It panics if the enumeration would exceed maxCount subspaces (pass 0 for
// no limit); callers enumerating potentially huge spaces should use
// Enumerator directly.
func All(d, k int, maxCount int64) []Subspace {
	n := Count(d, k)
	if maxCount > 0 && n > maxCount {
		panic(fmt.Sprintf("subspace: C(%d,%d)=%d exceeds limit %d", d, k, n, maxCount))
	}
	out := make([]Subspace, 0, n)
	e := NewEnumerator(d, k)
	for s := e.Next(); s != nil; s = e.Next() {
		out = append(out, s.Clone())
	}
	return out
}

// Random returns a uniformly random k-feature subspace of a d-feature space,
// drawn with a partial Fisher–Yates shuffle. It panics if k > d or k < 0.
func Random(rng *rand.Rand, d, k int) Subspace {
	if k < 0 || k > d {
		panic(fmt.Sprintf("subspace: cannot draw %d features from %d", k, d))
	}
	perm := make([]int, d)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(d-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return New(perm[:k]...)
}

// Extensions returns every (dim+1)-feature subspace obtained by adding one
// feature of the d-feature space to s. The results are canonical and unique.
func Extensions(s Subspace, d int) []Subspace {
	out := make([]Subspace, 0, d-len(s))
	for f := 0; f < d; f++ {
		if !s.Contains(f) {
			out = append(out, s.With(f))
		}
	}
	return out
}

// Package subspace provides the feature-subspace algebra shared by all
// outlier-explanation algorithms: a canonical representation for sets of
// feature indices, set operations, and combination enumerators.
//
// A subspace is a strictly increasing slice of feature indices. All
// constructors in this package return canonical (sorted, deduplicated)
// subspaces, and all operations preserve canonical form, so two subspaces
// over the same features always compare equal and share one Key.
package subspace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Subspace is a canonical (strictly increasing) set of feature indices.
// The zero value is the empty subspace.
type Subspace []int

// New returns the canonical subspace over the given feature indices.
// Duplicates are removed.
func New(features ...int) Subspace {
	s := make(Subspace, len(features))
	copy(s, features)
	sort.Ints(s)
	// Deduplicate in place.
	out := s[:0]
	for i, f := range s {
		if i == 0 || f != s[i-1] {
			out = append(out, f)
		}
	}
	return out
}

// Full returns the subspace {0, 1, …, d-1} covering all d features.
func Full(d int) Subspace {
	s := make(Subspace, d)
	for i := range s {
		s[i] = i
	}
	return s
}

// Dim returns the number of features in the subspace.
func (s Subspace) Dim() int { return len(s) }

// Clone returns an independent copy of s.
func (s Subspace) Clone() Subspace {
	c := make(Subspace, len(s))
	copy(c, s)
	return c
}

// Contains reports whether feature f is a member of s.
func (s Subspace) Contains(f int) bool {
	i := sort.SearchInts(s, f)
	return i < len(s) && s[i] == f
}

// ContainsAll reports whether every feature of other is a member of s.
func (s Subspace) ContainsAll(other Subspace) bool {
	i := 0
	for _, f := range other {
		for i < len(s) && s[i] < f {
			i++
		}
		if i >= len(s) || s[i] != f {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same features.
func (s Subspace) Equal(other Subspace) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// With returns a new canonical subspace equal to s ∪ {f}.
// If f is already a member, a copy of s is returned.
func (s Subspace) With(f int) Subspace {
	i := sort.SearchInts(s, f)
	if i < len(s) && s[i] == f {
		return s.Clone()
	}
	out := make(Subspace, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, f)
	out = append(out, s[i:]...)
	return out
}

// Without returns a new canonical subspace equal to s \ {f}.
func (s Subspace) Without(f int) Subspace {
	out := make(Subspace, 0, len(s))
	for _, g := range s {
		if g != f {
			out = append(out, g)
		}
	}
	return out
}

// Union returns a new canonical subspace equal to s ∪ other.
func (s Subspace) Union(other Subspace) Subspace {
	out := make(Subspace, 0, len(s)+len(other))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			out = append(out, s[i])
			i++
		case s[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, other[j:]...)
	return out
}

// Intersect returns a new canonical subspace equal to s ∩ other.
func (s Subspace) Intersect(other Subspace) Subspace {
	var out Subspace
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Overlaps reports whether s and other share at least one feature.
func (s Subspace) Overlaps(other Subspace) bool {
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] < other[j]:
			i++
		case s[i] > other[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// Key returns a compact canonical string usable as a map key,
// e.g. "1,4,9". The empty subspace has key "".
func (s Subspace) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(f))
	}
	return b.String()
}

// String renders the subspace in the paper's notation, e.g. "{F1, F4, F9}".
func (s Subspace) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "F%d", f)
	}
	b.WriteByte('}')
	return b.String()
}

// Parse parses a Key-formatted string ("1,4,9") back into a subspace.
func Parse(key string) (Subspace, error) {
	if key == "" {
		return Subspace{}, nil
	}
	parts := strings.Split(key, ",")
	s := make(Subspace, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("subspace: parse %q: %w", key, err)
		}
		if f < 0 {
			return nil, fmt.Errorf("subspace: parse %q: negative feature index %d", key, f)
		}
		s = append(s, f)
	}
	out := New(s...)
	if len(out) != len(s) {
		return nil, fmt.Errorf("subspace: parse %q: duplicate feature index", key)
	}
	return out, nil
}

// Validate checks that every feature index lies in [0, d).
func (s Subspace) Validate(d int) error {
	for _, f := range s {
		if f < 0 || f >= d {
			return fmt.Errorf("subspace %s: feature F%d out of range [0, %d)", s, f, d)
		}
	}
	return nil
}

package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"anex/internal/subspace"
)

// GroundTruth associates each outlier point of a dataset with the
// subspace(s) that are relevant to its explanation (REL_p in the paper).
type GroundTruth struct {
	relevant map[int][]subspace.Subspace
	outliers []int // sorted point indices
}

// NewGroundTruth builds a ground truth from a point→relevant-subspaces map.
// Subspaces are stored in canonical form, deduplicated per point.
func NewGroundTruth(relevant map[int][]subspace.Subspace) *GroundTruth {
	gt := &GroundTruth{relevant: make(map[int][]subspace.Subspace, len(relevant))}
	for p, subs := range relevant {
		seen := make(map[string]bool, len(subs))
		var clean []subspace.Subspace
		for _, s := range subs {
			c := subspace.New(s...)
			if k := c.Key(); !seen[k] {
				seen[k] = true
				clean = append(clean, c)
			}
		}
		if len(clean) > 0 {
			gt.relevant[p] = clean
			gt.outliers = append(gt.outliers, p)
		}
	}
	sort.Ints(gt.outliers)
	return gt
}

// Outliers returns the sorted indices of all outlier points.
func (gt *GroundTruth) Outliers() []int {
	out := make([]int, len(gt.outliers))
	copy(out, gt.outliers)
	return out
}

// NumOutliers returns the number of outlier points.
func (gt *GroundTruth) NumOutliers() int { return len(gt.outliers) }

// IsOutlier reports whether point p is an outlier.
func (gt *GroundTruth) IsOutlier(p int) bool {
	_, ok := gt.relevant[p]
	return ok
}

// RelevantFor returns all subspaces relevant to point p (REL_p), or nil if p
// is not an outlier.
func (gt *GroundTruth) RelevantFor(p int) []subspace.Subspace {
	return gt.relevant[p]
}

// RelevantAt returns the subspaces of dimensionality dim relevant to p.
func (gt *GroundTruth) RelevantAt(p, dim int) []subspace.Subspace {
	var out []subspace.Subspace
	for _, s := range gt.relevant[p] {
		if s.Dim() == dim {
			out = append(out, s)
		}
	}
	return out
}

// PointsExplainedAt returns the outliers that have at least one relevant
// subspace of dimensionality dim — the population over which the paper's
// MAP at a given explanation dimensionality is averaged.
func (gt *GroundTruth) PointsExplainedAt(dim int) []int {
	var out []int
	for _, p := range gt.outliers {
		if len(gt.RelevantAt(p, dim)) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// AllSubspaces returns the distinct relevant subspaces across all outliers.
func (gt *GroundTruth) AllSubspaces() []subspace.Subspace {
	seen := make(map[string]bool)
	var out []subspace.Subspace
	for _, p := range gt.outliers {
		for _, s := range gt.relevant[p] {
			if k := s.Key(); !seen[k] {
				seen[k] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Dimensionalities returns the sorted distinct dimensionalities occurring in
// the ground truth.
func (gt *GroundTruth) Dimensionalities() []int {
	seen := make(map[int]bool)
	for _, p := range gt.outliers {
		for _, s := range gt.relevant[p] {
			seen[s.Dim()] = true
		}
	}
	var out []int
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// OutliersPerSubspace returns the mean number of outliers explained per
// relevant subspace — the "# Outliers per Relevant Subspace" row of Table 1.
func (gt *GroundTruth) OutliersPerSubspace() float64 {
	counts := make(map[string]int)
	for _, p := range gt.outliers {
		for _, s := range gt.relevant[p] {
			counts[s.Key()]++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return float64(total) / float64(len(counts))
}

// gtJSON is the serialised form of a ground truth.
type gtJSON struct {
	Relevant map[string][]string `json:"relevant"` // point index → subspace keys
}

// WriteJSON serialises the ground truth.
func (gt *GroundTruth) WriteJSON(w io.Writer) error {
	out := gtJSON{Relevant: make(map[string][]string, len(gt.relevant))}
	for p, subs := range gt.relevant {
		keys := make([]string, len(subs))
		for i, s := range subs {
			keys[i] = s.Key()
		}
		sort.Strings(keys)
		out.Relevant[fmt.Sprintf("%d", p)] = keys
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadGroundTruthJSON deserialises a ground truth written by WriteJSON.
func ReadGroundTruthJSON(r io.Reader) (*GroundTruth, error) {
	var in gtJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("ground truth: decode: %w", err)
	}
	relevant := make(map[int][]subspace.Subspace, len(in.Relevant))
	for pStr, keys := range in.Relevant {
		var p int
		if _, err := fmt.Sscanf(pStr, "%d", &p); err != nil {
			return nil, fmt.Errorf("ground truth: bad point index %q", pStr)
		}
		for _, k := range keys {
			s, err := subspace.Parse(k)
			if err != nil {
				return nil, fmt.Errorf("ground truth: point %d: %w", p, err)
			}
			relevant[p] = append(relevant[p], s)
		}
	}
	return NewGroundTruth(relevant), nil
}

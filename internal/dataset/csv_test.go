package dataset

import (
	"math"
	"strings"
	"testing"
)

// TestReadCSVRejectsNonFinite: NaN and ±Inf parse as valid floats but poison
// every distance and score computed from them, so ReadCSV must reject them
// naming the offending row and column.
func TestReadCSVRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name, csv string
		wantIn    []string
	}{
		{"NaN", "a,b\n1,2\n3,NaN\n", []string{"row 1", "column 1 (b)", "NaN"}},
		{"+Inf", "a,b\nInf,2\n", []string{"row 0", "column 0 (a)", "Inf"}},
		{"-Inf", "a,b\n1,-Inf\n", []string{"row 0", "column 1 (b)"}},
		{"headerless NaN", "1,2\nnan,4\n", []string{"row 1", "column 0"}},
	}
	for _, c := range cases {
		_, err := ReadCSV("x", strings.NewReader(c.csv), strings.Contains(c.csv, "a,b"))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		for _, want := range c.wantIn {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %q", c.name, err, want)
			}
		}
	}
}

// TestReadCSVRejectsRaggedRows: a row with a different field count fails with
// the row number and both counts.
func TestReadCSVRejectsRaggedRows(t *testing.T) {
	_, err := ReadCSV("x", strings.NewReader("a,b\n1,2\n3,4,5\n"), true)
	if err == nil {
		t.Fatal("ragged row accepted")
	}
	for _, want := range []string{"row 1", "3 fields", "want 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
}

// FuzzReadCSV drives arbitrary byte input through the parser. The invariant:
// ReadCSV either errors, or returns a dataset in which every value is finite
// and every column has exactly N values — no partial or poisoned dataset
// ever escapes.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1,2\n3,4\n", false)
	f.Add("a,b\n1,NaN\n", true)
	f.Add("a,b\n1\n", true)
	f.Add("x\n+Inf\n", true)
	f.Add("", false)
	f.Add("a,b\n1,2\n3,4,5\n", true)
	f.Add("\"quoted\nnewline\",2\n1,2\n", false)
	f.Fuzz(func(t *testing.T, data string, header bool) {
		ds, err := ReadCSV("fuzz", strings.NewReader(data), header)
		if err != nil {
			return
		}
		if ds.N() <= 0 || ds.D() <= 0 {
			t.Fatalf("accepted dataset with shape %d×%d", ds.N(), ds.D())
		}
		for fi := 0; fi < ds.D(); fi++ {
			col := ds.Column(fi)
			if len(col) != ds.N() {
				t.Fatalf("column %d has %d values, want %d", fi, len(col), ds.N())
			}
			for i, v := range col {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite value %v at row %d column %d slipped through", v, i, fi)
				}
			}
		}
	})
}

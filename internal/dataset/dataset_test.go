package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"anex/internal/subspace"
)

func mustNew(t *testing.T, name string, cols [][]float64) *Dataset {
	t.Helper()
	ds, err := New(name, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil, nil); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := New("x", [][]float64{{1, 2}, {1}}, nil); err == nil {
		t.Error("ragged columns should fail")
	}
	if _, err := New("x", [][]float64{{1}}, []string{"a", "b"}); err == nil {
		t.Error("mismatched feature names should fail")
	}
}

func TestAccessors(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1, 2, 3}, {4, 5, 6}})
	if ds.N() != 3 || ds.D() != 2 || ds.Name() != "d" {
		t.Fatalf("shape %dx%d name %q", ds.N(), ds.D(), ds.Name())
	}
	if ds.Value(1, 0) != 2 || ds.Value(2, 1) != 6 {
		t.Error("Value wrong")
	}
	if ds.FeatureName(1) != "F1" {
		t.Errorf("feature name %q", ds.FeatureName(1))
	}
	row := ds.Row(1, make([]float64, 2))
	if row[0] != 2 || row[1] != 5 {
		t.Errorf("Row = %v", row)
	}
	col := ds.Column(1)
	if col[0] != 4 || col[2] != 6 {
		t.Errorf("Column = %v", col)
	}
}

func TestFromRowsEqualsNew(t *testing.T) {
	rows := [][]float64{{1, 4}, {2, 5}, {3, 6}}
	ds, err := FromRows("r", rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mustNew(t, "r", [][]float64{{1, 2, 3}, {4, 5, 6}})
	for i := 0; i < 3; i++ {
		for f := 0; f < 2; f++ {
			if ds.Value(i, f) != want.Value(i, f) {
				t.Fatalf("mismatch at (%d,%d)", i, f)
			}
		}
	}
	if _, err := FromRows("r", [][]float64{{1, 2}, {1}}, nil); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestView(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := ds.View(subspace.New(0, 2))
	if v.N() != 2 || v.Dim() != 2 {
		t.Fatalf("view shape %dx%d", v.N(), v.Dim())
	}
	if p := v.Point(0); p[0] != 1 || p[1] != 5 {
		t.Errorf("point 0 = %v", p)
	}
	if p := v.Point(1); p[0] != 2 || p[1] != 6 {
		t.Errorf("point 1 = %v", p)
	}
	if !v.Subspace().Equal(subspace.New(0, 2)) {
		t.Error("subspace lost")
	}
	if v.Dataset() != ds {
		t.Error("dataset backref lost")
	}
	full := ds.FullView()
	if full.Dim() != 3 {
		t.Errorf("full view dim %d", full.Dim())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1.5, -2.25}, {0, 1e-9}})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("d", &buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.D() != ds.D() {
		t.Fatalf("shape changed: %dx%d", back.N(), back.D())
	}
	for i := 0; i < ds.N(); i++ {
		for f := 0; f < ds.D(); f++ {
			if back.Value(i, f) != ds.Value(i, f) {
				t.Errorf("value (%d,%d) changed: %v vs %v", i, f, back.Value(i, f), ds.Value(i, f))
			}
		}
	}
	if back.FeatureName(0) != "F0" {
		t.Errorf("feature name %q", back.FeatureName(0))
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1, 2, 3}})
	path := t.TempDir() + "/data.csv"
	if err := ds.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV("d", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 3 || back.D() != 1 {
		t.Fatalf("shape %dx%d", back.N(), back.D())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader(""), false); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1,notanumber\n"), true); err == nil {
		t.Error("non-numeric field should fail")
	}
}

func TestStandardize(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1, 2, 3, 4}, {7, 7, 7, 7}})
	std := ds.Standardize()
	col := std.Column(0)
	var mean float64
	for _, v := range col {
		mean += v
	}
	mean /= float64(len(col))
	if math.Abs(mean) > 1e-12 {
		t.Errorf("standardised mean = %v", mean)
	}
	for _, v := range std.Column(1) {
		if v != 0 {
			t.Errorf("constant column should standardise to 0, got %v", v)
		}
	}
}

func TestMinMaxScale(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{-2, 0, 2}, {5, 5, 5}})
	scaled := ds.MinMaxScale()
	if scaled.Value(0, 0) != 0 || scaled.Value(2, 0) != 1 || scaled.Value(1, 0) != 0.5 {
		t.Errorf("column 0 = %v", scaled.Column(0))
	}
	for _, v := range scaled.Column(1) {
		if v != 0.5 {
			t.Errorf("constant column scaled to %v, want 0.5", v)
		}
	}
}

func TestSubset(t *testing.T) {
	ds := mustNew(t, "d", [][]float64{{1, 2, 3}, {4, 5, 6}})
	sub, err := ds.Subset("s", []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 2 || sub.Value(0, 0) != 3 || sub.Value(1, 1) != 4 {
		t.Errorf("subset wrong: %v %v", sub.Column(0), sub.Column(1))
	}
	if _, err := ds.Subset("s", []int{5}); err == nil {
		t.Error("out-of-range subset should fail")
	}
}

func TestValidate(t *testing.T) {
	ok := mustNew(t, "d", [][]float64{{1, 2}})
	if err := ok.Validate(); err != nil {
		t.Errorf("clean dataset flagged: %v", err)
	}
	bad := mustNew(t, "d", [][]float64{{1, math.NaN()}})
	if err := bad.Validate(); err == nil {
		t.Error("NaN not detected")
	}
	inf := mustNew(t, "d", [][]float64{{math.Inf(1), 1}})
	if err := inf.Validate(); err == nil {
		t.Error("Inf not detected")
	}
}

func TestPropertyViewMatchesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%20) + 1
		d := int(dRaw%8) + 2
		cols := make([][]float64, d)
		for f := range cols {
			cols[f] = make([]float64, n)
			for i := range cols[f] {
				cols[f][i] = rng.NormFloat64()
			}
		}
		ds, err := New("p", cols, nil)
		if err != nil {
			return false
		}
		s := subspace.Random(rng, d, 1+rng.Intn(d))
		v := ds.View(s)
		for i := 0; i < n; i++ {
			for j, feat := range s {
				if v.Point(i)[j] != ds.Value(i, feat) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package dataset

import (
	"fmt"
	"math"

	"anex/internal/stats"
)

// Standardize returns a new dataset whose columns are z-score standardised
// (zero mean, unit variance). Constant columns become all zeros. The paper's
// detectors consume raw feature values, but standardisation is the common
// preprocessing step for distance-based detectors on heterogeneous scales.
func (ds *Dataset) Standardize() *Dataset {
	cols := make([][]float64, ds.D())
	for f := range cols {
		cols[f] = stats.ZScores(ds.cols[f])
	}
	out, err := New(ds.name+"-std", cols, ds.FeatureNames())
	if err != nil {
		panic(fmt.Sprintf("dataset: standardize: %v", err)) // shapes preserved; unreachable
	}
	return out
}

// MinMaxScale returns a new dataset with every column rescaled to [0, 1].
// Constant columns become all 0.5.
func (ds *Dataset) MinMaxScale() *Dataset {
	cols := make([][]float64, ds.D())
	for f := range cols {
		src := ds.cols[f]
		dst := make([]float64, len(src))
		lo, hi := stats.MinMax(src)
		span := hi - lo
		for i, v := range src {
			if span == 0 {
				dst[i] = 0.5
			} else {
				dst[i] = (v - lo) / span
			}
		}
		cols[f] = dst
	}
	out, err := New(ds.name+"-minmax", cols, ds.FeatureNames())
	if err != nil {
		panic(fmt.Sprintf("dataset: minmax: %v", err)) // shapes preserved; unreachable
	}
	return out
}

// Subset returns a new dataset containing only the given points, in order.
func (ds *Dataset) Subset(name string, points []int) (*Dataset, error) {
	cols := make([][]float64, ds.D())
	for f := range cols {
		src := ds.cols[f]
		dst := make([]float64, len(points))
		for j, p := range points {
			if p < 0 || p >= ds.n {
				return nil, fmt.Errorf("dataset %q: subset point %d out of range [0, %d)", ds.name, p, ds.n)
			}
			dst[j] = src[p]
		}
		cols[f] = dst
	}
	return New(name, cols, ds.FeatureNames())
}

// Validate checks the dataset for NaN and infinite values, returning an
// error naming the first offending cell.
func (ds *Dataset) Validate() error {
	for f, col := range ds.cols {
		for i, v := range col {
			if math.IsNaN(v) {
				return fmt.Errorf("dataset %q: NaN at point %d feature %s", ds.name, i, ds.features[f])
			}
			if math.IsInf(v, 0) {
				return fmt.Errorf("dataset %q: infinity at point %d feature %s", ds.name, i, ds.features[f])
			}
		}
	}
	return nil
}

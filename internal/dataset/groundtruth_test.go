package dataset

import (
	"bytes"
	"testing"

	"anex/internal/subspace"
)

func sampleGT() *GroundTruth {
	return NewGroundTruth(map[int][]subspace.Subspace{
		3: {subspace.New(0, 1), subspace.New(2, 3, 4)},
		7: {subspace.New(0, 1)},
		1: {subspace.New(5, 6)},
	})
}

func TestGroundTruthBasics(t *testing.T) {
	gt := sampleGT()
	if got := gt.Outliers(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("Outliers = %v", got)
	}
	if gt.NumOutliers() != 3 {
		t.Errorf("NumOutliers = %d", gt.NumOutliers())
	}
	if !gt.IsOutlier(3) || gt.IsOutlier(2) {
		t.Error("IsOutlier wrong")
	}
	if rel := gt.RelevantFor(3); len(rel) != 2 {
		t.Errorf("RelevantFor(3) = %v", rel)
	}
	if rel := gt.RelevantFor(99); rel != nil {
		t.Errorf("RelevantFor(non-outlier) = %v", rel)
	}
}

func TestGroundTruthDeduplicates(t *testing.T) {
	gt := NewGroundTruth(map[int][]subspace.Subspace{
		0: {subspace.New(1, 0), subspace.New(0, 1)},
	})
	if rel := gt.RelevantFor(0); len(rel) != 1 {
		t.Errorf("duplicates not removed: %v", rel)
	}
}

func TestRelevantAt(t *testing.T) {
	gt := sampleGT()
	if rel := gt.RelevantAt(3, 2); len(rel) != 1 || !rel[0].Equal(subspace.New(0, 1)) {
		t.Errorf("RelevantAt(3,2) = %v", rel)
	}
	if rel := gt.RelevantAt(3, 3); len(rel) != 1 {
		t.Errorf("RelevantAt(3,3) = %v", rel)
	}
	if rel := gt.RelevantAt(3, 4); rel != nil {
		t.Errorf("RelevantAt(3,4) = %v", rel)
	}
}

func TestPointsExplainedAt(t *testing.T) {
	gt := sampleGT()
	if pts := gt.PointsExplainedAt(2); len(pts) != 3 {
		t.Errorf("PointsExplainedAt(2) = %v", pts)
	}
	if pts := gt.PointsExplainedAt(3); len(pts) != 1 || pts[0] != 3 {
		t.Errorf("PointsExplainedAt(3) = %v", pts)
	}
	if pts := gt.PointsExplainedAt(5); pts != nil {
		t.Errorf("PointsExplainedAt(5) = %v", pts)
	}
}

func TestAllSubspacesAndDims(t *testing.T) {
	gt := sampleGT()
	all := gt.AllSubspaces()
	if len(all) != 3 {
		t.Errorf("AllSubspaces = %v", all)
	}
	dims := gt.Dimensionalities()
	if len(dims) != 2 || dims[0] != 2 || dims[1] != 3 {
		t.Errorf("Dimensionalities = %v", dims)
	}
}

func TestOutliersPerSubspace(t *testing.T) {
	gt := sampleGT()
	// {0,1} explains 2 points, {2,3,4} 1, {5,6} 1 → mean 4/3.
	got := gt.OutliersPerSubspace()
	if got < 1.333 || got > 1.334 {
		t.Errorf("OutliersPerSubspace = %v", got)
	}
	empty := NewGroundTruth(nil)
	if empty.OutliersPerSubspace() != 0 {
		t.Error("empty ground truth should report 0")
	}
}

func TestGroundTruthJSONRoundTrip(t *testing.T) {
	gt := sampleGT()
	var buf bytes.Buffer
	if err := gt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGroundTruthJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOutliers() != gt.NumOutliers() {
		t.Fatalf("outlier count changed")
	}
	for _, p := range gt.Outliers() {
		want := gt.RelevantFor(p)
		got := back.RelevantFor(p)
		if len(want) != len(got) {
			t.Fatalf("point %d: %v vs %v", p, got, want)
		}
	}
}

func TestReadGroundTruthJSONErrors(t *testing.T) {
	if _, err := ReadGroundTruthJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := ReadGroundTruthJSON(bytes.NewReader([]byte(`{"relevant":{"x":["0,1"]}}`))); err == nil {
		t.Error("non-numeric point index should fail")
	}
	if _, err := ReadGroundTruthJSON(bytes.NewReader([]byte(`{"relevant":{"1":["bad"]}}`))); err == nil {
		t.Error("malformed subspace key should fail")
	}
}

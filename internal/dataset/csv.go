package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as CSV with a header row of feature names.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ds.features); err != nil {
		return fmt.Errorf("dataset %q: write header: %w", ds.name, err)
	}
	record := make([]string, ds.D())
	for i := 0; i < ds.n; i++ {
		for f := 0; f < ds.D(); f++ {
			record[f] = strconv.FormatFloat(ds.cols[f][i], 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset %q: write row %d: %w", ds.name, i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset from CSV. If header is true the first record is
// interpreted as feature names; otherwise names F0…F(d−1) are generated.
func ReadCSV(name string, r io.Reader, header bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var features []string
	var cols [][]float64
	row := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %q: read: %w", name, err)
		}
		if features == nil && cols == nil {
			if header {
				features = make([]string, len(record))
				copy(features, record)
				continue
			}
		}
		if cols == nil {
			cols = make([][]float64, len(record))
		}
		if len(record) != len(cols) {
			return nil, fmt.Errorf("dataset %q: row %d has %d fields, want %d", name, row, len(record), len(cols))
		}
		for f, field := range record {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %q: row %d field %d: %w", name, row, f, err)
			}
			cols[f] = append(cols[f], v)
		}
		row++
	}
	if cols == nil {
		return nil, fmt.Errorf("dataset %q: empty CSV", name)
	}
	return New(name, cols, features)
}

// SaveCSV writes the dataset to the named file.
func (ds *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset %q: %w", ds.name, err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from the named file, expecting a header row.
func LoadCSV(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	defer f.Close()
	return ReadCSV(name, f, true)
}

package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as CSV with a header row of feature names.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(ds.features); err != nil {
		return fmt.Errorf("dataset %q: write header: %w", ds.name, err)
	}
	record := make([]string, ds.D())
	for i := 0; i < ds.n; i++ {
		for f := 0; f < ds.D(); f++ {
			record[f] = strconv.FormatFloat(ds.cols[f][i], 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset %q: write row %d: %w", ds.name, i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a dataset from CSV. If header is true the first record is
// interpreted as feature names; otherwise names F0…F(d−1) are generated.
//
// Input is validated strictly: every row must have the same number of fields
// as the first, and every value must be a finite float — NaN and ±Inf parse
// successfully but poison distance computations and detector scores far from
// their source, so they are rejected here with the offending row and column
// named.
func ReadCSV(name string, r io.Reader, header bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	// The csv package's own ragged-row check is kept off so the error can
	// name the dataset, row, and both field counts in this package's format.
	cr.FieldsPerRecord = -1
	var features []string
	var cols [][]float64
	row := 0
	colName := func(f int) string {
		if f < len(features) {
			return fmt.Sprintf("column %d (%s)", f, features[f])
		}
		return fmt.Sprintf("column %d", f)
	}
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %q: read: %w", name, err)
		}
		if features == nil && cols == nil {
			if header {
				features = make([]string, len(record))
				copy(features, record)
				continue
			}
		}
		if cols == nil {
			cols = make([][]float64, len(record))
		}
		if len(record) != len(cols) {
			return nil, fmt.Errorf("dataset %q: row %d has %d fields, want %d", name, row, len(record), len(cols))
		}
		for f, field := range record {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %q: row %d %s: %w", name, row, colName(f), err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset %q: row %d %s: non-finite value %q", name, row, colName(f), field)
			}
			cols[f] = append(cols[f], v)
		}
		row++
	}
	if cols == nil {
		return nil, fmt.Errorf("dataset %q: empty CSV", name)
	}
	return New(name, cols, features)
}

// SaveCSV writes the dataset to the named file.
func (ds *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset %q: %w", ds.name, err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSV reads a dataset from the named file, expecting a header row.
func LoadCSV(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	defer f.Close()
	return ReadCSV(name, f, true)
}

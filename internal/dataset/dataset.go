// Package dataset provides the in-memory data model of the testbed: an
// immutable numeric dataset with named features, cheap subspace projection
// (views), CSV persistence, and the ground-truth model associating each
// outlier with its relevant explaining subspaces.
package dataset

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"anex/internal/subspace"
)

// Dataset is an immutable collection of n points over d numeric features.
// Data is stored column-major, which makes subspace projection — the hot
// operation of every explanation algorithm — a simple gather of k columns.
type Dataset struct {
	name     string
	id       uint64      // process-unique identity (see ID)
	features []string    // feature names, len d
	cols     [][]float64 // cols[f][i] = value of feature f at point i
	n        int
	gathers  atomic.Int64 // view materialisations performed (see Gathers)
}

// nextDatasetID hands out process-unique dataset identities.
var nextDatasetID atomic.Uint64

// New builds a dataset from column-major data. The columns are not copied;
// the caller must not mutate them afterwards. Feature names may be nil, in
// which case F0…F(d−1) are generated.
func New(name string, cols [][]float64, features []string) (*Dataset, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset %q: no columns", name)
	}
	n := len(cols[0])
	for f, c := range cols {
		if len(c) != n {
			return nil, fmt.Errorf("dataset %q: column %d has %d values, want %d", name, f, len(c), n)
		}
	}
	if features == nil {
		features = make([]string, len(cols))
		for f := range features {
			features[f] = fmt.Sprintf("F%d", f)
		}
	}
	if len(features) != len(cols) {
		return nil, fmt.Errorf("dataset %q: %d feature names for %d columns", name, len(features), len(cols))
	}
	return &Dataset{name: name, id: nextDatasetID.Add(1), features: features, cols: cols, n: n}, nil
}

// FromRows builds a dataset from row-major data, copying it into
// column-major storage.
func FromRows(name string, rows [][]float64, features []string) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset %q: no rows", name)
	}
	d := len(rows[0])
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, len(rows))
	}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("dataset %q: row %d has %d values, want %d", name, i, len(r), d)
		}
		for f, v := range r {
			cols[f][i] = v
		}
	}
	return New(name, cols, features)
}

// Name returns the dataset's name.
func (ds *Dataset) Name() string { return ds.name }

// ID returns the dataset's process-unique identity. Two datasets built in
// the same process never share an ID even when their names collide, which
// is what makes process-wide caches (the shared neighbourhood plane) safe
// to key by dataset rather than by name.
func (ds *Dataset) ID() uint64 { return ds.id }

// SourceKey identifies the dataset in process-wide caches (the
// neighbourhood plane, the delta engine): the name plus the process-unique
// ID, the same key every View of this dataset reports. Holders of short-
// lived datasets (the stream monitor's windows) use it to release cache
// entries when a dataset dies.
func (ds *Dataset) SourceKey() string {
	return ds.name + "#" + strconv.FormatUint(ds.id, 10)
}

// N returns the number of points.
func (ds *Dataset) N() int { return ds.n }

// D returns the number of features.
func (ds *Dataset) D() int { return len(ds.cols) }

// FeatureName returns the name of feature f.
func (ds *Dataset) FeatureName(f int) string { return ds.features[f] }

// FeatureNames returns a copy of all feature names.
func (ds *Dataset) FeatureNames() []string {
	out := make([]string, len(ds.features))
	copy(out, ds.features)
	return out
}

// Value returns the value of feature f at point i.
func (ds *Dataset) Value(i, f int) float64 { return ds.cols[f][i] }

// Column returns the values of feature f for all points. The returned slice
// is shared with the dataset and must not be mutated.
func (ds *Dataset) Column(f int) []float64 { return ds.cols[f] }

// Row copies point i's full-space values into dst (which must have length
// ≥ d) and returns dst[:d].
func (ds *Dataset) Row(i int, dst []float64) []float64 {
	for f := range ds.cols {
		dst[f] = ds.cols[f][i]
	}
	return dst[:len(ds.cols)]
}

// View returns a LAZY projection of the dataset onto the given subspace.
// Construction is O(k): it clones the subspace and defers the O(n·k)
// row-major gather until Points or Point is first touched. This is what
// makes the cache-first scoring path allocation-free — a memoised detector
// can answer from the view's key (dataset name + subspace) without the
// projection ever being materialised. Views are safe for concurrent use;
// the first accessor performs the gather exactly once.
func (ds *Dataset) View(s subspace.Subspace) *View {
	return &View{sub: s.Clone(), dataset: ds}
}

// FullView returns the view over all features.
func (ds *Dataset) FullView() *View {
	return ds.View(subspace.Full(ds.D()))
}

// Gathers returns the number of view materialisations performed against
// this dataset since construction — the observability hook that lets tests
// assert the cache-hit path triggers zero O(n·k) projection work.
func (ds *Dataset) Gathers() int64 { return ds.gathers.Load() }

// View is the projection of a dataset onto one subspace. The row-major
// point data is materialised lazily: the subspace identity (Subspace, Dim,
// N) is available immediately and for free, while the first call to Points
// or Point performs the one-time O(n·k) gather.
type View struct {
	sub     subspace.Subspace
	dataset *Dataset

	once sync.Once
	rows [][]float64
}

// Subspace returns the subspace this view projects onto.
func (v *View) Subspace() subspace.Subspace { return v.sub }

// N returns the number of points in the view.
func (v *View) N() int { return v.dataset.n }

// Dim returns the dimensionality of the view.
func (v *View) Dim() int { return len(v.sub) }

// materialise performs the deferred row gather. Rows share one flat backing
// array, so the whole view costs two allocations regardless of n.
func (v *View) materialise() {
	ds := v.dataset
	k := len(v.sub)
	flat := make([]float64, ds.n*k)
	rows := make([][]float64, ds.n)
	for j, f := range v.sub {
		col := ds.cols[f]
		for i := 0; i < ds.n; i++ {
			flat[i*k+j] = col[i]
		}
	}
	for i := range rows {
		rows[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	v.rows = rows
	ds.gathers.Add(1)
}

// Point returns the projected coordinates of point i, materialising the
// view on first access. The returned slice is shared with the view and must
// not be mutated.
func (v *View) Point(i int) []float64 {
	v.once.Do(v.materialise)
	return v.rows[i]
}

// Points returns all projected points, materialising the view on first
// access. Shared storage; do not mutate.
func (v *View) Points() [][]float64 {
	v.once.Do(v.materialise)
	return v.rows
}

// Dataset returns the dataset this view was projected from.
func (v *View) Dataset() *Dataset { return v.dataset }

// The methods below give delta-distance scoring column-contiguous access to
// the view without materialising rows (they satisfy neighbors.ColumnSource).
// Because the dataset is column-major, a view column is the underlying
// dataset column itself — zero-copy, zero-gather.

// Column returns the j-th column of the view, i.e. the values of the view's
// j-th subspace feature (ascending feature order) for all points. Shared
// storage; do not mutate.
func (v *View) Column(j int) []float64 { return v.dataset.cols[v.sub[j]] }

// Feature returns the global feature index of view column j.
func (v *View) Feature(j int) int { return v.sub[j] }

// NumFeatures returns the full dimensionality of the underlying dataset.
func (v *View) NumFeatures() int { return len(v.dataset.cols) }

// SourceColumn returns full-space column f of the underlying dataset.
// Shared storage; do not mutate.
func (v *View) SourceColumn(f int) []float64 { return v.dataset.cols[f] }

// SourceKey identifies the underlying dataset for cross-view caching. It
// embeds the dataset's process-unique ID, so caches shared across the whole
// process (the neighbourhood plane, the delta engine) never alias two
// datasets that happen to carry the same name.
func (v *View) SourceKey() string { return v.dataset.SourceKey() }

// SubspaceKey returns the canonical key of the view's subspace.
func (v *View) SubspaceKey() string { return v.sub.Key() }

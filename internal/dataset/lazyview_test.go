package dataset

import (
	"sync"
	"testing"

	"anex/internal/subspace"
)

// TestViewLazyMaterialisation asserts the lazy-view contract: constructing
// a view and reading its identity (Subspace, N, Dim) performs no gather;
// the first Points/Point access performs exactly one.
func TestViewLazyMaterialisation(t *testing.T) {
	ds := mustNew(t, "lazy", [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	v := ds.View(subspace.New(0, 2))
	if g := ds.Gathers(); g != 0 {
		t.Fatalf("View construction gathered %d times, want 0", g)
	}
	if v.N() != 3 || v.Dim() != 2 || v.Subspace().Key() != "0,2" {
		t.Fatalf("view identity wrong: n=%d dim=%d key=%q", v.N(), v.Dim(), v.Subspace().Key())
	}
	if g := ds.Gathers(); g != 0 {
		t.Fatalf("identity accessors gathered %d times, want 0", g)
	}

	got := v.Point(1)
	if g := ds.Gathers(); g != 1 {
		t.Fatalf("first Point access gathered %d times, want 1", g)
	}
	if got[0] != 2 || got[1] != 8 {
		t.Fatalf("Point(1) = %v, want [2 8]", got)
	}
	// Repeat access on the same view — and Points — must reuse the gather.
	_ = v.Point(0)
	rows := v.Points()
	if g := ds.Gathers(); g != 1 {
		t.Fatalf("repeat accesses gathered %d times total, want 1", g)
	}
	if len(rows) != 3 || rows[2][0] != 3 || rows[2][1] != 9 {
		t.Fatalf("Points() = %v", rows)
	}

	// A second view over the same subspace is an independent gather.
	_ = ds.View(subspace.New(0, 2)).Points()
	if g := ds.Gathers(); g != 2 {
		t.Fatalf("second view gathered %d times total, want 2", g)
	}
}

// TestViewConcurrentMaterialise races many goroutines into a fresh view's
// first access: the gather must run exactly once and every reader must see
// the same fully-built rows (validated under the -race gate of check.sh).
func TestViewConcurrentMaterialise(t *testing.T) {
	cols := make([][]float64, 4)
	for f := range cols {
		cols[f] = make([]float64, 100)
		for i := range cols[f] {
			cols[f][i] = float64(f*1000 + i)
		}
	}
	ds := mustNew(t, "lazy-conc", cols)
	v := ds.View(subspace.New(1, 3))

	const readers = 16
	var wg sync.WaitGroup
	errs := make([]string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := v.Point(i)
				if p[0] != float64(1000+i) || p[1] != float64(3000+i) {
					errs[r] = "bad projection"
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != "" {
			t.Fatalf("reader %d: %s", r, e)
		}
	}
	if g := ds.Gathers(); g != 1 {
		t.Fatalf("concurrent first access gathered %d times, want 1", g)
	}
}

package metrics

import "sort"

// Detector-quality measures. The paper evaluates EXPLAINERS with MAP over
// subspaces, but its dataset construction ("all outliers in HiCS datasets
// can be discovered by the three detectors") rests on detector quality,
// which these measures quantify: ROC AUC and precision-at-n of a score
// ranking against outlier labels, the measures of the detector-evaluation
// studies the paper builds on (Campos et al. 2016).

// ROCAUC returns the area under the ROC curve of the outlyingness scores
// against the binary labels (true = outlier). Ties receive half credit
// (equivalent to the Mann–Whitney U statistic). It returns NaN-free 0.5
// when either class is empty.
func ROCAUC(scores []float64, outlier []bool) float64 {
	if len(scores) != len(outlier) {
		panic("metrics: scores and labels differ in length")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	var pos, neg int
	for _, o := range outlier {
		if o {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Rank-sum with midranks for ties.
	var rankSum float64
	i := 0
	for i < len(idx) {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if outlier[idx[k]] {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// PrecisionAtN returns the fraction of true outliers among the n
// highest-scored points; n defaults to the number of true outliers when
// non-positive (the "R-precision" convention of Campos et al.).
func PrecisionAtN(scores []float64, outlier []bool, n int) float64 {
	if len(scores) != len(outlier) {
		panic("metrics: scores and labels differ in length")
	}
	if n <= 0 {
		for _, o := range outlier {
			if o {
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	if n > len(scores) {
		n = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	hits := 0
	for _, i := range idx[:n] {
		if outlier[i] {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// AveragePrecisionScore returns the average precision of the score ranking
// against the labels: the mean of precision@k over the ranks k at which
// true outliers appear. Ties break on index for determinism.
func AveragePrecisionScore(scores []float64, outlier []bool) float64 {
	if len(scores) != len(outlier) {
		panic("metrics: scores and labels differ in length")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	var pos int
	for _, o := range outlier {
		if o {
			pos++
		}
	}
	if pos == 0 {
		return 0
	}
	var sum float64
	hits := 0
	for k, i := range idx {
		if outlier[i] {
			hits++
			sum += float64(hits) / float64(k+1)
		}
	}
	return sum / float64(pos)
}

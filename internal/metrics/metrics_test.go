package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anex/internal/subspace"
)

func subs(keys ...string) []subspace.Subspace {
	out := make([]subspace.Subspace, len(keys))
	for i, k := range keys {
		s, err := subspace.Parse(k)
		if err != nil {
			panic(err)
		}
		out[i] = s
	}
	return out
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPrecision(t *testing.T) {
	returned := subs("0,1", "2,3", "4,5", "6,7")
	relevant := subs("2,3", "6,7")
	if p := Precision(returned, relevant); !almost(p, 0.5) {
		t.Errorf("Precision = %v", p)
	}
	if p := Precision(nil, relevant); p != 0 {
		t.Errorf("empty EXP Precision = %v", p)
	}
}

func TestPrecisionAtK(t *testing.T) {
	returned := subs("0,1", "2,3", "4,5")
	relevant := subs("2,3")
	cases := []struct {
		k    int
		want float64
	}{
		{1, 0}, {2, 0.5}, {3, 1.0 / 3}, {10, 1.0 / 3}, {0, 0},
	}
	for _, c := range cases {
		if got := PrecisionAtK(returned, relevant, c.k); !almost(got, c.want) {
			t.Errorf("P@%d = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestRecall(t *testing.T) {
	returned := subs("0,1", "2,3")
	relevant := subs("2,3", "4,5", "6,7")
	if r := Recall(returned, relevant); !almost(r, 1.0/3) {
		t.Errorf("Recall = %v", r)
	}
	if r := Recall(returned, nil); r != 0 {
		t.Errorf("empty REL Recall = %v", r)
	}
	// Duplicate returned subspaces must count once.
	dup := subs("2,3", "2,3")
	if r := Recall(dup, relevant); !almost(r, 1.0/3) {
		t.Errorf("duplicate Recall = %v", r)
	}
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	relevant := subs("0,1", "2,3")
	returned := subs("0,1", "2,3", "4,5")
	// P@1·1 + P@2·1 = 1 + 1 → /2 = 1.
	if ap := AveragePrecision(returned, relevant); !almost(ap, 1) {
		t.Errorf("perfect AveP = %v", ap)
	}
}

func TestAveragePrecisionWorstRanking(t *testing.T) {
	relevant := subs("9,10")
	returned := subs("0,1", "2,3", "9,10")
	// Only hit at rank 3: P@3 = 1/3 → AveP = 1/3.
	if ap := AveragePrecision(returned, relevant); !almost(ap, 1.0/3) {
		t.Errorf("AveP = %v", ap)
	}
}

func TestAveragePrecisionTextbookExample(t *testing.T) {
	// Hits at ranks 1 and 3 of three relevant: (1/1 + 2/3)/3.
	relevant := subs("0,1", "2,3", "4,5")
	returned := subs("0,1", "8,9", "2,3")
	want := (1.0 + 2.0/3) / 3
	if ap := AveragePrecision(returned, relevant); !almost(ap, want) {
		t.Errorf("AveP = %v, want %v", ap, want)
	}
}

func TestAveragePrecisionMissingEverything(t *testing.T) {
	if ap := AveragePrecision(subs("0,1"), subs("2,3")); ap != 0 {
		t.Errorf("AveP = %v", ap)
	}
	if ap := AveragePrecision(nil, subs("2,3")); ap != 0 {
		t.Errorf("empty EXP AveP = %v", ap)
	}
	if ap := AveragePrecision(subs("0,1"), nil); ap != 0 {
		t.Errorf("empty REL AveP = %v", ap)
	}
}

func TestAveragePrecisionDuplicatesCountOnce(t *testing.T) {
	relevant := subs("0,1")
	returned := subs("0,1", "0,1", "0,1")
	if ap := AveragePrecision(returned, relevant); !almost(ap, 1) {
		t.Errorf("AveP with duplicates = %v", ap)
	}
}

func TestMAPAndMeanRecall(t *testing.T) {
	results := []PointResult{
		{Point: 1, AveP: 1, Recall: 1},
		{Point: 2, AveP: 0.5, Recall: 0},
		{Point: 3, AveP: 0, Recall: 0.5},
	}
	if m := MAP(results); !almost(m, 0.5) {
		t.Errorf("MAP = %v", m)
	}
	if r := MeanRecall(results); !almost(r, 0.5) {
		t.Errorf("MeanRecall = %v", r)
	}
	if MAP(nil) != 0 || MeanRecall(nil) != 0 {
		t.Error("empty results should yield 0")
	}
}

func TestEvaluatePoint(t *testing.T) {
	res := EvaluatePoint(7, subs("0,1", "2,3"), subs("2,3"))
	if res.Point != 7 || res.Relevant != 1 || res.Returned != 2 {
		t.Errorf("bookkeeping wrong: %+v", res)
	}
	if !almost(res.AveP, 0.5) || !almost(res.Recall, 1) {
		t.Errorf("metrics wrong: %+v", res)
	}
}

func TestPropertyMetricBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(retRaw, relRaw []uint8) bool {
		returned := randomSubs(rng, retRaw)
		relevant := randomSubs(rng, relRaw)
		p := Precision(returned, relevant)
		r := Recall(returned, relevant)
		ap := AveragePrecision(returned, relevant)
		for _, v := range []float64{p, r, ap} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// AveP ≤ Recall never holds in general, but AveP ≤ 1 and
		// AveP > 0 requires at least one hit.
		if ap > 0 && r == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPerfectPrefixIsOptimal(t *testing.T) {
	// Placing all relevant subspaces first always yields AveP = 1.
	rng := rand.New(rand.NewSource(9))
	f := func(relRaw []uint8, fillerRaw []uint8) bool {
		relevant := randomSubs(rng, relRaw)
		if len(relevant) == 0 {
			return true
		}
		filler := randomSubs(rng, fillerRaw)
		returned := make([]subspace.Subspace, 0, len(relevant)+len(filler))
		returned = append(returned, relevant...)
		for _, f := range filler {
			dup := false
			for _, r := range relevant {
				if r.Equal(f) {
					dup = true
					break
				}
			}
			if !dup {
				returned = append(returned, f)
			}
		}
		return almost(AveragePrecision(returned, relevant), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomSubs converts fuzz bytes into distinct small subspaces.
func randomSubs(rng *rand.Rand, raw []uint8) []subspace.Subspace {
	seen := make(map[string]bool)
	var out []subspace.Subspace
	for _, b := range raw {
		s := subspace.New(int(b%8), int(b/8%8)+8)
		if !seen[s.Key()] {
			seen[s.Key()] = true
			out = append(out, s)
		}
	}
	return out
}

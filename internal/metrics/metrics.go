// Package metrics implements the evaluation measures of the paper
// (Section 3.3): precision at k, average precision, Mean Average Precision
// (MAP), and Mean Recall of ranked subspace explanations against a ground
// truth of relevant subspaces. A returned subspace counts as relevant only
// when it is identical to a ground-truth subspace.
package metrics

import (
	"anex/internal/subspace"
)

// relSet is a key-set over canonical subspaces.
type relSet map[string]bool

func newRelSet(relevant []subspace.Subspace) relSet {
	set := make(relSet, len(relevant))
	for _, s := range relevant {
		set[s.Key()] = true
	}
	return set
}

// PrecisionAtK returns P@k: the fraction of the first k returned subspaces
// that are relevant (Eq. 1 restricted to the k-prefix). k is clamped to the
// list length; an empty prefix yields 0.
func PrecisionAtK(returned, relevant []subspace.Subspace, k int) float64 {
	if k > len(returned) {
		k = len(returned)
	}
	if k <= 0 {
		return 0
	}
	set := newRelSet(relevant)
	hits := 0
	for _, s := range returned[:k] {
		if set[s.Key()] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// Precision returns |REL ∩ EXP| / |EXP| (Eq. 1).
func Precision(returned, relevant []subspace.Subspace) float64 {
	return PrecisionAtK(returned, relevant, len(returned))
}

// Recall returns |REL ∩ EXP| / |REL|: the fraction of relevant subspaces
// that appear anywhere in the returned list.
func Recall(returned, relevant []subspace.Subspace) float64 {
	if len(relevant) == 0 {
		return 0
	}
	set := newRelSet(relevant)
	hits := 0
	for _, s := range returned {
		if set[s.Key()] {
			hits++
			delete(set, s.Key()) // count duplicates in EXP once
		}
	}
	return float64(hits) / float64(len(relevant))
}

// AveragePrecision returns AveP (Eq. 2):
//
//	AveP = Σ_k P@k · rel(k) / |REL|
//
// where rel(k) indicates whether the subspace at rank k is relevant.
// Duplicate occurrences of a relevant subspace contribute only once, at
// their first rank. It is 0 when REL is empty.
func AveragePrecision(returned, relevant []subspace.Subspace) float64 {
	if len(relevant) == 0 {
		return 0
	}
	set := newRelSet(relevant)
	var sum float64
	hits := 0
	for k, s := range returned {
		if set[s.Key()] {
			delete(set, s.Key())
			hits++
			sum += float64(hits) / float64(k+1)
		}
	}
	return sum / float64(len(relevant))
}

// PointResult is the evaluation of one explained point.
type PointResult struct {
	Point int
	// AveP is the average precision of the explanation (Eq. 2).
	AveP float64
	// Recall is the fraction of the point's relevant subspaces returned.
	Recall float64
	// Relevant is |REL_p| and Returned is |EXP_a(p)|.
	Relevant, Returned int
}

// MAP returns the Mean Average Precision over per-point results (Eq. 3).
func MAP(results []PointResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.AveP
	}
	return sum / float64(len(results))
}

// MeanRecall returns the mean per-point recall over the results.
func MeanRecall(results []PointResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.Recall
	}
	return sum / float64(len(results))
}

// EvaluatePoint scores one point's returned explanation list against its
// relevant subspaces.
func EvaluatePoint(p int, returned, relevant []subspace.Subspace) PointResult {
	return PointResult{
		Point:    p,
		AveP:     AveragePrecision(returned, relevant),
		Recall:   Recall(returned, relevant),
		Relevant: len(relevant),
		Returned: len(returned),
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCAUCPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.2, 0.1}
	labels := []bool{true, true, false, false, false}
	if auc := ROCAUC(scores, labels); auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
}

func TestROCAUCInvertedRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if auc := ROCAUC(scores, labels); auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
}

func TestROCAUCKnownValue(t *testing.T) {
	// One outlier ranked 2nd of 4: 2 of 3 inliers below it → AUC = 2/3.
	scores := []float64{4, 3, 2, 1}
	labels := []bool{false, true, false, false}
	if auc := ROCAUC(scores, labels); math.Abs(auc-2.0/3) > 1e-12 {
		t.Errorf("AUC = %v, want 2/3", auc)
	}
}

func TestROCAUCTiesGetHalfCredit(t *testing.T) {
	// All scores equal → AUC exactly 0.5.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if auc := ROCAUC(scores, labels); auc != 0.5 {
		t.Errorf("all-ties AUC = %v", auc)
	}
}

func TestROCAUCDegenerateClasses(t *testing.T) {
	if auc := ROCAUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Errorf("no negatives AUC = %v", auc)
	}
	if auc := ROCAUC([]float64{1, 2}, []bool{false, false}); auc != 0.5 {
		t.Errorf("no positives AUC = %v", auc)
	}
}

func TestROCAUCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	ROCAUC([]float64{1}, []bool{true, false})
}

func TestPrecisionAtN(t *testing.T) {
	scores := []float64{9, 8, 7, 6, 5}
	labels := []bool{true, false, true, false, false}
	if p := PrecisionAtN(scores, labels, 1); p != 1 {
		t.Errorf("P@1 = %v", p)
	}
	if p := PrecisionAtN(scores, labels, 3); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("P@3 = %v", p)
	}
	// n ≤ 0 → R-precision with n = #outliers = 2 → hits {9} of top {9,8} → 0.5.
	if p := PrecisionAtN(scores, labels, 0); p != 0.5 {
		t.Errorf("R-precision = %v", p)
	}
	if p := PrecisionAtN(scores, labels, 100); math.Abs(p-2.0/5) > 1e-12 {
		t.Errorf("clamped P@n = %v", p)
	}
	if p := PrecisionAtN([]float64{1}, []bool{false}, 0); p != 0 {
		t.Errorf("no outliers R-precision = %v", p)
	}
}

func TestAveragePrecisionScore(t *testing.T) {
	scores := []float64{9, 8, 7, 6}
	labels := []bool{true, false, true, false}
	// Hits at ranks 1 and 3: (1/1 + 2/3)/2.
	want := (1.0 + 2.0/3) / 2
	if ap := AveragePrecisionScore(scores, labels); math.Abs(ap-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", ap, want)
	}
	if ap := AveragePrecisionScore(scores, []bool{false, false, false, false}); ap != 0 {
		t.Errorf("no positives AP = %v", ap)
	}
}

func TestDetectorQualityOnSeparatedScores(t *testing.T) {
	// Well-separated score distributions → near-perfect measures.
	rng := rand.New(rand.NewSource(1))
	var scores []float64
	var labels []bool
	for i := 0; i < 200; i++ {
		scores = append(scores, rng.NormFloat64())
		labels = append(labels, false)
	}
	for i := 0; i < 20; i++ {
		scores = append(scores, 6+rng.NormFloat64())
		labels = append(labels, true)
	}
	if auc := ROCAUC(scores, labels); auc < 0.999 {
		t.Errorf("separated AUC = %v", auc)
	}
	if p := PrecisionAtN(scores, labels, 0); p < 0.95 {
		t.Errorf("separated R-precision = %v", p)
	}
}

func TestPropertyAUCBoundsAndComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		hasPos, hasNeg := false, false
		for i, b := range raw {
			scores[i] = float64(b % 16)
			labels[i] = rng.Intn(3) == 0
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		auc := ROCAUC(scores, labels)
		if auc < 0 || auc > 1 {
			return false
		}
		if !hasPos || !hasNeg {
			return auc == 0.5
		}
		// Negating scores complements the AUC.
		neg := make([]float64, len(scores))
		for i, s := range scores {
			neg[i] = -s
		}
		return math.Abs(ROCAUC(neg, labels)-(1-auc)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

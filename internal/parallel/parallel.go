// Package parallel is the shared bounded-worker substrate behind every
// concurrent loop in the library: grid cells, per-point explanation,
// per-subspace ranking, and per-point detector scoring all fan out through
// it. The contract is determinism by construction — work is identified by
// index, each index is processed exactly once, and callers write only to
// their own index's slot — so results are bit-identical at any worker
// count. The worker knob itself follows one convention everywhere: values
// ≤ 1 run inline (serial, the zero value's behaviour), larger values bound
// the goroutine count. Resolve translates the user-facing CLI convention
// (0 = all cores) into a concrete count at the boundary.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a user-facing worker knob to a concrete count: values ≤ 0
// select GOMAXPROCS (use every core), anything positive is returned
// unchanged. CLIs and specs resolve once at the boundary and pass explicit
// counts down, so inner loops never consult the environment themselves.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ShardCount returns the number of distinct shard ids ForEachShard will use
// for the given knob and problem size: min(workers, n), at least 1. Callers
// allocating per-shard scratch size their slice with it.
func ShardCount(workers, n int) int {
	if workers < 1 || n < 1 {
		return 1
	}
	if workers > n {
		return n
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n) exactly once. With workers
// ≤ 1 the loop runs inline in index order; with more, indices are
// distributed dynamically across min(workers, n) goroutines and ForEach
// returns after all complete. fn must be safe for concurrent invocation on
// distinct indices; writing only to slot i of pre-sized output slices keeps
// results identical at any worker count.
func ForEach(workers, n int, fn func(i int)) {
	ForEachShard(workers, n, func(_, i int) { fn(i) })
}

// ForEachShard is ForEach with a stable shard id (0 ≤ shard <
// ShardCount(workers, n)) passed alongside each index, so callers can reuse
// per-worker scratch buffers without synchronisation. Serial execution uses
// shard 0 throughout.
func ForEachShard(workers, n int, fn func(shard, i int)) {
	if n <= 0 {
		return
	}
	w := ShardCount(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Dynamic (counter-based) distribution: uneven per-index costs — a hard
	// grid cell next to a trivial one, say — balance automatically, and the
	// atomic add is negligible against any fn worth parallelising.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		go func(shard int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(shard, i)
			}
		}(s)
	}
	wg.Wait()
}

// Split divides a total worker budget between an outer loop of outerN
// independent tasks and the inner loops each task runs: the outer level
// gets min(budget, outerN) workers and each inner loop gets an equal share
// of what remains, so the product never exceeds the budget. This is how
// RunGrid keeps "cells × points" parallelism bounded by one knob.
func Split(budget, outerN int) (outer, inner int) {
	if budget < 1 {
		budget = 1
	}
	if outerN < 1 {
		return 1, budget
	}
	outer = budget
	if outer > outerN {
		outer = outerN
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// Package parallel is the shared bounded-worker substrate behind every
// concurrent loop in the library: grid cells, per-point explanation,
// per-subspace ranking, and per-point detector scoring all fan out through
// it. The contract is determinism by construction — work is identified by
// index, each index is processed exactly once, and callers write only to
// their own index's slot — so results are bit-identical at any worker
// count. The worker knob itself follows one convention everywhere: values
// ≤ 1 run inline (serial, the zero value's behaviour), larger values bound
// the goroutine count. Resolve translates the user-facing CLI convention
// (0 = all cores) into a concrete count at the boundary.
//
// The substrate is also the library's cancellation and fault-isolation
// boundary. Every loop observes its context between work items: when the
// context is cancelled, workers stop claiming new indices and the loop
// returns the context's error, leaving the remaining slots untouched. A
// panic inside a worker goroutine is captured — with the panicking
// goroutine's stack — and re-raised as a *PanicError in the CALLING
// goroutine after all workers have drained, so a deferred recover at the
// call site (a pipeline cell, say) can contain it instead of the process
// dying in an unrecoverable goroutine crash.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a panic recovered in a worker goroutine, carrying the
// original panic value and the stack of the goroutine that panicked. ForEach
// and ForEachShard re-raise it via panic in the calling goroutine; callers
// that want to degrade rather than crash recover it and keep the stack for
// diagnosis.
type PanicError struct {
	// Value is the value originally passed to panic.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// AsPanicError wraps a recovered panic value into a *PanicError. Values
// that already are one pass through unchanged (preserving the original
// worker stack); anything else is paired with the given stack, or the
// current goroutine's stack when nil.
func AsPanicError(recovered any, stack []byte) *PanicError {
	if pe, ok := recovered.(*PanicError); ok {
		return pe
	}
	if stack == nil {
		stack = debug.Stack()
	}
	return &PanicError{Value: recovered, Stack: stack}
}

// Resolve maps a user-facing worker knob to a concrete count: values ≤ 0
// select GOMAXPROCS (use every core), anything positive is returned
// unchanged. CLIs and specs resolve once at the boundary and pass explicit
// counts down, so inner loops never consult the environment themselves.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ShardCount returns the number of distinct shard ids ForEachShard will use
// for the given knob and problem size: min(workers, n), at least 1. Callers
// allocating per-shard scratch size their slice with it.
func ShardCount(workers, n int) int {
	if workers < 1 || n < 1 {
		return 1
	}
	if workers > n {
		return n
	}
	return workers
}

// ForEach invokes fn(i) for every i in [0, n) exactly once, observing ctx
// between items. With workers ≤ 1 the loop runs inline in index order; with
// more, indices are distributed dynamically across min(workers, n)
// goroutines and ForEach returns after all complete. fn must be safe for
// concurrent invocation on distinct indices; writing only to slot i of
// pre-sized output slices keeps results identical at any worker count.
//
// When ctx is cancelled mid-loop the remaining indices are skipped and
// ForEach returns ctx's error; the set of indices that did run is then
// timing-dependent, so callers must treat their outputs as partial. A nil
// return guarantees every index ran. A panic in fn is re-raised in the
// calling goroutine as a *PanicError.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForEachShard(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForEachShard is ForEach with a stable shard id (0 ≤ shard <
// ShardCount(workers, n)) passed alongside each index, so callers can reuse
// per-worker scratch buffers without synchronisation. Serial execution uses
// shard 0 throughout.
func ForEachShard(ctx context.Context, workers, n int, fn func(shard, i int)) error {
	if n <= 0 {
		return nil
	}
	// ctx.Done() is nil for contexts that can never be cancelled
	// (context.Background()), letting uncancellable loops skip the
	// per-item check entirely.
	done := ctx.Done()
	w := ShardCount(workers, n)
	if w == 1 {
		// Serial panics are wrapped like worker panics, so callers recover
		// one uniform *PanicError type at any worker count.
		defer func() {
			if r := recover(); r != nil {
				panic(AsPanicError(r, debug.Stack()))
			}
		}()
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			fn(0, i)
		}
		return nil
	}
	// Dynamic (counter-based) distribution: uneven per-index costs — a hard
	// grid cell next to a trivial one, say — balance automatically, and the
	// atomic add is negligible against any fn worth parallelising.
	var next atomic.Int64
	var stopped atomic.Bool
	var panicOnce sync.Once
	var panicErr *PanicError
	var wg sync.WaitGroup
	wg.Add(w)
	for s := 0; s < w; s++ {
		go func(shard int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Capture the FIRST panic (with this goroutine's stack)
					// and stop the other workers from claiming more items.
					panicOnce.Do(func() {
						panicErr = AsPanicError(r, debug.Stack())
					})
					stopped.Store(true)
				}
			}()
			for {
				if stopped.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						stopped.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(shard, i)
			}
		}(s)
	}
	wg.Wait()
	if panicErr != nil {
		// Re-raise in the caller's goroutine: an unrecovered panic in a
		// worker would kill the whole process with no chance to contain it.
		panic(panicErr)
	}
	if stopped.Load() {
		return ctx.Err()
	}
	return nil
}

// Split divides a total worker budget between an outer loop of outerN
// independent tasks and the inner loops each task runs: the outer level
// gets min(budget, outerN) workers and each inner loop gets an equal share
// of what remains, so the product never exceeds the budget. This is how
// RunGrid keeps "cells × points" parallelism bounded by one knob.
func Split(budget, outerN int) (outer, inner int) {
	if budget < 1 {
		budget = 1
	}
	if outerN < 1 {
		return 1, budget
	}
	outer = budget
	if outer > outerN {
		outer = outerN
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

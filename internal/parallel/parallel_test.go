package parallel

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 153
		counts := make([]atomic.Int32, n)
		if err := ForEach(ctx, workers, n, func(i int) { counts[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	ctx := context.Background()
	called := false
	ForEach(ctx, 4, 0, func(int) { called = true })
	ForEach(ctx, 4, -3, func(int) { called = true })
	if called {
		t.Error("fn invoked for empty range")
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(context.Background(), 1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		called := atomic.Int32{}
		err := ForEach(ctx, workers, 100, func(int) { called.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if called.Load() != 0 {
			t.Errorf("workers=%d: %d items ran under a dead context", workers, called.Load())
		}
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, 4, 10_000, func(i int) {
		if ran.Add(1) == 50 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 10_000 {
		t.Errorf("all %d items ran despite cancellation", got)
	}
}

func TestForEachPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, r)
				}
				if pe.Value != "boom" {
					t.Errorf("workers=%d: panic value %v", workers, pe.Value)
				}
				if !strings.Contains(string(pe.Stack), "parallel_test") {
					t.Errorf("workers=%d: stack does not name the panicking site", workers)
				}
			}()
			ForEach(context.Background(), workers, 100, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

func TestAsPanicErrorPassesThrough(t *testing.T) {
	orig := &PanicError{Value: "x", Stack: []byte("s")}
	if got := AsPanicError(orig, []byte("other")); got != orig {
		t.Error("existing *PanicError was re-wrapped")
	}
	wrapped := AsPanicError("v", []byte("st"))
	if wrapped.Value != "v" || string(wrapped.Stack) != "st" {
		t.Errorf("AsPanicError = %+v", wrapped)
	}
	if !strings.Contains(wrapped.Error(), "panic: v") {
		t.Errorf("Error() = %q", wrapped.Error())
	}
}

func TestForEachShardIDsWithinRange(t *testing.T) {
	workers, n := 4, 100
	maxShard := ShardCount(workers, n)
	var bad atomic.Int32
	ForEachShard(context.Background(), workers, n, func(shard, i int) {
		if shard < 0 || shard >= maxShard {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d indices saw out-of-range shard ids", bad.Load())
	}
}

func TestForEachShardScratchIsolation(t *testing.T) {
	// Each shard accumulates into its own slot; the total must be exact,
	// proving no two goroutines share a shard id concurrently.
	workers, n := 8, 10_000
	sums := make([]int64, ShardCount(workers, n))
	if err := ForEachShard(context.Background(), workers, n, func(shard, i int) { sums[shard] += int64(i) }); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * int64(n-1) / 2; total != want {
		t.Errorf("sharded sum %d, want %d", total, want)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-1) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestShardCount(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1}, {1, 10, 1}, {4, 10, 4}, {16, 3, 3}, {4, 0, 1}, {-2, 5, 1},
	}
	for _, c := range cases {
		if got := ShardCount(c.workers, c.n); got != c.want {
			t.Errorf("ShardCount(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ budget, outerN, outer, inner int }{
		{8, 12, 8, 1}, // more cells than budget: all budget outer, serial inner
		{8, 2, 2, 4},  // few cells: leftover budget feeds the inner loops
		{1, 5, 1, 1},  // serial budget stays serial at both levels
		{6, 4, 4, 1},  // non-divisible budgets round down (product ≤ budget)
		{0, 3, 1, 1},  // degenerate budget clamps to serial
		{4, 0, 1, 4},  // no outer tasks: everything goes inner
	}
	for _, c := range cases {
		outer, inner := Split(c.budget, c.outerN)
		if outer != c.outer || inner != c.inner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.outerN, outer, inner, c.outer, c.inner)
		}
		if c.budget >= 1 && c.outerN >= 1 && outer*inner > c.budget {
			t.Errorf("Split(%d, %d) exceeds budget: %d×%d", c.budget, c.outerN, outer, inner)
		}
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	ctx := context.Background()
	var sink atomic.Int64
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "workers4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForEach(ctx, workers, 1024, func(j int) { sink.Add(int64(j)) })
			}
		})
	}
}

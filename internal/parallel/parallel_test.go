package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 153
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmptyAndNegative(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -3, func(int) { called = true })
	if called {
		t.Error("fn invoked for empty range")
	}
}

func TestForEachSerialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachShardIDsWithinRange(t *testing.T) {
	workers, n := 4, 100
	maxShard := ShardCount(workers, n)
	var bad atomic.Int32
	ForEachShard(workers, n, func(shard, i int) {
		if shard < 0 || shard >= maxShard {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d indices saw out-of-range shard ids", bad.Load())
	}
}

func TestForEachShardScratchIsolation(t *testing.T) {
	// Each shard accumulates into its own slot; the total must be exact,
	// proving no two goroutines share a shard id concurrently.
	workers, n := 8, 10_000
	sums := make([]int64, ShardCount(workers, n))
	ForEachShard(workers, n, func(shard, i int) { sums[shard] += int64(i) })
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * int64(n-1) / 2; total != want {
		t.Errorf("sharded sum %d, want %d", total, want)
	}
}

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d", got)
	}
	if got := Resolve(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-1) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Errorf("Resolve(5) = %d", got)
	}
}

func TestShardCount(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 10, 1}, {1, 10, 1}, {4, 10, 4}, {16, 3, 3}, {4, 0, 1}, {-2, 5, 1},
	}
	for _, c := range cases {
		if got := ShardCount(c.workers, c.n); got != c.want {
			t.Errorf("ShardCount(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ budget, outerN, outer, inner int }{
		{8, 12, 8, 1},  // more cells than budget: all budget outer, serial inner
		{8, 2, 2, 4},   // few cells: leftover budget feeds the inner loops
		{1, 5, 1, 1},   // serial budget stays serial at both levels
		{6, 4, 4, 1},   // non-divisible budgets round down (product ≤ budget)
		{0, 3, 1, 1},   // degenerate budget clamps to serial
		{4, 0, 1, 4},   // no outer tasks: everything goes inner
	}
	for _, c := range cases {
		outer, inner := Split(c.budget, c.outerN)
		if outer != c.outer || inner != c.inner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.budget, c.outerN, outer, inner, c.outer, c.inner)
		}
		if c.budget >= 1 && c.outerN >= 1 && outer*inner > c.budget {
			t.Errorf("Split(%d, %d) exceeds budget: %d×%d", c.budget, c.outerN, outer, inner)
		}
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	var sink atomic.Int64
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "workers4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForEach(workers, 1024, func(j int) { sink.Add(int64(j)) })
			}
		})
	}
}

// Package durable is anexd's crash-safe dataset store: a write-ahead log
// of registration/replace/forget records with checksummed framing and
// torn-tail truncation (the PR-2 journal contract in binary form),
// periodic snapshot + atomic-rename compaction, and fsync discipline
// strict enough that an acknowledged append survives kill -9.
//
// Invariants:
//
//   - An append is acknowledged only after its frame is fully written AND
//     fsynced. A crash mid-append leaves at most one torn (never-acked)
//     frame at the WAL tail, which recovery truncates away.
//   - Compaction writes the full live state to snapshot.tmp, fsyncs it,
//     atomically renames it over the snapshot, fsyncs the directory, and
//     only then resets the WAL. A crash between rename and reset leaves
//     snapshot + full WAL; replaying a history over the snapshot of that
//     same history is convergent (registry state is last-op-per-name), so
//     recovery is identical either way.
//   - Any I/O failure fail-stops the store: the first error is remembered
//     and every later append is refused with it, because a store that may
//     have torn bytes at its tail must not append past them. The serving
//     layer turns this into read-only degraded mode.
//
// Recovery (Open) loads the snapshot, replays the WAL's valid prefix over
// it, truncates the torn tail, and returns the live registrations sorted
// by name — the exact inputs a server needs to rebuild its engine
// registry bit-identically.
package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"anex/internal/failpoint"
)

const (
	walName  = "wal.log"
	snapName = "snapshot"
	snapTmp  = "snapshot.tmp"
	lockName = "LOCK"

	// DefaultCompactEvery is the WAL append count that triggers snapshot
	// compaction when Options.CompactEvery is zero.
	DefaultCompactEvery = 256
)

// The store's failpoint sites, in write-path order. The crash-schedule
// test walks an injected fault through every one of them and asserts
// recovery lands on a consistent state.
const (
	// SiteOpen fails recovery itself (before any state is read).
	SiteOpen = "durable.open"
	// SiteWALAppend fails an append before any byte reaches the WAL.
	SiteWALAppend = "durable.wal.append"
	// SiteWALTorn simulates a crash mid-append: half the frame is written
	// and synced, then the append fails — the torn-tail case.
	SiteWALTorn = "durable.wal.torn"
	// SiteWALSync fails the append's fsync after the full frame was
	// written (the record may or may not survive a real crash).
	SiteWALSync = "durable.wal.sync"
	// SiteSnapWrite fails compaction before the temp snapshot is written.
	SiteSnapWrite = "durable.snapshot.write"
	// SiteSnapSync fails the temp snapshot's fsync.
	SiteSnapSync = "durable.snapshot.sync"
	// SiteSnapRename fails the atomic rename publishing the snapshot.
	SiteSnapRename = "durable.snapshot.rename"
	// SiteWALReset fails the WAL truncation after a published snapshot.
	SiteWALReset = "durable.wal.reset"
)

// Sites returns the store's write-path failpoint sites (every site except
// SiteOpen, which faults recovery rather than a write).
func Sites() []string {
	return []string{SiteWALAppend, SiteWALTorn, SiteWALSync,
		SiteSnapWrite, SiteSnapSync, SiteSnapRename, SiteWALReset}
}

// Options tunes a Store.
type Options struct {
	// CompactEvery triggers snapshot compaction after that many WAL
	// appends (0 → DefaultCompactEvery).
	CompactEvery int
}

// Stats snapshots a store's activity.
type Stats struct {
	// LiveDatasets is the number of currently registered datasets.
	LiveDatasets int `json:"live_datasets"`
	// WALRecords and WALBytes describe the WAL since the last compaction.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Appends counts acknowledged appends; Compactions completed
	// snapshot compactions.
	Appends     int64 `json:"appends"`
	Compactions int64 `json:"compactions"`
	// RecoveredSnapshot and RecoveredWAL count the records loaded at Open
	// from the snapshot and replayed from the WAL; TornBytesDropped is
	// the torn-tail length recovery truncated away.
	RecoveredSnapshot int   `json:"recovered_snapshot"`
	RecoveredWAL      int   `json:"recovered_wal"`
	TornBytesDropped  int64 `json:"torn_bytes_dropped"`
	// Failed carries the fail-stop cause once the store has failed.
	Failed string `json:"failed,omitempty"`
}

// Store is the WAL-backed dataset store. Safe for concurrent use.
type Store struct {
	dir          string
	compactEvery int

	mu         sync.Mutex
	lock       *os.File
	wal        *os.File
	live       map[string]Record // live registrations by name
	walRecords int
	walBytes   int64
	appends    int64
	compacts   int64
	recovered  Stats // recovery-time counters, frozen at Open
	failed     error
	closed     bool
}

// Open recovers (creating if absent) the store in dir with default
// options and returns it together with the recovered live registrations,
// sorted by name.
func Open(dir string) (*Store, []Record, error) {
	return OpenWith(dir, Options{})
}

// OpenWith is Open with explicit options.
func OpenWith(dir string, opts Options) (*Store, []Record, error) {
	if err := failpoint.Eval(SiteOpen); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	lock, err := acquireLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:          dir,
		compactEvery: opts.CompactEvery,
		lock:         lock,
		live:         make(map[string]Record),
	}
	if s.compactEvery <= 0 {
		s.compactEvery = DefaultCompactEvery
	}
	if err := s.recover(); err != nil {
		lock.Close()
		return nil, nil, err
	}
	return s, s.liveSorted(), nil
}

// acquireLock takes an exclusive flock on the store's lock file, so two
// processes can never append to the same WAL. The kernel releases the
// lock when the holder dies (kill -9 included), so no stale-lock cleanup
// is ever needed.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: %s already locked by a live process: %w", path, err)
	}
	return f, nil
}

// recover loads snapshot + WAL into s.live and positions the WAL for
// appending, truncating any torn tail.
func (s *Store) recover() error {
	// A leftover snapshot.tmp is a compaction the writer did not live to
	// publish; the rename never happened, so it is dead weight.
	_ = os.Remove(filepath.Join(s.dir, snapTmp))

	snapPath := filepath.Join(s.dir, snapName)
	if raw, err := os.ReadFile(snapPath); err == nil {
		recs, goodEnd := DecodeRecords(raw)
		if goodEnd != len(raw) {
			// The snapshot is published atomically (write-all, fsync,
			// rename), so a torn one is real corruption, not a crash
			// artifact — refuse to guess.
			return fmt.Errorf("durable: snapshot %s corrupt at byte %d of %d", snapPath, goodEnd, len(raw))
		}
		for _, rec := range recs {
			s.apply(rec)
		}
		s.recovered.RecoveredSnapshot = len(recs)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("durable: %w", err)
	}

	walPath := filepath.Join(s.dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: %w", err)
	}
	recs, goodEnd := DecodeRecords(raw)
	for _, rec := range recs {
		s.apply(rec)
	}
	s.recovered.RecoveredWAL = len(recs)
	s.recovered.TornBytesDropped = int64(len(raw) - goodEnd)

	wal, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := wal.Truncate(int64(goodEnd)); err != nil {
		wal.Close()
		return fmt.Errorf("durable: truncate torn tail: %w", err)
	}
	if _, err := wal.Seek(int64(goodEnd), 0); err != nil {
		wal.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if s.recovered.TornBytesDropped > 0 {
		if err := wal.Sync(); err != nil {
			wal.Close()
			return fmt.Errorf("durable: %w", err)
		}
	}
	if err := syncDir(s.dir); err != nil {
		wal.Close()
		return err
	}
	s.wal = wal
	s.walRecords = len(recs)
	s.walBytes = int64(goodEnd)
	return nil
}

// apply folds one record into the live registry.
func (s *Store) apply(rec Record) {
	switch rec.Op {
	case OpRegister:
		s.live[rec.Name] = rec
	case OpForget:
		delete(s.live, rec.Name)
	}
}

func (s *Store) liveSorted() []Record {
	out := make([]Record, 0, len(s.live))
	for _, rec := range s.live {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AppendRegister durably records a dataset registration (or replacement).
// It returns only after the record is fsynced; on any failure the store
// fail-stops and the registration must be considered in doubt — after a
// restart it is either fully present or fully absent, never torn.
func (s *Store) AppendRegister(name string, header bool, csv []byte) error {
	return s.append(Record{Op: OpRegister, Name: name, Header: header, CSV: csv})
}

// AppendForget durably records a deregistration tombstone.
func (s *Store) AppendForget(name string) error {
	return s.append(Record{Op: OpForget, Name: name})
}

func (s *Store) append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if s.failed != nil {
		return fmt.Errorf("durable: store failed, read-only: %w", s.failed)
	}
	frame, err := AppendRecord(nil, rec)
	if err != nil {
		return err // unencodable record: caller bug, store still healthy
	}
	if err := failpoint.Eval(SiteWALAppend); err != nil {
		return s.fail(err)
	}
	if err := failpoint.Eval(SiteWALTorn); err != nil {
		// Simulate a crash mid-append: half the frame reaches the disk.
		if n, werr := s.wal.Write(frame[:len(frame)/2]); werr == nil {
			s.walBytes += int64(n)
			s.wal.Sync()
		}
		return s.fail(err)
	}
	n, err := s.wal.Write(frame)
	s.walBytes += int64(n)
	if err != nil {
		return s.fail(fmt.Errorf("wal write: %w", err))
	}
	if err := failpoint.Eval(SiteWALSync); err != nil {
		return s.fail(err)
	}
	if err := s.wal.Sync(); err != nil {
		return s.fail(fmt.Errorf("wal sync: %w", err))
	}
	// The record is durable: acknowledged from here on.
	s.apply(rec)
	s.walRecords++
	s.appends++
	if s.walRecords >= s.compactEvery {
		if err := s.compactLocked(); err != nil {
			// The append itself is durable, but an I/O error during
			// compaction still fail-stops the store (its cause is a disk
			// that just misbehaved). The caller sees an error for a record
			// that survives restarts — the allowed "post-write" outcome.
			return s.fail(err)
		}
	}
	return nil
}

// fail records the first I/O error and fail-stops the store.
func (s *Store) fail(err error) error {
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// Compact forces a snapshot compaction regardless of the append counter.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store closed")
	}
	if s.failed != nil {
		return fmt.Errorf("durable: store failed, read-only: %w", s.failed)
	}
	if err := s.compactLocked(); err != nil {
		return s.fail(err)
	}
	return nil
}

// compactLocked writes the live state to snapshot.tmp, fsyncs, renames it
// over the snapshot, fsyncs the directory, then resets the WAL.
func (s *Store) compactLocked() error {
	if err := failpoint.Eval(SiteSnapWrite); err != nil {
		return err
	}
	var buf []byte
	for _, rec := range s.liveSorted() {
		var err error
		if buf, err = AppendRecord(buf, rec); err != nil {
			return fmt.Errorf("snapshot encode: %w", err)
		}
	}
	tmpPath := filepath.Join(s.dir, snapTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot write: %w", err)
	}
	if err := failpoint.Eval(SiteSnapSync); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot close: %w", err)
	}
	if err := failpoint.Eval(SiteSnapRename); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("snapshot rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The snapshot now owns the full state; the WAL can restart empty. A
	// crash before this truncation replays the old WAL over the snapshot,
	// which is convergent (last op per name wins either way).
	if err := failpoint.Eval(SiteWALReset); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("wal reset sync: %w", err)
	}
	s.walRecords, s.walBytes = 0, 0
	s.compacts++
	return nil
}

// Live returns the current live registrations, sorted by name.
func (s *Store) Live() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.liveSorted()
}

// Failed returns the fail-stop cause, or nil while the store is healthy.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.recovered
	st.LiveDatasets = len(s.live)
	st.WALRecords = s.walRecords
	st.WALBytes = s.walBytes
	st.Appends = s.appends
	st.Compactions = s.compacts
	if s.failed != nil {
		st.Failed = s.failed.Error()
	}
	return st
}

// Close releases the WAL and the directory lock. The store must not be
// used afterwards; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if err := s.wal.Close(); err != nil {
		first = err
	}
	if err := s.lock.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// abandon drops the store's file descriptors without any teardown logic —
// the in-process stand-in for kill -9 that the crash-schedule test uses
// before reopening the directory.
func (s *Store) abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.wal.Close()
	s.lock.Close()
}

// syncDir fsyncs a directory so a just-created or just-renamed entry in
// it survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", dir, err)
	}
	return nil
}

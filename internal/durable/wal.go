package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The WAL's on-disk unit is a checksummed frame:
//
//	frame   := length(uint32 LE) | crc32c(uint32 LE) | payload
//	payload := op(1) | nameLen(uint16 LE) | name | body
//	body    := header(1) | csvLen(uint32 LE) | csv   (OpRegister)
//	         | ""                                     (OpForget)
//
// length counts payload bytes only; crc32c (Castagnoli) covers the
// payload. The framing inherits the PR-2 journal contract: a reader
// accepts the longest prefix of valid frames and truncates everything
// after the first invalid one — a torn tail is the signature of a writer
// killed mid-append, and with fsync-per-append the torn frame can only
// ever be the unacknowledged last record.

// Op is a WAL record's operation.
type Op uint8

const (
	// OpRegister registers (or, for an existing name, replaces) a dataset.
	OpRegister Op = 1
	// OpForget is a tombstone: the named dataset is deregistered.
	OpForget Op = 2
)

// Record is one decoded WAL operation. For OpRegister, Header and CSV
// carry the registration payload; for OpForget only Name is meaningful.
type Record struct {
	Op     Op
	Name   string
	Header bool
	CSV    []byte
}

const (
	frameHeaderLen = 8
	// MaxRecordBytes bounds one frame's payload (1 GiB). A length field
	// past it is treated as corruption, so a flipped high bit cannot make
	// recovery attempt a gigantic allocation.
	MaxRecordBytes = 1 << 30
	// maxNameBytes is the length limit the uint16 name framing imposes.
	maxNameBytes = 1<<16 - 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends rec's frame to buf and returns the extended slice.
// It rejects records the framing cannot represent (empty or oversized
// name, oversized CSV, register without payload).
func AppendRecord(buf []byte, rec Record) ([]byte, error) {
	if rec.Name == "" {
		return nil, fmt.Errorf("durable: record with empty dataset name")
	}
	if len(rec.Name) > maxNameBytes {
		return nil, fmt.Errorf("durable: dataset name %d bytes long (max %d)", len(rec.Name), maxNameBytes)
	}
	var payloadLen int
	switch rec.Op {
	case OpRegister:
		if len(rec.CSV) == 0 {
			return nil, fmt.Errorf("durable: register record %q with empty csv payload", rec.Name)
		}
		payloadLen = 1 + 2 + len(rec.Name) + 1 + 4 + len(rec.CSV)
	case OpForget:
		payloadLen = 1 + 2 + len(rec.Name)
	default:
		return nil, fmt.Errorf("durable: unknown op %d", rec.Op)
	}
	if payloadLen > MaxRecordBytes {
		return nil, fmt.Errorf("durable: record %q payload %d bytes (max %d)", rec.Name, payloadLen, MaxRecordBytes)
	}

	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderLen)...)
	buf = append(buf, byte(rec.Op))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Name)))
	buf = append(buf, rec.Name...)
	if rec.Op == OpRegister {
		var hdr byte
		if rec.Header {
			hdr = 1
		}
		buf = append(buf, hdr)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.CSV)))
		buf = append(buf, rec.CSV...)
	}
	payload := buf[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// decodePayload parses one frame payload into a Record. The payload must
// be exactly consumed — trailing bytes mean a corrupt frame, not slack.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 3 {
		return Record{}, fmt.Errorf("durable: payload %d bytes, shorter than any record", len(p))
	}
	rec := Record{Op: Op(p[0])}
	nameLen := int(binary.LittleEndian.Uint16(p[1:3]))
	p = p[3:]
	if nameLen == 0 || len(p) < nameLen {
		return Record{}, fmt.Errorf("durable: name length %d exceeds payload", nameLen)
	}
	rec.Name = string(p[:nameLen])
	p = p[nameLen:]
	switch rec.Op {
	case OpRegister:
		if len(p) < 5 {
			return Record{}, fmt.Errorf("durable: register record truncated before csv length")
		}
		rec.Header = p[0] != 0
		if p[0] > 1 {
			return Record{}, fmt.Errorf("durable: register record with header byte %d", p[0])
		}
		csvLen := int(binary.LittleEndian.Uint32(p[1:5]))
		p = p[5:]
		if csvLen == 0 || len(p) != csvLen {
			return Record{}, fmt.Errorf("durable: csv length %d does not match payload remainder %d", csvLen, len(p))
		}
		rec.CSV = append([]byte(nil), p...)
	case OpForget:
		if len(p) != 0 {
			return Record{}, fmt.Errorf("durable: forget record with %d trailing bytes", len(p))
		}
	default:
		return Record{}, fmt.Errorf("durable: unknown op %d", rec.Op)
	}
	return rec, nil
}

// DecodeRecords decodes the longest valid prefix of frames in b. It
// returns the decoded records and goodEnd, the byte offset just past the
// last valid frame — everything from goodEnd on is the torn tail the
// caller truncates away. It never panics, whatever b holds.
func DecodeRecords(b []byte) (recs []Record, goodEnd int) {
	offset := 0
	for len(b)-offset >= frameHeaderLen {
		length := int(binary.LittleEndian.Uint32(b[offset:]))
		if length > MaxRecordBytes || len(b)-offset-frameHeaderLen < length {
			break // corrupt length or incomplete frame: torn tail
		}
		payload := b[offset+frameHeaderLen : offset+frameHeaderLen+length]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[offset+4:]) {
			break // checksum mismatch: torn or corrupt frame
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break // framing intact but the record inside is malformed
		}
		recs = append(recs, rec)
		offset += frameHeaderLen + length
		goodEnd = offset
	}
	return recs, goodEnd
}

package durable

import (
	"bytes"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the WAL record decoder and pins
// the recovery contract: it never panics, the reported valid prefix is
// within bounds and re-decodes to the same records (truncation is stable),
// and every decoded record survives an encode/decode round trip — so a
// checksum or length flip can only ever shorten the log, never corrupt
// what recovery accepts.
func FuzzWALDecode(f *testing.F) {
	var seed []byte
	seed, _ = AppendRecord(seed, Record{Op: OpRegister, Name: "a", Header: true, CSV: []byte("x,y\n1,2\n")})
	seed, _ = AppendRecord(seed, Record{Op: OpForget, Name: "a"})
	seed, _ = AppendRecord(seed, Record{Op: OpRegister, Name: "b", CSV: []byte{0, 255, 10, 44}})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	corrupt := append([]byte(nil), seed...)
	corrupt[9] ^= 0x80 // flipped bit inside the first payload
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge claimed length

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodEnd := DecodeRecords(data)
		if goodEnd < 0 || goodEnd > len(data) {
			t.Fatalf("goodEnd %d out of range [0, %d]", goodEnd, len(data))
		}
		// Truncation is stable: the accepted prefix re-decodes to exactly
		// the same records and is fully valid.
		recs2, goodEnd2 := DecodeRecords(data[:goodEnd])
		if goodEnd2 != goodEnd || len(recs2) != len(recs) {
			t.Fatalf("re-decode of valid prefix: %d records to byte %d, want %d records to byte %d",
				len(recs2), goodEnd2, len(recs), goodEnd)
		}
		// Every accepted record is well-formed enough to re-encode, and the
		// re-encoded log round-trips bit-identically.
		var reenc []byte
		for i, rec := range recs {
			var err error
			if reenc, err = AppendRecord(reenc, rec); err != nil {
				t.Fatalf("record %d (%+v) decoded but does not re-encode: %v", i, rec, err)
			}
		}
		recs3, goodEnd3 := DecodeRecords(reenc)
		if goodEnd3 != len(reenc) || len(recs3) != len(recs) {
			t.Fatalf("re-encoded log decodes to %d records over %d bytes, want %d over %d",
				len(recs3), goodEnd3, len(recs), len(reenc))
		}
		for i := range recs {
			if recs3[i].Op != recs[i].Op || recs3[i].Name != recs[i].Name ||
				recs3[i].Header != recs[i].Header || !bytes.Equal(recs3[i].CSV, recs[i].CSV) {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, recs[i], recs3[i])
			}
		}
	})
}

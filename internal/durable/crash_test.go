package durable

import (
	"fmt"
	"testing"

	"anex/internal/failpoint"
)

// crashOp is one step of the scripted history the crash schedule replays.
type crashOp struct {
	forget bool
	name   string
	gen    int // payload generation, so replaces are observable
}

// crashScript is a history with registrations, replaces, forgets and —
// under CompactEvery=3 — two compactions, so every write-path failpoint
// site is reached more than once.
var crashScript = []crashOp{
	{name: "a", gen: 1},
	{name: "b", gen: 2},
	{name: "c", gen: 3}, // compaction 1 triggers here
	{name: "a", gen: 4}, // replace
	{forget: true, name: "b"},
	{name: "d", gen: 5}, // compaction 2 triggers here
	{name: "e", gen: 6},
	{forget: true, name: "c"},
}

// applyModel folds one op into the model registry.
func applyModel(m map[string]int, op crashOp) {
	if op.forget {
		delete(m, op.name)
	} else {
		m[op.name] = op.gen
	}
}

func cloneModel(m map[string]int) map[string]int {
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func modelOf(recs []Record) map[string]int {
	m := make(map[string]int, len(recs))
	for _, rec := range recs {
		var gen int
		fmt.Sscanf(string(rec.CSV), "a,b\n%d,", &gen)
		m[rec.Name] = gen
	}
	return m
}

func modelsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestCrashSchedule is the tentpole's consistency proof: for EVERY
// write-path failpoint site in the store and every hit of that site the
// script reaches, inject a fault there (the in-process stand-in for
// kill -9 at that instruction), abandon the store without teardown,
// reopen the directory, and assert the recovered registry is exactly the
// acknowledged-prefix state or that state plus the in-doubt record —
// never a torn, reordered, or resurrected one.
func TestCrashSchedule(t *testing.T) {
	defer failpoint.Disable()
	for _, site := range Sites() {
		for hit := 1; hit <= len(crashScript); hit++ {
			t.Run(fmt.Sprintf("%s@%d", site, hit), func(t *testing.T) {
				dir := t.TempDir()
				s, recovered, err := OpenWith(dir, Options{CompactEvery: 3})
				if err != nil {
					t.Fatal(err)
				}
				if len(recovered) != 0 {
					t.Fatalf("fresh dir recovered %d records", len(recovered))
				}
				if err := failpoint.Enable(fmt.Sprintf("%s=error@%d", site, hit)); err != nil {
					t.Fatal(err)
				}

				acked := make(map[string]int) // state of every acknowledged op
				var inDoubt *crashOp          // the op that failed, if any
				for i, op := range crashScript {
					var err error
					if op.forget {
						err = s.AppendForget(op.name)
					} else {
						err = s.AppendRegister(op.name, true, csvPayload(op.gen))
					}
					if err != nil {
						failed := crashScript[i]
						inDoubt = &failed
						break // the process "died" here
					}
					applyModel(acked, op)
				}
				siteHits := failpoint.Hits(site)
				failpoint.Disable()
				s.abandon() // kill -9: no Close, no flush, fds dropped

				if inDoubt == nil && siteHits < hit {
					// The script never reached this (site, hit); nothing to
					// verify beyond clean completion.
					assertRecovery(t, dir, acked, nil)
					return
				}
				assertRecovery(t, dir, acked, inDoubt)
			})
		}
	}
}

// assertRecovery reopens dir and asserts the recovered registry equals
// the pre-write state (acked) or the post-write state (acked + inDoubt).
// It then reopens once more to pin that recovery is idempotent.
func assertRecovery(t *testing.T, dir string, acked map[string]int, inDoubt *crashOp) {
	t.Helper()
	pre := cloneModel(acked)
	post := cloneModel(acked)
	if inDoubt != nil {
		applyModel(post, *inDoubt)
	}
	s, recovered, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	got := modelOf(recovered)
	if !modelsEqual(got, pre) && !modelsEqual(got, post) {
		t.Fatalf("recovered %v, want pre-write %v or post-write %v", got, pre, post)
	}
	s.Close()

	s2, recovered2, err := Open(dir)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer s2.Close()
	if got2 := modelOf(recovered2); !modelsEqual(got2, got) {
		t.Fatalf("recovery not idempotent: first %v, second %v", got, got2)
	}
}

// TestCrashDuringRecovery pins that a fault during recovery itself loses
// nothing: Open fails cleanly, and the next Open recovers the full state.
func TestCrashDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg(t, s, "a", 1)
	reg(t, s, "b", 2)
	s.Close()

	if err := failpoint.Enable(SiteOpen + "=error"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		failpoint.Disable()
		t.Fatal("Open under injected recovery fault succeeded, want error")
	}
	failpoint.Disable()

	s2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := modelOf(recovered); !modelsEqual(got, map[string]int{"a": 1, "b": 2}) {
		t.Errorf("recovered %v after aborted recovery, want a=1 b=2", got)
	}
}

package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"anex/internal/failpoint"
)

func csvPayload(i int) []byte {
	return []byte(fmt.Sprintf("a,b\n%d,%d\n%d,%d\n", i, i+1, i+2, i+3))
}

// reg appends a register record or fails the test.
func reg(t *testing.T, s *Store, name string, i int) {
	t.Helper()
	if err := s.AppendRegister(name, true, csvPayload(i)); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
}

// liveMap converts recovered records to a comparable map.
func liveMap(recs []Record) map[string]string {
	m := make(map[string]string, len(recs))
	for _, r := range recs {
		m[r.Name] = fmt.Sprintf("h=%v csv=%s", r.Header, r.CSV)
	}
	return m
}

func TestRecordRoundTrip(t *testing.T) {
	in := []Record{
		{Op: OpRegister, Name: "a", Header: true, CSV: []byte("x,y\n1,2\n")},
		{Op: OpForget, Name: "a"},
		{Op: OpRegister, Name: "bétâ", Header: false, CSV: []byte{0, 1, 2, 255}},
	}
	var buf []byte
	for _, rec := range in {
		var err error
		if buf, err = AppendRecord(buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	out, goodEnd := DecodeRecords(buf)
	if goodEnd != len(buf) {
		t.Fatalf("goodEnd = %d, want %d", goodEnd, len(buf))
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || out[i].Name != in[i].Name ||
			out[i].Header != in[i].Header || !bytes.Equal(out[i].CSV, in[i].CSV) {
			t.Errorf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestAppendRecordRejectsUnencodable(t *testing.T) {
	cases := []Record{
		{Op: OpRegister, Name: "", CSV: []byte("x")},
		{Op: OpRegister, Name: "a"},
		{Op: Op(9), Name: "a"},
	}
	for _, rec := range cases {
		if _, err := AppendRecord(nil, rec); err == nil {
			t.Errorf("AppendRecord(%+v) accepted, want error", rec)
		}
	}
}

func TestOpenRecoversRegisterReplaceForget(t *testing.T) {
	dir := t.TempDir()
	s, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d records, want 0", len(recovered))
	}
	reg(t, s, "a", 1)
	reg(t, s, "b", 2)
	reg(t, s, "a", 3) // replace
	reg(t, s, "c", 4)
	if err := s.AppendForget("b"); err != nil {
		t.Fatal(err)
	}
	want := liveMap(s.Live())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recovered2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := liveMap(recovered2)
	if len(got) != 2 || got["a"] != want["a"] || got["c"] != want["c"] {
		t.Errorf("recovered %v, want %v", got, want)
	}
	if replaced := got["a"]; replaced != fmt.Sprintf("h=%v csv=%s", true, csvPayload(3)) {
		t.Errorf("replace lost: a = %q", replaced)
	}
	st := s2.Stats()
	if st.RecoveredWAL != 5 || st.LiveDatasets != 2 {
		t.Errorf("stats = %+v, want RecoveredWAL 5, LiveDatasets 2", st)
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg(t, s, "a", 1)
	reg(t, s, "b", 2)
	s.Close()

	// Simulate a crash mid-append: a valid frame prefix plus garbage.
	walPath := filepath.Join(dir, walName)
	frame, err := AppendRecord(nil, Record{Op: OpRegister, Name: "torn", Header: true, CSV: csvPayload(9)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize := int64(len(frame) - 3)

	s2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 2 {
		t.Fatalf("recovered %d datasets, want 2 (torn record dropped)", len(recovered))
	}
	if st := s2.Stats(); st.TornBytesDropped != tornSize {
		t.Errorf("TornBytesDropped = %d, want %d", st.TornBytesDropped, tornSize)
	}
	// The tail must be physically gone so later appends extend a clean log.
	reg(t, s2, "c", 3)
	s2.Close()
	s3, recovered3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := liveMap(recovered3); len(got) != 3 || got["torn"] != "" {
		t.Errorf("after truncate+append, recovered %v, want a,b,c", got)
	}
}

func TestCompactionPreservesStateAndShrinksWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenWith(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		reg(t, s, fmt.Sprintf("d%d", i%3), i) // lots of replaces
	}
	if err := s.AppendForget("d1"); err != nil {
		t.Fatal(err)
	}
	want := liveMap(s.Live())
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 11 appends with CompactEvery=4: %+v", st)
	}
	if st.WALRecords >= 4 {
		t.Errorf("WALRecords = %d after compaction, want < 4", st.WALRecords)
	}
	s.Close()

	s2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := liveMap(recovered)
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("recovered[%s] = %q, want %q", k, got[k], v)
		}
	}
	if st2 := s2.Stats(); st2.RecoveredSnapshot == 0 {
		t.Errorf("recovery loaded nothing from the snapshot: %+v", st2)
	}
}

func TestStaleSnapshotTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg(t, s, "a", 1)
	s.Close()
	// A compaction that died before rename leaves snapshot.tmp behind.
	if err := os.WriteFile(filepath.Join(dir, snapTmp), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(recovered) != 1 || recovered[0].Name != "a" {
		t.Errorf("recovered %v, want just a", liveMap(recovered))
	}
	if _, err := os.Stat(filepath.Join(dir, snapTmp)); !os.IsNotExist(err) {
		t.Error("stale snapshot.tmp not removed by recovery")
	}
}

func TestCorruptSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenWith(dir, Options{CompactEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg(t, s, "a", 1) // triggers compaction → snapshot exists
	s.Close()
	snapPath := filepath.Join(dir, snapName)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a corrupt snapshot, want error")
	}
}

func TestLockRefusesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir); err == nil {
		s.Close()
		t.Fatal("second Open on a locked dir succeeded, want error")
	}
	s.Close()
	s2, _, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()
}

func TestFailStopAfterInjectedFault(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg(t, s, "a", 1)
	if err := failpoint.Enable(SiteWALSync + "=error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	err = s.AppendRegister("b", true, csvPayload(2))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append under fault = %v, want ErrInjected", err)
	}
	// The one-shot fault has passed, but the store must stay read-only.
	err = s.AppendRegister("c", true, csvPayload(3))
	if err == nil || !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append after fail-stop = %v, want wrapped first cause", err)
	}
	if s.Failed() == nil {
		t.Error("Failed() nil after injected fault")
	}
	if st := s.Stats(); st.Failed == "" {
		t.Error("Stats().Failed empty after injected fault")
	}
}

// Package plot renders two-dimensional subspace views as terminal scatter
// plots. LookOut's motivation is explicitly PICTORIAL explanation — a
// handful of 2d plots an analyst can eyeball — so the library ships the
// rendering: inliers as density shades, points of interest as markers, axis
// labels from the dataset's feature names.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"anex/internal/dataset"
	"anex/internal/stats"
)

// Options controls the scatter rendering.
type Options struct {
	// Width and Height are the plot grid size in characters; zero means
	// 48×20.
	Width, Height int
	// Highlight marks these point indices with Marker.
	Highlight []int
	// Marker is the rune for highlighted points; zero means '✗'.
	Marker rune
	// Title is printed above the plot.
	Title string
}

// density shades from sparse to dense.
var shades = []rune{'·', ':', '+', '#', '@'}

// Scatter renders the first two dimensions of the view as a text scatter
// plot. Inlier cells are shaded by point count; highlighted points override
// the shade with the marker. Views with fewer than two dimensions are
// rejected.
func Scatter(w io.Writer, v *dataset.View, opts Options) error {
	if v == nil || v.Dim() < 2 {
		return fmt.Errorf("plot: need a ≥ 2-dimensional view")
	}
	width := opts.Width
	if width <= 0 {
		width = 48
	}
	height := opts.Height
	if height <= 0 {
		height = 20
	}
	marker := opts.Marker
	if marker == 0 {
		marker = '✗'
	}

	xs := make([]float64, v.N())
	ys := make([]float64, v.N())
	for i := 0; i < v.N(); i++ {
		p := v.Point(i)
		xs[i] = p[0]
		ys[i] = p[1]
	}
	xlo, xhi := stats.MinMax(xs)
	ylo, yhi := stats.MinMax(ys)
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}

	counts := make([][]int, height)
	marks := make([][]bool, height)
	for r := range counts {
		counts[r] = make([]int, width)
		marks[r] = make([]bool, width)
	}
	cellOf := func(i int) (row, col int) {
		col = int((xs[i] - xlo) / (xhi - xlo) * float64(width-1))
		row = height - 1 - int((ys[i]-ylo)/(yhi-ylo)*float64(height-1))
		return row, col
	}
	highlighted := make(map[int]bool, len(opts.Highlight))
	for _, p := range opts.Highlight {
		if p >= 0 && p < v.N() {
			highlighted[p] = true
		}
	}
	maxCount := 0
	for i := 0; i < v.N(); i++ {
		r, c := cellOf(i)
		if highlighted[i] {
			marks[r][c] = true
			continue
		}
		counts[r][c]++
		if counts[r][c] > maxCount {
			maxCount = counts[r][c]
		}
	}

	var b strings.Builder
	ds := v.Dataset()
	xName := fmt.Sprintf("dim %d", v.Subspace()[0])
	yName := fmt.Sprintf("dim %d", v.Subspace()[1])
	if ds != nil {
		xName = ds.FeatureName(v.Subspace()[0])
		yName = ds.FeatureName(v.Subspace()[1])
	}
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	fmt.Fprintf(&b, "%s ↑ (%.3g … %.3g)\n", yName, ylo, yhi)
	for r := 0; r < height; r++ {
		b.WriteString("  │")
		for c := 0; c < width; c++ {
			switch {
			case marks[r][c]:
				b.WriteRune(marker)
			case counts[r][c] == 0:
				b.WriteByte(' ')
			default:
				b.WriteRune(shadeFor(counts[r][c], maxCount))
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("  └")
	b.WriteString(strings.Repeat("─", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "   %s → (%.3g … %.3g)\n", xName, xlo, xhi)
	_, err := io.WriteString(w, b.String())
	return err
}

func shadeFor(count, max int) rune {
	if max <= 1 {
		return shades[0]
	}
	idx := int(math.Round(float64(count-1) / float64(max-1) * float64(len(shades)-1)))
	return shades[idx]
}

// ScatterString is Scatter into a string, for tests and embedding.
func ScatterString(v *dataset.View, opts Options) (string, error) {
	var b strings.Builder
	if err := Scatter(&b, v, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}

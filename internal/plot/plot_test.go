package plot

import (
	"strings"
	"testing"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

func testView(t *testing.T) *dataset.View {
	t.Helper()
	// A diagonal band plus one off-diagonal point at index 4.
	cols := [][]float64{
		{0.1, 0.4, 0.7, 0.9, 0.1},
		{0.1, 0.4, 0.7, 0.9, 0.9},
		{0, 0, 0, 0, 0},
	}
	ds, err := dataset.New("plot-test", cols, []string{"alpha", "beta", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	return ds.View(subspace.New(0, 1))
}

func TestScatterBasics(t *testing.T) {
	out, err := ScatterString(testView(t), Options{Width: 20, Height: 10, Highlight: []int{4}, Title: "demo"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "✗") {
		t.Errorf("highlight marker missing:\n%s", out)
	}
	// The highlighted point (0.1, 0.9) lands top-left: the marker must
	// appear before (above) the first density shade row-wise.
	markLine, dotLine := -1, -1
	for i, line := range strings.Split(out, "\n") {
		if strings.ContainsRune(line, '✗') && markLine == -1 {
			markLine = i
		}
		if strings.ContainsRune(line, '·') && dotLine == -1 {
			dotLine = i
		}
	}
	if markLine == -1 || dotLine == -1 || markLine > dotLine {
		t.Errorf("marker row %d vs first inlier row %d:\n%s", markLine, dotLine, out)
	}
}

func TestScatterRejectsLowDim(t *testing.T) {
	cols := [][]float64{{1, 2, 3}}
	ds, err := dataset.New("1d", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Scatter(&strings.Builder{}, ds.FullView(), Options{}); err == nil {
		t.Error("1d view should be rejected")
	}
	if err := Scatter(&strings.Builder{}, nil, Options{}); err == nil {
		t.Error("nil view should be rejected")
	}
}

func TestScatterConstantColumn(t *testing.T) {
	cols := [][]float64{{1, 1, 1}, {2, 2, 2}}
	ds, err := dataset.New("const", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ScatterString(ds.FullView(), Options{Width: 10, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("empty render")
	}
}

func TestScatterCustomMarkerAndDefaults(t *testing.T) {
	out, err := ScatterString(testView(t), Options{Highlight: []int{4}, Marker: '!'})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "!") {
		t.Error("custom marker missing")
	}
	// Default dimensions: 20 grid rows + 3 decoration lines.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 23 {
		t.Errorf("%d lines with default height", len(lines))
	}
	// Out-of-range highlights are ignored, not fatal.
	if _, err := ScatterString(testView(t), Options{Highlight: []int{999}}); err != nil {
		t.Errorf("out-of-range highlight: %v", err)
	}
}

func TestShadeMonotone(t *testing.T) {
	prev := -1
	for c := 1; c <= 10; c++ {
		idx := -1
		r := shadeFor(c, 10)
		for i, s := range shades {
			if s == r {
				idx = i
			}
		}
		if idx < prev {
			t.Errorf("shade not monotone at count %d", c)
		}
		prev = idx
	}
	if shadeFor(1, 1) != shades[0] {
		t.Error("single-count shade")
	}
}

package server

import (
	"fmt"

	"anex/internal/core"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/summarize"
)

// The factories below are THE construction path for user-facing
// detector/explainer names: the anexplain CLI and the anexd server both
// build their algorithms here, which is what makes a server response
// byte-identical to the equivalent CLI invocation (same hyper-parameters,
// same seed plumbing, same wrappers — pinned by the parity tests).

// DetectorNames lists the accepted -detector / "detector" values.
const DetectorNames = "lof, abod or iforest"

// AlgoNames lists the accepted -algo / "algo" values.
const AlgoNames = "beam, refout, lookout or hics"

// NewDetectorByName builds the named detector with the library defaults:
// LOF (k=15), Fast ABOD (k=10) or Isolation Forest (seeded). workers
// bounds the detector's inner scoring loops; results are identical at any
// count. The detector is returned unwired — callers wire a neighbourhood
// plane (Engine does; the library constructors default to the process-wide
// shared one) and wrap a score memo as they see fit.
func NewDetectorByName(name string, seed int64, workers int) (core.Detector, error) {
	switch name {
	case "lof":
		return &detector.LOF{Workers: workers}, nil
	case "abod":
		return &detector.FastABOD{Workers: workers}, nil
	case "iforest":
		return &detector.IsolationForest{Seed: seed, Workers: workers}, nil
	}
	return nil, fmt.Errorf("unknown detector %q (want %s)", name, DetectorNames)
}

// IsPointAlgo reports whether algo names a point explainer (each point
// explained individually) rather than a summarizer (one ranked list
// jointly covering all points). Unknown names report false on both paths
// and surface from the New*ByName constructors.
func IsPointAlgo(algo string) bool { return algo == "beam" || algo == "refout" }

// IsSummaryAlgo reports whether algo names a summarizer.
func IsSummaryAlgo(algo string) bool { return algo == "lookout" || algo == "hics" }

// NewPointExplainerByName builds the named point explainer over det with
// the paper's settings (the CLI construction: Beam_FX, RefOut).
func NewPointExplainerByName(algo string, det core.Detector, seed int64) (core.PointExplainer, error) {
	switch algo {
	case "beam":
		return explain.NewBeamFX(det), nil
	case "refout":
		return explain.NewRefOut(det, seed), nil
	}
	return nil, fmt.Errorf("unknown point algorithm %q (want %s)", algo, AlgoNames)
}

// NewSummarizerByName builds the named summarizer over det with the
// paper's settings (the CLI construction: LookOut, HiCS_FX).
func NewSummarizerByName(algo string, det core.Detector, seed int64) (core.Summarizer, error) {
	switch algo {
	case "lookout":
		return summarize.NewLookOut(det), nil
	case "hics":
		return summarize.NewHiCSFX(det, seed), nil
	}
	return nil, fmt.Errorf("unknown summary algorithm %q (want %s)", algo, AlgoNames)
}

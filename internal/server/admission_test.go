package server

import (
	"testing"
	"time"
)

func TestAdmissionSemaphoreBound(t *testing.T) {
	a := newAdmission(1, 0, 0)
	release, _, ok := a.acquire()
	if !ok {
		t.Fatal("first acquire rejected")
	}
	if _, retry, ok := a.acquire(); ok || retry < 1 {
		t.Fatalf("second acquire ok=%v retry=%d, want rejection with retry ≥ 1", ok, retry)
	}
	release()
	if _, _, ok := a.acquire(); !ok {
		t.Fatal("acquire after release rejected")
	}
	if got := a.Stats().Rejected429; got != 1 {
		t.Errorf("Rejected429 = %d, want 1", got)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newAdmission(1, 0, 0)
	release, _, ok := a.acquire()
	if !ok {
		t.Fatal("acquire rejected")
	}
	release()
	release() // double release must not free a second slot
	if _, _, ok := a.acquire(); !ok {
		t.Fatal("acquire after release rejected")
	}
	if _, _, ok := a.acquire(); ok {
		t.Fatal("semaphore of 1 admitted two requests (double release freed a phantom slot)")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	a := newAdmission(0, 1, 2)
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }
	a.tokens, a.last = a.burst, clock

	for i := 0; i < 2; i++ {
		if _, _, ok := a.acquire(); !ok {
			t.Fatalf("burst acquire %d rejected", i)
		}
	}
	if _, retry, ok := a.acquire(); ok || retry < 1 {
		t.Fatalf("empty-bucket acquire ok=%v retry=%d, want rejection with retry ≥ 1", ok, retry)
	}
	clock = clock.Add(time.Second) // one token refilled
	if _, _, ok := a.acquire(); !ok {
		t.Fatal("acquire after refill rejected")
	}
	if _, _, ok := a.acquire(); ok {
		t.Fatal("bucket served more tokens than the elapsed time refilled")
	}
}

// TestAdmissionRetryAfterSeconds unit-tests the Retry-After computation
// directly (it was previously exercised only through the 429 smoke): the
// hint is the whole-second ceiling of the time to the next token, never
// below 1, and 1 when no rate limit is configured.
func TestAdmissionRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		rate   float64
		tokens float64
		want   int
	}{
		{rate: 0, tokens: 0, want: 1},     // no limiter: constant hint
		{rate: 1, tokens: 0, want: 1},     // 1 token/s, bucket empty → 1s
		{rate: 0.5, tokens: 0, want: 2},   // half a token/s → 2s
		{rate: 0.1, tokens: 0, want: 10},  // refill 10s away
		{rate: 0.1, tokens: 0.5, want: 5}, // half a token already there
		{rate: 2, tokens: 0.9, want: 1},   // sub-second rounds up to 1
		{rate: 1, tokens: 3, want: 1},     // tokens available → minimum hint
	}
	for _, tc := range cases {
		a := newAdmission(0, tc.rate, 4)
		clock := time.Unix(0, 0)
		a.now = func() time.Time { return clock }
		a.tokens, a.last = tc.tokens, clock
		if got := a.retryAfterSeconds(); got != tc.want {
			t.Errorf("retryAfterSeconds(rate=%v, tokens=%v) = %d, want %d",
				tc.rate, tc.tokens, got, tc.want)
		}
	}
}

// TestAdmissionSemaphoreRejectionRefundsToken pins that a request shed at
// the semaphore does not also burn a rate token — otherwise saturation
// bursts would starve the bucket for well-behaved clients.
func TestAdmissionSemaphoreRejectionRefundsToken(t *testing.T) {
	a := newAdmission(1, 1, 2)
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }
	a.tokens, a.last = a.burst, clock

	release, _, ok := a.acquire()
	if !ok {
		t.Fatal("first acquire rejected")
	}
	if _, _, ok := a.acquire(); ok {
		t.Fatal("second acquire admitted past the semaphore")
	}
	release()
	// Without the refund the bucket would now be empty at the same instant.
	if _, _, ok := a.acquire(); !ok {
		t.Fatal("acquire after semaphore rejection + release rejected: token was not refunded")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/explain"
	"anex/internal/summarize"
)

// legacyExplain reproduces the pre-server anexplain CLI construction path
// verbatim — struct-literal detector (no plane wiring), default-budget
// score memo, factory explainer — so the parity test pins the engine (and
// through it the anexd server and today's thin-client CLI) to the exact
// numbers the standalone CLI has always printed.
func legacyExplain(t *testing.T, ds *dataset.Dataset, algo, detName string, points []int, dim, top int, seed int64, workers int) [][]core.ScoredSubspace {
	t.Helper()
	var det core.Detector
	switch detName {
	case "lof":
		det = &detector.LOF{Workers: workers}
	case "abod":
		det = &detector.FastABOD{Workers: workers}
	case "iforest":
		det = &detector.IsolationForest{Seed: seed, Workers: workers}
	default:
		t.Fatalf("legacy: unknown detector %q", detName)
	}
	cached := detector.NewCached(det)

	ctx := context.Background()
	var lists [][]core.ScoredSubspace
	switch algo {
	case "beam", "refout":
		var explainer core.PointExplainer
		if algo == "beam" {
			explainer = explain.NewBeamFX(cached)
		} else {
			explainer = explain.NewRefOut(cached, seed)
		}
		for _, p := range points {
			list, err := explainer.ExplainPoint(ctx, ds, p, dim)
			if err != nil {
				t.Fatalf("legacy %s/%s: %v", algo, detName, err)
			}
			lists = append(lists, core.TopK(list, top))
		}
	case "lookout", "hics":
		var summarizer core.Summarizer
		if algo == "lookout" {
			summarizer = summarize.NewLookOut(cached)
		} else {
			summarizer = summarize.NewHiCSFX(cached, seed)
		}
		list, err := summarizer.Summarize(ctx, ds, points, dim)
		if err != nil {
			t.Fatalf("legacy %s/%s: %v", algo, detName, err)
		}
		lists = append(lists, core.TopK(list, top))
	default:
		t.Fatalf("legacy: unknown algo %q", algo)
	}
	return lists
}

// sameList compares a legacy ranked list against the wire shape bitwise:
// same length, same subspaces in the same order, bit-identical scores.
func sameList(t *testing.T, label string, want []core.ScoredSubspace, got []ScoredSubspaceJSON) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d subspaces, legacy has %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if len(want[i].Subspace) != len(got[i].Features) {
			t.Errorf("%s[%d]: subspace %v vs %v", label, i, got[i].Features, want[i].Subspace)
			continue
		}
		for j, f := range want[i].Subspace {
			if got[i].Features[j] != f {
				t.Errorf("%s[%d]: subspace %v vs %v", label, i, got[i].Features, want[i].Subspace)
				break
			}
		}
		if math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Errorf("%s[%d]: score %v (%x) vs legacy %v (%x)", label, i,
				got[i].Score, math.Float64bits(got[i].Score), want[i].Score, math.Float64bits(want[i].Score))
		}
	}
}

// TestEngineParityWithLegacyCLI runs every algorithm × a detector spread
// through both construction paths and demands bit-identical results —
// the acceptance gate for "the server answers exactly what the CLI
// printed".
func TestEngineParityWithLegacyCLI(t *testing.T) {
	csv := []byte(engineCSV(1, 150, 2))
	legacyDS, err := dataset.ReadCSV("parity", bytes.NewReader(csv), true)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(EngineConfig{Workers: 2})
	if _, err := eng.RegisterCSV("parity", csv, true); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		algo, det string
		seed      int64
	}{
		{"beam", "lof", 1},
		{"beam", "iforest", 7},
		{"refout", "lof", 3},
		{"refout", "abod", 1},
		{"lookout", "lof", 1},
		{"hics", "lof", 5},
	}
	points := []int{0, 3}
	const dim, top = 2, 5
	for _, c := range cases {
		legacy := legacyExplain(t, legacyDS, c.algo, c.det, points, dim, top, c.seed, 2)
		resp, err := eng.Explain(context.Background(), ExplainRequest{
			Dataset: "parity", Points: points, Algo: c.algo, Detector: c.det,
			Dim: dim, Top: top, Seed: c.seed,
		})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.algo, c.det, err)
		}
		label := c.algo + "/" + c.det
		if IsPointAlgo(c.algo) {
			if len(resp.Points) != len(points) {
				t.Fatalf("%s: %d point explanations, want %d", label, len(resp.Points), len(points))
			}
			for i, pe := range resp.Points {
				if pe.Point != points[i] {
					t.Errorf("%s: explanation %d is for point %d, want %d", label, i, pe.Point, points[i])
				}
				sameList(t, label, legacy[i], pe.Subspaces)
			}
		} else {
			sameList(t, label, legacy[0], resp.Summary)
		}
	}
}

// TestServerParityOverHTTP pins that the HTTP round trip changes nothing:
// the wire response decodes to exactly the engine's in-process answer, and
// repeating the request yields byte-identical JSON.
func TestServerParityOverHTTP(t *testing.T) {
	csv := engineCSV(1, 120, 2)
	eng := NewEngine(EngineConfig{Workers: 2})
	ts := httptest.NewServer(New(eng, Config{}).Handler())
	defer ts.Close()

	reg, err := json.Marshal(RegisterRequest{Name: "d", CSV: csv, Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(reg)); err != nil || resp.StatusCode != 200 {
		t.Fatalf("register: %v %v", resp.Status, err)
	}

	// Direct engine answer on an identical twin engine (same construction,
	// fresh caches) — the HTTP body must decode to exactly this.
	twin := NewEngine(EngineConfig{Workers: 2})
	if _, err := twin.RegisterCSV("d", []byte(csv), true); err != nil {
		t.Fatal(err)
	}
	req := ExplainRequest{Dataset: "d", Points: []int{0}, Algo: "beam", Detector: "lof"}
	want, err := twin.Explain(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(req)
	post := func() []byte {
		resp, err := http.Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("explain: %d %s", resp.StatusCode, raw)
		}
		return raw
	}
	cold := post()
	var got ExplainResponse
	if err := json.Unmarshal(cold, &got); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(&got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("HTTP answer differs from in-process engine:\nhttp:   %s\nengine: %s", gotJSON, wantJSON)
	}
	if warm := post(); !bytes.Equal(cold, warm) {
		t.Errorf("warm HTTP body differs from cold:\ncold: %s\nwarm: %s", cold, warm)
	}
}

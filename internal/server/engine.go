// Package server turns the batch explanation engine into a long-lived
// service. The Engine is the process core — a multi-tenant dataset
// registry, ONE shared neighbourhood plane, and per-dataset score memos
// that all outlive individual requests — and Server (server.go) is the
// HTTP/JSON skin over it. The experiments harness and the CLIs build on
// the same Engine, so a server response is byte-identical to the
// equivalent one-shot CLI invocation, and repeated requests against a
// registered dataset compound the within-grid kNN dedup of the plane into
// near-total warm-path dedup: the second identical request costs score-memo
// lookups instead of detector work.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/parallel"
)

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Workers bounds every request's inner scoring loops (0 = GOMAXPROCS);
	// results are identical at any count. The serving layer also sizes its
	// default in-flight admission off this budget.
	Workers int
	// CacheBytes is the byte budget of each registered dataset's
	// per-detector score memo (0 → detector.DefaultCacheBytes).
	CacheBytes int64
	// PlaneBytes is the byte budget of the engine-wide shared
	// neighbourhood plane (0 → neighbors.DefaultPlaneBytes).
	PlaneBytes int64
}

// Engine is the long-lived explanation core: everything PRs 1–5 built to
// outlive a single run — the shared neighbourhood plane, byte-budgeted
// score memos, lazy views — owned by one object that requests borrow.
// Safe for concurrent use.
type Engine struct {
	workers    int
	cacheBytes int64
	plane      *neighbors.Plane

	mu      sync.Mutex
	tenants map[string]*tenant
}

// tenant is one registered dataset with its cross-request caches.
type tenant struct {
	ds   *dataset.Dataset
	hash string

	mu    sync.Mutex
	memos map[string]*detector.Cached // per (detector, seed) score memo
}

// NewEngine builds an engine with a private neighbourhood plane (so two
// engines — or an engine and the process-wide default plane — never share
// residency budgets).
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{
		workers:    parallel.Resolve(cfg.Workers),
		cacheBytes: cfg.CacheBytes,
		plane:      neighbors.NewPlane(cfg.PlaneBytes),
		tenants:    make(map[string]*tenant),
	}
}

// Workers returns the engine's resolved inner-loop worker budget.
func (e *Engine) Workers() int { return e.workers }

// Plane returns the engine-wide shared neighbourhood plane.
func (e *Engine) Plane() *neighbors.Plane { return e.plane }

// PlaneStats snapshots the plane's activity counters.
func (e *Engine) PlaneStats() neighbors.PlaneStats { return e.plane.Stats() }

// WirePlane wires the engine's plane into a detector that supports one
// (the kNN family exposes SetNeighbors); other detectors pass through
// untouched. The hook the experiments session uses to rebase its detectors
// onto the engine's plane.
func (e *Engine) WirePlane(d core.Detector) {
	if ns, ok := d.(interface{ SetNeighbors(*neighbors.Plane) }); ok {
		ns.SetNeighbors(e.plane)
	}
}

// NewScoreMemo wraps a detector in a score memo sized by the engine's
// cache budget — the one construction path for every memo the engine (or a
// session built on it) hands out.
func (e *Engine) NewScoreMemo(d core.Detector) *detector.Cached {
	return detector.NewCachedBudget(d, e.cacheBytes)
}

// RegisterCSV parses and registers a CSV payload under name. The registry
// key is (name, SHA-256 of the payload): re-registering an identical
// payload is idempotent (same hash, caches kept warm), while a different
// payload under an existing name replaces it — the old dataset's plane
// entries are forgotten and its score memos dropped, so a tenant can never
// be served explanations of data it no longer owns.
func (e *Engine) RegisterCSV(name string, csv []byte, header bool) (RegisterResponse, error) {
	pending, err := e.PrepareRegister(name, csv, header)
	if err != nil {
		return RegisterResponse{}, err
	}
	return pending.Commit(), nil
}

// PendingRegistration is a validated registration that has not yet been
// applied to the registry. The split exists for the durable serving
// layer: validate (parse the CSV, compute the hash), persist the record
// to the write-ahead log, and only then Commit — so a registration the
// engine serves is always one the log already holds, and a crash between
// the two leaves the durable (post-write) state that recovery replays.
type PendingRegistration struct {
	e         *Engine
	name      string
	hash      string
	ds        *dataset.Dataset // nil when Identical
	identical bool
	resp      RegisterResponse
}

// Identical reports that an identical payload (same name, same hash) was
// already registered when the registration was prepared: Commit is a
// cache-preserving no-op, and a durable layer can skip the log append
// (the record is necessarily already durable).
func (p *PendingRegistration) Identical() bool { return p.identical }

// Hash returns the payload's SHA-256 — the idempotency key clients pin.
func (p *PendingRegistration) Hash() string { return p.hash }

// PrepareRegister validates a registration without applying it: the CSV
// is fully parsed (NaN/Inf and ragged rows rejected) and the payload
// hashed. The returned pending registration is applied with Commit.
func (e *Engine) PrepareRegister(name string, csv []byte, header bool) (*PendingRegistration, error) {
	if name == "" {
		return nil, badRequest("dataset name must be non-empty")
	}
	if len(csv) == 0 {
		return nil, badRequest("dataset %q: empty csv payload", name)
	}
	sum := sha256.Sum256(csv)
	hash := hex.EncodeToString(sum[:])

	e.mu.Lock()
	if t, ok := e.tenants[name]; ok && t.hash == hash {
		ds := t.ds
		e.mu.Unlock()
		return &PendingRegistration{e: e, name: name, hash: hash, identical: true,
			resp: RegisterResponse{Name: name, Hash: hash, N: ds.N(), D: ds.D()}}, nil
	}
	e.mu.Unlock()

	// Parse outside the lock: payloads can be large and the reader does a
	// full validation pass (NaN/Inf and ragged rows rejected).
	ds, err := dataset.ReadCSV(name, bytes.NewReader(csv), header)
	if err != nil {
		return nil, badRequest("dataset %q: %v", name, err)
	}
	return &PendingRegistration{e: e, name: name, hash: hash, ds: ds}, nil
}

// Commit applies a prepared registration to the registry and returns the
// registration response. Identical registrations keep the incumbent
// tenant's warm caches; replacements release the old dataset's plane
// entries and drop its memos.
func (p *PendingRegistration) Commit() RegisterResponse {
	if p.identical {
		return p.resp
	}
	e := p.e
	e.mu.Lock()
	old, replaced := e.tenants[p.name]
	if replaced && old.hash == p.hash {
		// A concurrent identical registration won the race; keep its caches.
		ds := old.ds
		e.mu.Unlock()
		return RegisterResponse{Name: p.name, Hash: p.hash, N: ds.N(), D: ds.D()}
	}
	e.tenants[p.name] = &tenant{ds: p.ds, hash: p.hash, memos: make(map[string]*detector.Cached)}
	e.mu.Unlock()
	if replaced {
		e.plane.Forget(old.ds.SourceKey())
	}
	return RegisterResponse{Name: p.name, Hash: p.hash, N: p.ds.N(), D: p.ds.D(), Replaced: replaced}
}

// Forget deregisters a dataset and releases its plane entries. Unknown
// names are a no-op (deregistration is idempotent).
func (e *Engine) Forget(name string) {
	e.mu.Lock()
	t, ok := e.tenants[name]
	delete(e.tenants, name)
	e.mu.Unlock()
	if ok {
		e.plane.Forget(t.ds.SourceKey())
	}
}

// Dataset returns a registered dataset and its payload hash.
func (e *Engine) Dataset(name string) (*dataset.Dataset, string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[name]
	if !ok {
		return nil, "", false
	}
	return t.ds, t.hash, true
}

// Datasets returns the number of registered datasets.
func (e *Engine) Datasets() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.tenants)
}

// memoFor returns (creating on first use) the tenant's score memo for one
// (detector, seed) pair. The memo — and through it the detector instance —
// persists across requests, which is the second half of warm-path reuse:
// the plane dedups kNN structures, the memo dedups whole score vectors.
// Seed participates in the key because the Isolation Forest's scores
// depend on it; for the deterministic detectors distinct seeds simply
// share the plane underneath.
func (t *tenant) memoFor(e *Engine, detName string, seed int64) (*detector.Cached, error) {
	key := fmt.Sprintf("%s@%d", detName, seed)
	t.mu.Lock()
	defer t.mu.Unlock()
	if memo, ok := t.memos[key]; ok {
		return memo, nil
	}
	det, err := NewDetectorByName(detName, seed, e.workers)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	e.WirePlane(det)
	memo := e.NewScoreMemo(det)
	t.memos[key] = memo
	return memo, nil
}

// setDefaults resolves the CLI-default knobs of an explain request in
// place, so a zero-valued field and an explicit CLI default are the same
// request (and hit the same memo).
func (req *ExplainRequest) setDefaults() {
	if req.Algo == "" {
		req.Algo = "beam"
	}
	if req.Detector == "" {
		req.Detector = "lof"
	}
	if req.Dim == 0 {
		req.Dim = 2
	}
	if req.Top == 0 {
		req.Top = 5
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
}

// Explain answers one explanation request against a registered dataset,
// with the same construction path as the anexplain CLI: factory-built
// detector wrapped in a score memo, factory-built explainer, per-point
// ExplainPoint or one joint Summarize. A positive TimeoutMS derives a
// per-request deadline that the context plumbing carries into every
// scoring loop. The request's zero-valued knobs are resolved to the CLI
// defaults (the caller's struct is not mutated).
func (e *Engine) Explain(ctx context.Context, req ExplainRequest) (*ExplainResponse, error) {
	req.setDefaults()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	e.mu.Lock()
	t, ok := e.tenants[req.Dataset]
	e.mu.Unlock()
	if !ok {
		return nil, notFound("unknown dataset %q (register it via POST /v1/datasets)", req.Dataset)
	}
	if req.Hash != "" && req.Hash != t.hash {
		return nil, conflict("dataset %q: payload hash %s registered, request pinned %s", req.Dataset, t.hash, req.Hash)
	}
	ds := t.ds
	if len(req.Points) == 0 {
		return nil, badRequest("no points to explain")
	}
	for _, p := range req.Points {
		if p < 0 || p >= ds.N() {
			return nil, badRequest("point %d out of range [0, %d)", p, ds.N())
		}
	}
	if req.Dim < 1 || req.Dim > ds.D() {
		return nil, badRequest("dimensionality %d out of range [1, %d]", req.Dim, ds.D())
	}
	memo, err := t.memoFor(e, req.Detector, req.Seed)
	if err != nil {
		return nil, err
	}

	resp := &ExplainResponse{
		Dataset:      req.Dataset,
		Hash:         t.hash,
		Algo:         req.Algo,
		Detector:     req.Detector,
		DetectorName: memo.Name(),
		Dim:          req.Dim,
	}
	switch {
	case IsPointAlgo(req.Algo):
		explainer, err := NewPointExplainerByName(req.Algo, memo, req.Seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.AlgoName = explainer.Name()
		for _, p := range req.Points {
			list, err := explainer.ExplainPoint(ctx, ds, p, req.Dim)
			if err != nil {
				return nil, err
			}
			resp.Points = append(resp.Points, PointExplanationJSON{
				Point:     p,
				Subspaces: toJSONSubspaces(ds, core.TopK(list, req.Top)),
			})
		}
	case IsSummaryAlgo(req.Algo):
		summarizer, err := NewSummarizerByName(req.Algo, memo, req.Seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.AlgoName = summarizer.Name()
		list, err := summarizer.Summarize(ctx, ds, req.Points, req.Dim)
		if err != nil {
			return nil, err
		}
		resp.Summary = toJSONSubspaces(ds, core.TopK(list, req.Top))
	default:
		return nil, badRequest("unknown algorithm %q (want %s)", req.Algo, AlgoNames)
	}
	return resp, nil
}

// toJSONSubspaces converts a ranked ScoredSubspace list to the wire shape,
// resolving feature names against the dataset.
func toJSONSubspaces(ds *dataset.Dataset, list []core.ScoredSubspace) []ScoredSubspaceJSON {
	out := make([]ScoredSubspaceJSON, len(list))
	for i, s := range list {
		features := make([]int, len(s.Subspace))
		names := make([]string, len(s.Subspace))
		for j, f := range s.Subspace {
			features[j] = f
			names[j] = ds.FeatureName(f)
		}
		out[i] = ScoredSubspaceJSON{Features: features, Names: names, Score: s.Score}
	}
	return out
}

// Stats returns the engine's cross-request reuse counters: plane activity
// plus the aggregated score-memo counters of every tenant.
func (e *Engine) Stats() (datasets int, plane neighbors.PlaneStats, memo detector.CacheStats) {
	e.mu.Lock()
	tenants := make([]*tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		tenants = append(tenants, t)
	}
	e.mu.Unlock()
	for _, t := range tenants {
		t.mu.Lock()
		for _, m := range t.memos {
			cs := m.CacheStats()
			memo.Calls += cs.Calls
			memo.Hits += cs.Hits
			memo.Evictions += cs.Evictions
			memo.Entries += cs.Entries
			memo.ResidentBytes += cs.ResidentBytes
			memo.MaxBytes += cs.MaxBytes
		}
		t.mu.Unlock()
	}
	return len(tenants), e.plane.Stats(), memo
}

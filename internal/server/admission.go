package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the serving layer's backpressure: a bounded in-flight
// semaphore sized off the engine's worker budget plus an optional
// token-bucket rate limiter. Work past either bound is rejected
// immediately with 429 + Retry-After rather than queued — a saturated
// explanation service should shed load while warm-path requests stay
// cheap, not build an unbounded backlog of expensive cold ones.
type admission struct {
	sem  chan struct{}
	rate float64 // tokens per second; 0 = unlimited
	// burst is the bucket capacity (≥ 1 whenever rate > 0).
	burst float64

	mu     sync.Mutex
	tokens float64
	last   time.Time

	rejected atomic.Int64
	now      func() time.Time // test seam
}

// newAdmission builds the admission gate. maxInflight ≤ 0 disables the
// semaphore (callers normally resolve a default off the engine's worker
// budget before getting here). rate ≤ 0 disables the limiter;
// burst ≤ 0 defaults to ceil(rate) so one second of tokens fits.
func newAdmission(maxInflight int, rate float64, burst int) *admission {
	a := &admission{rate: rate, now: time.Now}
	if maxInflight > 0 {
		a.sem = make(chan struct{}, maxInflight)
	}
	if rate > 0 {
		a.burst = float64(burst)
		if a.burst <= 0 {
			a.burst = math.Ceil(rate)
		}
		a.tokens = a.burst
		a.last = a.now()
	}
	return a
}

// acquire attempts to admit one request. On success it returns a release
// func and ok=true. On rejection it returns ok=false and the Retry-After
// hint in seconds (≥ 1).
func (a *admission) acquire() (release func(), retryAfter int, ok bool) {
	if !a.takeToken() {
		a.rejected.Add(1)
		return nil, a.retryAfterSeconds(), false
	}
	if a.sem != nil {
		select {
		case a.sem <- struct{}{}:
		default:
			// Semaphore full: refund the token so a rejected request does not
			// also starve the bucket.
			a.refundToken()
			a.rejected.Add(1)
			return nil, 1, false
		}
	}
	released := false
	return func() {
		if released {
			return
		}
		released = true
		if a.sem != nil {
			<-a.sem
		}
	}, 0, true
}

// takeToken refills the bucket by elapsed time and consumes one token;
// always true when no rate limit is configured.
func (a *admission) takeToken() bool {
	if a.rate <= 0 {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	a.tokens = math.Min(a.burst, a.tokens+now.Sub(a.last).Seconds()*a.rate)
	a.last = now
	if a.tokens < 1 {
		return false
	}
	a.tokens--
	return true
}

func (a *admission) refundToken() {
	if a.rate <= 0 {
		return
	}
	a.mu.Lock()
	a.tokens = math.Min(a.burst, a.tokens+1)
	a.mu.Unlock()
}

// retryAfterSeconds estimates when the next token arrives, rounded up to
// whole seconds (the Retry-After header's granularity), minimum 1.
func (a *admission) retryAfterSeconds() int {
	if a.rate <= 0 {
		return 1
	}
	a.mu.Lock()
	missing := 1 - a.tokens
	a.mu.Unlock()
	if missing <= 0 {
		return 1
	}
	s := int(math.Ceil(missing / a.rate))
	if s < 1 {
		s = 1
	}
	return s
}

// Stats snapshots the gate.
func (a *admission) Stats() AdmissionStats {
	return AdmissionStats{
		Inflight:    len(a.sem),
		MaxInflight: cap(a.sem),
		RatePerSec:  a.rate,
		Rejected429: a.rejected.Load(),
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config tunes the serving layer around an Engine.
type Config struct {
	// MaxInflight bounds concurrently admitted explanation requests
	// (0 → the engine's worker budget: past that point extra requests only
	// queue inside the scoring pools, so shedding them keeps latency flat).
	MaxInflight int
	// Rate, when positive, caps admitted POST requests per second with a
	// token bucket of capacity Burst (0 → ceil(Rate)).
	Rate  float64
	Burst int
}

// Server is the HTTP/JSON skin over an Engine: admission control, wire
// codecs, per-endpoint latency counters. Mount Handler on any http.Server.
type Server struct {
	engine *Engine
	gate   *admission

	mu        sync.Mutex
	endpoints map[string]*EndpointStats
}

// New builds a server over engine.
func New(engine *Engine, cfg Config) *Server {
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = engine.Workers()
	}
	return &Server{
		engine:    engine,
		gate:      newAdmission(maxInflight, cfg.Rate, cfg.Burst),
		endpoints: make(map[string]*EndpointStats),
	}
}

// Handler returns the service's route table:
//
//	POST /v1/datasets  register a CSV payload        (admission-gated)
//	POST /v1/explain   explain points of a dataset   (admission-gated)
//	GET  /v1/stats     reuse + admission counters    (always admitted)
//	GET  /healthz      liveness                      (always admitted)
//
// The read-only endpoints bypass admission so health checks and
// observability keep working while the service sheds load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.instrument("POST /v1/datasets", true, s.handleRegister))
	mux.HandleFunc("POST /v1/explain", s.instrument("POST /v1/explain", true, s.handleExplain))
	mux.HandleFunc("GET /v1/stats", s.instrument("GET /v1/stats", false, s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("GET /healthz", false, s.handleHealthz))
	return mux
}

// instrument wraps a handler with admission (when gated) and the
// per-endpoint latency counters reported by /v1/stats.
func (s *Server) instrument(name string, gated bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w}
		if gated {
			release, retryAfter, ok := s.gate.acquire()
			if !ok {
				cw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				writeError(cw, &StatusError{Code: http.StatusTooManyRequests, Msg: "saturated; retry later"})
				s.record(name, start, cw.code)
				return
			}
			defer release()
		}
		h(cw, r)
		s.record(name, start, cw.code)
	}
}

func (s *Server) record(name string, start time.Time, code int) {
	ms := time.Since(start).Milliseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := s.endpoints[name]
	if ep == nil {
		ep = &EndpointStats{}
		s.endpoints[name] = ep
	}
	ep.Count++
	if code >= 400 {
		ep.Errors++
	}
	ep.TotalMS += ms
	if ms > ep.MaxMS {
		ep.MaxMS = ms
	}
}

// codeWriter captures the response status for the latency counters.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.engine.RegisterCSV(req.Name, []byte(req.CSV), req.Header)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.engine.Explain(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats snapshots the full service state: the engine's cross-request reuse
// counters plus the serving layer's admission and latency counters.
func (s *Server) Stats() StatsResponse {
	datasets, plane, memo := s.engine.Stats()
	s.mu.Lock()
	endpoints := make(map[string]EndpointStats, len(s.endpoints))
	for name, ep := range s.endpoints {
		endpoints[name] = *ep
	}
	s.mu.Unlock()
	// Service-wide dedup: every scoring-work request (kNN builds asked of
	// the plane, score vectors asked of the memos) over every one actually
	// computed. Memo hits and plane hits both push the numerator alone.
	work := plane.Computations + (memo.Calls - memo.Hits)
	queries := plane.Queries + memo.Calls
	dedup := 1.0
	if work > 0 {
		dedup = float64(queries) / float64(work)
	}
	return StatsResponse{
		Datasets:         datasets,
		DedupFactor:      dedup,
		Plane:            plane,
		PlaneDedupFactor: plane.DedupFactor(),
		ScoreMemo:        memo,
		ScoreMemoHits:    memo.Hits,
		Admission:        s.gate.Stats(),
		Endpoints:        endpoints,
	}
}

// decodeJSON strictly decodes a request body (unknown fields rejected, so
// a typo like "detecor" fails loudly instead of silently running defaults).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an error to its HTTP status: StatusError carries its
// own code, context expiry maps to 504, everything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *StatusError
	switch {
	case errors.As(err, &se):
		code = se.Code
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf("%v", err)})
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"anex/internal/durable"
	"anex/internal/failpoint"
	"anex/internal/neighbors"
)

// DegradedRetryAfterSeconds is the Retry-After hint attached to the 503 a
// degraded server answers writes with. Degradation is sticky until an
// operator fixes the disk and restarts, so the hint is deliberately
// coarse — it spaces out well-behaved clients without promising recovery.
const DegradedRetryAfterSeconds = 30

// The serving layer's failpoint sites: an armed error action fails the
// handler before it touches the engine, exercising the client's retry
// path against real HTTP 5xx responses.
const (
	SiteHTTPRegister = "server.register"
	SiteHTTPExplain  = "server.explain"
)

// Config tunes the serving layer around an Engine.
type Config struct {
	// MaxInflight bounds concurrently admitted explanation requests
	// (0 → the engine's worker budget: past that point extra requests only
	// queue inside the scoring pools, so shedding them keeps latency flat).
	MaxInflight int
	// Rate, when positive, caps admitted POST requests per second with a
	// token bucket of capacity Burst (0 → ceil(Rate)).
	Rate  float64
	Burst int
	// Durable, when set, write-ahead-logs every registration and forget
	// before it is applied, so the registry survives restarts. A durable
	// write failure flips the server into read-only degraded mode.
	Durable *durable.Store
	// OnDegrade, when set, is called once with the failure that flipped
	// the server into degraded mode (the daemon's logging hook).
	OnDegrade func(error)
}

// Server is the HTTP/JSON skin over an Engine: admission control, wire
// codecs, per-endpoint latency counters, and — when a durable store is
// attached — write-ahead persistence with read-only degradation on
// durable-write failure. Mount Handler on any http.Server.
type Server struct {
	engine    *Engine
	gate      *admission
	store     *durable.Store
	onDegrade func(error)
	start     time.Time

	degraded atomic.Bool

	mu             sync.Mutex
	degradedReason string
	endpoints      map[string]*EndpointStats
}

// New builds a server over engine.
func New(engine *Engine, cfg Config) *Server {
	maxInflight := cfg.MaxInflight
	if maxInflight == 0 {
		maxInflight = engine.Workers()
	}
	return &Server{
		engine:    engine,
		gate:      newAdmission(maxInflight, cfg.Rate, cfg.Burst),
		store:     cfg.Durable,
		onDegrade: cfg.OnDegrade,
		start:     time.Now(),
		endpoints: make(map[string]*EndpointStats),
	}
}

// degrade flips the server into read-only degraded mode: existing tenants
// keep getting explanations, every later write is refused with 503 +
// Retry-After. The first cause wins; degradation is sticky until restart
// (the durable store fail-stopped, so there is nothing to probe).
func (s *Server) degrade(err error) {
	s.mu.Lock()
	if s.degradedReason == "" {
		s.degradedReason = err.Error()
	}
	s.mu.Unlock()
	if s.degraded.CompareAndSwap(false, true) && s.onDegrade != nil {
		s.onDegrade(err)
	}
}

// Degraded reports whether the server is in read-only degraded mode.
func (s *Server) Degraded() bool { return s.degraded.Load() }

func (s *Server) degradedError() *StatusError {
	s.mu.Lock()
	reason := s.degradedReason
	s.mu.Unlock()
	return unavailable("durable store failed, registry is read-only (explanations of registered datasets still served): %s", reason)
}

// rejectDegraded answers a write request with 503 + Retry-After when the
// server is degraded. Reports whether the request was rejected.
func (s *Server) rejectDegraded(w http.ResponseWriter) bool {
	if !s.degraded.Load() {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(DegradedRetryAfterSeconds))
	writeError(w, s.degradedError())
	return true
}

// Handler returns the service's route table:
//
//	POST   /v1/datasets         register a CSV payload        (admission-gated)
//	DELETE /v1/datasets/{name}  forget a dataset              (admission-gated)
//	POST   /v1/explain          explain points of a dataset   (admission-gated)
//	GET    /v1/stats            reuse + admission counters    (always admitted)
//	GET    /healthz             liveness                      (always admitted)
//
// The read-only endpoints bypass admission so health checks and
// observability keep working while the service sheds load.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.instrument("POST /v1/datasets", true, s.handleRegister))
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.instrument("DELETE /v1/datasets/{name}", true, s.handleForget))
	mux.HandleFunc("POST /v1/explain", s.instrument("POST /v1/explain", true, s.handleExplain))
	mux.HandleFunc("GET /v1/stats", s.instrument("GET /v1/stats", false, s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument("GET /healthz", false, s.handleHealthz))
	return mux
}

// instrument wraps a handler with admission (when gated) and the
// per-endpoint latency counters reported by /v1/stats.
func (s *Server) instrument(name string, gated bool, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		cw := &codeWriter{ResponseWriter: w}
		if gated {
			release, retryAfter, ok := s.gate.acquire()
			if !ok {
				cw.Header().Set("Retry-After", strconv.Itoa(retryAfter))
				writeError(cw, &StatusError{Code: http.StatusTooManyRequests, Msg: "saturated; retry later"})
				s.record(name, start, cw.code)
				return
			}
			defer release()
		}
		h(cw, r)
		s.record(name, start, cw.code)
	}
}

func (s *Server) record(name string, start time.Time, code int) {
	ms := time.Since(start).Milliseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := s.endpoints[name]
	if ep == nil {
		ep = &EndpointStats{}
		s.endpoints[name] = ep
	}
	ep.Count++
	if code >= 400 {
		ep.Errors++
	}
	ep.TotalMS += ms
	if ms > ep.MaxMS {
		ep.MaxMS = ms
	}
}

// codeWriter captures the response status for the latency counters.
type codeWriter struct {
	http.ResponseWriter
	code int
}

func (w *codeWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *codeWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// handleRegister is the durable write path: validate (parse + hash),
// append the record to the write-ahead log, and only then commit to the
// in-memory registry — so an acknowledged registration is always durable,
// and a crash between append and commit leaves a record recovery replays.
// A durable append failure degrades the server instead of crashing it.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if err := failpoint.Eval(SiteHTTPRegister); err != nil {
		writeError(w, err)
		return
	}
	if s.rejectDegraded(w) {
		return
	}
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	pending, err := s.engine.PrepareRegister(req.Name, []byte(req.CSV), req.Header)
	if err != nil {
		writeError(w, err)
		return
	}
	// Identical re-registrations skip the log: every registration the
	// engine holds went through it, so the record is already durable —
	// which is what makes a client's blind retry of a lost ack free.
	if s.store != nil && !pending.Identical() {
		if err := s.store.AppendRegister(req.Name, req.Header, []byte(req.CSV)); err != nil {
			s.degrade(err)
			s.rejectDegraded(w)
			return
		}
	}
	writeJSON(w, http.StatusOK, pending.Commit())
}

// handleForget deregisters a dataset, writing a durable tombstone first
// (same WAL-before-registry ordering as registration).
func (s *Server) handleForget(w http.ResponseWriter, r *http.Request) {
	if s.rejectDegraded(w) {
		return
	}
	name := r.PathValue("name")
	if _, _, ok := s.engine.Dataset(name); !ok {
		writeError(w, notFound("unknown dataset %q", name))
		return
	}
	if s.store != nil {
		if err := s.store.AppendForget(name); err != nil {
			s.degrade(err)
			s.rejectDegraded(w)
			return
		}
	}
	s.engine.Forget(name)
	writeJSON(w, http.StatusOK, ForgetResponse{Name: name, Forgotten: true})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if err := failpoint.Eval(SiteHTTPExplain); err != nil {
		writeError(w, err)
		return
	}
	var req ExplainRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.engine.Explain(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok", UptimeMS: time.Since(s.start).Milliseconds()}
	if s.degraded.Load() {
		s.mu.Lock()
		resp.Reason = s.degradedReason
		s.mu.Unlock()
		resp.Status = "degraded"
		resp.Degraded = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// Stats snapshots the full service state: the engine's cross-request reuse
// counters plus the serving layer's admission and latency counters.
func (s *Server) Stats() StatsResponse {
	datasets, plane, memo := s.engine.Stats()
	s.mu.Lock()
	endpoints := make(map[string]EndpointStats, len(s.endpoints))
	for name, ep := range s.endpoints {
		endpoints[name] = *ep
	}
	s.mu.Unlock()
	// Service-wide dedup: every scoring-work request (kNN builds asked of
	// the plane, score vectors asked of the memos) over every one actually
	// computed. Memo hits and plane hits both push the numerator alone.
	work := plane.Computations + (memo.Calls - memo.Hits)
	queries := plane.Queries + memo.Calls
	dedup := 1.0
	if work > 0 {
		dedup = float64(queries) / float64(work)
	}
	prune := neighbors.PruneTotals()
	resp := StatsResponse{
		Datasets:              datasets,
		UptimeMS:              time.Since(s.start).Milliseconds(),
		Degraded:              s.degraded.Load(),
		DedupFactor:           dedup,
		Plane:                 plane,
		PlaneDedupFactor:      plane.DedupFactor(),
		Prune:                 prune,
		PruneScanFraction:     prune.ScanFraction(),
		PruneSurvivorFraction: prune.SurvivorFraction(),
		ScoreMemo:             memo,
		ScoreMemoHits:         memo.Hits,
		Admission:             s.gate.Stats(),
		Endpoints:             endpoints,
	}
	if resp.Degraded {
		s.mu.Lock()
		resp.DegradedReason = s.degradedReason
		s.mu.Unlock()
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Durable = &st
	}
	return resp
}

// decodeJSON strictly decodes a request body (unknown fields rejected, so
// a typo like "detecor" fails loudly instead of silently running defaults).
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an error to its HTTP status: StatusError carries its
// own code, context expiry maps to 504, everything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *StatusError
	switch {
	case errors.As(err, &se):
		code = se.Code
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf("%v", err)})
}

package server

import (
	"fmt"

	"anex/internal/detector"
	"anex/internal/durable"
	"anex/internal/neighbors"
)

// The HTTP/JSON wire types of the anexd explanation service. Field names
// are part of the public API; additions must stay backward compatible
// (new fields, never repurposed ones).

// RegisterRequest is the body of POST /v1/datasets: a CSV payload to
// register under a name in the engine's multi-tenant registry.
type RegisterRequest struct {
	// Name addresses the dataset in later ExplainRequests.
	Name string `json:"name"`
	// CSV is the dataset itself. Header controls whether its first record
	// names the features.
	CSV    string `json:"csv"`
	Header bool   `json:"header"`
}

// RegisterResponse describes the registered dataset.
type RegisterResponse struct {
	Name string `json:"name"`
	// Hash is the SHA-256 of the CSV payload — the registry key component
	// that makes re-registration idempotent and replacement observable.
	Hash string `json:"hash"`
	N    int    `json:"n"`
	D    int    `json:"d"`
	// Replaced reports that a different payload was previously registered
	// under this name and has been evicted (its caches released).
	Replaced bool `json:"replaced"`
}

// ExplainRequest is the body of POST /v1/explain: explain the given points
// of a registered dataset. Zero-valued knobs select the anexplain CLI
// defaults, so a minimal request and a default CLI invocation are the same
// computation.
type ExplainRequest struct {
	// Dataset names a registered dataset; Hash optionally pins the exact
	// payload version (mismatch fails rather than silently explaining
	// different data).
	Dataset string `json:"dataset"`
	Hash    string `json:"hash,omitempty"`
	// Points are the dataset row indices to explain.
	Points []int `json:"points"`
	// Algo is beam, refout (per point) or lookout, hics (joint summary);
	// empty means beam.
	Algo string `json:"algo,omitempty"`
	// Detector is lof, abod or iforest; empty means lof.
	Detector string `json:"detector,omitempty"`
	// Dim is the explanation dimensionality (0 → 2).
	Dim int `json:"dim,omitempty"`
	// Top bounds the returned subspaces per list (0 → 5, the CLI default;
	// negative → unbounded).
	Top int `json:"top,omitempty"`
	// Seed drives the stochastic algorithms (0 → 1, the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS, when positive, bounds the request's wall-clock time: the
	// deadline propagates through the existing context plumbing into every
	// scoring loop, and an overrun aborts with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ScoredSubspaceJSON is one ranked subspace of an explanation.
type ScoredSubspaceJSON struct {
	// Features are the subspace's feature indices (canonical ascending
	// order); Names the matching feature names.
	Features []int    `json:"features"`
	Names    []string `json:"names"`
	Score    float64  `json:"score"`
}

// PointExplanationJSON is one explained point with its ranked subspaces.
type PointExplanationJSON struct {
	Point     int                  `json:"point"`
	Subspaces []ScoredSubspaceJSON `json:"subspaces"`
}

// ExplainResponse is the result of one explanation request. Point
// algorithms fill Points (one entry per requested point, request order);
// summary algorithms fill Summary (one shared ranked list).
type ExplainResponse struct {
	Dataset  string `json:"dataset"`
	Hash     string `json:"hash"`
	Algo     string `json:"algo"`
	Detector string `json:"detector"`
	// AlgoName and DetectorName are the algorithms' display names (e.g.
	// "Beam_FX", "LOF") — the paper's nomenclature, as printed by the CLI.
	AlgoName     string                 `json:"algo_name"`
	DetectorName string                 `json:"detector_name"`
	Dim          int                    `json:"dim"`
	Points       []PointExplanationJSON `json:"points,omitempty"`
	Summary      []ScoredSubspaceJSON   `json:"summary,omitempty"`
}

// ForgetResponse is the body of DELETE /v1/datasets/{name}.
type ForgetResponse struct {
	Name string `json:"name"`
	// Forgotten is true when the named dataset existed and was removed
	// (and, on a durable server, its tombstone logged).
	Forgotten bool `json:"forgotten"`
}

// HealthResponse is the body of GET /healthz. The endpoint answers 200 in
// degraded mode too — a degraded anexd still serves explanations for
// registered tenants, it only refuses new writes — so liveness probes
// must not kill it; orchestration that cares about write availability
// reads the Degraded flag.
type HealthResponse struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Degraded is true once a durable write has failed and the server is
	// read-only; Reason carries the first failure.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
	// UptimeMS is the server's age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
}

// StatsResponse is the body of GET /v1/stats: the engine's cross-request
// reuse counters plus the serving layer's admission and latency counters.
type StatsResponse struct {
	// Datasets is the number of registered datasets.
	Datasets int `json:"datasets"`
	// UptimeMS is the server's age in milliseconds.
	UptimeMS int64 `json:"uptime_ms"`
	// Degraded is true once a durable write has failed: the server is
	// read-only (new registrations get 503 + Retry-After) until restart.
	// DegradedReason carries the first failure's message.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Durable reports the write-ahead-logged dataset store's counters;
	// absent on servers running without -data-dir.
	Durable *durable.Stats `json:"durable,omitempty"`
	// DedupFactor is the headline cross-request reuse metric: scoring-work
	// requests across both cache layers (plane kNN queries + score-memo
	// calls) per actual computation (plane builds + memo misses). A cold
	// request scores 1; warm repeats of it raise the factor because their
	// work is answered from the memo and the plane without recomputation.
	DedupFactor float64 `json:"dedup_factor"`
	// Plane is the engine-wide shared neighbourhood plane's activity;
	// PlaneDedupFactor its own queries-per-computation ratio (> 1 only when
	// kNN structures are re-queried past the memo, e.g. across seeds or
	// detectors).
	Plane            neighbors.PlaneStats `json:"plane"`
	PlaneDedupFactor float64              `json:"plane_dedup_factor"`
	// Prune is the landmark-pruned candidate tier's process-wide ledger
	// (covering plane builds and fallback indexes alike);
	// PruneScanFraction is the share of candidate rows the tier let
	// through to the exact distance kernel — 1.0 when the tier never
	// engaged, ≤ 0.6 on the Figure-9 reference workload per check.sh.
	// PruneSurvivorFraction is the quantized prefilter's equivalent: the
	// share of bound-tested candidates its 8-bit code bound could NOT
	// reject — 1.0 when the prefilter never engaged, ≤ 0.15 on the
	// Figure-9 reference workload per check.sh.
	Prune                 neighbors.PruneStats `json:"prune"`
	PruneScanFraction     float64              `json:"prune_scan_fraction"`
	PruneSurvivorFraction float64              `json:"prune_survivor_fraction"`
	// ScoreMemo aggregates the per-dataset cached detectors' score memos;
	// ScoreMemoHits is its hit total (a warm request's subspace scores come
	// from here without any detector work).
	ScoreMemo     detector.CacheStats `json:"score_memo"`
	ScoreMemoHits int                 `json:"score_memo_hits"`
	// Admission reports the serving layer's backpressure state.
	Admission AdmissionStats `json:"admission"`
	// Endpoints maps "METHOD /path" to its latency counters.
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// AdmissionStats reports the in-flight semaphore and rate limiter.
type AdmissionStats struct {
	Inflight    int     `json:"inflight"`
	MaxInflight int     `json:"max_inflight"`
	RatePerSec  float64 `json:"rate_per_sec"`
	// Rejected429 counts requests turned away with 429 (semaphore full or
	// token bucket empty) instead of queueing unboundedly.
	Rejected429 int64 `json:"rejected_429"`
}

// EndpointStats are one endpoint's cumulative latency counters.
type EndpointStats struct {
	Count   int64 `json:"count"`
	Errors  int64 `json:"errors"`
	TotalMS int64 `json:"total_ms"`
	MaxMS   int64 `json:"max_ms"`
}

// StatusError carries the HTTP status a failed request should map to.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string { return e.Msg }

// badRequest builds a 400 StatusError.
func badRequest(format string, args ...any) *StatusError {
	return &StatusError{Code: 400, Msg: fmt.Sprintf(format, args...)}
}

// notFound builds a 404 StatusError.
func notFound(format string, args ...any) *StatusError {
	return &StatusError{Code: 404, Msg: fmt.Sprintf(format, args...)}
}

// conflict builds a 409 StatusError.
func conflict(format string, args ...any) *StatusError {
	return &StatusError{Code: 409, Msg: fmt.Sprintf(format, args...)}
}

// unavailable builds a 503 StatusError.
func unavailable(format string, args ...any) *StatusError {
	return &StatusError{Code: 503, Msg: fmt.Sprintf(format, args...)}
}

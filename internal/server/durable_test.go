package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"anex/internal/durable"
	"anex/internal/failpoint"
)

// recoverEngine rebuilds an engine registry from recovered store records —
// the same loop cmd/anexd runs at boot.
func recoverEngine(t *testing.T, recovered []durable.Record) *Engine {
	t.Helper()
	eng := NewEngine(EngineConfig{Workers: 2})
	for _, rec := range recovered {
		if _, err := eng.RegisterCSV(rec.Name, rec.CSV, rec.Header); err != nil {
			t.Fatalf("recover %q: %v", rec.Name, err)
		}
	}
	return eng
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// TestDurableRegistrationsSurviveRestart pins the recovery warm-parity
// contract: a server rebuilt from the durable store — after registers,
// a replace, and a forget — answers /v1/explain byte-identically to the
// never-restarted server.
func TestDurableRegistrationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store, recovered, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh dir recovered %d records", len(recovered))
	}
	srv := New(recoverEngine(t, recovered), Config{Durable: store})
	h := srv.Handler()

	csvA, csvB, csvB2 := engineCSV(1, 90, 2), engineCSV(2, 80, 1), engineCSV(3, 80, 1)
	for _, reg := range []RegisterRequest{
		{Name: "a", CSV: csvA, Header: true},
		{Name: "b", CSV: csvB, Header: true},
		{Name: "b", CSV: csvB2, Header: true}, // replace
		{Name: "gone", CSV: csvA, Header: true},
	} {
		if resp, body := doJSON(t, h, "POST", "/v1/datasets", reg); resp.StatusCode != 200 {
			t.Fatalf("register %s: %d %s", reg.Name, resp.StatusCode, body)
		}
	}
	if resp, body := doJSON(t, h, "DELETE", "/v1/datasets/gone", nil); resp.StatusCode != 200 {
		t.Fatalf("forget: %d %s", resp.StatusCode, body)
	}
	explainA := ExplainRequest{Dataset: "a", Points: []int{0, 3}}
	explainB := ExplainRequest{Dataset: "b", Points: []int{0}, Algo: "refout"}
	_, wantA := doJSON(t, h, "POST", "/v1/explain", explainA)
	_, wantB := doJSON(t, h, "POST", "/v1/explain", explainB)
	var stats StatsResponse
	if _, body := doJSON(t, h, "GET", "/v1/stats", nil); json.Unmarshal(body, &stats) != nil {
		t.Fatal("stats unmarshal")
	}
	if stats.Durable == nil || stats.Durable.Appends != 5 {
		t.Fatalf("stats.Durable = %+v, want 5 appends (4 registers + 1 tombstone)", stats.Durable)
	}

	// "Restart": release the directory lock, recover a fresh engine from
	// the same dir, and compare the wire bytes.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	store2, recovered2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if len(recovered2) != 2 {
		t.Fatalf("recovered %d datasets, want 2 (a, b — gone forgotten)", len(recovered2))
	}
	h2 := New(recoverEngine(t, recovered2), Config{Durable: store2}).Handler()
	if _, got := doJSON(t, h2, "POST", "/v1/explain", explainA); !bytes.Equal(got, wantA) {
		t.Errorf("recovered explain of a differs:\nwant %s\ngot  %s", wantA, got)
	}
	if _, got := doJSON(t, h2, "POST", "/v1/explain", explainB); !bytes.Equal(got, wantB) {
		t.Errorf("recovered explain of b (replaced payload) differs:\nwant %s\ngot  %s", wantB, got)
	}
	if resp, _ := doJSON(t, h2, "POST", "/v1/explain", ExplainRequest{Dataset: "gone", Points: []int{0}}); resp.StatusCode != 404 {
		t.Errorf("forgotten dataset resurrected: explain = %d, want 404", resp.StatusCode)
	}
}

// TestDegradedModeOnDurableWriteFailure pins graceful degradation: after
// an injected durable-write failure, explains on registered tenants keep
// succeeding, every write gets 503 + Retry-After (sticky, even after the
// fault clears), and /healthz + /v1/stats report the degraded flag.
func TestDegradedModeOnDurableWriteFailure(t *testing.T) {
	dir := t.TempDir()
	store, _, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var degradeCalls int
	srv := New(NewEngine(EngineConfig{Workers: 2}), Config{
		Durable:   store,
		OnDegrade: func(error) { degradeCalls++ },
	})
	h := srv.Handler()

	csvA := engineCSV(1, 90, 2)
	if resp, body := doJSON(t, h, "POST", "/v1/datasets", RegisterRequest{Name: "a", CSV: csvA, Header: true}); resp.StatusCode != 200 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}

	if err := failpoint.Enable(durable.SiteWALAppend + "=error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable()
	resp, body := doJSON(t, h, "POST", "/v1/datasets", RegisterRequest{Name: "b", CSV: engineCSV(2, 60, 1), Header: true})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register under write fault: %d %s, want 503", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(DegradedRetryAfterSeconds) {
		t.Errorf("degraded Retry-After = %q, want %q", got, strconv.Itoa(DegradedRetryAfterSeconds))
	}
	failpoint.Disable()

	// Sticky: the fault is gone but the store fail-stopped, so writes stay
	// refused — including idempotent re-registration and forgets.
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/datasets"},
		{"DELETE", "/v1/datasets/a"},
	} {
		var reqBody any
		if probe.method == "POST" {
			reqBody = RegisterRequest{Name: "a", CSV: csvA, Header: true}
		}
		if resp, _ := doJSON(t, h, probe.method, probe.path, reqBody); resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s while degraded: %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
	}
	if degradeCalls != 1 {
		t.Errorf("OnDegrade called %d times, want exactly 1", degradeCalls)
	}

	// Read paths keep working: explains of the registered tenant, stats,
	// health — the service degrades, it does not die or lie.
	if resp, body := doJSON(t, h, "POST", "/v1/explain", ExplainRequest{Dataset: "a", Points: []int{0}}); resp.StatusCode != 200 {
		t.Errorf("explain while degraded: %d %s, want 200", resp.StatusCode, body)
	}
	var health HealthResponse
	if _, body := doJSON(t, h, "GET", "/healthz", nil); json.Unmarshal(body, &health) != nil {
		t.Fatal("healthz unmarshal")
	}
	if !health.Degraded || health.Status != "degraded" || health.Reason == "" {
		t.Errorf("healthz = %+v, want degraded status with a reason", health)
	}
	var stats StatsResponse
	if _, body := doJSON(t, h, "GET", "/v1/stats", nil); json.Unmarshal(body, &stats) != nil {
		t.Fatal("stats unmarshal")
	}
	if !stats.Degraded || stats.DegradedReason == "" {
		t.Errorf("stats degraded = %v reason = %q, want true with a reason", stats.Degraded, stats.DegradedReason)
	}
	if stats.UptimeMS < 0 {
		t.Errorf("uptime_ms = %d, want ≥ 0", stats.UptimeMS)
	}
}

// TestTransientPublicationFaultsDoNotPoison pins that one-shot injected
// faults at the cache-publication sites (plane, score memo) and the HTTP
// handler sites fail exactly one request and leave the server healthy:
// the singleflight layers release their waiters and the next request
// recomputes cleanly.
func TestTransientPublicationFaultsDoNotPoison(t *testing.T) {
	srv := New(NewEngine(EngineConfig{Workers: 2}), Config{})
	h := srv.Handler()
	if resp, body := doJSON(t, h, "POST", "/v1/datasets", RegisterRequest{Name: "a", CSV: engineCSV(1, 90, 2), Header: true}); resp.StatusCode != 200 {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	explain := ExplainRequest{Dataset: "a", Points: []int{0}}
	_, want := doJSON(t, h, "POST", "/v1/explain", explain)

	for _, site := range []string{"plane.publish", "memo.publish", SiteHTTPExplain} {
		// A fresh dataset per site so the explain path actually recomputes
		// (a warm memo would answer without touching the faulted site).
		name := "ds-" + site
		if resp, body := doJSON(t, h, "POST", "/v1/datasets", RegisterRequest{Name: name, CSV: engineCSV(1, 90, 2), Header: true}); resp.StatusCode != 200 {
			t.Fatalf("register %s: %d %s", name, resp.StatusCode, body)
		}
		if err := failpoint.Enable(site + "=error@1"); err != nil {
			t.Fatal(err)
		}
		req := ExplainRequest{Dataset: name, Points: []int{0}}
		if resp, _ := doJSON(t, h, "POST", "/v1/explain", req); resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("site %s: faulted explain = %d, want 500", site, resp.StatusCode)
		}
		if resp, got := doJSON(t, h, "POST", "/v1/explain", req); resp.StatusCode != 200 {
			t.Errorf("site %s: explain after one-shot fault = %d %s, want 200", site, resp.StatusCode, got)
		} else if !bytes.Equal(stripDatasetName(got), stripDatasetName(want)) {
			t.Errorf("site %s: post-fault explanation differs from clean baseline", site)
		}
		failpoint.Disable()
	}
}

// stripDatasetName drops the dataset name field of an explain response so
// two responses over identical payloads compare equal.
func stripDatasetName(body []byte) []byte {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	delete(m, "dataset")
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// engineCSV builds the quickstart geometry (coupled pair + noise dims)
// with an anomaly at index 0, as CSV text.
func engineCSV(seed int64, n, noiseDims int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("a,b")
	for f := 0; f < noiseDims; f++ {
		fmt.Fprintf(&b, ",n%d", f)
	}
	b.WriteByte('\n')
	for i := 0; i < n; i++ {
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		x, y := base+rng.NormFloat64()*0.03, base+rng.NormFloat64()*0.03
		if i == 0 {
			x, y = 0.25, 0.75
		}
		fmt.Fprintf(&b, "%.6f,%.6f", x, y)
		for f := 0; f < noiseDims; f++ {
			fmt.Fprintf(&b, ",%.6f", rng.Float64())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestRegisterIdempotentSameHash(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	csv := []byte(engineCSV(1, 80, 2))
	first, err := eng.RegisterCSV("d", csv, true)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replaced || first.N != 80 || first.D != 4 {
		t.Fatalf("first registration = %+v", first)
	}
	// Warm the caches, then re-register the identical payload: the same
	// hash must come back, nothing replaced, caches kept.
	if _, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "d", Points: []int{0}}); err != nil {
		t.Fatal(err)
	}
	warm := eng.PlaneStats().Entries
	if warm == 0 {
		t.Fatal("explain left no plane entries; the no-eviction assertion is vacuous")
	}
	again, err := eng.RegisterCSV("d", csv, true)
	if err != nil {
		t.Fatal(err)
	}
	if again.Replaced || again.Hash != first.Hash {
		t.Errorf("identical re-registration = %+v, want idempotent with hash %s", again, first.Hash)
	}
	if got := eng.PlaneStats().Entries; got != warm {
		t.Errorf("idempotent re-registration changed plane residency %d → %d", warm, got)
	}
}

func TestRegisterReplaceReleasesOldCaches(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	if _, err := eng.RegisterCSV("d", []byte(engineCSV(1, 80, 2)), true); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "d", Points: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if eng.PlaneStats().Entries == 0 {
		t.Fatal("explain left no plane entries")
	}
	repl, err := eng.RegisterCSV("d", []byte(engineCSV(2, 90, 2)), true)
	if err != nil {
		t.Fatal(err)
	}
	if !repl.Replaced {
		t.Error("different payload under same name did not report Replaced")
	}
	ps := eng.PlaneStats()
	if ps.Entries != 0 {
		t.Errorf("%d plane entries survived replacement, want 0 (old dataset forgotten)", ps.Entries)
	}
	if ps.Forgets == 0 {
		t.Error("replacement recorded no plane Forgets")
	}
	// The replaced dataset's memos are gone too: a fresh explain is a cold
	// run against the new payload.
	_, _, memo := eng.Stats()
	if memo.Entries != 0 {
		t.Errorf("%d score-memo entries survived replacement, want 0", memo.Entries)
	}
}

func TestEngineForgetReleasesDataset(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	if _, err := eng.RegisterCSV("d", []byte(engineCSV(1, 80, 2)), true); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "d", Points: []int{0}}); err != nil {
		t.Fatal(err)
	}
	eng.Forget("d")
	if n := eng.Datasets(); n != 0 {
		t.Errorf("%d datasets registered after Forget, want 0", n)
	}
	if n := eng.PlaneStats().Entries; n != 0 {
		t.Errorf("%d plane entries resident after Forget, want 0", n)
	}
	if _, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "d", Points: []int{0}}); statusCode(err) != 404 {
		t.Errorf("explain after Forget: %v, want 404", err)
	}
}

// statusCode extracts the StatusError code (0 for nil / non-status errors).
func statusCode(err error) int {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	return 0
}

func TestExplainRequestValidation(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	reg, err := eng.RegisterCSV("d", []byte(engineCSV(1, 80, 2)), true)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  ExplainRequest
		code int
	}{
		{"unknown dataset", ExplainRequest{Dataset: "nope", Points: []int{0}}, 404},
		{"no points", ExplainRequest{Dataset: "d"}, 400},
		{"point out of range", ExplainRequest{Dataset: "d", Points: []int{80}}, 400},
		{"negative point", ExplainRequest{Dataset: "d", Points: []int{-1}}, 400},
		{"dim too large", ExplainRequest{Dataset: "d", Points: []int{0}, Dim: 9}, 400},
		{"unknown detector", ExplainRequest{Dataset: "d", Points: []int{0}, Detector: "nope"}, 400},
		{"unknown algo", ExplainRequest{Dataset: "d", Points: []int{0}, Algo: "nope"}, 400},
		{"stale hash pin", ExplainRequest{Dataset: "d", Points: []int{0}, Hash: "deadbeef"}, 409},
	}
	for _, c := range cases {
		if _, err := eng.Explain(context.Background(), c.req); statusCode(err) != c.code {
			t.Errorf("%s: %v, want status %d", c.name, err, c.code)
		}
	}
	// The matching pin succeeds.
	if _, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "d", Points: []int{0}, Hash: reg.Hash}); err != nil {
		t.Errorf("matching hash pin rejected: %v", err)
	}
}

func TestExplainDeadline(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2})
	// Big enough that LOF over the full view cannot finish in 1 ms.
	if _, err := eng.RegisterCSV("big", []byte(engineCSV(1, 4000, 6)), true); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Explain(context.Background(), ExplainRequest{Dataset: "big", Points: []int{0}, TimeoutMS: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("1ms-deadline explain returned %v, want DeadlineExceeded", err)
	}
}

package summarize

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/subspace"
	"anex/internal/synth"
)

func testbed(t *testing.T, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "summarize-test",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   200,
		OutliersPerSubspace: 4,
		Seed:                seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

func TestLookOutFindsPlantedSubspaces(t *testing.T) {
	ds, gt := testbed(t, 1)
	lo := &LookOut{Detector: detector.NewLOF(15), Budget: 5}
	got, err := lo.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("budget not honoured: %d", len(got))
	}
	// Both planted subspaces must appear in the selected summary: each
	// maximises the scores of its own outliers.
	found := 0
	for _, want := range gt.AllSubspaces() {
		for _, s := range got {
			if s.Subspace.Equal(want) {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Errorf("summary %v missed planted subspaces %v", got, gt.AllSubspaces())
	}
}

func TestLookOutGreedyOrder(t *testing.T) {
	ds, gt := testbed(t, 2)
	lo := &LookOut{Detector: detector.NewLOF(15), Budget: 10}
	got, err := lo.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal gains are non-increasing along the greedy selection.
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score+1e-9 {
			t.Fatalf("marginal gain increased at %d: %v after %v", i, got[i].Score, got[i-1].Score)
		}
	}
	// All scores non-negative (shifted objective).
	for _, s := range got {
		if s.Score < 0 {
			t.Errorf("negative marginal gain %v", s.Score)
		}
	}
}

func TestLookOutGreedyIsOptimalOnFirstPick(t *testing.T) {
	// The first selected subspace must be the one maximising the sum of
	// shifted scores — verify against a brute-force scan.
	ds, gt := testbed(t, 3)
	det := detector.NewLOF(15)
	points := gt.Outliers()
	lo := &LookOut{Detector: det, Budget: 1}
	got, err := lo.Summarize(context.Background(), ds, points, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force: recompute sum per subspace (unshifted sums order the
	// same way because the shift is constant across candidates).
	bestSum := -1e18
	var bestSub subspace.Subspace
	enum := subspace.NewEnumerator(ds.D(), 2)
	for s := enum.Next(); s != nil; s = enum.Next() {
		scores, err := det.Scores(context.Background(), ds.View(s))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range points {
			sum += scores[p]
		}
		if sum > bestSum {
			bestSum = sum
			bestSub = s.Clone()
		}
	}
	if !got[0].Subspace.Equal(bestSub) {
		t.Errorf("first pick %v, brute-force best %v", got[0].Subspace, bestSub)
	}
}

func TestLookOutWithNegativeScores(t *testing.T) {
	// FastABOD emits negative scores; the objective shift must keep the
	// greedy selection well-defined.
	ds, gt := testbed(t, 4)
	lo := &LookOut{Detector: detector.NewFastABOD(10), Budget: 3}
	got, err := lo.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d selected", len(got))
	}
	for _, s := range got {
		if s.Score < 0 {
			t.Errorf("negative gain %v after shifting", s.Score)
		}
	}
}

func TestLookOutErrors(t *testing.T) {
	ds, gt := testbed(t, 5)
	lo := NewLookOut(detector.NewLOF(15))
	if _, err := lo.Summarize(context.Background(), ds, nil, 2); err == nil {
		t.Error("no points should fail")
	}
	if _, err := lo.Summarize(context.Background(), ds, []int{-1}, 2); err == nil {
		t.Error("bad point should fail")
	}
	if _, err := lo.Summarize(context.Background(), ds, gt.Outliers(), 99); err == nil {
		t.Error("bad dim should fail")
	}
	noDet := &LookOut{}
	if _, err := noDet.Summarize(context.Background(), ds, gt.Outliers(), 2); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestLookOutBudgetClamp(t *testing.T) {
	ds, gt := testbed(t, 6)
	lo := &LookOut{Detector: detector.NewLOF(15), Budget: 10_000}
	got, err := lo.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	want := int(subspace.Count(ds.D(), 2))
	if len(got) != want {
		t.Errorf("selected %d, want all %d candidates", len(got), want)
	}
}

func TestHiCSContrastRanksPlantedPairsFirst(t *testing.T) {
	ds, gt := testbed(t, 7)
	h := &HiCS{Detector: detector.NewLOF(15), MCIterations: 60, Seed: 3, FixedDim: true}
	found, err := h.SearchContrastSubspaces(context.Background(), ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) == 0 {
		t.Fatal("no subspaces found")
	}
	// The two planted correlated pairs must dominate the contrast ranking.
	topKeys := map[string]bool{}
	for _, s := range found[:min(4, len(found))] {
		topKeys[s.Subspace.Key()] = true
	}
	for _, want := range gt.AllSubspaces() {
		if !topKeys[want.Key()] {
			t.Errorf("planted %v not in top-4 contrast: %v", want, found[:min(4, len(found))])
		}
	}
}

func TestHiCSSummarizeFindsPlanted(t *testing.T) {
	ds, gt := testbed(t, 8)
	h := &HiCS{Detector: detector.NewLOF(15), MCIterations: 60, Seed: 5, FixedDim: true, TopK: 10}
	got, err := h.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, want := range gt.AllSubspaces() {
		for _, s := range got[:min(4, len(got))] {
			if s.Subspace.Equal(want) {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Errorf("HiCS top-4 %v missed planted %v", got[:min(4, len(got))], gt.AllSubspaces())
	}
}

func TestHiCSFixedDimOutput(t *testing.T) {
	ds, gt := testbed(t, 9)
	h := NewHiCSFX(detector.NewLOF(15), 1)
	h.MCIterations = 30
	got, err := h.Summarize(context.Background(), ds, gt.Outliers(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s.Subspace.Dim() != 3 {
			t.Errorf("HiCS_FX returned %dd subspace %v", s.Subspace.Dim(), s.Subspace)
		}
	}
}

func TestHiCSVariableDimKeepsBestAcrossStages(t *testing.T) {
	ds, _ := testbed(t, 10)
	h := NewHiCS(detector.NewLOF(15), 2)
	h.MCIterations = 30
	found, err := h.SearchContrastSubspaces(context.Background(), ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	dims := map[int]bool{}
	for _, s := range found {
		dims[s.Subspace.Dim()] = true
	}
	if !dims[2] {
		t.Error("variable-dim HiCS lost its 2d subspaces")
	}
}

func TestHiCSDeterminism(t *testing.T) {
	ds, gt := testbed(t, 11)
	run := func() []core.ScoredSubspace {
		h := &HiCS{Detector: detector.NewLOF(15), MCIterations: 20, Seed: 7, FixedDim: true}
		got, err := h.Summarize(context.Background(), ds, gt.Outliers(), 2)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !a[i].Subspace.Equal(b[i].Subspace) || a[i].Score != b[i].Score {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestHiCSKSContrast(t *testing.T) {
	ds, gt := testbed(t, 12)
	h := &HiCS{Detector: detector.NewLOF(15), MCIterations: 60, Seed: 3, FixedDim: true, Test: KSTest}
	found, err := h.SearchContrastSubspaces(context.Background(), ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	topKeys := map[string]bool{}
	for _, s := range found[:min(4, len(found))] {
		topKeys[s.Subspace.Key()] = true
	}
	hits := 0
	for _, want := range gt.AllSubspaces() {
		if topKeys[want.Key()] {
			hits++
		}
	}
	if hits < 1 {
		t.Errorf("KS contrast found none of the planted subspaces in top-4")
	}
}

func TestHiCSErrors(t *testing.T) {
	ds, gt := testbed(t, 13)
	h := NewHiCS(detector.NewLOF(15), 1)
	if _, err := h.Summarize(context.Background(), ds, gt.Outliers(), 1); err == nil {
		t.Error("dim < 2 should fail")
	}
	noDet := &HiCS{}
	if _, err := noDet.Summarize(context.Background(), ds, gt.Outliers(), 2); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestContrastNoiseVsPlanted(t *testing.T) {
	ds, gt := testbed(t, 14)
	rng := rand.New(rand.NewSource(1))
	est := newContrastEstimator(ds, 0.1, 80, WelchTest, rng)
	planted := gt.AllSubspaces()[0]
	noisePair := subspace.New(ds.D()-1, ds.D()-2)
	cPlanted := est.contrast(planted)
	cNoise := est.contrast(noisePair)
	if cPlanted <= cNoise {
		t.Errorf("planted contrast %v not above noise contrast %v", cPlanted, cNoise)
	}
	if cPlanted < 0.5 {
		t.Errorf("planted contrast %v unexpectedly low", cPlanted)
	}
	if deg := est.contrast(subspace.New(0)); deg != 0 {
		t.Errorf("1d contrast = %v, want 0", deg)
	}
}

func TestContrastTestString(t *testing.T) {
	if WelchTest.String() != "Welch" || KSTest.String() != "KS" {
		t.Error("ContrastTest String broken")
	}
}

func TestPruneDominated(t *testing.T) {
	a := core.ScoredSubspace{Subspace: subspace.New(0, 1), Score: 0.5}
	super := core.ScoredSubspace{Subspace: subspace.New(0, 1, 2), Score: 0.9}
	unrelated := core.ScoredSubspace{Subspace: subspace.New(3, 4), Score: 0.4}
	out := pruneDominated([]core.ScoredSubspace{a, super, unrelated})
	if len(out) != 2 {
		t.Fatalf("pruned to %v", out)
	}
	for _, s := range out {
		if s.Subspace.Equal(a.Subspace) {
			t.Error("dominated subspace survived")
		}
	}
	// A superset with LOWER contrast does not dominate.
	weakSuper := core.ScoredSubspace{Subspace: subspace.New(0, 1, 2), Score: 0.1}
	out = pruneDominated([]core.ScoredSubspace{a, weakSuper})
	if len(out) != 2 {
		t.Errorf("weak superset should not dominate: %v", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPropertyContrastBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(nRaw, dRaw uint8, seed int64) bool {
		n := int(nRaw%60) + 20
		d := int(dRaw%4) + 2
		cols := make([][]float64, d)
		for fi := range cols {
			cols[fi] = make([]float64, n)
			for i := range cols[fi] {
				cols[fi][i] = float64(rng.Intn(5)) / 4
			}
		}
		ds, err := dataset.New("prop", cols, nil)
		if err != nil {
			return false
		}
		est := newContrastEstimator(ds, 0.2, 20, WelchTest, rand.New(rand.NewSource(seed)))
		c := est.contrast(subspace.New(0, 1))
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertySummariesHaveNoDuplicates(t *testing.T) {
	ds, gt := testbed(t, 41)
	det := detector.NewCached(detector.NewLOF(15))
	summarizers := []core.Summarizer{
		&LookOut{Detector: det, Budget: 15},
		&HiCS{Detector: det, MCIterations: 20, Seed: 1, FixedDim: true, TopK: 15},
		NewGroupSummarizer(det),
	}
	for _, s := range summarizers {
		list, err := s.Summarize(context.Background(), ds, gt.Outliers(), 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		seen := map[string]bool{}
		for _, e := range list {
			if seen[e.Subspace.Key()] {
				t.Errorf("%s returned duplicate %v", s.Name(), e.Subspace)
			}
			seen[e.Subspace.Key()] = true
			if e.Subspace.Dim() != 2 {
				t.Errorf("%s returned %dd subspace", s.Name(), e.Subspace.Dim())
			}
			if err := e.Subspace.Validate(ds.D()); err != nil {
				t.Errorf("%s: %v", s.Name(), err)
			}
		}
	}
}

package summarize

import (
	"context"
	"fmt"
	"sort"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// Group explanation extends the testbed toward the paper's future-work
// reference to Macha & Akoglu (DMKD 2018): instead of one flat summary for
// all outliers, anomalous points are PARTITIONED into groups such that each
// group shares a single characterizing subspace that separates its members
// from the inliers. Recurring anomaly patterns (all faults of one coupled
// sensor pair, say) then surface as one group with one explanation, rather
// than being interleaved in a ranked list.

// Group is one set of outliers sharing a characterizing subspace.
type Group struct {
	// Points are the member outliers, sorted ascending.
	Points []int
	// Subspace characterizes the group, with the mean standardised
	// member score as Score.
	Subspace core.ScoredSubspace
}

// GroupSummarizer partitions outliers into groups by their best explaining
// subspace of a fixed dimensionality. It exhaustively scores all candidate
// subspaces (like LookOut), assigns each point to its argmax subspace, and
// merges assignments into groups; tiny groups are re-assigned to their
// members' next-best shared subspace when possible.
type GroupSummarizer struct {
	// Detector supplies the outlyingness scores.
	Detector core.Detector
	// MinGroupSize merges smaller assignments into their members'
	// next-best groups when possible; zero means 1 (no merging).
	MinGroupSize int
	// MaxCandidates bounds the exhaustive enumeration; zero means the
	// LookOut limit.
	MaxCandidates int64
}

// NewGroupSummarizer returns a group summarizer with the given detector.
func NewGroupSummarizer(det core.Detector) *GroupSummarizer {
	return &GroupSummarizer{Detector: det}
}

func (g *GroupSummarizer) Name() string { return "Groups" }

func (g *GroupSummarizer) maxCandidates() int64 {
	if g.MaxCandidates <= 0 {
		return maxLookOutCandidates
	}
	return g.MaxCandidates
}

// GroupOutliers partitions the points into explained groups, ordered by
// descending group size and then score. The candidate enumeration observes
// ctx between subspaces, so cancellation aborts with ctx's error.
func (g *GroupSummarizer) GroupOutliers(ctx context.Context, ds *dataset.Dataset, points []int, targetDim int) ([]Group, error) {
	if err := core.ValidateSummarizeArgs(ds, points, targetDim); err != nil {
		return nil, fmt.Errorf("groups: %w", err)
	}
	if g.Detector == nil {
		return nil, fmt.Errorf("groups: nil detector")
	}
	total := subspace.Count(ds.D(), targetDim)
	if total > g.maxCandidates() {
		return nil, fmt.Errorf("groups: C(%d,%d)=%d subspaces exceeds limit %d", ds.D(), targetDim, total, g.maxCandidates())
	}

	// Standardised score of every point of interest in every candidate.
	subs := make([]subspace.Subspace, 0, total)
	z := make([][]float64, 0, total) // z[candidate][pointIdx]
	enum := subspace.NewEnumerator(ds.D(), targetDim)
	for s := enum.Next(); s != nil; s = enum.Next() {
		sub := s.Clone()
		raw, err := g.Detector.Scores(ctx, ds.View(sub))
		if err != nil {
			return nil, err
		}
		all := stats.ZScores(raw)
		row := make([]float64, len(points))
		for j, p := range points {
			row[j] = all[p]
		}
		subs = append(subs, sub)
		z = append(z, row)
	}

	// Assign each point to its argmax candidate.
	assignment := make([]int, len(points))
	for j := range points {
		best := 0
		for c := range subs {
			if z[c][j] > z[best][j] {
				best = c
			}
		}
		assignment[j] = best
	}

	minSize := g.MinGroupSize
	if minSize < 1 {
		minSize = 1
	}
	// Iteratively dissolve undersized groups into their members'
	// next-best candidates that already hold a viable group.
	for {
		counts := make(map[int]int)
		for _, c := range assignment {
			counts[c]++
		}
		moved := false
		for j, c := range assignment {
			if counts[c] >= minSize {
				continue
			}
			// Next-best candidate whose group is already viable.
			bestAlt, bestScore := -1, 0.0
			for cand := range subs {
				if cand == c || counts[cand] < minSize {
					continue
				}
				if bestAlt == -1 || z[cand][j] > bestScore {
					bestAlt, bestScore = cand, z[cand][j]
				}
			}
			if bestAlt >= 0 {
				counts[c]--
				counts[bestAlt]++
				assignment[j] = bestAlt
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	// Materialise the groups.
	members := make(map[int][]int)
	for j, c := range assignment {
		members[c] = append(members[c], points[j])
	}
	var groups []Group
	for c, pts := range members {
		sort.Ints(pts)
		var mean float64
		for j, p := range points {
			if assignment[j] == c {
				_ = p
				mean += z[c][j]
			}
		}
		mean /= float64(len(pts))
		groups = append(groups, Group{
			Points:   pts,
			Subspace: core.ScoredSubspace{Subspace: subs[c], Score: mean},
		})
	}
	sort.Slice(groups, func(a, b int) bool {
		if len(groups[a].Points) != len(groups[b].Points) {
			return len(groups[a].Points) > len(groups[b].Points)
		}
		if groups[a].Subspace.Score != groups[b].Subspace.Score {
			return groups[a].Subspace.Score > groups[b].Subspace.Score
		}
		return groups[a].Subspace.Subspace.Key() < groups[b].Subspace.Subspace.Key()
	})
	return groups, nil
}

// Summarize adapts the grouping to the core.Summarizer contract: it returns
// each group's characterizing subspace, ordered as GroupOutliers orders the
// groups, so GroupSummarizer can stand in wherever LookOut or HiCS do.
func (g *GroupSummarizer) Summarize(ctx context.Context, ds *dataset.Dataset, points []int, targetDim int) ([]core.ScoredSubspace, error) {
	groups, err := g.GroupOutliers(ctx, ds, points, targetDim)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(groups))
	out := make([]core.ScoredSubspace, 0, len(groups))
	for _, grp := range groups {
		if key := grp.Subspace.Subspace.Key(); !seen[key] {
			seen[key] = true
			out = append(out, grp.Subspace)
		}
	}
	return out, nil
}

var _ core.Summarizer = (*GroupSummarizer)(nil)

package summarize

import (
	"context"
	"math"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/subspace"
)

// tableDetector returns scripted scores per subspace key for a small set of
// "interest" points (everything else scores 0).
type tableDetector struct {
	scores map[string]map[int]float64 // key → point → score
}

func (d *tableDetector) Name() string { return "table" }

func (d *tableDetector) Scores(_ context.Context, v *dataset.View) ([]float64, error) {
	out := make([]float64, v.N())
	for p, s := range d.scores[v.Subspace().Key()] {
		out[p] = s
	}
	return out, nil
}

func unitDataset(t testing.TB, n, d int) *dataset.Dataset {
	t.Helper()
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = float64((i + f) % 5)
		}
	}
	ds, err := dataset.New("unit", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// naiveGreedy reimplements LookOut's objective with plain re-evaluation,
// as the reference for the CELF implementation.
func naiveGreedy(det core.Detector, ds *dataset.Dataset, points []int, dim, budget int) []string {
	type cand struct {
		key    string
		scores []float64
	}
	var cands []cand
	var minScore float64
	// Enumerate all dim-subspaces via the real detector calls.
	enumKeys := allKeys(ds.D(), dim)
	for _, key := range enumKeys {
		sub, err := subspace.Parse(key)
		if err != nil {
			panic(err)
		}
		all, err := det.Scores(context.Background(), ds.View(sub))
		if err != nil {
			panic(err)
		}
		row := make([]float64, len(points))
		for j, p := range points {
			row[j] = all[p]
			if all[p] < minScore {
				minScore = all[p]
			}
		}
		cands = append(cands, cand{key: key, scores: row})
	}
	for _, c := range cands {
		for j := range c.scores {
			c.scores[j] -= minScore
		}
	}
	best := make([]float64, len(points))
	var selected []string
	used := map[int]bool{}
	for len(selected) < budget && len(selected) < len(cands) {
		bestGain, bestIdx := -1.0, -1
		for i, c := range cands {
			if used[i] {
				continue
			}
			var gain float64
			for j, s := range c.scores {
				if s > best[j] {
					gain += s - best[j]
				}
			}
			if gain > bestGain || (gain == bestGain && bestIdx >= 0 && c.key < cands[bestIdx].key) {
				bestGain, bestIdx = gain, i
			}
		}
		used[bestIdx] = true
		for j, s := range cands[bestIdx].scores {
			if s > best[j] {
				best[j] = s
			}
		}
		selected = append(selected, cands[bestIdx].key)
	}
	return selected
}

func TestLookOutCELFMatchesNaiveGreedy(t *testing.T) {
	ds := unitDataset(t, 12, 5)
	points := []int{0, 1, 2}
	det := &tableDetector{scores: map[string]map[int]float64{
		"0,1": {0: 9, 1: 1, 2: 0},
		"0,2": {0: 3, 1: 8, 2: 2},
		"1,2": {0: 2, 1: 2, 2: 7},
		"2,3": {0: 8, 1: 7, 2: 6},
		"3,4": {0: 1, 1: 1, 2: 1},
	}}
	lo := &LookOut{Detector: det, Budget: 4}
	got, err := lo.Summarize(context.Background(), ds, points, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveGreedy(det, ds, points, 2, 4)
	if len(got) != len(want) {
		t.Fatalf("CELF selected %d, naive %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Subspace.Key() != want[i] {
			t.Errorf("selection %d: CELF %s vs naive %s", i, got[i].Subspace.Key(), want[i])
		}
	}
	// First pick must be {2,3}: total 21 beats {0,1}'s 10 etc.
	if got[0].Subspace.Key() != "2,3" {
		t.Errorf("first pick %s, want 2,3", got[0].Subspace.Key())
	}
}

func TestLookOutObjectiveIsMonotoneAndDiminishing(t *testing.T) {
	ds := unitDataset(t, 12, 5)
	points := []int{0, 1, 2, 3}
	det := &tableDetector{scores: map[string]map[int]float64{
		"0,1": {0: 5, 1: 4},
		"0,2": {2: 6},
		"1,3": {3: 3, 0: 2},
		"2,4": {1: 1, 2: 1, 3: 1},
	}}
	lo := &LookOut{Detector: det, Budget: 10}
	got, err := lo.Summarize(context.Background(), ds, points, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal gains non-negative and non-increasing (submodularity).
	prev := math.Inf(1)
	for i, s := range got {
		if s.Score < 0 {
			t.Errorf("gain %d negative: %v", i, s.Score)
		}
		if s.Score > prev+1e-9 {
			t.Errorf("gain %d = %v increased above %v", i, s.Score, prev)
		}
		prev = s.Score
	}
}

func allKeys(d, k int) []string {
	var out []string
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			key := ""
			for i, f := range cur {
				if i > 0 {
					key += ","
				}
				key += itoa(f)
			}
			out = append(out, key)
			return
		}
		for f := start; f < d; f++ {
			rec(f+1, append(cur, f))
		}
	}
	rec(0, nil)
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	return digits
}

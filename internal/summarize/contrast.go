package summarize

import (
	"math"
	"math/rand"
	"sort"

	"anex/internal/dataset"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// ContrastTest selects the two-sample statistical test HiCS uses to measure
// subspace contrast (footnote 2 of the paper).
type ContrastTest int

const (
	// WelchTest uses Welch's two-sample t-test (the paper's setting).
	WelchTest ContrastTest = iota
	// KSTest uses the two-sample Kolmogorov–Smirnov test.
	KSTest
)

func (t ContrastTest) String() string {
	if t == KSTest {
		return "KS"
	}
	return "Welch"
}

// contrastEstimator computes Monte-Carlo subspace contrast over one
// dataset. It owns the per-feature sort orders, which are computed once and
// shared across the thousands of subspace evaluations of a HiCS run.
type contrastEstimator struct {
	ds      *dataset.Dataset
	sortIdx [][]int // sortIdx[f] = point indices ordered by feature f value
	alpha   float64
	mc      int
	test    ContrastTest
	rng     *rand.Rand

	mask []int // scratch: per-point slice-membership counter
}

func newContrastEstimator(ds *dataset.Dataset, alpha float64, mcIterations int, test ContrastTest, rng *rand.Rand) *contrastEstimator {
	e := &contrastEstimator{
		ds:    ds,
		alpha: alpha,
		mc:    mcIterations,
		test:  test,
		rng:   rng,
		mask:  make([]int, ds.N()),
	}
	e.sortIdx = make([][]int, ds.D())
	for f := 0; f < ds.D(); f++ {
		idx := make([]int, ds.N())
		for i := range idx {
			idx[i] = i
		}
		col := ds.Column(f)
		sort.Slice(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
		e.sortIdx[f] = idx
	}
	return e
}

// minConditionalSample is the smallest conditional sample an iteration must
// produce to contribute; smaller intersections carry no statistical signal.
const minConditionalSample = 5

// contrast estimates the contrast of subspace s: the average, over MC
// iterations, of (1 − p-value) of a two-sample test comparing the marginal
// distribution of a randomly chosen test feature against its distribution
// conditioned on random adjacent slices of the remaining features. High
// contrast means the features are strongly dependent — the HiCS signal for
// subspaces likely to separate outliers from inliers.
func (e *contrastEstimator) contrast(s subspace.Subspace) float64 {
	m := s.Dim()
	if m < 2 {
		return 0
	}
	n := e.ds.N()
	// Per-dimension slice size so the expected conditional sample is α·n:
	// each of the m−1 conditioning features keeps an α^(1/(m−1)) fraction.
	sliceFrac := math.Pow(e.alpha, 1/float64(m-1))
	sliceSize := int(math.Ceil(sliceFrac * float64(n)))
	if sliceSize < 1 {
		sliceSize = 1
	}
	if sliceSize > n {
		sliceSize = n
	}

	var sum float64
	valid := 0
	cond := make([]float64, 0, sliceSize)
	for iter := 0; iter < e.mc; iter++ {
		testDim := s[e.rng.Intn(m)]
		// Mark the points inside every conditioning slice.
		needed := 0
		for _, f := range s {
			if f == testDim {
				continue
			}
			needed++
			idx := e.sortIdx[f]
			start := e.rng.Intn(n - sliceSize + 1)
			for _, p := range idx[start : start+sliceSize] {
				e.mask[p]++
			}
		}
		// Collect the conditional sample: points inside all slices.
		cond = cond[:0]
		col := e.ds.Column(testDim)
		for p := 0; p < n; p++ {
			if e.mask[p] == needed {
				cond = append(cond, col[p])
			}
			e.mask[p] = 0
		}
		if len(cond) < minConditionalSample {
			continue
		}
		var p float64
		switch e.test {
		case KSTest:
			p = stats.KolmogorovSmirnov(cond, col).P
		default:
			p = stats.WelchTTest(cond, col).P
		}
		sum += 1 - p
		valid++
	}
	if valid == 0 {
		return 0
	}
	return sum / float64(valid)
}

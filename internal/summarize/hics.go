package summarize

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// HiCS defaults from the paper's experimental settings (Section 3.1).
const (
	DefaultHiCSCandidateCutoff = 400
	DefaultHiCSAlpha           = 0.1
	DefaultHiCSMCIterations    = 100
	DefaultHiCSTopK            = 100
)

// HiCS is the High Contrast Subspaces summariser of Keller et al. (ICDE
// 2012). Unlike the other three algorithms, its subspace search is fully
// decoupled from the outlier detector: it searches stage-wise for subspaces
// whose features are strongly statistically dependent (high contrast,
// estimated by Monte-Carlo slice sampling), and uses the detector only to
// rank the subspaces it retrieves against the points of interest.
//
// With FixedDim set (the paper's HiCS_FX variant) the search stops at the
// requested dimensionality and only final-stage subspaces are returned,
// making results comparable with LookOut's.
type HiCS struct {
	// Detector ranks the retrieved subspaces; it plays no role in the
	// search itself.
	Detector core.Detector
	// CandidateCutoff is the number of candidates kept per stage; zero
	// means 400.
	CandidateCutoff int
	// Alpha is the expected conditional-sample fraction of the Monte-Carlo
	// slice test; zero means 0.1.
	Alpha float64
	// MCIterations is the number of Monte-Carlo iterations per subspace;
	// zero means 100.
	MCIterations int
	// Test selects Welch (default) or Kolmogorov–Smirnov contrast.
	Test ContrastTest
	// FixedDim selects the HiCS_FX variant: stop at the target
	// dimensionality and return only subspaces of exactly that size.
	FixedDim bool
	// TopK bounds the returned list; zero means 100.
	TopK int
	// Seed makes the Monte-Carlo sampling deterministic.
	Seed int64
	// RankByMean ranks the retrieved subspaces by the MEAN standardised
	// score of the points of interest instead of the maximum. The default
	// maximum matches summarization semantics (see rank); the mean is
	// kept for ablation — it drowns subspaces relevant to small groups.
	RankByMean bool
}

// NewHiCS returns a HiCS summariser with the paper's settings.
func NewHiCS(det core.Detector, seed int64) *HiCS {
	return &HiCS{Detector: det, Seed: seed}
}

// NewHiCSFX returns the fixed-dimensionality HiCS_FX variant.
func NewHiCSFX(det core.Detector, seed int64) *HiCS {
	return &HiCS{Detector: det, Seed: seed, FixedDim: true}
}

func (h *HiCS) Name() string {
	if h.FixedDim {
		return "HiCS_FX"
	}
	return "HiCS"
}

func (h *HiCS) cutoff() int {
	if h.CandidateCutoff <= 0 {
		return DefaultHiCSCandidateCutoff
	}
	return h.CandidateCutoff
}

func (h *HiCS) alpha() float64 {
	if h.Alpha <= 0 || h.Alpha >= 1 {
		return DefaultHiCSAlpha
	}
	return h.Alpha
}

func (h *HiCS) mcIterations() int {
	if h.MCIterations <= 0 {
		return DefaultHiCSMCIterations
	}
	return h.MCIterations
}

func (h *HiCS) topK() int {
	if h.TopK <= 0 {
		return DefaultHiCSTopK
	}
	return h.TopK
}

// Summarize searches high-contrast subspaces up to targetDim and returns
// them ranked for the given points of interest by the detector. Both the
// contrast search and the ranking observe ctx between subspaces.
func (h *HiCS) Summarize(ctx context.Context, ds *dataset.Dataset, points []int, targetDim int) ([]core.ScoredSubspace, error) {
	if err := core.ValidateSummarizeArgs(ds, points, targetDim); err != nil {
		return nil, fmt.Errorf("hics: %w", err)
	}
	if h.Detector == nil {
		return nil, fmt.Errorf("hics: nil detector")
	}
	if targetDim < 2 {
		return nil, fmt.Errorf("hics: target dimensionality must be ≥ 2, got %d", targetDim)
	}
	candidates, err := h.SearchContrastSubspaces(ctx, ds, targetDim)
	if err != nil {
		return nil, err
	}
	ranked, err := h.rank(ctx, ds, points, candidates)
	if err != nil {
		return nil, err
	}
	return core.TopK(ranked, h.topK()), nil
}

// SearchContrastSubspaces runs the detector-independent part of HiCS: the
// stage-wise search for high-contrast subspaces up to maxDim. Results carry
// the contrast as score, best first. Exposed separately so the contrast
// search can be benchmarked and reused without a detector. The search
// observes ctx between contrast computations, so cancellation aborts with
// ctx's error.
func (h *HiCS) SearchContrastSubspaces(ctx context.Context, ds *dataset.Dataset, maxDim int) ([]core.ScoredSubspace, error) {
	rng := rand.New(rand.NewSource(h.Seed))
	est := newContrastEstimator(ds, h.alpha(), h.mcIterations(), h.Test, rng)
	cutoff := h.cutoff()
	done := ctx.Done()

	// Stage 1: all 2d subspaces, exhaustively.
	var stage []core.ScoredSubspace
	enum := subspace.NewEnumerator(ds.D(), 2)
	for s := enum.Next(); s != nil; s = enum.Next() {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		sub := s.Clone()
		stage = append(stage, core.ScoredSubspace{Subspace: sub, Score: est.contrast(sub)})
	}
	core.SortByScore(stage)
	stage = core.TopK(stage, cutoff)

	global := make([]core.ScoredSubspace, len(stage))
	copy(global, stage)

	// Later stages: extend the high-contrast candidates by one feature.
	for dim := 3; dim <= maxDim; dim++ {
		seen := make(map[string]bool)
		var next []core.ScoredSubspace
		for _, cur := range stage {
			for f := 0; f < ds.D(); f++ {
				if cur.Subspace.Contains(f) {
					continue
				}
				cand := cur.Subspace.With(f)
				key := cand.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				if done != nil {
					select {
					case <-done:
						return nil, ctx.Err()
					default:
					}
				}
				next = append(next, core.ScoredSubspace{Subspace: cand, Score: est.contrast(cand)})
			}
		}
		core.SortByScore(next)
		stage = core.TopK(next, cutoff)
		if h.FixedDim {
			continue
		}
		// Keller et al.'s redundancy pruning: drop a subspace when a kept
		// superset has strictly higher contrast.
		global = pruneDominated(append(global, stage...))
		core.SortByScore(global)
		global = core.TopK(global, cutoff)
	}

	if h.FixedDim {
		return stage, nil
	}
	return global, nil
}

// pruneDominated removes subspaces dominated by a superset with higher
// contrast.
func pruneDominated(list []core.ScoredSubspace) []core.ScoredSubspace {
	out := make([]core.ScoredSubspace, 0, len(list))
	for i, s := range list {
		dominated := false
		for j, t := range list {
			if i == j {
				continue
			}
			if t.Subspace.Dim() > s.Subspace.Dim() && t.Subspace.ContainsAll(s.Subspace) && t.Score > s.Score {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	return out
}

// rank orders the retrieved subspaces by the MAXIMUM standardised detector
// score any point of interest attains in them — the paper's "HiCS employs a
// detector to rank the retrieved subspaces". The maximum (rather than the
// mean) matches the summarization semantics of the testbed: a subspace is a
// good summary member when it maximally exposes at least one of the points,
// even if it explains only a few of them — exactly LookOut's coverage
// objective. A mean would drown subspaces relevant to small outlier groups.
func (h *HiCS) rank(ctx context.Context, ds *dataset.Dataset, points []int, candidates []core.ScoredSubspace) ([]core.ScoredSubspace, error) {
	out := make([]core.ScoredSubspace, 0, len(candidates))
	for _, c := range candidates {
		scores, err := h.Detector.Scores(ctx, ds.View(c.Subspace))
		if err != nil {
			return nil, err
		}
		z := stats.ZScores(scores)
		var score float64
		if h.RankByMean {
			for _, p := range points {
				score += z[p]
			}
			score /= float64(len(points))
		} else {
			score = math.Inf(-1)
			for _, p := range points {
				if z[p] > score {
					score = z[p]
				}
			}
		}
		out = append(out, core.ScoredSubspace{Subspace: c.Subspace, Score: score})
	}
	core.SortByScore(out)
	return out, nil
}

var _ core.Summarizer = (*HiCS)(nil)

// Package summarize implements the two explanation-summarization algorithms
// of the paper (Section 2.3): LookOut, which greedily maximises a
// submodular coverage objective over exhaustively enumerated subspaces, and
// HiCS, which searches for high-contrast subspaces of correlated features
// with a Monte-Carlo statistical test and uses a detector only to rank its
// output. Both rank subspaces that jointly separate a set of outliers from
// the inliers.
package summarize

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/subspace"
)

// DefaultLookOutBudget is the number of subspaces LookOut selects
// (Section 3.1 of the paper).
const DefaultLookOutBudget = 100

// maxLookOutCandidates caps the exhaustive enumeration; the paper itself
// stops at ~900K subspaces (4d explanations of a 70d dataset).
const maxLookOutCandidates = 4_000_000

// LookOut is the explanation summariser of Gupta et al. (ECML/PKDD 2018).
// It scores every subspace of the requested dimensionality with an
// off-the-shelf detector and then greedily selects a budget of subspaces
// maximising the submodular objective
//
//	f(S_list) = Σ_{p ∈ P} max_{s ∈ S_list} score(p, s),
//
// which the greedy algorithm approximates within 1−1/e (Nemhauser–Wolsey).
// The implementation uses CELF lazy evaluation: marginal gains only shrink
// as the selection grows, so stale heap entries are re-evaluated on demand
// instead of recomputing every gain each round.
type LookOut struct {
	// Detector supplies the outlyingness scores.
	Detector core.Detector
	// Budget is the number of subspaces to select; zero means 100.
	Budget int
}

// NewLookOut returns a LookOut summariser with the paper's settings.
func NewLookOut(det core.Detector) *LookOut { return &LookOut{Detector: det} }

func (l *LookOut) Name() string { return "LookOut" }

func (l *LookOut) budget() int {
	if l.Budget <= 0 {
		return DefaultLookOutBudget
	}
	return l.Budget
}

// Summarize returns up to Budget subspaces of exactly targetDim in greedy
// selection order; each score is the marginal gain the subspace contributed
// when selected. The enumeration phase observes ctx between candidate
// subspaces, so cancellation aborts with ctx's error.
func (l *LookOut) Summarize(ctx context.Context, ds *dataset.Dataset, points []int, targetDim int) ([]core.ScoredSubspace, error) {
	if err := core.ValidateSummarizeArgs(ds, points, targetDim); err != nil {
		return nil, fmt.Errorf("lookout: %w", err)
	}
	if l.Detector == nil {
		return nil, fmt.Errorf("lookout: nil detector")
	}
	total := subspace.Count(ds.D(), targetDim)
	if total > maxLookOutCandidates {
		return nil, fmt.Errorf("lookout: C(%d,%d)=%d subspaces exceeds limit %d", ds.D(), targetDim, total, maxLookOutCandidates)
	}

	// Phase 1: exhaustively score every candidate subspace for the points
	// of interest.
	nPoints := len(points)
	subs := make([]subspace.Subspace, 0, total)
	scores := make([]float64, 0, int(total)*nPoints) // flat candidate-major matrix
	enum := subspace.NewEnumerator(ds.D(), targetDim)
	globalMin := math.Inf(1)
	for s := enum.Next(); s != nil; s = enum.Next() {
		sub := s.Clone()
		all, err := l.Detector.Scores(ctx, ds.View(sub))
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		for _, p := range points {
			v := all[p]
			scores = append(scores, v)
			if v < globalMin {
				globalMin = v
			}
		}
	}
	// The objective requires non-negative scores (property (i) of the
	// paper); detectors like FastABOD emit negative values, so shift the
	// whole score matrix to a zero minimum. Shifting by a constant does
	// not change which subspace maximises any point's score.
	if globalMin < 0 {
		for i := range scores {
			scores[i] -= globalMin
		}
	}

	// Phase 2: CELF greedy selection.
	best := make([]float64, nPoints) // current per-point maxima, f contribution
	initialGain := func(c int) float64 {
		var g float64
		for j := 0; j < nPoints; j++ {
			g += scores[c*nPoints+j]
		}
		return g
	}
	pq := make(celfQueue, len(subs))
	for c := range subs {
		pq[c] = &celfEntry{candidate: c, gain: initialGain(c), round: 0}
	}
	heap.Init(&pq)

	budget := l.budget()
	if budget > len(subs) {
		budget = len(subs)
	}
	selected := make([]core.ScoredSubspace, 0, budget)
	round := 0
	for len(selected) < budget && pq.Len() > 0 {
		top := pq[0]
		if top.round != round {
			// Stale bound: recompute the true marginal gain and reinsert.
			var g float64
			base := top.candidate * nPoints
			for j := 0; j < nPoints; j++ {
				if s := scores[base+j]; s > best[j] {
					g += s - best[j]
				}
			}
			top.gain = g
			top.round = round
			heap.Fix(&pq, 0)
			continue
		}
		heap.Pop(&pq)
		base := top.candidate * nPoints
		for j := 0; j < nPoints; j++ {
			if s := scores[base+j]; s > best[j] {
				best[j] = s
			}
		}
		selected = append(selected, core.ScoredSubspace{Subspace: subs[top.candidate], Score: top.gain})
		round++
	}
	return selected, nil
}

// celfEntry is a lazily evaluated marginal-gain bound for one candidate.
type celfEntry struct {
	candidate int
	gain      float64
	round     int // selection round the gain was computed at
	index     int
}

type celfQueue []*celfEntry

func (q celfQueue) Len() int { return len(q) }
func (q celfQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].candidate < q[j].candidate
}
func (q celfQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *celfQueue) Push(x any) {
	e := x.(*celfEntry)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *celfQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

var _ core.Summarizer = (*LookOut)(nil)

package summarize

import (
	"context"
	"testing"

	"anex/internal/detector"
	"anex/internal/synth"
)

func TestGroupSummarizerRecoversPlantedGroups(t *testing.T) {
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "groups-test",
		TotalDims:           10,
		SubspaceDims:        []int{2, 2},
		N:                   250,
		OutliersPerSubspace: 5,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupSummarizer(detector.NewCached(detector.NewLOF(15)))
	g.MinGroupSize = 2
	groups, err := g.GroupOutliers(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) < 2 {
		t.Fatalf("found %d groups, want ≥ 2", len(groups))
	}
	// The two planted subspaces must characterize the two largest groups,
	// and each group's members must be exactly the outliers planted there.
	planted := map[string][]int{}
	for _, p := range gt.Outliers() {
		for _, s := range gt.RelevantFor(p) {
			planted[s.Key()] = append(planted[s.Key()], p)
		}
	}
	matched := 0
	for _, grp := range groups[:2] {
		want, ok := planted[grp.Subspace.Subspace.Key()]
		if !ok {
			t.Errorf("group subspace %v is not a planted one", grp.Subspace.Subspace)
			continue
		}
		matched++
		if len(grp.Points) != len(want) {
			t.Errorf("group %v has %d members, want %d", grp.Subspace.Subspace, len(grp.Points), len(want))
			continue
		}
		for i := range want {
			if grp.Points[i] != want[i] {
				t.Errorf("group %v members %v, want %v", grp.Subspace.Subspace, grp.Points, want)
				break
			}
		}
	}
	if matched != 2 {
		t.Errorf("only %d planted groups recovered", matched)
	}
}

func TestGroupSummarizerMinGroupSizeMerging(t *testing.T) {
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "merge-test",
		TotalDims:           8,
		SubspaceDims:        []int{2, 2},
		N:                   200,
		OutliersPerSubspace: 4,
		Seed:                5,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupSummarizer(detector.NewCached(detector.NewLOF(15)))
	g.MinGroupSize = 3
	groups, err := g.GroupOutliers(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, grp := range groups {
		if len(grp.Points) < 3 {
			// Merging is best effort: a stranded singleton is only legal
			// when no viable group existed to absorb it.
			viable := false
			for _, other := range groups {
				if len(other.Points) >= 3 {
					viable = true
				}
			}
			if viable {
				t.Errorf("undersized group %v survived despite viable alternatives", grp)
			}
		}
	}
	// Total membership is preserved.
	total := 0
	for _, grp := range groups {
		total += len(grp.Points)
	}
	if total != gt.NumOutliers() {
		t.Errorf("grouping lost points: %d of %d", total, gt.NumOutliers())
	}
}

func TestGroupSummarizerAsSummarizer(t *testing.T) {
	ds, gt := testbed(t, 20)
	g := NewGroupSummarizer(detector.NewCached(detector.NewLOF(15)))
	list, err := g.Summarize(context.Background(), ds, gt.Outliers(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) == 0 {
		t.Fatal("empty summary")
	}
	seen := map[string]bool{}
	for _, s := range list {
		if seen[s.Subspace.Key()] {
			t.Errorf("duplicate subspace %v in summary", s.Subspace)
		}
		seen[s.Subspace.Key()] = true
		if s.Subspace.Dim() != 2 {
			t.Errorf("wrong dimensionality %d", s.Subspace.Dim())
		}
	}
	if g.Name() != "Groups" {
		t.Error("name")
	}
}

func TestGroupSummarizerErrors(t *testing.T) {
	ds, gt := testbed(t, 21)
	g := &GroupSummarizer{}
	if _, err := g.GroupOutliers(context.Background(), ds, gt.Outliers(), 2); err == nil {
		t.Error("nil detector should fail")
	}
	g = NewGroupSummarizer(detector.NewLOF(15))
	if _, err := g.GroupOutliers(context.Background(), ds, nil, 2); err == nil {
		t.Error("no points should fail")
	}
	g.MaxCandidates = 3
	if _, err := g.GroupOutliers(context.Background(), ds, gt.Outliers(), 2); err == nil {
		t.Error("candidate explosion should fail")
	}
}

// Package client is a Go client for the anexd explanation service with a
// crash-tolerant calling convention: every request retries transient
// failures (transport errors, 429, 503, 5xx) with full-jitter exponential
// backoff, honours the server's Retry-After hints, bounds each attempt
// with its own deadline, and verifies registrations by content hash so a
// blind retry of a lost ack is provably idempotent (the server skips the
// WAL append for an identical payload).
//
// All anexd endpoints are safe to retry: registration is hash-idempotent,
// explanation is a pure computation, and forget is naturally idempotent
// (a retried forget of an already-forgotten dataset reports
// Forgotten=false, which callers should treat as success).
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"anex/internal/server"
)

// Defaults for the zero-valued Config knobs.
const (
	DefaultMaxAttempts = 5
	DefaultBaseDelay   = 100 * time.Millisecond
	DefaultMaxDelay    = 5 * time.Second
)

// Config parameterises a Client. The zero value of every field except
// BaseURL selects a sensible default.
type Config struct {
	// BaseURL is the server's root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTPClient issues the requests; nil means http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call (first attempt included); 0 → 5.
	MaxAttempts int
	// BaseDelay and MaxDelay shape the backoff: attempt i sleeps a uniform
	// random duration in [0, min(MaxDelay, BaseDelay·2^i)] (full jitter).
	// 0 → 100ms and 5s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// RequestTimeout bounds each individual attempt (not the whole call —
	// the caller's context does that); 0 → no per-attempt deadline.
	RequestTimeout time.Duration
	// Seed drives the jitter; 0 → 1, so retry schedules are reproducible
	// by default.
	Seed int64
	// Sleep waits between attempts; nil → a timer that respects ctx.
	// Tests substitute a recorder here.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Client is safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	max     int
	baseDel time.Duration
	maxDel  time.Duration
	perReq  time.Duration
	sleep   func(context.Context, time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: BaseURL required")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: invalid BaseURL %q", cfg.BaseURL)
	}
	c := &Client{
		base:    strings.TrimRight(cfg.BaseURL, "/"),
		http:    cfg.HTTPClient,
		max:     cfg.MaxAttempts,
		baseDel: cfg.BaseDelay,
		maxDel:  cfg.MaxDelay,
		perReq:  cfg.RequestTimeout,
		sleep:   cfg.Sleep,
	}
	if c.http == nil {
		c.http = http.DefaultClient
	}
	if c.max <= 0 {
		c.max = DefaultMaxAttempts
	}
	if c.baseDel <= 0 {
		c.baseDel = DefaultBaseDelay
	}
	if c.maxDel <= 0 {
		c.maxDel = DefaultMaxDelay
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	return c, nil
}

// APIError is a server-side failure: the HTTP status plus the error
// message from the JSON body. Retryable statuses only surface as an
// APIError once attempts are exhausted.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %d %s", e.StatusCode, e.Message)
}

// HashMismatchError reports a registration whose echoed content hash does
// not match the payload the client sent — the server registered different
// bytes than intended. Never retried: it signals a real disagreement, not
// a transient fault.
type HashMismatchError struct {
	Name string
	Want string
	Got  string
}

func (e *HashMismatchError) Error() string {
	return fmt.Sprintf("register %q: server hash %s != local hash %s", e.Name, e.Got, e.Want)
}

// Register registers (or idempotently re-registers) csv under name and
// verifies the server's echoed SHA-256 against a locally computed one.
// Safe to retry blindly after a lost ack: the server recognises the
// identical payload by hash and skips the duplicate durable write.
func (c *Client) Register(ctx context.Context, name string, csv []byte, header bool) (server.RegisterResponse, error) {
	sum := sha256.Sum256(csv)
	want := hex.EncodeToString(sum[:])
	var resp server.RegisterResponse
	err := c.do(ctx, "POST", "/v1/datasets",
		server.RegisterRequest{Name: name, CSV: string(csv), Header: header}, &resp)
	if err != nil {
		return server.RegisterResponse{}, err
	}
	if resp.Hash != want {
		return server.RegisterResponse{}, &HashMismatchError{Name: name, Want: want, Got: resp.Hash}
	}
	return resp, nil
}

// Explain requests explanations for the given points.
func (c *Client) Explain(ctx context.Context, req server.ExplainRequest) (server.ExplainResponse, error) {
	var resp server.ExplainResponse
	err := c.do(ctx, "POST", "/v1/explain", req, &resp)
	return resp, err
}

// ExplainRaw is Explain returning the verbatim response bytes — the tool
// for byte-level determinism checks across server restarts.
func (c *Client) ExplainRaw(ctx context.Context, req server.ExplainRequest) ([]byte, error) {
	return c.doRaw(ctx, "POST", "/v1/explain", req)
}

// Forget removes a registered dataset. The server's 404 for an unknown
// name is absorbed into Forgotten=false rather than an error: after a
// retry of a lost ack it means an earlier attempt already removed it, and
// either way the caller's goal state (dataset absent) holds.
func (c *Client) Forget(ctx context.Context, name string) (server.ForgetResponse, error) {
	var resp server.ForgetResponse
	err := c.do(ctx, "DELETE", "/v1/datasets/"+url.PathEscape(name), nil, &resp)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
		return server.ForgetResponse{Name: name, Forgotten: false}, nil
	}
	return resp, err
}

// Stats fetches the server's counters.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var resp server.StatsResponse
	err := c.do(ctx, "GET", "/v1/stats", nil, &resp)
	return resp, err
}

// Health fetches liveness plus the degraded flag.
func (c *Client) Health(ctx context.Context) (server.HealthResponse, error) {
	var resp server.HealthResponse
	err := c.do(ctx, "GET", "/healthz", nil, &resp)
	return resp, err
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	raw, err := c.doRaw(ctx, method, path, in)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// doRaw runs the retry loop: marshal once, attempt up to max times, sleep
// between attempts (server Retry-After hint when given, full-jitter
// backoff otherwise), and stop early on the caller's context or a
// non-retryable status.
func (c *Client) doRaw(ctx context.Context, method, path string, in any) ([]byte, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("client: encode %s %s request: %w", method, path, err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.max; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.retryDelay(attempt-1, lastErr)); err != nil {
				return nil, err
			}
		}
		raw, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.max, lastErr)
}

// attempt issues one HTTP round trip under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	actx := ctx
	if c.perReq > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.perReq)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &transportError{err: err}
	}
	if resp.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: errorMessage(raw)}
		if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 &&
			(resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable) {
			return nil, &retryAfterError{APIError: apiErr, after: ra}
		}
		return nil, apiErr
	}
	return raw, nil
}

// transportError wraps a network-level failure; always retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retryAfterError is an APIError carrying the server's Retry-After hint.
type retryAfterError struct {
	*APIError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.APIError }

// retryable reports whether another attempt could succeed: transport
// errors, throttling (429), unavailability (503), and server faults (5xx).
// Other 4xx are the caller's bug and retrying would only repeat it.
func retryable(err error) bool {
	switch e := err.(type) {
	case *transportError:
		return true
	case *retryAfterError:
		return true
	case *APIError:
		return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
	}
	return false
}

// retryDelay picks the wait before retry number attempt+1: the server's
// Retry-After when it sent one, otherwise full jitter — uniform in
// [0, min(MaxDelay, BaseDelay·2^attempt)], which decorrelates a thundering
// herd of restarting clients.
func (c *Client) retryDelay(attempt int, lastErr error) time.Duration {
	var ra *retryAfterError
	if e, ok := lastErr.(*retryAfterError); ok {
		ra = e
	}
	if ra != nil && ra.after > 0 {
		return ra.after
	}
	ceil := c.maxDel
	if shifted := c.baseDel << uint(attempt); shifted > 0 && shifted < ceil {
		ceil = shifted
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(f * float64(ceil))
}

// errorMessage extracts the server's {"error": "..."} body, falling back
// to the raw bytes for non-JSON responses (proxies, panics).
func errorMessage(raw []byte) string {
	var m struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &m) == nil && m.Error != "" {
		return m.Error
	}
	return strings.TrimSpace(string(raw))
}

// parseRetryAfter understands the delay-seconds form anexd emits. The
// HTTP-date form is ignored (treated as no hint).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

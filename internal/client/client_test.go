package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"anex/internal/server"
)

// testCSV builds a small two-cluster dataset with one obvious anomaly,
// the same shape the server package's tests use.
func testCSV(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("a,b,n0\n")
	for i := 0; i < n; i++ {
		base := 0.25
		if rng.Intn(2) == 1 {
			base = 0.75
		}
		x, y := base+rng.NormFloat64()*0.03, base+rng.NormFloat64()*0.03
		if i == 0 {
			x, y = 0.25, 0.75
		}
		fmt.Fprintf(&b, "%.6f,%.6f,%.6f\n", x, y, rng.Float64())
	}
	return []byte(b.String())
}

// recordingSleep returns a Sleep seam that records requested delays and
// returns instantly.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*delays = append(*delays, d)
		return nil
	}
}

func newTestClient(t *testing.T, baseURL string, mutate func(*Config)) (*Client, *[]time.Duration) {
	t.Helper()
	var delays []time.Duration
	cfg := Config{BaseURL: baseURL, Sleep: recordingSleep(&delays)}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, &delays
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative/only"} {
		if _, err := New(Config{BaseURL: bad}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

// TestRegisterRetriesUntilSuccess pins the happy retry path: two 503s with
// Retry-After hints, then success — the client sleeps exactly the hinted
// durations and the caller sees one clean response.
func TestRegisterRetriesUntilSuccess(t *testing.T) {
	csv := testCSV(1, 60)
	sum := sha256.Sum256(csv)
	hash := hex.EncodeToString(sum[:])
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n := calls.Add(1); n <= 2 {
			w.Header().Set("Retry-After", fmt.Sprint(n*3)) // 3s then 6s
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"degraded"}`)
			return
		}
		json.NewEncoder(w).Encode(server.RegisterResponse{Name: "a", Hash: hash, N: 60, D: 3})
	}))
	defer ts.Close()

	c, delays := newTestClient(t, ts.URL, nil)
	resp, err := c.Register(context.Background(), "a", csv, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Hash != hash || calls.Load() != 3 {
		t.Fatalf("resp.Hash=%s calls=%d, want verified hash after 3 calls", resp.Hash, calls.Load())
	}
	want := []time.Duration{3 * time.Second, 6 * time.Second}
	if len(*delays) != 2 || (*delays)[0] != want[0] || (*delays)[1] != want[1] {
		t.Errorf("slept %v, want Retry-After hints %v", *delays, want)
	}
}

// TestBackoffFullJitterDeterministic pins the no-hint backoff: delays fall
// inside the full-jitter envelope [0, min(MaxDelay, Base·2^i)] and the same
// seed reproduces the same schedule.
func TestBackoffFullJitterDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"boom"}`)
	}))
	defer ts.Close()

	run := func(seed int64) []time.Duration {
		c, delays := newTestClient(t, ts.URL, func(cfg *Config) {
			cfg.MaxAttempts = 5
			cfg.BaseDelay = 100 * time.Millisecond
			cfg.MaxDelay = 300 * time.Millisecond
			cfg.Seed = seed
		})
		if _, err := c.Stats(context.Background()); err == nil {
			t.Fatal("Stats succeeded against an always-500 server")
		}
		return *delays
	}

	first := run(7)
	if len(first) != 4 {
		t.Fatalf("slept %d times, want 4 (5 attempts)", len(first))
	}
	ceil := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond}
	for i, d := range first {
		if d < 0 || d > ceil[i] {
			t.Errorf("delay[%d] = %v outside [0, %v]", i, d, ceil[i])
		}
	}
	second := run(7)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", first, second)
		}
	}
	if third := run(8); len(third) == len(first) {
		same := true
		for i := range first {
			if first[i] != third[i] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical jitter schedules")
		}
	}
}

// TestNonRetryable4xxFailsFast pins that caller bugs are not retried.
func TestNonRetryable4xxFailsFast(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"name required"}`)
	}))
	defer ts.Close()

	c, delays := newTestClient(t, ts.URL, nil)
	_, err := c.Register(context.Background(), "", testCSV(1, 60), true)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 || apiErr.Message != "name required" {
		t.Fatalf("err = %v, want APIError{400, name required}", err)
	}
	if calls.Load() != 1 || len(*delays) != 0 {
		t.Errorf("calls=%d sleeps=%d, want exactly 1 call and no sleeps", calls.Load(), len(*delays))
	}
}

// TestExhaustedAttemptsSurfaceLastError pins the give-up path: the final
// error wraps the last APIError and names the attempt count.
func TestExhaustedAttemptsSurfaceLastError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"still degraded"}`)
	}))
	defer ts.Close()

	c, _ := newTestClient(t, ts.URL, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Stats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
		t.Fatalf("err = %v, want wrapped 503 APIError", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want MaxAttempts = 3", calls.Load())
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err %q does not name the attempt count", err)
	}
}

// TestTransportErrorsRetry pins that connection-level failures retry: the
// first attempt hits a dead listener... not reproducible cheaply, so we
// use a handler that hijacks and drops the connection instead.
func TestTransportErrorsRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // slam the door: client sees EOF/reset
			return
		}
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "ok"})
	}))
	defer ts.Close()

	c, delays := newTestClient(t, ts.URL, nil)
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v; want ok after one transport retry", h, err)
	}
	if calls.Load() != 2 || len(*delays) != 1 {
		t.Errorf("calls=%d sleeps=%d, want 2 calls with 1 backoff sleep", calls.Load(), len(*delays))
	}
}

// TestPerAttemptDeadline pins that a hung server burns one attempt, not
// the whole call: attempt 1 exceeds RequestTimeout, attempt 2 answers.
func TestPerAttemptDeadline(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // hang until the client gives up on this attempt
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		json.NewEncoder(w).Encode(server.HealthResponse{Status: "ok"})
	}))
	defer ts.Close()

	c, _ := newTestClient(t, ts.URL, func(cfg *Config) { cfg.RequestTimeout = 50 * time.Millisecond })
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "ok" {
		t.Fatalf("Health = %+v, %v; want ok after deadline retry", h, err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
}

// TestCallerContextStopsRetries pins that the caller's context overrides
// the retry loop even mid-sleep.
func TestCallerContextStopsRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"degraded"}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c, err := New(Config{BaseURL: ts.URL, Sleep: func(ctx context.Context, d time.Duration) error {
		cancel() // caller walks away during the backoff wait
		return ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retry after cancel)", calls.Load())
	}
}

// TestRegisterHashMismatch pins the trust check: a server echoing a wrong
// content hash is an error, and not a retryable one.
func TestRegisterHashMismatch(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(server.RegisterResponse{Name: "a", Hash: "deadbeef"})
	}))
	defer ts.Close()

	c, _ := newTestClient(t, ts.URL, nil)
	_, err := c.Register(context.Background(), "a", testCSV(1, 60), true)
	var hm *HashMismatchError
	if !errors.As(err, &hm) || hm.Got != "deadbeef" {
		t.Fatalf("err = %v, want HashMismatchError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1", calls.Load())
	}
}

// TestAgainstRealServer runs the client against the real handler stack:
// register (twice — the retry-idempotence contract), explain raw twice
// (byte-stable), stats, forget, health.
func TestAgainstRealServer(t *testing.T) {
	eng := server.NewEngine(server.EngineConfig{Workers: 2})
	ts := httptest.NewServer(server.New(eng, server.Config{}).Handler())
	defer ts.Close()

	c, _ := newTestClient(t, ts.URL, nil)
	ctx := context.Background()
	csv := testCSV(1, 90)

	reg, err := c.Register(ctx, "a", csv, true)
	if err != nil {
		t.Fatal(err)
	}
	if reg.N != 90 || reg.D != 3 || reg.Replaced {
		t.Fatalf("register = %+v, want n=90 d=3 fresh", reg)
	}
	again, err := c.Register(ctx, "a", csv, true) // blind retry of a "lost ack"
	if err != nil || again.Hash != reg.Hash || again.Replaced {
		t.Fatalf("re-register = %+v, %v; want identical idempotent ack", again, err)
	}

	req := server.ExplainRequest{Dataset: "a", Points: []int{0}}
	raw1, err := c.ExplainRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := c.ExplainRaw(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("repeated ExplainRaw not byte-identical")
	}
	var exp server.ExplainResponse
	if err := json.Unmarshal(raw1, &exp); err != nil || len(exp.Points) != 1 {
		t.Fatalf("explain response %s unmarshal err %v", raw1, err)
	}
	if exp.Hash != reg.Hash {
		t.Errorf("explain hash %s != register hash %s", exp.Hash, reg.Hash)
	}

	stats, err := c.Stats(ctx)
	if err != nil || stats.Datasets != 1 {
		t.Fatalf("stats = %+v, %v; want 1 dataset", stats, err)
	}
	fr, err := c.Forget(ctx, "a")
	if err != nil || !fr.Forgotten {
		t.Fatalf("forget = %+v, %v; want forgotten", fr, err)
	}
	fr2, err := c.Forget(ctx, "a") // idempotent retry shape
	if err != nil || fr2.Forgotten {
		t.Fatalf("second forget = %+v, %v; want Forgotten=false without error", fr2, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || h.Degraded {
		t.Fatalf("health = %+v, %v; want ok", h, err)
	}
}

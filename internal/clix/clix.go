// Package clix is the shared runtime of the one-shot CLIs (anexplain,
// anexeval, anexgen, anexbench): a signal-aware root context and the
// conventional exit protocol — 0 on success, 130 on interrupt, 1 on any
// other error, diagnostics prefixed with the command name on stderr.
//
// The long-lived anexd server deliberately does NOT use this package: for
// a daemon, SIGINT/SIGTERM mean "drain and exit 0", not "abort with 130".
package clix

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// EnvString returns the environment variable key's value when set and
// non-empty, else def. Used as the flag-default expression — e.g.
// flag.String("data-dir", clix.EnvString("ANEXD_DATA_DIR", ""), ...) —
// so deployments configure via environment while explicit flags still
// win.
func EnvString(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// Context returns a root context cancelled by SIGINT or SIGTERM, and its
// stop function. For CLIs that need custom teardown between cancellation
// and exit (profile flushing, resume hints); most use Main.
func Context() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Report prints err the conventional way ("name: interrupted" on
// cancellation, "name: err" otherwise) and returns the exit status for it:
// 0, 130 or 1. It does not exit — callers with teardown order it around
// their own epilogue and pass the status to os.Exit themselves.
func Report(name string, err error) int {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "%s: interrupted\n", name)
		return 130
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return 1
	}
	return 0
}

// Main runs fn under a signal-aware context and exits with the
// conventional status. The body of every plain CLI's main after flag
// parsing.
func Main(name string, fn func(ctx context.Context) error) {
	os.Exit(run(name, fn))
}

// run is Main without the os.Exit, so deferred cleanup inside it (the
// signal stop) executes before the process terminates.
func run(name string, fn func(ctx context.Context) error) int {
	ctx, stop := Context()
	defer stop()
	return Report(name, fn(ctx))
}

package clix

import "testing"

func TestEnvString(t *testing.T) {
	t.Setenv("CLIX_TEST_VAR", "")
	if got := EnvString("CLIX_TEST_VAR", "fallback"); got != "fallback" {
		t.Errorf("unset/empty env = %q, want fallback", got)
	}
	t.Setenv("CLIX_TEST_VAR", "explicit")
	if got := EnvString("CLIX_TEST_VAR", "fallback"); got != "explicit" {
		t.Errorf("set env = %q, want explicit", got)
	}
}

// Package surrogate implements the paper's concluding future-work proposal
// (Section 6): approximate an unsupervised detector's decision boundary
// with a predictive surrogate model and explain points through MINIMAL
// PREDICTIVE SIGNATURES — the few features the surrogate actually consults
// — instead of re-running a per-point subspace search.
//
// The surrogate is a depth-limited CART regression tree (optionally a
// bagged forest) fitted on (features → detector score). A point's
// signature is the set of features on its decision path; feature
// importance is the variance reduction each feature contributes. Both give
// O(depth) explanations with formal minimality in the number of consulted
// features, at the cost of fidelity measured by R².
package surrogate

import (
	"fmt"
	"math"
	"sort"

	"anex/internal/dataset"
	"anex/internal/subspace"
)

// TreeOptions controls the CART fitting.
type TreeOptions struct {
	// MaxDepth bounds the tree height; zero means 6.
	MaxDepth int
	// MinLeaf is the smallest sample a leaf may hold; zero means 5.
	MinLeaf int
	// MinGain is the minimal relative variance reduction a split must
	// achieve (fraction of the node's sum of squares); zero means 1e-3.
	MinGain float64
}

func (o TreeOptions) maxDepth() int {
	if o.MaxDepth <= 0 {
		return 6
	}
	return o.MaxDepth
}

func (o TreeOptions) minLeaf() int {
	if o.MinLeaf <= 0 {
		return 5
	}
	return o.MinLeaf
}

func (o TreeOptions) minGain() float64 {
	if o.MinGain <= 0 {
		return 1e-3
	}
	return o.MinGain
}

// Tree is a fitted CART regression surrogate.
type Tree struct {
	nodes      []treeNode
	dim        int
	importance []float64 // summed absolute variance reduction per feature
}

type treeNode struct {
	// Interior: feature ≥ 0 with threshold; left/right children indexes.
	// Leaf: feature == -1, value is the prediction.
	feature     int
	threshold   float64
	left, right int
	value       float64
	samples     int
}

// FitTree fits a regression tree predicting target from the dataset's
// features. len(target) must equal ds.N().
func FitTree(ds *dataset.Dataset, target []float64, opts TreeOptions) (*Tree, error) {
	if ds == nil {
		return nil, fmt.Errorf("surrogate: nil dataset")
	}
	if len(target) != ds.N() {
		return nil, fmt.Errorf("surrogate: %d targets for %d points", len(target), ds.N())
	}
	idx := make([]int, ds.N())
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dim: ds.D(), importance: make([]float64, ds.D())}
	t.build(ds, target, idx, 0, opts)
	return t, nil
}

// build grows the subtree over idx and returns its node id.
func (t *Tree) build(ds *dataset.Dataset, target []float64, idx []int, depth int, opts TreeOptions) int {
	nodeID := len(t.nodes)
	t.nodes = append(t.nodes, treeNode{})

	mean, sse := meanSSE(target, idx)
	leaf := func() int {
		t.nodes[nodeID] = treeNode{feature: -1, value: mean, samples: len(idx)}
		return nodeID
	}
	if depth >= opts.maxDepth() || len(idx) < 2*opts.minLeaf() || sse <= 1e-12 {
		return leaf()
	}

	bestFeature, bestThreshold, bestGain := -1, 0.0, 0.0
	for f := 0; f < ds.D(); f++ {
		threshold, gain := bestSplit(ds.Column(f), target, idx, opts.minLeaf())
		if gain > bestGain {
			bestFeature, bestThreshold, bestGain = f, threshold, gain
		}
	}
	if bestFeature < 0 || bestGain < opts.minGain()*sse {
		return leaf()
	}

	col := ds.Column(bestFeature)
	var left, right []int
	for _, i := range idx {
		if col[i] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < opts.minLeaf() || len(right) < opts.minLeaf() {
		return leaf()
	}
	t.importance[bestFeature] += bestGain
	l := t.build(ds, target, left, depth+1, opts)
	r := t.build(ds, target, right, depth+1, opts)
	t.nodes[nodeID] = treeNode{
		feature: bestFeature, threshold: bestThreshold,
		left: l, right: r, value: mean, samples: len(idx),
	}
	return nodeID
}

// bestSplit finds the threshold of one feature maximising the variance
// reduction (sum-of-squares gain), honouring the leaf minimum. It scans
// the sorted prefix sums in O(n log n).
func bestSplit(col, target []float64, idx []int, minLeaf int) (threshold, gain float64) {
	n := len(idx)
	order := make([]int, n)
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool { return col[order[a]] < col[order[b]] })

	var total, totalSq float64
	for _, i := range order {
		total += target[i]
		totalSq += target[i] * target[i]
	}
	parentSSE := totalSq - total*total/float64(n)

	var leftSum, leftSq float64
	bestGain := 0.0
	bestThreshold := math.NaN()
	for k := 0; k < n-1; k++ {
		i := order[k]
		leftSum += target[i]
		leftSq += target[i] * target[i]
		// Can't split between equal feature values.
		if col[order[k]] == col[order[k+1]] {
			continue
		}
		nl := k + 1
		nr := n - nl
		if nl < minLeaf || nr < minLeaf {
			continue
		}
		rightSum := total - leftSum
		rightSq := totalSq - leftSq
		sseL := leftSq - leftSum*leftSum/float64(nl)
		sseR := rightSq - rightSum*rightSum/float64(nr)
		if g := parentSSE - sseL - sseR; g > bestGain {
			bestGain = g
			bestThreshold = (col[order[k]] + col[order[k+1]]) / 2
		}
	}
	if math.IsNaN(bestThreshold) {
		return 0, 0
	}
	return bestThreshold, bestGain
}

func meanSSE(target []float64, idx []int) (mean, sse float64) {
	for _, i := range idx {
		mean += target[i]
	}
	mean /= float64(len(idx))
	for _, i := range idx {
		d := target[i] - mean
		sse += d * d
	}
	return mean, sse
}

// Dim returns the feature dimensionality the tree was fitted on.
func (t *Tree) Dim() int { return t.dim }

// Depth returns the fitted tree's height.
func (t *Tree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var rec func(int) int
	rec = func(id int) int {
		n := t.nodes[id]
		if n.feature == -1 {
			return 1
		}
		l, r := rec(n.left), rec(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return rec(0)
}

// Predict returns the surrogate score of a point.
func (t *Tree) Predict(x []float64) float64 {
	id := 0
	for {
		n := t.nodes[id]
		if n.feature == -1 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// Signature returns the point's minimal predictive signature: the distinct
// features consulted on its decision path, as a canonical subspace. This is
// the paper's "minimal predictive signature" — the features sufficient to
// reproduce the surrogate's score for this point.
func (t *Tree) Signature(x []float64) subspace.Subspace {
	var feats []int
	id := 0
	for {
		n := t.nodes[id]
		if n.feature == -1 {
			return subspace.New(feats...)
		}
		feats = append(feats, n.feature)
		if x[n.feature] <= n.threshold {
			id = n.left
		} else {
			id = n.right
		}
	}
}

// FeatureImportance returns the variance reduction contributed by each
// feature, normalised to sum to 1 (all zeros when the tree is a stump).
func (t *Tree) FeatureImportance() []float64 {
	out := make([]float64, t.dim)
	var total float64
	for _, v := range t.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for f, v := range t.importance {
		out[f] = v / total
	}
	return out
}

// R2 returns the coefficient of determination of the surrogate against the
// target on the given dataset — the fidelity of the approximation.
func (t *Tree) R2(ds *dataset.Dataset, target []float64) float64 {
	if ds.N() != len(target) || ds.N() == 0 {
		return math.NaN()
	}
	var mean float64
	for _, y := range target {
		mean += y
	}
	mean /= float64(len(target))
	x := make([]float64, ds.D())
	var ssRes, ssTot float64
	for i := 0; i < ds.N(); i++ {
		pred := t.Predict(ds.Row(i, x))
		d := target[i] - pred
		ssRes += d * d
		dt := target[i] - mean
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

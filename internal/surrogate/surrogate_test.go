package surrogate

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/synth"
)

// stepDataset builds data whose target is a two-level step function of
// feature 1: target = 10 when F1 > 0.5 else 2, independent of F0 and F2.
func stepDataset(t testing.TB, n int, seed int64) (*dataset.Dataset, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, 3)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = rng.Float64()
		}
	}
	target := make([]float64, n)
	for i := range target {
		if cols[1][i] > 0.5 {
			target[i] = 10
		} else {
			target[i] = 2
		}
	}
	ds, err := dataset.New("step", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds, target
}

func TestTreeRecoversStepFunction(t *testing.T) {
	ds, target := stepDataset(t, 300, 1)
	tree, err := FitTree(ds, target, TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Near-perfect fit on a single axis-aligned step.
	if r2 := tree.R2(ds, target); r2 < 0.99 {
		t.Errorf("R² = %v, want ≈ 1", r2)
	}
	// Importance concentrated on feature 1.
	imp := tree.FeatureImportance()
	if imp[1] < 0.95 {
		t.Errorf("importance = %v, want mass on F1", imp)
	}
	// Predictions on fresh probes.
	if p := tree.Predict([]float64{0.2, 0.9, 0.2}); math.Abs(p-10) > 0.5 {
		t.Errorf("Predict(high F1) = %v", p)
	}
	if p := tree.Predict([]float64{0.9, 0.1, 0.9}); math.Abs(p-2) > 0.5 {
		t.Errorf("Predict(low F1) = %v", p)
	}
	// Minimal signature: only the consulted feature.
	sig := tree.Signature([]float64{0.5, 0.9, 0.5})
	if sig.Dim() != 1 || !sig.Contains(1) {
		t.Errorf("signature = %v, want {F1}", sig)
	}
}

func TestTreeDepthAndLeafConstraints(t *testing.T) {
	ds, target := stepDataset(t, 200, 2)
	shallow, err := FitTree(ds, target, TreeOptions{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := shallow.Depth(); d > 2 {
		t.Errorf("depth %d with MaxDepth 1", d)
	}
	// A larger MinLeaf must never produce smaller leaves.
	bigLeaf, err := FitTree(ds, target, TreeOptions{MaxDepth: 8, MinLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range bigLeaf.nodes {
		if n.feature == -1 && n.samples < 50 {
			t.Errorf("leaf with %d samples despite MinLeaf 50", n.samples)
		}
	}
}

func TestTreeConstantTarget(t *testing.T) {
	ds, _ := stepDataset(t, 100, 3)
	target := make([]float64, ds.N())
	for i := range target {
		target[i] = 7
	}
	tree, err := FitTree(ds, target, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("constant target should yield a stump, depth %d", tree.Depth())
	}
	if p := tree.Predict([]float64{0, 0, 0}); p != 7 {
		t.Errorf("Predict = %v", p)
	}
	for _, v := range tree.FeatureImportance() {
		if v != 0 {
			t.Errorf("stump importance = %v", tree.FeatureImportance())
		}
	}
}

func TestTreeErrors(t *testing.T) {
	ds, target := stepDataset(t, 50, 4)
	if _, err := FitTree(nil, target, TreeOptions{}); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := FitTree(ds, target[:10], TreeOptions{}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitForest(nil, target, ForestOptions{}); err == nil {
		t.Error("forest nil dataset should fail")
	}
	if _, err := FitForest(ds, target[:10], ForestOptions{}); err == nil {
		t.Error("forest length mismatch should fail")
	}
	if _, _, err := ExplainDetector(context.Background(), ds, nil, ForestOptions{}); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestForestImprovesStability(t *testing.T) {
	// Noisy target: y = step(F1) + noise. Single trees overfit the noise
	// differently across bootstrap draws; the ensemble's importance still
	// concentrates on F1.
	rng := rand.New(rand.NewSource(5))
	ds, target := stepDataset(t, 400, 5)
	noisy := make([]float64, len(target))
	for i, y := range target {
		noisy[i] = y + rng.NormFloat64()
	}
	forest, err := FitForest(ds, noisy, ForestOptions{Trees: 15, Seed: 1, Tree: TreeOptions{MaxDepth: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if forest.Size() != 15 || forest.Dim() != 3 {
		t.Fatalf("forest shape %d/%d", forest.Size(), forest.Dim())
	}
	imp := forest.FeatureImportance()
	if imp[1] < 0.8 {
		t.Errorf("forest importance = %v, want mass on F1", imp)
	}
	if r2 := forest.R2(ds, noisy); r2 < 0.8 {
		t.Errorf("forest R² = %v", r2)
	}
	sig := forest.Signature([]float64{0.5, 0.9, 0.5}, 1)
	if sig.Dim() != 1 || !sig.Contains(1) {
		t.Errorf("forest signature = %v, want {F1}", sig)
	}
}

func TestForestDeterministicPerSeed(t *testing.T) {
	ds, target := stepDataset(t, 150, 6)
	a, err := FitForest(ds, target, ForestOptions{Trees: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitForest(ds, target, ForestOptions{Trees: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, 0.7, 0.1}
	if a.Predict(probe) != b.Predict(probe) {
		t.Error("same seed, different forests")
	}
}

// TestPredictiveExplanationOnPlantedOutliers is the end-to-end future-work
// scenario: fit the surrogate on LOF's full-space scores of a dataset with
// full-space outliers and check that (i) the fidelity is substantial and
// (ii) outlier signatures are small (minimality).
func TestPredictiveExplanationOnPlantedOutliers(t *testing.T) {
	ds, outliers, err := synth.GenerateFullSpaceOutliers(synth.FullSpaceConfig{
		Name: "surrogate-e2e", N: 250, D: 8, NumOutliers: 20, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, r2, err := ExplainDetector(context.Background(), ds, detector.NewLOF(15), ForestOptions{
		Trees: 20, Seed: 1, Tree: TreeOptions{MaxDepth: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.5 {
		t.Errorf("surrogate fidelity R² = %v, want substantial", r2)
	}
	row := make([]float64, ds.D())
	for _, p := range outliers[:5] {
		sig := forest.Signature(ds.Row(p, row), 3)
		if sig.Dim() == 0 || sig.Dim() > 3 {
			t.Errorf("outlier %d signature %v not minimal", p, sig)
		}
	}
	// The surrogate must score outliers above the inlier median.
	var outlierMean float64
	for _, p := range outliers {
		outlierMean += forest.Predict(ds.Row(p, row))
	}
	outlierMean /= float64(len(outliers))
	var inlierMean float64
	n := 0
	outlierSet := map[int]bool{}
	for _, p := range outliers {
		outlierSet[p] = true
	}
	for i := 0; i < ds.N(); i++ {
		if !outlierSet[i] {
			inlierMean += forest.Predict(ds.Row(i, row))
			n++
		}
	}
	inlierMean /= float64(n)
	if outlierMean <= inlierMean {
		t.Errorf("surrogate does not separate: outliers %v vs inliers %v", outlierMean, inlierMean)
	}
}

func TestPropertyTreePredictionWithinTargetRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(nRaw uint8, seed int64) bool {
		n := int(nRaw%100) + 20
		cols := [][]float64{make([]float64, n), make([]float64, n)}
		target := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			cols[0][i] = rng.Float64()
			cols[1][i] = rng.Float64()
			target[i] = rng.NormFloat64() * 5
			if target[i] < lo {
				lo = target[i]
			}
			if target[i] > hi {
				hi = target[i]
			}
		}
		ds, err := dataset.New("prop", cols, nil)
		if err != nil {
			return false
		}
		tree, err := FitTree(ds, target, TreeOptions{MaxDepth: 4})
		if err != nil {
			return false
		}
		// Leaf means can never escape the target range.
		for trial := 0; trial < 10; trial++ {
			p := tree.Predict([]float64{rng.Float64() * 2, rng.Float64() * 2})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

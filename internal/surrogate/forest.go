package surrogate

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/subspace"
)

// ForestOptions controls the bagged surrogate.
type ForestOptions struct {
	// Trees is the ensemble size; zero means 25.
	Trees int
	// Tree configures the member trees.
	Tree TreeOptions
	// Seed drives the bootstrap sampling.
	Seed int64
}

func (o ForestOptions) trees() int {
	if o.Trees <= 0 {
		return 25
	}
	return o.Trees
}

// Forest is a bagged ensemble of surrogate trees: more stable predictions
// and importance estimates than a single tree, at the cost of larger
// (union) signatures.
type Forest struct {
	trees []*Tree
	dim   int
}

// FitForest fits the bagged surrogate on (features → target).
func FitForest(ds *dataset.Dataset, target []float64, opts ForestOptions) (*Forest, error) {
	if ds == nil {
		return nil, fmt.Errorf("surrogate: nil dataset")
	}
	if len(target) != ds.N() {
		return nil, fmt.Errorf("surrogate: %d targets for %d points", len(target), ds.N())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	f := &Forest{dim: ds.D()}
	n := ds.N()
	boot := make([]int, n)
	bootTarget := make([]float64, n)
	for t := 0; t < opts.trees(); t++ {
		for i := range boot {
			boot[i] = rng.Intn(n)
		}
		sub, err := ds.Subset(fmt.Sprintf("%s-boot%d", ds.Name(), t), boot)
		if err != nil {
			return nil, err
		}
		for i, p := range boot {
			bootTarget[i] = target[p]
		}
		tree, err := FitTree(sub, bootTarget, opts.Tree)
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// Dim returns the feature dimensionality.
func (f *Forest) Dim() int { return f.dim }

// Size returns the number of member trees.
func (f *Forest) Size() int { return len(f.trees) }

// Predict returns the ensemble-mean surrogate score.
func (f *Forest) Predict(x []float64) float64 {
	var sum float64
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// Signature returns the features most frequently consulted for this point
// across the ensemble, most frequent first, truncated to maxFeatures
// (0 means all consulted features).
func (f *Forest) Signature(x []float64, maxFeatures int) subspace.Subspace {
	counts := make([]int, f.dim)
	for _, t := range f.trees {
		for _, feat := range t.Signature(x) {
			counts[feat]++
		}
	}
	type fc struct{ feat, count int }
	var used []fc
	for feat, c := range counts {
		if c > 0 {
			used = append(used, fc{feat, c})
		}
	}
	sort.Slice(used, func(a, b int) bool {
		if used[a].count != used[b].count {
			return used[a].count > used[b].count
		}
		return used[a].feat < used[b].feat
	})
	if maxFeatures > 0 && len(used) > maxFeatures {
		used = used[:maxFeatures]
	}
	feats := make([]int, len(used))
	for i, u := range used {
		feats[i] = u.feat
	}
	return subspace.New(feats...)
}

// FeatureImportance returns the ensemble-mean normalised importance.
func (f *Forest) FeatureImportance() []float64 {
	out := make([]float64, f.dim)
	for _, t := range f.trees {
		for feat, v := range t.FeatureImportance() {
			out[feat] += v
		}
	}
	for feat := range out {
		out[feat] /= float64(len(f.trees))
	}
	return out
}

// R2 returns the ensemble's coefficient of determination on the data.
func (f *Forest) R2(ds *dataset.Dataset, target []float64) float64 {
	var mean float64
	for _, y := range target {
		mean += y
	}
	mean /= float64(len(target))
	x := make([]float64, ds.D())
	var ssRes, ssTot float64
	for i := 0; i < ds.N(); i++ {
		pred := f.Predict(ds.Row(i, x))
		d := target[i] - pred
		ssRes += d * d
		dt := target[i] - mean
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// ExplainDetector is the end-to-end predictive-explanation pipeline the
// paper sketches: score the dataset with the detector in the FULL space,
// fit the surrogate on those scores, and return it together with its
// fidelity. Explanations of individual points then cost O(depth) via
// Signature instead of a fresh subspace search.
func ExplainDetector(ctx context.Context, ds *dataset.Dataset, det core.Detector, opts ForestOptions) (*Forest, float64, error) {
	if det == nil {
		return nil, 0, fmt.Errorf("surrogate: nil detector")
	}
	scores, err := det.Scores(ctx, ds.FullView())
	if err != nil {
		return nil, 0, fmt.Errorf("surrogate: score %q: %w", ds.Name(), err)
	}
	forest, err := FitForest(ds, scores, opts)
	if err != nil {
		return nil, 0, err
	}
	return forest, forest.R2(ds, scores), nil
}

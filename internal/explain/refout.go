package explain

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/parallel"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// RefOut defaults from the paper's experimental settings (Section 3.1).
const (
	DefaultRefOutPoolSize = 100
	DefaultRefOutWidth    = 100
	DefaultRefOutTopK     = 100
	DefaultRefOutPoolFrac = 0.7
)

// RefOut is the sampling-based point explainer of Keller et al. (CIKM
// 2013). It draws a pool of random subspace projections, scores the point
// of interest in each (Z-score standardised), and then stage-wise assesses
// candidate subspaces by the discrepancy — measured with Welch's two-sample
// t-test — between the pool-score populations of projections that do and do
// not contain the candidate's features. Candidates of dimensionality k+1
// are formed as the Cartesian product of the stage-k winners with single
// features, exactly as in Figure 3 of the paper.
type RefOut struct {
	// Detector supplies the outlyingness criterion.
	Detector core.Detector
	// PoolSize is the number of random projections; zero means 100.
	PoolSize int
	// PoolDimFraction sets the dimensionality of each random projection
	// as a fraction of the dataset's dimensionality; zero means 0.7.
	PoolDimFraction float64
	// Width is the beam width (candidates kept per stage); zero means 100.
	Width int
	// TopK bounds the returned list; zero means 100.
	TopK int
	// Seed makes the pool draw deterministic.
	Seed int64
	// Score overrides the pool scoring function; nil means the paper's
	// Z-score standardisation.
	Score ScoreFunc
	// Workers bounds the goroutines scoring the projection pool; values
	// ≤ 1 (including the zero value) keep pool scoring serial. The pool is
	// drawn serially from the seeded rng before any scoring happens, so
	// results are identical at any worker count.
	Workers int
}

// NewRefOut returns a RefOut explainer with the paper's settings.
func NewRefOut(det core.Detector, seed int64) *RefOut {
	return &RefOut{Detector: det, Seed: seed}
}

func (r *RefOut) Name() string { return "RefOut" }

func (r *RefOut) poolSize() int {
	if r.PoolSize <= 0 {
		return DefaultRefOutPoolSize
	}
	return r.PoolSize
}

func (r *RefOut) width() int {
	if r.Width <= 0 {
		return DefaultRefOutWidth
	}
	return r.Width
}

func (r *RefOut) topK() int {
	if r.TopK <= 0 {
		return DefaultRefOutTopK
	}
	return r.TopK
}

func (r *RefOut) poolDim(d int) int {
	frac := r.PoolDimFraction
	if frac <= 0 || frac > 1 {
		frac = DefaultRefOutPoolFrac
	}
	k := int(math.Round(frac * float64(d)))
	if k < 2 {
		k = 2
	}
	if k > d {
		k = d
	}
	return k
}

func (r *RefOut) score() ScoreFunc {
	if r.Score == nil {
		return pointZScore
	}
	return r.Score
}

// poolEntry is one random projection with the point's standardised score.
type poolEntry struct {
	sub   subspace.Subspace
	score float64
}

// ExplainPoint searches subspaces of exactly targetDim that explain the
// outlyingness of point p, best (highest discrepancy) first. The pool
// scoring observes ctx between projections, so cancellation aborts with
// ctx's error.
func (r *RefOut) ExplainPoint(ctx context.Context, ds *dataset.Dataset, p, targetDim int) ([]core.ScoredSubspace, error) {
	if err := core.ValidateExplainArgs(ds, p, targetDim); err != nil {
		return nil, fmt.Errorf("refout: %w", err)
	}
	if r.Detector == nil {
		return nil, fmt.Errorf("refout: nil detector")
	}
	d := ds.D()
	poolDim := r.poolDim(d)
	if targetDim > poolDim {
		return nil, fmt.Errorf("refout: target dimensionality %d exceeds pool projection dimensionality %d", targetDim, poolDim)
	}
	// Derive a per-point stream so explaining different points of the same
	// dataset never shares pools but remains reproducible.
	rng := rand.New(rand.NewSource(r.Seed + int64(p)*2654435761))
	score := r.score()

	// Draw the random pool serially — the projection sequence depends only
	// on the rng and the duplicate filter, never on scores, so drawing
	// first keeps the pool identical at any worker count.
	subs := make([]subspace.Subspace, 0, r.poolSize())
	seen := make(map[string]bool, r.poolSize())
	for len(subs) < r.poolSize() {
		s := subspace.Random(rng, d, poolDim)
		key := s.Key()
		if seen[key] && subspace.Count(d, poolDim) > int64(r.poolSize()) {
			continue // redraw duplicates while distinct projections remain
		}
		seen[key] = true
		subs = append(subs, s)
	}

	// Score the pool in parallel over the worker budget: each projection
	// writes only its own slot; failures surface as the first error in
	// pool order, deterministically.
	pool := make([]poolEntry, len(subs))
	errs := make([]error, len(subs))
	ctxErr := parallel.ForEach(ctx, r.Workers, len(subs), func(i int) {
		sc, err := score(ctx, r.Detector, ds, subs[i], p)
		pool[i] = poolEntry{sub: subs[i], score: sc}
		errs[i] = err
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Stage 1: assess every single feature by partition discrepancy.
	candidates := make([]core.ScoredSubspace, 0, d)
	for f := 0; f < d; f++ {
		cand := subspace.New(f)
		candidates = append(candidates, core.ScoredSubspace{Subspace: cand, Score: r.discrepancy(pool, cand)})
	}
	core.SortByScore(candidates)
	candidates = core.TopK(candidates, r.width())

	// Stages 2…targetDim: Cartesian product of stage winners with all
	// univariate subspaces, re-assessed by discrepancy.
	for dim := 2; dim <= targetDim; dim++ {
		seenCand := make(map[string]bool)
		var next []core.ScoredSubspace
		for _, cur := range candidates {
			for f := 0; f < d; f++ {
				if cur.Subspace.Contains(f) {
					continue
				}
				cand := cur.Subspace.With(f)
				key := cand.Key()
				if seenCand[key] {
					continue
				}
				seenCand[key] = true
				next = append(next, core.ScoredSubspace{Subspace: cand, Score: r.discrepancy(pool, cand)})
			}
		}
		core.SortByScore(next)
		candidates = core.TopK(next, r.width())
	}
	out := make([]core.ScoredSubspace, len(candidates))
	copy(out, candidates)
	return core.TopK(out, r.topK()), nil
}

// discrepancy partitions the pool scores by whether the projection contains
// every feature of cand, and returns the signed Welch t-statistic
// (mean score with cand − mean score without). High positive values mean
// the point looks substantially more outlying whenever cand's features are
// present — the evidence RefOut builds explanations from.
func (r *RefOut) discrepancy(pool []poolEntry, cand subspace.Subspace) float64 {
	var with, without []float64
	for _, e := range pool {
		if e.sub.ContainsAll(cand) {
			with = append(with, e.score)
		} else {
			without = append(without, e.score)
		}
	}
	if len(with) < 2 || len(without) < 2 {
		// Not enough evidence either way.
		return math.Inf(-1)
	}
	res := stats.WelchTTest(with, without)
	return res.Statistic
}

var _ core.PointExplainer = (*RefOut)(nil)

package explain

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"anex/internal/core"
	"anex/internal/detector"
)

// TestCacheHitZeroMaterialisation asserts the cache-first scoring contract:
// once a subspace's scores are memoised, re-scoring a point in it performs
// no view materialisation at all — the cached detector answers from the
// view's key before any row gather happens.
func TestCacheHitZeroMaterialisation(t *testing.T) {
	ds, gt := testbed(t, 1)
	p, sub := pointWithDim(t, gt, 2)
	cached := detector.NewCached(detector.NewLOF(15))
	ctx := context.Background()

	warm, err := pointZScore(ctx, cached, ds, sub, p)
	if err != nil {
		t.Fatal(err)
	}
	// The warm-up itself may already gather zero rows: the delta-distance
	// engine scores low-dimensional views straight from dataset columns.
	// Either way, cache hits must add nothing.
	gathers := ds.Gathers()

	for i := 0; i < 3; i++ {
		got, err := pointZScore(ctx, cached, ds, sub, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != warm {
			t.Fatalf("cache-hit score %v differs from warm score %v", got, warm)
		}
	}
	if g := ds.Gathers(); g != gathers {
		t.Fatalf("cache hits materialised %d views (gathers %d → %d), want 0", g-gathers, gathers, g)
	}
}

// sameExplanations compares two explanation lists for exact equality:
// same length, same subspace keys in the same order, bitwise-equal scores.
func sameExplanations(a, b []core.ScoredSubspace) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if ak, bk := a[i].Subspace.Key(), b[i].Subspace.Key(); ak != bk {
			return fmt.Errorf("rank %d: subspace %s vs %s", i, ak, bk)
		}
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return fmt.Errorf("rank %d (%s): score %x vs %x bits", i, a[i].Subspace.Key(),
				math.Float64bits(a[i].Score), math.Float64bits(b[i].Score))
		}
	}
	return nil
}

func workerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestBeamWorkerInvariance runs Beam's parallelised stage scoring at 1, 4
// and NumCPU workers and requires bit-identical results: same subspaces,
// same order, same score bits. Runs under check.sh's -race gate.
func TestBeamWorkerInvariance(t *testing.T) {
	ds, gt := testbed(t, 3)
	p, _ := pointWithDim(t, gt, 3)
	var baseline []core.ScoredSubspace
	for _, w := range workerCounts() {
		beam := &Beam{Detector: detector.NewLOF(15), Width: 15, TopK: 10, FixedDim: true, Workers: w}
		got, err := beam.ExplainPoint(context.Background(), ds, p, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if err := sameExplanations(baseline, got); err != nil {
			t.Errorf("workers=%d differs from workers=1: %v", w, err)
		}
	}
}

// TestRefOutWorkerInvariance does the same for RefOut's parallel pool
// scoring: the seeded pool draw is serial, so every worker count must see
// the same pool and produce bit-identical explanations.
func TestRefOutWorkerInvariance(t *testing.T) {
	ds, gt := testbed(t, 4)
	p, _ := pointWithDim(t, gt, 2)
	var baseline []core.ScoredSubspace
	for _, w := range workerCounts() {
		refout := &RefOut{Detector: detector.NewLOF(15), PoolSize: 40, Width: 20, TopK: 10, Seed: 7, Workers: w}
		got, err := refout.ExplainPoint(context.Background(), ds, p, 2)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if baseline == nil {
			baseline = got
			continue
		}
		if err := sameExplanations(baseline, got); err != nil {
			t.Errorf("workers=%d differs from workers=1: %v", w, err)
		}
	}
}

// Package explain implements the two point-explanation algorithms of the
// paper (Section 2.2): Beam, a stage-wise greedy search over subspaces, and
// RefOut, a random-projection / statistical-refinement search. Both rank
// the subspaces that best explain the outlyingness of one data point, using
// any core.Detector as the outlyingness criterion.
package explain

import (
	"context"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/stats"
	"anex/internal/subspace"
)

// pointZScore returns the Z-score-standardised outlyingness of point p in
// subspace s:
//
//	score(p_s)' = (score(p_s) − mean(score_s)) / sqrt(Var(score_s))
//
// The standardisation removes the dimensionality bias of raw detector
// scores so that subspaces of different dimensionality become comparable
// (paper, Section 2.2).
func pointZScore(ctx context.Context, det core.Detector, ds *dataset.Dataset, s subspace.Subspace, p int) (float64, error) {
	if ss, ok := det.(core.StatScorer); ok {
		// Memoising detectors hand back the distribution's population
		// moments with the scores, so a cache hit standardises in O(1)
		// instead of re-deriving the same moments per point. The moments
		// contract makes this bit-identical to the plain path below.
		scores, mean, variance, err := ss.ScoresWithStats(ctx, ds.View(s))
		if err != nil {
			return 0, err
		}
		return stats.ZScoreFromMoments(scores[p], mean, variance), nil
	}
	scores, err := det.Scores(ctx, ds.View(s))
	if err != nil {
		return 0, err
	}
	return stats.ZScore(scores[p], scores), nil
}

// pointRawScore returns the unstandardised detector score of p in s. It
// exists to support the raw-vs-Z-score ablation benchmark.
func pointRawScore(ctx context.Context, det core.Detector, ds *dataset.Dataset, s subspace.Subspace, p int) (float64, error) {
	scores, err := det.Scores(ctx, ds.View(s))
	if err != nil {
		return 0, err
	}
	return scores[p], nil
}

// ScoreFunc computes the quality of subspace s as an explanation of point p.
// A non-nil error (typically ctx's) aborts the enclosing search.
type ScoreFunc func(ctx context.Context, det core.Detector, ds *dataset.Dataset, s subspace.Subspace, p int) (float64, error)

// ZScored is the paper's standardised scoring (the default).
func ZScored() ScoreFunc { return pointZScore }

// Raw is unstandardised detector scoring, for ablation only.
func Raw() ScoreFunc { return pointRawScore }

package explain

import (
	"context"
	"math"
	"testing"

	"anex/internal/subspace"
)

// pool builds pool entries from (key, score) pairs.
func pool(t *testing.T, entries ...any) []poolEntry {
	t.Helper()
	if len(entries)%2 != 0 {
		t.Fatal("pool needs key/score pairs")
	}
	out := make([]poolEntry, 0, len(entries)/2)
	for i := 0; i < len(entries); i += 2 {
		s, err := subspace.Parse(entries[i].(string))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, poolEntry{sub: s, score: toF(entries[i+1])})
	}
	return out
}

func toF(v any) float64 {
	switch x := v.(type) {
	case int:
		return float64(x)
	case float64:
		return x
	}
	panic("bad score type")
}

func TestRefOutDiscrepancyPartitionsCorrectly(t *testing.T) {
	r := &RefOut{}
	// Projections containing feature 1 score high; the rest low. The
	// discrepancy of {1} must be strongly positive; of {5} (present in
	// low-scoring entries only) strongly negative.
	p := pool(t,
		"1,2,3", 10, "1,4,5", 11, "1,2,5", 9, "1,3,4", 10,
		"2,3,4", 1, "3,4,5", 2, "2,4,5", 1, "2,3,5", 2,
	)
	high := r.discrepancy(p, subspace.New(1))
	if high < 5 {
		t.Errorf("discrepancy of the signal feature = %v, want large positive", high)
	}
	neutral := r.discrepancy(p, subspace.New(3))
	if math.Abs(neutral) > 2 {
		t.Errorf("discrepancy of a mixed feature = %v, want near zero", neutral)
	}
}

func TestRefOutDiscrepancyMultiFeatureCandidates(t *testing.T) {
	r := &RefOut{}
	// Only projections containing BOTH 1 and 2 score high.
	p := pool(t,
		"1,2,3", 10, "1,2,5", 11, "1,2,4", 10,
		"1,3,4", 1, "2,3,4", 2, "3,4,5", 1, "1,4,5", 2, "2,4,5", 1,
	)
	pair := r.discrepancy(p, subspace.New(1, 2))
	single := r.discrepancy(p, subspace.New(1))
	if pair <= single {
		t.Errorf("joint candidate discrepancy %v should exceed single-feature %v", pair, single)
	}
}

func TestRefOutDiscrepancyDegeneratePartitions(t *testing.T) {
	r := &RefOut{}
	// Candidate contained in every entry: no "without" population.
	p := pool(t, "1,2", 5, "1,3", 6, "1,4", 7)
	if d := r.discrepancy(p, subspace.New(1)); !math.IsInf(d, -1) {
		t.Errorf("all-containing candidate discrepancy = %v, want -Inf", d)
	}
	// Candidate contained in no entry.
	if d := r.discrepancy(p, subspace.New(9)); !math.IsInf(d, -1) {
		t.Errorf("never-contained candidate discrepancy = %v, want -Inf", d)
	}
	// One-sided single sample.
	p2 := pool(t, "1,2", 5, "3,4", 1, "3,5", 2, "4,5", 1)
	if d := r.discrepancy(p2, subspace.New(1)); !math.IsInf(d, -1) {
		t.Errorf("singleton partition discrepancy = %v, want -Inf", d)
	}
}

func TestRefOutPoolIsPerPointDeterministic(t *testing.T) {
	ds := unitDataset(t, 20, 6)
	det := &scriptedDetector{target: 0, script: map[string]float64{}}
	r := &RefOut{Detector: det, PoolSize: 10, Width: 5, TopK: 5, Seed: 3}
	if _, err := r.ExplainPoint(context.Background(), ds, 0, 2); err != nil {
		t.Fatal(err)
	}
	callsA := append([]string(nil), det.calls...)
	det.calls = nil
	if _, err := r.ExplainPoint(context.Background(), ds, 0, 2); err != nil {
		t.Fatal(err)
	}
	if len(callsA) != len(det.calls) {
		t.Fatal("pool draw differs across identical calls")
	}
	for i := range callsA {
		if callsA[i] != det.calls[i] {
			t.Fatal("pool draw differs across identical calls")
		}
	}
	// A different point must draw a different pool.
	det.calls = nil
	det.target = 1
	if _, err := r.ExplainPoint(context.Background(), ds, 1, 2); err != nil {
		t.Fatal(err)
	}
	same := len(callsA) == len(det.calls)
	if same {
		for i := range callsA {
			if callsA[i] != det.calls[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different points share an identical pool draw")
	}
}

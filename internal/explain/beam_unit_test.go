package explain

import (
	"context"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/subspace"
)

// scriptedDetector returns crafted scores per subspace: every point scores
// 0 except the target point, which scores the value scripted for the
// subspace key (default 0). The target's Z-score is then a strictly
// increasing function of the scripted value, so beam mechanics can be
// verified exactly.
type scriptedDetector struct {
	target int
	script map[string]float64
	calls  []string
}

func (s *scriptedDetector) Name() string { return "scripted" }

func (s *scriptedDetector) Scores(_ context.Context, v *dataset.View) ([]float64, error) {
	s.calls = append(s.calls, v.Subspace().Key())
	scores := make([]float64, v.N())
	scores[s.target] = s.script[v.Subspace().Key()]
	return scores, nil
}

// unitDataset returns a featureless-content dataset of n points × d
// features (values irrelevant — the scripted detector ignores them).
func unitDataset(t testing.TB, n, d int) *dataset.Dataset {
	t.Helper()
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = float64(i * (f + 1) % 7)
		}
	}
	ds, err := dataset.New("unit", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBeamStageOneIsExhaustive(t *testing.T) {
	ds := unitDataset(t, 10, 5)
	det := &scriptedDetector{target: 3, script: map[string]float64{}}
	beam := &Beam{Detector: det, Width: 4, TopK: 4, FixedDim: true}
	if _, err := beam.ExplainPoint(context.Background(), ds, 3, 2); err != nil {
		t.Fatal(err)
	}
	// All C(5,2) = 10 pairs must have been scored.
	seen := map[string]bool{}
	for _, k := range det.calls {
		seen[k] = true
	}
	enum := subspace.NewEnumerator(5, 2)
	for s := enum.Next(); s != nil; s = enum.Next() {
		if !seen[s.Key()] {
			t.Errorf("stage 1 skipped %v", s)
		}
	}
}

func TestBeamFollowsScriptedPath(t *testing.T) {
	ds := unitDataset(t, 10, 6)
	// Plant: {1,4} is the best pair; its extension {1,2,4} the best triple.
	det := &scriptedDetector{target: 0, script: map[string]float64{
		"1,4":   10,
		"0,3":   5,
		"1,2,4": 20,
		"0,1,3": 6,
	}}
	beam := &Beam{Detector: det, Width: 2, TopK: 5, FixedDim: true}
	got, err := beam.ExplainPoint(context.Background(), ds, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Subspace.Key() != "1,2,4" {
		t.Errorf("top 3d subspace %v, want {F1, F2, F4}", got[0].Subspace)
	}
}

func TestBeamWidthPrunesSearch(t *testing.T) {
	ds := unitDataset(t, 10, 6)
	// {0,1} scores best at 2d but its extensions score 0; {2,3} is second
	// best and its extension {2,3,4} is excellent. With width 1 the beam
	// keeps only {0,1} and never finds {2,3,4}; with width 2 it does.
	script := map[string]float64{
		"0,1":   10,
		"2,3":   9,
		"2,3,4": 50,
	}
	run := func(width int) string {
		det := &scriptedDetector{target: 0, script: script}
		beam := &Beam{Detector: det, Width: width, TopK: 1, FixedDim: true}
		got, err := beam.ExplainPoint(context.Background(), ds, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		return got[0].Subspace.Key()
	}
	if top := run(1); top == "2,3,4" {
		t.Errorf("width 1 found %s — beam should have pruned it", top)
	}
	if top := run(2); top != "2,3,4" {
		t.Errorf("width 2 top = %s, want 2,3,4", top)
	}
}

func TestBeamGlobalListKeepsEarlierStages(t *testing.T) {
	ds := unitDataset(t, 10, 5)
	// The 2d winner scores far above every 3d candidate.
	det := &scriptedDetector{target: 0, script: map[string]float64{"0,2": 100}}
	beam := &Beam{Detector: det, Width: 3, TopK: 3, FixedDim: false}
	got, err := beam.ExplainPoint(context.Background(), ds, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Subspace.Key() != "0,2" {
		t.Errorf("global list top %v, want the 2d winner {F0, F2}", got[0].Subspace)
	}
	// Beam_FX with the same script must NOT return the 2d winner.
	detFX := &scriptedDetector{target: 0, script: map[string]float64{"0,2": 100}}
	beamFX := &Beam{Detector: detFX, Width: 3, TopK: 3, FixedDim: true}
	gotFX, err := beamFX.ExplainPoint(context.Background(), ds, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range gotFX {
		if s.Subspace.Dim() != 3 {
			t.Errorf("Beam_FX leaked %dd subspace %v", s.Subspace.Dim(), s.Subspace)
		}
	}
}

func TestBeamDoesNotRescoreDuplicateCandidates(t *testing.T) {
	ds := unitDataset(t, 8, 4)
	det := &scriptedDetector{target: 0, script: map[string]float64{}}
	beam := &Beam{Detector: det, Width: 10, TopK: 10, FixedDim: true}
	if _, err := beam.ExplainPoint(context.Background(), ds, 0, 3); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, k := range det.calls {
		seen[k]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("subspace %s scored %d times", k, n)
		}
	}
}

var _ core.Detector = (*scriptedDetector)(nil)

package explain

import (
	"context"
	"fmt"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/parallel"
	"anex/internal/subspace"
)

// Beam defaults from the paper's experimental settings (Section 3.1).
const (
	DefaultBeamWidth = 100
	DefaultBeamTopK  = 100
)

// Beam is the stage-wise greedy point explainer of Nguyen et al. (DMKD
// 2016). Stage 1 scores every 2d subspace exhaustively for the point of
// interest; each later stage extends the best subspaces of the previous
// stage by one feature, up to the requested dimensionality. Two lists are
// maintained: the per-stage list driving the search, and a global list of
// the best subspaces seen across stages.
//
// With FixedDim set (the paper's Beam_FX variant) only final-stage
// subspaces — i.e. of exactly the requested dimensionality — are returned,
// making results comparable with RefOut's.
type Beam struct {
	// Detector supplies the outlyingness criterion.
	Detector core.Detector
	// Width is the beam width W (subspaces kept per stage); zero means 100.
	Width int
	// TopK bounds the returned list; zero means 100.
	TopK int
	// FixedDim selects the Beam_FX variant: return only subspaces of
	// exactly the target dimensionality.
	FixedDim bool
	// Score overrides the subspace scoring function; nil means the
	// paper's Z-score standardisation.
	Score ScoreFunc
	// Workers bounds the goroutines scoring each stage's candidate
	// subspaces; values ≤ 1 (including the zero value) keep stage scoring
	// serial. Candidates are scored independently into indexed slots, so
	// results are identical at any worker count.
	Workers int
}

// NewBeam returns a Beam explainer with the paper's settings.
func NewBeam(det core.Detector) *Beam { return &Beam{Detector: det} }

// NewBeamFX returns the fixed-dimensionality Beam_FX variant.
func NewBeamFX(det core.Detector) *Beam { return &Beam{Detector: det, FixedDim: true} }

func (b *Beam) Name() string {
	if b.FixedDim {
		return "Beam_FX"
	}
	return "Beam"
}

func (b *Beam) width() int {
	if b.Width <= 0 {
		return DefaultBeamWidth
	}
	return b.Width
}

func (b *Beam) topK() int {
	if b.TopK <= 0 {
		return DefaultBeamTopK
	}
	return b.TopK
}

func (b *Beam) score() ScoreFunc {
	if b.Score == nil {
		return pointZScore
	}
	return b.Score
}

// ExplainPoint searches subspaces up to targetDim that explain the
// outlyingness of point p, best first. The search observes ctx between
// candidate subspaces, so cancellation aborts with ctx's error.
func (b *Beam) ExplainPoint(ctx context.Context, ds *dataset.Dataset, p, targetDim int) ([]core.ScoredSubspace, error) {
	if err := core.ValidateExplainArgs(ds, p, targetDim); err != nil {
		return nil, fmt.Errorf("beam: %w", err)
	}
	if b.Detector == nil {
		return nil, fmt.Errorf("beam: nil detector")
	}
	if targetDim < 2 {
		return nil, fmt.Errorf("beam: target dimensionality must be ≥ 2, got %d", targetDim)
	}
	score := b.score()
	w := b.width()

	// Stage 1: score all 2d subspaces exhaustively. Candidate enumeration
	// is cheap and stays serial (a deterministic list); the detector-bound
	// scoring fans out over the stage worker budget.
	cands := StageCandidates(ds.D(), 2)
	stage, err := b.scoreStage(ctx, ds, cands, p, score)
	if err != nil {
		return nil, err
	}
	core.SortByScore(stage)
	stage = core.TopK(stage, w)
	global := mergeGlobal(nil, stage, w)

	// Later stages: extend the stage list one feature at a time.
	for dim := 3; dim <= targetDim; dim++ {
		seen := make(map[string]bool)
		cands = cands[:0]
		for _, cur := range stage {
			for f := 0; f < ds.D(); f++ {
				if cur.Subspace.Contains(f) {
					continue
				}
				cand := cur.Subspace.With(f)
				key := cand.Key()
				if seen[key] {
					continue
				}
				seen[key] = true
				cands = append(cands, cand)
			}
		}
		next, err := b.scoreStage(ctx, ds, cands, p, score)
		if err != nil {
			return nil, err
		}
		core.SortByScore(next)
		stage = core.TopK(next, w)
		global = mergeGlobal(global, stage, w)
	}

	if b.FixedDim {
		out := make([]core.ScoredSubspace, len(stage))
		copy(out, stage)
		return core.TopK(out, b.topK()), nil
	}
	return core.TopK(global, b.topK()), nil
}

// StageCandidates enumerates every subspace of exactly dim features over a
// d-feature dataset, in the enumerator's deterministic order. It is the
// candidate universe of one exhaustive sweep — what Beam's stage 1 scores
// (dim 2) and what the grid's prefetch pass warms the neighbourhood plane
// with (dims 1 and 2) before any cell starts. dim values outside [1, d]
// yield an empty list.
func StageCandidates(d, dim int) []subspace.Subspace {
	var out []subspace.Subspace
	enum := subspace.NewEnumerator(d, dim)
	for s := enum.Next(); s != nil; s = enum.Next() {
		out = append(out, s.Clone())
	}
	return out
}

// scoreStage scores every candidate subspace for point p, fanning out over
// the explainer's worker budget. Each candidate writes only its own indexed
// slot, so the returned list is identical at any worker count; on failure
// the first error in candidate order is returned, deterministically.
func (b *Beam) scoreStage(ctx context.Context, ds *dataset.Dataset, cands []subspace.Subspace, p int, score ScoreFunc) ([]core.ScoredSubspace, error) {
	out := make([]core.ScoredSubspace, len(cands))
	errs := make([]error, len(cands))
	ctxErr := parallel.ForEach(ctx, b.Workers, len(cands), func(i int) {
		sc, err := score(ctx, b.Detector, ds, cands[i], p)
		out[i] = core.ScoredSubspace{Subspace: cands[i], Score: sc}
		errs[i] = err
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeGlobal merges the stage list into the global list, keeping the w
// best-scored subspaces across stages.
func mergeGlobal(global, stage []core.ScoredSubspace, w int) []core.ScoredSubspace {
	merged := make([]core.ScoredSubspace, 0, len(global)+len(stage))
	merged = append(merged, global...)
	merged = append(merged, stage...)
	core.SortByScore(merged)
	return core.TopK(merged, w)
}

var _ core.PointExplainer = (*Beam)(nil)

package explain

import (
	"context"
	"testing"

	"anex/internal/core"
	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/subspace"
	"anex/internal/synth"
)

// testbed generates a small synthetic dataset with planted 2d and 3d
// subspace outliers, shared across the explainer tests.
func testbed(t *testing.T, seed int64) (*dataset.Dataset, *dataset.GroundTruth) {
	t.Helper()
	ds, gt, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "explain-test",
		TotalDims:           8,
		SubspaceDims:        []int{2, 3},
		N:                   200,
		OutliersPerSubspace: 3,
		Seed:                seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, gt
}

// pointWithDim returns an outlier explained by a subspace of the given
// dimensionality together with that subspace.
func pointWithDim(t *testing.T, gt *dataset.GroundTruth, dim int) (int, subspace.Subspace) {
	t.Helper()
	for _, p := range gt.Outliers() {
		if rel := gt.RelevantAt(p, dim); len(rel) > 0 {
			return p, rel[0]
		}
	}
	t.Fatalf("no outlier explained at %dd", dim)
	return 0, nil
}

func TestBeamFindsPlanted2d(t *testing.T) {
	ds, gt := testbed(t, 1)
	p, want := pointWithDim(t, gt, 2)
	beam := &Beam{Detector: detector.NewLOF(15), Width: 20, TopK: 10, FixedDim: true}
	got, err := beam.ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no subspaces returned")
	}
	// Beam scores all 2d subspaces exhaustively: the planted subspace
	// must rank first.
	if !got[0].Subspace.Equal(want) {
		t.Errorf("top subspace %v, want %v (full list: %v)", got[0].Subspace, want, got[:3])
	}
}

func TestBeamFindsPlanted3d(t *testing.T) {
	ds, gt := testbed(t, 2)
	p, want := pointWithDim(t, gt, 3)
	beam := &Beam{Detector: detector.NewLOF(15), Width: 30, TopK: 10, FixedDim: true}
	got, err := beam.ExplainPoint(context.Background(), ds, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range got {
		if s.Subspace.Equal(want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("planted %v not in top-%d: %v", want, len(got), got)
	}
}

func TestBeamFixedDimReturnsOnlyTargetDim(t *testing.T) {
	ds, gt := testbed(t, 3)
	p := gt.Outliers()[0]
	beam := &Beam{Detector: detector.NewLOF(15), Width: 10, TopK: 50, FixedDim: true}
	got, err := beam.ExplainPoint(context.Background(), ds, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s.Subspace.Dim() != 3 {
			t.Errorf("Beam_FX returned %dd subspace %v", s.Subspace.Dim(), s.Subspace)
		}
	}
}

func TestBeamVariableDimMixesDims(t *testing.T) {
	ds, gt := testbed(t, 4)
	p, want2 := pointWithDim(t, gt, 2)
	beam := &Beam{Detector: detector.NewLOF(15), Width: 20, TopK: 20, FixedDim: false}
	got, err := beam.ExplainPoint(context.Background(), ds, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The global list keeps the best across stages: for a point planted
	// in a 2d subspace, that 2d subspace should be near the top even when
	// 3d explanations were requested.
	foundDim2 := false
	for _, s := range got {
		if s.Subspace.Equal(want2) {
			foundDim2 = true
		}
	}
	if !foundDim2 {
		t.Errorf("global list lost the planted 2d subspace %v", want2)
	}
}

func TestBeamResultsSortedAndScored(t *testing.T) {
	ds, gt := testbed(t, 5)
	p := gt.Outliers()[0]
	beam := &Beam{Detector: detector.NewLOF(15), Width: 15, TopK: 15, FixedDim: true}
	got, err := beam.ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("results unsorted at %d: %v > %v", i, got[i].Score, got[i-1].Score)
		}
	}
	if len(got) > 15 {
		t.Errorf("TopK not honoured: %d results", len(got))
	}
}

func TestBeamErrors(t *testing.T) {
	ds, _ := testbed(t, 6)
	beam := NewBeam(detector.NewLOF(15))
	if _, err := beam.ExplainPoint(context.Background(), ds, -1, 2); err == nil {
		t.Error("negative point should fail")
	}
	if _, err := beam.ExplainPoint(context.Background(), ds, 0, 1); err == nil {
		t.Error("targetDim < 2 should fail")
	}
	if _, err := beam.ExplainPoint(context.Background(), ds, 0, 99); err == nil {
		t.Error("targetDim > D should fail")
	}
	if _, err := beam.ExplainPoint(context.Background(), nil, 0, 2); err == nil {
		t.Error("nil dataset should fail")
	}
	noDet := &Beam{}
	if _, err := noDet.ExplainPoint(context.Background(), ds, 0, 2); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestBeamNames(t *testing.T) {
	if NewBeam(nil).Name() != "Beam" {
		t.Error("Beam name")
	}
	if NewBeamFX(nil).Name() != "Beam_FX" {
		t.Error("Beam_FX name")
	}
	if NewRefOut(nil, 0).Name() != "RefOut" {
		t.Error("RefOut name")
	}
}

func TestRefOutFindsPlanted2d(t *testing.T) {
	// RefOut's random-projection search is inherently stochastic; across
	// seeds it ranks the planted subspace in the top-5 in ~10 of 12
	// draws. The fixed seed here selects a representative success.
	ds, gt := testbed(t, 4)
	p, want := pointWithDim(t, gt, 2)
	refout := &RefOut{
		Detector: detector.NewLOF(15),
		PoolSize: 80,
		Width:    20,
		TopK:     10,
		Seed:     42,
	}
	got, err := refout.ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range got[:min(5, len(got))] {
		if s.Subspace.Equal(want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("planted %v not in RefOut top-5: %v", want, got[:min(5, len(got))])
	}
}

func TestRefOutReturnsRequestedDim(t *testing.T) {
	ds, gt := testbed(t, 8)
	p := gt.Outliers()[0]
	refout := NewRefOut(detector.NewLOF(15), 1)
	got, err := refout.ExplainPoint(context.Background(), ds, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if s.Subspace.Dim() != 3 {
			t.Errorf("RefOut returned %dd subspace", s.Subspace.Dim())
		}
	}
}

func TestRefOutDeterministicPerSeed(t *testing.T) {
	ds, gt := testbed(t, 9)
	p := gt.Outliers()[0]
	a, err := NewRefOut(detector.NewLOF(15), 5).ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRefOut(detector.NewLOF(15), 5).ExplainPoint(context.Background(), ds, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if !a[i].Subspace.Equal(b[i].Subspace) || a[i].Score != b[i].Score {
			t.Fatalf("results differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRefOutPoolDimFraction(t *testing.T) {
	r := &RefOut{PoolDimFraction: 0.5}
	if got := r.poolDim(10); got != 5 {
		t.Errorf("poolDim(10) = %d", got)
	}
	r = &RefOut{} // default 0.7
	if got := r.poolDim(10); got != 7 {
		t.Errorf("default poolDim(10) = %d", got)
	}
	if got := r.poolDim(2); got != 2 {
		t.Errorf("poolDim(2) = %d (must clamp to ≥ 2)", got)
	}
}

func TestRefOutErrors(t *testing.T) {
	ds, _ := testbed(t, 10)
	refout := NewRefOut(detector.NewLOF(15), 1)
	if _, err := refout.ExplainPoint(context.Background(), ds, 999, 2); err == nil {
		t.Error("out-of-range point should fail")
	}
	// Target dim above the pool projection dimensionality is impossible.
	narrow := &RefOut{Detector: detector.NewLOF(15), PoolDimFraction: 0.3}
	if _, err := narrow.ExplainPoint(context.Background(), ds, 0, 5); err == nil {
		t.Error("targetDim > poolDim should fail")
	}
	noDet := &RefOut{}
	if _, err := noDet.ExplainPoint(context.Background(), ds, 0, 2); err == nil {
		t.Error("nil detector should fail")
	}
}

func TestExplainersSatisfyInterface(t *testing.T) {
	var _ core.PointExplainer = NewBeam(detector.NewLOF(15))
	var _ core.PointExplainer = NewRefOut(detector.NewLOF(15), 0)
}

func TestZScoredVsRawScoring(t *testing.T) {
	ds, gt := testbed(t, 12)
	p, _ := pointWithDim(t, gt, 2)
	s := subspace.New(0, 1)
	det := detector.NewLOF(15)
	z, err := ZScored()(context.Background(), det, ds, s, p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Raw()(context.Background(), det, ds, s, p)
	if err != nil {
		t.Fatal(err)
	}
	if z == r {
		t.Error("Z-scored and raw scores should generally differ")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package neighbors

import (
	"container/list"
	"context"
	"math"
	"sort"
	"strconv"
	"sync"

	"anex/internal/parallel"
)

// The delta engine answers AllKNN queries over low-dimensional subspace
// views by exploiting the structure of staged subspace search instead of
// building a fresh spatial index per view:
//
//   - Squared Euclidean distance decomposes additively over dimensions, so
//     the distance between two points in any SUB-subspace lower-bounds their
//     distance in the full subspace. A single sorted dimension therefore
//     yields a sweep order in which candidates can be abandoned as soon as
//     the one-dimensional gap alone exceeds the current k-th distance.
//   - A parent subspace's cached per-point kNN (its "partials") seeds the
//     child query S ∪ {f}: adding only the one-dimension component
//     (a_f − b_f)² to the cached parent squared distances gives a tight
//     upper bound on the child's k-th neighbour distance, which prunes most
//     of the candidate scan outright.
//
// Results are bit-identical to the brute-force / KD-tree path: every
// surviving candidate's distance is accumulated in ascending feature order,
// which for dimensionality ≤ MaxDeltaDim is exactly the grouping
// SquaredEuclidean uses, and the kept k-set is the unique lexicographic
// minimum under (distance, index), independent of visit order.

const (
	// MaxDeltaDim bounds the view dimensionality the engine accepts.
	// SquaredEuclidean's 4-way unrolled accumulation is exactly
	// left-associative sequential only below 8 dimensions (the first
	// 4-chunk lands on a zero sum; from 8 dimensions the chunk grouping
	// differs), so 7 is the largest width at which per-dimension
	// accumulation reproduces its values bit for bit.
	MaxDeltaDim = 7

	// maxDeltaPoints and minDeltaPoints gate the engine by view size: the
	// candidate scans are O(n) per query, which measures faster than the
	// KD-tree only up to a few hundred points; tiny views are cheaper to
	// score through the plain index.
	maxDeltaPoints = 512
	minDeltaPoints = 64

	// sweepMaxDim bounds the sorted-dimension sweep path; wider views use
	// the seeded candidate scan, whose pruning threshold comes from cached
	// parent or full-space neighbourhoods.
	sweepMaxDim = 2

	// deltaMargin is the relative safety factor applied to prune radii
	// derived from parent partials. A parent squared distance and the
	// child's canonical accumulation order sum the same non-negative terms
	// in different groupings, so they agree to within a few ulps
	// (relative error ≤ ~d·ε ≈ 1.6e-15 at d=7); 1e-9 over-covers that by
	// six orders of magnitude while loosening the radius immeasurably.
	deltaMargin = 1e-9

	// DefaultDeltaBytes bounds the engine's cached per-subspace
	// neighbourhoods (the partials reused across search stages).
	DefaultDeltaBytes = 64 << 20

	// deltaEntryOverhead approximates the per-entry bookkeeping charge.
	deltaEntryOverhead = 96

	// maxDeltaSources bounds the per-dataset pinned structures (sorted
	// dimension orders, full-space seeds) an engine retains. A per-detector
	// engine only ever sees a handful of datasets, but the process-wide
	// shared plane funnels EVERY dataset in the process through one engine,
	// so the coldest source is dropped once the cap is reached — its
	// structures are rebuilt on demand if that dataset returns.
	maxDeltaSources = 32
)

// ColumnSource is the column-contiguous access the delta engine needs from
// a subspace view: the view's own columns in ascending feature order, plus
// enough source identity to key cached structures. dataset.View implements
// it; the engine deliberately depends only on this interface.
type ColumnSource interface {
	// N returns the number of points.
	N() int
	// Dim returns the view's dimensionality.
	Dim() int
	// Column returns the j-th column of the view (ascending feature
	// order), shared storage of length N.
	Column(j int) []float64
	// Feature returns the global feature index of view column j.
	Feature(j int) int
	// NumFeatures returns the source dataset's full dimensionality.
	NumFeatures() int
	// SourceColumn returns full-space column f, shared storage.
	SourceColumn(f int) []float64
	// SourceKey identifies the underlying dataset; sources scored through
	// one engine must carry distinct keys.
	SourceKey() string
	// SubspaceKey canonically identifies the view's subspace.
	SubspaceKey() string
}

// DeltaStats is a point-in-time snapshot of the engine's activity.
type DeltaStats struct {
	// Queries counts AllKNN calls the engine accepted.
	Queries int
	// SweepQueries of those used the sorted-dimension sweep (1d/2d views).
	SweepQueries int
	// ParentSeeded of those pruned with a cached parent subspace's kNN.
	ParentSeeded int
	// FullSeeded of those pruned with the cached full-space kNN.
	FullSeeded int
	// Rejected counts calls outside the engine's gates (dimension or size).
	Rejected int
	// Evictions counts cached neighbourhoods dropped for the byte budget.
	Evictions int
	// ResidentBytes is the budget charge of cached neighbourhoods.
	ResidentBytes int64
}

// DeltaEngine caches the cross-subspace structures — per-dimension sorted
// orders, per-subspace kNN partials, and per-source full-space
// neighbourhoods — that make staged subspace scoring incremental. It is safe
// for concurrent use; cached structures are immutable once published, and
// concurrent builds of the same structure are serialised so it is computed
// once.
type DeltaEngine struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	tick     int64 // source-recency clock (see source)
	sources  map[string]*deltaSource
	entries  map[string]*list.Element // of *knnEntry, LRU
	lru      list.List
	stats    DeltaStats
}

// deltaSource holds the per-dataset structures: sorted per-dimension orders,
// 1d neighbourhoods derived from them, and the full-space kNN per
// neighbourhood size. All are small and pinned (excluded from the LRU byte
// budget).
type deltaSource struct {
	dims    map[int]*sortedDim
	ranges  map[int]float64
	pairs   map[string]*sweepPair
	fullKNN map[int]*knnEntry
	finite  map[int]bool
	lastUse int64 // tick of the most recent source() lookup
}

// finiteColumn reports (memoised per feature) whether the column holds only
// finite values. NaN or ±Inf coordinates would break both the sweep's gap
// lower bound and the bit-ordered distance compares of the packed top-k, so
// the engine declines such views and the caller's standard-path fallback
// answers them. Caller holds mu.
func (ds *deltaSource) finiteColumn(src ColumnSource, j int) bool {
	f := src.Feature(j)
	if fin, ok := ds.finite[f]; ok {
		return fin
	}
	fin := true
	for _, x := range src.Column(j) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			fin = false
			break
		}
	}
	ds.finite[f] = fin
	return fin
}

// sweepPair is the 2d sweep structure of one subspace: the sweep dimension's
// sorted order plus the OTHER dimension's values gathered into that order,
// so the outward walk touches only sequential memory.
type sweepPair struct {
	sd      *sortedDim
	other   []float64
	swFirst bool // sweep dimension is the lower feature (canonical order)
}

// pairFor returns (building on demand, O(n)) the 2d sweep structure for the
// view's subspace, sweeping column j.
func (ds *deltaSource) pairFor(src ColumnSource, j int) *sweepPair {
	key := src.SubspaceKey()
	if p, ok := ds.pairs[key]; ok {
		return p
	}
	sd := ds.sortedFor(src, j)
	oc := src.Column(1 - j)
	other := make([]float64, len(sd.ord))
	for r, id := range sd.ord {
		other[r] = oc[id]
	}
	p := &sweepPair{sd: sd, other: other, swFirst: j == 0}
	ds.pairs[key] = p
	return p
}

// sortedDim is one dimension's sort order: vals ascending, ord the point
// index at each sorted position, rank the inverse permutation.
type sortedDim struct {
	vals []float64
	ord  []int32
	rank []int32
}

// knnEntry is one cached neighbourhood structure: for every point, its m
// nearest neighbours (ascending by distance, index tie-break) and their
// SQUARED canonical distances — the partials that child subspaces extend by
// one dimension.
type knnEntry struct {
	key  string
	m    int
	idx  []int32   // n×m neighbour indices
	sq   []float64 // n×m squared distances (the reusable partials)
	dist []float64 // n×m Euclidean distances (what consumers read)
}

func (en *knnEntry) bytes() int64 {
	return int64(len(en.idx))*4 + int64(len(en.sq)+len(en.dist))*8 + int64(len(en.key)) + deltaEntryOverhead
}

// entryKey is the LRU key of a cached neighbourhood.
func entryKey(src ColumnSource, k int) string {
	return src.SourceKey() + "|" + src.SubspaceKey() + "|" + strconv.Itoa(k)
}

// NewDeltaEngine returns an engine whose cached per-subspace neighbourhoods
// are bounded by maxBytes (≤ 0 → DefaultDeltaBytes).
func NewDeltaEngine(maxBytes int64) *DeltaEngine {
	if maxBytes <= 0 {
		maxBytes = DefaultDeltaBytes
	}
	return &DeltaEngine{
		maxBytes: maxBytes,
		sources:  make(map[string]*deltaSource),
		entries:  make(map[string]*list.Element),
	}
}

// Forget drops the pinned per-source structures and every cached
// neighbourhood entry of the dataset identified by sourceKey
// (dataset.Dataset.SourceKey). Owners of short-lived datasets call it when
// the dataset dies, so its sorted orders, sweep pairs, and kNN partials do
// not occupy one of the maxDeltaSources slots (or LRU budget) until
// pressure evicts them. Safe when sourceKey has no state.
func (e *DeltaEngine) Forget(sourceKey string) {
	if e == nil || sourceKey == "" {
		return
	}
	prefix := sourceKey + "|"
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.sources, sourceKey)
	for key, el := range e.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			en := el.Value.(*knnEntry)
			e.lru.Remove(el)
			delete(e.entries, key)
			e.bytes -= en.bytes()
		}
	}
}

// Stats returns the engine's activity counters.
func (e *DeltaEngine) Stats() DeltaStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.ResidentBytes = e.bytes
	return s
}

// AllKNN answers the all-points k-nearest-neighbour query for the view when
// it falls inside the engine's gates (dimensionality ≤ MaxDeltaDim, point
// count within the scan-friendly range), distributing the independent
// per-point queries over the given number of workers. The returned arrays
// are flat n×m row-major (m = min(k, n−1)): point i's neighbours are
// idx[i*m : (i+1)*m] with Euclidean distances in the matching dist slots,
// ascending, index tie-broken — bit-identical to AllKNNParallel over
// NewIndex at any worker count. The arrays are backed by the engine's
// cache (a repeated query returns them without recomputation or
// allocation) and must not be mutated. ok reports whether the engine
// handled the query; on false the caller must fall back to the standard
// index path.
func (e *DeltaEngine) AllKNN(ctx context.Context, src ColumnSource, k, workers int) (idx []int32, dist []float64, m int, ok bool, err error) {
	if e == nil {
		return nil, nil, 0, false, nil
	}
	n, d := src.N(), src.Dim()
	if d < 1 || d > MaxDeltaDim || n < minDeltaPoints || n > maxDeltaPoints || k < 1 {
		e.mu.Lock()
		e.stats.Rejected++
		e.mu.Unlock()
		return nil, nil, 0, false, nil
	}
	m = k
	if m > n-1 {
		m = n - 1
	}
	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = src.Column(j)
	}

	q := &deltaQuery{cols: cols, n: n, m: m}
	key := entryKey(src, k)
	e.mu.Lock()
	e.stats.Queries++
	if el, hit := e.entries[key]; hit {
		en := el.Value.(*knnEntry)
		e.lru.MoveToFront(el)
		e.mu.Unlock()
		return en.idx, en.dist, en.m, true, nil
	}
	ds := e.source(src.SourceKey())
	for j := 0; j < d; j++ {
		if !ds.finiteColumn(src, j) {
			e.stats.Queries--
			e.stats.Rejected++
			e.mu.Unlock()
			return nil, nil, 0, false, nil
		}
	}
	if d == 1 {
		e.stats.SweepQueries++
		q.sweep = ds.sortedFor(src, 0)
	} else if d == 2 {
		e.stats.SweepQueries++
		q.pair = ds.pairFor(src, e.bestSweepColumn(ds, src))
	} else if parent := e.parentEntry(src, k); parent != nil {
		e.stats.ParentSeeded++
		q.seedIdx, q.seedSq = parent.idx, parent.sq
		q.seedM = parent.m
		q.deltaCol = q.missingColumn(src, parent)
	} else {
		full, ferr := e.fullSpaceKNN(ctx, ds, src, k, workers)
		if ferr != nil {
			e.mu.Unlock()
			return nil, nil, 0, false, ferr
		}
		e.stats.FullSeeded++
		q.seedIdx = full.idx
		q.seedM = full.m
	}
	e.mu.Unlock()

	flatIdx := make([]int32, n*m)
	flatSq := make([]float64, n*m)
	scratch := make([]deltaScratch, parallel.ShardCount(workers, n))
	err = parallel.ForEachShard(ctx, workers, n, func(shard, i int) {
		q.point(i, flatIdx[i*m:(i+1)*m], flatSq[i*m:(i+1)*m], &scratch[shard])
	})
	if err != nil {
		return nil, nil, 0, false, err
	}

	flatDist := make([]float64, n*m)
	for i, sq := range flatSq {
		flatDist[i] = math.Sqrt(sq)
	}
	e.store(key, m, flatIdx, flatSq, flatDist)
	return flatIdx, flatDist, m, true, nil
}

// FlattenKNN converts the per-point neighbour slices of AllKNNParallel into
// the flat row-major arrays the delta engine returns, so detector hot loops
// have a single shape on both paths. All rows must share one length (the
// AllKNNParallel contract).
func FlattenKNN(idx [][]int, dist [][]float64) ([]int32, []float64, int) {
	if len(idx) == 0 {
		return nil, nil, 0
	}
	m := len(idx[0])
	flatIdx := make([]int32, len(idx)*m)
	flatDist := make([]float64, len(idx)*m)
	for i := range idx {
		for j, p := range idx[i] {
			flatIdx[i*m+j] = int32(p)
		}
		copy(flatDist[i*m:(i+1)*m], dist[i])
	}
	return flatIdx, flatDist, m
}

// source returns (creating on demand) the per-dataset state, evicting the
// least-recently-used source past maxDeltaSources. Caller holds mu.
func (e *DeltaEngine) source(key string) *deltaSource {
	e.tick++
	ds, ok := e.sources[key]
	if !ok {
		if len(e.sources) >= maxDeltaSources {
			coldKey, coldUse := "", int64(1<<62)
			for k, s := range e.sources {
				if s.lastUse < coldUse {
					coldKey, coldUse = k, s.lastUse
				}
			}
			delete(e.sources, coldKey)
		}
		ds = &deltaSource{
			dims:    make(map[int]*sortedDim),
			ranges:  make(map[int]float64),
			pairs:   make(map[string]*sweepPair),
			fullKNN: make(map[int]*knnEntry),
			finite:  make(map[int]bool),
		}
		e.sources[key] = ds
	}
	ds.lastUse = e.tick
	return ds
}

// bestSweepColumn picks the view column whose dimension spreads widest —
// the sweep dimension with the strongest one-dimensional pruning. The
// choice only affects speed, never results, but is deterministic (ties go
// to the lowest feature). Caller holds mu.
func (e *DeltaEngine) bestSweepColumn(ds *deltaSource, src ColumnSource) int {
	best, bestSpread := 0, math.Inf(-1)
	for j := 0; j < src.Dim(); j++ {
		f := src.Feature(j)
		spread, ok := ds.ranges[f]
		if !ok {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range src.Column(j) {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			spread = hi - lo
			ds.ranges[f] = spread
		}
		if spread > bestSpread {
			best, bestSpread = j, spread
		}
	}
	return best
}

// sortedFor returns (building on demand) the sorted order of the given view
// column's dimension. Caller holds mu.
func (ds *deltaSource) sortedFor(src ColumnSource, j int) *sortedDim {
	f := src.Feature(j)
	if sd, ok := ds.dims[f]; ok {
		return sd
	}
	col := src.Column(j)
	n := len(col)
	sd := &sortedDim{
		vals: make([]float64, n),
		ord:  make([]int32, n),
		rank: make([]int32, n),
	}
	for i := range sd.ord {
		sd.ord[i] = int32(i)
	}
	sort.Slice(sd.ord, func(a, b int) bool {
		va, vb := col[sd.ord[a]], col[sd.ord[b]]
		if va != vb {
			return va < vb
		}
		return sd.ord[a] < sd.ord[b] // deterministic on duplicate values
	})
	for r, p := range sd.ord {
		sd.vals[r] = col[p]
		sd.rank[p] = int32(r)
	}
	ds.dims[f] = sd
	return sd
}

// parentEntry looks for a cached kNN of any drop-one-feature parent of the
// view's subspace at the same neighbourhood size, lowest dropped feature
// first (deterministic). Caller holds mu.
func (e *DeltaEngine) parentEntry(src ColumnSource, k int) *knnEntry {
	sk := src.SubspaceKey()
	prefix := src.SourceKey() + "|"
	suffix := "|" + strconv.Itoa(k)
	for j := 0; j < src.Dim(); j++ {
		pkey := prefix + dropFeature(sk, src.Feature(j)) + suffix
		if el, ok := e.entries[pkey]; ok {
			e.lru.MoveToFront(el)
			return el.Value.(*knnEntry)
		}
	}
	return nil
}

// dropFeature removes one feature from a canonical "1,4,9" subspace key.
func dropFeature(key string, f int) string {
	tok := strconv.Itoa(f)
	if key == tok {
		return ""
	}
	if len(key) > len(tok)+1 && key[:len(tok)+1] == tok+"," {
		return key[len(tok)+1:]
	}
	needle := "," + tok
	for i := 0; i+len(needle) <= len(key); i++ {
		if key[i:i+len(needle)] == needle &&
			(i+len(needle) == len(key) || key[i+len(needle)] == ',') {
			return key[:i] + key[i+len(needle):]
		}
	}
	return key
}

// missingColumn returns the view column of the one feature the parent
// subspace lacks — the delta dimension. Parent keys are built by
// dropFeature, so the missing feature is the one whose drop reproduces the
// parent's subspace part. Returns nil if no feature matches (the parent
// kNN then still seeds via canonical distances, without the delta shortcut).
func (q *deltaQuery) missingColumn(src ColumnSource, parent *knnEntry) []float64 {
	prefix := src.SourceKey() + "|"
	for j := 0; j < src.Dim(); j++ {
		want := prefix + dropFeature(src.SubspaceKey(), src.Feature(j)) + "|"
		if len(parent.key) > len(want) && parent.key[:len(want)] == want {
			return src.Column(j)
		}
	}
	return nil
}

// fullSpaceKNN returns (building on demand) the source's full-space kNN at
// neighbourhood size k — the seed structure for views with no cached
// parent. Full-space distances upper-bound no subspace distance directly,
// but the candidates themselves are excellent threshold seeds: their
// canonical subspace distances are computed exactly, and the k-th of them
// always upper-bounds the true k-th. Caller holds mu; the build (one per
// source and k) runs inside it.
func (e *DeltaEngine) fullSpaceKNN(ctx context.Context, ds *deltaSource, src ColumnSource, k, workers int) (*knnEntry, error) {
	if en, ok := ds.fullKNN[k]; ok {
		return en, nil
	}
	n, fd := src.N(), src.NumFeatures()
	flat := make([]float64, n*fd)
	rows := make([][]float64, n)
	for f := 0; f < fd; f++ {
		col := src.SourceColumn(f)
		for i := 0; i < n; i++ {
			flat[i*fd+f] = col[i]
		}
	}
	for i := range rows {
		rows[i] = flat[i*fd : (i+1)*fd : (i+1)*fd]
	}
	// The flat builder hands back the packed int32 layout knnEntry wants
	// directly, and NewIndex routes wide full spaces through the landmark
	// tier — so the seed structure both skips the per-row slice headers
	// and inherits the pruned scan. Indices are bit-identical either way.
	ix := NewIndex(rows)
	idx, _, m, err := AllKNNFlat(ctx, ix, k, workers)
	if err != nil {
		return nil, err
	}
	en := &knnEntry{m: m, idx: idx}
	ds.fullKNN[k] = en
	return en, nil
}

// store publishes a freshly computed neighbourhood into the LRU partials
// cache, evicting cold entries past the byte budget.
func (e *DeltaEngine) store(key string, m int, idx []int32, sq, dist []float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.entries[key]; ok {
		e.lru.MoveToFront(el)
		return
	}
	en := &knnEntry{key: key, m: m, idx: idx, sq: sq, dist: dist}
	e.bytes += en.bytes()
	e.entries[key] = e.lru.PushFront(en)
	for e.bytes > e.maxBytes && e.lru.Len() > 1 {
		cold := e.lru.Back()
		old := cold.Value.(*knnEntry)
		e.lru.Remove(cold)
		delete(e.entries, old.key)
		e.bytes -= old.bytes()
		e.stats.Evictions++
	}
}

// deltaQuery is one AllKNN invocation's immutable query plan.
type deltaQuery struct {
	cols [][]float64
	n, m int

	// Sweep paths: sorted order of the sweep dimension (1d views), or the
	// paired structure with the second dimension gathered into sweep order
	// (2d views).
	sweep *sortedDim
	pair  *sweepPair

	// Seeded path (dim > sweepMaxDim): threshold candidates per point.
	seedIdx  []int32
	seedSq   []float64 // parent squared distances (nil for full-space seeds)
	seedM    int
	deltaCol []float64 // the one dimension the parent lacks (nil → canonical seeds)
}

// deltaScratch is the per-worker reusable query state.
type deltaScratch struct {
	topk topKScratch
	sd   []float64
	row  []float64
}

// nnPair is one top-k entry: the squared distance as its IEEE-754 bit
// pattern plus the neighbour index, packed into 16 bytes so an insertion
// shift moves one struct instead of slots in two parallel arrays. Squared
// distances of finite data are non-negative (possibly +Inf on overflow),
// and for non-negative non-NaN floats the bit patterns order exactly as the
// values — the finiteColumn gate excludes the NaN case — so uint64 compares
// on du are bit-equivalent to float compares on the distance.
type nnPair struct {
	du uint64
	id int32
}

// topKScratch maintains the k smallest (distance, index) pairs seen,
// ascending, ordered lexicographically by (distance, index) — the same
// total order and boundary tie-break as the standard path's boundedHeap,
// so the kept k-set is independent of visitation order even with
// duplicated points. An insertion-sorted array measures faster than a
// binary heap at the k ≈ 10–15 the detectors use: the average shift is
// short, sequential, and branch-predictable, where heap sift-downs pay
// two data-dependent comparisons per level.
type topKScratch struct {
	ent []nnPair
}

func (t *topKScratch) reset(k int) {
	if cap(t.ent) < k {
		t.ent = make([]nnPair, 0, k)
	}
	t.ent = t.ent[:0]
}

// insert adds (du, j), evicting the lexicographic maximum when full. A
// full-boundary tie — du equal to the current k-th distance with j above
// the incumbent's index — is a no-op, exactly boundedHeap.push semantics.
func (t *topKScratch) insert(du uint64, j int32, k int) {
	e := t.ent
	m := len(e)
	if m < k {
		e = append(e, nnPair{})
		t.ent = e
	} else {
		m = k - 1
		if du > e[m].du || (du == e[m].du && j > e[m].id) {
			return
		}
	}
	i := m
	for i > 0 && (e[i-1].du > du || (e[i-1].du == du && e[i-1].id > j)) {
		e[i] = e[i-1]
		i--
	}
	e[i] = nnPair{du: du, id: j}
}

// sortNNPairs insertion-sorts the entries ascending by (du, id).
func sortNNPairs(e []nnPair) {
	for a := 1; a < len(e); a++ {
		p := e[a]
		b := a - 1
		for b >= 0 && (e[b].du > p.du || (e[b].du == p.du && e[b].id > p.id)) {
			e[b+1] = e[b]
			b--
		}
		e[b+1] = p
	}
}

// point answers one query into the output slots.
func (q *deltaQuery) point(i int, outIdx []int32, outSq []float64, s *deltaScratch) {
	s.topk.reset(q.m)
	switch {
	case q.pair != nil:
		q.sweepPairPoint(i, s)
	case q.sweep != nil:
		q.sweepPoint(i, s)
	default:
		q.scanPoint(i, s)
	}
	for t, en := range s.topk.ent {
		outIdx[t] = en.id
		outSq[t] = math.Float64frombits(en.du)
	}
}

// canonical returns the squared distance between points a and b accumulated
// in ascending feature order — bit-identical to SquaredEuclidean on the
// materialised rows for dim ≤ MaxDeltaDim.
func (q *deltaQuery) canonical(a, b int) float64 {
	c0 := q.cols[0]
	d0 := c0[a] - c0[b]
	dd := d0 * d0
	for _, c := range q.cols[1:] {
		dv := c[a] - c[b]
		dd += dv * dv
	}
	return dd
}

// sweepPoint visits candidates outward from the query's sorted position in
// the sweep dimension: the one-dimensional gap lower-bounds the full
// distance, so both walks stop as soon as the gap alone exceeds the current
// k-th distance. Candidates interleave by gap until the k-set fills, then
// each side drains independently (sequential, branch-predictable).
func (q *deltaQuery) sweepPoint(i int, s *deltaScratch) {
	sw := q.sweep
	n, k := q.n, q.m
	xq := sw.vals[sw.rank[i]]
	lo := int(sw.rank[i]) - 1
	hi := int(sw.rank[i]) + 1
	worst := math.Float64bits(math.Inf(1))
	// Fill phase: interleave both sides by gap so worst tightens fast.
	for len(s.topk.ent) < k && (lo >= 0 || hi < n) {
		var j int32
		if lo >= 0 && (hi >= n || xq-sw.vals[lo] <= sw.vals[hi]-xq) {
			j = sw.ord[lo]
			lo--
		} else {
			j = sw.ord[hi]
			hi++
		}
		if int(j) == i {
			continue
		}
		s.topk.insert(math.Float64bits(q.canonical(i, int(j))), j, k)
	}
	if len(s.topk.ent) == k {
		worst = s.topk.ent[k-1].du
	}
	// Drain phase: each side walks out until its gap² exceeds worst. The
	// gap grows monotonically per side and worst only shrinks, so the
	// first excess bounds everything beyond it.
	for ; lo >= 0; lo-- {
		g := xq - sw.vals[lo]
		if math.Float64bits(g*g) > worst {
			break
		}
		j := sw.ord[lo]
		if int(j) == i {
			continue
		}
		du := math.Float64bits(q.canonical(i, int(j)))
		if du > worst {
			continue
		}
		s.topk.insert(du, j, k)
		worst = s.topk.ent[k-1].du
	}
	for ; hi < n; hi++ {
		g := sw.vals[hi] - xq
		if math.Float64bits(g*g) > worst {
			break
		}
		j := sw.ord[hi]
		if int(j) == i {
			continue
		}
		du := math.Float64bits(q.canonical(i, int(j)))
		if du > worst {
			continue
		}
		s.topk.insert(du, j, k)
		worst = s.topk.ent[k-1].du
	}
}

// sweepPairPoint is the 2d sweep: candidates are visited outward from the
// query's sorted position in the sweep dimension, reading only the three
// sequential arrays of the sweepPair (sorted values, gathered second
// dimension, point ids). The sweep gap lower-bounds the 2d distance, so
// each side stops at the first gap² past the current k-th distance. The
// two squares are added in canonical (ascending-feature) order, keeping the
// values bit-identical to SquaredEuclidean.
func (q *deltaQuery) sweepPairPoint(i int, s *deltaScratch) {
	p := q.pair
	sd := p.sd
	vals, other, ord := sd.vals, p.other, sd.ord
	n, k := q.n, q.m
	r := int(sd.rank[i])
	xq := vals[r]
	yq := other[r]
	// The two squares must accumulate in ascending-feature order to stay
	// bit-identical to SquaredEuclidean; selecting which gathered column is
	// "first" here hoists that ordering decision out of the per-candidate
	// loops entirely.
	c0, c1 := vals, other
	x0, x1 := xq, yq
	if !p.swFirst {
		c0, c1 = other, vals
		x0, x1 = yq, xq
	}
	lo, hi := r-1, r+1
	topk := &s.topk
	// Fill phase: take the k gap-nearest candidates unconditionally,
	// interleaving both sides by gap so the radius is honest immediately
	// after.
	for len(topk.ent) < k && (lo >= 0 || hi < n) {
		var pos int
		if lo >= 0 && (hi >= n || xq-vals[lo] <= vals[hi]-xq) {
			pos = lo
			lo--
		} else {
			pos = hi
			hi++
		}
		d0 := c0[pos] - x0
		dd := d0 * d0
		d1 := c1[pos] - x1
		dd += d1 * d1
		topk.ent = append(topk.ent, nnPair{du: math.Float64bits(dd), id: ord[pos]})
	}
	sortNNPairs(topk.ent)
	worst := math.Float64bits(math.Inf(1))
	if len(topk.ent) == k {
		worst = topk.ent[k-1].du
	}
	// Drain phase: each side walks out until its gap² exceeds the radius;
	// the gap grows monotonically per side and the radius only shrinks.
	// The k-set is full here (the fill phase only stops short when both
	// sides are exhausted, in which case the drains never run), so the
	// insert is open-coded without the fill branch: with du ≤ worst ==
	// ent[k-1].du already established, only the boundary TIE can still be
	// a no-op (equal distance, higher index — boundedHeap.push semantics),
	// and everything else shifts in.
	ent := topk.ent
	last := k - 1
	for ; lo >= 0; lo-- {
		g := xq - vals[lo]
		if math.Float64bits(g*g) > worst {
			break
		}
		d0 := c0[lo] - x0
		dd := d0 * d0
		d1 := c1[lo] - x1
		dd += d1 * d1
		du := math.Float64bits(dd)
		if du > worst {
			continue
		}
		j := ord[lo]
		if du == worst && j > ent[last].id {
			continue
		}
		p := last
		for p > 0 && (ent[p-1].du > du || (ent[p-1].du == du && ent[p-1].id > j)) {
			ent[p] = ent[p-1]
			p--
		}
		ent[p] = nnPair{du: du, id: j}
		worst = ent[last].du
	}
	for ; hi < n; hi++ {
		g := vals[hi] - xq
		if math.Float64bits(g*g) > worst {
			break
		}
		d0 := c0[hi] - x0
		dd := d0 * d0
		d1 := c1[hi] - x1
		dd += d1 * d1
		du := math.Float64bits(dd)
		if du > worst {
			continue
		}
		j := ord[hi]
		if du == worst && j > ent[last].id {
			continue
		}
		p := last
		for p > 0 && (ent[p-1].du > du || (ent[p-1].du == du && ent[p-1].id > j)) {
			ent[p] = ent[p-1]
			p--
		}
		ent[p] = nnPair{du: du, id: j}
		worst = ent[last].du
	}
}

// scanPoint scores one query by a full candidate scan whose initial prune
// radius comes from the seed candidates: with parent partials, each seed's
// child distance bound is the cached parent squared distance plus only the
// one-dimension delta component (scaled by the float-safety margin);
// without, the seeds' canonical distances are computed outright. Either
// way the k-th seed distance upper-bounds the true k-th distance, so
// initialising worst with it skips most candidates after one compare.
func (q *deltaQuery) scanPoint(i int, s *deltaScratch) {
	n, k := q.n, q.m
	worst := math.Inf(1)
	if q.seedM >= k {
		if cap(s.sd) < q.seedM {
			s.sd = make([]float64, 0, q.seedM)
		}
		sd := s.sd[:0]
		seeds := q.seedIdx[i*q.seedM : (i+1)*q.seedM]
		if q.seedSq != nil && q.deltaCol != nil {
			// Parent partials + one-dimension delta.
			psq := q.seedSq[i*q.seedM : (i+1)*q.seedM]
			col := q.deltaCol
			vq := col[i]
			for t, j := range seeds {
				if int(j) == i {
					continue
				}
				dv := vq - col[j]
				sd = append(sd, psq[t]+dv*dv)
			}
			if kth, ok := kthSmallest(sd, k); ok {
				worst = kth * (1 + deltaMargin)
			}
		} else {
			// Canonical distances of the seed candidates; exact, no margin.
			for _, j := range seeds {
				if int(j) == i {
					continue
				}
				sd = append(sd, q.canonical(i, int(j)))
			}
			if kth, ok := kthSmallest(sd, k); ok {
				worst = kth
			}
		}
		s.sd = sd[:0]
	}

	// Compose every candidate's distance by streaming column passes over
	// the column-major data, two columns per traversal to halve the row
	// traffic. Each row slot accumulates its squares one at a time in
	// ascending feature order, left-associated — exactly SquaredEuclidean's
	// grouping at dim ≤ 7, so the values are bit-identical to the
	// row-major path.
	if cap(s.row) < n {
		s.row = make([]float64, n)
	}
	row := s.row[:n]
	cols := q.cols
	c0 := cols[0]
	v0 := c0[i]
	for j, cv := range c0 {
		d0 := v0 - cv
		row[j] = d0 * d0
	}
	t := 1
	for ; t+1 < len(cols); t += 2 {
		ca, cb := cols[t], cols[t+1]
		va, vb := ca[i], cb[i]
		for j := range row {
			da := va - ca[j]
			acc := row[j] + da*da
			db := vb - cb[j]
			row[j] = acc + db*db
		}
	}
	for ; t < len(cols); t++ {
		c := cols[t]
		vi := c[i]
		for j, cv := range c {
			dv := vi - cv
			row[j] += dv * dv
		}
	}
	for j := 0; j < n; j++ {
		dd := row[j]
		if dd > worst || j == i {
			continue
		}
		s.topk.insert(math.Float64bits(dd), int32(j), k)
		if len(s.topk.ent) == k {
			if w := math.Float64frombits(s.topk.ent[k-1].du); w < worst {
				worst = w
			}
		}
	}
}

// kthSmallest returns the k-th smallest value of vals (insertion-sorting
// the leading k as it goes); ok is false when fewer than k values exist.
func kthSmallest(vals []float64, k int) (float64, bool) {
	if len(vals) < k {
		return 0, false
	}
	for i := 1; i < len(vals); i++ {
		d := vals[i]
		j := i - 1
		for j >= 0 && vals[j] > d {
			vals[j+1] = vals[j]
			j--
		}
		vals[j+1] = d
	}
	return vals[k-1], true
}

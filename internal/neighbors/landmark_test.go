package neighbors_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"anex/internal/neighbors"
	"anex/internal/synth"
)

// landmarkCases are the degenerate-input datasets of the pruned tier's
// bit-identicality property: the shapes where metric pruning classically
// goes wrong (duplicates collapse bounds to zero, ties sit exactly on the
// radius, k exceeds the point count, a single landmark gives the weakest
// possible bound). Each must produce neighbour sets bit-identical to the
// unpruned index at any worker count — the companion property to
// TestPlanePrefixSlicingProperty one layer down.
func landmarkCases() map[string][][]float64 {
	cases := make(map[string][][]float64)

	rng := rand.New(rand.NewSource(7))
	random := make([][]float64, 400)
	for i := range random {
		p := make([]float64, 14)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		random[i] = p
	}
	cases["random-14d"] = random

	// Duplicate-heavy: 60 distinct rows, each repeated 6 times — most
	// candidate distances are exactly zero or exactly repeated, so the
	// boundary tie-break does all the work.
	dup := make([][]float64, 0, 360)
	for i := 0; i < 60; i++ {
		p := make([]float64, 12)
		for j := range p {
			p[j] = rng.Float64() * 3
		}
		for r := 0; r < 6; r++ {
			dup = append(dup, p)
		}
	}
	cases["duplicate-heavy"] = dup

	// Lattice: every coordinate from {0,1,2}, so almost all distances are
	// massively tied and land exactly on the prune radius.
	lattice := make([][]float64, 320)
	for i := range lattice {
		p := make([]float64, 12)
		for j := range p {
			p[j] = float64(rng.Intn(3))
		}
		lattice[i] = p
	}
	cases["lattice-ties"] = lattice

	// All rows identical: every distance is zero; the bound can never
	// fire and the k-set is decided purely by index order.
	same := make([][]float64, 280)
	row := make([]float64, 11)
	for j := range row {
		row[j] = 0.5
	}
	for i := range same {
		same[i] = row
	}
	cases["all-identical"] = same

	return cases
}

// TestLandmarkPrunedBitIdentical pins the tier's core contract: for every
// degenerate dataset, landmark count (including the single-landmark
// minimum and the automatic pick), neighbourhood size (including k ≥ n),
// and worker count, the pruned index answers bit-identically to the plain
// brute-force scan — indices and distance bit patterns both.
func TestLandmarkPrunedBitIdentical(t *testing.T) {
	ctx := context.Background()
	for name, points := range landmarkCases() {
		t.Run(name, func(t *testing.T) {
			n := len(points)
			brute := neighbors.NewBruteForce(points)
			for _, nl := range []int{0, 1, 2, 7, 64} {
				pruned := neighbors.NewLandmarkIndex(points, nl)
				for _, k := range []int{1, 5, 15, n - 1, n + 10} {
					wantIdx, wantDist, wantM, err := neighbors.AllKNNFlat(ctx, brute, k, 1)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 4} {
						gotIdx, gotDist, gotM, err := neighbors.AllKNNFlat(ctx, pruned, k, workers)
						if err != nil {
							t.Fatal(err)
						}
						if gotM != wantM || len(gotIdx) != len(wantIdx) {
							t.Fatalf("nl=%d k=%d w=%d: shape m=%d len=%d, want m=%d len=%d",
								nl, k, workers, gotM, len(gotIdx), wantM, len(wantIdx))
						}
						for i := range wantIdx {
							if gotIdx[i] != wantIdx[i] {
								t.Fatalf("nl=%d k=%d w=%d: idx[%d]=%d, want %d (point %d slot %d)",
									nl, k, workers, i, gotIdx[i], wantIdx[i], i/wantM, i%wantM)
							}
							if math.Float64bits(gotDist[i]) != math.Float64bits(wantDist[i]) {
								t.Fatalf("nl=%d k=%d w=%d: dist[%d] bits %x, want %x",
									nl, k, workers, i, math.Float64bits(gotDist[i]), math.Float64bits(wantDist[i]))
							}
						}
					}
				}
			}
		})
	}
}

// figure9Points regenerates the Figure-9 reference workload at full scale:
// the paper's 1000-point 20d planted-subspace dataset (benchDataset in the
// root bench harness, seed 1), materialised to flat rows.
func figure9Points(t testing.TB) [][]float64 {
	t.Helper()
	ds, _, err := synth.GenerateSubspaceOutliers(synth.SubspaceConfig{
		Name:                "prune-gate",
		TotalDims:           20,
		SubspaceDims:        []int{2, 3},
		N:                   1000,
		OutliersPerSubspace: 5,
		Seed:                1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.FullView().Points()
}

// TestPruneEffectivenessFigure9 is the check.sh prune-effectiveness gate:
// on the Figure-9 reference workload (20d, n=1000, k=15 — the widest, most
// expensive views the detectors score), the landmark bound must reject
// enough of the candidate stream that at most 60% still reaches the
// distance kernel. This is a deterministic property of the data and the
// seeded selection, not a timing assertion, so it cannot flake with host
// load.
func TestPruneEffectivenessFigure9(t *testing.T) {
	points := figure9Points(t)
	ix := neighbors.NewLandmarkIndex(points, 0)
	if _, _, _, err := neighbors.AllKNNFlat(context.Background(), ix, 15, 1); err != nil {
		t.Fatal(err)
	}
	st := ix.(interface{ PruneStats() neighbors.PruneStats }).PruneStats()
	if st.Candidates == 0 || st.Skipped == 0 {
		t.Fatalf("landmark tier did not engage: %+v", st)
	}
	frac := st.ScanFraction()
	t.Logf("figure-9 reference workload: %d candidates, %d scanned, %d skipped, scan fraction %.3f (landmarks %d, build %v)",
		st.Candidates, st.Scanned, st.Skipped, frac, st.Landmarks, st.BuildTime)
	if frac > 0.6 {
		t.Fatalf("candidate-scan fraction %.3f > 0.6 on the Figure-9 reference workload", frac)
	}
}

package neighbors

import "math"

// The quantized prefilter is the cheapest candidate-rejection tier, sitting
// BENEATH the landmark tier's band scan and inside the window engine's
// arrival scans. Each indexed view gets per-dimension 8-bit affine codes
// built once from its rows:
//
//	code[j] = clamp(round((x[j] − lo[j]) / step[j]), 0, 255)
//
// with per-dimension offsets lo[j] (the column minima) and per-dimension
// scales step[j] that share ONE cell width s — the widest column's range
// divided by 255 — with step[j] = 0 flagging constant columns. Every
// stored value is reconstructible to within half a cell (|x[j] − (lo[j] +
// code[j]·s)| ≤ s/2; float rounding on top is what the safety margin below
// over-covers). Two code rows then yield a GUARANTEED lower bound on the
// true squared distance without touching the float rows: both points sit
// within s/2 of their reconstructions, so per dimension
//
//	|x[j] − y[j]| ≥ (|Δcode_j| − 1) · s
//
// (trivially true when the right side is negative), and summing squares
//
//	Σ_j Δx_j²  ≥  s² · Σ_j max(0, |Δcode_j| − 1)².
//
// A candidate whose bound already exceeds the live heap radius cannot
// enter the k-set and is rejected from its code row alone — sequential
// 8-bit loads and small-integer arithmetic instead of the float kernel's
// 64-bit loads and multiply-adds. The integer sum is quantSqSum, a
// SIMD-width kernel on amd64 (16 code bytes per instruction through the
// saturating-subtract / multiply-add-words path; see quant_kernel_amd64.s)
// with a portable fallback elsewhere; the shared cell width is exactly
// what lets one unweighted integer sum carry the whole bound. Columns
// narrower than the widest spend fewer of their 256 levels, which only
// SOFTENS their term (the bound stays valid); those columns contribute
// proportionally little to real distances, so the sharpness that matters —
// in the wide columns that decide rejections — is the full 8 bits.
//
// Why a rejected candidate can never change the result (the same
// safety-margin style as kernel.go): the reject test multiplies by a
// (1 − quantEps) factor, making the computed bound strictly less than the
// true lower bound — quantEps over-covers, by five orders of magnitude,
// the quantization slop past s/2 (≤ ~256·3ε of a cell, from computing
// (x−lo)/s in floats) and the one rounding of the final product (the
// integer sum itself is exact: quantMaxDims caps it below 2³¹). The exact
// kernel's computed d² exceeds the true square by at most a factor
// (1 ± d·ε), so bound > limit at rejection time implies the exact pass
// would have produced a distance strictly above the radius at that moment
// — and the radius only shrinks, so also above the final k-th distance.
// Ties at the radius are not strict excesses and are never rejected;
// tie-breaking stays inside the shared heap push. Survivors go through the
// unchanged squaredEuclideanWithin kernel against the live radius, so kept
// distances are bit-identical to the unpruned scan at any tile size and
// worker count.
//
// Candidates are scanned in cache-sized tiles (quantTileSize): the
// branch-free bound pass covers the whole tile's sequential padded byte
// rows first, survivors are collected into a fixed scratch list, and only
// then does the exact kernel run — converting the per-candidate
// data-dependent branch of the old scan into a predictable filter/verify
// pipeline. The tile's radius snapshot is taken at tile entry; the live
// radius only shrinks during the tile, so the snapshot is merely
// conservative (fewer rejections, never a wrong one).
//
// Constant dimensions code to 0 everywhere and contribute nothing to the
// bound — conservative, still exact. Views with non-finite values, a
// non-finite range, a cell width whose square underflows, or more than
// quantMaxDims dimensions refuse to build codes (usable=false) and the
// owning scan falls back to the plain exact path; window arrivals that
// land outside the coded range are marked uncodeable per slot and simply
// never rejected.

const (
	// quantEps is the multiplicative safety margin on the squared code
	// bound; see the derivation above. 1e-9 over-covers the combined float
	// error (≲ 1e-13 relative) by five orders of magnitude while loosening
	// the bound immeasurably.
	quantEps = 1e-9

	// quantLevels is the code alphabet size minus one: codes span [0, 255].
	quantLevels = 255

	// quantTileDefault is the candidate tile of the filter/verify pipeline:
	// 64 padded code rows of a 20d view are 2 KB — comfortably L1-resident
	// alongside the query row and the bound scratch.
	quantTileDefault = 64

	// quantTileMax caps configured tiles so the per-query bound and
	// survivor scratches stay fixed-size cells in the query Scratch.
	quantTileMax = 256

	// quantMaxDims keeps the integer bound sum exact everywhere: one
	// dimension contributes at most 254², so 2¹⁵ dimensions stay under
	// 2³¹ — the headroom the SIMD kernel's 32-bit accumulator lanes need.
	// Wider views (far beyond any view this codebase scores) simply skip
	// the prefilter.
	quantMaxDims = 1 << 15

	// quantMinPoints gates the prefilter by dataset size: below it the
	// code build and per-query tile bookkeeping would not amortise over
	// the handful of candidates an exhaustive scan costs anyway.
	quantMinPoints = 64
)

// quantTileSize clamps a configured tile size (0 → default).
func quantTileSize(v int) int {
	if v <= 0 {
		return quantTileDefault
	}
	if v > quantTileMax {
		return quantTileMax
	}
	return v
}

// quantStride pads a row width to the SIMD kernel's 16-byte block multiple.
func quantStride(d int) int { return (d + 15) &^ 15 }

// quantParams is one view's code book: the per-dimension affine transform
// and the precomputed reject-test constant. Code rows are stored padded to
// stride bytes (pad bytes zero on every row, so they never contribute to a
// difference).
type quantParams struct {
	d      int
	stride int
	lo     []float64 // per-dimension offset (the column minimum)
	step   []float64 // per-dimension scale: the shared cell width s, or 0
	//                  for constant columns
	sqAdj  float64 // s²·(1−quantEps): reject iff float64(sum)·sqAdj > limit
	usable bool
}

// codeBytes reports the storage charge of n padded code rows plus the
// per-dimension tables — the PruneStats.CodeBytes ledger entry for one
// build.
func (qp *quantParams) codeBytes(n int) int64 {
	return int64(n)*int64(qp.stride) + int64(qp.d)*(8+8)
}

// newQuantParams derives the code book from the rows it will encode. A view
// with non-finite values or a range too wide to square refuses to build
// (usable=false); all-constant views do too (every bound would be zero).
func newQuantParams(points [][]float64, d int) *quantParams {
	qp := &quantParams{d: d, stride: quantStride(d)}
	if len(points) == 0 || d == 0 || d > quantMaxDims {
		return qp
	}
	qp.lo = make([]float64, d)
	hi := make([]float64, d)
	copy(qp.lo, points[0][:d])
	copy(hi, points[0][:d])
	for _, p := range points {
		for j, v := range p[:d] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return qp
			}
			if v < qp.lo[j] {
				qp.lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	maxRange := 0.0
	for j := range qp.lo {
		r := hi[j] - qp.lo[j]
		if math.IsInf(r, 0) {
			return qp // range overflows; no usable code space
		}
		if r > maxRange {
			maxRange = r
		}
	}
	s := maxRange / quantLevels
	sq := s * s
	if sq == 0 || math.IsInf(sq, 0) {
		// All columns constant, or the shared cell width's square under- or
		// overflows: every bound would be zero (or garbage). Refuse.
		return qp
	}
	qp.step = make([]float64, d)
	for j := range qp.step {
		if hi[j] > qp.lo[j] {
			qp.step[j] = s
		}
	}
	qp.sqAdj = sq * (1 - quantEps)
	qp.usable = true
	return qp
}

// encode writes p's padded code row into dst (len ≥ stride; pad bytes are
// left untouched and must already be zero), reporting whether every
// dimension landed inside the coded range. A false return means the point
// cannot carry a valid code (it arrived after the book was built and falls
// outside it, or is non-finite) — the caller must never let a bound reject
// it. Rows the book was built from always encode: a column's range is at
// most 255 cells by construction of the shared width.
func (qp *quantParams) encode(p []float64, dst []uint8) bool {
	ok := true
	for j := 0; j < qp.d; j++ {
		step := qp.step[j]
		if step == 0 {
			// Constant dimension: code 0 everywhere, never contributes.
			dst[j] = 0
			continue
		}
		q := (p[j] - qp.lo[j]) / step
		// NaN fails both comparisons, so non-finite values are uncodeable.
		if !(q >= -0.5 && q <= quantLevels+0.5) {
			dst[j] = 0
			ok = false
			continue
		}
		c := int(math.Round(q))
		if c < 0 {
			c = 0
		} else if c > quantLevels {
			c = quantLevels
		}
		dst[j] = uint8(c)
	}
	return ok
}

// sumClears is the reject test for one candidate's bound sum.
func (qp *quantParams) sumClears(sum int64, limit float64) bool {
	return float64(sum)*qp.sqAdj > limit
}

// quantSqSumRef is the portable reference of the bound sum
// Σ_j max(0, |a_j − b_j| − 1)² over two padded code rows: the non-amd64
// quantSqSum implementation, and the oracle the fuzz target holds the
// assembly kernel to. Abs and the clamp at zero are mask arithmetic, so
// even the fallback loop has no data-dependent branches. len(a) must be
// the stride; len(b) ≥ len(a).
func quantSqSumRef(a, b []uint8) int64 {
	b = b[:len(a)] // bounds-check elimination
	var acc int64
	for j := range a {
		m := int64(a[j]) - int64(b[j])
		mask := m >> 63
		m = (m ^ mask) - mask // |Δcode|
		m--
		m &^= m >> 63 // clamp at zero
		acc += m * m
	}
	return acc
}

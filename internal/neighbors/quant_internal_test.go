package neighbors

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// FuzzQuantBoundSafe fuzzes the prefilter's load-bearing inequality: for
// ANY dataset the code book accepts — random rows, constant columns,
// subnormal and astronomically scaled magnitudes, large offsets — the
// code-derived bound float64(sum)·sqAdj never exceeds the exact squared
// distance of any pair, and the platform bound kernel agrees exactly with
// the portable reference (on amd64 that pins the SSE2 assembly).
// Everything else in the tier (tiling, layouts, counters) only moves work
// around; this inequality is what makes a rejection safe.
func FuzzQuantBoundSafe(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(8), 0, 0.0)
	f.Add(int64(2), uint8(64), uint8(3), -1074, 1e-300)
	f.Add(int64(3), uint8(32), uint8(20), 900, 1e300)
	f.Add(int64(4), uint8(5), uint8(1), -600, -42.5)
	f.Add(int64(5), uint8(90), uint8(24), 40, 1e9)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, dRaw uint8, scaleExp int, off float64) {
		n := int(nRaw)%96 + 2
		d := int(dRaw)%24 + 1
		if scaleExp > 1000 {
			scaleExp = 1000
		} else if scaleExp < -1080 {
			scaleExp = -1080
		}
		scale := math.Ldexp(1, scaleExp)
		rng := rand.New(rand.NewSource(seed))
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, d)
			for j := range p {
				switch rng.Intn(6) {
				case 0:
					p[j] = 0 // duplicate/constant-column pressure
				case 1:
					p[j] = off
				default:
					p[j] = off + rng.NormFloat64()*scale
				}
			}
			points[i] = p
		}
		qp := newQuantParams(points, d)
		if !qp.usable {
			// The book refused (non-finite data, overflowing or vanishing
			// ranges) — the tier never engages, nothing to assert.
			return
		}
		st := qp.stride
		codes := make([]uint8, n*st)
		for i, p := range points {
			if !qp.encode(p, codes[i*st:(i+1)*st]) {
				t.Fatalf("row %d the book was built from failed to encode", i)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				exact := SquaredEuclidean(points[i], points[j])
				sum := quantSqSum(codes[i*st:(i+1)*st], codes[j*st:(j+1)*st])
				ref := quantSqSumRef(codes[i*st:(i+1)*st], codes[j*st:(j+1)*st])
				if sum != ref {
					t.Fatalf("pair (%d,%d): kernel sum %d != reference %d", i, j, sum, ref)
				}
				if sum < 0 {
					t.Fatalf("pair (%d,%d): bound sum overflowed to %d", i, j, sum)
				}
				bound := float64(sum) * qp.sqAdj
				if bound > exact {
					t.Fatalf("pair (%d,%d): code bound %v exceeds exact squared distance %v (sum %d, sqAdj %v)",
						i, j, bound, exact, sum, qp.sqAdj)
				}
			}
		}
	})
}

// TestQuantParamsRefusals pins the code book's refusal edges: data the
// bound cannot cover must yield usable=false, and out-of-range or
// non-finite rows must report uncodeable from encode — the states in which
// callers fall back to the exact path.
func TestQuantParamsRefusals(t *testing.T) {
	if qp := newQuantParams(nil, 4); qp.usable {
		t.Fatal("empty dataset built a usable book")
	}
	if qp := newQuantParams([][]float64{{1, math.NaN()}, {2, 3}}, 2); qp.usable {
		t.Fatal("NaN dataset built a usable book")
	}
	if qp := newQuantParams([][]float64{{1, math.Inf(1)}, {2, 3}}, 2); qp.usable {
		t.Fatal("Inf dataset built a usable book")
	}
	if qp := newQuantParams([][]float64{{-1e308, 0}, {1e308, 0}}, 2); qp.usable {
		t.Fatal("overflowing range built a usable book")
	}
	if qp := newQuantParams([][]float64{{5, 7}, {5, 7}}, 2); qp.usable {
		t.Fatal("all-constant dataset built a usable book")
	}

	qp := newQuantParams([][]float64{{0, 0}, {1, 10}}, 2)
	if !qp.usable {
		t.Fatal("plain dataset refused")
	}
	dst := make([]uint8, quantStride(2))
	// The coded range spans 255 shared cells from each column minimum;
	// dimension 0's value sits far beyond that.
	if qp.encode([]float64{50, 5}, dst) {
		t.Fatal("row outside the coded range reported codeable")
	}
	if qp.encode([]float64{math.NaN(), 5}, dst) {
		t.Fatal("NaN row reported codeable")
	}
	if !qp.encode([]float64{0.5, 10}, dst) {
		t.Fatal("in-range row reported uncodeable")
	}
}

// TestWindowEngineQuantParity extends the window parity property to the
// quantized arrival/rescan path: windows at and above quantMinPoints, the
// shapes where a sloppy bound flips boundary ties, small and default
// tiles — all bit-identical to the cold rebuild. (The pre-existing parity
// sweeps run below quantMinPoints and keep the unquantized path covered.)
func TestWindowEngineQuantParity(t *testing.T) {
	defer SetPruneConfig(PruneConfig{})
	for _, shape := range []string{"random", "duplicates", "lattice", "identical"} {
		for _, tile := range []int{3, 0} {
			SetPruneConfig(PruneConfig{QuantTile: tile})
			t.Run(shape, func(t *testing.T) {
				runWindowEngineParity(t, shape, 96, 20, 15, 24, 8, 4, 400)
			})
		}
	}
}

// TestWindowEngineQuantRangeDrift drives the uncodeable-arrival machinery:
// a stream whose magnitude grows every stride pushes arrivals outside the
// frozen code book's range, forcing per-slot uncodeable marks and
// eventually book rebuilds, while the parity contract must hold
// throughout. The engine's internals are inspected to prove the drift
// actually exercised those paths.
func TestWindowEngineQuantRangeDrift(t *testing.T) {
	defer SetPruneConfig(PruneConfig{})
	SetPruneConfig(PruneConfig{})
	const (
		W, d, k, stride = 80, 16, 10, 20
		total           = 480
	)
	rng := rand.New(rand.NewSource(99))
	eng := NewWindowEngine(k, DefaultWindowSlack, 4)
	window := make([][]float64, 0, W)
	next := 0
	var batch []WindowArrival
	sawUncodeable := false
	for i := 0; i < total; i++ {
		// Magnitude doubles every window's worth of points: arrivals keep
		// escaping the range the current book froze.
		mag := math.Ldexp(1, i/W)
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.NormFloat64() * mag
		}
		var slot int
		if len(window) < W {
			slot = len(window)
			window = append(window, p)
		} else {
			slot = next
			window[next] = p
			next = (next + 1) % W
		}
		batch = appendArrival(batch, slot, p)
		if (i+1)%stride != 0 {
			continue
		}
		if err := eng.Apply(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
		if eng.quncode > 0 {
			sawUncodeable = true
		}
		gotIdx, gotDist, gotM, _ := eng.Neighborhood()
		wantIdx, wantDist, wantM := coldWindowKNN(t, window, k, 1)
		if gotM != wantM {
			t.Fatalf("eval %d: m=%d want %d", i, gotM, wantM)
		}
		for x := range wantIdx {
			if gotIdx[x] != wantIdx[x] || math.Float64bits(gotDist[x]) != math.Float64bits(wantDist[x]) {
				t.Fatalf("eval %d: mismatch at %d: idx %d/%d dist %x/%x",
					i, x, gotIdx[x], wantIdx[x], math.Float64bits(gotDist[x]), math.Float64bits(wantDist[x]))
			}
		}
	}
	if eng.qp == nil {
		t.Fatal("quant never engaged on the drift stream")
	}
	if !sawUncodeable {
		t.Fatal("drift stream never produced an uncodeable arrival; the test lost its point")
	}
}

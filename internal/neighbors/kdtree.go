package neighbors

import "math"

// KDTree is a balanced KD-tree over a fixed point set. Nodes are stored in a
// flat array (implicit pointers) and leaves hold small buckets, which keeps
// construction allocation-light and searches cache-friendly — both matter
// when an explainer builds thousands of per-subspace indexes.
type KDTree struct {
	points     [][]float64
	nodes      []kdNode
	leafPoints []int // point indices, grouped per leaf
	dim        int
}

type kdNode struct {
	// Interior node: splitDim ≥ 0, splitVal is the partition plane,
	// left/right are child node indexes.
	// Leaf node: splitDim == -1, left/right delimit [left, right) in
	// leafPoints.
	splitDim    int
	splitVal    float64
	left, right int
}

const kdLeafSize = 16

// NewKDTree builds a KD-tree over the points. The points are not copied.
func NewKDTree(points [][]float64) *KDTree {
	t := &KDTree{points: points}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	t.leafPoints = make([]int, 0, len(points))
	t.build(idx, 0)
	return t
}

// build recursively partitions idx, appending nodes to t.nodes, and returns
// the index of the created node.
func (t *KDTree) build(idx []int, depth int) int {
	nodeID := len(t.nodes)
	t.nodes = append(t.nodes, kdNode{})
	if len(idx) <= kdLeafSize {
		start := len(t.leafPoints)
		t.leafPoints = append(t.leafPoints, idx...)
		t.nodes[nodeID] = kdNode{splitDim: -1, left: start, right: len(t.leafPoints)}
		return nodeID
	}
	// Split on the dimension with the largest spread among the subset —
	// better balance than cycling dimensions on skewed data.
	splitDim := t.widestDim(idx)
	mid := len(idx) / 2
	nthElement(idx, mid, func(a, b int) bool {
		return t.points[a][splitDim] < t.points[b][splitDim]
	})
	splitVal := t.points[idx[mid]][splitDim]
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid:], depth+1)
	t.nodes[nodeID] = kdNode{splitDim: splitDim, splitVal: splitVal, left: left, right: right}
	return nodeID
}

func (t *KDTree) widestDim(idx []int) int {
	best, bestSpread := 0, -1.0
	for d := 0; d < t.dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, i := range idx {
			v := t.points[i][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			best, bestSpread = d, spread
		}
	}
	return best
}

// nthElement partially sorts idx so that idx[n] is the element that would be
// at position n in a full sort (introselect via repeated partitioning).
func nthElement(idx []int, n int, less func(a, b int) bool) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		// Median-of-three pivot for resilience on sorted inputs.
		mid := lo + (hi-lo)/2
		if less(idx[mid], idx[lo]) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if less(idx[hi], idx[lo]) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if less(idx[hi], idx[mid]) {
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		pivot := idx[mid]
		idx[mid], idx[hi-1] = idx[hi-1], idx[mid]
		i := lo
		for j := lo; j < hi-1; j++ {
			if less(idx[j], pivot) {
				idx[i], idx[j] = idx[j], idx[i]
				i++
			}
		}
		idx[i], idx[hi-1] = idx[hi-1], idx[i]
		switch {
		case n == i:
			return
		case n < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}

func (t *KDTree) Len() int { return len(t.points) }

// KNNOf returns the k nearest neighbours of indexed point i, excluding i.
func (t *KDTree) KNNOf(i, k int) ([]int, []float64) {
	var s Scratch
	idx, dist := t.KNNInto(i, k, &s)
	return append([]int(nil), idx...), append([]float64(nil), dist...)
}

// KNNInto is KNNOf answering into the caller's reusable scratch: the
// returned slices are owned by s and valid until its next use, and a warm
// scratch makes the whole query allocation-free.
func (t *KDTree) KNNInto(i, k int, s *Scratch) ([]int, []float64) {
	checkK(k)
	if len(t.points) == 0 {
		return nil, nil
	}
	s.h.reset(k)
	t.search(0, t.points[i], i, &s.h)
	return s.drain()
}

// Query returns the k points nearest to an arbitrary query vector q
// (no exclusion).
func (t *KDTree) Query(q []float64, k int) ([]int, []float64) {
	checkK(k)
	if len(t.points) == 0 {
		return nil, nil
	}
	var s Scratch
	s.h.reset(k)
	t.search(0, q, -1, &s.h)
	idx, dist := s.drain()
	return append([]int(nil), idx...), append([]float64(nil), dist...)
}

func (t *KDTree) search(nodeID int, q []float64, exclude int, h *boundedHeap) {
	node := t.nodes[nodeID]
	if node.splitDim == -1 {
		for _, p := range t.leafPoints[node.left:node.right] {
			if p == exclude {
				continue
			}
			// Same early-exit kernel as the brute-force scan: candidates
			// beyond the prune radius never finish their accumulation.
			if d2, within := squaredEuclideanWithin(q, t.points[p], h.top()); within {
				h.push(p, d2)
			}
		}
		return
	}
	delta := q[node.splitDim] - node.splitVal
	near, far := node.left, node.right
	if delta >= 0 {
		near, far = node.right, node.left
	}
	t.search(near, q, exclude, h)
	// The far side must also be visited on exact ties: a point at exactly
	// the current radius can still win its tie-break on index.
	if delta*delta <= h.top() {
		t.search(far, q, exclude, h)
	}
}

// Depth returns the height of the tree, useful for balance diagnostics.
func (t *KDTree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.depth(0)
}

func (t *KDTree) depth(nodeID int) int {
	node := t.nodes[nodeID]
	if node.splitDim == -1 {
		return 1
	}
	l := t.depth(node.left)
	r := t.depth(node.right)
	if r > l {
		l = r
	}
	return l + 1
}

var _ Index = (*KDTree)(nil)

package neighbors

import "math"

// The query kernels under the landmark tier. A query visits its
// lbNearClusters nearest clusters first, then the rest; each visited
// cluster passes through two pruning stages before any member reaches the
// exact distance kernel:
//
//   - WHOLESALE REJECTION — for cluster c and any landmark L, every member
//     x has stored d(x,L) inside the cluster's interval [lo, hi], so the
//     query's distance-to-interval |d(q,L) − clamp(d(q,L), lo, hi)|
//     lower-bounds d(q,x) for the whole segment. Two landmarks are probed —
//     the cluster's own (narrowest interval; decides most rejections) and
//     the query's own (its probe is one sequential row of the transposed
//     interval matrix) — so a rejected segment costs at most two compares.
//   - BAND SCAN — a surviving cluster is scanned only inside the band its
//     own-landmark bound cannot reject (see scanCluster): members are
//     stored sorted by own-landmark distance, so the skippable members
//     form a prefix and a suffix found by inward linear walks of the
//     sorted key, one compare per rejected member.
//   - EXACT SCAN — everything left goes through squaredEuclideanWithin,
//     the same 4-wide-unrolled accumulation in the same grouping order
//     against the same live radius as the brute-force scan, so kept
//     distances are bit-identical to the unpruned index.
//
// There is deliberately NO all-landmarks per-member bound pass: with the
// early-exit exact kernel a rejected candidate already costs only ~a
// quarter of a full distance, and measurement showed per-member tests of
// every landmark (≈ nl compares each, unpredictable branches) cost more
// than they save on every workload tried. Pruning leverage comes from
// cluster granularity (more landmarks → tighter segments and bands)
// instead, which the automatic landmark count reflects.
//
// The nearest-first visit prefix pays twice: the query's own and nearby
// clusters hold its true neighbours, so the heap radius is near-final
// after the first segments — later, farther clusters then (a) get
// wholesale-rejected against that tight radius and (b) when scanned, hit
// the exact kernel's early exit after fewer dimensions.
//
// Why a skipped candidate can never change the result: the skip fires only
// when lbAdj² · (1 − landmarkEps) > limit, where limit is the heap radius
// AT THAT MOMENT and lbAdj subtracts landmarkSlack·(d(q,L) + d(x,L)) from
// the computed bound. The stored landmark distances carry relative error
// ≤ ~(d/2+2)·ε from the exact values, so lbAdj is ≤ the TRUE lower bound,
// and the computed d²(q,x) the exact pass would have produced exceeds the
// true square by at most a factor (1 ± d·ε) — landmarkEps over-covers both
// by five orders of magnitude. Hence the skipped candidate's computed
// distance strictly exceeds the radius at skip time; the radius only
// shrinks as the scan proceeds, so it also exceeds the FINAL k-th
// distance, and the kept k-set — the unique lexicographic minimum under
// (distance bits, index), independent of visit order — is exactly the
// brute-force set. Boundary ties are safe for the same reason: a tie at
// the final radius is not a strict excess, so it is never skipped, and
// tie-breaking happens inside the shared heap push. The wholesale form
// inherits the argument because the adjusted bound (dq − dx) − slack·(dq +
// dx) is monotone in dx on either side of dq: evaluating lbClears at the
// near interval endpoint minorises every member's adjusted bound.
//
// On data where distances concentrate (uniform high-d noise) the intervals
// are wide and overlapping, so clusters are never rejected and the bands
// never shrink: the tier degrades to the brute-force scan in clustered
// visit order plus a handful of compares per cluster — low single-digit
// percent overhead, with no order-dependent sampling heuristics.

const (
	// landmarkSlack is the relative-to-magnitude slack subtracted from each
	// lower bound: computed Euclidean distances carry relative error
	// ≤ ~(d/2+2)·ε ≈ 1e-13 at d=1000, and the subtraction |d(q,L) − d(x,L)|
	// turns that into an ABSOLUTE error proportional to the distances
	// themselves — a purely relative margin on the bound would not cover a
	// near-zero bound built from two large distances. 1e-12 over-covers.
	landmarkSlack = 1e-12

	// landmarkEps is the multiplicative slack on the squared bound,
	// covering the accumulation error of the exact kernel's d²(q,x)
	// (relative ≤ ~d·ε ≈ 4e-15 at d=20). 1e-9 over-covers by five orders
	// of magnitude while loosening the radius immeasurably.
	landmarkEps = 1e-9
)

// pruneCounters is one query's running pruning state.
type pruneCounters struct {
	candidates int64 // candidate rows considered
	skipped    int64 // rejected wholesale by a cluster lower bound
	qcand      int64 // candidates whose 8-bit code bound was evaluated
	qrej       int64 // rejected by the code bound alone (see quant.go)
}

// lbNearClusters is how many nearest clusters a query visits before the
// rest: enough to pull the heap radius near its final value (tens of
// candidates at the automatic cluster size), cheap enough that the
// selection stays O(lbNearClusters·nl) instead of a full O(nl²) sort.
const lbNearClusters = 4

// lbIntervalClears evaluates one landmark's segment bound — the query's
// distance to the near endpoint of the cluster's stored-distance interval —
// against the squared radius. A query inside the interval has a zero
// bound and can never clear.
func lbIntervalClears(dq, lo, hi, limit float64) bool {
	near := lo
	if dq > hi {
		near = hi
	} else if dq >= lo {
		return false
	}
	return lbClears(dq, near, limit)
}

// scanCluster scans cluster c's members for query qi — but only the BAND
// the own-landmark bound cannot reject. Members are stored sorted by their
// own-landmark distance dx, and the skip predicate lbClears(dq, dx, limit)
// is monotone in dx on either side of dq (the adjusted bound (|dq − dx|) −
// slack·(dq + dx) strictly decreases approaching dq from below and
// strictly increases moving away above it), so the skippable members form
// a prefix (dx far below dq) and a suffix (dx far above dq) of the
// segment. Two inward linear scans USING THE PREDICATE ITSELF find the
// exact boundary — member-level pruning precision, each rejected member
// costing one compare instead of a distance computation, with no new
// float expressions beyond the ones the safety argument already covers.
// (Linear beats binary search here: segments are ~a dozen members and the
// closure calls of sort.Search cost more than the walk.) The limit is the
// radius at cluster entry; the live radius only shrinks during the band
// scan, so the band is merely conservative. pc.skipped counts the
// rejected prefix and suffix.
func (lx *landmarkIndex) scanCluster(c, qi int, q []float64, dq float64, s *Scratch, pc *pruneCounters) {
	d := lx.d
	lo, hi := int(lx.seg[c]), int(lx.seg[c+1])
	members := lx.order[lo:hi]
	own := lx.ownDist[lo:hi]
	limit := s.h.top()
	start, end := 0, len(members)
	if !math.IsInf(limit, 1) {
		for start < end && own[start] < dq && lbClears(dq, own[start], limit) {
			start++
		}
		for end > start && own[end-1] > dq && lbClears(dq, own[end-1], limit) {
			end--
		}
		pc.skipped += int64(start + (len(members) - end))
	}
	if lx.qp != nil {
		lx.scanBandQuant(lo+start, lo+end, qi, q, s, pc)
		return
	}
	for _, j := range members[start:end] {
		if int(j) == qi {
			continue
		}
		row := lx.flat[int(j)*d : (int(j)+1)*d]
		// The same exact kernel, grouping order, and live-radius early
		// exit as bruteForce.KNNInto — kept values are bit-identical.
		d2, within := squaredEuclideanWithin(q, row, s.h.top())
		if !within {
			continue
		}
		s.h.push(int(j), d2)
	}
}

// scanBandQuant is the band scan behind the quantized prefilter: code-row
// positions [p0, p1) of the cluster order are walked in tiles, each tile
// running the branch-free SAD pass over its sequential padded byte rows,
// then the weighted refinement and the exact kernel over the survivor list
// only (see quant.go for both bounds and their safety argument). Survivors
// meet the SAME live radius, in the SAME member order, as the plain band
// scan — the bound passes remove only candidates the kernel's own early
// exit would have discarded, so kept values are bit-identical at any tile
// size. The tile's radius snapshot is taken at tile entry; pushes within
// the tile only shrink the live radius, so the snapshot merely
// under-rejects. Tiles met before the heap fills (infinite radius) skip
// the bound passes outright — nothing can be rejected. The bound and
// survivor scratches are fixed cells in the query Scratch (quantTileMax
// caps the tile), keeping the query path allocation-free with no per-call
// zeroing.
func (lx *landmarkIndex) scanBandQuant(p0, p1, qi int, q []float64, s *Scratch, pc *pruneCounters) {
	d := lx.d
	qp := lx.qp
	st := qp.stride
	qc := lx.qcodes[int(lx.qpos[qi])*st : int(lx.qpos[qi])*st+st]
	bounds, surv := &s.qbound, &s.qsurv
	for base := p0; base < p1; base += lx.qtile {
		t := lx.qtile
		if base+t > p1 {
			t = p1 - base
		}
		limit := s.h.top()
		if math.IsInf(limit, 1) {
			for p := base; p < base+t; p++ {
				j := int(lx.order[p])
				if j == qi {
					continue
				}
				row := lx.flat[j*d : (j+1)*d]
				d2, within := squaredEuclideanWithin(q, row, s.h.top())
				if within {
					s.h.push(j, d2)
				}
			}
			continue
		}
		// Bound pass over the whole tile's padded byte rows, then the
		// survivor filter.
		quantSqSumTile(qc, lx.qcodes[base*st:(base+t)*st], t, bounds[:])
		ns := 0
		for r := 0; r < t; r++ {
			if qp.sumClears(bounds[r], limit) {
				continue
			}
			surv[ns] = lx.order[base+r]
			ns++
		}
		pc.qcand += int64(t)
		pc.qrej += int64(t - ns)
		for _, j32 := range surv[:ns] {
			j := int(j32)
			if j == qi {
				continue
			}
			row := lx.flat[j*d : (j+1)*d]
			d2, within := squaredEuclideanWithin(q, row, s.h.top())
			if within {
				s.h.push(j, d2)
			}
		}
	}
}

// lbClears evaluates one landmark's safe lower bound against the squared
// radius. The margins make the test conservative: false negatives cost a
// distance computation, false positives are impossible (see the safety
// argument above), so bit-identicality survives.
func lbClears(dq, dx, limit float64) bool {
	diff := dq - dx
	if diff < 0 {
		diff = -diff
	}
	diff -= (dq + dx) * landmarkSlack
	return diff > 0 && diff*diff*(1-landmarkEps) > limit
}

package neighbors

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// The landmark tier is a pruned candidate-generation layer over the
// brute-force scan. It targets the regime the KD-tree abandons (views wider
// than kdTreeMaxDim), where every query used to pay an exhaustive O(n·d)
// scan: the paper's Figure-9 20d/n=1000 workloads spend ~28 ms per AllKNN
// there, and ADBench-scale datasets push n past 10^5 where that scan is the
// dominant cost of all three kNN detectors.
//
// The idea is classic metric pruning made bit-exact:
//
//   - At build time, pick nl LANDMARK points by deterministic seeded
//     k-means++-style selection (a seeded first pick, then greedy
//     farthest-point refinement) and precompute every point's Euclidean
//     distance to every landmark — an n×nl matrix costing O(n·nl·d), built
//     exactly once per (dataset, subspace) plane entry.
//   - Points are grouped into one cluster per landmark (each point assigned
//     to its nearest), and the per-(cluster, landmark) intervals of the
//     matrix give a segment-level form of the triangle inequality
//       |d(q,L) − d(x,L)| ≤ d(q,x)   for any landmark L:
//     the query's distance to a cluster's interval under ANY landmark
//     lower-bounds its distance to EVERY member. A cluster whose bound
//     (minus a float-safety margin, see kernel.go) already exceeds the
//     current heap radius cannot contribute to the k-set and is skipped
//     wholesale, in at most nl compares for the entire segment. Everything
//     that survives goes through squaredEuclideanWithin — the SAME exact
//     accumulation, in the same grouping order, against the same live
//     radius as the brute-force scan — so the kept neighbour set is
//     bit-identical to the unpruned index (see the safety argument in
//     kernel.go and DESIGN.md).
//   - Clusters are visited nearest-landmark-first. True neighbours
//     concentrate in the query's own and nearby clusters, so the heap
//     radius is near-final after the first segments; the far clusters —
//     most of the data — then meet a radius small enough to reject them
//     wholesale, and the ones that do get scanned hit the exact kernel's
//     early exit after fewer dimensions.
//
// The visit order and every skip decision are pure functions of the data,
// so results AND PruneStats are deterministic, and per-point queries stay
// independent — bit-identical at any worker count.

const (
	// landmarkMinPoints gates the tier by dataset size: below it the
	// exhaustive scan is already cheap and the O(n·nl·d) matrix build plus
	// per-query bookkeeping would not amortise.
	landmarkMinPoints = 256

	// landmarkMaxAuto caps the automatic landmark count. Cluster granularity
	// is the tier's main pruning lever (rejection is wholesale per segment,
	// plus a band refinement within scanned segments), so the automatic
	// pick targets ~8-point clusters — but each landmark costs O(n·d) at
	// build time, so the count is capped to keep the one-time matrix build
	// a small fraction of a single exhaustive AllKNN.
	landmarkMaxAuto = 128

	// landmarkSeed seeds the first-pick hash of the k-means++-style
	// selection. Fixed, so the same rows always elect the same landmarks.
	landmarkSeed = 0x9E3779B97F4A7C15
)

// PruneConfig tunes the landmark tier process-wide. The zero value means
// "enabled, automatic landmark count" — the default. Configuration only
// affects speed, never results: neighbour sets are bit-identical with the
// tier on, off, or at any landmark count.
type PruneConfig struct {
	// Landmarks fixes the landmark count; 0 picks automatically
	// (min(landmarkMaxAuto, n/8), at least 2).
	Landmarks int
	// Disabled turns the tier off; NewIndex falls back to the plain
	// brute-force scan for wide views.
	Disabled bool
	// NoQuant turns the quantized prefilter off (the -no-quant knob):
	// landmark band scans and window arrival scans go straight to the
	// exact kernel without the code-bound pass.
	NoQuant bool
	// QuantTile overrides the candidate tile size of the quantized
	// prefilter's filter/verify pipeline; 0 picks quantTileDefault,
	// values above quantTileMax are clamped.
	QuantTile int
}

var pruneConfig atomic.Value // of PruneConfig

// SetPruneConfig installs the process-wide landmark-tier configuration
// (the -landmarks / -no-prune knobs). Safe for concurrent use; indexes
// already built keep the configuration they were built with.
func SetPruneConfig(c PruneConfig) { pruneConfig.Store(c) }

// GetPruneConfig returns the current landmark-tier configuration.
func GetPruneConfig() PruneConfig {
	if c, ok := pruneConfig.Load().(PruneConfig); ok {
		return c
	}
	return PruneConfig{}
}

// PruneStats aggregates the landmark tier's activity: how many indexes
// built landmark structures, what the selection cost, and — the headline —
// how much of the candidate stream the lower bound rejected before the
// distance kernel ran. ScanFraction ≤ 0.6 on the Figure-9 reference
// workload is gated by scripts/check.sh.
type PruneStats struct {
	// Indexes counts landmark indexes built; Landmarks the landmark points
	// selected across them.
	Indexes, Landmarks int
	// BuildTime is the cumulative landmark selection + matrix time.
	BuildTime time.Duration
	// Candidates counts candidate rows considered by pruned queries;
	// Scanned of those reached the exact distance kernel, Skipped were
	// rejected by the triangle-inequality lower bound alone.
	Candidates, Scanned, Skipped int64
	// CodeBytes is the storage charged to quantized code rows and their
	// per-dimension tables across all builds.
	CodeBytes int64
	// QuantCandidates counts candidates whose 8-bit code bound was
	// evaluated in a tile pass; QuantRejected of those were rejected from
	// codes alone, without touching their float rows.
	QuantCandidates, QuantRejected int64
}

// ScanFraction reports Scanned / Candidates — the fraction of the
// candidate stream that still paid a distance computation. 1 means the
// bound never fired (or the tier never engaged); the Figure-9 reference
// workload sits well under the 0.6 gate.
func (s PruneStats) ScanFraction() float64 {
	if s.Candidates == 0 {
		return 1
	}
	return float64(s.Scanned) / float64(s.Candidates)
}

// SurvivorFraction reports the fraction of code-bound evaluations the
// quantized prefilter could NOT reject — the candidates that went on to
// pay an exact kernel call. 1 means the prefilter never fired (or never
// engaged); the Figure-9 reference workload is gated by
// TestQuantSurvivorFractionFigure9.
func (s PruneStats) SurvivorFraction() float64 {
	if s.QuantCandidates == 0 {
		return 1
	}
	return float64(s.QuantCandidates-s.QuantRejected) / float64(s.QuantCandidates)
}

func (s PruneStats) add(o PruneStats) PruneStats {
	s.Indexes += o.Indexes
	s.Landmarks += o.Landmarks
	s.BuildTime += o.BuildTime
	s.Candidates += o.Candidates
	s.Scanned += o.Scanned
	s.Skipped += o.Skipped
	s.CodeBytes += o.CodeBytes
	s.QuantCandidates += o.QuantCandidates
	s.QuantRejected += o.QuantRejected
	return s
}

// Package-wide totals, covering every landmark index in the process —
// including detectors' private fallback indexes that never pass through a
// plane. The per-plane aggregation (PlaneStats.Prune) is the per-service
// view; this is the process view.
var (
	pruneIndexes    atomic.Int64
	pruneLandmarks  atomic.Int64
	pruneBuildNanos atomic.Int64
	pruneCandidates atomic.Int64
	pruneScanned    atomic.Int64
	pruneSkipped    atomic.Int64
	pruneCodeBytes  atomic.Int64
	pruneQuantCand  atomic.Int64
	pruneQuantRej   atomic.Int64
)

// PruneTotals returns the process-wide landmark-tier counters.
func PruneTotals() PruneStats {
	return PruneStats{
		Indexes:         int(pruneIndexes.Load()),
		Landmarks:       int(pruneLandmarks.Load()),
		BuildTime:       time.Duration(pruneBuildNanos.Load()),
		Candidates:      pruneCandidates.Load(),
		Scanned:         pruneScanned.Load(),
		Skipped:         pruneSkipped.Load(),
		CodeBytes:       pruneCodeBytes.Load(),
		QuantCandidates: pruneQuantCand.Load(),
		QuantRejected:   pruneQuantRej.Load(),
	}
}

// ResetPruneTotals zeroes the process-wide counters (benchmark harnesses
// isolating one arm's activity).
func ResetPruneTotals() {
	pruneIndexes.Store(0)
	pruneLandmarks.Store(0)
	pruneBuildNanos.Store(0)
	pruneCandidates.Store(0)
	pruneScanned.Store(0)
	pruneSkipped.Store(0)
	pruneCodeBytes.Store(0)
	pruneQuantCand.Store(0)
	pruneQuantRej.Store(0)
}

// landmarkIndex is the pruned-candidate index: a brute-force scan behind an
// n×nl landmark lower-bound prefilter over a flat stride-addressed row
// copy. It implements Index and ScratchQuerier; results are bit-identical
// to bruteForce on the same points.
type landmarkIndex struct {
	points [][]float64
	flat   []float64 // n×d row-major copy, stride d (the kernel's layout)
	n, d   int

	nl    int       // landmark count
	lmIDs []int32   // the selected landmark point indices
	lm    []float64 // n×nl Euclidean point→landmark distances, stride nl

	assign []int32 // point → nearest landmark (ties to the lowest)
	// order groups points by assigned landmark; within a cluster, members
	// are sorted by ascending own-landmark distance (ties to the lowest
	// index). seg holds the nl+1 bounds: cluster c = order[seg[c]:seg[c+1]],
	// and ownDist mirrors order with each member's stored d(x, L_c) — the
	// sorted key the query-time band search runs on.
	order   []int32
	seg     []int32
	ownDist []float64

	// Per-(cluster, landmark) intervals of the stored member→landmark
	// distances: cluster c's members all have d(x,L_l) ∈
	// [segLoT[l*nl+c], segHiT[l*nl+c]]. Wholesale cluster rejection falls
	// out of these nl² intervals: the query's distance-to-interval under
	// any landmark is a lower bound on its distance to every member. The
	// matrix is stored TRANSPOSED (landmark-major) because a query probes
	// one fixed landmark — its own — against every cluster, which is then a
	// single sequential row; the diagonal (cluster c under its own landmark
	// L_c) is additionally mirrored into diagLo/diagHi for the same reason.
	segLoT, segHiT []float64
	diagLo, diagHi []float64

	// Quantized prefilter state (nil qp when disabled or unusable, see
	// quant.go): qcodes holds the n padded code rows (stride bytes each,
	// see quantStride) in CLUSTER order — row r
	// codes point order[r] — so the band scan's tile pass reads sequential
	// bytes; qpos is the inverse permutation (point → code row), which is
	// how a query finds its own code.
	qp        *quantParams
	qcodes    []uint8
	qpos      []int32
	qtile     int
	codeBytes int64

	buildTime time.Duration

	// Per-index activity, mirrored into the package totals; the plane folds
	// these into the owning entry's PruneStats after each computation.
	candidates, scanned, skipped atomic.Int64
	qcand, qrej                  atomic.Int64
}

// NewLandmarkIndex builds a pruned-candidate index over the points with the
// given landmark count (0 → automatic). Callers normally go through
// NewIndex, which applies the process PruneConfig and the size/width gates;
// this constructor is exported for tests and benchmarks that pin the tier
// explicitly. The points are not mutated; the index keeps its own flat copy.
func NewLandmarkIndex(points [][]float64, landmarks int) Index {
	n := len(points)
	if n < 2 {
		return bruteForce{points: points}
	}
	start := time.Now()
	d := len(points[0])
	lx := &landmarkIndex{points: points, n: n, d: d}
	lx.flat = make([]float64, n*d)
	for i, p := range points {
		copy(lx.flat[i*d:(i+1)*d], p)
	}

	nl := landmarks
	if nl <= 0 {
		nl = n / 8
		if nl > landmarkMaxAuto {
			nl = landmarkMaxAuto
		}
		if nl < 2 {
			nl = 2
		}
	}
	if nl > n {
		nl = n
	}
	lx.nl = nl
	lx.lm = make([]float64, n*nl)
	lx.selectLandmarks()
	lx.buildClusters()
	if cfg := GetPruneConfig(); !cfg.NoQuant && n >= quantMinPoints {
		lx.buildQuant(cfg.QuantTile)
	}
	lx.buildTime = time.Since(start)

	pruneIndexes.Add(1)
	pruneLandmarks.Add(int64(nl))
	pruneBuildNanos.Add(int64(lx.buildTime))
	return lx
}

// splitmix64 is the seed mixer of the landmark selection: one deterministic
// well-distributed hash, no RNG state to carry.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// selectLandmarks runs the deterministic seeded k-means++-style selection:
// the first landmark is a hash-seeded pick, every later one the point
// farthest from all landmarks chosen so far (greedy k-center refinement,
// ties to the lowest index — the deterministic stand-in for k-means++'s
// D²-weighted sampling). The point→landmark matrix is filled column by
// column as a side effect: each new landmark's distances to all points are
// exactly its matrix column.
func (lx *landmarkIndex) selectLandmarks() {
	n, d, nl := lx.n, lx.d, lx.nl
	lx.lmIDs = make([]int32, nl)
	minD := make([]float64, n) // distance to the nearest chosen landmark
	for i := range minD {
		minD[i] = math.Inf(1)
	}
	next := int(splitmix64(landmarkSeed^uint64(n)<<20^uint64(d)) % uint64(n))
	for c := 0; c < nl; c++ {
		lx.lmIDs[c] = int32(next)
		lrow := lx.flat[next*d : (next+1)*d]
		for p := 0; p < n; p++ {
			dist := math.Sqrt(SquaredEuclidean(lx.flat[p*d:(p+1)*d], lrow))
			lx.lm[p*nl+c] = dist
			if dist < minD[p] {
				minD[p] = dist
			}
		}
		// Farthest point from the chosen set seeds the next round; ties go
		// to the lowest index so duplicate-heavy data stays deterministic.
		best, bestV := 0, math.Inf(-1)
		for p := 0; p < n; p++ {
			if minD[p] > bestV {
				best, bestV = p, minD[p]
			}
		}
		next = best
	}
}

// buildClusters assigns every point to its nearest landmark and lays out
// the segmented visit order (points grouped by assignment, each group
// sorted by own-landmark distance, ties to the lowest index) plus the
// per-(cluster, landmark) distance intervals that drive query-time
// wholesale rejection and the sorted own-distance key of the band search.
func (lx *landmarkIndex) buildClusters() {
	n, nl := lx.n, lx.nl
	lx.assign = make([]int32, n)
	counts := make([]int32, nl+1)
	for p := 0; p < n; p++ {
		row := lx.lm[p*nl : (p+1)*nl]
		best := 0
		for c := 1; c < nl; c++ {
			if row[c] < row[best] {
				best = c
			}
		}
		lx.assign[p] = int32(best)
		counts[best+1]++
	}
	for c := 0; c < nl; c++ {
		counts[c+1] += counts[c]
	}
	lx.seg = counts
	lx.order = make([]int32, n)
	fill := make([]int32, nl)
	copy(fill, counts[:nl])
	for p := 0; p < n; p++ {
		c := lx.assign[p]
		lx.order[fill[c]] = int32(p)
		fill[c]++
	}
	lx.ownDist = make([]float64, n)
	for c := 0; c < nl; c++ {
		seg := lx.order[counts[c]:counts[c+1]]
		sort.Slice(seg, func(a, b int) bool {
			da := lx.lm[int(seg[a])*nl+c]
			db := lx.lm[int(seg[b])*nl+c]
			if da != db {
				return da < db
			}
			return seg[a] < seg[b]
		})
		for r, p := range seg {
			lx.ownDist[int(counts[c])+r] = lx.lm[int(p)*nl+c]
		}
	}
	lx.segLoT = make([]float64, nl*nl)
	lx.segHiT = make([]float64, nl*nl)
	for i := range lx.segLoT {
		lx.segLoT[i] = math.Inf(1)
		lx.segHiT[i] = math.Inf(-1)
	}
	for p := 0; p < n; p++ {
		c := int(lx.assign[p])
		row := lx.lm[p*nl : (p+1)*nl]
		for l, v := range row {
			if v < lx.segLoT[l*nl+c] {
				lx.segLoT[l*nl+c] = v
			}
			if v > lx.segHiT[l*nl+c] {
				lx.segHiT[l*nl+c] = v
			}
		}
	}
	lx.diagLo = make([]float64, nl)
	lx.diagHi = make([]float64, nl)
	for c := 0; c < nl; c++ {
		lx.diagLo[c] = lx.segLoT[c*nl+c]
		lx.diagHi[c] = lx.segHiT[c*nl+c]
	}
}

// buildQuant lays the quantized prefilter over the clustered order: one
// code book for the view, code rows stored in cluster order so the band
// scan's tile pass streams sequential bytes. Views the book refuses
// (non-finite values, ranges too wide to square) leave qp nil and the
// scans take the plain exact path.
func (lx *landmarkIndex) buildQuant(tile int) {
	lx.qtile = quantTileSize(tile)
	qp := newQuantParams(lx.points, lx.d)
	if !qp.usable {
		return
	}
	st := qp.stride
	codes := make([]uint8, lx.n*st)
	pos := make([]int32, lx.n)
	for r, j := range lx.order {
		pos[j] = int32(r)
		if !qp.encode(lx.points[j], codes[r*st:(r+1)*st]) {
			// Build rows always encode; if one somehow does not, the
			// bound's premise is void — drop the prefilter for this view.
			return
		}
	}
	lx.qp, lx.qcodes, lx.qpos = qp, codes, pos
	lx.codeBytes = qp.codeBytes(lx.n)
	pruneCodeBytes.Add(lx.codeBytes)
}

func (lx *landmarkIndex) Len() int { return lx.n }

// Landmarks returns the selected landmark point indices (diagnostics).
func (lx *landmarkIndex) Landmarks() []int32 {
	return append([]int32(nil), lx.lmIDs...)
}

// PruneStats returns this index's own activity counters.
func (lx *landmarkIndex) PruneStats() PruneStats {
	return PruneStats{
		Indexes:         1,
		Landmarks:       lx.nl,
		BuildTime:       lx.buildTime,
		Candidates:      lx.candidates.Load(),
		Scanned:         lx.scanned.Load(),
		Skipped:         lx.skipped.Load(),
		CodeBytes:       lx.codeBytes,
		QuantCandidates: lx.qcand.Load(),
		QuantRejected:   lx.qrej.Load(),
	}
}

func (lx *landmarkIndex) KNNOf(i, k int) ([]int, []float64) {
	var s Scratch
	idx, dist := lx.KNNInto(i, k, &s)
	return append([]int(nil), idx...), append([]float64(nil), dist...)
}

// KNNInto answers like bruteForce.KNNInto — bit for bit — through the
// landmark prefilter: clusters are visited in order of increasing
// query→landmark distance (the query's own cluster is the nearest landmark,
// so it comes first and tightens the heap radius), and every later cluster
// is tested wholesale against the radius before any member distance is
// computed — the farther the cluster, the smaller the radius it meets and
// the likelier its whole segment is rejected. Per-query counters flush
// into the index and package totals once at the end.
func (lx *landmarkIndex) KNNInto(i, k int, s *Scratch) ([]int, []float64) {
	checkK(k)
	s.h.reset(k)
	nl := lx.nl
	q := lx.flat[i*lx.d : (i+1)*lx.d]
	qlm := lx.lm[i*nl : (i+1)*nl]
	var pc pruneCounters

	// One pass picks the lbNearClusters nearest landmarks' clusters
	// (ascending distance, ties to the lowest index — the strict compare
	// against an ascending scan keeps the earlier index on ties).
	near := lbNearClusters
	if near > nl {
		near = nl
	}
	var nearC [lbNearClusters]int32
	var nearD [lbNearClusters]float64
	for j := 0; j < near; j++ {
		nearC[j], nearD[j] = -1, math.Inf(1)
	}
	for c := 0; c < nl; c++ {
		dc := qlm[c]
		if dc >= nearD[near-1] {
			continue
		}
		j := near - 1
		for j > 0 && nearD[j-1] > dc {
			nearD[j], nearC[j] = nearD[j-1], nearC[j-1]
			j--
		}
		nearD[j], nearC[j] = dc, int32(c)
	}

	own := int(lx.assign[i])
	ownLo := lx.segLoT[own*nl : (own+1)*nl]
	ownHi := lx.segHiT[own*nl : (own+1)*nl]
	// visit judges one cluster: wholesale rejection by the cluster's own
	// landmark (diagonal interval) or the query's own landmark (one
	// sequential row of the transposed interval matrix), else the band
	// scan. Two compares reject a whole segment.
	visit := func(c int) {
		lo, hi := lx.seg[c], lx.seg[c+1]
		if lo == hi {
			return
		}
		pc.candidates += int64(hi - lo)
		if limit := s.h.top(); !math.IsInf(limit, 1) &&
			(lbIntervalClears(qlm[c], lx.diagLo[c], lx.diagHi[c], limit) ||
				lbIntervalClears(qlm[own], ownLo[c], ownHi[c], limit)) {
			pc.skipped += int64(hi - lo)
			return
		}
		lx.scanCluster(c, i, q, qlm[c], s, &pc)
	}
	for _, c := range nearC[:near] {
		visit(int(c))
	}
	for c := 0; c < nl; c++ {
		isNear := false
		for _, nc := range nearC[:near] {
			if int(nc) == c {
				isNear = true
				break
			}
		}
		if !isNear {
			visit(c)
		}
	}
	// The query's own row rides through the scan (rejected by the qi check,
	// never by a bound — both its bounds are zero); don't count it a
	// candidate. Scanned = candidates the exact kernel actually saw, after
	// both the wholesale/band skips and the code-bound rejections.
	pc.candidates--
	scanned := pc.candidates - pc.skipped - pc.qrej
	lx.candidates.Add(pc.candidates)
	lx.scanned.Add(scanned)
	lx.skipped.Add(pc.skipped)
	lx.qcand.Add(pc.qcand)
	lx.qrej.Add(pc.qrej)
	pruneCandidates.Add(pc.candidates)
	pruneScanned.Add(scanned)
	pruneSkipped.Add(pc.skipped)
	pruneQuantCand.Add(pc.qcand)
	pruneQuantRej.Add(pc.qrej)
	return s.drain()
}

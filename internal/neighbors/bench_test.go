package neighbors

import (
	"context"
	"math/rand"
	"testing"
)

func benchPoints(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	return points
}

func BenchmarkKDTreeBuild(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{256, 1024} {
		points := benchPoints(n, 3)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewKDTree(points)
			}
		})
	}
}

func BenchmarkAllKNN(b *testing.B) {
	b.ReportAllocs()
	for _, d := range []int{2, 5, 20} {
		points := benchPoints(1000, d)
		b.Run("kdtree/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			if d > kdTreeMaxDim {
				b.Skip("kd-tree not selected at this dimensionality")
			}
			for i := 0; i < b.N; i++ {
				AllKNN(NewKDTree(points), 15)
			}
		})
		b.Run("brute/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			ix := NewBruteForce(points)
			for i := 0; i < b.N; i++ {
				AllKNN(ix, 15)
			}
		})
	}
}

// BenchmarkAllKNNFlat measures the header-free flat builder the plane and
// detector hot paths consume; allocs/op must stay constant in n (the
// contract TestAllKNNAllocs pins).
func BenchmarkAllKNNFlat(b *testing.B) {
	for _, n := range []int{256, 1000} {
		points := benchPoints(n, 3)
		ix := NewIndex(points)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := AllKNNFlat(context.Background(), ix, 15, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return out
}

package neighbors

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func benchPoints(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	points := make([][]float64, n)
	for i := range points {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	return points
}

func BenchmarkKDTreeBuild(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{256, 1024} {
		points := benchPoints(n, 3)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewKDTree(points)
			}
		})
	}
}

// BenchmarkAllKNN queries with the worker budget set to the live
// GOMAXPROCS, so a `go test -cpu 1,2,4` sweep measures the parallel
// substrate's actual scaling (at the default single-proc run it is the
// same serial query loop as always — the check.sh reference workload
// stays comparable across rounds).
func BenchmarkAllKNN(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)
	for _, d := range []int{2, 5, 20} {
		points := benchPoints(1000, d)
		b.Run("kdtree/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			if d > kdTreeMaxDim {
				b.Skip("kd-tree not selected at this dimensionality")
			}
			for i := 0; i < b.N; i++ {
				if _, _, _, err := AllKNNFlat(ctx, NewKDTree(points), 15, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("brute/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			ix := NewBruteForce(points)
			for i := 0; i < b.N; i++ {
				if _, _, _, err := AllKNNFlat(ctx, ix, 15, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSquaredEuclideanWithin sweeps the exact distance kernel alone —
// the innermost loop every tier above funnels into — so kernel-level
// regressions show up in the trajectory independent of index structure.
// The no-limit arm measures the full accumulation; the tight-limit arm
// measures the early-exit path the pruning tiers lean on (limit set to a
// quarter of the pair's distance, so the exit fires at the first check).
func BenchmarkSquaredEuclideanWithin(b *testing.B) {
	var sink float64
	for _, d := range []int{4, 8, 20, 64} {
		rows := benchPoints(2, d)
		a, c := rows[0], rows[1]
		full := SquaredEuclidean(a, c)
		b.Run("full/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, _ := squaredEuclideanWithin(a, c, math.Inf(1))
				sink += v
			}
		})
		b.Run("earlyexit/"+itoa(d)+"d", func(b *testing.B) {
			b.ReportAllocs()
			limit := full / 4
			for i := 0; i < b.N; i++ {
				v, _ := squaredEuclideanWithin(a, c, limit)
				sink += v
			}
		})
	}
	if math.IsNaN(sink) {
		b.Fatal("kernel produced NaN")
	}
}

// BenchmarkAllKNNFlat measures the header-free flat builder the plane and
// detector hot paths consume; allocs/op must stay constant in n (the
// contract TestAllKNNAllocs pins).
func BenchmarkAllKNNFlat(b *testing.B) {
	for _, n := range []int{256, 1000} {
		points := benchPoints(n, 3)
		ix := NewIndex(points)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := AllKNNFlat(context.Background(), ix, 15, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	out := ""
	for v > 0 {
		out = string(rune('0'+v%10)) + out
		v /= 10
	}
	return out
}

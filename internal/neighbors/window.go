package neighbors

import (
	"context"
	"fmt"
	"math"

	"anex/internal/parallel"
)

// window.go — the incremental sliding-window neighbourhood engine.
//
// A stream monitor evaluating a window of W points every stride of s throws
// away a neighbourhood structure that is (W−s)/W identical to the next
// window's: with the default stride W/4, three quarters of every all-kNN
// computation re-derives lists that could not have changed much. The
// WindowEngine amortises that work across overlapping windows. It keeps one
// reservoir of the k+slack nearest live points per window slot, totally
// ordered by (squared-distance bit pattern, slot) — the same strict order
// the bounded-heap drain and the delta engine emit, the order that makes
// the plane's prefix slicing legal — and repairs it under point arrival
// and expiry:
//
//   - An ARRIVAL occupies the slot its expired predecessor vacated (the
//     monitor's ring layout), so slot identity is stable and the engine's
//     slot-indexed lists line up bit-for-bit with a cold rebuild over the
//     ring-ordered window rows. Each arrival's own reservoir is built by
//     one fresh scan through the same early-exit kernel the brute-force
//     index uses.
//   - A SURVIVOR's reservoir drops entries whose slot was re-occupied.
//     What remains is still a prefix of the survivor's true neighbour
//     order restricted to surviving points — any untracked survivor was
//     farther than everything kept — so the slack absorbs expiries without
//     any rescan until fewer than k trusted entries remain.
//   - The s arrivals are then merged into every survivor's reservoir
//     (early-exited against the reservoir's current worst entry). Entries
//     that sort beyond the last surviving pre-merge entry are SUSPECT — an
//     untracked old point could outrank them — and are truncated; a
//     reservoir still holding ≥ k trusted entries needs no further work,
//     anything shorter is repaired by one full rescan at k+slack.
//
// The repair invariant — every reservoir is a bit-exact prefix of the
// slot's true (squared distance, slot) neighbour order, at least k long
// whenever k other points exist — makes Neighborhood()'s export
// bit-identical to NewIndex + AllKNNFlat over the same rows at any stride,
// slack, and worker count (pinned by TestWindowEngineBitIdenticalCold).
// Distances are computed by the same kernels in the same accumulation
// order on every path, and (x−y)² is bit-symmetric in IEEE arithmetic, so
// an arrival's scan and a survivor's merge agree on the shared pair.

// DefaultWindowSlack is the reservoir slack applied when a consumer passes
// a negative slack to NewWindowEngine. Expected expiries per reservoir per
// stride are k·s/W (hypergeometric thinning); 8 absorbs several strides of
// the reference workload (k=15, s=W/4 → 3.75 expected) before a rescan.
const DefaultWindowSlack = 8

// WindowArrival is one point entering the engine: Point replaces the
// current occupant of Slot, or is appended when Slot equals the current
// point count (the growing phase before the monitor's window fills). The
// point slice is shared, not copied; the caller must not mutate it while
// the engine is alive.
type WindowArrival struct {
	Slot  int
	Point []float64
}

// WindowStats counts the engine's activity since construction.
type WindowStats struct {
	// Batches counts Apply calls that carried at least one arrival;
	// Arrivals the points they delivered (each costing one fresh scan).
	Batches, Arrivals int
	// SurvivorLists counts reservoirs examined for repair (the per-batch
	// survivor count, summed); Rescans of those lost too many trusted
	// entries and were rebuilt by a full scan — the expensive event the
	// slack exists to avoid. RepairFraction is their ratio.
	SurvivorLists, Rescans int
	// DirtyMarks counts k-prefix changes recorded (arrival slots included):
	// the upper bound on what a dirty-aware scorer must re-score.
	DirtyMarks int
}

// RepairFraction reports the fraction of survivor reservoirs that needed a
// full rescan: Rescans ÷ SurvivorLists, 0 when nothing was examined. The
// deterministic ceiling gate in internal/stream pins it on the reference
// workload.
func (s WindowStats) RepairFraction() float64 {
	if s.SurvivorLists == 0 {
		return 0
	}
	return float64(s.Rescans) / float64(s.SurvivorLists)
}

func (s WindowStats) String() string {
	return fmt.Sprintf("batches %d, arrivals %d, survivor lists %d, rescans %d (repair fraction %.3f), dirty marks %d",
		s.Batches, s.Arrivals, s.SurvivorLists, s.Rescans, s.RepairFraction(), s.DirtyMarks)
}

// windowEntry is one reservoir member: the squared distance to the owning
// slot's point (squared, so selection happens in exactly the space the
// bounded heap selects in; the export square-roots) and the member's slot.
type windowEntry struct {
	d2   float64
	slot int32
}

// entryLess orders reservoir entries by (squared distance, slot) — the
// strict total order shared with the bounded-heap drain. Non-negative
// distances make numeric order and bit-pattern order coincide.
func entryLess(a, b windowEntry) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.slot < b.slot
}

// WindowEngine maintains per-slot neighbour reservoirs under sliding-window
// point arrival and expiry. Not safe for concurrent use; internal repair
// work is parallelised over the configured worker budget with bit-identical
// results at any count.
type WindowEngine struct {
	k, slack, workers int
	d                 int // fixed by the first arrival
	points            [][]float64
	lists             [][]windowEntry
	dirty             []bool // k-prefix changed since the last TakeDirty
	stats             WindowStats

	// Per-batch scratch, reused across Apply calls so steady-state strides
	// allocate only the export arrays.
	newSlot  []bool
	replaced []bool
	arrSlots []int32
	scratch  []windowScratch

	// Quantized prefilter state (see quant.go): slot-major code rows,
	// maintained incrementally — arrivals re-encode only their own slot
	// against the frozen code book. An arrival outside the book's range is
	// marked uncodeable (qok false) and is simply never rejected by the
	// bound; when uncodeable slots exceed a quarter of the window the book
	// is rebuilt from the live points. qp nil means the prefilter is off
	// (config, window too small, or uncodeable data).
	qp      *quantParams
	qcodes  []uint8
	qok     []bool
	quncode int
	qtile   int
}

// windowScratch is the per-worker repair scratch: the bounded heap of full
// rescans, the saved old k-prefix used for dirty detection, and the
// worker's code-bound counters (flushed to the package prune totals once
// per batch).
type windowScratch struct {
	h           boundedHeap
	prefix      []windowEntry
	qcand, qrej int64
	qbound      [quantTileMax]int64
	qsurv       [quantTileMax]int32
}

// NewWindowEngine returns an engine maintaining reservoirs of k+slack
// entries (k ≥ 1; slack < 0 → DefaultWindowSlack, slack 0 is a legitimate
// "no reservoir" setting that rescans on every prefix expiry). workers
// bounds the goroutines of scan and repair phases; ≤ 1 stays serial.
func NewWindowEngine(k, slack, workers int) *WindowEngine {
	checkK(k)
	if slack < 0 {
		slack = DefaultWindowSlack
	}
	return &WindowEngine{k: k, slack: slack, workers: workers}
}

// K returns the neighbourhood depth the engine maintains.
func (e *WindowEngine) K() int { return e.k }

// Len returns the number of live slots.
func (e *WindowEngine) Len() int { return len(e.points) }

// Stats returns the engine's cumulative activity counters.
func (e *WindowEngine) Stats() WindowStats { return e.stats }

// cap returns the reservoir capacity.
func (e *WindowEngine) cap() int { return e.k + e.slack }

// Apply delivers one batch of arrivals — the stride's worth of points that
// entered since the last evaluation, in push order, at most one per slot
// (the caller keeps only a slot's final occupant when a stride laps the
// window). Expiry is implicit: replacing a slot expires its previous
// occupant everywhere. An error (context cancellation, a malformed batch)
// leaves the engine in an undefined state; the caller must discard it and
// rebuild cold.
func (e *WindowEngine) Apply(ctx context.Context, batch []WindowArrival) error {
	if len(batch) == 0 {
		return nil
	}
	n0 := len(e.points)
	for _, a := range batch {
		if e.d == 0 {
			if len(a.Point) == 0 {
				return fmt.Errorf("neighbors: window arrival at slot %d has no features", a.Slot)
			}
			e.d = len(a.Point)
		}
		if len(a.Point) != e.d {
			return fmt.Errorf("neighbors: window arrival at slot %d has %d features, want %d", a.Slot, len(a.Point), e.d)
		}
		switch {
		case a.Slot == len(e.points):
			e.points = append(e.points, a.Point)
			e.lists = append(e.lists, make([]windowEntry, 0, e.cap()))
			e.dirty = append(e.dirty, false)
		case a.Slot >= 0 && a.Slot < len(e.points):
			e.points[a.Slot] = a.Point
		default:
			return fmt.Errorf("neighbors: window arrival slot %d out of range (have %d slots)", a.Slot, len(e.points))
		}
	}
	n := len(e.points)

	// newSlot marks slots whose occupant changed this batch (arrivals);
	// replaced marks the pre-existing slots among them, whose OLD occupant
	// every survivor reservoir must drop.
	e.newSlot = growBool(e.newSlot, n)
	e.replaced = growBool(e.replaced, n)
	e.arrSlots = e.arrSlots[:0]
	for _, a := range batch {
		if !e.newSlot[a.Slot] {
			e.newSlot[a.Slot] = true
			e.arrSlots = append(e.arrSlots, int32(a.Slot))
			if a.Slot < n0 {
				e.replaced[a.Slot] = true
			}
		}
	}
	e.stats.Batches++
	e.stats.Arrivals += len(e.arrSlots)
	replacedCount := 0
	for _, s := range e.arrSlots {
		if int(s) < n0 {
			replacedCount++
		}
	}
	// Other surviving old points any incomplete survivor reservoir may be
	// blind to: everything pre-existing minus the replaced slots minus the
	// owner itself.
	survivorOthers := n0 - replacedCount - 1
	nBefore := n0

	// Refresh the quantized code rows before the parallel phase: arrivals
	// encode serially here so every worker sees a consistent code table.
	e.refreshCodes()

	shards := parallel.ShardCount(e.workers, n)
	if cap(e.scratch) < shards {
		e.scratch = make([]windowScratch, shards)
	}
	e.scratch = e.scratch[:shards]
	rescans := make([]int, shards)
	dirtyMarks := make([]int, shards)

	err := parallel.ForEachShard(ctx, e.workers, n, func(shard, i int) {
		sc := &e.scratch[shard]
		if e.newSlot[i] {
			// Arrival: one fresh scan builds the reservoir.
			e.lists[i] = e.scanSlot(i, sc, e.lists[i])
			e.dirty[i] = true
			dirtyMarks[shard]++
			return
		}
		if e.repairSlot(i, nBefore, survivorOthers, sc) {
			rescans[shard]++
		}
		if e.dirty[i] {
			dirtyMarks[shard]++
		}
	})
	for s := 0; s < shards; s++ {
		e.stats.Rescans += rescans[s]
		e.stats.DirtyMarks += dirtyMarks[s]
		if sc := &e.scratch[s]; sc.qcand != 0 {
			pruneQuantCand.Add(sc.qcand)
			pruneQuantRej.Add(sc.qrej)
			sc.qcand, sc.qrej = 0, 0
		}
	}
	e.stats.SurvivorLists += n - len(e.arrSlots)
	// Reset per-batch marks for the next Apply (cheaper than reallocating,
	// and keeps steady-state strides allocation-free).
	for _, s := range e.arrSlots {
		e.newSlot[s] = false
		e.replaced[s] = false
	}
	return err
}

// repairSlot repairs one survivor reservoir under the batch currently being
// applied (nBefore is the pre-batch live count), reporting whether a full
// rescan was needed. Caller guarantees slot i is not an arrival.
func (e *WindowEngine) repairSlot(i, nBefore, survivorOthers int, sc *windowScratch) (rescanned bool) {
	list := e.lists[i]
	n := len(e.points)
	// complete ⇔ the reservoir held EVERY other pre-batch point, in which
	// case nothing it ever reports can be outranked by an untracked one.
	complete := len(list) == nBefore-1

	// Save the old k-prefix — (slot, d2) pairs, not just slots: a replaced
	// slot can re-enter the prefix at its old position with a new distance,
	// which is a change a slot-only compare would miss.
	kOld := len(list)
	if kOld > e.k {
		kOld = e.k
	}
	if cap(sc.prefix) < e.k {
		sc.prefix = make([]windowEntry, e.k)
	}
	prefix := sc.prefix[:kOld]
	copy(prefix, list[:kOld])

	// 1) Drop entries whose slot was re-occupied. What survives is exactly
	// the nearest surviving old points among the tracked ones: anything
	// untracked was farther than every kept entry.
	w := 0
	for _, en := range list {
		if e.replaced[en.slot] {
			continue
		}
		list[w] = en
		w++
	}
	list = list[:w]
	// The knowledge boundary: entries ordering beyond the farthest kept
	// pre-merge entry might be outranked by an untracked old survivor.
	var boundary windowEntry
	haveBoundary := w > 0
	if haveBoundary {
		boundary = list[w-1]
	}

	// 2) Merge the arrivals, early-exited against the reservoir's current
	// worst entry once it is full.
	q := e.points[i]
	for _, r := range e.arrSlots {
		if int(r) == i {
			continue
		}
		limit := math.Inf(1)
		if len(list) == e.cap() {
			limit = list[len(list)-1].d2
		}
		d2, within := squaredEuclideanWithin(q, e.points[r], limit)
		if !within {
			continue
		}
		list = insertWindowEntry(list, windowEntry{d2: d2, slot: r}, e.cap())
	}

	// 3) Truncate suspect tail entries (arrivals beyond the boundary),
	// unless the reservoir's knowledge is complete: it held every old
	// point, or no unknown survivor exists to outrank anything.
	if !complete && survivorOthers > 0 {
		t := len(list)
		if !haveBoundary {
			t = 0
		} else {
			for t > 0 && entryLess(boundary, list[t-1]) {
				t--
			}
		}
		list = list[:t]
	}

	// 4) A reservoir short of k trusted entries is repaired by one full
	// rescan at k+slack — the expensive event the slack bounds.
	need := e.k
	if need > n-1 {
		need = n - 1
	}
	if len(list) < need {
		list = e.scanSlot(i, sc, list)
		rescanned = true
	}
	e.lists[i] = list

	// Dirty iff the exported k-prefix changed.
	kNew := len(list)
	if kNew > e.k {
		kNew = e.k
	}
	if kNew != kOld {
		e.dirty[i] = true
		return rescanned
	}
	for t := 0; t < kNew; t++ {
		if list[t] != prefix[t] {
			e.dirty[i] = true
			return rescanned
		}
	}
	return rescanned
}

// scanSlot rebuilds slot i's reservoir with one exhaustive scan through the
// same early-exit kernel and bounded heap as the brute-force index, draining
// in the shared (squared distance, slot) order. When the quantized
// prefilter is live and the owner's own code is valid, the scan runs behind
// the code-bound tile pass (scanPointsQuant) — survivors meet the same live
// radius, so the reservoir is bit-identical either way. The result reuses
// out's backing array when large enough.
func (e *WindowEngine) scanSlot(i int, sc *windowScratch, out []windowEntry) []windowEntry {
	q := e.points[i]
	h := &sc.h
	size := e.cap()
	if size > len(e.points)-1 {
		size = len(e.points) - 1
	}
	if size <= 0 {
		return out[:0]
	}
	h.reset(size)
	if e.qp != nil && e.qok[i] {
		e.scanPointsQuant(i, q, sc)
	} else {
		for j, p := range e.points {
			if j == i {
				continue
			}
			d2, within := squaredEuclideanWithin(q, p, h.top())
			if !within {
				continue
			}
			h.push(j, d2)
		}
	}
	m := h.len()
	if cap(out) < m {
		out = make([]windowEntry, m, e.cap())
	}
	out = out[:m]
	for t := m - 1; t >= 0; t-- {
		j, d2 := h.popMax()
		out[t] = windowEntry{d2: d2, slot: int32(j)}
	}
	return out
}

// scanPointsQuant is scanSlot's candidate loop behind the quantized
// prefilter: slots are walked in tiles, each tile running the branch-free
// code-bound pass over sequential byte rows before the exact kernel sees
// the survivors (see quant.go for the bound and its safety argument). A
// slot whose code is invalid (qok false — an arrival outside the frozen
// book's range) always survives the bound pass; tiles met before the heap
// fills skip the pass outright since nothing can be rejected.
func (e *WindowEngine) scanPointsQuant(i int, q []float64, sc *windowScratch) {
	h := &sc.h
	qp := e.qp
	st := qp.stride
	qc := e.qcodes[i*st : i*st+st]
	n := len(e.points)
	bounds, surv := &sc.qbound, &sc.qsurv
	for base := 0; base < n; base += e.qtile {
		t := e.qtile
		if base+t > n {
			t = n - base
		}
		limit := h.top()
		if math.IsInf(limit, 1) {
			for j := base; j < base+t; j++ {
				if j == i {
					continue
				}
				d2, within := squaredEuclideanWithin(q, e.points[j], h.top())
				if within {
					h.push(j, d2)
				}
			}
			continue
		}
		quantSqSumTile(qc, e.qcodes[base*st:(base+t)*st], t, bounds[:])
		ns := 0
		for r := 0; r < t; r++ {
			j := base + r
			if e.qok[j] && qp.sumClears(bounds[r], limit) {
				continue
			}
			surv[ns] = int32(j)
			ns++
		}
		sc.qcand += int64(t)
		sc.qrej += int64(t - ns)
		for _, j32 := range surv[:ns] {
			j := int(j32)
			if j == i {
				continue
			}
			d2, within := squaredEuclideanWithin(q, e.points[j], h.top())
			if within {
				h.push(j, d2)
			}
		}
	}
}

// refreshCodes maintains the quantized code table across a batch: arrivals
// re-encode their own slot against the frozen code book, and the book is
// rebuilt from the live points when the window grew past the gate, the
// configuration changed, or too many arrivals fell outside the coded range.
// Runs serially in Apply before the parallel repair phase.
func (e *WindowEngine) refreshCodes() {
	n := len(e.points)
	cfg := GetPruneConfig()
	if cfg.NoQuant || n < quantMinPoints {
		e.qp = nil
		return
	}
	e.qtile = quantTileSize(cfg.QuantTile)
	if e.qp == nil || len(e.qok) != n {
		e.rebuildCodes()
		return
	}
	st := e.qp.stride
	for _, s := range e.arrSlots {
		j := int(s)
		if !e.qok[j] {
			e.quncode--
		}
		e.qok[j] = e.qp.encode(e.points[j], e.qcodes[j*st:(j+1)*st])
		if !e.qok[j] {
			e.quncode++
		}
	}
	if e.quncode*4 > n {
		e.rebuildCodes()
	}
}

// rebuildCodes derives a fresh code book from the live window and encodes
// every slot. A window the book refuses (non-finite values, ranges too wide
// to square) turns the prefilter off until a later batch changes the data.
func (e *WindowEngine) rebuildCodes() {
	n := len(e.points)
	qp := newQuantParams(e.points, e.d)
	if !qp.usable {
		e.qp = nil
		return
	}
	st := qp.stride
	if cap(e.qcodes) < n*st {
		e.qcodes = make([]uint8, n*st)
	}
	e.qcodes = e.qcodes[:n*st]
	if cap(e.qok) < n {
		e.qok = make([]bool, n)
	}
	e.qok = e.qok[:n]
	e.quncode = 0
	for j, p := range e.points {
		e.qok[j] = qp.encode(p, e.qcodes[j*st:(j+1)*st])
		if !e.qok[j] {
			e.quncode++
		}
	}
	e.qp = qp
	pruneCodeBytes.Add(qp.codeBytes(n))
}

// insertWindowEntry inserts en into the (squared distance, slot)-sorted
// list, dropping the tail entry past the capacity. An entry ordering at or
// beyond a full list's end is discarded.
func insertWindowEntry(list []windowEntry, en windowEntry, capacity int) []windowEntry {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryLess(list[mid], en) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= capacity {
		return list
	}
	if len(list) < capacity {
		list = append(list, windowEntry{})
	}
	copy(list[lo+1:], list[lo:])
	list[lo] = en
	return list
}

// TakeDirty returns which slots' exported k-prefixes changed since the last
// TakeDirty (arrival slots always count) and resets the marks. The returned
// slice is valid until the next Apply.
func (e *WindowEngine) TakeDirty() []bool {
	out := make([]bool, len(e.dirty))
	copy(out, e.dirty)
	for i := range e.dirty {
		e.dirty[i] = false
	}
	return out
}

// Neighborhood exports the maintained structure in the plane's flat layout:
// row-major n×m arrays, m = min(k, n−1), point i's neighbours at
// idx[i*m : (i+1)*m] with Euclidean distances ascending, slot tie-broken —
// bit-identical to AllKNNFlat over a fresh index of the same rows. The
// arrays are freshly allocated: the caller may hand them to the plane
// (Plane.Publish) without copying, and the engine's next Apply cannot
// corrupt them.
func (e *WindowEngine) Neighborhood() (idx []int32, dist []float64, m, stride int) {
	n := len(e.points)
	m = e.k
	if m > n-1 {
		m = n - 1
	}
	if m <= 0 {
		return nil, nil, 0, 0
	}
	idx = make([]int32, n*m)
	dist = make([]float64, n*m)
	for i, list := range e.lists {
		row := i * m
		for t := 0; t < m; t++ {
			idx[row+t] = list[t].slot
			dist[row+t] = math.Sqrt(list[t].d2)
		}
	}
	return idx, dist, m, m
}

func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		nb := make([]bool, n)
		copy(nb, b)
		return nb
	}
	b = b[:n]
	return b
}

// Package neighbors provides the k-nearest-neighbour substrate used by the
// density- and angle-based detectors. Two index implementations are
// provided: exhaustive brute force, and a KD-tree that pays off on the
// low-dimensional subspace views that explanation algorithms query by the
// thousands. NewIndex picks between them automatically.
package neighbors

import (
	"context"
	"fmt"

	"anex/internal/parallel"
)

// Index answers k-nearest-neighbour queries over a fixed point set.
type Index interface {
	// KNNOf returns the indices and Euclidean distances of the k points
	// nearest to point i, excluding i itself, ordered by increasing
	// distance. If fewer than k other points exist, all of them are
	// returned.
	KNNOf(i, k int) (idx []int, dist []float64)
	// Len returns the number of indexed points.
	Len() int
}

// ScratchQuerier is the allocation-free query path implemented by both
// built-in indexes: KNNInto answers like KNNOf but into the caller's
// reusable Scratch, so a warm scratch makes repeated queries allocate
// nothing. The returned slices are owned by the scratch and only valid
// until its next use. AllKNNParallel detects this interface and keeps one
// scratch per worker.
type ScratchQuerier interface {
	KNNInto(i, k int, s *Scratch) (idx []int, dist []float64)
}

// kdTreeMaxDim is the dimensionality above which brute force beats the
// KD-tree: pruning degrades exponentially with dimension, and the paper's
// full-space scoring of 20–100d datasets is exactly the regime where an
// exhaustive scan with tight inner loops wins.
const kdTreeMaxDim = 10

// NewIndex builds the appropriate index for the given points: a KD-tree
// for low-dimensional data (subspace views), the landmark-pruned tier for
// wide views large enough to amortise its build (unless PruneConfig
// disables it), plain brute force otherwise. All three return bit-identical
// neighbour sets; the choice only affects speed. The points are not
// mutated; callers must not mutate them while the index is in use.
func NewIndex(points [][]float64) Index {
	if len(points) == 0 {
		return bruteForce{}
	}
	if len(points[0]) <= kdTreeMaxDim && len(points) >= 64 {
		return NewKDTree(points)
	}
	if c := GetPruneConfig(); !c.Disabled && len(points) >= landmarkMinPoints && len(points[0]) > kdTreeMaxDim {
		return NewLandmarkIndex(points, c.Landmarks)
	}
	return NewBruteForce(points)
}

// AllKNN returns, for every indexed point, its k nearest neighbours and
// their distances. This is the access pattern of LOF and FastABOD, which
// need the complete neighbourhood structure. The serial loop routes through
// the same flat-backing KNNInto/Scratch path as AllKNNParallel: the per-row
// result slices are sub-slices of two shared arrays and each query reuses
// one scratch, so the whole structure costs O(1) allocations (pinned by
// TestAllKNNAllocs) instead of O(n) per-row slices.
func AllKNN(ix Index, k int) (idx [][]int, dist [][]float64) {
	idx, dist, _ = AllKNNParallel(context.Background(), ix, k, 1)
	return idx, dist
}

// AllKNNFlat is the header-free variant of AllKNNParallel: the complete
// neighbourhood structure is returned as two flat row-major n×m arrays
// (m = min(k, n−1)) — point i's neighbours are idx[i*m : (i+1)*m] with
// distances in the matching dist slots, ascending, index tie-broken. The
// layout and values are bit-identical to the delta engine's AllKNN, so
// consumers (the neighbourhood plane, detector hot loops) handle a single
// shape on every path, and not even the per-row slice headers of
// AllKNNParallel are allocated: three allocations total, whatever n is.
func AllKNNFlat(ctx context.Context, ix Index, k, workers int) (idx []int32, dist []float64, m int, err error) {
	n := ix.Len()
	if n == 0 {
		return nil, nil, 0, nil
	}
	checkK(k)
	m = k
	if m > n-1 {
		m = n - 1
	}
	if m == 0 {
		return nil, nil, 0, nil
	}
	idx = make([]int32, n*m)
	dist = make([]float64, n*m)
	sq, scratched := ix.(ScratchQuerier)
	scratch := make([]Scratch, parallel.ShardCount(workers, n))
	err = parallel.ForEachShard(ctx, workers, n, func(shard, i int) {
		var qi []int
		var qd []float64
		if scratched {
			qi, qd = sq.KNNInto(i, k, &scratch[shard])
		} else {
			qi, qd = ix.KNNOf(i, k)
		}
		for t, p := range qi {
			idx[i*m+t] = int32(p)
		}
		copy(dist[i*m:(i+1)*m], qd)
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return idx, dist, m, nil
}

// AllKNNParallel is AllKNN with the independent per-point queries
// distributed over the given number of workers (≤ 1 → serial). Both index
// implementations are read-only during queries, and every query writes only
// its own slot, so results are identical at any worker count. Cancellation
// is observed between queries; on a non-nil error the returned slices are
// partial and must be discarded.
//
// The per-point result slices share two flat backing arrays (every query
// returns exactly min(k, n−1) neighbours), and indexes implementing
// ScratchQuerier answer through one reusable scratch per worker — so the
// whole neighbourhood structure costs O(1) allocations instead of O(n).
func AllKNNParallel(ctx context.Context, ix Index, k, workers int) (idx [][]int, dist [][]float64, err error) {
	n := ix.Len()
	idx = make([][]int, n)
	dist = make([][]float64, n)
	if n == 0 {
		return idx, dist, nil
	}
	sq, ok := ix.(ScratchQuerier)
	if !ok {
		err = parallel.ForEach(ctx, workers, n, func(i int) {
			idx[i], dist[i] = ix.KNNOf(i, k)
		})
		return idx, dist, err
	}
	m := k
	if m > n-1 {
		m = n - 1
	}
	flatIdx := make([]int, n*m)
	flatDist := make([]float64, n*m)
	scratch := make([]Scratch, parallel.ShardCount(workers, n))
	err = parallel.ForEachShard(ctx, workers, n, func(shard, i int) {
		qi, qd := sq.KNNInto(i, k, &scratch[shard])
		lo := i * m
		idx[i] = flatIdx[lo : lo+copy(flatIdx[lo:lo+m], qi) : lo+m]
		dist[i] = flatDist[lo : lo+copy(flatDist[lo:lo+m], qd) : lo+m]
	})
	return idx, dist, err
}

// SquaredEuclidean returns the squared Euclidean distance between a and b,
// which must have equal length. The accumulation is 4-way unrolled; the
// tail runs element-wise.
func SquaredEuclidean(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination for the unrolled loads
	var sum float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// squaredEuclideanWithin accumulates SquaredEuclidean(a, b) but abandons
// the scan once the partial sum strictly exceeds limit (a monotone bound),
// reporting within=false. When within is true, the returned sum is
// bit-identical to SquaredEuclidean's — the squares are grouped and added
// in exactly the same order — so pruned and unpruned scans keep identical
// neighbour sets.
func squaredEuclideanWithin(a, b []float64, limit float64) (sum float64, within bool) {
	b = b[:len(a)] // bounds-check elimination for the unrolled loads
	i := 0
	// Check the bound every 8 elements, not every 4: in high dimensions
	// distances concentrate, so the partial sum crosses the radius late and
	// a denser data-dependent branch costs more (mispredictions) than the
	// accumulation it could skip.
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0*d0 + d1*d1 + d2*d2 + d3*d3
		d0 = a[i+4] - b[i+4]
		d1 = a[i+5] - b[i+5]
		d2 = a[i+6] - b[i+6]
		d3 = a[i+7] - b[i+7]
		sum += d0*d0 + d1*d1 + d2*d2 + d3*d3
		if sum > limit {
			return sum, false
		}
	}
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0*d0 + d1*d1 + d2*d2 + d3*d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum, sum <= limit
}

func checkK(k int) {
	if k < 1 {
		panic(fmt.Sprintf("neighbors: k must be ≥ 1, got %d", k))
	}
}

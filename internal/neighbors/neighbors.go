// Package neighbors provides the k-nearest-neighbour substrate used by the
// density- and angle-based detectors. Two index implementations are
// provided: exhaustive brute force, and a KD-tree that pays off on the
// low-dimensional subspace views that explanation algorithms query by the
// thousands. NewIndex picks between them automatically.
package neighbors

import (
	"context"
	"fmt"

	"anex/internal/parallel"
)

// Index answers k-nearest-neighbour queries over a fixed point set.
type Index interface {
	// KNNOf returns the indices and Euclidean distances of the k points
	// nearest to point i, excluding i itself, ordered by increasing
	// distance. If fewer than k other points exist, all of them are
	// returned.
	KNNOf(i, k int) (idx []int, dist []float64)
	// Len returns the number of indexed points.
	Len() int
}

// kdTreeMaxDim is the dimensionality above which brute force beats the
// KD-tree: pruning degrades exponentially with dimension, and the paper's
// full-space scoring of 20–100d datasets is exactly the regime where an
// exhaustive scan with tight inner loops wins.
const kdTreeMaxDim = 10

// NewIndex builds the appropriate index for the given points: a KD-tree for
// low-dimensional data (subspace views), brute force otherwise. The points
// are not copied; callers must not mutate them while the index is in use.
func NewIndex(points [][]float64) Index {
	if len(points) == 0 {
		return bruteForce{}
	}
	if len(points[0]) <= kdTreeMaxDim && len(points) >= 64 {
		return NewKDTree(points)
	}
	return NewBruteForce(points)
}

// AllKNN returns, for every indexed point, its k nearest neighbours and
// their distances. This is the access pattern of LOF and FastABOD, which
// need the complete neighbourhood structure.
func AllKNN(ix Index, k int) (idx [][]int, dist [][]float64) {
	idx, dist, _ = AllKNNParallel(context.Background(), ix, k, 1)
	return idx, dist
}

// AllKNNParallel is AllKNN with the independent per-point queries
// distributed over the given number of workers (≤ 1 → serial). Both index
// implementations are read-only during queries, and every query writes only
// its own slot, so results are identical at any worker count. Cancellation
// is observed between queries; on a non-nil error the returned slices are
// partial and must be discarded.
func AllKNNParallel(ctx context.Context, ix Index, k, workers int) (idx [][]int, dist [][]float64, err error) {
	n := ix.Len()
	idx = make([][]int, n)
	dist = make([][]float64, n)
	err = parallel.ForEach(ctx, workers, n, func(i int) {
		idx[i], dist[i] = ix.KNNOf(i, k)
	})
	return idx, dist, err
}

// SquaredEuclidean returns the squared Euclidean distance between a and b,
// which must have equal length.
func SquaredEuclidean(a, b []float64) float64 {
	var sum float64
	for i, av := range a {
		d := av - b[i]
		sum += d * d
	}
	return sum
}

func checkK(k int) {
	if k < 1 {
		panic(fmt.Sprintf("neighbors: k must be ≥ 1, got %d", k))
	}
}

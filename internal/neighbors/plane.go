package neighbors

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"anex/internal/failpoint"
	"anex/internal/parallel"
)

// The shared neighbourhood plane deduplicates kNN work ACROSS detectors.
// The paper's grids pair three kNN-based detectors (LOF k=15, FastABOD
// k=10, kNN-dist k=10) with four explainers over the same datasets, and
// every one of those pipelines queries identical subspace views — so the
// same neighbourhood structure used to be computed up to three times per
// grid (once per private engine) and once more per uncached view re-visit.
// The plane computes each view's structure exactly once, process-wide:
//
//   - Queries are keyed by (dataset ID, subspace key): dataset IDs are
//     process-unique (dataset.Dataset.ID), so one plane can serve every
//     grid, session, and test in the process without name collisions.
//   - The one computation runs at k = kmax, the maximum neighbourhood size
//     across registered consumers (15 with the paper's detectors). Cheaper
//     k are answered by PREFIX SLICING: the packed top-k entries are
//     totally ordered by (distance bit pattern, index) on every path —
//     the delta engine's insertion-sorted scratch and the standard path's
//     bounded heap drain agree on this order — so the k-nearest list is a
//     strict prefix of the kmax-nearest list, bit for bit. The contract is
//     pinned by TestPlanePrefixSlicingProperty.
//   - Concurrent misses on one key are deduplicated singleflight-style
//     (one leader computes, waiters share the result), and resident
//     entries live in a byte-budgeted LRU, mirroring detector.Cached.
//
// Computation itself delegates to the delta engine for the low-dimensional
// views it accepts and falls back to the standard index path (KD-tree or
// brute force, flat layout via AllKNNFlat) for everything else — which
// means full-space and large views are cached across detectors too, a path
// the per-detector engines never covered.

// DefaultPlaneBytes bounds the shared plane's resident neighbourhood
// entries. A grid cell's 2d sweep over a 100-feature dataset holds
// C(100,2) = 4950 views; at n = 1000, kmax = 15 each entry costs ~180 KB,
// so the default admits roughly 1.5 such sweeps before LRU eviction.
const DefaultPlaneBytes = 256 << 20

// planeEntryOverhead approximates the per-entry bookkeeping charge (map
// cell, LRU element, struct and key headers).
const planeEntryOverhead = 96

// SitePlanePublish is the failpoint site guarding plane publication: an
// armed error action makes the computing leader fail before any kNN work,
// so waiters observe the injected error through the plane's normal error
// path (and, per its singleflight contract, the next query retries).
const SitePlanePublish = "plane.publish"

// Plane is the process-wide shared neighbourhood cache. The zero value is
// not usable; construct with NewPlane or use the package-wide Shared
// instance. A nil *Plane is a valid "disabled" plane: AllKNN reports
// ok=false and callers fall back to their private path.
type Plane struct {
	mu       sync.Mutex
	kmax     int
	maxBytes int64
	bytes    int64
	entries  map[string]*list.Element // of *planeEntry, front = hottest
	lru      list.List
	inflight map[string]*planeCall
	delta    *DeltaEngine
	stats    PlaneStats
}

// planeEntry is one resident neighbourhood structure, computed at
// neighbourhood size k (m = min(k, n−1) actual neighbours per point). When
// the computation went through the landmark tier, prune records that
// build's candidate/skip activity — the point→landmark matrix is built
// exactly once per entry, so this is also the tier's per-entry ledger.
type planeEntry struct {
	key   string
	k, m  int
	idx   []int32   // n×m row-major neighbour indices
	dist  []float64 // n×m Euclidean distances, ascending, index tie-broken
	prune PruneStats
}

func (en *planeEntry) bytes() int64 {
	return int64(len(en.idx))*4 + int64(len(en.dist))*8 + int64(len(en.key)) + planeEntryOverhead
}

// planeCall is one in-flight computation that concurrent queries of the
// same key wait on.
type planeCall struct {
	done chan struct{}
	ent  *planeEntry
	err  error
}

// PlaneStats is a point-in-time snapshot of the plane's activity,
// mirroring detector.CacheStats.
type PlaneStats struct {
	// Queries counts AllKNN calls the plane accepted; Hits of those were
	// answered from a resident entry or by waiting on another caller's
	// in-flight computation (no kNN work either way).
	Queries, Hits int
	// Computations counts actual kNN builds — the denominator of the
	// dedup factor.
	Computations int
	// Upgrades counts entries recomputed because kmax rose after they
	// were built (a consumer with a larger k registered late).
	Upgrades int
	// Evictions counts entries dropped to honour the byte budget.
	Evictions int
	// Forgets counts entries dropped by Forget calls (a dataset's owner
	// declaring its cache entries dead, e.g. an expired stream window).
	Forgets int
	// Publishes counts entries installed ready-made by Publish (the stream
	// monitor's incrementally maintained windows): queries they absorb are
	// hits that cost no computation at all.
	Publishes int
	// Entries is the number of resident neighbourhood structures.
	Entries int
	// ResidentBytes is the budget charge of the resident entries; it
	// never exceeds MaxBytes.
	ResidentBytes int64
	// MaxBytes is the configured budget.
	MaxBytes int64
	// KMax is the neighbourhood size all computations run at.
	KMax int
	// Delta is the embedded delta engine's activity (the plane's compute
	// path for low-dimensional views).
	Delta DeltaStats
	// Prune aggregates the landmark tier's activity across this plane's
	// computations (wide views routed through the pruned standard index):
	// matrix builds, build time, and the candidate-scan/skip split.
	Prune PruneStats
}

// DedupFactor reports how many queries each actual computation served:
// queries ÷ computations. A factor of 1 means no sharing engaged; the
// paper's three-detector grids sit well above 1.5. Zero computations
// (nothing ever queried, or everything answered from cache warmed
// elsewhere) reports the query count itself, or 1 for an idle plane.
func (s PlaneStats) DedupFactor() float64 {
	if s.Computations == 0 {
		if s.Queries == 0 {
			return 1
		}
		return float64(s.Queries)
	}
	return float64(s.Queries) / float64(s.Computations)
}

func (s PlaneStats) String() string {
	return fmt.Sprintf("queries %d, hits %d, computations %d (dedup %.2f×), upgrades %d, evictions %d, resident %d/%d MiB in %d entries, kmax %d",
		s.Queries, s.Hits, s.Computations, s.DedupFactor(), s.Upgrades, s.Evictions,
		s.ResidentBytes>>20, s.MaxBytes>>20, s.Entries, s.KMax)
}

// NewPlane returns a plane whose resident entries are bounded by maxBytes
// (≤ 0 → DefaultPlaneBytes). The plane owns a private delta engine sized
// by the same order of budget for its partials.
func NewPlane(maxBytes int64) *Plane {
	if maxBytes <= 0 {
		maxBytes = DefaultPlaneBytes
	}
	return &Plane{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*planeCall),
		delta:    NewDeltaEngine(0),
	}
}

var (
	sharedPlaneOnce sync.Once
	sharedPlane     *Plane
)

// Shared returns the process-wide default plane, built lazily with the
// default budget. The detector constructors wire it in by default, so
// every detector in a process shares one neighbourhood cache unless
// explicitly given its own (or nil, for the private fallback path).
func Shared() *Plane {
	sharedPlaneOnce.Do(func() { sharedPlane = NewPlane(0) })
	return sharedPlane
}

// RegisterK declares a consumer's neighbourhood size. kmax only ever
// grows; all subsequent computations run at the new maximum, and resident
// entries computed at a smaller k are transparently recomputed on next
// access (counted as Upgrades). Registering before the first query — the
// detector constructors and grid wiring do — avoids those recomputes
// entirely. Safe on a nil plane.
func (p *Plane) RegisterK(k int) {
	if p == nil || k < 1 {
		return
	}
	p.mu.Lock()
	if k > p.kmax {
		p.kmax = k
	}
	p.mu.Unlock()
}

// KMax returns the current registered maximum neighbourhood size.
func (p *Plane) KMax() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kmax
}

// Stats returns the plane's activity counters.
func (p *Plane) Stats() PlaneStats {
	if p == nil {
		return PlaneStats{}
	}
	p.mu.Lock()
	s := p.stats
	s.Entries = p.lru.Len()
	s.ResidentBytes = p.bytes
	s.MaxBytes = p.maxBytes
	s.KMax = p.kmax
	p.mu.Unlock()
	s.Delta = p.delta.Stats()
	return s
}

// Reset drops all resident entries and zeroes the counters (kmax and the
// byte budget are kept). Computations in flight publish into the fresh
// cache.
func (p *Plane) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[string]*list.Element)
	p.lru.Init()
	p.bytes = 0
	p.stats = PlaneStats{}
}

// Forget drops every resident entry belonging to the dataset identified by
// sourceKey (dataset.Dataset.SourceKey), including the delta engine's
// pinned per-source structures. Short-lived datasets — the stream monitor's
// sliding windows — carry process-unique IDs, so once their owner is done
// with them their entries are unreachable garbage that would otherwise
// linger until LRU pressure; Forget releases them eagerly. Entries for
// other datasets and computations in flight are untouched (an in-flight
// leader republishes after Forget returns; that entry dies with the next
// Forget or under LRU pressure). Safe on a nil plane and when sourceKey has
// no entries.
func (p *Plane) Forget(sourceKey string) {
	if p == nil || sourceKey == "" {
		return
	}
	prefix := sourceKey + "|"
	p.mu.Lock()
	for key, el := range p.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			p.removeLocked(el)
			p.stats.Forgets++
		}
	}
	p.mu.Unlock()
	p.delta.Forget(sourceKey)
}

// Publish installs a ready-made neighbourhood entry for src, computed at
// neighbourhood size k with m valid neighbours per row (row stride m, the
// layout Plane.AllKNN serves). The caller asserts the arrays are
// bit-identical to what the plane would compute for the same view — the
// WindowEngine's contract — and transfers their ownership: the plane keeps
// them unmutated and serves them to every consumer with k' ≤ k by prefix
// slicing. A resident or deeper entry under the same key wins per the
// upgrade rules; queries deeper than k trigger the normal upgrade
// recompute, so a too-shallow publish degrades to the cold path instead of
// corrupting anything. Safe (a no-op) on a nil plane and degenerate input.
func (p *Plane) Publish(src ColumnSource, k, m int, idx []int32, dist []float64) {
	if p == nil || k < 1 || m < 1 || src.N() < 2 {
		return
	}
	n := src.N()
	if len(idx) != n*m || len(dist) != n*m {
		return
	}
	en := &planeEntry{
		key:  src.SourceKey() + "|" + src.SubspaceKey(),
		k:    k,
		m:    m,
		idx:  idx,
		dist: dist,
	}
	p.mu.Lock()
	if k > p.kmax {
		// A published entry is as good as a registration: later queries at
		// any k' ≤ k must not trigger an upgrade recompute of this entry.
		p.kmax = k
	}
	p.stats.Publishes++
	p.storeLocked(en)
	p.mu.Unlock()
}

// AllKNN answers the all-points k-nearest-neighbour query for the view
// from the shared cache, computing it once (at kmax) on first access. The
// returned arrays are row-major with row stride `stride` and m =
// min(k, n−1) valid neighbours per row: point i's neighbours are
// idx[i*stride : i*stride+m] with Euclidean distances in the matching dist
// slots, ascending, index tie-broken — the first m entries of each
// kmax-row, bit-identical to computing at k directly (the prefix-slicing
// contract). The arrays are shared cache state and must not be mutated.
//
// ok reports whether the plane handled the query: false only on a nil
// plane or a degenerate query (k < 1 or fewer than two points), in which
// case the caller falls back to its private path. Errors are context
// cancellation (or a failed inner computation) and mean the query must be
// abandoned, not retried on the fallback path.
func (p *Plane) AllKNN(ctx context.Context, src ColumnSource, k, workers int) (idx []int32, dist []float64, m, stride int, ok bool, err error) {
	if p == nil {
		return nil, nil, 0, 0, false, nil
	}
	n := src.N()
	if k < 1 || n < 2 {
		return nil, nil, 0, 0, false, nil
	}
	p.RegisterK(k)
	key := src.SourceKey() + "|" + src.SubspaceKey()
	for {
		p.mu.Lock()
		p.stats.Queries++
		if el, hit := p.entries[key]; hit {
			en := el.Value.(*planeEntry)
			if en.k >= k || en.m >= n-1 {
				p.stats.Hits++
				p.lru.MoveToFront(el)
				p.mu.Unlock()
				return en.idx, en.dist, minInt(k, en.m), en.m, true, nil
			}
			// Computed before a larger consumer registered: rebuild at
			// the current kmax.
			p.stats.Upgrades++
			p.removeLocked(el)
		}
		if call, inflight := p.inflight[key]; inflight {
			p.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, nil, 0, 0, true, ctx.Err()
			}
			if call.err != nil {
				// A leader cancelled by ITS context must not fail waiters
				// whose contexts are still live: retry, electing a new
				// leader (detector.Cached semantics).
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					if cerr := ctx.Err(); cerr != nil {
						return nil, nil, 0, 0, true, cerr
					}
					p.mu.Lock()
					p.stats.Queries-- // the retry re-counts
					p.mu.Unlock()
					continue
				}
				return nil, nil, 0, 0, true, call.err
			}
			if en := call.ent; en.k >= k || en.m >= n-1 {
				p.mu.Lock()
				p.stats.Hits++
				p.mu.Unlock()
				return en.idx, en.dist, minInt(k, en.m), en.m, true, nil
			}
			// The leader ran at an older, smaller kmax; go around and
			// recompute at the current one.
			p.mu.Lock()
			p.stats.Queries--
			p.mu.Unlock()
			continue
		}
		call := &planeCall{done: make(chan struct{})}
		p.inflight[key] = call
		kq := p.kmax // ≥ k: RegisterK above
		p.mu.Unlock()
		en, lerr := p.lead(ctx, src, key, kq, workers, call)
		if lerr != nil {
			return nil, nil, 0, 0, true, lerr
		}
		return en.idx, en.dist, minInt(k, en.m), en.m, true, nil
	}
}

// lead runs the kNN computation as the key's singleflight leader and
// publishes the outcome to waiters. A panicking computation releases the
// waiters with an error while the panic continues up the leader's stack
// (where the grid's cell isolation contains it).
func (p *Plane) lead(ctx context.Context, src ColumnSource, key string, kq, workers int, call *planeCall) (en *planeEntry, err error) {
	completed := false
	defer func() {
		if !completed {
			call.err = fmt.Errorf("neighbors: concurrent plane computation for %q panicked in its leader", key)
		}
		p.mu.Lock()
		if call.err == nil {
			p.stats.Computations++
			p.stats.Prune = p.stats.Prune.add(call.ent.prune)
			p.storeLocked(call.ent)
		}
		delete(p.inflight, key)
		p.mu.Unlock()
		close(call.done)
	}()
	en, err = p.compute(ctx, src, kq, workers)
	if err != nil {
		call.err = err
	} else {
		en.key = key
		call.ent = en
	}
	completed = true
	return en, err
}

// compute builds the flat neighbourhood structure at neighbourhood size
// kq: through the delta engine for the low-dimensional views it accepts,
// through the standard index (AllKNNFlat over NewIndex) otherwise. Both
// paths produce bit-identical values in the same layout.
func (p *Plane) compute(ctx context.Context, src ColumnSource, kq, workers int) (*planeEntry, error) {
	if err := failpoint.Eval(SitePlanePublish); err != nil {
		return nil, err
	}
	idx, dist, m, ok, err := p.delta.AllKNN(ctx, src, kq, workers)
	if err != nil {
		return nil, err
	}
	var prune PruneStats
	if !ok {
		ix := NewIndex(sourceRows(src))
		idx, dist, m, err = AllKNNFlat(ctx, ix, kq, workers)
		if err != nil {
			return nil, err
		}
		if lx, pruned := ix.(*landmarkIndex); pruned {
			// The landmark matrix was built, and every query answered, for
			// exactly this entry: its counters ARE the entry's ledger.
			prune = lx.PruneStats()
		}
	}
	return &planeEntry{k: kq, m: m, idx: idx, dist: dist, prune: prune}, nil
}

// AllKNNOrIndex answers src's all-points kNN through the plane when the
// plane accepts the query, falling back to a private standard index (with
// the same landmark tier NewIndex applies everywhere) otherwise — the one
// shared neighbourhood phase behind all three kNN detectors. The returned
// arrays follow Plane.AllKNN's stride contract and must not be mutated.
func AllKNNOrIndex(ctx context.Context, p *Plane, src ColumnSource, k, workers int) (idx []int32, dist []float64, m, stride int, err error) {
	idx, dist, m, stride, ok, err := p.AllKNN(ctx, src, k, workers)
	if err != nil || ok {
		return idx, dist, m, stride, err
	}
	ix := NewIndex(sourceRows(src))
	idx, dist, m, err = AllKNNFlat(ctx, ix, k, workers)
	return idx, dist, m, m, err
}

// RowSource is the optional row-major access a ColumnSource may provide;
// dataset.View does, and the plane's fallback path uses it so a view that
// was (or will be) materialised anyway is not gathered twice.
type RowSource interface {
	Points() [][]float64
}

// sourceRows returns the source's row-major points, gathering them from
// the columns (ascending feature order, one flat backing array — exactly
// dataset.View's layout, so distances come out bit-identical) when the
// source does not expose rows itself.
func sourceRows(src ColumnSource) [][]float64 {
	if rs, ok := src.(RowSource); ok {
		return rs.Points()
	}
	n, d := src.N(), src.Dim()
	flat := make([]float64, n*d)
	rows := make([][]float64, n)
	for j := 0; j < d; j++ {
		col := src.Column(j)
		for i := 0; i < n; i++ {
			flat[i*d+j] = col[i]
		}
	}
	for i := range rows {
		rows[i] = flat[i*d : (i+1)*d : (i+1)*d]
	}
	return rows
}

// Warm precomputes entries for the given views at the current kmax — the
// grid's prefetch pass. Views already resident cost a cache hit; failures
// other than context cancellation are swallowed (a cold entry just gets
// computed later, by whichever cell needs it). No-op on a nil plane or
// before any consumer registered a k.
func (p *Plane) Warm(ctx context.Context, srcs []ColumnSource, workers int) error {
	if p == nil || len(srcs) == 0 {
		return nil
	}
	k := p.KMax()
	if k < 1 {
		return nil
	}
	return parallel.ForEach(ctx, workers, len(srcs), func(i int) {
		// Serial inside: the fan-out is across views.
		_, _, _, _, _, _ = p.AllKNN(ctx, srcs[i], k, 1)
	})
}

// storeLocked publishes a freshly computed entry and evicts cold entries
// past the byte budget. Caller holds p.mu.
func (p *Plane) storeLocked(en *planeEntry) {
	if el, ok := p.entries[en.key]; ok {
		// A concurrent leader (possible across an upgrade race) already
		// republished: keep the resident entry if it is at least as deep.
		if el.Value.(*planeEntry).k >= en.k {
			p.lru.MoveToFront(el)
			return
		}
		p.removeLocked(el)
	}
	p.bytes += en.bytes()
	p.entries[en.key] = p.lru.PushFront(en)
	for p.bytes > p.maxBytes && p.lru.Len() > 1 {
		cold := p.lru.Back()
		p.removeLocked(cold)
		p.stats.Evictions++
	}
}

// removeLocked drops one resident entry. Caller holds p.mu.
func (p *Plane) removeLocked(el *list.Element) {
	en := el.Value.(*planeEntry)
	p.lru.Remove(el)
	delete(p.entries, en.key)
	p.bytes -= en.bytes()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package neighbors

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func gridPoints() [][]float64 {
	// 0:(0,0) 1:(1,0) 2:(0,1) 3:(10,10) 4:(1,1)
	return [][]float64{{0, 0}, {1, 0}, {0, 1}, {10, 10}, {1, 1}}
}

func TestBruteForceKNN(t *testing.T) {
	ix := NewBruteForce(gridPoints())
	idx, dist := ix.KNNOf(0, 2)
	if len(idx) != 2 {
		t.Fatalf("got %d neighbours", len(idx))
	}
	// Nearest of (0,0): (1,0) and (0,1), both at distance 1; ties break
	// on index.
	if idx[0] != 1 || idx[1] != 2 {
		t.Errorf("idx = %v", idx)
	}
	if dist[0] != 1 || dist[1] != 1 {
		t.Errorf("dist = %v", dist)
	}
	// Self is excluded.
	for _, j := range idx {
		if j == 0 {
			t.Error("self returned as neighbour")
		}
	}
}

func TestKNNFewerPointsThanK(t *testing.T) {
	ix := NewBruteForce([][]float64{{0}, {1}, {2}})
	idx, _ := ix.KNNOf(0, 10)
	if len(idx) != 2 {
		t.Errorf("want all 2 others, got %v", idx)
	}
}

func TestKNNPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=0 should panic")
		}
	}()
	NewBruteForce(gridPoints()).KNNOf(0, 0)
}

func TestKDTreeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{5, 64, 257} {
		for _, d := range []int{1, 2, 3, 5} {
			points := make([][]float64, n)
			for i := range points {
				p := make([]float64, d)
				for j := range p {
					p[j] = rng.NormFloat64()
				}
				points[i] = p
			}
			tree := NewKDTree(points)
			brute := NewBruteForce(points)
			for _, k := range []int{1, 3, 7} {
				if k >= n {
					continue
				}
				for trial := 0; trial < 10; trial++ {
					q := rng.Intn(n)
					ti, td := tree.KNNOf(q, k)
					bi, bd := brute.KNNOf(q, k)
					for m := range bi {
						if ti[m] != bi[m] {
							t.Fatalf("n=%d d=%d k=%d q=%d: tree %v vs brute %v", n, d, k, q, ti, bi)
						}
						if math.Abs(td[m]-bd[m]) > 1e-12 {
							t.Fatalf("distance mismatch: %v vs %v", td, bd)
						}
					}
				}
			}
		}
	}
}

func TestKDTreeQuery(t *testing.T) {
	tree := NewKDTree(gridPoints())
	idx, dist := tree.Query([]float64{0.1, 0.1}, 1)
	if idx[0] != 0 {
		t.Errorf("nearest to origin-ish = %d", idx[0])
	}
	if math.Abs(dist[0]-math.Sqrt(0.02)) > 1e-12 {
		t.Errorf("dist = %v", dist[0])
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}}
	tree := NewKDTree(points)
	idx, dist := tree.KNNOf(0, 2)
	if len(idx) != 2 {
		t.Fatalf("got %v", idx)
	}
	if dist[0] != 0 || dist[1] != 0 {
		t.Errorf("duplicate distances = %v", dist)
	}
	for _, j := range idx {
		if j == 0 {
			t.Error("self returned")
		}
	}
}

func TestKDTreeEmptyAndDepth(t *testing.T) {
	tree := NewKDTree(nil)
	if tree.Len() != 0 || tree.Depth() != 0 {
		t.Error("empty tree should have zero len/depth")
	}
	if idx, _ := tree.KNNOf(0, 1); idx != nil {
		t.Error("empty tree KNN should be nil")
	}
	rng := rand.New(rand.NewSource(9))
	points := make([][]float64, 1024)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	big := NewKDTree(points)
	// Balanced tree over 1024 points with 16-point leaves: depth ≈ 7±slack.
	if d := big.Depth(); d > 12 {
		t.Errorf("tree depth %d suggests unbalanced splits", d)
	}
}

func TestNewIndexSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lowDim := make([][]float64, 200)
	for i := range lowDim {
		lowDim[i] = []float64{rng.Float64(), rng.Float64()}
	}
	if _, ok := NewIndex(lowDim).(*KDTree); !ok {
		t.Error("low-dimensional large set should use KD-tree")
	}
	highDim := make([][]float64, 200)
	for i := range highDim {
		p := make([]float64, 50)
		for j := range p {
			p[j] = rng.Float64()
		}
		highDim[i] = p
	}
	if _, ok := NewIndex(highDim).(bruteForce); !ok {
		t.Error("high-dimensional set should use brute force")
	}
	small := lowDim[:10]
	if _, ok := NewIndex(small).(bruteForce); !ok {
		t.Error("small set should use brute force")
	}
	if ix := NewIndex(nil); ix.Len() != 0 {
		t.Error("empty index should be empty")
	}
}

func TestAllKNN(t *testing.T) {
	ix := NewBruteForce(gridPoints())
	idx, dist := AllKNN(ix, 2)
	if len(idx) != 5 || len(dist) != 5 {
		t.Fatalf("AllKNN shapes %d/%d", len(idx), len(dist))
	}
	for i := range idx {
		if len(idx[i]) != 2 {
			t.Errorf("point %d has %d neighbours", i, len(idx[i]))
		}
		if !sort.Float64sAreSorted(dist[i]) {
			t.Errorf("point %d distances unsorted: %v", i, dist[i])
		}
	}
}

func TestSquaredEuclidean(t *testing.T) {
	if d := SquaredEuclidean([]float64{0, 0}, []float64{3, 4}); d != 25 {
		t.Errorf("d² = %v", d)
	}
	if d := SquaredEuclidean(nil, nil); d != 0 {
		t.Errorf("empty d² = %v", d)
	}
}

func TestPropertyKDTreeEqualsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(nRaw, dRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 2
		d := int(dRaw%4) + 1
		k := int(kRaw%5) + 1
		if k >= n {
			k = n - 1
		}
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, d)
			for j := range p {
				// Coarse grid provokes duplicates and ties.
				p[j] = float64(rng.Intn(6))
			}
			points[i] = p
		}
		tree := NewKDTree(points)
		brute := NewBruteForce(points)
		q := rng.Intn(n)
		ti, td := tree.KNNOf(q, k)
		bi, bd := brute.KNNOf(q, k)
		if len(ti) != len(bi) {
			return false
		}
		for m := range bi {
			// With ties the index sets can legitimately differ only if
			// distances differ — require identical distance multisets
			// and identical index order (both use the same tie-break).
			if ti[m] != bi[m] || math.Abs(td[m]-bd[m]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

//go:build !amd64

package neighbors

// quantSqSum computes the code-bound sum Σ_j max(0, |a_j − b_j| − 1)² over
// two padded code rows. Platforms without the SSE2 kernel take the
// portable branch-free loop.
func quantSqSum(a, b []uint8) int64 {
	return quantSqSumRef(a, b)
}

// quantSqSumTile computes the bound sums of count consecutive padded code
// rows against the query row q into out[0:count].
func quantSqSumTile(q, rows []uint8, count int, out []int64) {
	st := len(q)
	for r := 0; r < count; r++ {
		out[r] = quantSqSumRef(q, rows[r*st:(r+1)*st])
	}
}

//go:build amd64

#include "textflag.h"

// func quantSqSumSSE2(a, b *uint8, blocks int) int64
//
// The quantized prefilter's bound sum Σ max(0, |a_i − b_i| − 1)² over
// blocks×16 code bytes, SSE2 only (the amd64 baseline — no feature
// detection needed). Per block: two saturating subtracts and an OR give
// the per-byte absolute difference, one more saturating subtract applies
// the −1 clamp of the half-cell slack, a zero unpack widens bytes to
// words, and PMADDWL squares and pair-sums them into four 32-bit
// accumulator lanes. quantMaxDims (2¹⁵ dims, so Σ ≤ 2¹⁵·254² < 2³¹)
// guarantees the lanes and the folded total never overflow.
TEXT ·quantSqSumSSE2(SB), NOSPLIT, $0-32
	MOVQ	a+0(FP), SI
	MOVQ	b+8(FP), DI
	MOVQ	blocks+16(FP), CX
	PXOR	X7, X7        // zero: unpack source and ones builder
	PXOR	X6, X6        // accumulator, 4×32-bit lanes
	PCMPEQL	X5, X5        // 0xFF per byte
	PXOR	X4, X4
	PSUBB	X5, X4        // 0x01 per byte

loop:
	MOVOU	(SI), X0
	MOVOU	(DI), X1
	MOVO	X0, X2
	PSUBUSB	X1, X2        // max(a−b, 0) per byte
	PSUBUSB	X0, X1        // max(b−a, 0) per byte
	POR	X1, X2            // |a−b|
	PSUBUSB	X4, X2        // max(|a−b|−1, 0)
	MOVO	X2, X3
	PUNPCKLBW	X7, X2    // low 8 bytes → 8 words
	PUNPCKHBW	X7, X3    // high 8 bytes → 8 words
	PMADDWL	X2, X2        // 4×32: adjacent squares pair-summed
	PMADDWL	X3, X3
	PADDL	X2, X6
	PADDL	X3, X6
	ADDQ	$16, SI
	ADDQ	$16, DI
	DECQ	CX
	JNZ	loop

	// Fold the four lanes; every partial stays under 2³¹ (quantMaxDims).
	PSHUFL	$0x4E, X6, X0 // swap 64-bit halves
	PADDL	X0, X6
	PSHUFL	$0xB1, X6, X0 // swap 32-bit pairs
	PADDL	X0, X6
	MOVQ	X6, AX
	MOVL	AX, AX        // low lane only; the neighbour duplicates it
	MOVQ	AX, ret+24(FP)
	RET

// func quantSqSumTileSSE2(q, rows *uint8, blocks, count int, out *int64)
//
// The tile form of the bound sum: one call computes the sums of `count`
// consecutive padded code rows against the same query row, storing them
// into out[0:count]. Same arithmetic per row as quantSqSumSSE2; hoisting
// the loop over rows into assembly keeps the byte-constant registers live
// and drops the per-candidate call overhead, which dominates on the
// few-row bands the landmark tier produces.
TEXT ·quantSqSumTileSSE2(SB), NOSPLIT, $0-40
	MOVQ	q+0(FP), R8
	MOVQ	rows+8(FP), DI
	MOVQ	blocks+16(FP), R9
	MOVQ	count+24(FP), R10
	MOVQ	out+32(FP), R11
	PXOR	X7, X7        // zero: unpack source and ones builder
	PCMPEQL	X5, X5        // 0xFF per byte
	PXOR	X4, X4
	PSUBB	X5, X4        // 0x01 per byte

rowloop:
	MOVQ	R8, SI        // rewind to the query row
	MOVQ	R9, CX
	PXOR	X6, X6        // per-row accumulator, 4×32-bit lanes

blockloop:
	MOVOU	(SI), X0
	MOVOU	(DI), X1
	MOVO	X0, X2
	PSUBUSB	X1, X2        // max(q−row, 0) per byte
	PSUBUSB	X0, X1        // max(row−q, 0) per byte
	POR	X1, X2            // |q−row|
	PSUBUSB	X4, X2        // max(|q−row|−1, 0)
	MOVO	X2, X3
	PUNPCKLBW	X7, X2    // low 8 bytes → 8 words
	PUNPCKHBW	X7, X3    // high 8 bytes → 8 words
	PMADDWL	X2, X2        // 4×32: adjacent squares pair-summed
	PMADDWL	X3, X3
	PADDL	X2, X6
	PADDL	X3, X6
	ADDQ	$16, SI
	ADDQ	$16, DI
	DECQ	CX
	JNZ	blockloop

	PSHUFL	$0x4E, X6, X0
	PADDL	X0, X6
	PSHUFL	$0xB1, X6, X0
	PADDL	X0, X6
	MOVQ	X6, AX
	MOVL	AX, AX
	MOVQ	AX, (R11)
	ADDQ	$8, R11
	DECQ	R10
	JNZ	rowloop
	RET

package neighbors_test

import (
	"math"
	"math/rand"
	"testing"

	"anex/internal/neighbors"
)

// scratchWidthIndexes builds one index per implementation tier, each over a
// view of a DIFFERENT dimensionality, mirroring how the detector sweep
// drives one per-worker scratch through every subspace width of a dataset
// back to back (widest full-space view first, then the narrow subspaces).
func scratchWidthIndexes() []struct {
	name string
	ix   neighbors.ScratchQuerier
	n    int
} {
	rng := rand.New(rand.NewSource(11))
	gen := func(n, d int) [][]float64 {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			pts[i] = p
		}
		return pts
	}
	wide := gen(400, 20)
	mid := gen(150, 12)
	narrow := gen(200, 4)
	return []struct {
		name string
		ix   neighbors.ScratchQuerier
		n    int
	}{
		{"landmark-20d", neighbors.NewLandmarkIndex(wide, 0).(neighbors.ScratchQuerier), len(wide)},
		{"brute-12d", neighbors.NewBruteForce(mid).(neighbors.ScratchQuerier), len(mid)},
		{"kdtree-4d", neighbors.NewKDTree(narrow), len(narrow)},
	}
}

// TestScratchReuseAcrossWidths pins the Scratch reuse contract stated on
// its type: every buffer is sized by k, never by view width, and is fully
// rewritten before it is read. One scratch is driven through indexes of
// three different dimensionalities and implementations in both directions
// (wide→narrow and narrow→wide), with varying k so the buffers shrink and
// regrow; every answer must be bit-identical to a fresh-scratch query.
// A stale buffer carrying state from a wider view, or an over-read of a
// previous query's longer result, fails the bitwise compare.
func TestScratchReuseAcrossWidths(t *testing.T) {
	indexes := scratchWidthIndexes()
	shared := neighbors.NewScratch()
	order := []int{0, 1, 2, 2, 1, 0, 1} // wide→narrow, then narrow→wide
	for _, k := range []int{15, 3, 40, 1} {
		for _, which := range order {
			tc := indexes[which]
			for _, i := range []int{0, tc.n / 2, tc.n - 1} {
				gotIdx, gotDist := tc.ix.KNNInto(i, k, shared)
				wantIdx, wantDist := tc.ix.KNNInto(i, k, neighbors.NewScratch())
				if len(gotIdx) != len(wantIdx) {
					t.Fatalf("%s k=%d i=%d: got %d neighbours, want %d",
						tc.name, k, i, len(gotIdx), len(wantIdx))
				}
				for j := range wantIdx {
					if gotIdx[j] != wantIdx[j] {
						t.Fatalf("%s k=%d i=%d: idx[%d]=%d with reused scratch, want %d",
							tc.name, k, i, j, gotIdx[j], wantIdx[j])
					}
					if math.Float64bits(gotDist[j]) != math.Float64bits(wantDist[j]) {
						t.Fatalf("%s k=%d i=%d: dist[%d] bits %x with reused scratch, want %x",
							tc.name, k, i, j,
							math.Float64bits(gotDist[j]), math.Float64bits(wantDist[j]))
					}
				}
			}
		}
	}
}

// TestScratchReuseAllocs pins the other half of the contract: once warm, a
// scratch crossing view widths allocates nothing — switching from a wide
// view to a narrow one (or back) must not trigger a reallocation, because
// no buffer is sized by width.
func TestScratchReuseAllocs(t *testing.T) {
	indexes := scratchWidthIndexes()
	s := neighbors.NewScratch()
	for _, tc := range indexes { // warm across every width at the largest k
		tc.ix.KNNInto(0, 40, s)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, which := range []int{0, 2, 1, 0} {
			tc := indexes[which]
			for _, k := range []int{40, 5} {
				tc.ix.KNNInto(1, k, s)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cross-width scratch queries allocated %.1f times per run, want 0", allocs)
	}
}

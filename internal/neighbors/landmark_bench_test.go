package neighbors_test

import (
	"context"
	"fmt"
	"testing"

	"anex/internal/neighbors"
)

// BenchmarkPruneTune sweeps the landmark count on the Figure-9 reference
// workload (20d, n=1000, k=15) against the unpruned scan — the tuning
// harness behind the automatic landmark pick and the check.sh prune gate.
// Indexes are built outside the timer: the plane builds each index once
// per (dataset, subspace) and serves every detector and request from it,
// so steady-state per-sweep query cost is the number that matters.
func BenchmarkPruneTune(b *testing.B) {
	points := figure9Points(b)
	run := func(b *testing.B, ix neighbors.Index) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := neighbors.AllKNNFlat(context.Background(), ix, 15, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("brute", func(b *testing.B) { run(b, neighbors.NewBruteForce(points)) })
	b.Run("auto", func(b *testing.B) { run(b, neighbors.NewLandmarkIndex(points, 0)) })
	for _, nl := range []int{32, 64, 96, 128, 192} {
		b.Run(fmt.Sprintf("nl%d", nl), func(b *testing.B) {
			run(b, neighbors.NewLandmarkIndex(points, nl))
		})
	}
}

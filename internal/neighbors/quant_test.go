package neighbors_test

import (
	"context"
	"math"
	"testing"

	"anex/internal/neighbors"
)

// TestQuantPrunedBitIdentical pins the quantized prefilter's core contract,
// mirroring TestLandmarkPrunedBitIdentical one tier down: for every
// degenerate dataset, tile size (including the degenerate one-candidate
// tile and an over-max value that must clamp), neighbourhood size
// (including k ≥ n), and worker count, the landmark index WITH the code
// bound answers bit-identically to the plain brute-force scan — indices
// and distance bit patterns both. The duplicate/lattice/identical shapes
// are where a lower bound classically goes wrong: distances sit exactly on
// the radius, and a bound that is not strictly conservative flips a
// boundary tie.
func TestQuantPrunedBitIdentical(t *testing.T) {
	ctx := context.Background()
	defer neighbors.SetPruneConfig(neighbors.PruneConfig{})
	for name, points := range landmarkCases() {
		t.Run(name, func(t *testing.T) {
			n := len(points)
			brute := neighbors.NewBruteForce(points)
			for _, tile := range []int{1, 2, 7, 64, 1 << 20} {
				neighbors.SetPruneConfig(neighbors.PruneConfig{QuantTile: tile})
				pruned := neighbors.NewLandmarkIndex(points, 0)
				for _, k := range []int{1, 5, 15, n - 1, n + 10} {
					wantIdx, wantDist, wantM, err := neighbors.AllKNNFlat(ctx, brute, k, 1)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 4} {
						gotIdx, gotDist, gotM, err := neighbors.AllKNNFlat(ctx, pruned, k, workers)
						if err != nil {
							t.Fatal(err)
						}
						if gotM != wantM || len(gotIdx) != len(wantIdx) {
							t.Fatalf("tile=%d k=%d w=%d: shape m=%d len=%d, want m=%d len=%d",
								tile, k, workers, gotM, len(gotIdx), wantM, len(wantIdx))
						}
						for i := range wantIdx {
							if gotIdx[i] != wantIdx[i] {
								t.Fatalf("tile=%d k=%d w=%d: idx[%d]=%d, want %d (point %d slot %d)",
									tile, k, workers, i, gotIdx[i], wantIdx[i], i/wantM, i%wantM)
							}
							if math.Float64bits(gotDist[i]) != math.Float64bits(wantDist[i]) {
								t.Fatalf("tile=%d k=%d w=%d: dist[%d] bits %x, want %x",
									tile, k, workers, i, math.Float64bits(gotDist[i]), math.Float64bits(wantDist[i]))
							}
						}
					}
				}
			}
		})
	}
}

// TestQuantSurvivorFractionFigure9 is the check.sh quant-effectiveness
// gate: on the Figure-9 reference workload (20d, n=1000, k=15), the code
// bound must reject enough of the band-scan stream that at most 15% of the
// bound-tested candidates still reach the exact kernel (measured: 3.5%,
// and overall scan fraction falls 0.544 → 0.041). Like the landmark
// scan-fraction gate, this is a deterministic property of the data, the
// seeded selection, and the code book — not a timing assertion — so it
// cannot flake with host load.
func TestQuantSurvivorFractionFigure9(t *testing.T) {
	points := figure9Points(t)
	ix := neighbors.NewLandmarkIndex(points, 0)
	if _, _, _, err := neighbors.AllKNNFlat(context.Background(), ix, 15, 1); err != nil {
		t.Fatal(err)
	}
	st := ix.(interface{ PruneStats() neighbors.PruneStats }).PruneStats()
	if st.QuantCandidates == 0 || st.QuantRejected == 0 {
		t.Fatalf("quantized prefilter did not engage: %+v", st)
	}
	if st.CodeBytes == 0 {
		t.Fatalf("code storage not charged: %+v", st)
	}
	frac := st.SurvivorFraction()
	t.Logf("figure-9 reference workload: %d bound-tested, %d rejected, survivor fraction %.3f (code bytes %d, scan fraction %.3f)",
		st.QuantCandidates, st.QuantRejected, frac, st.CodeBytes, st.ScanFraction())
	if frac > 0.15 {
		t.Fatalf("quant survivor fraction %.3f > 0.15 on the Figure-9 reference workload", frac)
	}
}

// TestQuantDisabledMatchesEnabled pins the -no-quant knob's contract:
// results are bit-identical with the prefilter on and off — configuration
// only moves work, never answers.
func TestQuantDisabledMatchesEnabled(t *testing.T) {
	ctx := context.Background()
	defer neighbors.SetPruneConfig(neighbors.PruneConfig{})
	points := figure9Points(t)
	neighbors.SetPruneConfig(neighbors.PruneConfig{NoQuant: true})
	off := neighbors.NewLandmarkIndex(points, 0)
	neighbors.SetPruneConfig(neighbors.PruneConfig{})
	on := neighbors.NewLandmarkIndex(points, 0)
	offIdx, offDist, _, err := neighbors.AllKNNFlat(ctx, off, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	onIdx, onDist, _, err := neighbors.AllKNNFlat(ctx, on, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range offIdx {
		if onIdx[i] != offIdx[i] || math.Float64bits(onDist[i]) != math.Float64bits(offDist[i]) {
			t.Fatalf("quant on/off disagree at %d: idx %d/%d dist %x/%x",
				i, onIdx[i], offIdx[i], math.Float64bits(onDist[i]), math.Float64bits(offDist[i]))
		}
	}
	offStats := off.(interface{ PruneStats() neighbors.PruneStats }).PruneStats()
	if offStats.QuantCandidates != 0 || offStats.CodeBytes != 0 {
		t.Fatalf("disabled index built quant state: %+v", offStats)
	}
}

//go:build amd64

package neighbors

// quantSqSum computes the code-bound sum Σ_j max(0, |a_j − b_j| − 1)² over
// two padded code rows via the SSE2 kernel (baseline on amd64): 16 bytes
// per step through saturating subtracts, a byte-to-word unpack, and the
// multiply-add-words accumulator. len(a) must be the stride (a multiple of
// 16); len(b) ≥ len(a). quantMaxDims keeps every 32-bit accumulator lane —
// and the total — exact.
func quantSqSum(a, b []uint8) int64 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1]
	return quantSqSumSSE2(&a[0], &b[0], len(a)>>4)
}

//go:noescape
func quantSqSumSSE2(a, b *uint8, blocks int) int64

// quantSqSumTile computes the bound sums of count consecutive padded code
// rows (rows, stride len(q) each) against the query row q into
// out[0:count], one assembly call for the whole tile — the per-candidate
// call overhead is what dominates the few-row bands of the landmark tier.
func quantSqSumTile(q, rows []uint8, count int, out []int64) {
	if count == 0 {
		return
	}
	_ = rows[count*len(q)-1]
	_ = out[count-1]
	quantSqSumTileSSE2(&q[0], &rows[0], len(q)>>4, count, &out[0])
}

//go:noescape
func quantSqSumTileSSE2(q, rows *uint8, blocks, count int, out *int64)

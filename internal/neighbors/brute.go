package neighbors

import (
	"math"
	"sort"
)

// bruteForce is an exhaustive-scan index. It holds no state beyond the
// points and scales as O(n) per query with a k-bounded max-heap.
type bruteForce struct {
	points [][]float64
}

// NewBruteForce builds an exhaustive-scan index over the points.
func NewBruteForce(points [][]float64) Index {
	return bruteForce{points: points}
}

func (b bruteForce) Len() int { return len(b.points) }

func (b bruteForce) KNNOf(i, k int) ([]int, []float64) {
	checkK(k)
	q := b.points[i]
	h := newBoundedHeap(k)
	for j, p := range b.points {
		if j == i {
			continue
		}
		d2 := SquaredEuclidean(q, p)
		h.push(j, d2)
	}
	idx, d2 := h.sorted()
	dist := make([]float64, len(d2))
	for m, v := range d2 {
		dist[m] = math.Sqrt(v)
	}
	return idx, dist
}

// boundedHeap is a max-heap over (squared distance, index) pairs, ordered
// lexicographically and bounded at capacity k: pushing onto a full heap
// replaces the current maximum when the new pair is smaller. The index
// tie-break makes the kept k-set independent of insertion order, so the
// KD-tree and the brute-force scan return identical neighbours even with
// duplicated points.
type boundedHeap struct {
	k    int
	idx  []int
	dist []float64
}

// greater reports whether element a orders after element b.
func (h *boundedHeap) greater(a, b int) bool {
	if h.dist[a] != h.dist[b] {
		return h.dist[a] > h.dist[b]
	}
	return h.idx[a] > h.idx[b]
}

func newBoundedHeap(k int) *boundedHeap {
	return &boundedHeap{k: k, idx: make([]int, 0, k), dist: make([]float64, 0, k)}
}

func (h *boundedHeap) len() int { return len(h.idx) }

// top returns the current maximum distance, or +Inf when not yet full —
// which doubles as the prune radius for KD-tree search.
func (h *boundedHeap) top() float64 {
	if len(h.dist) < h.k {
		return math.Inf(1)
	}
	return h.dist[0]
}

func (h *boundedHeap) push(i int, d float64) {
	if len(h.idx) < h.k {
		h.idx = append(h.idx, i)
		h.dist = append(h.dist, d)
		h.up(len(h.idx) - 1)
		return
	}
	if d > h.dist[0] || (d == h.dist[0] && i > h.idx[0]) {
		return
	}
	h.idx[0], h.dist[0] = i, d
	h.down(0)
}

func (h *boundedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.greater(i, parent) {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *boundedHeap) down(i int) {
	n := len(h.dist)
	for {
		largest := i
		if l := 2*i + 1; l < n && h.greater(l, largest) {
			largest = l
		}
		if r := 2*i + 2; r < n && h.greater(r, largest) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *boundedHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.dist[a], h.dist[b] = h.dist[b], h.dist[a]
}

// sorted drains the heap into slices ordered by increasing distance.
// Ties are broken by point index for determinism.
func (h *boundedHeap) sorted() ([]int, []float64) {
	n := len(h.idx)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := h.dist[order[a]], h.dist[order[b]]
		if da != db {
			return da < db
		}
		return h.idx[order[a]] < h.idx[order[b]]
	})
	idx := make([]int, n)
	dist := make([]float64, n)
	for m, o := range order {
		idx[m] = h.idx[o]
		dist[m] = h.dist[o]
	}
	return idx, dist
}

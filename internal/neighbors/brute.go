package neighbors

import "math"

// bruteForce is an exhaustive-scan index. It holds no state beyond the
// points and scales as O(n) per query with a k-bounded max-heap. The scan
// early-exits each candidate's distance accumulation against the current
// prune radius once the heap is full, which prunes most of the inner-loop
// work on high-dimensional views.
type bruteForce struct {
	points [][]float64
}

// NewBruteForce builds an exhaustive-scan index over the points.
func NewBruteForce(points [][]float64) Index {
	return bruteForce{points: points}
}

func (b bruteForce) Len() int { return len(b.points) }

func (b bruteForce) KNNOf(i, k int) ([]int, []float64) {
	var s Scratch
	idx, dist := b.KNNInto(i, k, &s)
	return append([]int(nil), idx...), append([]float64(nil), dist...)
}

// KNNInto is KNNOf answering into the caller's reusable scratch: the
// returned slices are owned by s and valid until its next use, and a warm
// scratch makes the whole query allocation-free.
func (b bruteForce) KNNInto(i, k int, s *Scratch) ([]int, []float64) {
	checkK(k)
	q := b.points[i]
	s.h.reset(k)
	for j, p := range b.points {
		if j == i {
			continue
		}
		// Once the heap is full, its max is the prune radius: a candidate
		// whose partial sum already exceeds it cannot be kept (ties at the
		// radius still complete, so index tie-breaking is unaffected).
		d2, within := squaredEuclideanWithin(q, p, s.h.top())
		if !within {
			continue
		}
		s.h.push(j, d2)
	}
	return s.drain()
}

// Scratch holds the reusable per-worker state of KNNInto queries: the
// k-bounded heap and the result buffers. The zero value is ready to use;
// one scratch must not be shared between concurrent queries. Every buffer
// is sized by k — never by view width — and is fully rewritten before it
// is read, so one scratch serves indexes of any dimensionality back to
// back (pinned by TestScratchReuseAcrossWidths).
type Scratch struct {
	h    boundedHeap
	idx  []int
	dist []float64
	// Tile scratch of the quantized prefilter (see quant.go): fixed cells
	// sized by quantTileMax, living here so the per-cluster scan pays no
	// per-call zeroing and the query path stays allocation-free.
	qbound [quantTileMax]int64
	qsurv  [quantTileMax]int32
}

// NewScratch returns an empty query scratch.
func NewScratch() *Scratch { return &Scratch{} }

// drain empties the heap into the scratch's result buffers, ordered by
// increasing (distance, index), converting squared distances to Euclidean.
// Popping the lexicographic maximum into the back slot yields exactly the
// ascending order the former sort.Slice produced — without its reflection
// overhead or allocations.
func (s *Scratch) drain() ([]int, []float64) {
	n := s.h.len()
	if cap(s.idx) < n {
		s.idx = make([]int, n)
		s.dist = make([]float64, n)
	}
	idx, dist := s.idx[:n], s.dist[:n]
	for m := n - 1; m >= 0; m-- {
		i, d2 := s.h.popMax()
		idx[m] = i
		dist[m] = math.Sqrt(d2)
	}
	return idx, dist
}

// boundedHeap is a max-heap over (squared distance, index) pairs, ordered
// lexicographically and bounded at capacity k: pushing onto a full heap
// replaces the current maximum when the new pair is smaller. The index
// tie-break makes the kept k-set independent of insertion order, so the
// KD-tree and the brute-force scan return identical neighbours even with
// duplicated points.
type boundedHeap struct {
	k    int
	idx  []int
	dist []float64
}

// reset prepares the heap for a query of size k, reusing the backing
// arrays of previous queries when they are large enough.
func (h *boundedHeap) reset(k int) {
	h.k = k
	if cap(h.idx) < k {
		h.idx = make([]int, 0, k)
		h.dist = make([]float64, 0, k)
		return
	}
	h.idx = h.idx[:0]
	h.dist = h.dist[:0]
}

// greater reports whether element a orders after element b.
func (h *boundedHeap) greater(a, b int) bool {
	if h.dist[a] != h.dist[b] {
		return h.dist[a] > h.dist[b]
	}
	return h.idx[a] > h.idx[b]
}

func (h *boundedHeap) len() int { return len(h.idx) }

// top returns the current maximum distance, or +Inf when not yet full —
// which doubles as the prune radius for KD-tree search and the brute-force
// early-exit scan.
func (h *boundedHeap) top() float64 {
	if len(h.dist) < h.k {
		return math.Inf(1)
	}
	return h.dist[0]
}

func (h *boundedHeap) push(i int, d float64) {
	if len(h.idx) < h.k {
		h.idx = append(h.idx, i)
		h.dist = append(h.dist, d)
		h.up(len(h.idx) - 1)
		return
	}
	if d > h.dist[0] || (d == h.dist[0] && i > h.idx[0]) {
		return
	}
	h.idx[0], h.dist[0] = i, d
	h.down(0)
}

// popMax removes and returns the heap's current lexicographic maximum
// (squared distance, index). Repeated popMax into the back of a buffer is
// the one ascending-order drain shared by the scratch query path and the
// window engine's list rebuilds, so both emit the identical
// (distance, index) total order. Caller guarantees a non-empty heap.
func (h *boundedHeap) popMax() (i int, d2 float64) {
	i, d2 = h.idx[0], h.dist[0]
	last := h.len() - 1
	h.idx[0], h.dist[0] = h.idx[last], h.dist[last]
	h.idx, h.dist = h.idx[:last], h.dist[:last]
	if last > 0 {
		h.down(0)
	}
	return i, d2
}

func (h *boundedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.greater(i, parent) {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *boundedHeap) down(i int) {
	n := len(h.dist)
	for {
		largest := i
		if l := 2*i + 1; l < n && h.greater(l, largest) {
			largest = l
		}
		if r := 2*i + 2; r < n && h.greater(r, largest) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *boundedHeap) swap(a, b int) {
	h.idx[a], h.idx[b] = h.idx[b], h.idx[a]
	h.dist[a], h.dist[b] = h.dist[b], h.dist[a]
}

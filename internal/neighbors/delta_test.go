package neighbors_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"anex/internal/dataset"
	"anex/internal/detector"
	"anex/internal/neighbors"
	"anex/internal/subspace"
)

// deltaDataset builds an n-point dataset over d gaussian features.
func deltaDataset(t *testing.T, name string, n, d int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, d)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = rng.NormFloat64()
		}
	}
	ds, err := dataset.New(name, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// referenceKNN answers AllKNN through the standard index path (the exact
// code the detectors fall back to when the engine declines a view).
func referenceKNN(t *testing.T, v *dataset.View, k int) ([]int32, []float64, int) {
	t.Helper()
	ix := neighbors.NewIndex(v.Points())
	idx, dist, err := neighbors.AllKNNParallel(context.Background(), ix, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	fi, fd, m := neighbors.FlattenKNN(idx, dist)
	return fi, fd, m
}

// checkDeltaMatches runs the engine on the view at the given worker count
// and requires bit-identical neighbour indices and distances versus the
// standard path. The engine must accept the view (ok=true).
func checkDeltaMatches(t *testing.T, eng *neighbors.DeltaEngine, v *dataset.View, k, workers int) {
	t.Helper()
	gotIdx, gotDist, gotM, ok, err := eng.AllKNN(context.Background(), v, k, workers)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("engine rejected view %s (n=%d d=%d k=%d)", v.Subspace().Key(), v.N(), v.Dim(), k)
	}
	wantIdx, wantDist, wantM := referenceKNN(t, v, k)
	if gotM != wantM {
		t.Fatalf("subspace %s workers=%d: m=%d, want %d", v.Subspace().Key(), workers, gotM, wantM)
	}
	for i := range wantIdx {
		if gotIdx[i] != wantIdx[i] {
			p, s := i/gotM, i%gotM
			t.Fatalf("subspace %s workers=%d: point %d neighbour %d idx=%d, want %d",
				v.Subspace().Key(), workers, p, s, gotIdx[i], wantIdx[i])
		}
		if math.Float64bits(gotDist[i]) != math.Float64bits(wantDist[i]) {
			p, s := i/gotM, i%gotM
			t.Fatalf("subspace %s workers=%d: point %d neighbour %d dist bits %x, want %x",
				v.Subspace().Key(), workers, p, s,
				math.Float64bits(gotDist[i]), math.Float64bits(wantDist[i]))
		}
	}
}

// randomChain draws a staged subspace chain over numFeatures: a random 2d
// start extended one random unseen feature at a time up to maxDim — the
// access pattern of a Beam search, which is what makes the engine's
// parent-partial seeding kick in.
func randomChain(rng *rand.Rand, numFeatures, maxDim int) []subspace.Subspace {
	perm := rng.Perm(numFeatures)
	var chain []subspace.Subspace
	s := subspace.New(perm[0], perm[1])
	chain = append(chain, s)
	for d := 3; d <= maxDim; d++ {
		s = s.With(perm[d-1])
		chain = append(chain, s)
	}
	return chain
}

// TestDeltaMatchesIndexRandomChains is the core invariance property: along
// random staged subspace chains (2d → 5d), every stage answered by the
// engine — sweep, parent-seeded, or full-space-seeded — is bit-identical to
// the standard index path, at 1 and at 4 workers.
func TestDeltaMatchesIndexRandomChains(t *testing.T) {
	ds := deltaDataset(t, "chains", 300, 10, 1)
	const k = 15
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		eng := neighbors.NewDeltaEngine(0)
		for _, s := range randomChain(rng, ds.D(), 5) {
			for _, workers := range []int{1, 4} {
				checkDeltaMatches(t, eng, ds.View(s), k, workers)
			}
		}
	}
}

// TestDeltaColdHighDimQuery covers the full-space-seeded scan: a fresh
// engine asked for a 3d–5d view straight away (no 2d parent cached) must
// seed from the full-space neighbourhood and still match exactly.
func TestDeltaColdHighDimQuery(t *testing.T) {
	ds := deltaDataset(t, "cold", 256, 10, 2)
	for _, dim := range []int{3, 4, 5} {
		eng := neighbors.NewDeltaEngine(0) // fresh per dim: nothing cached
		s := subspace.New()
		for f := 0; f < dim; f++ {
			s = s.With(2 * f) // spread features so no prefix is cached
		}
		checkDeltaMatches(t, eng, ds.View(s), 15, 4)
	}
}

// TestDeltaPruneTightParentRadii attacks the parent-partial lower bound:
// the parent dims are near-duplicates (tiny parent distances, so the seed
// radius is extremely tight) while the added dimension spreads points far
// apart, forcing the scan to discard essentially every seed and re-rank on
// delta terms alone. Any off-by-epsilon in the pruning margin shows up here.
func TestDeltaPruneTightParentRadii(t *testing.T) {
	const n, k = 200, 10
	rng := rand.New(rand.NewSource(3))
	cols := make([][]float64, 4)
	for f := 0; f < 2; f++ { // parent dims: 4 crowded clusters, spread 1e-9
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = float64(i%4) + 1e-9*rng.Float64()
		}
	}
	for f := 2; f < 4; f++ { // added dims: wide spread
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = 1e3 * rng.NormFloat64()
		}
	}
	ds, err := dataset.New("tight", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := neighbors.NewDeltaEngine(0)
	chain := []subspace.Subspace{
		subspace.New(0, 1),
		subspace.New(0, 1, 2),
		subspace.New(0, 1, 2, 3),
	}
	for _, s := range chain {
		for _, workers := range []int{1, 4} {
			checkDeltaMatches(t, eng, ds.View(s), k, workers)
		}
	}
}

// TestDeltaLatticeTies feeds the engine lattice data — coordinates drawn
// from {0,1,2}, including exactly duplicated points and massive distance
// ties — so correctness hinges on the lexicographic (distance, index)
// ordering matching the standard path's bounded heap exactly.
func TestDeltaLatticeTies(t *testing.T) {
	const n, k = 128, 15
	rng := rand.New(rand.NewSource(4))
	cols := make([][]float64, 6)
	for f := range cols {
		cols[f] = make([]float64, n)
		for i := range cols[f] {
			cols[f][i] = float64(rng.Intn(3))
		}
	}
	ds, err := dataset.New("lattice", cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := neighbors.NewDeltaEngine(0)
	rng2 := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		for _, s := range randomChain(rng2, ds.D(), 5) {
			for _, workers := range []int{1, 4} {
				checkDeltaMatches(t, eng, ds.View(s), k, workers)
			}
		}
	}
}

// TestDeltaDetectorScoresBitIdentical closes the loop at the consumer
// layer: LOF with the shared plane wired in (whose compute path is the
// delta engine) produces bitwise the same score vectors as the plain index
// path, across a staged chain and worker counts — the property the
// explainers' output invariance rests on.
func TestDeltaDetectorScoresBitIdentical(t *testing.T) {
	ds := deltaDataset(t, "scores", 300, 8, 6)
	rng := rand.New(rand.NewSource(7))
	plane := neighbors.NewPlane(0)
	ctx := context.Background()
	for _, s := range randomChain(rng, ds.D(), 5) {
		v := ds.View(s)
		for _, workers := range []int{1, 4} {
			plainLOF := detector.NewLOF(15)
			plainLOF.Workers = workers
			plainLOF.Neighbors = nil // private index path
			deltaLOF := detector.NewLOF(15)
			deltaLOF.Workers = workers
			deltaLOF.SetNeighbors(plane)
			want, err := plainLOF.Scores(ctx, v)
			if err != nil {
				t.Fatal(err)
			}
			got, err := deltaLOF.Scores(ctx, v)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("LOF %s workers=%d: score[%d] bits %x, want %x",
						s.Key(), workers, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

package neighbors_test

import (
	"context"
	"math/rand"
	"testing"

	"anex/internal/neighbors"
)

func allocPoints(n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for f := range pts[i] {
			pts[i][f] = rng.NormFloat64()
		}
	}
	return pts
}

// TestAllKNNAllocs pins the O(1)-allocation contract of the serial
// neighbourhood builders: the whole n×m structure costs a constant number
// of allocations — the flat result arrays, one scratch slice, and the
// scratch's internal buffers — NOT O(n) per-row slices. The count is
// asserted both in absolute terms (a regression to per-row allocation
// would be ≥ n) and to be independent of n.
func TestAllKNNAllocs(t *testing.T) {
	const k = 10
	counts := map[string][2]float64{}
	for trial, n := range []int{128, 512} {
		ix := neighbors.NewIndex(allocPoints(n, 3, int64(n)))
		flat := testing.AllocsPerRun(10, func() {
			if _, _, _, err := neighbors.AllKNNFlat(context.Background(), ix, k, 1); err != nil {
				t.Fatal(err)
			}
		})
		headered := testing.AllocsPerRun(10, func() {
			neighbors.AllKNN(ix, k)
		})
		for name, got := range map[string]float64{"AllKNNFlat": flat, "AllKNN": headered} {
			if got >= float64(n) {
				t.Errorf("%s at n=%d: %v allocs/op — per-row allocation is back", name, n, got)
			}
			if got > 16 {
				t.Errorf("%s at n=%d: %v allocs/op, want ≤ 16", name, n, got)
			}
			c := counts[name]
			c[trial] = got
			counts[name] = c
		}
	}
	for name, c := range counts {
		if c[0] != c[1] {
			t.Errorf("%s allocations scale with n: %v at n=128 vs %v at n=512", name, c[0], c[1])
		}
	}
}

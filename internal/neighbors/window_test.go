package neighbors

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// windowStreamCase generates one point of a named stream shape. All shapes
// are deterministic in rng; the pathological ones (duplicate-heavy,
// lattice ties, all-identical) exercise the (distance, slot) tie-breaking
// the bit-identicality contract leans on.
func windowStreamPoint(shape string, rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	switch shape {
	case "random":
		for j := range p {
			p[j] = rng.NormFloat64()
		}
	case "duplicates":
		// Half the stream drawn from 4 exact prototypes.
		if rng.Intn(2) == 0 {
			v := float64(rng.Intn(4))
			for j := range p {
				p[j] = v
			}
		} else {
			for j := range p {
				p[j] = rng.NormFloat64()
			}
		}
	case "lattice":
		// Small integer lattice: masses of exactly-tied distances.
		for j := range p {
			p[j] = float64(rng.Intn(3))
		}
	case "identical":
		for j := range p {
			p[j] = 1
		}
	default:
		panic("unknown shape " + shape)
	}
	return p
}

// coldWindowKNN is the ground truth the engine must match bit for bit: a
// fresh standard index over the same slot-ordered rows, drained flat.
func coldWindowKNN(t *testing.T, points [][]float64, k, workers int) ([]int32, []float64, int) {
	t.Helper()
	idx, dist, m, err := AllKNNFlat(context.Background(), NewIndex(points), k, workers)
	if err != nil {
		t.Fatal(err)
	}
	return idx, dist, m
}

// TestWindowEngineBitIdenticalCold slides windows over adversarial streams
// and requires the engine's export to equal a cold rebuild bit for bit at
// every stride, slack, worker count, and data shape — including the growing
// phase before the window first fills.
func TestWindowEngineBitIdenticalCold(t *testing.T) {
	const (
		W = 48
		k = 7
		d = 6
	)
	shapes := []string{"random", "duplicates", "lattice", "identical"}
	strides := []int{1, W / 4, W - 1}
	slacks := []int{0, 2, 8}
	workerCounts := []int{1, 4}
	for _, shape := range shapes {
		for _, stride := range strides {
			for _, slack := range slacks {
				for _, workers := range workerCounts {
					name := shape + "/stride=" + itoa(stride) + "/slack=" + itoa(slack) + "/w=" + itoa(workers)
					t.Run(name, func(t *testing.T) {
						runWindowEngineParity(t, shape, W, d, k, stride, slack, workers, 6*W)
					})
				}
			}
		}
	}
}

// TestWindowEngineWideViews re-runs the parity sweep at a dimensionality
// above the KD-tree cutoff, where the cold path routes through the
// landmark-pruned tier on large windows and the early-exit kernel
// everywhere — the regime the stream reference workload (20d) lives in.
func TestWindowEngineWideViews(t *testing.T) {
	runWindowEngineParity(t, "random", 40, 20, 15, 10, 4, 4, 160)
	runWindowEngineParity(t, "duplicates", 40, 20, 15, 13, 0, 1, 120)
}

// TestWindowEngineTinyWindows exercises n ≤ k+1: every reservoir holds the
// complete point set and expiry repairs must stay exact.
func TestWindowEngineTinyWindows(t *testing.T) {
	runWindowEngineParity(t, "lattice", 5, 3, 7, 1, 0, 1, 40)
	runWindowEngineParity(t, "random", 6, 3, 7, 2, 2, 4, 48)
}

func runWindowEngineParity(t *testing.T, shape string, W, d, k, stride, slack, workers, total int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(W*1000 + stride*100 + slack*10 + workers)))
	eng := NewWindowEngine(k, slack, workers)
	window := make([][]float64, 0, W)
	next := 0
	var batch []WindowArrival
	prevIdx, prevDist := []int32(nil), []float64(nil)
	var prevM int
	evals := 0
	for i := 0; i < total; i++ {
		p := windowStreamPoint(shape, rng, d)
		var slot int
		if len(window) < W {
			slot = len(window)
			window = append(window, p)
		} else {
			slot = next
			window[next] = p
			next = (next + 1) % W
		}
		batch = appendArrival(batch, slot, p)
		if len(window) < 2 || (i+1)%stride != 0 {
			continue
		}
		if err := eng.Apply(context.Background(), batch); err != nil {
			t.Fatal(err)
		}
		batch = batch[:0]
		gotIdx, gotDist, gotM, gotStride := eng.Neighborhood()
		wantIdx, wantDist, wantM := coldWindowKNN(t, window, k, workers)
		if gotM != wantM || gotStride != wantM {
			t.Fatalf("eval %d: m=%d stride=%d, want m=%d", evals, gotM, gotStride, wantM)
		}
		for j := range wantIdx {
			if gotIdx[j] != wantIdx[j] {
				t.Fatalf("eval %d (n=%d): idx[%d] = %d, want %d\n got %v\nwant %v",
					evals, len(window), j, gotIdx[j], wantIdx[j], gotIdx, wantIdx)
			}
			if math.Float64bits(gotDist[j]) != math.Float64bits(wantDist[j]) {
				t.Fatalf("eval %d: dist[%d] = %x, want %x", evals, j, math.Float64bits(gotDist[j]), math.Float64bits(wantDist[j]))
			}
		}
		// The dirty contract: a clean slot's exported row must be unchanged
		// from the previous export.
		dirty := eng.TakeDirty()
		if prevIdx != nil && prevM == gotM && len(prevIdx) == len(gotIdx) {
			for s := 0; s < len(window); s++ {
				if dirty[s] {
					continue
				}
				for tpos := 0; tpos < gotM; tpos++ {
					at := s*gotM + tpos
					if gotIdx[at] != prevIdx[at] || math.Float64bits(gotDist[at]) != math.Float64bits(prevDist[at]) {
						t.Fatalf("eval %d: slot %d clean but row changed at position %d", evals, s, tpos)
					}
				}
			}
		}
		prevIdx, prevDist, prevM = gotIdx, gotDist, gotM
		evals++
	}
	if evals == 0 {
		t.Fatal("parity run evaluated nothing")
	}
	st := eng.Stats()
	if st.Arrivals == 0 {
		t.Fatal("engine saw no arrivals")
	}
	t.Logf("%s: %d evals, engine %s", shape, evals, st)
}

// appendArrival records slot's latest occupant, deduplicating when one
// batch laps the same slot twice (stride > window).
func appendArrival(batch []WindowArrival, slot int, p []float64) []WindowArrival {
	for i := range batch {
		if batch[i].Slot == slot {
			batch[i].Point = p
			return batch
		}
	}
	return append(batch, WindowArrival{Slot: slot, Point: p})
}

// TestWindowEngineStrideBeyondWindow laps the whole window between
// evaluations: every slot is an arrival and survivors do not exist.
func TestWindowEngineStrideBeyondWindow(t *testing.T) {
	runWindowEngineParity(t, "random", 16, 4, 5, 40, 2, 1, 200)
}

// TestWindowEngineApplyValidation pins the malformed-batch errors.
func TestWindowEngineApplyValidation(t *testing.T) {
	eng := NewWindowEngine(3, 0, 1)
	if err := eng.Apply(context.Background(), []WindowArrival{{Slot: 5, Point: []float64{1}}}); err == nil {
		t.Error("out-of-range slot should fail")
	}
	eng = NewWindowEngine(3, 0, 1)
	if err := eng.Apply(context.Background(), []WindowArrival{{Slot: 0, Point: nil}}); err == nil {
		t.Error("empty point should fail")
	}
	eng = NewWindowEngine(3, 0, 1)
	if err := eng.Apply(context.Background(), []WindowArrival{{Slot: 0, Point: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(context.Background(), []WindowArrival{{Slot: 1, Point: []float64{1, 2, 3}}}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

// TestPlanePublishServesWithoutComputation pins Publish: an installed entry
// answers queries at any k' ≤ k without a computation, prefix-sliced, and
// dies with Forget like any other entry.
func TestPlanePublishServesWithoutComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, d, k = 60, 5, 9
	points := make([][]float64, n)
	for i := range points {
		points[i] = windowStreamPoint("random", rng, d)
	}
	src := newTestSource(t, "published", points)
	// Ground truth through a private cold build.
	wantIdx, wantDist, m, err := AllKNNFlat(context.Background(), NewIndex(points), k, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(0)
	p.Publish(src, k, m, wantIdx, wantDist)
	for _, kq := range []int{1, 4, k} {
		idx, dist, mq, stride, ok, err := p.AllKNN(context.Background(), src, kq, 1)
		if err != nil || !ok {
			t.Fatalf("k=%d: ok=%v err=%v", kq, ok, err)
		}
		if mq != kq || stride != m {
			t.Fatalf("k=%d: m=%d stride=%d, want m=%d stride=%d", kq, mq, stride, kq, m)
		}
		for i := 0; i < n; i++ {
			for tpos := 0; tpos < mq; tpos++ {
				if idx[i*stride+tpos] != wantIdx[i*m+tpos] {
					t.Fatalf("k=%d: row %d mismatch", kq, i)
				}
				if math.Float64bits(dist[i*stride+tpos]) != math.Float64bits(wantDist[i*m+tpos]) {
					t.Fatalf("k=%d: row %d distance bits mismatch", kq, i)
				}
			}
		}
	}
	st := p.Stats()
	if st.Computations != 0 {
		t.Errorf("published entry still computed %d times", st.Computations)
	}
	if st.Publishes != 1 || st.Hits != 3 {
		t.Errorf("publishes %d hits %d, want 1 and 3", st.Publishes, st.Hits)
	}
	p.Forget(src.SourceKey())
	if got := p.Stats().Entries; got != 0 {
		t.Errorf("%d entries resident after Forget", got)
	}
}

// windowTestSource is a minimal in-package ColumnSource/RowSource over
// row-major points, for exercising Publish without dataset plumbing.
type windowTestSource struct {
	name   string
	points [][]float64
	cols   [][]float64
}

func newTestSource(t *testing.T, name string, points [][]float64) *windowTestSource {
	t.Helper()
	d := len(points[0])
	cols := make([][]float64, d)
	for j := range cols {
		col := make([]float64, len(points))
		for i, p := range points {
			col[i] = p[j]
		}
		cols[j] = col
	}
	return &windowTestSource{name: name, points: points, cols: cols}
}

func (s *windowTestSource) N() int                       { return len(s.points) }
func (s *windowTestSource) Dim() int                     { return len(s.cols) }
func (s *windowTestSource) Column(j int) []float64       { return s.cols[j] }
func (s *windowTestSource) Feature(j int) int            { return j }
func (s *windowTestSource) NumFeatures() int             { return len(s.cols) }
func (s *windowTestSource) SourceColumn(f int) []float64 { return s.cols[f] }
func (s *windowTestSource) SourceKey() string            { return s.name }
func (s *windowTestSource) SubspaceKey() string          { return "full" }
func (s *windowTestSource) Points() [][]float64          { return s.points }
